(* The paper's headline experiment at example scale: a complete binary
   tree lives on the caller; the callee searches part of it remotely
   under the three transfer methods (fully eager / fully lazy /
   proposed), showing who wins at which access ratio.

   Run with:  dune exec examples/tree_search.exe *)

open Srpc_workloads

let () =
  let depth = 12 (* 4095 nodes of 16 bytes, as in the paper but smaller *) in
  let methods =
    [ Experiments.Fully_eager; Experiments.Fully_lazy; Experiments.Proposed 8192 ]
  in
  Printf.printf "tree: %d nodes; per-call simulated seconds\n"
    (Tree.nodes_of_depth depth);
  Printf.printf "%8s" "ratio";
  List.iter (fun m -> Printf.printf " %14s" (Experiments.method_name m)) methods;
  print_newline ();
  List.iter
    (fun ratio ->
      Printf.printf "%8.2f" ratio;
      List.iter
        (fun m ->
          let r =
            Experiments.run_tree_search
              ~strategy:(Experiments.strategy_of_method m)
              ~depth ~ratio ()
          in
          Printf.printf " %14.4f" r.Experiments.seconds)
        methods;
      print_newline ())
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  print_newline ();
  Printf.printf "callbacks at full traversal:\n";
  List.iter
    (fun m ->
      let r =
        Experiments.run_tree_search
          ~strategy:(Experiments.strategy_of_method m)
          ~depth ~ratio:1.0 ()
      in
      Printf.printf "  %-16s %6d callbacks, %8d wire bytes\n"
        (Experiments.method_name m) r.Experiments.callbacks r.Experiments.bytes)
    methods

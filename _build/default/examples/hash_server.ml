(* A remote hash-table server — the workload the paper names as the
   lazy method's sweet spot ("retrieval of a hash table", section 4.1):
   each lookup touches one bucket and a short chain, so shipping the
   whole table eagerly is waste. The smart method with a small closure
   approaches lazy behaviour here while remaining the best tree
   searcher.

   Also demonstrates the wire tracer: every frame of the first lookup is
   printed with its simulated timestamp.

   Run with:  dune exec examples/hash_server.exe *)

open Srpc_core
open Srpc_simnet
open Srpc_workloads

let population = 500

let run ~name ~strategy =
  let cluster = Cluster.create () in
  let server = Cluster.add_node cluster ~site:1 ~strategy () in
  let client = Cluster.add_node cluster ~site:2 ~strategy () in
  Hash_table.register_types cluster;
  let table = Hash_table.create server in
  for k = 0 to population - 1 do
    Hash_table.insert server table ~key:k ~value:(k * k)
  done;
  (* The CLIENT runs the lookups: the server passes the table by pointer
     and the client dereferences into it. *)
  Node.register client "lookup3" (fun node args ->
      match args with
      | [ tv; k1; k2; k3 ] ->
        let t = Access.of_value tv in
        let get k =
          match Hash_table.lookup node t ~key:(Value.to_int k) with
          | Some v -> v
          | None -> -1
        in
        [ Value.int (get k1); Value.int (get k2); Value.int (get k3) ]
      | _ -> assert false);
  let s0 = Cluster.snapshot cluster in
  Node.with_session server (fun () ->
      match
        Node.call server ~dst:(Node.id client) "lookup3"
          [ Access.to_value table; Value.int 42; Value.int 123; Value.int 442 ]
      with
      | [ a; b; c ] ->
        assert (Value.to_int a = 42 * 42);
        assert (Value.to_int b = 123 * 123);
        assert (Value.to_int c = 442 * 442)
      | _ -> assert false);
  let d = Stats.diff (Cluster.snapshot cluster) s0 in
  Printf.printf "%-18s %8.4f s  %6d msgs  %8d bytes\n" name
    (Cluster.now cluster) d.Stats.messages d.Stats.bytes

let () =
  Printf.printf "three lookups in a %d-entry remote hash table:\n" population;
  run ~name:"fully-eager" ~strategy:Strategy.fully_eager;
  run ~name:"fully-lazy" ~strategy:Strategy.fully_lazy;
  run ~name:"proposed(256B)" ~strategy:(Strategy.smart ~closure_size:256 ());
  print_newline ();

  (* trace one lookup's frames *)
  let cluster = Cluster.create () in
  let server = Cluster.add_node cluster ~site:1 () in
  let client =
    Cluster.add_node cluster ~site:2 ~strategy:(Strategy.smart ~closure_size:256 ()) ()
  in
  Hash_table.register_types cluster;
  let table = Hash_table.create server in
  for k = 0 to 99 do
    Hash_table.insert server table ~key:k ~value:k
  done;
  Node.register client "lookup" (fun node args ->
      match args with
      | [ tv; kv ] -> (
        match
          Hash_table.lookup node (Access.of_value tv) ~key:(Value.to_int kv)
        with
        | Some v -> [ Value.int v ]
        | None -> [ Value.int (-1) ])
      | _ -> assert false);
  let trace = Trace.create () in
  Transport.set_trace (Cluster.transport cluster) (Some trace);
  Node.with_session server (fun () ->
      ignore
        (Node.call server ~dst:(Node.id client) "lookup"
           [ Access.to_value table; Value.int 77 ]));
  Printf.printf "wire trace of one traced lookup (call, faults, teardown):\n";
  Format.printf "%a@." Trace.pp trace

(* Remote memory management (paper, section 3.5): a worker node builds
   a data structure whose HOME is the coordinator's address space, using
   extended_malloc / extended_free. Allocation and release requests are
   batched until control transfers; the data itself travels back with
   the coherency protocol.

   Run with:  dune exec examples/remote_alloc.exe *)

open Srpc_memory
open Srpc_core
open Srpc_workloads

let () =
  let cluster = Cluster.create () in
  let coordinator = Cluster.add_node cluster ~site:1 () in
  let worker = Cluster.add_node cluster ~site:2 () in
  Linked_list.register_types cluster;

  let home = Node.id coordinator in

  (* The worker builds a 100-cell list homed at the coordinator, then
     prunes the odd values with extended_free. *)
  Node.register worker "build_squares" (fun node args ->
      let n = Value.to_int (List.hd args) in
      let head =
        Linked_list.append node
          (Access.null ~ty:Linked_list.type_name)
          ~home
          (List.init n (fun i -> i * i))
      in
      (* prune odd squares in place *)
      let rec prune prev p =
        if not (Access.is_null p) then begin
          let next = Access.get_ptr node p ~field:"next" in
          if Access.get_int node p ~field:"value" mod 2 = 1 then begin
            (match prev with
            | None -> ()
            | Some q -> Access.set_ptr node q ~field:"next" next);
            Node.extended_free node p.Access.addr;
            prune prev next
          end
          else prune (Some p) next
        end
      in
      (* head (0) is even, so it survives and stays the head *)
      prune None head;
      [ Access.to_value head ]);

  Node.begin_session coordinator;
  let head =
    match Node.call coordinator ~dst:(Node.id worker) "build_squares"
            [ Value.int 20 ]
    with
    | [ v ] -> Access.of_value v
    | _ -> assert false
  in
  Node.end_session coordinator;

  (* After the session everything lives in the coordinator's own heap. *)
  let values = Linked_list.to_list coordinator head in
  Printf.printf "even squares, homed locally: [%s]\n"
    (String.concat "; " (List.map string_of_int values));
  Printf.printf "live blocks in the coordinator's heap: %d\n"
    (Allocator.live_blocks (Node.heap coordinator));
  Format.printf "stats: %a@." Srpc_simnet.Stats.pp_snapshot
    (Cluster.snapshot cluster)

(* A three-site pipeline over one shared matrix: the owner passes the
   grid by pointer to a scaler, which (nested RPC) hands the SAME
   pointer to a reducer. Tiles are 8 KiB — larger than a page — so each
   fetch moves multi-page objects; the scaler's writes travel with the
   nested call so the reducer sees them, and the write-back at session
   end lands everything in the owner's heap.

   Run with:  dune exec examples/pipeline.exe *)

open Srpc_core
open Srpc_workloads

let () =
  let cluster = Cluster.create () in
  let owner = Cluster.add_node cluster ~site:1 () in
  let scaler = Cluster.add_node cluster ~site:2 () in
  let reducer = Cluster.add_node cluster ~site:3 () in
  Matrix.register_types cluster;

  let grid = Matrix.create owner ~tile_rows:2 ~tile_cols:2 in
  let rows, cols = Matrix.dims owner grid in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if r = c then Matrix.set owner grid ~row:r ~col:c 1.0
    done
  done;
  Printf.printf "owner built a %dx%d identity matrix (4 tiles of 8 KiB)\n" rows cols;

  Node.register reducer "trace" (fun node args ->
      let g = Access.of_value (List.hd args) in
      let rows, _ = Matrix.dims node g in
      let t = ref 0.0 in
      for r = 0 to rows - 1 do
        t := !t +. Matrix.get node g ~row:r ~col:r
      done;
      [ Value.float !t ]);

  Node.register scaler "scale_then_trace" (fun node args ->
      match args with
      | [ gv; kv ] ->
        Matrix.scale node (Access.of_value gv) (Value.to_float kv);
        (* nested RPC: the reducer must see our scaling *)
        Node.call node ~dst:(Node.id reducer) "trace" [ gv ]
      | _ -> assert false);

  Node.with_session owner (fun () ->
      match
        Node.call owner ~dst:(Node.id scaler) "scale_then_trace"
          [ Access.to_value grid; Value.float 2.5 ]
      with
      | [ v ] ->
        Printf.printf "reducer saw trace = %.1f (expected %.1f)\n"
          (Value.to_float v)
          (2.5 *. float_of_int rows)
      | _ -> assert false);

  (* after the session everything is home *)
  Printf.printf "owner's matrix after the pipeline: trace = %.1f, [0,1] = %.1f\n"
    (let t = ref 0.0 in
     for r = 0 to rows - 1 do
       t := !t +. Matrix.get owner grid ~row:r ~col:r
     done;
     !t)
    (Matrix.get owner grid ~row:0 ~col:1);
  Format.printf "traffic: %a@." Srpc_simnet.Stats.pp_snapshot
    (Cluster.snapshot cluster)

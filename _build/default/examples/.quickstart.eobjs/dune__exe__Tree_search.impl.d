examples/tree_search.ml: Experiments List Printf Srpc_workloads Tree

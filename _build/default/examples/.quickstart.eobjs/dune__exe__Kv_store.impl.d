examples/kv_store.ml: Access Btree Cluster Idl List Node Printf Srpc_core Srpc_workloads Value

examples/nested_session.ml: Access Cluster Linked_list List Node Printf Srpc_core Srpc_types Srpc_workloads Type_desc Value

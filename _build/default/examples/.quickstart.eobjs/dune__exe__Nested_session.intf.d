examples/nested_session.mli:

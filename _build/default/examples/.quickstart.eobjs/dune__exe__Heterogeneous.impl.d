examples/heterogeneous.ml: Access Arch Cluster Layout List Node Printf Srpc_core Srpc_memory Srpc_simnet Srpc_types Srpc_workloads Tree Value

examples/pipeline.mli:

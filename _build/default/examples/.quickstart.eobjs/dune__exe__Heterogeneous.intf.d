examples/heterogeneous.mli:

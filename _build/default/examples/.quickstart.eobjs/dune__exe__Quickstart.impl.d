examples/quickstart.ml: Access Cluster Format Linked_list List Node Printf Srpc_core Srpc_simnet Srpc_workloads Value

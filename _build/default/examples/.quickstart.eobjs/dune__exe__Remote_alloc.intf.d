examples/remote_alloc.mli:

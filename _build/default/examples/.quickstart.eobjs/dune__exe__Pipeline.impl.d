examples/pipeline.ml: Access Cluster Format List Matrix Node Printf Srpc_core Srpc_simnet Srpc_workloads Value

examples/quickstart.mli:

examples/hash_server.mli:

examples/hash_server.ml: Access Cluster Format Hash_table Node Printf Srpc_core Srpc_simnet Srpc_workloads Stats Strategy Trace Transport Value

examples/remote_alloc.ml: Access Allocator Cluster Format Linked_list List Node Printf Srpc_core Srpc_memory Srpc_simnet Srpc_workloads String Value

(* A distributed key-value store in ~60 lines: a B-tree owned by a
   server, queried and GROWN by clients through typed stubs (Idl). The
   clients dereference and even rebuild the owner's tree through plain
   pointers; new tree nodes allocated by a client are homed at the
   server via extended_malloc, invisibly.

   Run with:  dune exec examples/kv_store.exe *)

open Srpc_core
open Srpc_workloads

(* The store's typed interface — arity and kinds are checked on both
   ends by construction. *)
let put = Idl.(declare "put" (ptr "broot" @-> int @-> int @-> returning unit))
let get = Idl.(declare "get" (ptr "broot" @-> int @-> returning int))
let between = Idl.(declare "between" (ptr "broot" @-> int @-> int @-> returning int))

let () =
  let cluster = Cluster.create () in
  let server = Cluster.add_node cluster ~site:1 () in
  let client = Cluster.add_node cluster ~site:2 () in
  Btree.register_types cluster;

  (* the server owns the tree and exports the interface *)
  let store = Btree.create server in
  Idl.export server put (fun node t k v -> Btree.insert node t ~key:k ~value:v);
  Idl.export server get (fun node t k ->
      match Btree.search node t ~key:k with Some v -> v | None -> -1);
  Idl.export server between (fun node t lo hi -> Btree.range_count node t ~lo ~hi);

  Node.with_session server (fun () ->
      (* fill through the server's own interface *)
      for k = 0 to 199 do
        Idl.local server put store k (k * k)
      done);

  (* a client session: remote typed calls against the server *)
  Node.register client "client_work" (fun node args ->
      let store = Access.of_value (List.hd args) in
      (* direct pointer access: search the server's tree locally *)
      let v = Btree.search node store ~key:144 in
      assert (v = Some (144 * 144));
      (* grow the server's tree from here; nodes are homed at the server *)
      for k = 200 to 239 do
        Btree.insert node store ~key:k ~value:(k * k)
      done;
      [ Value.int (Btree.range_count node store ~lo:100 ~hi:220) ]);

  Node.with_session server (fun () ->
      match
        Node.call server ~dst:(Node.id client) "client_work"
          [ Access.to_value store ]
      with
      | [ v ] -> Printf.printf "client counted %d keys in [100, 220]\n" (Value.to_int v)
      | _ -> assert false);

  (* back on the server: everything the client did is home *)
  Printf.printf "server sees %d keys; tree invariants: %s\n"
    (Btree.cardinal server store)
    (match Btree.check_invariants server store with
    | Ok () -> "ok"
    | Error e -> e);
  Printf.printf "get 210 via typed stub on a fresh session: %d\n"
    (Node.with_session server (fun () -> Idl.local server get store 210))

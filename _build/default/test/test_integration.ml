(* Integration tests: whole-system RPC scenarios over a simulated
   cluster — scalar calls, transparent remote pointers on the lazy and
   eager paths, nested RPCs and callbacks, the coherency protocol,
   remote allocation/release, session teardown, heterogeneity, and
   error propagation. *)

open Srpc_memory
open Srpc_types
open Srpc_core
open Srpc_simnet

let node_ty = "node"

let register_node_type cluster =
  Cluster.register_type cluster node_ty
    (Type_desc.Struct
       [
         ("left", Type_desc.ptr node_ty);
         ("right", Type_desc.ptr node_ty);
         ("data", Type_desc.i64);
       ])

(* Two-site cluster with zero costs (counts still recorded). *)
let mk2 ?(strategy = Strategy.smart ()) ?(arch_a = Arch.sparc32)
    ?(arch_b = Arch.sparc32) () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 ~arch:arch_a ~strategy () in
  let b = Cluster.add_node cluster ~site:2 ~arch:arch_b ~strategy () in
  register_node_type cluster;
  (cluster, a, b)

let mk_node node ~left ~right ~data =
  let p = Access.ptr ~ty:node_ty (Node.malloc node ~ty:node_ty) in
  Access.set_ptr node p ~field:"left" left;
  Access.set_ptr node p ~field:"right" right;
  Access.set_i64 node p ~field:"data" (Int64.of_int data);
  p

let leaf node data =
  mk_node node ~left:(Access.null ~ty:node_ty) ~right:(Access.null ~ty:node_ty)
    ~data

(* --- scalar calls --- *)

let test_scalar_call () =
  let _, a, b = mk2 () in
  Node.register b "add" (fun _ args ->
      match args with
      | [ x; y ] -> [ Value.int (Value.to_int x + Value.to_int y) ]
      | _ -> assert false);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "add" [ Value.int 2; Value.int 40 ] with
      | [ v ] -> Alcotest.(check int) "sum" 42 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_all_scalar_kinds_cross_wire () =
  let _, a, b = mk2 () in
  Node.register b "echo" (fun _ args -> args);
  Node.with_session a (fun () ->
      let sent =
        [ Value.unit; Value.bool false; Value.int (-7); Value.float 2.5;
          Value.str "hello" ]
      in
      let got = Node.call a ~dst:(Node.id b) "echo" sent in
      Alcotest.(check bool) "echoed" true (List.for_all2 Value.equal sent got))

let test_unknown_procedure_propagates () =
  let _, a, b = mk2 () in
  Node.with_session a (fun () ->
      Alcotest.(check bool) "remote error" true
        (match Node.call a ~dst:(Node.id b) "missing" [] with
        | _ -> false
        | exception Node.Remote_error _ -> true))

let test_callee_exception_propagates () =
  let _, a, b = mk2 () in
  Node.register b "boom" (fun _ _ -> failwith "kaboom");
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "boom" [] with
      | _ -> Alcotest.fail "expected error"
      | exception Node.Remote_error msg ->
        Alcotest.(check bool) "message" true
          (String.length msg > 0
          && String.exists (fun _ -> true) msg))

let test_call_requires_session () =
  let _, a, b = mk2 () in
  Node.register b "nop" (fun _ _ -> []);
  Alcotest.check_raises "no session" Session.No_active_session (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "nop" []))

let test_call_self_rejected () =
  let _, a, _ = mk2 () in
  Node.register a "nop" (fun _ _ -> []);
  Node.with_session a (fun () ->
      Alcotest.(check bool) "self call" true
        (match Node.call a ~dst:(Node.id a) "nop" [] with
        | _ -> false
        | exception Invalid_argument _ -> true))

(* --- remote pointers, lazy path --- *)

let test_remote_pointer_lazy_fetch () =
  let cluster, a, b = mk2 () in
  let p = leaf a 123 in
  Node.register b "read_data" (fun node args ->
      let q = Access.of_value (List.hd args) in
      [ Value.int (Access.get_int node q ~field:"data") ]);
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      (match Node.call a ~dst:(Node.id b) "read_data" [ Access.to_value p ] with
      | [ v ] -> Alcotest.(check int) "data through the wire" 123 (Value.to_int v)
      | _ -> Alcotest.fail "arity");
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      Alcotest.(check int) "one fetch callback" 1 d.Stats.callbacks;
      Alcotest.(check int) "one fault" 1 d.Stats.faults)

let test_second_access_hits_cache () =
  let cluster, a, b = mk2 () in
  let p = leaf a 5 in
  Node.register b "read_twice" (fun node args ->
      let q = Access.of_value (List.hd args) in
      let x = Access.get_int node q ~field:"data" in
      let y = Access.get_int node q ~field:"data" in
      [ Value.int (x + y) ]);
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      ignore (Node.call a ~dst:(Node.id b) "read_twice" [ Access.to_value p ]);
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      Alcotest.(check int) "single fetch for two reads" 1 d.Stats.callbacks)

let test_null_pointer_argument () =
  let _, a, b = mk2 () in
  Node.register b "is_null" (fun _ args ->
      [ Value.bool (Value.to_addr (List.hd args) = 0) ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "is_null" [ Value.null ~ty:node_ty ] with
      | [ v ] -> Alcotest.(check bool) "null survives" true (Value.to_bool v)
      | _ -> Alcotest.fail "arity")

let test_pointer_chain_follows_origin () =
  (* b receives parent, dereferences child pointer: two lazy steps *)
  let _, a, b = mk2 ~strategy:Strategy.fully_lazy () in
  let child = leaf a 7 in
  let parent =
    mk_node a ~left:child ~right:(Access.null ~ty:node_ty) ~data:1
  in
  Node.register b "left_data" (fun node args ->
      let p = Access.of_value (List.hd args) in
      let l = Access.get_ptr node p ~field:"left" in
      [ Value.int (Access.get_int node l ~field:"data") ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "left_data" [ Access.to_value parent ] with
      | [ v ] -> Alcotest.(check int) "grandchild data" 7 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_returned_pointer_usable_by_caller () =
  (* callee returns a pointer into ITS heap; caller dereferences it *)
  let _, a, b = mk2 () in
  Node.register b "make_node" (fun node _ -> [ Access.to_value (leaf node 99) ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "make_node" [] with
      | [ v ] ->
        let p = Access.of_value v in
        Alcotest.(check int) "read remote result" 99
          (Access.get_int a p ~field:"data")
      | _ -> Alcotest.fail "arity")

(* --- eager path --- *)

let test_fully_eager_no_faults () =
  let cluster, a, b = mk2 ~strategy:Strategy.fully_eager () in
  let t = mk_node a ~left:(leaf a 2) ~right:(leaf a 3) ~data:1 in
  Node.register b "sum3" (fun node args ->
      let p = Access.of_value (List.hd args) in
      let l = Access.get_ptr node p ~field:"left" in
      let r = Access.get_ptr node p ~field:"right" in
      [
        Value.int
          (Access.get_int node p ~field:"data"
          + Access.get_int node l ~field:"data"
          + Access.get_int node r ~field:"data");
      ]);
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      (match Node.call a ~dst:(Node.id b) "sum3" [ Access.to_value t ] with
      | [ v ] -> Alcotest.(check int) "sum" 6 (Value.to_int v)
      | _ -> Alcotest.fail "arity");
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      Alcotest.(check int) "no faults" 0 d.Stats.faults;
      Alcotest.(check int) "no callbacks" 0 d.Stats.callbacks)

let test_closure_budget_limits_prefetch () =
  (* chain of 10 cells, budget of 3 nodes' worth: the first fetch cannot
     bring the whole chain *)
  let cluster, a, b = mk2 ~strategy:(Strategy.smart ~closure_size:48 ()) () in
  let rec chain node k =
    if k = 0 then Access.null ~ty:node_ty
    else mk_node node ~left:(chain node (k - 1)) ~right:(Access.null ~ty:node_ty)
        ~data:k
  in
  let head = chain a 10 in
  Node.register b "walk" (fun node args ->
      let rec go p acc =
        if Access.is_null p then acc
        else
          go (Access.get_ptr node p ~field:"left")
            (acc + Access.get_int node p ~field:"data")
      in
      [ Value.int (go (Access.of_value (List.hd args)) 0) ]);
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      (match Node.call a ~dst:(Node.id b) "walk" [ Access.to_value head ] with
      | [ v ] -> Alcotest.(check int) "sum 1..10" 55 (Value.to_int v)
      | _ -> Alcotest.fail "arity");
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      Alcotest.(check bool) "more than one fetch" true (d.Stats.callbacks > 1);
      Alcotest.(check bool) "fewer than ten" true (d.Stats.callbacks < 10))

(* --- nested RPCs and callbacks --- *)

let test_nested_rpc_three_sites () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let c = Cluster.add_node cluster ~site:3 () in
  register_node_type cluster;
  let p = leaf a 11 in
  (* A -> B -> C; C dereferences A's pointer (fetch crosses to A) *)
  Node.register b "relay" (fun node args ->
      Node.call node ~dst:(Node.id c) "read" args);
  Node.register c "read" (fun node args ->
      let q = Access.of_value (List.hd args) in
      [ Value.int (Access.get_int node q ~field:"data") ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "relay" [ Access.to_value p ] with
      | [ v ] -> Alcotest.(check int) "through two hops" 11 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_callback_to_caller () =
  let _, a, b = mk2 () in
  Node.register a "helper" (fun _ args ->
      [ Value.int (Value.to_int (List.hd args) * 10) ]);
  Node.register b "uses_callback" (fun node args ->
      Node.call node ~dst:(Node.id a) "helper" args);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "uses_callback" [ Value.int 4 ] with
      | [ v ] -> Alcotest.(check int) "callback result" 40 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_funref_explicit_callback () =
  let _, a, b = mk2 () in
  Node.register a "double" (fun _ args ->
      [ Value.int (2 * Value.to_int (List.hd args)) ]);
  Node.register b "apply" (fun node args ->
      match args with
      | [ f; x ] ->
        let fref = Funref.of_string (Value.to_str f) in
        Funref.invoke node fref [ x ]
      | _ -> assert false);
  Node.with_session a (fun () ->
      let fref = Funref.make ~home:(Node.id a) ~name:"double" in
      match
        Node.call a ~dst:(Node.id b) "apply"
          [ Value.str (Funref.to_string fref); Value.int 21 ]
      with
      | [ v ] -> Alcotest.(check int) "applied remotely" 42 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

(* --- coherency --- *)

let test_callee_update_written_back_at_session_end () =
  let _, a, b = mk2 () in
  let p = leaf a 1 in
  Node.register b "bump" (fun node args ->
      let q = Access.of_value (List.hd args) in
      Access.set_int node q ~field:"data" (Access.get_int node q ~field:"data" + 1);
      []);
  Node.begin_session a;
  ignore (Node.call a ~dst:(Node.id b) "bump" [ Access.to_value p ]);
  Node.end_session a;
  Alcotest.(check int) "update reached the original" 2
    (Access.get_int a p ~field:"data")

let test_dirty_data_travels_with_return () =
  (* after B modifies A's datum and returns, A sees the new value when
     reading its own original (the modified set traveled with return) *)
  let _, a, b = mk2 () in
  let p = leaf a 10 in
  Node.register b "bump" (fun node args ->
      let q = Access.of_value (List.hd args) in
      Access.set_int node q ~field:"data" (Access.get_int node q ~field:"data" + 5);
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "bump" [ Access.to_value p ]);
      Alcotest.(check int) "visible inside session" 15
        (Access.get_int a p ~field:"data"))

let test_modified_set_travels_three_sites () =
  (* Paper's Fig. 1 coherency scenario: B modifies A's datum, then the
     session (via A) calls C, which must observe B's modification. *)
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let c = Cluster.add_node cluster ~site:3 () in
  register_node_type cluster;
  let p = leaf a 100 in
  Node.register b "bump" (fun node args ->
      let q = Access.of_value (List.hd args) in
      Access.set_int node q ~field:"data" (Access.get_int node q ~field:"data" + 1);
      []);
  Node.register c "read" (fun node args ->
      [ Value.int (Access.get_int node (Access.of_value (List.hd args)) ~field:"data") ]);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "bump" [ Access.to_value p ]);
      match Node.call a ~dst:(Node.id c) "read" [ Access.to_value p ] with
      | [ v ] -> Alcotest.(check int) "C sees B's write" 101 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_nested_modification_b_to_c () =
  (* B passes A's pointer to C; C modifies; the dirty datum travels back
     through B to A *)
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let c = Cluster.add_node cluster ~site:3 () in
  register_node_type cluster;
  let p = leaf a 1 in
  Node.register b "relay_bump" (fun node args ->
      Node.call node ~dst:(Node.id c) "bump" args);
  Node.register c "bump" (fun node args ->
      let q = Access.of_value (List.hd args) in
      Access.set_int node q ~field:"data" (Access.get_int node q ~field:"data" * 7);
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "relay_bump" [ Access.to_value p ]);
      Alcotest.(check int) "write visible at origin" 7
        (Access.get_int a p ~field:"data"))

let test_pointer_update_written_back () =
  (* the callee rewires a pointer field to another of the caller's nodes;
     after write-back the caller's original must point at it *)
  let _, a, b = mk2 () in
  let target = leaf a 55 in
  let parent = leaf a 0 in
  Node.register b "link" (fun node args ->
      match args with
      | [ pv; tv ] ->
        Access.set_ptr node (Access.of_value pv) ~field:"left" (Access.of_value tv);
        []
      | _ -> assert false);
  Node.begin_session a;
  ignore
    (Node.call a ~dst:(Node.id b) "link"
       [ Access.to_value parent; Access.to_value target ]);
  Node.end_session a;
  let l = Access.get_ptr a parent ~field:"left" in
  Alcotest.(check int) "unswizzled back to the original" target.Access.addr
    l.Access.addr;
  Alcotest.(check int) "follows to data" 55 (Access.get_int a l ~field:"data")

let test_session_end_invalidates_callee_cache () =
  let _, a, b = mk2 () in
  let p = leaf a 9 in
  Node.register b "read" (fun node args ->
      [ Value.int (Access.get_int node (Access.of_value (List.hd args)) ~field:"data") ]);
  Node.begin_session a;
  ignore (Node.call a ~dst:(Node.id b) "read" [ Access.to_value p ]);
  Alcotest.(check bool) "cached during session" true (Node.cached_entries b > 0);
  Node.end_session a;
  Alcotest.(check int) "cache dropped" 0 (Node.cached_entries b);
  Alcotest.(check int) "caller cache dropped too" 0 (Node.cached_entries a)

let test_two_sequential_sessions () =
  let _, a, b = mk2 () in
  let p = leaf a 1 in
  Node.register b "bump" (fun node args ->
      let q = Access.of_value (List.hd args) in
      Access.set_int node q ~field:"data" (Access.get_int node q ~field:"data" + 1);
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "bump" [ Access.to_value p ]));
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "bump" [ Access.to_value p ]));
  Alcotest.(check int) "both sessions applied" 3 (Access.get_int a p ~field:"data")

(* --- remote allocation / release --- *)

let test_extended_malloc_remote_home () =
  let cluster, a, b = mk2 () in
  Node.register b "build_remote" (fun node _ ->
      (* allocate in A's space from B *)
      let home = Space_id.make ~site:1 ~proc:0 in
      let addr = Node.extended_malloc node ~home ~ty:node_ty in
      let p = Access.ptr ~ty:node_ty addr in
      Access.set_i64 node p ~field:"data" 777L;
      [ Access.to_value p ]);
  ignore cluster;
  Node.begin_session a;
  let res = Node.call a ~dst:(Node.id b) "build_remote" [] in
  let p = Access.of_value (List.hd res) in
  (* After return the datum lives in A's own heap. *)
  Alcotest.(check bool) "address in A's heap" true
    (p.Access.addr >= Srpc_memory.Allocator.base (Node.heap a)
    && p.Access.addr < Srpc_memory.Allocator.limit (Node.heap a));
  Alcotest.(check bool) "block is live at home" true
    (Srpc_memory.Allocator.is_allocated (Node.heap a) p.Access.addr);
  Node.end_session a;
  Alcotest.(check int) "content written home" 777 (Access.get_int a p ~field:"data")

let test_extended_malloc_batched_single_message () =
  let cluster, a, b = mk2 () in
  let n_allocs = 20 in
  Node.register b "burst" (fun node _ ->
      let home = Space_id.make ~site:1 ~proc:0 in
      for _ = 1 to n_allocs do
        ignore (Node.extended_malloc node ~home ~ty:node_ty)
      done;
      []);
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      ignore (Node.call a ~dst:(Node.id b) "burst" []);
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      (* call + return + one alloc batch + writebacks... the point is the
         allocations collapse to ONE batch message pair *)
      Alcotest.(check int) "allocs recorded" n_allocs d.Stats.remote_allocs;
      Alcotest.(check bool) "few messages" true (d.Stats.messages <= 8));
  Alcotest.(check int) "all live at home" n_allocs
    (Srpc_memory.Allocator.live_blocks (Node.heap a))

let test_extended_free_of_remote_datum () =
  let _, a, b = mk2 () in
  let p = leaf a 3 in
  Node.register b "free_it" (fun node args ->
      Node.extended_free node (Value.to_addr (List.hd args));
      []);
  Alcotest.(check bool) "live before" true
    (Srpc_memory.Allocator.is_allocated (Node.heap a) p.Access.addr);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "free_it" [ Access.to_value p ]));
  Alcotest.(check bool) "released at origin" false
    (Srpc_memory.Allocator.is_allocated (Node.heap a) p.Access.addr)

let test_extended_free_cancels_pending_alloc () =
  let cluster, a, b = mk2 () in
  Node.register b "alloc_free" (fun node _ ->
      let home = Space_id.make ~site:1 ~proc:0 in
      let addr = Node.extended_malloc node ~home ~ty:node_ty in
      Node.extended_free node addr;
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "alloc_free" []));
  ignore cluster;
  Alcotest.(check int) "nothing allocated at home" 0
    (Srpc_memory.Allocator.live_blocks (Node.heap a))

let test_extended_malloc_local_home_is_malloc () =
  let _, a, _ = mk2 () in
  let addr = Node.extended_malloc a ~home:(Node.id a) ~ty:node_ty in
  Alcotest.(check bool) "in own heap" true
    (Srpc_memory.Allocator.is_allocated (Node.heap a) addr)

let test_extended_free_invalid_pointer () =
  let _, a, _ = mk2 () in
  Alcotest.(check bool) "garbage addr" true
    (match Node.extended_free a 0xdeadbeef0 with
    | () -> false
    | exception Node.Invalid_pointer _ -> true);
  (* freeing null is a no-op, like free(NULL) *)
  Node.extended_free a 0

(* --- heterogeneity --- *)

let hetero_pairs =
  [
    (Arch.sparc32, Arch.lp64_le);
    (Arch.lp64_le, Arch.sparc32);
    (Arch.ilp32_le, Arch.lp64_be);
    (Arch.lp64_be, Arch.ilp32_le);
  ]

let test_heterogeneous_tree_walk () =
  List.iter
    (fun (arch_a, arch_b) ->
      let _, a, b = mk2 ~arch_a ~arch_b () in
      let t = mk_node a ~left:(leaf a 20) ~right:(leaf a 30) ~data:10 in
      Node.register b "sum" (fun node args ->
          let rec go p =
            if Access.is_null p then 0
            else
              Access.get_int node p ~field:"data"
              + go (Access.get_ptr node p ~field:"left")
              + go (Access.get_ptr node p ~field:"right")
          in
          [ Value.int (go (Access.of_value (List.hd args))) ]);
      Node.with_session a (fun () ->
          match Node.call a ~dst:(Node.id b) "sum" [ Access.to_value t ] with
          | [ v ] ->
            Alcotest.(check int)
              (Printf.sprintf "%s->%s" arch_a.Arch.name arch_b.Arch.name)
              60 (Value.to_int v)
          | _ -> Alcotest.fail "arity"))
    hetero_pairs

let test_heterogeneous_update_roundtrip () =
  List.iter
    (fun (arch_a, arch_b) ->
      let _, a, b = mk2 ~arch_a ~arch_b () in
      let p = leaf a 1000 in
      Node.register b "negate" (fun node args ->
          let q = Access.of_value (List.hd args) in
          Access.set_int node q ~field:"data"
            (-Access.get_int node q ~field:"data");
          []);
      Node.with_session a (fun () ->
          ignore (Node.call a ~dst:(Node.id b) "negate" [ Access.to_value p ]));
      Alcotest.(check int)
        (Printf.sprintf "%s->%s" arch_a.Arch.name arch_b.Arch.name)
        (-1000)
        (Access.get_int a p ~field:"data"))
    hetero_pairs

(* --- closure hints (paper section 6) --- *)

let test_hint_prunes_payloads () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let strategy =
    { (Strategy.smart ~closure_size:4096 ()) with Strategy.grouping = Strategy.By_type }
  in
  let a = Cluster.add_node cluster ~site:1 ~strategy () in
  let b = Cluster.add_node cluster ~site:2 ~strategy () in
  Cluster.register_type cluster "payload"
    (Type_desc.Struct [ ("blob", Type_desc.Array (Type_desc.i64, 32)) ]);
  Cluster.register_type cluster "cell"
    (Type_desc.Struct
       [ ("next", Type_desc.ptr "cell"); ("p", Type_desc.ptr "payload");
         ("v", Type_desc.i64) ]);
  Cluster.set_closure_hint cluster ~ty:"cell"
    { Hints.follow = [ "next" ]; prune_others = true };
  (* 30-cell chain with payloads *)
  let head = ref (Access.null ~ty:"cell") in
  for i = 29 downto 0 do
    let c = Access.ptr ~ty:"cell" (Node.malloc a ~ty:"cell") in
    let p = Access.ptr ~ty:"payload" (Node.malloc a ~ty:"payload") in
    Access.set_ptr a c ~field:"next" !head;
    Access.set_ptr a c ~field:"p" p;
    Access.set_int a c ~field:"v" i;
    head := c
  done;
  Node.register b "sum_v" (fun node args ->
      let rec go p acc =
        if Access.is_null p then acc
        else go (Access.get_ptr node p ~field:"next")
               (acc + Access.get_int node p ~field:"v")
      in
      [ Value.int (go (Access.of_value (List.hd args)) 0) ]);
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      (match Node.call a ~dst:(Node.id b) "sum_v" [ Access.to_value !head ] with
      | [ v ] -> Alcotest.(check int) "sum" 435 (Value.to_int v)
      | _ -> Alcotest.fail "arity");
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      (* 30 cells are ~1.3 KB wire; the 30 payloads would be ~8 KB more *)
      Alcotest.(check bool) "payloads pruned from prefetch" true
        (d.Stats.bytes < 4000))

let test_hint_pruned_data_still_reachable () =
  (* pruning affects prefetch only: touching a pruned payload must still
     fetch it on demand *)
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  Cluster.register_type cluster "payload2"
    (Type_desc.Struct [ ("x", Type_desc.i64) ]);
  Cluster.register_type cluster "cell2"
    (Type_desc.Struct
       [ ("next", Type_desc.ptr "cell2"); ("p", Type_desc.ptr "payload2") ]);
  Cluster.set_closure_hint cluster ~ty:"cell2"
    { Hints.follow = [ "next" ]; prune_others = true };
  let c = Access.ptr ~ty:"cell2" (Node.malloc a ~ty:"cell2") in
  let p = Access.ptr ~ty:"payload2" (Node.malloc a ~ty:"payload2") in
  Access.set_ptr a c ~field:"p" p;
  Access.set_i64 a p ~field:"x" 4242L;
  Node.register b "read_payload" (fun node args ->
      let c = Access.of_value (List.hd args) in
      let p = Access.get_ptr node c ~field:"p" in
      [ Value.int (Access.get_int node p ~field:"x") ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "read_payload" [ Access.to_value c ] with
      | [ v ] -> Alcotest.(check int) "on-demand fetch" 4242 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

(* --- first-class function references --- *)

let test_funref_as_value () =
  let _, a, b = mk2 () in
  Node.register a "inc" (fun _ args -> [ Value.int (Value.to_int (List.hd args) + 1) ]);
  Node.register b "apply_twice" (fun node args ->
      match args with
      | [ f; x ] ->
        let fref = Funref.of_value f in
        let once = Funref.invoke node fref [ x ] in
        Funref.invoke node fref once
      | _ -> assert false);
  Node.with_session a (fun () ->
      let f = Funref.to_value (Funref.make ~home:(Node.id a) ~name:"inc") in
      match Node.call a ~dst:(Node.id b) "apply_twice" [ f; Value.int 40 ] with
      | [ v ] -> Alcotest.(check int) "f (f 40)" 42 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_funref_returned_and_chained () =
  (* b returns a funref pointing at one of ITS procedures; a invokes it *)
  let _, a, b = mk2 () in
  Node.register b "mult" (fun _ args ->
      match args with
      | [ x; y ] -> [ Value.int (Value.to_int x * Value.to_int y) ]
      | _ -> assert false);
  Node.register b "give_mult" (fun node _ ->
      [ Funref.to_value (Funref.make ~home:(Node.id node) ~name:"mult") ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "give_mult" [] with
      | [ f ] -> (
        match Funref.invoke a (Funref.of_value f) [ Value.int 6; Value.int 7 ] with
        | [ v ] -> Alcotest.(check int) "6*7" 42 (Value.to_int v)
        | _ -> Alcotest.fail "arity")
      | _ -> Alcotest.fail "arity")

(* --- multi-origin structures: pointers crossing spaces freely --- *)

(* A chain whose cells alternate between owner A and owner B: traversal
   at a third site must fetch from both origins, and links from A-cells
   to B-cells mean each space's encoder unswizzles pointers to data it
   does not own. *)
let build_alternating_chain cluster a b n =
  ignore cluster;
  (* Build back to front. Each cell is created on its owner; linking a
     cell to the previously-built head requires the owner to hold a
     swizzled pointer to the other space's cell, so we do the linking
     inside RPCs from the ground thread a. *)
  Node.register a "make_cell" (fun node args ->
      match args with
      | [ nextv; datav ] ->
        let p = mk_node node ~left:(Access.of_value nextv)
                  ~right:(Access.null ~ty:node_ty)
                  ~data:(Value.to_int datav) in
        [ Access.to_value p ]
      | _ -> assert false);
  Node.register b "make_cell" (fun node args ->
      match args with
      | [ nextv; datav ] ->
        let p = mk_node node ~left:(Access.of_value nextv)
                  ~right:(Access.null ~ty:node_ty)
                  ~data:(Value.to_int datav) in
        [ Access.to_value p ]
      | _ -> assert false);
  let head = ref (Value.null ~ty:node_ty) in
  for i = n downto 1 do
    let owner = if i mod 2 = 0 then a else b in
    if Space_id.equal (Node.id owner) (Node.id a) then begin
      (* run locally on the ground node *)
      match Node.run_local a "make_cell" [ !head; Value.int i ] with
      | [ v ] -> head := v
      | _ -> assert false
    end
    else begin
      match Node.call a ~dst:(Node.id b) "make_cell" [ !head; Value.int i ] with
      | [ v ] -> head := v
      | _ -> assert false
    end
  done;
  !head

let test_multi_origin_chain_walk () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let c = Cluster.add_node cluster ~site:3 () in
  register_node_type cluster;
  Node.register c "sum_chain" (fun node args ->
      let rec go p acc =
        if Access.is_null p then acc
        else
          go (Access.get_ptr node p ~field:"left")
            (acc + Access.get_int node p ~field:"data")
      in
      [ Value.int (go (Access.of_value (List.hd args)) 0) ]);
  Node.with_session a (fun () ->
      let head = build_alternating_chain cluster a b 20 in
      let s0 = Cluster.snapshot cluster in
      (match Node.call a ~dst:(Node.id c) "sum_chain" [ head ] with
      | [ v ] -> Alcotest.(check int) "sum 1..20" 210 (Value.to_int v)
      | _ -> Alcotest.fail "arity");
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      (* C must talk to both origins *)
      Alcotest.(check bool) "fetched from both" true (d.Stats.callbacks >= 2))

let test_multi_origin_chain_update_writes_back_everywhere () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let c = Cluster.add_node cluster ~site:3 () in
  register_node_type cluster;
  Node.register c "negate_chain" (fun node args ->
      let rec go p =
        if not (Access.is_null p) then begin
          Access.set_int node p ~field:"data"
            (-Access.get_int node p ~field:"data");
          go (Access.get_ptr node p ~field:"left")
        end
      in
      go (Access.of_value (List.hd args));
      []);
  Node.with_session a (fun () ->
      let head = build_alternating_chain cluster a b 10 in
      ignore (Node.call a ~dst:(Node.id c) "negate_chain" [ head ]);
      (* still in the session: a cross-space pointer chain is only
         meaningful within its session (paper, section 3.1). The ground
         thread walks it and must see every cell negated - B-owned cells
         through the traveling modified set, A-owned ones in place. *)
      let rec go p acc =
        if Access.is_null p then acc
        else
          go (Access.get_ptr a p ~field:"left")
            (acc + Access.get_int a p ~field:"data")
      in
      Alcotest.(check int) "all negated" (-55) (go (Access.of_value head) 0))

let test_deep_nesting_with_cycle_back () =
  (* A -> B -> C -> B' (second proc on B) -> callback to A, five frames
     deep, with a pointer mutated at the deepest level *)
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let c = Cluster.add_node cluster ~site:3 () in
  register_node_type cluster;
  let p = leaf a 0 in
  Node.register a "base" (fun _ _ -> [ Value.int 1000 ]);
  Node.register b "hop1" (fun node args -> Node.call node ~dst:(Node.id c) "hop2" args);
  Node.register c "hop2" (fun node args -> Node.call node ~dst:(Node.id b) "hop3" args);
  Node.register b "hop3" (fun node args ->
      let base =
        match Node.call node ~dst:(Node.id a) "base" [] with
        | [ v ] -> Value.to_int v
        | _ -> assert false
      in
      let q = Access.of_value (List.hd args) in
      Access.set_int node q ~field:"data" (base + 234);
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "hop1" [ Access.to_value p ]);
      Alcotest.(check int) "deep write visible at origin" 1234
        (Access.get_int a p ~field:"data"))

(* --- typed stubs (IDL) --- *)

let test_idl_scalar_signature () =
  let _, a, b = mk2 () in
  let add3 = Idl.(declare "add3" (int @-> int @-> int @-> returning int)) in
  Idl.export b add3 (fun _node x y z -> x + y + z);
  Node.with_session a (fun () ->
      Alcotest.(check int) "typed call" 60
        (Idl.stub a ~dst:(Node.id b) add3 10 20 30))

let test_idl_pointer_signature () =
  let _, a, b = mk2 () in
  let read_data = Idl.(declare "read_data" (ptr node_ty @-> returning int)) in
  Idl.export b read_data (fun node p -> Access.get_int node p ~field:"data");
  let p = leaf a 123 in
  Node.with_session a (fun () ->
      Alcotest.(check int) "pointer stub" 123 (Idl.stub a ~dst:(Node.id b) read_data p))

let test_idl_mixed_kinds () =
  let _, a, b = mk2 () in
  let fmt =
    Idl.(
      declare "fmt"
        (string @-> float @-> bool @-> int64 @-> returning string))
  in
  Idl.export b fmt (fun _ s f flag n ->
      Printf.sprintf "%s|%.1f|%b|%Ld" s f flag n);
  Node.with_session a (fun () ->
      Alcotest.(check string) "mixed" "x|1.5|true|9"
        (Idl.stub a ~dst:(Node.id b) fmt "x" 1.5 true 9L))

let test_idl_unit_result () =
  let _, a, b = mk2 () in
  let hit = ref 0 in
  let poke = Idl.(declare "poke" (int @-> returning unit)) in
  Idl.export b poke (fun _ n -> hit := n);
  Node.with_session a (fun () -> Idl.stub a ~dst:(Node.id b) poke 5);
  Alcotest.(check int) "side effect" 5 !hit

let test_idl_funref_signature () =
  let _, a, b = mk2 () in
  let double = Idl.(declare "double" (int @-> returning int)) in
  Idl.export a double (fun _ n -> 2 * n);
  let hof = Idl.(declare "hof" (funref @-> int @-> returning int)) in
  Idl.export b hof (fun node f x ->
      match Funref.invoke node f [ Value.int x ] with
      | [ v ] -> Value.to_int v
      | _ -> assert false);
  Node.with_session a (fun () ->
      Alcotest.(check int) "higher order" 14
        (Idl.stub a ~dst:(Node.id b) hof
           (Funref.make ~home:(Node.id a) ~name:"double")
           7))

let test_idl_arity_mismatch_detected () =
  let _, a, b = mk2 () in
  (* server exports a 1-arg procedure; client declares 2 args *)
  let srv = Idl.(declare "mismatch" (int @-> returning int)) in
  Idl.export b srv (fun _ n -> n);
  let cli = Idl.(declare "mismatch" (int @-> int @-> returning int)) in
  Node.with_session a (fun () ->
      Alcotest.(check bool) "surplus detected remotely" true
        (match Idl.stub a ~dst:(Node.id b) cli 1 2 with
        | _ -> false
        | exception Node.Remote_error _ -> true))

let test_idl_kind_mismatch_detected () =
  let _, a, b = mk2 () in
  let srv = Idl.(declare "kind" (string @-> returning int)) in
  Idl.export b srv (fun _ s -> String.length s);
  let cli = Idl.(declare "kind" (int @-> returning int)) in
  Node.with_session a (fun () ->
      Alcotest.(check bool) "kind mismatch" true
        (match Idl.stub a ~dst:(Node.id b) cli 3 with
        | _ -> false
        | exception Node.Remote_error _ -> true))

let test_idl_pointer_type_mismatch () =
  let _, a, _b = mk2 () in
  let f = Idl.(declare "ptr_kind" (ptr "other_ty" @-> returning unit)) in
  let p = leaf a 1 (* a node_ty pointer *) in
  Node.with_session a (fun () ->
      Alcotest.(check bool) "pointee mismatch at client" true
        (match Idl.stub a ~dst:(Space_id.make ~site:2 ~proc:0) f p with
        | _ -> false
        | exception Idl.Signature_error _ -> true))

let test_idl_tuple_results () =
  let _, a, b = mk2 () in
  let divmod = Idl.(declare "divmod" (int @-> int @-> returning2 int int)) in
  Idl.export b divmod (fun _ x y -> (x / y, x mod y));
  let stats3 = Idl.(declare "stats3" (int @-> int @-> int @-> returning3 int float bool)) in
  Idl.export b stats3 (fun _ x y z ->
      let sum = x + y + z in
      (sum, float_of_int sum /. 3.0, sum mod 2 = 0));
  Node.with_session a (fun () ->
      let q, r = Idl.stub a ~dst:(Node.id b) divmod 17 5 in
      Alcotest.(check (pair int int)) "divmod" (3, 2) (q, r);
      let sum, avg, even = Idl.stub a ~dst:(Node.id b) stats3 1 2 3 in
      Alcotest.(check int) "sum" 6 sum;
      Alcotest.(check (float 1e-9)) "avg" 2.0 avg;
      Alcotest.(check bool) "even" true even)

let test_idl_local_application () =
  let _, a, _ = mk2 () in
  let sq = Idl.(declare "sq" (int @-> returning int)) in
  Idl.export a sq (fun _ n -> n * n);
  Alcotest.(check int) "local typed call" 49 (Idl.local a sq 7)

(* --- name service --- *)

let test_name_service_sync_and_lookup () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  register_node_type cluster;
  let master = Cluster.registry cluster in
  let ns = Name_service.serve (Cluster.transport cluster) master in
  (* a joining site pulls the schema over the wire *)
  let local = Registry.create () in
  Name_service.sync (Cluster.transport cluster) ~client:"9.0" local;
  Alcotest.(check bool) "synced descriptor" true
    (Type_desc.equal (Registry.find local node_ty) (Registry.find master node_ty));
  Alcotest.(check int) "same id" (Registry.id_of_name master node_ty)
    (Registry.id_of_name local node_ty);
  (* single lookups *)
  let d = Name_service.lookup (Cluster.transport cluster) ~client:"9.0" node_ty in
  Alcotest.(check bool) "lookup" true (Type_desc.equal d (Registry.find master node_ty));
  Alcotest.check_raises "unknown" (Registry.Unknown_type "ghost") (fun () ->
      ignore (Name_service.lookup (Cluster.transport cluster) ~client:"9.0" "ghost"));
  Alcotest.(check int) "queries counted" 3 (Name_service.queries ns)

let test_name_service_traffic_is_accounted () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  register_node_type cluster;
  ignore (Name_service.serve (Cluster.transport cluster) (Cluster.registry cluster));
  let s0 = Cluster.snapshot cluster in
  let local = Registry.create () in
  Name_service.sync (Cluster.transport cluster) ~client:"9.0" local;
  let d = Stats.diff (Cluster.snapshot cluster) s0 in
  Alcotest.(check int) "one round trip" 2 d.Stats.messages;
  Alcotest.(check bool) "schema bytes" true (d.Stats.bytes > 40)

(* --- access layer details --- *)

let test_access_elem_and_scalar_pointees () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  Cluster.register_type cluster "i64cell" (Type_desc.Prim Type_desc.I64);
  (* an array of 8 i64 cells, addressed with Access.elem *)
  let base = Node.malloc_n a ~ty:"i64cell" 8 in
  let p0 = Access.ptr ~ty:"i64cell" base in
  for i = 0 to 7 do
    Access.store_int a (Access.elem a p0 i) (100 + i)
  done;
  Alcotest.(check int) "first" 100 (Access.load_int a p0);
  Alcotest.(check int) "fifth" 104 (Access.load_int a (Access.elem a p0 4));
  Alcotest.(check int) "stride is 8" (base + 32) (Access.elem a p0 4).Access.addr

let test_access_remote_scalar_array () =
  (* data is object-grained by declared type: to pass an array, the
     pointer must carry the ARRAY type, not the element type, or only
     the first element's extent travels *)
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  Cluster.register_type cluster "slot" (Type_desc.Prim Type_desc.I64);
  Cluster.register_type cluster "slot4"
    (Type_desc.Array (Type_desc.Named "slot", 4));
  let base = Node.malloc a ~ty:"slot4" in
  for i = 0 to 3 do
    Access.store_int a (Access.elem a (Access.ptr ~ty:"slot" (base + (8 * i))) 0)
      (i * i)
  done;
  Node.register b "sum4" (fun node args ->
      let p = Access.of_value (List.hd args) in
      let s = ref 0 in
      for i = 0 to 3 do
        s := !s + Access.load_int node (Access.ptr ~ty:"slot" (p.Access.addr + (8 * i)))
      done;
      [ Value.int !s ]);
  Node.with_session a (fun () ->
      match
        Node.call a ~dst:(Node.id b) "sum4" [ Value.ptr ~ty:"slot4" base ]
      with
      | [ v ] -> Alcotest.(check int) "0+1+4+9" 14 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_access_float_fields () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  Cluster.register_type cluster "fpair"
    (Type_desc.Struct [ ("x", Type_desc.f64); ("y", Type_desc.f32) ]);
  let p = Access.ptr ~ty:"fpair" (Node.malloc a ~ty:"fpair") in
  Access.set_f64 a p ~field:"x" 2.75;
  Access.set_f64 a p ~field:"y" 1.5 (* f32 field via the f64 accessor *);
  Alcotest.(check (float 0.0)) "x" 2.75 (Access.get_f64 a p ~field:"x");
  Alcotest.(check (float 1e-6)) "y" 1.5 (Access.get_f64 a p ~field:"y");
  Alcotest.(check bool) "int accessor on float field rejected" true
    (match Access.get_int a p ~field:"x" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_access_null_deref_rejected () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  register_node_type cluster;
  Alcotest.(check bool) "null deref" true
    (match Access.get_int a (Access.null ~ty:node_ty) ~field:"data" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- misc --- *)

let test_alloc_table_rendering_after_swizzle () =
  let _, a, b = mk2 () in
  let p = leaf a 1 in
  let q = leaf a 2 in
  Node.register b "two" (fun _ _ -> []);
  Node.with_session a (fun () ->
      ignore
        (Node.call a ~dst:(Node.id b) "two" [ Access.to_value p; Access.to_value q ]);
      let table = Format.asprintf "%a" Node.pp_alloc_table b in
      (* two rows, same page, like the paper's Table 1 *)
      let rows = List.tl (String.split_on_char '\n' (String.trim table)) in
      Alcotest.(check int) "two entries" 2 (List.length rows))

let test_stats_writebacks_counted () =
  let cluster, a, b = mk2 () in
  let p = leaf a 1 in
  Node.register b "bump" (fun node args ->
      let q = Access.of_value (List.hd args) in
      Access.set_int node q ~field:"data" 2;
      []);
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      ignore (Node.call a ~dst:(Node.id b) "bump" [ Access.to_value p ]);
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      Alcotest.(check bool) "writebacks on return" true (d.Stats.writebacks >= 1))

let test_simulated_time_advances () =
  let cluster = Cluster.create () (* real cost model *) in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  register_node_type cluster;
  Node.register b "nop" (fun _ _ -> []);
  Node.with_session a (fun () ->
      let t0 = Cluster.now cluster in
      ignore (Node.call a ~dst:(Node.id b) "nop" []);
      Alcotest.(check bool) "clock moved" true (Cluster.now cluster > t0))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "integration"
    [
      ( "scalar-rpc",
        [
          tc "scalar call" `Quick test_scalar_call;
          tc "all scalar kinds cross the wire" `Quick test_all_scalar_kinds_cross_wire;
          tc "unknown procedure propagates" `Quick test_unknown_procedure_propagates;
          tc "callee exception propagates" `Quick test_callee_exception_propagates;
          tc "call requires a session" `Quick test_call_requires_session;
          tc "self call rejected" `Quick test_call_self_rejected;
        ] );
      ( "remote-pointers",
        [
          tc "lazy fetch on first touch" `Quick test_remote_pointer_lazy_fetch;
          tc "second access hits the cache" `Quick test_second_access_hits_cache;
          tc "null pointer argument" `Quick test_null_pointer_argument;
          tc "pointer chain follows to origin" `Quick test_pointer_chain_follows_origin;
          tc "returned pointer usable by caller" `Quick
            test_returned_pointer_usable_by_caller;
        ] );
      ( "eagerness",
        [
          tc "fully eager: no faults at all" `Quick test_fully_eager_no_faults;
          tc "closure budget limits prefetch" `Quick test_closure_budget_limits_prefetch;
        ] );
      ( "nesting",
        [
          tc "nested RPC across three sites" `Quick test_nested_rpc_three_sites;
          tc "callback to caller" `Quick test_callback_to_caller;
          tc "funref explicit callback" `Quick test_funref_explicit_callback;
        ] );
      ( "coherency",
        [
          tc "update written back at session end" `Quick
            test_callee_update_written_back_at_session_end;
          tc "dirty data travels with return" `Quick test_dirty_data_travels_with_return;
          tc "modified set travels A-B-C (Fig 1)" `Quick
            test_modified_set_travels_three_sites;
          tc "nested modification B->C" `Quick test_nested_modification_b_to_c;
          tc "pointer field update written back" `Quick test_pointer_update_written_back;
          tc "session end invalidates caches" `Quick
            test_session_end_invalidates_callee_cache;
          tc "two sequential sessions" `Quick test_two_sequential_sessions;
        ] );
      ( "remote-heap",
        [
          tc "extended_malloc with remote home" `Quick test_extended_malloc_remote_home;
          tc "allocations batch to one message" `Quick
            test_extended_malloc_batched_single_message;
          tc "extended_free of remote datum" `Quick test_extended_free_of_remote_datum;
          tc "free cancels pending alloc" `Quick test_extended_free_cancels_pending_alloc;
          tc "local home degenerates to malloc" `Quick
            test_extended_malloc_local_home_is_malloc;
          tc "invalid pointer rejected, free(0) ok" `Quick
            test_extended_free_invalid_pointer;
        ] );
      ( "heterogeneity",
        [
          tc "tree walk across word sizes and endians" `Quick
            test_heterogeneous_tree_walk;
          tc "update roundtrip across arches" `Quick test_heterogeneous_update_roundtrip;
        ] );
      ( "hints",
        [
          tc "hint prunes payload prefetch" `Quick test_hint_prunes_payloads;
          tc "pruned data still reachable on demand" `Quick
            test_hint_pruned_data_still_reachable;
        ] );
      ( "funref",
        [
          tc "funref as first-class value" `Quick test_funref_as_value;
          tc "returned funref invocable" `Quick test_funref_returned_and_chained;
        ] );
      ( "multi-origin",
        [
          tc "alternating-owner chain walk" `Quick test_multi_origin_chain_walk;
          tc "alternating-owner chain update" `Quick
            test_multi_origin_chain_update_writes_back_everywhere;
          tc "five-frame nesting with callback" `Quick test_deep_nesting_with_cycle_back;
        ] );
      ( "idl",
        [
          tc "scalar signature" `Quick test_idl_scalar_signature;
          tc "pointer signature" `Quick test_idl_pointer_signature;
          tc "mixed kinds" `Quick test_idl_mixed_kinds;
          tc "unit result" `Quick test_idl_unit_result;
          tc "funref signature (higher order)" `Quick test_idl_funref_signature;
          tc "arity mismatch detected" `Quick test_idl_arity_mismatch_detected;
          tc "kind mismatch detected" `Quick test_idl_kind_mismatch_detected;
          tc "pointer type mismatch at client" `Quick test_idl_pointer_type_mismatch;
          tc "tuple results" `Quick test_idl_tuple_results;
          tc "local typed application" `Quick test_idl_local_application;
        ] );
      ( "name-service",
        [
          tc "sync and lookup" `Quick test_name_service_sync_and_lookup;
          tc "traffic accounted" `Quick test_name_service_traffic_is_accounted;
        ] );
      ( "access",
        [
          tc "elem and scalar pointees" `Quick test_access_elem_and_scalar_pointees;
          tc "remote scalar array" `Quick test_access_remote_scalar_array;
          tc "float fields" `Quick test_access_float_fields;
          tc "null dereference rejected" `Quick test_access_null_deref_rejected;
        ] );
      ( "misc",
        [
          tc "alloc table rendering (Table 1)" `Quick
            test_alloc_table_rendering_after_swizzle;
          tc "writeback stats counted" `Quick test_stats_writebacks_counted;
          tc "simulated time advances" `Quick test_simulated_time_advances;
        ] );
    ]

(* The strategy matrix: every canonical usage scenario executed under
   every transfer-strategy configuration. The strategies select genuinely
   different code paths (eager closure at call time, per-datum callbacks,
   bounded BFS/DFS prefetch, twin-diff write-back, by-type placement,
   unbatched remote ops), and all of them must preserve the same
   observable semantics. *)

open Srpc_memory
open Srpc_types
open Srpc_core
open Srpc_simnet
open Srpc_workloads

let strategies =
  [
    ("fully-eager", Strategy.fully_eager);
    ("fully-lazy", Strategy.fully_lazy);
    ("smart-64", Strategy.smart ~closure_size:64 ());
    ("smart-8k", Strategy.smart ());
    ("smart-dfs", { (Strategy.smart ()) with Strategy.order = Strategy.Depth_first });
    ("smart-twin", { (Strategy.smart ()) with Strategy.grain = Strategy.Twin_diff });
    ("smart-bytype", { (Strategy.smart ()) with Strategy.grouping = Strategy.By_type });
    ( "smart-unbatched",
      { (Strategy.smart ()) with Strategy.batch_remote_ops = false } );
  ]

let node_ty = "mnode"

let mk3 strategy =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 ~strategy () in
  let b = Cluster.add_node cluster ~site:2 ~strategy () in
  let c = Cluster.add_node cluster ~site:3 ~strategy () in
  Cluster.register_type cluster node_ty
    (Type_desc.Struct
       [ ("next", Type_desc.ptr node_ty); ("data", Type_desc.i64) ]);
  Linked_list.register_types cluster;
  Tree.register_types cluster;
  Btree.register_types cluster;
  (cluster, a, b, c)

(* Each scenario takes the fresh 3-node cluster and must assert its own
   postconditions. *)

let scenario_read_chain (_, a, b, _) =
  let head = Linked_list.build a [ 9; 8; 7; 6; 5 ] in
  Node.register b "sum" (fun node args ->
      [ Value.int (Linked_list.sum node (Access.of_value (List.hd args))) ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "sum" [ Access.to_value head ] with
      | [ v ] -> Alcotest.(check int) "sum" 35 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let scenario_deep_tree_search (_, a, b, _) =
  let root = Tree.build a ~depth:9 in
  Node.register b "count" (fun node args ->
      [ Value.int (Tree.count node (Access.of_value (List.hd args))) ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "count" [ Access.to_value root ] with
      | [ v ] -> Alcotest.(check int) "count" 511 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let scenario_update_writeback (_, a, b, _) =
  let head = Linked_list.build a [ 1; 2; 3; 4; 5; 6 ] in
  Node.register b "square" (fun node args ->
      Linked_list.map_in_place node (Access.of_value (List.hd args)) (fun x -> x * x);
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "square" [ Access.to_value head ]));
  Alcotest.(check (list int)) "squared at origin" [ 1; 4; 9; 16; 25; 36 ]
    (Linked_list.to_list a head)

let scenario_three_site_relay (_, a, b, c) =
  let head = Linked_list.build a [ 10; 20; 30 ] in
  Node.register b "relay" (fun node args -> Node.call node ~dst:(Node.id c) "work" args);
  Node.register c "work" (fun node args ->
      let h = Access.of_value (List.hd args) in
      Linked_list.map_in_place node h (fun x -> x + 1);
      [ Value.int (Linked_list.sum node h) ]);
  Node.with_session a (fun () ->
      (match Node.call a ~dst:(Node.id b) "relay" [ Access.to_value head ] with
      | [ v ] -> Alcotest.(check int) "sum at c" 63 (Value.to_int v)
      | _ -> Alcotest.fail "arity");
      (* the ground thread must observe c's writes mid-session *)
      Alcotest.(check int) "visible at a" 63 (Linked_list.sum a head))

let scenario_remote_growth (_, a, b, _) =
  let head = Linked_list.build a [ 0 ] in
  Node.register b "extend" (fun node args ->
      let h = Access.of_value (List.hd args) in
      ignore
        (Linked_list.append node h ~home:(Space_id.make ~site:1 ~proc:0)
           [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]);
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "extend" [ Access.to_value head ]));
  Alcotest.(check (list int)) "grown at home" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Linked_list.to_list a head);
  Alcotest.(check int) "all cells in a's heap" 10
    (Allocator.live_blocks (Node.heap a))

let scenario_free_and_rebuild (_, a, b, _) =
  let head = Linked_list.build a [ 1; 2; 3 ] in
  Node.register b "drop_tail" (fun node args ->
      let h = Access.of_value (List.hd args) in
      let second = Linked_list.nth node h 1 in
      let third = Linked_list.nth node h 2 in
      Access.set_ptr node second ~field:"next" (Access.null ~ty:Linked_list.type_name);
      Node.extended_free node third.Access.addr;
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "drop_tail" [ Access.to_value head ]));
  Alcotest.(check (list int)) "truncated" [ 1; 2 ] (Linked_list.to_list a head);
  Alcotest.(check int) "cell released at home" 2
    (Allocator.live_blocks (Node.heap a))

let scenario_callee_returns_structure (_, a, b, _) =
  Node.register b "make" (fun node _ ->
      [ Access.to_value (Linked_list.build node [ 4; 2 ]) ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "make" [] with
      | [ v ] ->
        Alcotest.(check (list int)) "read remote result" [ 4; 2 ]
          (Linked_list.to_list a (Access.of_value v))
      | _ -> Alcotest.fail "arity")

let scenario_btree_remote_growth (_, a, b, _) =
  let t = Btree.create a in
  Btree.insert a t ~key:0 ~value:0;
  Node.register b "fill" (fun node args ->
      let t = Access.of_value (List.hd args) in
      for k = 1 to 30 do
        Btree.insert node t ~key:((k * 13) mod 31) ~value:k
      done;
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "fill" [ Access.to_value t ]));
  Alcotest.(check bool) "invariants hold at owner" true
    (Btree.check_invariants a t = Ok ());
  Alcotest.(check int) "31 keys" 31 (Btree.cardinal a t)

let scenario_cache_persists_within_session (cluster, a, b, _) =
  let head = Linked_list.build a [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Node.register b "sum" (fun node args ->
      [ Value.int (Linked_list.sum node (Access.of_value (List.hd args))) ]);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "sum" [ Access.to_value head ]);
      let s0 = Cluster.snapshot cluster in
      (match Node.call a ~dst:(Node.id b) "sum" [ Access.to_value head ] with
      | [ v ] -> Alcotest.(check int) "second call" 36 (Value.to_int v)
      | _ -> Alcotest.fail "arity");
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      (* "each site keeps all the cached data until the ground thread
         declares the end of the session": the second call re-fetches
         nothing *)
      Alcotest.(check int) "no refetch" 0 d.Stats.callbacks)

let scenario_heterogeneous (strategy_name, strategy) =
  ignore strategy_name;
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 ~arch:Arch.sparc32 ~strategy () in
  let b = Cluster.add_node cluster ~site:2 ~arch:Arch.lp64_le ~strategy () in
  Linked_list.register_types cluster;
  let head = Linked_list.build a [ 100; 200; 300 ] in
  Node.register b "negate" (fun node args ->
      Linked_list.map_in_place node (Access.of_value (List.hd args)) (fun x -> -x);
      [ Value.int (Linked_list.sum node (Access.of_value (List.hd args))) ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "negate" [ Access.to_value head ] with
      | [ v ] -> Alcotest.(check int) "sum on 64-bit" (-600) (Value.to_int v)
      | _ -> Alcotest.fail "arity");
  Alcotest.(check (list int)) "negated at 32-bit origin" [ -100; -200; -300 ]
    (Linked_list.to_list a head)

let scenarios =
  [
    ("read chain", scenario_read_chain);
    ("deep tree search", scenario_deep_tree_search);
    ("update + write-back", scenario_update_writeback);
    ("three-site relay", scenario_three_site_relay);
    ("remote growth (extended_malloc)", scenario_remote_growth);
    ("free and rebuild (extended_free)", scenario_free_and_rebuild);
    ("callee returns structure", scenario_callee_returns_structure);
    ("b-tree remote growth", scenario_btree_remote_growth);
    ("cache persists within session", scenario_cache_persists_within_session);
  ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "strategy-matrix"
    (List.map
       (fun (sname, strategy) ->
         ( sname,
           List.map
             (fun (scen_name, scenario) ->
               tc scen_name `Quick (fun () -> scenario (mk3 strategy)))
             scenarios
           @ [
               tc "heterogeneous 32be/64le" `Quick (fun () ->
                   scenario_heterogeneous (sname, strategy));
             ] ))
       strategies)

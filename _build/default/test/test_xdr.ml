(* Unit tests for the XDR codec: wire layout (big-endian, 4-byte
   padding), roundtrips, and decode error handling. *)

module Xdr = Srpc_xdr.Xdr
open Xdr

let enc_to_string f =
  let e = Enc.create () in
  f e;
  Enc.to_string e

let test_int32_wire_layout () =
  Alcotest.(check string) "big endian" "\x01\x02\x03\x04"
    (enc_to_string (fun e -> Enc.int32 e 0x01020304l))

let test_int_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v (roundturn Enc.int Dec.int v))
    [ 0; 1; -1; 42; 0x7fffffff; -0x80000000 ]

let test_int_out_of_range () =
  Alcotest.(check bool) "too big" true
    (match Enc.int (Enc.create ()) 0x80000000 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_uint32_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check int) (string_of_int v) v (roundturn Enc.uint32 Dec.uint32 v))
    [ 0; 1; 0x7fffffff; 0x80000000; 0xffffffff ]

let test_int64_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check int64) (Int64.to_string v) v (roundturn Enc.int64 Dec.int64 v))
    [ 0L; -1L; Int64.max_int; Int64.min_int; 0x0123456789abcdefL ]

let test_hyper_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v (roundturn Enc.hyper Dec.hyper v))
    [ 0; -1; max_int; min_int; 1 lsl 40 ]

let test_bool_roundtrip () =
  Alcotest.(check bool) "true" true (roundturn Enc.bool Dec.bool true);
  Alcotest.(check bool) "false" false (roundturn Enc.bool Dec.bool false)

let test_bool_wire_is_int () =
  Alcotest.(check string) "true = 1" "\x00\x00\x00\x01"
    (enc_to_string (fun e -> Enc.bool e true))

let test_bad_bool_rejected () =
  let d = Dec.of_string "\x00\x00\x00\x07" in
  Alcotest.(check bool) "7 is not a bool" true
    (match Dec.bool d with _ -> false | exception Decode_error _ -> true)

let test_float_roundtrips () =
  List.iter
    (fun v ->
      Alcotest.(check (float 0.0)) (string_of_float v) v
        (roundturn Enc.float64 Dec.float64 v))
    [ 0.0; -1.5; Float.pi; infinity; neg_infinity; Float.max_float ];
  Alcotest.(check (float 1e-6)) "f32" 2.5 (roundturn Enc.float32 Dec.float32 2.5);
  Alcotest.(check bool) "nan survives" true
    (Float.is_nan (roundturn Enc.float64 Dec.float64 Float.nan))

let test_string_padding () =
  (* length word + 5 bytes + 3 zero pad *)
  Alcotest.(check string) "padded" "\x00\x00\x00\x05hello\x00\x00\x00"
    (enc_to_string (fun e -> Enc.string e "hello"));
  (* multiple of 4 needs no pad *)
  Alcotest.(check string) "no pad" "\x00\x00\x00\x04hell"
    (enc_to_string (fun e -> Enc.string e "hell"))

let test_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) (String.escaped s) s (roundturn Enc.string Dec.string s))
    [ ""; "a"; "ab"; "abc"; "abcd"; "hello world"; String.make 1000 'x'; "\x00\xff" ]

let test_opaque_bytes () =
  let b = Bytes.of_string "binary\x00data" in
  let d = Dec.of_string (enc_to_string (fun e -> Enc.opaque_bytes e b)) in
  Alcotest.(check string) "bytes" "binary\x00data" (Dec.opaque d)

let test_fixed_opaque () =
  let wire = enc_to_string (fun e -> Enc.fixed_opaque e "abcde") in
  Alcotest.(check int) "padded to 8" 8 (String.length wire);
  let d = Dec.of_string wire in
  Alcotest.(check string) "value" "abcde" (Dec.fixed_opaque d 5);
  Dec.check_end d

let test_list_roundtrip () =
  let xs = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  Alcotest.(check (list int)) "list" xs
    (roundturn (fun e -> Enc.list e Enc.int) (fun d -> Dec.list d Dec.int) xs);
  Alcotest.(check (list int)) "empty" []
    (roundturn (fun e -> Enc.list e Enc.int) (fun d -> Dec.list d Dec.int) [])

let test_list_decode_order () =
  (* decoding must be strictly left-to-right *)
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int)) "order" xs
    (roundturn (fun e -> Enc.list e Enc.int) (fun d -> Dec.list d Dec.int) xs)

let test_array_roundtrip () =
  let xs = [| "a"; "bb"; "ccc" |] in
  Alcotest.(check (array string)) "array" xs
    (roundturn (fun e -> Enc.array e Enc.string) (fun d -> Dec.array d Dec.string) xs)

let test_option_roundtrip () =
  let enc e v = Enc.option e Enc.int v in
  let dec d = Dec.option d Dec.int in
  Alcotest.(check (option int)) "some" (Some 7) (roundturn enc dec (Some 7));
  Alcotest.(check (option int)) "none" None (roundturn enc dec None)

let test_truncated_input () =
  let d = Dec.of_string "\x00\x00" in
  Alcotest.(check bool) "truncated" true
    (match Dec.int d with _ -> false | exception Decode_error _ -> true)

let test_truncated_string_body () =
  (* declared length 100, only 4 bytes present *)
  let d = Dec.of_string "\x00\x00\x00\x64abcd" in
  Alcotest.(check bool) "truncated body" true
    (match Dec.string d with _ -> false | exception Decode_error _ -> true)

let test_trailing_bytes_detected () =
  let d = Dec.of_string "\x00\x00\x00\x01\xff" in
  ignore (Dec.int d);
  Alcotest.(check bool) "trailing" true
    (match Dec.check_end d with () -> false | exception Decode_error _ -> true)

let test_remaining_and_at_end () =
  let d = Dec.of_string "\x00\x00\x00\x2a" in
  Alcotest.(check int) "remaining" 4 (Dec.remaining d);
  Alcotest.(check bool) "not at end" false (Dec.at_end d);
  ignore (Dec.int d);
  Alcotest.(check bool) "at end" true (Dec.at_end d)

let test_sequence_of_values () =
  (* mixed-type message framing *)
  let wire =
    enc_to_string (fun e ->
        Enc.int e 1;
        Enc.string e "proc";
        Enc.float64 e 2.5;
        Enc.bool e true)
  in
  Alcotest.(check int) "4-aligned" 0 (String.length wire mod 4);
  let d = Dec.of_string wire in
  Alcotest.(check int) "int" 1 (Dec.int d);
  Alcotest.(check string) "string" "proc" (Dec.string d);
  Alcotest.(check (float 0.0)) "float" 2.5 (Dec.float64 d);
  Alcotest.(check bool) "bool" true (Dec.bool d);
  Dec.check_end d

let test_enc_length_tracks () =
  let e = Enc.create () in
  Alcotest.(check int) "empty" 0 (Enc.length e);
  Enc.int e 5;
  Alcotest.(check int) "one word" 4 (Enc.length e);
  Enc.string e "xyz";
  Alcotest.(check int) "word + padded string" 12 (Enc.length e)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "xdr"
    [
      ( "scalars",
        [
          tc "int32 wire layout" `Quick test_int32_wire_layout;
          tc "int roundtrip" `Quick test_int_roundtrip;
          tc "int out of range" `Quick test_int_out_of_range;
          tc "uint32 roundtrip" `Quick test_uint32_roundtrip;
          tc "int64 roundtrip" `Quick test_int64_roundtrip;
          tc "hyper roundtrip" `Quick test_hyper_roundtrip;
          tc "bool roundtrip" `Quick test_bool_roundtrip;
          tc "bool wire form" `Quick test_bool_wire_is_int;
          tc "bad bool rejected" `Quick test_bad_bool_rejected;
          tc "float roundtrips" `Quick test_float_roundtrips;
        ] );
      ( "strings",
        [
          tc "padding" `Quick test_string_padding;
          tc "roundtrip" `Quick test_string_roundtrip;
          tc "opaque bytes" `Quick test_opaque_bytes;
          tc "fixed opaque" `Quick test_fixed_opaque;
        ] );
      ( "composites",
        [
          tc "list roundtrip" `Quick test_list_roundtrip;
          tc "list decode order" `Quick test_list_decode_order;
          tc "array roundtrip" `Quick test_array_roundtrip;
          tc "option roundtrip" `Quick test_option_roundtrip;
          tc "sequence framing" `Quick test_sequence_of_values;
          tc "encoder length" `Quick test_enc_length_tracks;
        ] );
      ( "errors",
        [
          tc "truncated input" `Quick test_truncated_input;
          tc "truncated string body" `Quick test_truncated_string_body;
          tc "trailing bytes" `Quick test_trailing_bytes_detected;
          tc "remaining / at_end" `Quick test_remaining_and_at_end;
        ] );
    ]

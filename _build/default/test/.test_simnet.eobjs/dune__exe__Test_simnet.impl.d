test/test_simnet.ml: Alcotest Clock Cost_model Format List Srpc_simnet Stats String Trace Transport

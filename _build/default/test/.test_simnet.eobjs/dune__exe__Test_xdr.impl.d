test/test_xdr.ml: Alcotest Bytes Dec Enc Float Int64 List Srpc_xdr String

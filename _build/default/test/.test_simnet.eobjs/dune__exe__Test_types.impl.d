test/test_types.ml: Alcotest Arch Format Layout List Registry Srpc_memory Srpc_types Srpc_xdr Type_codec Type_desc

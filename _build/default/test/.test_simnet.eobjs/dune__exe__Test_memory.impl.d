test/test_memory.ml: Address_space Alcotest Allocator Arch Bytes List Mem Mmu Option Printf Prot Space_id Srpc_memory String

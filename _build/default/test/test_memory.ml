(* Unit tests for the simulated-memory substrate: address spaces, page
   protection and faults, the heap allocator, the MMU restart loop, and
   arch-aware loads/stores. *)

open Srpc_memory

let sid = Space_id.make ~site:1 ~proc:0
let mk_space ?(page_size = 256) ?(arch = Arch.sparc32) () =
  Address_space.create ~page_size ~id:sid ~arch ()

(* --- Space_id --- *)

let test_space_id_roundtrip () =
  let id = Space_id.make ~site:12 ~proc:34 in
  Alcotest.(check string) "to_string" "12.34" (Space_id.to_string id);
  Alcotest.(check bool) "roundtrip" true
    (Space_id.equal id (Space_id.of_string (Space_id.to_string id)))

let test_space_id_of_string_invalid () =
  Alcotest.check_raises "no dot" (Invalid_argument "Space_id.of_string: missing '.'")
    (fun () -> ignore (Space_id.of_string "42"))

let test_space_id_compare_order () =
  let a = Space_id.make ~site:1 ~proc:5 in
  let b = Space_id.make ~site:2 ~proc:0 in
  let c = Space_id.make ~site:1 ~proc:6 in
  Alcotest.(check bool) "site first" true (Space_id.compare a b < 0);
  Alcotest.(check bool) "proc second" true (Space_id.compare a c < 0);
  Alcotest.(check int) "equal" 0 (Space_id.compare a a)

(* --- Prot --- *)

let test_prot_permissions () =
  Alcotest.(check bool) "no read" false (Prot.allows_read Prot.No_access);
  Alcotest.(check bool) "no write" false (Prot.allows_write Prot.No_access);
  Alcotest.(check bool) "ro read" true (Prot.allows_read Prot.Read_only);
  Alcotest.(check bool) "ro write" false (Prot.allows_write Prot.Read_only);
  Alcotest.(check bool) "rw read" true (Prot.allows_read Prot.Read_write);
  Alcotest.(check bool) "rw write" true (Prot.allows_write Prot.Read_write)

(* --- Address_space basics --- *)

let test_space_page_arithmetic () =
  let s = mk_space () in
  Alcotest.(check int) "page of 0" 0 (Address_space.page_of_addr s 0);
  Alcotest.(check int) "page of 255" 0 (Address_space.page_of_addr s 255);
  Alcotest.(check int) "page of 256" 1 (Address_space.page_of_addr s 256);
  Alcotest.(check int) "base of 3" 768 (Address_space.page_base s 3)

let test_space_page_size_power_of_two () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Address_space.create: page_size must be a power of two")
    (fun () -> ignore (Address_space.create ~page_size:100 ~id:sid ~arch:Arch.sparc32 ()))

let test_space_rw_roundtrip () =
  let s = mk_space () in
  Address_space.map s ~page:1 ~prot:Prot.Read_write;
  Address_space.write s ~addr:300 (Bytes.of_string "hello");
  Alcotest.(check string) "read back" "hello"
    (Bytes.to_string (Address_space.read s ~addr:300 ~len:5))

let test_space_cross_page_access () =
  let s = mk_space () in
  Address_space.map s ~page:1 ~prot:Prot.Read_write;
  Address_space.map s ~page:2 ~prot:Prot.Read_write;
  (* spans the 512 boundary *)
  Address_space.write s ~addr:500 (Bytes.of_string "0123456789ABCDEF");
  Alcotest.(check string) "spanning read" "0123456789ABCDEF"
    (Bytes.to_string (Address_space.read s ~addr:500 ~len:16))

let test_space_unmapped_is_segv () =
  let s = mk_space () in
  match Address_space.read s ~addr:300 ~len:4 with
  | _ -> Alcotest.fail "expected Segv"
  | exception Address_space.Segv { addr; _ } -> Alcotest.(check int) "addr" 300 addr

let test_space_protected_read_faults () =
  let s = mk_space () in
  Address_space.map s ~page:1 ~prot:Prot.No_access;
  match Address_space.read s ~addr:260 ~len:4 with
  | _ -> Alcotest.fail "expected fault"
  | exception Address_space.Page_fault f ->
    Alcotest.(check int) "page" 1 f.Address_space.page;
    Alcotest.(check int) "addr" 260 f.Address_space.addr;
    Alcotest.(check bool) "read" true (f.Address_space.access = Address_space.Read)

let test_space_readonly_write_faults () =
  let s = mk_space () in
  Address_space.map s ~page:0 ~prot:Prot.Read_only;
  (match Address_space.read s ~addr:10 ~len:2 with
  | _ -> ()
  | exception _ -> Alcotest.fail "read should succeed");
  match Address_space.write s ~addr:10 (Bytes.of_string "zz") with
  | _ -> Alcotest.fail "expected fault"
  | exception Address_space.Page_fault f ->
    Alcotest.(check bool) "write" true (f.Address_space.access = Address_space.Write)

let test_space_fault_has_no_partial_effect () =
  (* Access spanning a writable then protected page must not modify the
     writable page before faulting — instruction-restart semantics. *)
  let s = mk_space () in
  Address_space.map s ~page:1 ~prot:Prot.Read_write;
  Address_space.map s ~page:2 ~prot:Prot.Read_only;
  (match Address_space.write s ~addr:510 (Bytes.of_string "XXXX") with
  | _ -> Alcotest.fail "expected fault"
  | exception Address_space.Page_fault _ -> ());
  Alcotest.(check string) "first page untouched" "\000\000"
    (Bytes.to_string (Address_space.read s ~addr:510 ~len:2))

let test_space_fault_reports_first_bad_page () =
  let s = mk_space () in
  Address_space.map s ~page:1 ~prot:Prot.Read_write;
  Address_space.map s ~page:2 ~prot:Prot.No_access;
  match Address_space.read s ~addr:400 ~len:200 with
  | _ -> Alcotest.fail "expected fault"
  | exception Address_space.Page_fault f ->
    Alcotest.(check int) "page 2" 2 f.Address_space.page;
    (* fault address is the first byte on the offending page *)
    Alcotest.(check int) "addr at page base" 512 f.Address_space.addr

let test_space_unchecked_ignores_protection () =
  let s = mk_space () in
  Address_space.map s ~page:1 ~prot:Prot.No_access;
  Address_space.write_unchecked s ~addr:260 (Bytes.of_string "sys");
  Alcotest.(check string) "system path" "sys"
    (Bytes.to_string (Address_space.read_unchecked s ~addr:260 ~len:3))

let test_space_remap_keeps_contents () =
  let s = mk_space () in
  Address_space.map s ~page:1 ~prot:Prot.Read_write;
  Address_space.write s ~addr:256 (Bytes.of_string "keep");
  Address_space.map s ~page:1 ~prot:Prot.Read_only;
  Alcotest.(check string) "kept" "keep"
    (Bytes.to_string (Address_space.read s ~addr:256 ~len:4))

let test_space_unmap () =
  let s = mk_space () in
  Address_space.map s ~page:1 ~prot:Prot.Read_write;
  Address_space.unmap s ~page:1;
  Alcotest.(check bool) "unmapped" false (Address_space.is_mapped s ~page:1);
  Address_space.unmap s ~page:1 (* idempotent *)

let test_space_ensure_mapped_partial () =
  let s = mk_space () in
  Address_space.map s ~page:1 ~prot:Prot.Read_only;
  Address_space.ensure_mapped s ~addr:200 ~len:400 ~prot:Prot.Read_write;
  Alcotest.(check (option bool)) "page 0 mapped rw" (Some true)
    (Option.map Prot.allows_write (Address_space.protection s ~page:0));
  Alcotest.(check (option bool)) "page 1 untouched" (Some false)
    (Option.map Prot.allows_write (Address_space.protection s ~page:1));
  Alcotest.(check bool) "page 2 mapped" true (Address_space.is_mapped s ~page:2)

let test_space_zero_length_access () =
  let s = mk_space () in
  Alcotest.(check string) "empty read" ""
    (Bytes.to_string (Address_space.read s ~addr:999 ~len:0));
  Address_space.write s ~addr:999 Bytes.empty

let test_space_fill_zero () =
  let s = mk_space () in
  Address_space.map s ~page:0 ~prot:Prot.Read_write;
  Address_space.write s ~addr:0 (Bytes.of_string "garbage!");
  Address_space.fill_zero_unchecked s ~addr:0 ~len:8;
  Alcotest.(check string) "zeroed" (String.make 8 '\000')
    (Bytes.to_string (Address_space.read s ~addr:0 ~len:8))

let test_space_mapped_pages_sorted () =
  let s = mk_space () in
  Address_space.map s ~page:5 ~prot:Prot.Read_write;
  Address_space.map s ~page:2 ~prot:Prot.Read_write;
  Alcotest.(check (list int)) "sorted" [ 2; 5 ] (Address_space.mapped_pages s)

(* --- Allocator --- *)

let mk_heap ?(page_size = 256) () =
  let s = mk_space ~page_size () in
  (s, Allocator.create ~space:s ~base:1024 ~limit:8192)

let check_inv heap =
  match Allocator.check_invariants heap with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant: " ^ msg)

let test_alloc_returns_aligned_zeroed () =
  let s, heap = mk_heap () in
  let a = Allocator.alloc heap ~size:10 in
  Alcotest.(check int) "aligned" 0 (a mod 8);
  Alcotest.(check string) "zeroed" (String.make 10 '\000')
    (Bytes.to_string (Address_space.read s ~addr:a ~len:10));
  check_inv heap

let test_alloc_distinct_blocks () =
  let _, heap = mk_heap () in
  let a = Allocator.alloc heap ~size:16 in
  let b = Allocator.alloc heap ~size:16 in
  Alcotest.(check bool) "disjoint" true (abs (a - b) >= 16);
  check_inv heap

let test_alloc_free_reuse () =
  let _, heap = mk_heap () in
  let a = Allocator.alloc heap ~size:32 in
  Allocator.free heap a;
  let b = Allocator.alloc heap ~size:32 in
  Alcotest.(check int) "first fit reuses" a b;
  check_inv heap

let test_alloc_coalescing () =
  let _, heap = mk_heap () in
  let a = Allocator.alloc heap ~size:16 in
  let b = Allocator.alloc heap ~size:16 in
  let c = Allocator.alloc heap ~size:16 in
  ignore c;
  Allocator.free heap a;
  Allocator.free heap b;
  (* coalesced hole fits a 32-byte block at the original address *)
  let d = Allocator.alloc heap ~size:32 in
  Alcotest.(check int) "coalesced" a d;
  check_inv heap

let test_alloc_invalid_free () =
  let _, heap = mk_heap () in
  let a = Allocator.alloc heap ~size:8 in
  Alcotest.check_raises "bad addr" (Allocator.Invalid_free (a + 8)) (fun () ->
      Allocator.free heap (a + 8))

let test_alloc_double_free () =
  let _, heap = mk_heap () in
  let a = Allocator.alloc heap ~size:8 in
  Allocator.free heap a;
  Alcotest.check_raises "double" (Allocator.Invalid_free a) (fun () ->
      Allocator.free heap a)

let test_alloc_out_of_region () =
  let _, heap = mk_heap () in
  match Allocator.alloc heap ~size:100000 with
  | _ -> Alcotest.fail "expected Out_of_region"
  | exception Allocator.Out_of_region { requested; free } ->
    Alcotest.(check bool) "requested" true (requested >= 100000);
    Alcotest.(check int) "free" (8192 - 1024) free

let test_alloc_exhaustion_and_recovery () =
  let _, heap = mk_heap () in
  let blocks = List.init 7 (fun _ -> Allocator.alloc heap ~size:1024) in
  (match Allocator.alloc heap ~size:1024 with
  | _ -> Alcotest.fail "should be full"
  | exception Allocator.Out_of_region _ -> ());
  List.iter (Allocator.free heap) blocks;
  Alcotest.(check int) "all free" (8192 - 1024) (Allocator.free_bytes heap);
  Alcotest.(check int) "none live" 0 (Allocator.live_blocks heap);
  check_inv heap

let test_alloc_accounting () =
  let _, heap = mk_heap () in
  let a = Allocator.alloc heap ~size:10 in
  Alcotest.(check int) "rounded to 16" 16 (Allocator.allocated_bytes heap);
  Alcotest.(check (option int)) "block size" (Some 16) (Allocator.block_size heap a);
  Alcotest.(check bool) "is_allocated" true (Allocator.is_allocated heap a);
  Allocator.free heap a;
  Alcotest.(check bool) "freed" false (Allocator.is_allocated heap a)

let test_alloc_zero_size () =
  let _, heap = mk_heap () in
  let a = Allocator.alloc heap ~size:0 in
  Alcotest.(check (option int)) "min block" (Some 8) (Allocator.block_size heap a)

let test_alloc_maps_pages () =
  let s, heap = mk_heap () in
  let a = Allocator.alloc heap ~size:1000 in
  let first = Address_space.page_of_addr s a in
  let last = Address_space.page_of_addr s (a + 999) in
  for p = first to last do
    Alcotest.(check bool) (Printf.sprintf "page %d" p) true
      (Address_space.is_mapped s ~page:p)
  done

let test_alloc_reuse_is_zeroed () =
  let s, heap = mk_heap () in
  let a = Allocator.alloc heap ~size:16 in
  Address_space.write s ~addr:a (Bytes.of_string "dirtydirtydirty!");
  Allocator.free heap a;
  let b = Allocator.alloc heap ~size:16 in
  Alcotest.(check int) "same block" a b;
  Alcotest.(check string) "zeroed on reuse" (String.make 16 '\000')
    (Bytes.to_string (Address_space.read s ~addr:b ~len:16))

(* --- MMU --- *)

let test_mmu_no_handler_unhandled () =
  let s = mk_space () in
  Address_space.map s ~page:0 ~prot:Prot.No_access;
  let m = Mmu.create s in
  match Mmu.read m ~addr:0 ~len:1 with
  | _ -> Alcotest.fail "expected Unhandled_fault"
  | exception Mmu.Unhandled_fault _ -> ()

let test_mmu_handler_resolves_and_restarts () =
  let s = mk_space () in
  Address_space.map s ~page:0 ~prot:Prot.No_access;
  Address_space.write_unchecked s ~addr:4 (Bytes.of_string "data");
  let m = Mmu.create s in
  let runs = ref 0 in
  Mmu.set_handler m (fun f ->
      incr runs;
      Address_space.set_protection s ~page:f.Address_space.page Prot.Read_only);
  Alcotest.(check string) "restarted read" "data"
    (Bytes.to_string (Mmu.read m ~addr:4 ~len:4));
  Alcotest.(check int) "one handler run" 1 !runs

let test_mmu_two_page_fault_sequence () =
  let s = mk_space () in
  Address_space.map s ~page:0 ~prot:Prot.No_access;
  Address_space.map s ~page:1 ~prot:Prot.No_access;
  let m = Mmu.create s in
  let runs = ref 0 in
  Mmu.set_handler m (fun f ->
      incr runs;
      Address_space.set_protection s ~page:f.Address_space.page Prot.Read_write);
  Mmu.write m ~addr:250 (Bytes.make 12 'x');
  Alcotest.(check int) "two handler runs" 2 !runs

let test_mmu_fault_loop_detected () =
  let s = mk_space () in
  Address_space.map s ~page:0 ~prot:Prot.No_access;
  let m = Mmu.create s in
  Mmu.set_handler m (fun _ -> () (* never resolves *));
  match Mmu.read m ~addr:0 ~len:1 with
  | _ -> Alcotest.fail "expected Fault_loop"
  | exception Mmu.Fault_loop _ -> ()

let test_mmu_clear_handler () =
  let s = mk_space () in
  Address_space.map s ~page:0 ~prot:Prot.No_access;
  let m = Mmu.create s in
  Mmu.set_handler m (fun f ->
      Address_space.set_protection s ~page:f.Address_space.page Prot.Read_only);
  ignore (Mmu.read m ~addr:0 ~len:1);
  Address_space.set_protection s ~page:0 Prot.No_access;
  Mmu.clear_handler m;
  match Mmu.read m ~addr:0 ~len:1 with
  | _ -> Alcotest.fail "expected Unhandled_fault"
  | exception Mmu.Unhandled_fault _ -> ()

(* --- Mem codec and accessors --- *)

let test_mem_codec_endianness () =
  let b = Bytes.create 4 in
  Mem.Codec.set_i32 Arch.Big b 0 0x01020304l;
  Alcotest.(check char) "big first byte" '\001' (Bytes.get b 0);
  Mem.Codec.set_i32 Arch.Little b 0 0x01020304l;
  Alcotest.(check char) "little first byte" '\004' (Bytes.get b 0)

let test_mem_codec_word_sizes () =
  let b = Bytes.make 8 '\000' in
  Mem.Codec.set_word Arch.sparc32 b 0 0xdeadbeef;
  Alcotest.(check int) "32-bit word" 0xdeadbeef (Mem.Codec.get_word Arch.sparc32 b 0);
  Mem.Codec.set_word Arch.lp64_le b 0 0x1234567890;
  Alcotest.(check int) "64-bit word" 0x1234567890 (Mem.Codec.get_word Arch.lp64_le b 0)

let test_mem_codec_word_range_check () =
  let b = Bytes.make 4 '\000' in
  Alcotest.(check bool) "out of range rejected" true
    (match Mem.Codec.set_word Arch.sparc32 b 0 0x100000000 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_mem_load_store_via_mmu () =
  let s = mk_space ~arch:Arch.lp64_be () in
  Address_space.map s ~page:0 ~prot:Prot.Read_write;
  let m = Mmu.create s in
  Mem.store_i64 m ~addr:8 0x1122334455667788L;
  Alcotest.(check int64) "i64" 0x1122334455667788L (Mem.load_i64 m ~addr:8);
  Mem.store_f64 m ~addr:16 3.14159;
  Alcotest.(check (float 1e-12)) "f64" 3.14159 (Mem.load_f64 m ~addr:16);
  Mem.store_word m ~addr:24 0xcafe;
  Alcotest.(check int) "word" 0xcafe (Mem.load_word m ~addr:24);
  Mem.store_i16 m ~addr:32 0xbeef;
  Alcotest.(check int) "i16" 0xbeef (Mem.load_i16 m ~addr:32);
  Mem.store_i8 m ~addr:34 0x7f;
  Alcotest.(check int) "i8" 0x7f (Mem.load_i8 m ~addr:34)

let test_mem_raw_word () =
  let s = mk_space ~arch:Arch.ilp32_le () in
  Address_space.map s ~page:0 ~prot:Prot.No_access;
  Mem.raw_store_word s ~addr:0 0xabcd;
  Alcotest.(check int) "raw word through protection" 0xabcd
    (Mem.raw_load_word s ~addr:0)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "memory"
    [
      ( "space-id",
        [
          tc "string roundtrip" `Quick test_space_id_roundtrip;
          tc "invalid parse" `Quick test_space_id_of_string_invalid;
          tc "ordering" `Quick test_space_id_compare_order;
        ] );
      ("prot", [ tc "permission table" `Quick test_prot_permissions ]);
      ( "address-space",
        [
          tc "page arithmetic" `Quick test_space_page_arithmetic;
          tc "page size must be power of two" `Quick test_space_page_size_power_of_two;
          tc "read/write roundtrip" `Quick test_space_rw_roundtrip;
          tc "cross-page access" `Quick test_space_cross_page_access;
          tc "unmapped access is Segv" `Quick test_space_unmapped_is_segv;
          tc "protected read faults" `Quick test_space_protected_read_faults;
          tc "read-only write faults" `Quick test_space_readonly_write_faults;
          tc "fault has no partial effect" `Quick test_space_fault_has_no_partial_effect;
          tc "fault reports first bad page" `Quick test_space_fault_reports_first_bad_page;
          tc "unchecked path ignores protection" `Quick test_space_unchecked_ignores_protection;
          tc "remap keeps contents" `Quick test_space_remap_keeps_contents;
          tc "unmap" `Quick test_space_unmap;
          tc "ensure_mapped maps only gaps" `Quick test_space_ensure_mapped_partial;
          tc "zero-length access" `Quick test_space_zero_length_access;
          tc "fill zero" `Quick test_space_fill_zero;
          tc "mapped pages sorted" `Quick test_space_mapped_pages_sorted;
        ] );
      ( "allocator",
        [
          tc "aligned and zeroed" `Quick test_alloc_returns_aligned_zeroed;
          tc "distinct blocks" `Quick test_alloc_distinct_blocks;
          tc "free then reuse (first fit)" `Quick test_alloc_free_reuse;
          tc "coalescing" `Quick test_alloc_coalescing;
          tc "invalid free" `Quick test_alloc_invalid_free;
          tc "double free" `Quick test_alloc_double_free;
          tc "out of region" `Quick test_alloc_out_of_region;
          tc "exhaustion and recovery" `Quick test_alloc_exhaustion_and_recovery;
          tc "accounting" `Quick test_alloc_accounting;
          tc "zero size gets minimum block" `Quick test_alloc_zero_size;
          tc "maps backing pages" `Quick test_alloc_maps_pages;
          tc "reused block is zeroed" `Quick test_alloc_reuse_is_zeroed;
        ] );
      ( "mmu",
        [
          tc "no handler -> unhandled" `Quick test_mmu_no_handler_unhandled;
          tc "handler resolves, access restarts" `Quick test_mmu_handler_resolves_and_restarts;
          tc "two-page fault sequence" `Quick test_mmu_two_page_fault_sequence;
          tc "fault loop detected" `Quick test_mmu_fault_loop_detected;
          tc "clear handler" `Quick test_mmu_clear_handler;
        ] );
      ( "mem",
        [
          tc "codec endianness" `Quick test_mem_codec_endianness;
          tc "codec word sizes" `Quick test_mem_codec_word_sizes;
          tc "codec word range check" `Quick test_mem_codec_word_range_check;
          tc "typed loads/stores via MMU" `Quick test_mem_load_store_via_mmu;
          tc "raw word access" `Quick test_mem_raw_word;
        ] );
    ]

(* Failure injection: the runtime's behaviour on the unhappy paths —
   resource exhaustion, dangling references, protocol misuse, and
   session discipline violations. Errors must surface as typed
   exceptions at the right place, never corrupt state, and leave the
   system usable. *)

open Srpc_memory
open Srpc_types
open Srpc_core
open Srpc_simnet
open Srpc_workloads

let node_ty = "fnode"

let mk2 ?(strategy = Strategy.smart ()) () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 ~strategy () in
  let b = Cluster.add_node cluster ~site:2 ~strategy () in
  Cluster.register_type cluster node_ty
    (Type_desc.Struct
       [ ("next", Type_desc.ptr node_ty); ("data", Type_desc.i64) ]);
  (cluster, a, b)

let mk_cell node data =
  let p = Access.ptr ~ty:node_ty (Node.malloc node ~ty:node_ty) in
  Access.set_i64 node p ~field:"data" (Int64.of_int data);
  p

(* --- resource exhaustion --- *)

let test_heap_exhaustion_recoverable () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  (* a tiny heap: 2 pages *)
  let a =
    Cluster.add_node cluster ~site:1 ~page_size:256 ()
  in
  ignore a;
  (* Node-level region limits are fixed; exhaust with many allocations
     instead on a tree that cannot fit the heap region is impractical —
     use the allocator directly through a small region. *)
  let space = Address_space.create ~page_size:256 ~id:(Space_id.make ~site:9 ~proc:0) ~arch:Arch.sparc32 () in
  let heap = Allocator.create ~space ~base:256 ~limit:1024 in
  let b1 = Allocator.alloc heap ~size:256 in
  let _b2 = Allocator.alloc heap ~size:256 in
  (match Allocator.alloc heap ~size:512 with
  | _ -> Alcotest.fail "expected exhaustion"
  | exception Allocator.Out_of_region _ -> ());
  Allocator.free heap b1;
  (* still usable after the failure *)
  let b3 = Allocator.alloc heap ~size:128 in
  Alcotest.(check bool) "recovered" true (Allocator.is_allocated heap b3)

let test_callee_heap_exhaustion_propagates () =
  let _, a, b = mk2 () in
  Node.register b "hog" (fun node _ ->
      (* allocate big arrays until the callee's heap region gives out *)
      let rec go () =
        ignore (Node.malloc_n node ~ty:node_ty 100_000);
        go ()
      in
      go ());
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "hog" [] with
      | _ -> Alcotest.fail "expected remote failure"
      | exception Node.Remote_error msg ->
        Alcotest.(check bool) "out of region surfaced" true
          (String.length msg > 0))

(* --- dangling and invalid references --- *)

let test_fetch_after_free_is_remote_error () =
  let _, a, b = mk2 () in
  let p = mk_cell a 1 in
  (* free the datum before the callee dereferences its pointer *)
  Node.register b "use_late" (fun node args ->
      let q = Access.of_value (List.hd args) in
      [ Value.int (Access.get_int node q ~field:"data") ]);
  Node.with_session a (fun () ->
      Node.extended_free a p.Access.addr;
      (* the callee's fault-time fetch hits a freed original; with no
         liveness check the bytes are stale-but-readable, so the call
         still completes — the important property is no crash and a
         well-formed result *)
      match Node.call a ~dst:(Node.id b) "use_late" [ Access.to_value p ] with
      | [ v ] -> ignore (Value.to_int v)
      | _ -> Alcotest.fail "bad arity"
      | exception Node.Remote_error _ -> ())

let test_unswizzle_garbage_address () =
  let _, a, _ = mk2 () in
  Alcotest.(check bool) "garbage rejected" true
    (match Node.unswizzle a ~ty:node_ty 0x123456789 with
    | _ -> false
    | exception Node.Invalid_pointer _ -> true)

let test_unswizzle_unknown_cache_addr () =
  let _, a, b = mk2 () in
  ignore b;
  (* an address inside the cache region but not a slot base *)
  let bogus = 0x4000008 in
  Alcotest.(check bool) "cache interior rejected" true
    (match Node.unswizzle a ~ty:node_ty bogus with
    | _ -> false
    | exception Node.Invalid_pointer _ -> true)

let test_remote_double_free_propagates () =
  let _, a, b = mk2 ~strategy:{ (Strategy.smart ()) with Strategy.batch_remote_ops = false } () in
  let p = mk_cell a 1 in
  Node.register b "free_remote" (fun node args ->
      Node.extended_free node (Value.to_addr (List.hd args));
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "free_remote" [ Access.to_value p ]);
      (* the second free at the origin must fail loudly *)
      Alcotest.(check bool) "double free rejected" true
        (match Node.extended_free a p.Access.addr with
        | () -> false
        | exception Allocator.Invalid_free _ -> true))

(* --- protocol misuse --- *)

let test_unknown_peer_is_transport_error () =
  let _, a, _ = mk2 () in
  Node.with_session a (fun () ->
      Alcotest.check_raises "unknown endpoint"
        (Transport.Unknown_endpoint "7.0")
        (fun () ->
          ignore
            (Node.call a ~dst:(Space_id.make ~site:7 ~proc:0) "nope" [])))

let test_end_session_by_non_ground_rejected () =
  let _, a, b = mk2 () in
  Node.begin_session a;
  Alcotest.(check bool) "non-ground rejected" true
    (match Node.end_session b with
    | () -> false
    | exception Invalid_argument _ -> true);
  Node.end_session a

let test_nested_begin_session_rejected () =
  let _, a, b = mk2 () in
  Node.begin_session a;
  Alcotest.check_raises "double begin" Session.Session_already_active (fun () ->
      Node.begin_session b);
  Node.end_session a

let test_with_session_ends_on_exception () =
  let cluster, a, _ = mk2 () in
  (match Node.with_session a (fun () -> failwith "body blew up") with
  | _ -> Alcotest.fail "should raise"
  | exception Failure _ -> ());
  Alcotest.(check bool) "session closed" false
    (Session.is_active (Cluster.session cluster))

let test_bad_arity_surfaces_cleanly () =
  let _, a, b = mk2 () in
  Node.register b "strict" (fun _ args ->
      match args with
      | [ x ] -> [ x ]
      | _ -> invalid_arg "strict: want one argument");
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "strict" [] with
      | _ -> Alcotest.fail "expected error"
      | exception Node.Remote_error msg ->
        Alcotest.(check bool) "reason kept" true (String.length msg > 5))

let test_error_does_not_poison_next_call () =
  let _, a, b = mk2 () in
  Node.register b "flaky" (fun _ args ->
      if Value.to_bool (List.hd args) then failwith "boom" else [ Value.int 7 ]);
  Node.with_session a (fun () ->
      (match Node.call a ~dst:(Node.id b) "flaky" [ Value.bool true ] with
      | _ -> Alcotest.fail "expected error"
      | exception Node.Remote_error _ -> ());
      match Node.call a ~dst:(Node.id b) "flaky" [ Value.bool false ] with
      | [ v ] -> Alcotest.(check int) "recovered" 7 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_stale_session_frame_rejected () =
  let cluster, a, b = mk2 () in
  Node.register b "nop" (fun _ _ -> []);
  (* run and end a first session (id 1) *)
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "nop" []));
  (* open session 2, then inject a frame stamped with the dead session *)
  Node.begin_session a;
  let stale =
    Wire.encode_request ~reg:(Cluster.registry cluster)
      (Wire.Call { session = 1; proc = "nop"; args = []; writebacks = []; eager = [] })
  in
  let reply =
    Transport.rpc (Cluster.transport cluster) ~src:"1.0" ~dst:"2.0" stale
  in
  (match Wire.decode_response ~reg:(Cluster.registry cluster) reply with
  | Wire.Error msg ->
    Alcotest.(check bool) "names the mismatch" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "stale frame accepted");
  (* the live session still works *)
  (match Node.call a ~dst:(Node.id b) "nop" [] with
  | [] -> ()
  | _ -> Alcotest.fail "live call broken");
  Node.end_session a

(* --- multi-process sites --- *)

let test_two_processes_same_site () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let p0 = Cluster.add_node cluster ~site:1 ~proc:0 () in
  let p1 = Cluster.add_node cluster ~site:1 ~proc:1 () in
  Cluster.register_type cluster node_ty
    (Type_desc.Struct
       [ ("next", Type_desc.ptr node_ty); ("data", Type_desc.i64) ]);
  let cell = mk_cell p0 77 in
  Node.register p1 "read" (fun node args ->
      [ Value.int (Access.get_int node (Access.of_value (List.hd args)) ~field:"data") ]);
  Node.with_session p0 (fun () ->
      match Node.call p0 ~dst:(Node.id p1) "read" [ Access.to_value cell ] with
      | [ v ] -> Alcotest.(check int) "cross-process" 77 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_duplicate_node_rejected () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  ignore (Cluster.add_node cluster ~site:1 ());
  Alcotest.(check bool) "duplicate id" true
    (match Cluster.add_node cluster ~site:1 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- introspection --- *)

let test_introspect_counts () =
  let _, a, b = mk2 () in
  let p = mk_cell a 5 in
  Node.register b "touch" (fun node args ->
      ignore (Access.get_int node (Access.of_value (List.hd args)) ~field:"data");
      []);
  Node.begin_session a;
  ignore (Node.call a ~dst:(Node.id b) "touch" [ Access.to_value p ]);
  let h = Introspect.heap_stats a in
  Alcotest.(check int) "one live block" 1 h.Introspect.live_blocks;
  let c = Introspect.cache_stats b in
  Alcotest.(check int) "one cached entry" 1 c.Introspect.entries;
  Alcotest.(check int) "present" 1 c.Introspect.present;
  Alcotest.(check (list (pair string int))) "by origin" [ ("1.0", 1) ]
    c.Introspect.by_origin;
  let rendered = Format.asprintf "%a" Introspect.pp b in
  Alcotest.(check bool) "renders" true (String.length rendered > 40);
  Node.end_session a;
  let c = Introspect.cache_stats b in
  Alcotest.(check int) "empty after invalidate" 0 c.Introspect.entries

let test_workload_after_failures () =
  (* after a burst of failures the cluster still runs a real workload *)
  let cluster, a, b = mk2 () in
  (try ignore (Node.call a ~dst:(Node.id b) "nope" []) with _ -> ());
  Tree.register_types cluster;
  let root = Tree.build a ~depth:6 in
  Node.register b "count" (fun node args ->
      [ Value.int (Tree.count node (Access.of_value (List.hd args))) ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "count" [ Access.to_value root ] with
      | [ v ] -> Alcotest.(check int) "still works" 63 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "failures"
    [
      ( "exhaustion",
        [
          tc "heap exhaustion is recoverable" `Quick test_heap_exhaustion_recoverable;
          tc "callee heap exhaustion propagates" `Quick
            test_callee_heap_exhaustion_propagates;
        ] );
      ( "dangling",
        [
          tc "fetch after free" `Quick test_fetch_after_free_is_remote_error;
          tc "garbage address rejected" `Quick test_unswizzle_garbage_address;
          tc "cache interior rejected" `Quick test_unswizzle_unknown_cache_addr;
          tc "remote double free" `Quick test_remote_double_free_propagates;
        ] );
      ( "protocol-misuse",
        [
          tc "unknown peer" `Quick test_unknown_peer_is_transport_error;
          tc "end by non-ground" `Quick test_end_session_by_non_ground_rejected;
          tc "nested begin" `Quick test_nested_begin_session_rejected;
          tc "with_session ends on exception" `Quick test_with_session_ends_on_exception;
          tc "bad arity surfaces" `Quick test_bad_arity_surfaces_cleanly;
          tc "error does not poison next call" `Quick test_error_does_not_poison_next_call;
          tc "stale session frame rejected" `Quick test_stale_session_frame_rejected;
        ] );
      ( "topology",
        [
          tc "two processes on one site" `Quick test_two_processes_same_site;
          tc "duplicate node rejected" `Quick test_duplicate_node_rejected;
        ] );
      ( "introspection",
        [
          tc "stats and rendering" `Quick test_introspect_counts;
          tc "workload survives failures" `Quick test_workload_after_failures;
        ] );
    ]

(* Unit tests for the type system: descriptors, the registry (name
   server), per-architecture layout and leaf enumeration. *)

open Srpc_memory
open Srpc_types
open Type_desc

let mk_reg () =
  let reg = Registry.create () in
  Registry.register reg "node"
    (Struct [ ("left", ptr "node"); ("right", ptr "node"); ("data", i64) ]);
  Registry.register reg "pair" (Struct [ ("a", i32); ("b", i32) ]);
  Registry.register reg "mixed"
    (Struct [ ("tag", i8); ("value", i64); ("weight", f32) ]);
  reg

(* --- descriptors --- *)

let test_prim_sizes () =
  List.iter
    (fun (p, n) -> Alcotest.(check int) "size" n (prim_size p))
    [ (I8, 1); (I16, 2); (I32, 4); (I64, 8); (F32, 4); (F64, 8) ]

let test_desc_equal () =
  Alcotest.(check bool) "equal" true
    (equal (Struct [ ("x", i32) ]) (Struct [ ("x", i32) ]));
  Alcotest.(check bool) "field name" false
    (equal (Struct [ ("x", i32) ]) (Struct [ ("y", i32) ]));
  Alcotest.(check bool) "arity" false
    (equal (Struct [ ("x", i32) ]) (Struct [ ("x", i32); ("y", i32) ]));
  Alcotest.(check bool) "array len" false (equal (Array (i8, 3)) (Array (i8, 4)));
  Alcotest.(check bool) "pointer target" false (equal (ptr "a") (ptr "b"))

let test_desc_pp () =
  Alcotest.(check string) "pointer" "node*" (Format.asprintf "%a" pp (ptr "node"));
  Alcotest.(check string) "array" "i32[4]" (Format.asprintf "%a" pp (Array (i32, 4)))

(* --- registry --- *)

let test_registry_find () =
  let reg = mk_reg () in
  Alcotest.(check bool) "mem" true (Registry.mem reg "node");
  Alcotest.(check bool) "not mem" false (Registry.mem reg "zilch");
  Alcotest.check_raises "unknown" (Registry.Unknown_type "zilch") (fun () ->
      ignore (Registry.find reg "zilch"))

let test_registry_idempotent_register () =
  let reg = mk_reg () in
  Registry.register reg "pair" (Struct [ ("a", i32); ("b", i32) ]);
  Alcotest.check_raises "conflict" (Registry.Duplicate_type "pair") (fun () ->
      Registry.register reg "pair" (Struct [ ("a", i64); ("b", i64) ]))

let test_registry_ids_roundtrip () =
  let reg = mk_reg () in
  List.iter
    (fun name ->
      let id = Registry.id_of_name reg name in
      Alcotest.(check string) name name (Registry.name_of_id reg id))
    (Registry.names reg);
  Alcotest.check_raises "unknown id" (Registry.Unknown_type "#999") (fun () ->
      ignore (Registry.name_of_id reg 999))

let test_registry_ids_distinct () =
  let reg = mk_reg () in
  let ids = List.map (Registry.id_of_name reg) (Registry.names reg) in
  Alcotest.(check int) "distinct" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_registry_resolve_alias () =
  let reg = mk_reg () in
  Registry.register reg "alias" (Named "pair");
  Registry.register reg "alias2" (Named "alias");
  match Registry.resolve reg (Named "alias2") with
  | Struct [ ("a", _); ("b", _) ] -> ()
  | d -> Alcotest.failf "resolved to %a" pp d

let test_registry_cyclic_alias_detected () =
  let reg = Registry.create () in
  Registry.register reg "x" (Named "y");
  Registry.register reg "y" (Named "x");
  Alcotest.(check bool) "cycle" true
    (match Registry.resolve reg (Named "x") with
    | _ -> false
    | exception Registry.Unknown_type _ -> true)

(* --- layout --- *)

let test_layout_tree_node_by_arch () =
  let reg = mk_reg () in
  (* The paper's node: 16 bytes on a 32-bit machine... *)
  Alcotest.(check int) "sparc32" 16 (Layout.sizeof_name reg Arch.sparc32 "node");
  (* ...and 24 on a 64-bit machine. *)
  Alcotest.(check int) "lp64" 24 (Layout.sizeof_name reg Arch.lp64_le "node")

let test_layout_field_offsets () =
  let reg = mk_reg () in
  let off arch f = Layout.field_offset reg arch ~ty:(Named "node") ~field:f in
  Alcotest.(check int) "left@32" 0 (off Arch.sparc32 "left");
  Alcotest.(check int) "right@32" 4 (off Arch.sparc32 "right");
  Alcotest.(check int) "data@32" 8 (off Arch.sparc32 "data");
  Alcotest.(check int) "right@64" 8 (off Arch.lp64_le "right");
  Alcotest.(check int) "data@64" 16 (off Arch.lp64_le "data")

let test_layout_alignment_padding () =
  let reg = mk_reg () in
  (* i8 tag, padded to 8 for the i64, f32 then struct padding to 8 *)
  let l = Layout.of_type reg Arch.sparc32 (Named "mixed") in
  Alcotest.(check int) "size" 24 l.Layout.size;
  Alcotest.(check int) "align" 8 l.Layout.align;
  Alcotest.(check int) "value offset" 8
    (Layout.field_offset reg Arch.sparc32 ~ty:(Named "mixed") ~field:"value")

let test_layout_array_stride () =
  let reg = mk_reg () in
  Alcotest.(check int) "i32[5]" 20 (Layout.sizeof reg Arch.sparc32 (Array (i32, 5)));
  Alcotest.(check int) "ptr[3]@64" 24
    (Layout.sizeof reg Arch.lp64_le (Array (ptr "node", 3)));
  Alcotest.(check int) "empty" 0 (Layout.sizeof reg Arch.sparc32 (Array (i64, 0)))

let test_layout_nested_struct () =
  let reg = mk_reg () in
  Registry.register reg "outer"
    (Struct [ ("hdr", i16); ("inner", Named "pair"); ("tail", i8) ]);
  let l = Layout.of_type reg Arch.sparc32 (Named "outer") in
  (* hdr 0..2, pad to 4, inner 4..12, tail 12, pad to 16 *)
  Alcotest.(check int) "size" 16 l.Layout.size;
  Alcotest.(check int) "inner offset" 4
    (Layout.field_offset reg Arch.sparc32 ~ty:(Named "outer") ~field:"inner")

let test_layout_field_type () =
  let reg = mk_reg () in
  Alcotest.(check bool) "left is ptr" true
    (equal (Layout.field_type reg ~ty:(Named "node") ~field:"left") (ptr "node"));
  Alcotest.check_raises "missing field" Not_found (fun () ->
      ignore (Layout.field_type reg ~ty:(Named "node") ~field:"nope"))

let test_layout_recursive_by_value_rejected () =
  let reg = Registry.create () in
  Registry.register reg "selfish" (Struct [ ("me", Named "selfish") ]);
  Alcotest.(check bool) "recursive" true
    (match Layout.sizeof_name reg Arch.sparc32 "selfish" with
    | _ -> false
    | exception Layout.Recursive_type _ -> true)

let test_layout_recursive_behind_pointer_ok () =
  let reg = mk_reg () in
  (* "node" contains node* — must not be flagged *)
  Alcotest.(check int) "fine" 16 (Layout.sizeof_name reg Arch.sparc32 "node")

(* --- wire codec --- *)

let roundtrip_desc d =
  let e = Srpc_xdr.Xdr.Enc.create () in
  Type_codec.encode_desc e d;
  let dec = Srpc_xdr.Xdr.Dec.of_string (Srpc_xdr.Xdr.Enc.to_string e) in
  let d' = Type_codec.decode_desc dec in
  Srpc_xdr.Xdr.Dec.check_end dec;
  d'

let test_codec_desc_roundtrips () =
  List.iter
    (fun d -> Alcotest.(check bool) (Format.asprintf "%a" pp d) true (equal d (roundtrip_desc d)))
    [
      i8; i64; f32;
      ptr "node";
      Array (i32, 7);
      Named "pair";
      Struct [ ("a", ptr "node"); ("b", Array (Named "pair", 2)); ("c", f64) ];
      Struct [];
    ]

let test_codec_snapshot_load_preserves_ids () =
  let reg = mk_reg () in
  Registry.register reg "late" (Struct [ ("z", i8) ]);
  let copy = Registry.create () in
  Type_codec.load (Type_codec.snapshot reg) copy;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " desc") true
        (equal (Registry.find reg name) (Registry.find copy name));
      Alcotest.(check int) (name ^ " id") (Registry.id_of_name reg name)
        (Registry.id_of_name copy name))
    (Registry.names reg)

let test_codec_load_conflict_detected () =
  let reg = mk_reg () in
  let other = Registry.create () in
  Registry.register other "node" (Struct [ ("different", i8) ]);
  Alcotest.check_raises "conflict" (Registry.Duplicate_type "node") (fun () ->
      Type_codec.load (Type_codec.snapshot reg) other)

(* --- leaves --- *)

let test_leaves_order_and_kinds () =
  let reg = mk_reg () in
  let ls = Layout.leaves reg Arch.sparc32 (Named "node") in
  match ls with
  | [ l1; l2; l3 ] ->
    Alcotest.(check int) "left off" 0 l1.Layout.leaf_offset;
    Alcotest.(check bool) "left is ptr" true (l1.Layout.kind = Layout.Ptr "node");
    Alcotest.(check int) "right off" 4 l2.Layout.leaf_offset;
    Alcotest.(check bool) "data is i64" true (l3.Layout.kind = Layout.Scalar I64);
    Alcotest.(check int) "data off" 8 l3.Layout.leaf_offset
  | _ -> Alcotest.failf "expected 3 leaves, got %d" (List.length ls)

let test_leaves_flatten_arrays_and_structs () =
  let reg = mk_reg () in
  Registry.register reg "deep"
    (Struct [ ("ps", Array (ptr "node", 2)); ("pairs", Array (Named "pair", 2)) ]);
  let ls = Layout.leaves reg Arch.sparc32 (Named "deep") in
  Alcotest.(check int) "2 ptrs + 4 ints" 6 (List.length ls);
  let kinds =
    List.map
      (fun l -> match l.Layout.kind with Layout.Ptr _ -> "p" | Layout.Scalar _ -> "s")
      ls
  in
  Alcotest.(check (list string)) "order" [ "p"; "p"; "s"; "s"; "s"; "s" ] kinds

let test_leaves_same_shape_across_arches () =
  let reg = mk_reg () in
  let kinds arch =
    List.map (fun l -> l.Layout.kind) (Layout.leaves reg arch (Named "node"))
  in
  Alcotest.(check bool) "kind sequence arch-independent" true
    (kinds Arch.sparc32 = kinds Arch.lp64_le)

let test_pointer_leaves () =
  let reg = mk_reg () in
  Alcotest.(check (list (pair int string)))
    "node ptr fields"
    [ (0, "node"); (4, "node") ]
    (Layout.pointer_leaves reg Arch.sparc32 (Named "node"));
  Alcotest.(check (list (pair int string)))
    "64-bit offsets"
    [ (0, "node"); (8, "node") ]
    (Layout.pointer_leaves reg Arch.lp64_be (Named "node"))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "types"
    [
      ( "descriptors",
        [
          tc "prim sizes" `Quick test_prim_sizes;
          tc "equality" `Quick test_desc_equal;
          tc "printing" `Quick test_desc_pp;
        ] );
      ( "registry",
        [
          tc "find" `Quick test_registry_find;
          tc "idempotent register" `Quick test_registry_idempotent_register;
          tc "numeric ids roundtrip" `Quick test_registry_ids_roundtrip;
          tc "numeric ids distinct" `Quick test_registry_ids_distinct;
          tc "resolve aliases" `Quick test_registry_resolve_alias;
          tc "cyclic alias detected" `Quick test_registry_cyclic_alias_detected;
        ] );
      ( "layout",
        [
          tc "tree node size per arch (paper heterogeneity)" `Quick
            test_layout_tree_node_by_arch;
          tc "field offsets" `Quick test_layout_field_offsets;
          tc "alignment padding" `Quick test_layout_alignment_padding;
          tc "array stride" `Quick test_layout_array_stride;
          tc "nested struct" `Quick test_layout_nested_struct;
          tc "field type lookup" `Quick test_layout_field_type;
          tc "recursive by value rejected" `Quick
            test_layout_recursive_by_value_rejected;
          tc "recursive behind pointer ok" `Quick
            test_layout_recursive_behind_pointer_ok;
        ] );
      ( "wire-codec",
        [
          tc "descriptor roundtrips" `Quick test_codec_desc_roundtrips;
          tc "snapshot/load preserves ids" `Quick test_codec_snapshot_load_preserves_ids;
          tc "load conflict detected" `Quick test_codec_load_conflict_detected;
        ] );
      ( "leaves",
        [
          tc "order and kinds" `Quick test_leaves_order_and_kinds;
          tc "flatten arrays and structs" `Quick test_leaves_flatten_arrays_and_structs;
          tc "shape is arch-independent" `Quick test_leaves_same_shape_across_arches;
          tc "pointer leaves" `Quick test_pointer_leaves;
        ] );
    ]

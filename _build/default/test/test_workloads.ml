(* Tests for the workload builders (tree, list, hash table, graph) both
   locally and through remote procedures, plus the experiment harness at
   small scale. *)

open Srpc_memory
open Srpc_core
open Srpc_simnet
open Srpc_workloads

let mk2 ?(strategy = Strategy.smart ()) () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 ~strategy () in
  let b = Cluster.add_node cluster ~site:2 ~strategy () in
  (cluster, a, b)

(* --- tree --- *)

let test_tree_build_shape () =
  let cluster, a, _ = mk2 () in
  Tree.register_types cluster;
  let root = Tree.build a ~depth:5 in
  Alcotest.(check int) "31 nodes" 31 (Tree.count a root);
  Alcotest.(check int) "depth 5" 5 (Tree.depth_of a root);
  Alcotest.(check int) "nodes_of_depth" 31 (Tree.nodes_of_depth 5)

let test_tree_empty () =
  let cluster, a, _ = mk2 () in
  Tree.register_types cluster;
  let root = Tree.build a ~depth:0 in
  Alcotest.(check bool) "null root" true (Access.is_null root);
  Alcotest.(check int) "count 0" 0 (Tree.count a root)

let test_tree_visit_preorder_sum () =
  let cluster, a, _ = mk2 () in
  Tree.register_types cluster;
  let root = Tree.build a ~depth:4 in
  (* data fields are preorder indices 0..14: full sum = 105 *)
  let visited, sum = Tree.visit a root ~limit:max_int in
  Alcotest.(check int) "visited" 15 visited;
  Alcotest.(check int) "sum" 105 sum;
  (* preorder prefix 0,1,2: sum 3 *)
  let visited, sum = Tree.visit a root ~limit:3 in
  Alcotest.(check int) "limited visit" 3 visited;
  Alcotest.(check int) "prefix sum" 3 sum

let test_tree_visit_update_increments () =
  let cluster, a, _ = mk2 () in
  Tree.register_types cluster;
  let root = Tree.build a ~depth:3 in
  let _, s1 = Tree.visit a root ~limit:max_int in
  ignore (Tree.visit_update a root ~limit:max_int);
  let _, s2 = Tree.visit a root ~limit:max_int in
  Alcotest.(check int) "each node +1" (s1 + 7) s2

let test_tree_descend_paths () =
  let cluster, a, _ = mk2 () in
  Tree.register_types cluster;
  let root = Tree.build a ~depth:4 in
  (* all-left path: preorder indices 0,1,2,3 *)
  let count, sum = Tree.descend a root ~path:0 in
  Alcotest.(check int) "path length" 4 count;
  Alcotest.(check int) "left spine sum" 6 sum;
  (* all-right path: 0, then right children *)
  let count_r, sum_r = Tree.descend a root ~path:(-1) in
  Alcotest.(check int) "right path length" 4 count_r;
  Alcotest.(check bool) "different path" true (sum_r <> sum);
  let empty_count, _ = Tree.descend a (Access.null ~ty:Tree.type_name) ~path:5 in
  Alcotest.(check int) "empty" 0 empty_count

let test_tree_free_releases_all () =
  let cluster, a, _ = mk2 () in
  Tree.register_types cluster;
  let root = Tree.build a ~depth:4 in
  Alcotest.(check int) "live" 15 (Allocator.live_blocks (Node.heap a));
  Tree.free a root;
  Alcotest.(check int) "all freed" 0 (Allocator.live_blocks (Node.heap a))

let test_tree_remote_search_all_methods () =
  List.iter
    (fun m ->
      let r =
        Experiments.run_tree_search ~strategy:(Experiments.strategy_of_method m)
          ~depth:6 ~ratio:1.0 ()
      in
      Alcotest.(check int) (Experiments.method_name m) 63 r.Experiments.visited)
    [ Experiments.Fully_eager; Experiments.Fully_lazy; Experiments.Proposed 128 ]

(* --- linked list --- *)

let test_list_roundtrip () =
  let cluster, a, _ = mk2 () in
  Linked_list.register_types cluster;
  let xs = [ 5; 4; 3; 2; 1 ] in
  let head = Linked_list.build a xs in
  Alcotest.(check (list int)) "to_list" xs (Linked_list.to_list a head);
  Alcotest.(check int) "sum" 15 (Linked_list.sum a head);
  Alcotest.(check int) "length" 5 (Linked_list.length a head)

let test_list_empty () =
  let cluster, a, _ = mk2 () in
  Linked_list.register_types cluster;
  let head = Linked_list.build a [] in
  Alcotest.(check bool) "null" true (Access.is_null head);
  Alcotest.(check (list int)) "empty" [] (Linked_list.to_list a head)

let test_list_nth () =
  let cluster, a, _ = mk2 () in
  Linked_list.register_types cluster;
  let head = Linked_list.build a [ 10; 20; 30 ] in
  let p = Linked_list.nth a head 2 in
  Alcotest.(check int) "third" 30 (Access.get_int a p ~field:"value");
  Alcotest.check_raises "past end" Not_found (fun () ->
      ignore (Linked_list.nth a head 3))

let test_list_map_in_place () =
  let cluster, a, _ = mk2 () in
  Linked_list.register_types cluster;
  let head = Linked_list.build a [ 1; 2; 3 ] in
  Linked_list.map_in_place a head (fun x -> x * x);
  Alcotest.(check (list int)) "squared" [ 1; 4; 9 ] (Linked_list.to_list a head)

let test_list_remote_map () =
  let cluster, a, b = mk2 () in
  Linked_list.register_types cluster;
  let head = Linked_list.build a [ 1; 2; 3; 4 ] in
  Node.register b "double_all" (fun node args ->
      Linked_list.map_in_place node (Access.of_value (List.hd args)) (fun x -> 2 * x);
      []);
  Node.begin_session a;
  ignore (Node.call a ~dst:(Node.id b) "double_all" [ Access.to_value head ]);
  Node.end_session a;
  Alcotest.(check (list int)) "doubled at origin" [ 2; 4; 6; 8 ]
    (Linked_list.to_list a head)

let test_list_append_remote_home () =
  let cluster, a, b = mk2 () in
  Linked_list.register_types cluster;
  let head = Linked_list.build a [ 1; 2 ] in
  Node.register b "extend" (fun node args ->
      let h = Access.of_value (List.hd args) in
      let h' = Linked_list.append node h ~home:(Space_id.make ~site:1 ~proc:0) [ 3; 4 ] in
      [ Access.to_value h' ]);
  Node.begin_session a;
  ignore (Node.call a ~dst:(Node.id b) "extend" [ Access.to_value head ]);
  Node.end_session a;
  Alcotest.(check (list int)) "extended, homed at A" [ 1; 2; 3; 4 ]
    (Linked_list.to_list a head)

(* --- hash table --- *)

let test_hash_insert_lookup () =
  let cluster, a, _ = mk2 () in
  Hash_table.register_types cluster;
  let t = Hash_table.create a in
  Hash_table.insert a t ~key:1 ~value:100;
  Hash_table.insert a t ~key:65 ~value:200 (* same bucket as 1 (mod 64) *);
  Hash_table.insert a t ~key:2 ~value:300;
  Alcotest.(check (option int)) "k1" (Some 100) (Hash_table.lookup a t ~key:1);
  Alcotest.(check (option int)) "k65 chained" (Some 200)
    (Hash_table.lookup a t ~key:65);
  Alcotest.(check (option int)) "k2" (Some 300) (Hash_table.lookup a t ~key:2);
  Alcotest.(check (option int)) "missing" None (Hash_table.lookup a t ~key:9);
  Alcotest.(check int) "population" 3 (Hash_table.population a t)

let test_hash_shadowing_and_remove () =
  let cluster, a, _ = mk2 () in
  Hash_table.register_types cluster;
  let t = Hash_table.create a in
  Hash_table.insert a t ~key:7 ~value:1;
  Hash_table.insert a t ~key:7 ~value:2;
  Alcotest.(check (option int)) "newest wins" (Some 2) (Hash_table.lookup a t ~key:7);
  Alcotest.(check bool) "remove newest" true (Hash_table.remove a t ~key:7);
  Alcotest.(check (option int)) "older visible" (Some 1)
    (Hash_table.lookup a t ~key:7);
  Alcotest.(check bool) "remove older" true (Hash_table.remove a t ~key:7);
  Alcotest.(check (option int)) "gone" None (Hash_table.lookup a t ~key:7);
  Alcotest.(check bool) "nothing left" false (Hash_table.remove a t ~key:7)

let test_hash_negative_keys () =
  let cluster, a, _ = mk2 () in
  Hash_table.register_types cluster;
  let t = Hash_table.create a in
  Hash_table.insert a t ~key:(-5) ~value:55;
  Alcotest.(check (option int)) "negative key" (Some 55)
    (Hash_table.lookup a t ~key:(-5))

let test_hash_remote_lookup_is_cheap () =
  (* the paper's motivating case for laziness: a remote lookup must not
     pull the whole table *)
  let cluster, a, b = mk2 ~strategy:(Strategy.smart ~closure_size:64 ()) () in
  Hash_table.register_types cluster;
  let t = Hash_table.create a in
  for k = 0 to 199 do
    Hash_table.insert a t ~key:k ~value:(k * 10)
  done;
  Node.register b "lookup" (fun node args ->
      match args with
      | [ tv; kv ] -> (
        match Hash_table.lookup node (Access.of_value tv) ~key:(Value.to_int kv) with
        | Some v -> [ Value.int v ]
        | None -> [ Value.int (-1) ])
      | _ -> assert false);
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      (match
         Node.call a ~dst:(Node.id b) "lookup" [ Access.to_value t; Value.int 42 ]
       with
      | [ v ] -> Alcotest.(check int) "found" 420 (Value.to_int v)
      | _ -> Alcotest.fail "arity");
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      (* table header + one chain: a handful of fetches, not 200 *)
      Alcotest.(check bool) "few callbacks" true (d.Stats.callbacks <= 8))

(* --- graph --- *)

let test_graph_deterministic () =
  let cluster, a, _ = mk2 () in
  Graph.register_types cluster;
  let r1 = Graph.build a ~nodes:50 ~seed:7 in
  let n1, s1 = Graph.reachable_sum a r1 in
  let cluster2 = Cluster.create ~cost:Cost_model.zero () in
  let a2 = Cluster.add_node cluster2 ~site:1 () in
  Graph.register_types cluster2;
  let r2 = Graph.build a2 ~nodes:50 ~seed:7 in
  let n2, s2 = Graph.reachable_sum a2 r2 in
  Alcotest.(check int) "same reach" n1 n2;
  Alcotest.(check int) "same sum" s1 s2

let test_graph_all_reachable_via_chain () =
  let cluster, a, _ = mk2 () in
  Graph.register_types cluster;
  let root = Graph.build a ~nodes:30 ~seed:3 in
  let n, sum = Graph.reachable_sum a root in
  Alcotest.(check int) "all vertices" 30 n;
  Alcotest.(check int) "payload sum" (30 * 29 / 2) sum

let test_graph_remote_walk_with_cycles () =
  (* cyclic pointer graphs must not wedge the closure engine *)
  List.iter
    (fun strategy ->
      let cluster, a, b = mk2 ~strategy () in
      Graph.register_types cluster;
      let root = Graph.build a ~nodes:40 ~seed:11 in
      let expect = Graph.reachable_sum a root in
      Node.register b "walk" (fun node args ->
          let n, s = Graph.reachable_sum node (Access.of_value (List.hd args)) in
          [ Value.int n; Value.int s ]);
      Node.with_session a (fun () ->
          match Node.call a ~dst:(Node.id b) "walk" [ Access.to_value root ] with
          | [ n; s ] ->
            Alcotest.(check int) "reach" (fst expect) (Value.to_int n);
            Alcotest.(check int) "sum" (snd expect) (Value.to_int s)
          | _ -> Alcotest.fail "arity"))
    [ Strategy.fully_eager; Strategy.fully_lazy; Strategy.smart ~closure_size:256 () ]

(* --- matrix --- *)

let test_matrix_local_roundtrip () =
  let cluster, a, _ = mk2 () in
  Matrix.register_types cluster;
  let g = Matrix.create a ~tile_rows:2 ~tile_cols:2 in
  Alcotest.(check (pair int int)) "dims" (64, 64) (Matrix.dims a g);
  Matrix.set a g ~row:0 ~col:0 1.5;
  Matrix.set a g ~row:33 ~col:40 2.5 (* a different tile *);
  Matrix.set a g ~row:63 ~col:63 3.0;
  Alcotest.(check (float 0.0)) "corner" 1.5 (Matrix.get a g ~row:0 ~col:0);
  Alcotest.(check (float 0.0)) "middle" 2.5 (Matrix.get a g ~row:33 ~col:40);
  Alcotest.(check (float 0.0)) "far corner" 3.0 (Matrix.get a g ~row:63 ~col:63);
  Alcotest.(check (float 0.0)) "untouched is zero" 0.0 (Matrix.get a g ~row:5 ~col:5)

let test_matrix_bounds () =
  let cluster, a, _ = mk2 () in
  Matrix.register_types cluster;
  let g = Matrix.create a ~tile_rows:1 ~tile_cols:1 in
  Alcotest.(check bool) "oob" true
    (match Matrix.get a g ~row:32 ~col:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "too many tiles" true
    (match Matrix.create a ~tile_rows:9 ~tile_cols:9 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_matrix_row_sum_touches_one_tile_row () =
  (* a remote row sum must not pull the whole matrix: tiles are 8 KiB,
     one tile row of a 4x4-tile grid is a quarter of the data *)
  let cluster, a, b = mk2 ~strategy:(Strategy.smart ~closure_size:1024 ()) () in
  Matrix.register_types cluster;
  let g = Matrix.create a ~tile_rows:4 ~tile_cols:4 in
  let rows, cols = Matrix.dims a g in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if (r + c) mod 17 = 0 then Matrix.set a g ~row:r ~col:c 1.0
    done
  done;
  let expect = Matrix.row_sum a g ~row:3 in
  Node.register b "row_sum" (fun node args ->
      match args with
      | [ gv; rv ] ->
        [ Value.float (Matrix.row_sum node (Access.of_value gv) ~row:(Value.to_int rv)) ]
      | _ -> assert false);
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      (match Node.call a ~dst:(Node.id b) "row_sum" [ Access.to_value g; Value.int 3 ]
       with
      | [ v ] -> Alcotest.(check (float 1e-9)) "sum" expect (Value.to_float v)
      | _ -> Alcotest.fail "arity");
      let d = Stats.diff (Cluster.snapshot cluster) s0 in
      (* whole matrix ~128KB in memory, much more on the wire; one tile
         row is 4 tiles = 32KB -> wire ~64KB *)
      Alcotest.(check bool) "partial transfer" true (d.Stats.bytes < 100_000))

let test_matrix_remote_scale_writes_back () =
  let cluster, a, b = mk2 () in
  Matrix.register_types cluster;
  let g = Matrix.create a ~tile_rows:2 ~tile_cols:1 in
  Matrix.set a g ~row:1 ~col:1 3.0;
  Matrix.set a g ~row:40 ~col:7 5.0;
  Node.register b "scale" (fun node args ->
      match args with
      | [ gv; kv ] ->
        Matrix.scale node (Access.of_value gv) (Value.to_float kv);
        []
      | _ -> assert false);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "scale" [ Access.to_value g; Value.float 2.0 ]));
  Alcotest.(check (float 0.0)) "scaled" 6.0 (Matrix.get a g ~row:1 ~col:1);
  Alcotest.(check (float 0.0)) "scaled2" 10.0 (Matrix.get a g ~row:40 ~col:7);
  Alcotest.(check (float 0.0)) "others zero" 0.0 (Matrix.get a g ~row:0 ~col:0)

let test_matrix_frobenius_remote_equals_local () =
  let cluster, a, b = mk2 ~strategy:Strategy.fully_eager () in
  Matrix.register_types cluster;
  let g = Matrix.create a ~tile_rows:2 ~tile_cols:2 in
  for i = 0 to 63 do
    Matrix.set a g ~row:i ~col:(63 - i) (float_of_int i)
  done;
  let expect = Matrix.frobenius a g in
  Node.register b "frob" (fun node args ->
      [ Value.float (Matrix.frobenius node (Access.of_value (List.hd args))) ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "frob" [ Access.to_value g ] with
      | [ v ] -> Alcotest.(check (float 1e-6)) "frobenius" expect (Value.to_float v)
      | _ -> Alcotest.fail "arity")

(* --- B-tree --- *)

let test_btree_empty () =
  let cluster, a, _ = mk2 () in
  Btree.register_types cluster;
  let t = Btree.create a in
  Alcotest.(check (option int)) "missing" None (Btree.search a t ~key:5);
  Alcotest.(check (list (pair int int))) "empty" [] (Btree.to_list a t);
  Alcotest.(check int) "cardinal" 0 (Btree.cardinal a t);
  Alcotest.(check bool) "invariants" true (Btree.check_invariants a t = Ok ())

let test_btree_insert_search () =
  let cluster, a, _ = mk2 () in
  Btree.register_types cluster;
  let t = Btree.create a in
  let keys = [ 50; 20; 80; 10; 30; 70; 90; 25; 35; 5; 95; 60; 40 ] in
  List.iter (fun k -> Btree.insert a t ~key:k ~value:(k * 2)) keys;
  List.iter
    (fun k ->
      Alcotest.(check (option int)) (string_of_int k) (Some (k * 2))
        (Btree.search a t ~key:k))
    keys;
  Alcotest.(check (option int)) "absent" None (Btree.search a t ~key:55);
  Alcotest.(check int) "cardinal" (List.length keys) (Btree.cardinal a t);
  Alcotest.(check (list int)) "sorted" (List.sort compare keys)
    (List.map fst (Btree.to_list a t));
  Alcotest.(check bool) "invariants" true (Btree.check_invariants a t = Ok ())

let test_btree_overwrite () =
  let cluster, a, _ = mk2 () in
  Btree.register_types cluster;
  let t = Btree.create a in
  for k = 1 to 20 do
    Btree.insert a t ~key:k ~value:k
  done;
  Btree.insert a t ~key:7 ~value:700;
  Alcotest.(check (option int)) "overwritten" (Some 700) (Btree.search a t ~key:7);
  Alcotest.(check int) "no duplicate" 20 (Btree.cardinal a t)

let test_btree_sequential_and_reverse () =
  let cluster, a, _ = mk2 () in
  Btree.register_types cluster;
  let t = Btree.create a in
  for k = 1 to 100 do
    Btree.insert a t ~key:k ~value:k
  done;
  let t2 = Btree.create a in
  for k = 100 downto 1 do
    Btree.insert a t2 ~key:k ~value:k
  done;
  Alcotest.(check bool) "asc invariants" true (Btree.check_invariants a t = Ok ());
  Alcotest.(check bool) "desc invariants" true (Btree.check_invariants a t2 = Ok ());
  Alcotest.(check int) "asc card" 100 (Btree.cardinal a t);
  Alcotest.(check (list (pair int int))) "same contents" (Btree.to_list a t)
    (Btree.to_list a t2)

let test_btree_range_count () =
  let cluster, a, _ = mk2 () in
  Btree.register_types cluster;
  let t = Btree.create a in
  for k = 0 to 99 do
    Btree.insert a t ~key:(k * 2) ~value:k (* even keys 0..198 *)
  done;
  Alcotest.(check int) "full" 100 (Btree.range_count a t ~lo:0 ~hi:198);
  Alcotest.(check int) "window" 11 (Btree.range_count a t ~lo:40 ~hi:60);
  Alcotest.(check int) "odd window" 10 (Btree.range_count a t ~lo:41 ~hi:60);
  Alcotest.(check int) "empty" 0 (Btree.range_count a t ~lo:199 ~hi:500)

let test_btree_remote_insert_homed_at_owner () =
  let cluster, a, b = mk2 () in
  Btree.register_types cluster;
  let t = Btree.create a in
  Btree.insert a t ~key:1 ~value:10;
  let blocks_before = Allocator.live_blocks (Node.heap b) in
  Node.register b "grow" (fun node args ->
      let t = Access.of_value (List.hd args) in
      for k = 2 to 40 do
        Btree.insert node t ~key:k ~value:(k * 10)
      done;
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "grow" [ Access.to_value t ]));
  (* all new nodes live in A's heap; B allocated nothing *)
  Alcotest.(check int) "worker heap untouched" blocks_before
    (Allocator.live_blocks (Node.heap b));
  Alcotest.(check int) "all present at owner" 40 (Btree.cardinal a t);
  Alcotest.(check bool) "owner invariants" true (Btree.check_invariants a t = Ok ());
  List.iter
    (fun k ->
      Alcotest.(check (option int)) (string_of_int k) (Some (k * 10))
        (Btree.search a t ~key:k))
    [ 2; 17; 40 ]

let test_btree_remote_point_lookup_is_partial () =
  let cluster, a, b = mk2 ~strategy:(Strategy.smart ~closure_size:256 ()) () in
  Btree.register_types cluster;
  let t = Btree.create a in
  for k = 0 to 1999 do
    Btree.insert a t ~key:k ~value:(k + 1000)
  done;
  Node.register b "lookup" (fun node args ->
      match args with
      | [ tv; kv ] -> (
        match Btree.search node (Access.of_value tv) ~key:(Value.to_int kv) with
        | Some v -> [ Value.int v ]
        | None -> [ Value.int (-1) ])
      | _ -> assert false);
  Node.register b "scan" (fun node args ->
      [ Value.int (Btree.cardinal node (Access.of_value (List.hd args))) ]);
  let lookup_bytes = ref 0 in
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      (match Node.call a ~dst:(Node.id b) "lookup" [ Access.to_value t; Value.int 777 ]
       with
      | [ v ] -> Alcotest.(check int) "found" 1777 (Value.to_int v)
      | _ -> Alcotest.fail "arity");
      lookup_bytes := (Stats.diff (Cluster.snapshot cluster) s0).Stats.bytes);
  (* fresh session so the scan cannot reuse the lookup's cache *)
  Node.with_session a (fun () ->
      let s0 = Cluster.snapshot cluster in
      (match Node.call a ~dst:(Node.id b) "scan" [ Access.to_value t ] with
      | [ v ] -> Alcotest.(check int) "cardinal" 2000 (Value.to_int v)
      | _ -> Alcotest.fail "arity");
      let scan_bytes = (Stats.diff (Cluster.snapshot cluster) s0).Stats.bytes in
      Alcotest.(check bool) "point lookup moves far less than a scan" true
        (!lookup_bytes * 3 < scan_bytes))

(* --- ascii plots --- *)

let test_plot_renders_axes_and_legend () =
  let s =
    Ascii_plot.render ~width:30 ~height:8 ~x_label:"ratio" ~y_label:"seconds"
      [
        { Ascii_plot.label = "alpha"; points = [ (0.0, 0.0); (0.5, 2.0); (1.0, 4.0) ] };
        { Ascii_plot.label = "beta"; points = [ (0.0, 4.0); (1.0, 0.0) ] };
      ]
  in
  let has needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "y label" true (has "seconds");
  Alcotest.(check bool) "x label" true (has "ratio");
  Alcotest.(check bool) "legend alpha" true (has "* = alpha");
  Alcotest.(check bool) "legend beta" true (has "+ = beta");
  Alcotest.(check bool) "max y annotated" true (has "4.000");
  Alcotest.(check bool) "markers present" true (has "*" && has "+")

let test_plot_handles_degenerate_inputs () =
  Alcotest.(check string) "no data" "(no data)
" (Ascii_plot.render []);
  (* a single constant series must not divide by zero *)
  let s =
    Ascii_plot.render ~width:10 ~height:4
      [ { Ascii_plot.label = "flat"; points = [ (1.0, 2.0); (1.0, 2.0) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.length s > 10)

let test_plot_marker_within_grid () =
  (* extremes map inside the plot area *)
  let s =
    Ascii_plot.render ~width:12 ~height:5
      [ { Ascii_plot.label = "s"; points = [ (0.0, 0.0); (10.0, 100.0) ] } ]
  in
  List.iter
    (fun line ->
      Alcotest.(check bool) "line width bounded" true (String.length line < 12 + 30))
    (String.split_on_char '
' s)

(* --- experiment harness at small scale --- *)

let test_run_tree_search_visits_expected () =
  let r =
    Experiments.run_tree_search
      ~strategy:(Experiments.strategy_of_method Experiments.Fully_lazy)
      ~depth:7 ~ratio:0.5 ()
  in
  Alcotest.(check int) "half of 127" 64 r.Experiments.visited;
  Alcotest.(check int) "lazy: callback per node" 64 r.Experiments.callbacks

let test_fig4_ordering_small () =
  (* scale-robust qualitative checks (the full crossover needs the
     paper's 32k-node scale, exercised by the bench harness): the lazy
     method is callback-bound and worst at full ratio; the proposed
     method needs orders of magnitude fewer callbacks; eager never
     faults *)
  let rows = Experiments.fig4 ~depth:11 ~ratios:[ 0.3; 1.0 ] ~closure:1024 () in
  match rows with
  | [ r03; r10 ] ->
    Alcotest.(check bool) "proposed needs far fewer callbacks" true
      (10 * r03.Experiments.proposed.Experiments.callbacks
      < r03.Experiments.lazy_.Experiments.callbacks);
    Alcotest.(check int) "eager never faults" 0
      r03.Experiments.eager.Experiments.faults;
    Alcotest.(check bool) "lazy worst at 1.0 vs eager" true
      (r10.Experiments.lazy_.Experiments.seconds
      > r10.Experiments.eager.Experiments.seconds);
    Alcotest.(check bool) "lazy worst at 1.0 vs proposed" true
      (r10.Experiments.lazy_.Experiments.seconds
      > r10.Experiments.proposed.Experiments.seconds)
  | _ -> Alcotest.fail "rows"

let test_fig7_update_costs_more () =
  let rows = Experiments.fig7 ~depth:9 ~ratios:[ 0.5 ] ~closure:1024 () in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "update slower" true
      (r.Experiments.updated.Experiments.seconds
      > r.Experiments.not_updated.Experiments.seconds);
    Alcotest.(check bool) "but bounded (< 3x)" true
      (r.Experiments.updated.Experiments.seconds
      < 3.0 *. r.Experiments.not_updated.Experiments.seconds)
  | _ -> Alcotest.fail "rows"

let test_ablation_batching_fewer_messages () =
  match Experiments.ablation_alloc_batching ~cells:60 () with
  | [ { batched = true; alloc_run = b }; { batched = false; alloc_run = i } ]
  | [ { batched = false; alloc_run = i }; { batched = true; alloc_run = b } ] ->
    Alcotest.(check bool) "batching cuts messages" true
      (b.Experiments.messages < i.Experiments.messages);
    Alcotest.(check int) "same survivors" b.Experiments.visited i.Experiments.visited
  | _ -> Alcotest.fail "rows"

let test_ablation_grain_twin_ships_less () =
  match Experiments.ablation_writeback_grain ~depth:9 ~stride:16 () with
  | [ { grain = Strategy.Page_grain; sparse_update = pg };
      { grain = Strategy.Twin_diff; sparse_update = td } ] ->
    Alcotest.(check bool) "twin-diff ships fewer bytes" true
      (td.Experiments.bytes < pg.Experiments.bytes);
    Alcotest.(check int) "same updates applied" pg.Experiments.visited
      td.Experiments.visited
  | _ -> Alcotest.fail "rows"

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_ablation_page_size_tradeoff () =
  match Experiments.ablation_page_size ~depth:10 ~page_sizes:[ 512; 4096 ] () with
  | [ small; large ] ->
    Alcotest.(check bool) "small pages fetch less" true
      (small.Experiments.partial_search.Experiments.bytes
      < large.Experiments.partial_search.Experiments.bytes);
    Alcotest.(check bool) "small pages need more round trips" true
      (small.Experiments.partial_search.Experiments.callbacks
      > large.Experiments.partial_search.Experiments.callbacks)
  | _ -> Alcotest.fail "rows"

let test_table1_renders () =
  let s = Format.asprintf "%a" (fun ppf () -> Experiments.table1 ppf ()) () in
  Alcotest.(check bool) "has header" true (contains_substring s "long pointer")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "workloads"
    [
      ( "tree",
        [
          tc "build shape" `Quick test_tree_build_shape;
          tc "empty tree" `Quick test_tree_empty;
          tc "preorder visit and sum" `Quick test_tree_visit_preorder_sum;
          tc "visit_update increments" `Quick test_tree_visit_update_increments;
          tc "descend paths" `Quick test_tree_descend_paths;
          tc "free releases all" `Quick test_tree_free_releases_all;
          tc "remote search, all methods agree" `Quick
            test_tree_remote_search_all_methods;
        ] );
      ( "linked-list",
        [
          tc "roundtrip" `Quick test_list_roundtrip;
          tc "empty" `Quick test_list_empty;
          tc "nth" `Quick test_list_nth;
          tc "map in place" `Quick test_list_map_in_place;
          tc "remote map writes back" `Quick test_list_remote_map;
          tc "append with remote home" `Quick test_list_append_remote_home;
        ] );
      ( "hash-table",
        [
          tc "insert/lookup with chains" `Quick test_hash_insert_lookup;
          tc "shadowing and remove" `Quick test_hash_shadowing_and_remove;
          tc "negative keys" `Quick test_hash_negative_keys;
          tc "remote lookup is cheap (lazy case)" `Quick
            test_hash_remote_lookup_is_cheap;
        ] );
      ( "graph",
        [
          tc "deterministic build" `Quick test_graph_deterministic;
          tc "chain keeps all reachable" `Quick test_graph_all_reachable_via_chain;
          tc "remote walk with cycles, all methods" `Quick
            test_graph_remote_walk_with_cycles;
        ] );
      ( "matrix",
        [
          tc "local roundtrip across tiles" `Quick test_matrix_local_roundtrip;
          tc "bounds checks" `Quick test_matrix_bounds;
          tc "remote row sum is partial" `Quick test_matrix_row_sum_touches_one_tile_row;
          tc "remote scale writes back" `Quick test_matrix_remote_scale_writes_back;
          tc "frobenius remote = local (eager)" `Quick
            test_matrix_frobenius_remote_equals_local;
        ] );
      ( "btree",
        [
          tc "empty tree" `Quick test_btree_empty;
          tc "insert and search" `Quick test_btree_insert_search;
          tc "overwrite" `Quick test_btree_overwrite;
          tc "sequential asc/desc" `Quick test_btree_sequential_and_reverse;
          tc "range count" `Quick test_btree_range_count;
          tc "remote insert homed at owner" `Quick test_btree_remote_insert_homed_at_owner;
          tc "remote point lookup is partial" `Quick
            test_btree_remote_point_lookup_is_partial;
        ] );
      ( "ascii-plot",
        [
          tc "axes and legend" `Quick test_plot_renders_axes_and_legend;
          tc "degenerate inputs" `Quick test_plot_handles_degenerate_inputs;
          tc "bounded grid" `Quick test_plot_marker_within_grid;
        ] );
      ( "experiments",
        [
          tc "run_tree_search counts" `Quick test_run_tree_search_visits_expected;
          tc "fig4 ordering (small)" `Quick test_fig4_ordering_small;
          tc "fig7 update costs more" `Quick test_fig7_update_costs_more;
          tc "A3 batching cuts messages" `Quick test_ablation_batching_fewer_messages;
          tc "A4 twin-diff ships less" `Quick test_ablation_grain_twin_ships_less;
          tc "A6 page-size trade-off" `Quick test_ablation_page_size_tradeoff;
          tc "table1 renders" `Quick test_table1_renders;
        ] );
    ]

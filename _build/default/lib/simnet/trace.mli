(** Wire-event recorder.

    Attach a trace to a {!Transport} to capture every frame with its
    simulated send time — the raw material for debugging protocols,
    asserting message sequences in tests, and rendering timelines. *)

type direction = Request | Reply

type event = {
  at : float;  (** simulated send time, seconds *)
  src : string;
  dst : string;
  dir : direction;
  bytes : int;
}

type t

val create : unit -> t
val record : t -> at:float -> src:string -> dst:string -> dir:direction -> bytes:int -> unit

(** Events in chronological (= recording) order. *)
val events : t -> event list

val length : t -> int
val clear : t -> unit

(** [between t ~src ~dst] counts request frames from [src] to [dst]. *)
val between : t -> src:string -> dst:string -> int

val pp_event : Format.formatter -> event -> unit

(** Render the whole trace, one event per line. *)
val pp : Format.formatter -> t -> unit

type t = {
  message_latency : float;
  bandwidth : float;
  per_byte_cpu : float;
  fault_overhead : float;
  local_touch : float;
}

(* Calibration notes.  10 Mbps Ethernet = 1.25e6 B/s.  The fully lazy run
   of Fig. 4 performs ~32767 callbacks in ~12 s, i.e. ~360 us per small
   round trip: two frames of ~50-120 B each at ~100 us fixed cost per
   frame, plus the fault overhead.  The fully eager run ships the whole
   tree in ~2.4 s.  Our wire format is ~3.5x larger per tree node than
   the paper's raw-payload accounting (long pointers and item framing
   are counted honestly), so the per-byte XDR CPU figure is scaled down
   correspondingly (3.5 us/B / 3.5) to keep the methods' relative costs
   where the paper's hardware put them. *)
let sparc_10mbps =
  {
    message_latency = 1.0e-4;
    bandwidth = 1.25e6;
    per_byte_cpu = 1.0e-6;
    fault_overhead = 3.0e-5;
    local_touch = 1.0e-6;
  }

let zero =
  {
    message_latency = 0.0;
    bandwidth = infinity;
    per_byte_cpu = 0.0;
    fault_overhead = 0.0;
    local_touch = 0.0;
  }

let frame_cost t ~bytes =
  t.message_latency
  +. (float_of_int bytes /. t.bandwidth)
  +. (float_of_int bytes *. t.per_byte_cpu)

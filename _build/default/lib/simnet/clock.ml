type t = { mutable now : float }

let create () = { now = 0.0 }
let now t = t.now

let advance t dt =
  assert (dt >= 0.0);
  t.now <- t.now +. dt

let reset t = t.now <- 0.0

let measure t f =
  let start = t.now in
  let result = f () in
  (result, t.now -. start)

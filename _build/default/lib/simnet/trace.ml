type direction = Request | Reply

type event = {
  at : float;
  src : string;
  dst : string;
  dir : direction;
  bytes : int;
}

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let record t ~at ~src ~dst ~dir ~bytes =
  t.rev_events <- { at; src; dst; dir; bytes } :: t.rev_events;
  t.count <- t.count + 1

let events t = List.rev t.rev_events
let length t = t.count

let clear t =
  t.rev_events <- [];
  t.count <- 0

let between t ~src ~dst =
  List.length
    (List.filter
       (fun e -> e.dir = Request && String.equal e.src src && String.equal e.dst dst)
       t.rev_events)

let pp_event ppf e =
  Format.fprintf ppf "%10.6f %s -> %s %s (%d bytes)" e.at e.src e.dst
    (match e.dir with Request -> "request" | Reply -> "reply")
    e.bytes

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_event ppf (events t)

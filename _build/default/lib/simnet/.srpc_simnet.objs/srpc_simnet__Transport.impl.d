lib/simnet/transport.ml: Clock Cost_model Hashtbl List Logs Stats String Trace

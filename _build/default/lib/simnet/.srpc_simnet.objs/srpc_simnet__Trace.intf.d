lib/simnet/trace.mli: Format

lib/simnet/clock.ml:

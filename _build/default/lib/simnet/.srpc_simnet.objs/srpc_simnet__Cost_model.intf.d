lib/simnet/cost_model.mli:

lib/simnet/clock.mli:

lib/simnet/transport.mli: Clock Cost_model Stats Trace

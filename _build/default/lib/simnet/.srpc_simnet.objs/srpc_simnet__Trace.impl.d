lib/simnet/trace.ml: Format List String

lib/simnet/cost_model.ml:

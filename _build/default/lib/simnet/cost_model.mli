(** Cost model mapping transport and runtime events to simulated seconds.

    Calibrated against the paper's testbed: Sun SPARCstations (28.5 MIPS)
    on 10 Mbps Ethernet with TCP_NODELAY, XDR conversion on both ends. The
    evaluation's shape is driven by message counts and byte volumes; this
    model only converts those (measured from real encoded frames) into
    seconds. *)

type t = {
  message_latency : float;
      (** fixed one-way cost per frame: wire latency + protocol stack +
          thread switch, seconds *)
  bandwidth : float;  (** network bandwidth, bytes per second *)
  per_byte_cpu : float;
      (** XDR encode + decode CPU cost per payload byte, seconds *)
  fault_overhead : float;
      (** servicing one access-violation exception: trap, handler entry,
          table lookup, protection change, seconds *)
  local_touch : float;
      (** CPU cost of one in-memory node visit in the application,
          seconds *)
}

(** Calibration for the paper's 1994 testbed (section 4). *)
val sparc_10mbps : t

(** Free networking and CPU: useful in unit tests where only event counts
    matter. *)
val zero : t

(** [frame_cost t ~bytes] is the simulated one-way cost of a frame of
    [bytes] payload bytes. *)
val frame_cost : t -> bytes:int -> float

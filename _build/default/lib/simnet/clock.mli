(** Simulated global clock.

    An RPC session has a single active thread of control (paper, section
    3.1), so one monotone clock per simulated world is a faithful time
    model: whoever holds control advances it. *)

type t

val create : unit -> t

(** [now t] is the current simulated time in seconds. *)
val now : t -> float

(** [advance t dt] moves time forward by [dt] seconds. [dt] must be
    non-negative. *)
val advance : t -> float -> unit

(** [reset t] rewinds the clock to zero (used between experiment runs). *)
val reset : t -> unit

(** [measure t f] runs [f ()] and returns its result together with the
    simulated time that elapsed during the call. *)
val measure : t -> (unit -> 'a) -> 'a * float

(** Data-type specifiers.

    A long pointer carries "a data type specifier that specifies the type
    of the data referenced by this pointer" (paper, section 3.2). Type
    specifiers are names resolved through the {!Registry} (the paper's
    network name server database); a descriptor tells the runtime the
    memory layout on each architecture and where the embedded pointers
    are, which drives type-directed marshaling. *)

type prim = I8 | I16 | I32 | I64 | F32 | F64

type t =
  | Prim of prim
  | Pointer of string
      (** typed pointer; the string is the pointee's registered name *)
  | Array of t * int  (** fixed-length array *)
  | Struct of (string * t) list  (** C-style record: field name, type *)
  | Named of string  (** reference to a registered descriptor *)

val prim_size : prim -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_prim : Format.formatter -> prim -> unit

(** Common shorthands. *)

val i8 : t
val i16 : t
val i32 : t
val i64 : t
val f32 : t
val f64 : t
val ptr : string -> t

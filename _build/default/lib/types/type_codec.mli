(** Wire codec for type descriptors.

    Lets the name-server database be queried and replicated over the
    wire: a joining site can pull the full schema (name, id, descriptor
    triples) instead of being configured out of band. *)

val encode_desc : Srpc_xdr.Xdr.Enc.t -> Type_desc.t -> unit
val decode_desc : Srpc_xdr.Xdr.Dec.t -> Type_desc.t

(** [snapshot reg] serializes the whole registry (names in id order, so
    the receiver interns identical numeric ids). *)
val snapshot : Registry.t -> string

(** [load s reg] registers every type of a snapshot into [reg].
    Registration order follows the snapshot's id order, so numeric ids
    match the source registry. Idempotent against identical existing
    entries; conflicting ones raise {!Registry.Duplicate_type}. *)
val load : string -> Registry.t -> unit

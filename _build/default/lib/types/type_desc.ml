type prim = I8 | I16 | I32 | I64 | F32 | F64

type t =
  | Prim of prim
  | Pointer of string
  | Array of t * int
  | Struct of (string * t) list
  | Named of string

let prim_size = function
  | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 -> 8
  | F32 -> 4
  | F64 -> 8

let rec equal a b =
  match (a, b) with
  | Prim p, Prim q -> p = q
  | Pointer s, Pointer s' -> String.equal s s'
  | Array (t, n), Array (t', n') -> n = n' && equal t t'
  | Struct fs, Struct fs' ->
    List.length fs = List.length fs'
    && List.for_all2
         (fun (n, t) (n', t') -> String.equal n n' && equal t t')
         fs fs'
  | Named s, Named s' -> String.equal s s'
  | (Prim _ | Pointer _ | Array _ | Struct _ | Named _), _ -> false

let pp_prim ppf p =
  Format.pp_print_string ppf
    (match p with
    | I8 -> "i8"
    | I16 -> "i16"
    | I32 -> "i32"
    | I64 -> "i64"
    | F32 -> "f32"
    | F64 -> "f64")

let rec pp ppf = function
  | Prim p -> pp_prim ppf p
  | Pointer s -> Format.fprintf ppf "%s*" s
  | Array (t, n) -> Format.fprintf ppf "%a[%d]" pp t n
  | Named s -> Format.pp_print_string ppf s
  | Struct fs ->
    let field ppf (n, t) = Format.fprintf ppf "%s: %a" n pp t in
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") field)
      fs

let i8 = Prim I8
let i16 = Prim I16
let i32 = Prim I32
let i64 = Prim I64
let f32 = Prim F32
let f64 = Prim F64
let ptr name = Pointer name

type t = {
  types : (string, Type_desc.t) Hashtbl.t;
  ids : (string, int) Hashtbl.t;
  names : (int, string) Hashtbl.t;
  mutable next_id : int;
}

exception Unknown_type of string
exception Duplicate_type of string

let create () =
  { types = Hashtbl.create 32; ids = Hashtbl.create 32; names = Hashtbl.create 32;
    next_id = 0 }

let register t name desc =
  match Hashtbl.find_opt t.types name with
  | None ->
    Hashtbl.add t.types name desc;
    Hashtbl.add t.ids name t.next_id;
    Hashtbl.add t.names t.next_id name;
    t.next_id <- t.next_id + 1
  | Some existing ->
    if not (Type_desc.equal existing desc) then raise (Duplicate_type name)

let find_opt t name = Hashtbl.find_opt t.types name

let find t name =
  match find_opt t name with
  | Some d -> d
  | None -> raise (Unknown_type name)

let mem t name = Hashtbl.mem t.types name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.types [] |> List.sort compare

let id_of_name t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None -> raise (Unknown_type name)

let name_of_id t id =
  match Hashtbl.find_opt t.names id with
  | Some name -> name
  | None -> raise (Unknown_type (Printf.sprintf "#%d" id))

let resolve t desc =
  (* A Named chain longer than the registry is necessarily cyclic. *)
  let max_depth = Hashtbl.length t.types + 1 in
  let rec go depth = function
    | Type_desc.Named name ->
      if depth > max_depth then raise (Unknown_type (name ^ " (cyclic alias)"));
      go (depth + 1) (find t name)
    | (Type_desc.Prim _ | Pointer _ | Array _ | Struct _) as d -> d
  in
  go 0 desc

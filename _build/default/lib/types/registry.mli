(** Type-specifier database — the paper's "database that serves as a
    network name server" (section 3.2).

    In the simulated world every site queries the same registry instance,
    which is exactly the paper's shared name-server assumption ("the
    proposed method ... shares only the logical type of the shared
    data"). *)

type t

exception Unknown_type of string
exception Duplicate_type of string

val create : unit -> t

(** [register t name desc] binds [name]. Re-registering the same
    descriptor is idempotent; a different descriptor raises
    {!Duplicate_type}. *)
val register : t -> string -> Type_desc.t -> unit

val find : t -> string -> Type_desc.t
val find_opt : t -> string -> Type_desc.t option
val mem : t -> string -> bool
val names : t -> string list

(** The name server also interns type names as dense numeric ids so that
    wire frames carry a 4-byte specifier instead of a string. Ids are
    assigned in registration order, which is consistent system-wide
    because the registry is shared (it {e is} the name server).

    @raise Unknown_type on unregistered names/ids. *)

val id_of_name : t -> string -> int

val name_of_id : t -> int -> string

(** [resolve t desc] chases [Named] indirections until a structural
    descriptor remains.
    @raise Unknown_type on a dangling name. *)
val resolve : t -> Type_desc.t -> Type_desc.t

module Xdr = Srpc_xdr.Xdr
open Xdr

let prim_tag = function
  | Type_desc.I8 -> 0
  | I16 -> 1
  | I32 -> 2
  | I64 -> 3
  | F32 -> 4
  | F64 -> 5

let prim_of_tag = function
  | 0 -> Type_desc.I8
  | 1 -> I16
  | 2 -> I32
  | 3 -> I64
  | 4 -> F32
  | 5 -> F64
  | n -> raise (Decode_error (Printf.sprintf "bad prim tag %d" n))

let rec encode_desc enc = function
  | Type_desc.Prim p ->
    Enc.int enc 0;
    Enc.int enc (prim_tag p)
  | Type_desc.Pointer name ->
    Enc.int enc 1;
    Enc.string enc name
  | Type_desc.Array (elem, n) ->
    Enc.int enc 2;
    Enc.uint32 enc n;
    encode_desc enc elem
  | Type_desc.Struct fields ->
    Enc.int enc 3;
    Enc.list enc
      (fun enc (name, ty) ->
        Enc.string enc name;
        encode_desc enc ty)
      fields
  | Type_desc.Named name ->
    Enc.int enc 4;
    Enc.string enc name

let rec decode_desc dec =
  match Dec.int dec with
  | 0 -> Type_desc.Prim (prim_of_tag (Dec.int dec))
  | 1 -> Type_desc.Pointer (Dec.string dec)
  | 2 ->
    let n = Dec.uint32 dec in
    Type_desc.Array (decode_desc dec, n)
  | 3 ->
    Type_desc.Struct
      (Dec.list dec (fun dec ->
           let name = Dec.string dec in
           let ty = decode_desc dec in
           (name, ty)))
  | 4 -> Type_desc.Named (Dec.string dec)
  | n -> raise (Decode_error (Printf.sprintf "bad descriptor tag %d" n))

let snapshot reg =
  let names =
    Registry.names reg
    |> List.sort (fun a b ->
           Int.compare (Registry.id_of_name reg a) (Registry.id_of_name reg b))
  in
  let enc = Enc.create () in
  Enc.list enc
    (fun enc name ->
      Enc.string enc name;
      encode_desc enc (Registry.find reg name))
    names;
  Enc.to_string enc

let load s reg =
  let dec = Dec.of_string s in
  let entries =
    Dec.list dec (fun dec ->
        let name = Dec.string dec in
        let desc = decode_desc dec in
        (name, desc))
  in
  Dec.check_end dec;
  List.iter (fun (name, desc) -> Registry.register reg name desc) entries

open Srpc_memory

type field = { name : string; offset : int; ty : Type_desc.t }
type t = { size : int; align : int; fields : field list }
type leaf = { leaf_offset : int; kind : leaf_kind }
and leaf_kind = Scalar of Type_desc.prim | Ptr of string

exception Recursive_type of string

let round_up n align = (n + align - 1) / align * align

(* [visiting] tracks Named types being laid out by value, to reject
   infinitely-sized types (a struct containing itself not behind a
   pointer). Pointers do not recurse, so list/tree nodes are fine. *)
let rec layout_rec reg (arch : Arch.t) visiting ty : t =
  match (ty : Type_desc.t) with
  | Prim p ->
    let size = Type_desc.prim_size p in
    { size; align = size; fields = [] }
  | Pointer _ -> { size = arch.word_size; align = arch.word_size; fields = [] }
  | Named name ->
    if List.mem name visiting then raise (Recursive_type name);
    layout_rec reg arch (name :: visiting) (Registry.find reg name)
  | Array (elem, n) ->
    if n < 0 then invalid_arg "Layout: negative array length";
    let el = layout_rec reg arch visiting elem in
    let stride = round_up el.size el.align in
    { size = stride * n; align = el.align; fields = [] }
  | Struct fs ->
    let offset, align, rev_fields =
      List.fold_left
        (fun (offset, align, acc) (name, fty) ->
          let fl = layout_rec reg arch visiting fty in
          let offset = round_up offset fl.align in
          (offset + fl.size, max align fl.align, { name; offset; ty = fty } :: acc))
        (0, 1, []) fs
    in
    { size = round_up offset align; align; fields = List.rev rev_fields }

let of_type reg arch ty = layout_rec reg arch [] ty
let sizeof reg arch ty = (of_type reg arch ty).size
let sizeof_name reg arch name = sizeof reg arch (Type_desc.Named name)

let struct_fields reg ty =
  match Registry.resolve reg ty with
  | Type_desc.Struct fs -> fs
  | Type_desc.Prim _ | Pointer _ | Array _ -> raise Not_found
  | Type_desc.Named _ -> assert false (* resolve returns structural *)

let field_offset reg arch ~ty ~field =
  let resolved = Registry.resolve reg ty in
  let l = of_type reg arch resolved in
  match List.find_opt (fun f -> String.equal f.name field) l.fields with
  | Some f -> f.offset
  | None -> raise Not_found

let field_type reg ~ty ~field =
  match List.assoc_opt field (struct_fields reg ty) with
  | Some t -> t
  | None -> raise Not_found

let leaves reg (arch : Arch.t) ty =
  let out = ref [] in
  let rec go base visiting ty =
    match (ty : Type_desc.t) with
    | Prim p -> out := { leaf_offset = base; kind = Scalar p } :: !out
    | Pointer target -> out := { leaf_offset = base; kind = Ptr target } :: !out
    | Named name ->
      if List.mem name visiting then raise (Recursive_type name);
      go base (name :: visiting) (Registry.find reg name)
    | Array (elem, n) ->
      let el = layout_rec reg arch visiting elem in
      let stride = round_up el.size el.align in
      for i = 0 to n - 1 do
        go (base + (i * stride)) visiting elem
      done
    | Struct fs ->
      let l = layout_rec reg arch visiting ty in
      List.iter2
        (fun { offset; ty = fty; _ } (_, _) -> go (base + offset) visiting fty)
        l.fields fs
  in
  go 0 [] ty;
  List.rev !out

let pointer_leaves reg arch ty =
  List.filter_map
    (fun l -> match l.kind with Ptr t -> Some (l.leaf_offset, t) | Scalar _ -> None)
    (leaves reg arch ty)

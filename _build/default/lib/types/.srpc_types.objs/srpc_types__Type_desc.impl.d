lib/types/type_desc.ml: Format List String

lib/types/registry.mli: Type_desc

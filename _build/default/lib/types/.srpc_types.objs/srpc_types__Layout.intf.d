lib/types/layout.mli: Arch Registry Srpc_memory Type_desc

lib/types/registry.ml: Hashtbl List Printf Type_desc

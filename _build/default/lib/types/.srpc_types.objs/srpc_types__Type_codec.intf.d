lib/types/type_codec.mli: Registry Srpc_xdr Type_desc

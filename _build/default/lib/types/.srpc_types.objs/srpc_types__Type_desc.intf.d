lib/types/type_desc.mli: Format

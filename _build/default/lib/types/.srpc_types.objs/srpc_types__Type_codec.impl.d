lib/types/type_codec.ml: Dec Enc Int List Printf Registry Srpc_xdr Type_desc

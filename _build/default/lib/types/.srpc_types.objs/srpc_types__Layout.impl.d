lib/types/layout.ml: Arch List Registry Srpc_memory String Type_desc

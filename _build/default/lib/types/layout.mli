(** Per-architecture memory layout of a descriptor.

    C-style rules: every primitive is aligned to its own size, pointers
    to the architecture's word size, structs to their widest member, and
    struct sizes are rounded up to their alignment. Because pointer
    width differs across architectures, the same record legitimately has
    different sizes on different machines — this is the heterogeneity the
    paper's type-directed transfer handles (and that heterogeneous DSM
    systems cannot, section 5.2). *)

open Srpc_memory

type field = { name : string; offset : int; ty : Type_desc.t }

type t = { size : int; align : int; fields : field list }
(** [fields] is non-empty only for struct layouts. *)

(** A scalar leaf of a type: its byte offset and what sits there. The
    leaf sequence of a type has the same length and kind order on every
    architecture (only offsets differ), which is what lets the wire
    format be canonical. *)
type leaf = { leaf_offset : int; kind : leaf_kind }

and leaf_kind = Scalar of Type_desc.prim | Ptr of string

exception Recursive_type of string

(** [of_type reg arch ty] computes the layout.
    @raise Registry.Unknown_type on a dangling [Named].
    @raise Recursive_type if a struct contains itself by value. *)
val of_type : Registry.t -> Arch.t -> Type_desc.t -> t

val sizeof : Registry.t -> Arch.t -> Type_desc.t -> int

(** [sizeof_name reg arch name] is the size of the registered type
    [name]. *)
val sizeof_name : Registry.t -> Arch.t -> string -> int

(** [field_offset reg arch ~ty ~field] is the offset of a direct struct
    field.
    @raise Not_found if [ty] is not a struct with that field. *)
val field_offset : Registry.t -> Arch.t -> ty:Type_desc.t -> field:string -> int

(** [field_type reg ~ty ~field] is a direct struct field's declared
    type. @raise Not_found as above. *)
val field_type : Registry.t -> ty:Type_desc.t -> field:string -> Type_desc.t

(** [leaves reg arch ty] enumerates scalar leaves in declaration order,
    flattening nested structs and arrays. *)
val leaves : Registry.t -> Arch.t -> Type_desc.t -> leaf list

(** [pointer_leaves reg arch ty] is [leaves] restricted to pointers:
    (offset, pointee type name) pairs. *)
val pointer_leaves : Registry.t -> Arch.t -> Type_desc.t -> (int * string) list

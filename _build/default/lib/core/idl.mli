(** Typed stubs — the stub-generator layer.

    "Most RPC systems provide a generator of code that performs most of
    the communication-specific operations at runtime" (paper, section 1).
    In OCaml the generator is a set of typed combinators: declare a
    procedure's signature once and obtain a type-checked client stub and
    a server skeleton that agree on arity and argument kinds by
    construction; mismatches surface as {!Signature_error} at the
    boundary instead of silent corruption.

    {[
      let search =
        Idl.(declare "search" (ptr "tnode" @-> int @-> returning int))

      (* server *)
      Idl.export server search (fun node root limit -> ...);

      (* client: an ordinary typed function *)
      let hits = Idl.stub client ~dst:(Node.id server) search root 64
    ]} *)

exception Signature_error of string

(** Argument/result kind descriptors. *)
type _ ty

val unit : unit ty
val bool : bool ty
val int : int ty
val int64 : int64 ty
val float : float ty
val string : string ty

(** [ptr tyname] — a swizzled pointer to a registered data type. The
    stub checks the pointee type name on both ends. *)
val ptr : string -> Access.ptr ty

val funref : Funref.t ty

(** Procedure signatures, e.g. [ptr "tnode" @-> int @-> returning int]. *)
type _ signature

val returning : 'r ty -> 'r signature

(** Multiple results as tuples: [returning2 int float] gives
    [(int * float)]. *)
val returning2 : 'a ty -> 'b ty -> ('a * 'b) signature

val returning3 : 'a ty -> 'b ty -> 'c ty -> ('a * 'b * 'c) signature
val ( @-> ) : 'a ty -> 'b signature -> ('a -> 'b) signature

type 'f t
(** A declared procedure: a name plus its signature. *)

val declare : string -> 'f signature -> 'f t
val name : _ t -> string

(** [export node proc impl] registers the typed implementation; [impl]
    receives the executing node first. Incoming calls with the wrong
    arity or argument kinds raise {!Signature_error} back to the
    caller. *)
val export : Node.t -> 'f t -> (Node.t -> 'f) -> unit

(** [stub node ~dst proc] is the typed client function: applying it to
    its arguments performs the RPC. *)
val stub : Node.t -> dst:Srpc_memory.Space_id.t -> 'f t -> 'f

(** [local node proc] is the same typed application running the locally
    registered implementation (no RPC). *)
val local : Node.t -> 'f t -> 'f

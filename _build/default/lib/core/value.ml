type funref = { home : Srpc_memory.Space_id.t; name : string }

type t =
  | Unit
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | Ptr of { addr : int; ty : string }
  | Fun of funref

let unit = Unit
let bool b = Bool b
let int n = Int (Int64.of_int n)
let int64 n = Int n
let float f = Float f
let str s = Str s
let ptr ~ty addr = Ptr { addr; ty }
let null ~ty = Ptr { addr = 0; ty }
let fn ~home ~name = Fun { home; name }

let type_error want got =
  let name = function
    | Unit -> "unit"
    | Bool _ -> "bool"
    | Int _ -> "int"
    | Float _ -> "float"
    | Str _ -> "string"
    | Ptr _ -> "pointer"
    | Fun _ -> "funref"
  in
  invalid_arg (Printf.sprintf "Value: expected %s, got %s" want (name got))

let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_int64 = function Int n -> n | v -> type_error "int" v
let to_int v = Int64.to_int (to_int64 v)
let to_float = function Float f -> f | v -> type_error "float" v
let to_str = function Str s -> s | v -> type_error "string" v
let to_addr = function Ptr p -> p.addr | v -> type_error "pointer" v
let ptr_ty = function Ptr p -> p.ty | v -> type_error "pointer" v
let to_funref = function Fun f -> f | v -> type_error "funref" v

let equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> Int64.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Ptr x, Ptr y -> x.addr = y.addr && String.equal x.ty y.ty
  | Fun x, Fun y ->
    Srpc_memory.Space_id.equal x.home y.home && String.equal x.name y.name
  | (Unit | Bool _ | Int _ | Float _ | Str _ | Ptr _ | Fun _), _ -> false

let pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.fprintf ppf "%Ld" n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Ptr { addr; ty } -> Format.fprintf ppf "&%s@0x%x" ty addr
  | Fun { home; name } ->
    Format.fprintf ppf "fun:%a/%s" Srpc_memory.Space_id.pp home name

open Srpc_simnet
open Srpc_types
module Xdr = Srpc_xdr.Xdr

let endpoint = "ns"

type t = { mutable served : int }

(* Requests: 0 = full snapshot; 1 <name> = one descriptor.
   Replies:  0 <payload> = ok; 1 <msg> = unknown type. *)

let serve transport master =
  let t = { served = 0 } in
  Transport.register transport endpoint (fun _src req ->
      t.served <- t.served + 1;
      let dec = Xdr.Dec.of_string req in
      let enc = Xdr.Enc.create () in
      (match Xdr.Dec.int dec with
      | 0 ->
        Xdr.Dec.check_end dec;
        Xdr.Enc.int enc 0;
        Xdr.Enc.opaque enc (Type_codec.snapshot master)
      | 1 -> (
        let name = Xdr.Dec.string dec in
        Xdr.Dec.check_end dec;
        match Registry.find_opt master name with
        | Some desc ->
          Xdr.Enc.int enc 0;
          Type_codec.encode_desc enc desc
        | None ->
          Xdr.Enc.int enc 1;
          Xdr.Enc.string enc name)
      | n -> raise (Xdr.Decode_error (Printf.sprintf "bad ns request %d" n)));
      Xdr.Enc.to_string enc);
  t

let queries t = t.served

let request transport ~client body =
  let reply = Transport.rpc transport ~src:client ~dst:endpoint body in
  Xdr.Dec.of_string reply

let sync transport ~client local =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.int enc 0;
  let dec = request transport ~client (Xdr.Enc.to_string enc) in
  match Xdr.Dec.int dec with
  | 0 ->
    let snapshot = Xdr.Dec.opaque dec in
    Xdr.Dec.check_end dec;
    Type_codec.load snapshot local
  | _ -> failwith "name service: snapshot failed"

let lookup transport ~client name =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.int enc 1;
  Xdr.Enc.string enc name;
  let dec = request transport ~client (Xdr.Enc.to_string enc) in
  match Xdr.Dec.int dec with
  | 0 ->
    let desc = Type_codec.decode_desc dec in
    Xdr.Dec.check_end dec;
    desc
  | 1 -> raise (Registry.Unknown_type (Xdr.Dec.string dec))
  | n -> raise (Xdr.Decode_error (Printf.sprintf "bad ns reply %d" n))

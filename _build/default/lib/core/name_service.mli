(** The name server as an actual network service.

    The paper assumes "the system can obtain an actual data structure
    from a data type specifier by querying a database that serves as a
    network name server" (section 3.2). {!Cluster} shares one registry
    object as that database; this module makes the querying real: a
    master registry is served at a transport endpoint, and joining sites
    pull the schema over the wire into their local registry (the cached
    database the runtime then consults). *)

open Srpc_simnet
open Srpc_types

(** The endpoint name the service listens on. *)
val endpoint : string

type t

(** [serve transport master] installs the service. Frames are XDR; each
    request is counted in the transport's statistics like any other
    traffic. *)
val serve : Transport.t -> Registry.t -> t

(** Number of queries served so far. *)
val queries : t -> int

(** [sync transport ~client local] pulls the full schema into [local]
    (one round trip). Numeric type ids are preserved, so wire frames
    interned against the master decode correctly against [local].
    @raise Registry.Duplicate_type on a conflicting local entry. *)
val sync : Transport.t -> client:string -> Registry.t -> unit

(** [lookup transport ~client name] queries one descriptor without
    caching it. @raise Registry.Unknown_type if the master lacks it. *)
val lookup : Transport.t -> client:string -> string -> Type_desc.t

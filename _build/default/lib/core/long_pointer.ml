open Srpc_memory
module Xdr = Srpc_xdr.Xdr

type t = { origin : Space_id.t; addr : int; ty : string }

let make ~origin ~addr ~ty = { origin; addr; ty }
let is_provisional t = t.addr < 0

let equal a b =
  Space_id.equal a.origin b.origin && a.addr = b.addr && String.equal a.ty b.ty

let compare a b =
  match Space_id.compare a.origin b.origin with
  | 0 -> (
    match Int.compare a.addr b.addr with
    | 0 -> String.compare a.ty b.ty
    | c -> c)
  | c -> c

let hash t = (Space_id.hash t.origin * 31) + (t.addr * 7) + Hashtbl.hash t.ty

let pp ppf t =
  Format.fprintf ppf "<%a:0x%x:%s>%s" Space_id.pp t.origin (abs t.addr) t.ty
    (if is_provisional t then "?" else "")

let encode ~reg enc = function
  | None -> Xdr.Enc.bool enc false
  | Some t ->
    assert (not (is_provisional t));
    assert (t.origin.Space_id.site land lnot 0xffff = 0);
    assert (t.origin.Space_id.proc land lnot 0xffff = 0);
    Xdr.Enc.bool enc true;
    Xdr.Enc.uint32 enc ((t.origin.Space_id.site lsl 16) lor t.origin.Space_id.proc);
    Xdr.Enc.hyper enc t.addr;
    Xdr.Enc.uint32 enc (Srpc_types.Registry.id_of_name reg t.ty)

let decode ~reg dec =
  if not (Xdr.Dec.bool dec) then None
  else
    let packed = Xdr.Dec.uint32 dec in
    let addr = Xdr.Dec.hyper dec in
    let ty = Srpc_types.Registry.name_of_id reg (Xdr.Dec.uint32 dec) in
    Some
      {
        origin = Space_id.make ~site:(packed lsr 16) ~proc:(packed land 0xffff);
        addr;
        ty;
      }

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** RPC argument and result values.

    Scalars are passed by copy as in any RPC system; [Ptr] is the
    paper's novelty — an ordinary pointer (a node-local address) tagged
    with its pointee's registered type so the stubs can unswizzle and
    swizzle it. The address [0] is the null pointer. *)

(** A reference to a named remote procedure — the conventional explicit
    form of a "function pointer" (see {!Funref}). *)
type funref = { home : Srpc_memory.Space_id.t; name : string }

type t =
  | Unit
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | Ptr of { addr : int; ty : string }
  | Fun of funref

val unit : t
val bool : bool -> t
val int : int -> t
val int64 : int64 -> t
val float : float -> t
val str : string -> t
val ptr : ty:string -> int -> t
val null : ty:string -> t
val fn : home:Srpc_memory.Space_id.t -> name:string -> t

(** Projections; raise [Invalid_argument] on a type mismatch (an RPC
    signature violation). *)

val to_bool : t -> bool
val to_int : t -> int
val to_int64 : t -> int64
val to_float : t -> float
val to_str : t -> string

(** [to_addr v] is the address carried by a [Ptr] (possibly 0). *)
val to_addr : t -> int

(** [ptr_ty v] is the pointee type of a [Ptr]. *)
val ptr_ty : t -> string

(** [to_funref v] projects a [Fun]. *)
val to_funref : t -> funref

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

lib/core/idl.mli: Access Funref Node Srpc_memory

lib/core/hints.ml: Hashtbl Layout List Srpc_types Type_desc

lib/core/hints.mli: Arch Registry Srpc_memory Srpc_types

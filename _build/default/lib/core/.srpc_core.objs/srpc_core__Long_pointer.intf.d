lib/core/long_pointer.mli: Format Hashtbl Space_id Srpc_memory Srpc_types Srpc_xdr

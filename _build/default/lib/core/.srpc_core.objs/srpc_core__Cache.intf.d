lib/core/cache.mli: Address_space Format Long_pointer Srpc_memory Strategy

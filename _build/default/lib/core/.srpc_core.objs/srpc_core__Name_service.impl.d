lib/core/name_service.ml: Printf Registry Srpc_simnet Srpc_types Srpc_xdr Transport Type_codec

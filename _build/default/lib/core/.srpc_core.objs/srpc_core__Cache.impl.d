lib/core/cache.ml: Address_space Bytes Format Hashtbl List Long_pointer Printf Prot Result Space_id Srpc_memory Strategy

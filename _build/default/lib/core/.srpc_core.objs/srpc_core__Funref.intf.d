lib/core/funref.mli: Node Space_id Srpc_memory Value

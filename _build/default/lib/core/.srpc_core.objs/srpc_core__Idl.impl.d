lib/core/idl.ml: Access Format Funref Int64 List Node Printf Stdlib Value

lib/core/wire.mli: Format Long_pointer Srpc_types Value

lib/core/cluster.mli: Arch Clock Cost_model Hints Node Session Space_id Srpc_memory Srpc_simnet Srpc_types Stats Strategy Transport

lib/core/name_service.mli: Registry Srpc_simnet Srpc_types Transport Type_desc

lib/core/introspect.mli: Format Node

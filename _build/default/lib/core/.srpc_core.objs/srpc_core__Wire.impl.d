lib/core/wire.ml: Dec Enc Format List Long_pointer Printf Srpc_memory Srpc_xdr Value

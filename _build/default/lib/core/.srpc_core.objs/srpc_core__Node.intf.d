lib/core/node.mli: Address_space Allocator Arch Cache Format Hints Long_pointer Mmu Registry Session Space_id Srpc_memory Srpc_simnet Srpc_types Strategy Transport Value

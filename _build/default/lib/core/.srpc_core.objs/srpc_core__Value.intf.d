lib/core/value.mli: Format Srpc_memory

lib/core/object_codec.mli: Arch Long_pointer Registry Srpc_memory Srpc_types

lib/core/introspect.ml: Address_space Allocator Arch Cache Format Hashtbl List Long_pointer Node Option Space_id Srpc_memory Strategy

lib/core/value.ml: Float Format Int64 Printf Srpc_memory String

lib/core/session.mli: Space_id Srpc_memory

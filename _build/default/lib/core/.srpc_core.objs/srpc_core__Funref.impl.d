lib/core/funref.ml: Node Space_id Srpc_memory String Value

lib/core/long_pointer.ml: Format Hashtbl Int Space_id Srpc_memory Srpc_types Srpc_xdr String

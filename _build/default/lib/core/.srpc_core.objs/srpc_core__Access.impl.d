lib/core/access.ml: Address_space Arch Format Hashtbl Int32 Int64 Layout Mem Node Printf Registry Srpc_memory Srpc_types String Type_desc Value

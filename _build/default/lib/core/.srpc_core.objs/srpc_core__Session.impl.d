lib/core/session.ml: Option Space_id Srpc_memory

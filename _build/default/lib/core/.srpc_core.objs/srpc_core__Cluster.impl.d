lib/core/cluster.ml: Arch Clock Cost_model Hints List Node Printf Session Space_id Srpc_memory Srpc_simnet Srpc_types Stats Strategy Transport

lib/core/object_codec.ml: Arch Bytes Layout List Long_pointer Mem Printf Registry Srpc_memory Srpc_types Srpc_xdr Type_desc

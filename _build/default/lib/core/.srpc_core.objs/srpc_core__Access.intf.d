lib/core/access.mli: Node Value

open Srpc_memory

type heap_stats = { live_blocks : int; live_bytes : int; free_bytes : int }

type cache_stats = {
  entries : int;
  present : int;
  dirty : int;
  cache_bytes : int;
  pages : int;
  by_origin : (string * int) list;
}

let heap_stats node =
  let heap = Node.heap node in
  {
    live_blocks = Allocator.live_blocks heap;
    live_bytes = Allocator.allocated_bytes heap;
    free_bytes = Allocator.free_bytes heap;
  }

let cache_stats node =
  let cache = Node.cache node in
  let present = ref 0 and dirty = ref 0 in
  let origins = Hashtbl.create 4 in
  Cache.iter_entries cache (fun e ->
      if e.Cache.present then incr present;
      if e.Cache.dirty then incr dirty;
      let key = Space_id.to_string e.Cache.lp.Long_pointer.origin in
      Hashtbl.replace origins key
        (1 + Option.value ~default:0 (Hashtbl.find_opt origins key)));
  {
    entries = Cache.entry_count cache;
    present = !present;
    dirty = !dirty;
    cache_bytes = Cache.allocated_bytes cache;
    pages = Cache.used_pages cache;
    by_origin =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) origins [] |> List.sort compare;
  }

let pp ppf node =
  let h = heap_stats node in
  let c = cache_stats node in
  Format.fprintf ppf "@[<v>node %a (%a), strategy %a@,"
    Space_id.pp (Node.id node) Arch.pp
    (Address_space.arch (Node.space node))
    Strategy.pp (Node.strategy node);
  Format.fprintf ppf "heap : %d live blocks, %d bytes live, %d bytes free@,"
    h.live_blocks h.live_bytes h.free_bytes;
  Format.fprintf ppf
    "cache: %d entries (%d present, %d dirty), %d bytes in %d pages@," c.entries
    c.present c.dirty c.cache_bytes c.pages;
  List.iter
    (fun (origin, n) -> Format.fprintf ppf "       from %s: %d entries@," origin n)
    c.by_origin;
  if c.entries > 0 then
    Format.fprintf ppf "%a@," Cache.pp_table (Node.cache node);
  Format.fprintf ppf "@]"

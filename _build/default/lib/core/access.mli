(** Typed access to (possibly remote) data through ordinary pointers.

    This is the application-facing illusion of the paper: "once a remote
    data is referenced, it is cached in the local address space and the
    runtime cost to access it is exactly the same as the cost to access
    ordinary local data" (section 1). Every accessor issues a plain
    program-path load or store; if the datum is an absent cache entry the
    MMU faults and the runtime fetches it transparently.

    A {!ptr} pairs an ordinary address with the pointee's registered type
    name so field offsets can be resolved per architecture. *)

type ptr = { addr : int; ty : string }

val ptr : ty:string -> int -> ptr
val null : ty:string -> ptr
val is_null : ptr -> bool

(** [of_value v] views a {!Value.Ptr} as a typed pointer. *)
val of_value : Value.t -> ptr

val to_value : ptr -> Value.t

(** Struct-field accessors. [field] must name a direct field of
    [ptr.ty]; integer fields of any width are read/written as OCaml
    ints ([get_int]/[set_int]) or exactly ([get_i64] …). Each call
    counts one application data access in the cost model.
    @raise Not_found on an unknown field. *)

val get_int : Node.t -> ptr -> field:string -> int
val set_int : Node.t -> ptr -> field:string -> int -> unit
val get_i64 : Node.t -> ptr -> field:string -> int64
val set_i64 : Node.t -> ptr -> field:string -> int64 -> unit
val get_f64 : Node.t -> ptr -> field:string -> float
val set_f64 : Node.t -> ptr -> field:string -> float -> unit

(** [get_ptr n p ~field] follows a pointer field; the result carries the
    field's pointee type. @raise Invalid_argument on a non-pointer
    field. *)
val get_ptr : Node.t -> ptr -> field:string -> ptr

val set_ptr : Node.t -> ptr -> field:string -> ptr -> unit

(** [elem n p i] is the address of the [i]-th element when [p] points to
    a contiguous array of [p.ty]. *)
val elem : Node.t -> ptr -> int -> ptr

(** Whole-value accessors for pointers to primitive pointees. *)

val load_int : Node.t -> ptr -> int
val store_int : Node.t -> ptr -> int -> unit

open Srpc_memory

type t = Value.funref = { home : Space_id.t; name : string }

let make ~home ~name = { home; name }
let to_value t = Value.Fun t
let of_value = Value.to_funref
let to_string t = Space_id.to_string t.home ^ "/" ^ t.name

let of_string s =
  match String.index_opt s '/' with
  | None -> invalid_arg "Funref.of_string: missing '/'"
  | Some i ->
    {
      home = Space_id.of_string (String.sub s 0 i);
      name = String.sub s (i + 1) (String.length s - i - 1);
    }

let invoke node t args =
  if Space_id.equal t.home (Node.id node) then Node.run_local node t.name args
  else Node.call node ~dst:t.home t.name args

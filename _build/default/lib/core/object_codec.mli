(** Type-directed canonical encoding of in-memory objects.

    Transfers "must be encoded and decoded to preserve their data types
    in a heterogeneous environment. We can use the standard methods
    except for the case of pointers, which must be unswizzled and
    swizzled" (paper, section 3.2). The encoder walks the object's
    scalar leaves in declaration order, converting each primitive to XDR
    and each pointer word through the caller-supplied unswizzler; the
    decoder does the reverse for the destination architecture, swizzling
    pointers into local cache addresses (which may allocate fresh
    protected slots). *)

open Srpc_memory
open Srpc_types

type encode_ctx = {
  enc_reg : Registry.t;
  enc_arch : Arch.t;
  unswizzle : ty:string -> int -> Long_pointer.t option;
      (** ordinary pointer word → long pointer; [None] for null *)
}

type decode_ctx = {
  dec_reg : Registry.t;
  dec_arch : Arch.t;
  swizzle : Long_pointer.t option -> int;
      (** long pointer → ordinary pointer word; null → 0 *)
}

(** [encode ctx ~ty raw] converts the in-memory image [raw] of an object
    of registered type [ty] to its canonical form. [raw] must be exactly
    the type's size on [ctx.enc_arch]. *)
val encode : encode_ctx -> ty:string -> bytes -> string

(** [decode ctx ~ty data] converts canonical [data] back to an in-memory
    image for [ctx.dec_arch]. *)
val decode : decode_ctx -> ty:string -> string -> bytes

(** [wire_size reg ~ty] is the canonical encoding's size upper bound for
    scalars (pointers are variable-width); exposed for tests. *)
val scalar_leaf_count : Registry.t -> ty:string -> int

(** Remote function references.

    The paper's stated limitation: "the method does not support a remote
    pointer to a function" (section 6). This module provides the
    conventional escape hatch the paper alludes to — an explicit
    (space, procedure-name) reference that can be passed as an RPC
    string argument and invoked, turning into a callback when the
    function lives elsewhere. It deliberately does {e not} pretend to be
    a swizzlable pointer. *)

open Srpc_memory

type t = Value.funref = { home : Space_id.t; name : string }

val make : home:Space_id.t -> name:string -> t

(** First-class form: a funref travels as an RPC argument or result of
    its own kind ({!Value.Fun}), so procedures can be passed around and
    invoked — the systematic higher-order treatment the paper's
    conclusion points at (Ohori & Kato), restricted to named monomorphic
    procedures. *)

val to_value : t -> Value.t

val of_value : Value.t -> t

(** Wire form for passing through a [Value.Str] argument. *)

val to_string : t -> string
val of_string : string -> t

(** [invoke node t args] runs the referenced procedure: directly when it
    lives on [node], as an RPC (e.g. a callback to the caller)
    otherwise.
    @raise Node.Unknown_procedure if the local procedure is missing. *)
val invoke : Node.t -> t -> Value.t list -> Value.t list

exception Signature_error of string

type _ ty =
  | Unit : unit ty
  | Bool : bool ty
  | Int : int ty
  | Int64 : int64 ty
  | Float : float ty
  | String : string ty
  | Ptr : string -> Access.ptr ty
  | Fun : Funref.t ty

let unit = Unit
let bool = Bool
let int = Int
let int64 = Int64
let float = Float
let string = String
let ptr name = Ptr name
let funref = Fun

type _ ret =
  | Ret1 : 'r ty -> 'r ret
  | Ret2 : 'a ty * 'b ty -> ('a * 'b) ret
  | Ret3 : 'a ty * 'b ty * 'c ty -> ('a * 'b * 'c) ret

type _ signature =
  | Returning : 'r ret -> 'r signature
  | Arrow : 'a ty * 'b signature -> ('a -> 'b) signature

let returning ty = Returning (Ret1 ty)
let returning2 a b = Returning (Ret2 (a, b))
let returning3 a b c = Returning (Ret3 (a, b, c))
let ( @-> ) a rest = Arrow (a, rest)

type 'f t = { proc_name : string; sg : 'f signature }

let declare proc_name sg = { proc_name; sg }
let name t = t.proc_name

let ty_name : type a. a ty -> string = function
  | Unit -> "unit"
  | Bool -> "bool"
  | Int -> "int"
  | Int64 -> "int64"
  | Float -> "float"
  | String -> "string"
  | Ptr ty -> ty ^ "*"
  | Fun -> "funref"

let fail fmt = Printf.ksprintf (fun msg -> raise (Signature_error msg)) fmt

let encode : type a. a ty -> a -> Value.t =
 fun ty v ->
  match ty with
  | Unit -> Value.unit
  | Bool -> Value.bool v
  | Int -> Value.int v
  | Int64 -> Value.int64 v
  | Float -> Value.float v
  | String -> Value.str v
  | Ptr expected ->
    if (not (Access.is_null v)) && not (Stdlib.String.equal v.Access.ty expected)
    then fail "pointer argument is %s*, expected %s*" v.Access.ty expected;
    Value.Ptr { addr = v.Access.addr; ty = expected }
  | Fun -> Funref.to_value v

let decode : type a. a ty -> Value.t -> a =
 fun ty v ->
  let wrong got = fail "expected %s, got %s" (ty_name ty) got in
  match (ty, v) with
  | Unit, Value.Unit -> ()
  | Bool, Value.Bool b -> b
  | Int, Value.Int n -> Int64.to_int n
  | Int64, Value.Int n -> n
  | Float, Value.Float f -> f
  | String, Value.Str s -> s
  | Ptr expected, Value.Ptr { addr; ty = got } ->
    if addr <> 0 && not (Stdlib.String.equal got expected) then
      fail "pointer result is %s*, expected %s*" got expected;
    Access.ptr ~ty:expected addr
  | Fun, Value.Fun f -> f
  | _, other -> wrong (Format.asprintf "%a" Value.pp other)

let decode_ret : type r. r ret -> Value.t list -> r =
 fun rty results ->
  match (rty, results) with
  | Ret1 t, [ v ] -> decode t v
  | Ret2 (ta, tb), [ va; vb ] -> (decode ta va, decode tb vb)
  | Ret3 (ta, tb, tc), [ va; vb; vc ] -> (decode ta va, decode tb vb, decode tc vc)
  | (Ret1 _ | Ret2 _ | Ret3 _), results ->
    fail "wrong result arity: got %d" (List.length results)

let encode_ret : type r. r ret -> r -> Value.t list =
 fun rty r ->
  match rty with
  | Ret1 t -> [ encode t r ]
  | Ret2 (ta, tb) ->
    let a, b = r in
    [ encode ta a; encode tb b ]
  | Ret3 (ta, tb, tc) ->
    let a, b, c = r in
    [ encode ta a; encode tb b; encode tc c ]

(* Client side: each Arrow wraps the continuation so that its argument
   is consed on after the inner (later) ones are already in the
   accumulator — the accumulator therefore ends up in call order. *)
let rec apply_client : type f. f signature -> (Value.t list -> Value.t list) -> f
    =
 fun sg send ->
  match sg with
  | Returning rty -> decode_ret rty (send [])
  | Arrow (aty, rest) ->
    fun a -> apply_client rest (fun acc -> send (encode aty a :: acc))

let stub node ~dst t =
  apply_client t.sg (fun args -> Node.call node ~dst t.proc_name args)

let local node t =
  apply_client t.sg (fun args -> Node.run_local node t.proc_name args)

(* Server side: peel arguments off the wire one signature arrow at a
   time; arity mismatches fail loudly. *)
let rec apply_server : type f. f signature -> f -> Value.t list -> Value.t list =
 fun sg f args ->
  match (sg, args) with
  | Returning rty, [] -> encode_ret rty f
  | Returning _, extra -> fail "%d surplus arguments" (List.length extra)
  | Arrow (aty, rest), a :: args -> apply_server rest (f (decode aty a)) args
  | Arrow _, [] -> fail "too few arguments"

let export node t impl =
  Node.register node t.proc_name (fun exec_node args ->
      apply_server t.sg (impl exec_node) args)

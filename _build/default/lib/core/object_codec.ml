open Srpc_memory
open Srpc_types
module Xdr = Srpc_xdr.Xdr

type encode_ctx = {
  enc_reg : Registry.t;
  enc_arch : Arch.t;
  unswizzle : ty:string -> int -> Long_pointer.t option;
}

type decode_ctx = {
  dec_reg : Registry.t;
  dec_arch : Arch.t;
  swizzle : Long_pointer.t option -> int;
}

let encode ctx ~ty raw =
  let desc = Type_desc.Named ty in
  let size = Layout.sizeof ctx.enc_reg ctx.enc_arch desc in
  if Bytes.length raw <> size then
    invalid_arg
      (Printf.sprintf "Object_codec.encode: %s is %d bytes, got %d" ty size
         (Bytes.length raw));
  let enc = Xdr.Enc.create ~initial:(size * 2) () in
  let endian = ctx.enc_arch.Arch.endian in
  List.iter
    (fun { Layout.leaf_offset = off; kind } ->
      match kind with
      | Layout.Scalar p -> (
        match (p : Type_desc.prim) with
        | I8 -> Xdr.Enc.int enc (Mem.Codec.get_i8 raw off)
        | I16 -> Xdr.Enc.int enc (Mem.Codec.get_i16 endian raw off)
        | I32 -> Xdr.Enc.int32 enc (Mem.Codec.get_i32 endian raw off)
        | I64 -> Xdr.Enc.int64 enc (Mem.Codec.get_i64 endian raw off)
        | F32 -> Xdr.Enc.float32 enc (Mem.Codec.get_f32 endian raw off)
        | F64 -> Xdr.Enc.float64 enc (Mem.Codec.get_f64 endian raw off))
      | Layout.Ptr target ->
        let word = Mem.Codec.get_word ctx.enc_arch raw off in
        let lp = if word = 0 then None else ctx.unswizzle ~ty:target word in
        Long_pointer.encode ~reg:ctx.enc_reg enc lp)
    (Layout.leaves ctx.enc_reg ctx.enc_arch desc);
  Xdr.Enc.to_string enc

let decode ctx ~ty data =
  let desc = Type_desc.Named ty in
  let size = Layout.sizeof ctx.dec_reg ctx.dec_arch desc in
  let raw = Bytes.make size '\000' in
  let dec = Xdr.Dec.of_string data in
  let endian = ctx.dec_arch.Arch.endian in
  List.iter
    (fun { Layout.leaf_offset = off; kind } ->
      match kind with
      | Layout.Scalar p -> (
        match (p : Type_desc.prim) with
        | I8 -> Mem.Codec.set_i8 raw off (Xdr.Dec.int dec)
        | I16 -> Mem.Codec.set_i16 endian raw off (Xdr.Dec.int dec)
        | I32 -> Mem.Codec.set_i32 endian raw off (Xdr.Dec.int32 dec)
        | I64 -> Mem.Codec.set_i64 endian raw off (Xdr.Dec.int64 dec)
        | F32 -> Mem.Codec.set_f32 endian raw off (Xdr.Dec.float32 dec)
        | F64 -> Mem.Codec.set_f64 endian raw off (Xdr.Dec.float64 dec))
      | Layout.Ptr _ ->
        let lp = Long_pointer.decode ~reg:ctx.dec_reg dec in
        Mem.Codec.set_word ctx.dec_arch raw off (ctx.swizzle lp))
    (Layout.leaves ctx.dec_reg ctx.dec_arch desc);
  Xdr.Dec.check_end dec;
  raw

let scalar_leaf_count reg ~ty =
  (* Leaf structure is arch-independent; any arch will do for counting. *)
  Layout.leaves reg Arch.ilp32_le (Type_desc.Named ty)
  |> List.filter (fun l ->
         match l.Layout.kind with Layout.Scalar _ -> true | Layout.Ptr _ -> false)
  |> List.length

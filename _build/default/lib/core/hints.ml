open Srpc_types

type rule = { follow : string list; prune_others : bool }
type t = (string, rule) Hashtbl.t

let create () = Hashtbl.create 8
let set t ~ty rule = Hashtbl.replace t ty rule
let clear t ~ty = Hashtbl.remove t ty
let find t ~ty = Hashtbl.find_opt t ty

(* Pointer leaves contributed by one direct field, at its offset. *)
let field_pointer_leaves reg arch ~ty ~field =
  let desc = Type_desc.Named ty in
  let base = Layout.field_offset reg arch ~ty:desc ~field in
  let fty = Layout.field_type reg ~ty:desc ~field in
  List.map (fun (off, target) -> (base + off, target)) (Layout.pointer_leaves reg arch fty)

let pointer_fields t reg arch ~ty =
  match find t ~ty with
  | None -> Layout.pointer_leaves reg arch (Type_desc.Named ty)
  | Some { follow; prune_others } ->
    let followed =
      List.concat_map (fun field -> field_pointer_leaves reg arch ~ty ~field) follow
    in
    if prune_others then followed
    else begin
      let seen = List.map fst followed in
      let rest =
        Layout.pointer_leaves reg arch (Type_desc.Named ty)
        |> List.filter (fun (off, _) -> not (List.mem off seen))
      in
      followed @ rest
    end

(** Runtime introspection: human-readable snapshots of a node's state
    for debugging and for the CLI's [inspect] output. *)

type heap_stats = { live_blocks : int; live_bytes : int; free_bytes : int }

type cache_stats = {
  entries : int;
  present : int;
  dirty : int;
  cache_bytes : int;
  pages : int;
  by_origin : (string * int) list;  (** origin space → entry count, sorted *)
}

val heap_stats : Node.t -> heap_stats
val cache_stats : Node.t -> cache_stats

(** [pp ppf node] renders id, architecture, strategy, heap and cache
    statistics, and the data allocation table. *)
val pp : Format.formatter -> Node.t -> unit

(** Long-format pointers.

    "A long pointer is composed of three elements: an address space
    identifier ..., an address valid within the address space, and a
    data type specifier" (paper, section 3.2). Long pointers exist only
    on the wire and in runtime tables; memory always holds swizzled
    ordinary addresses.

    A {e provisional} long pointer (negative address) stands for an
    [extended_malloc] whose home-space allocation is still batched; it is
    rebound to the real address when the batch flushes and never crosses
    the wire. *)

open Srpc_memory

type t = { origin : Space_id.t; addr : int; ty : string }

val make : origin:Space_id.t -> addr:int -> ty:string -> t
val is_provisional : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Wire form: a presence word, a packed space id (site and proc as 16
    bits each), the address, and the type specifier interned to its
    name-server id — 24 bytes, or 4 for the null pointer. Provisional
    pointers are a programming error on the wire (asserted). *)

val encode : reg:Srpc_types.Registry.t -> Srpc_xdr.Xdr.Enc.t -> t option -> unit
val decode : reg:Srpc_types.Registry.t -> Srpc_xdr.Xdr.Dec.t -> t option

module Table : Hashtbl.S with type key = t

lib/xdr/xdr.mli:

(** External Data Representation (RFC 1014 subset).

    The canonical form all transfers pass through, so machines of
    different word sizes and endiannesses interoperate (paper, section 4
    uses Sun's XDR library; this is a from-scratch implementation of the
    pieces the system needs). All quantities are big-endian and padded to
    4-byte units; strings and opaques carry a length word and are padded
    with zeros. *)

exception Decode_error of string

module Enc : sig
  type t

  val create : ?initial:int -> unit -> t

  (** Current encoded size in bytes. *)
  val length : t -> int

  val int32 : t -> int32 -> unit

  (** [int t v] encodes an OCaml int as an XDR [int] (32-bit); raises
      [Invalid_argument] if out of range. *)
  val int : t -> int -> unit

  val uint32 : t -> int -> unit
  val int64 : t -> int64 -> unit

  (** [hyper t v] encodes an OCaml int as an XDR [hyper] (64-bit). *)
  val hyper : t -> int -> unit

  val bool : t -> bool -> unit
  val float64 : t -> float -> unit
  val float32 : t -> float -> unit

  (** Variable-length opaque: length word + bytes + padding. *)
  val opaque : t -> string -> unit

  val opaque_bytes : t -> bytes -> unit

  (** XDR string (same wire form as opaque). *)
  val string : t -> string -> unit

  (** Fixed-length opaque: bytes + padding, no length word. *)
  val fixed_opaque : t -> string -> unit

  (** [list enc f xs] encodes a counted sequence. *)
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit

  val array : t -> (t -> 'a -> unit) -> 'a array -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val to_string : t -> string
end

module Dec : sig
  type t

  val of_string : string -> t

  (** Bytes remaining. *)
  val remaining : t -> int

  (** [at_end t] is true when the whole input has been consumed. *)
  val at_end : t -> bool

  val int32 : t -> int32
  val int : t -> int
  val uint32 : t -> int
  val int64 : t -> int64
  val hyper : t -> int
  val bool : t -> bool
  val float64 : t -> float
  val float32 : t -> float
  val opaque : t -> string
  val string : t -> string
  val fixed_opaque : t -> int -> string
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val option : t -> (t -> 'a) -> 'a option

  (** [check_end t] raises {!Decode_error} unless the input is fully
      consumed — catches framing bugs early. *)
  val check_end : t -> unit
end

(** [roundturn enc dec v] encodes [v] then decodes it back (test
    helper). *)
val roundturn : (Enc.t -> 'a -> unit) -> (Dec.t -> 'a) -> 'a -> 'a

exception Decode_error of string

let pad4 n = (4 - (n land 3)) land 3

module Enc = struct
  type t = Buffer.t

  let create ?(initial = 256) () = Buffer.create initial
  let length = Buffer.length
  let int32 t v = Buffer.add_int32_be t v

  let int t v =
    if v < Int32.(to_int min_int) || v > Int32.(to_int max_int) then
      invalid_arg (Printf.sprintf "Xdr.Enc.int: %d out of 32-bit range" v);
    int32 t (Int32.of_int v)

  let uint32 t v =
    if v < 0 || v > 0xffffffff then
      invalid_arg (Printf.sprintf "Xdr.Enc.uint32: %d out of range" v);
    int32 t (Int32.of_int v)

  let int64 t v = Buffer.add_int64_be t v
  let hyper t v = int64 t (Int64.of_int v)
  let bool t v = int t (if v then 1 else 0)
  let float64 t v = int64 t (Int64.bits_of_float v)
  let float32 t v = int32 t (Int32.bits_of_float v)

  let add_padding t n =
    for _ = 1 to pad4 n do
      Buffer.add_char t '\000'
    done

  let opaque t s =
    uint32 t (String.length s);
    Buffer.add_string t s;
    add_padding t (String.length s)

  let opaque_bytes t b = opaque t (Bytes.unsafe_to_string b)
  let string = opaque

  let fixed_opaque t s =
    Buffer.add_string t s;
    add_padding t (String.length s)

  let list t f xs =
    uint32 t (List.length xs);
    List.iter (f t) xs

  let array t f xs =
    uint32 t (Array.length xs);
    Array.iter (f t) xs

  let option t f = function
    | None -> bool t false
    | Some v ->
      bool t true;
      f t v

  let to_string = Buffer.contents
end

module Dec = struct
  type t = { input : string; mutable pos : int }

  let of_string input = { input; pos = 0 }
  let remaining t = String.length t.input - t.pos
  let at_end t = remaining t = 0

  let need t n =
    if remaining t < n then
      raise
        (Decode_error
           (Printf.sprintf "truncated input: need %d bytes at offset %d, have %d"
              n t.pos (remaining t)))

  let int32 t =
    need t 4;
    let v = String.get_int32_be t.input t.pos in
    t.pos <- t.pos + 4;
    v

  let int t = Int32.to_int (int32 t)

  let uint32 t =
    let v = Int32.to_int (int32 t) in
    v land 0xffffffff

  let int64 t =
    need t 8;
    let v = String.get_int64_be t.input t.pos in
    t.pos <- t.pos + 8;
    v

  let hyper t = Int64.to_int (int64 t)

  let bool t =
    match int t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Decode_error (Printf.sprintf "bad bool %d" n))

  let float64 t = Int64.float_of_bits (int64 t)
  let float32 t = Int32.float_of_bits (int32 t)

  let skip_padding t n =
    let p = pad4 n in
    need t p;
    t.pos <- t.pos + p

  let fixed_opaque t n =
    need t n;
    let s = String.sub t.input t.pos n in
    t.pos <- t.pos + n;
    skip_padding t n;
    s

  let opaque t =
    let n = uint32 t in
    fixed_opaque t n

  let string = opaque

  (* List.init/Array.init have unspecified evaluation order; decoding
     must consume the stream strictly left to right. *)
  let list t f =
    let n = uint32 t in
    let rec go acc k = if k = 0 then List.rev acc else go (f t :: acc) (k - 1) in
    go [] n

  let array t f = Array.of_list (list t f)

  let option t f = if bool t then Some (f t) else None

  let check_end t =
    if not (at_end t) then
      raise
        (Decode_error
           (Printf.sprintf "%d trailing bytes at offset %d" (remaining t) t.pos))
end

let roundturn enc dec v =
  let e = Enc.create () in
  enc e v;
  let d = Dec.of_string (Enc.to_string e) in
  let v' = dec d in
  Dec.check_end d;
  v'

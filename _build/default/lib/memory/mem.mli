(** Arch-aware typed loads and stores.

    [load_*]/[store_*] are the {e program} path: they go through the MMU,
    so they can fault and be transparently serviced — these are what
    application code (and the typed access layer above it) uses, giving
    the paper's illusion that cached remote data is ordinary local data.
    [raw_*] are the {e system} path used by the runtime itself.

    Pointers in memory occupy the architecture's word size and are read
    and written as OCaml ints ([load_word]/[store_word]). *)

module Codec : sig
  (** Endian-aware primitive codec over byte buffers (offsets in
      bytes). *)

  val get_i8 : bytes -> int -> int
  val set_i8 : bytes -> int -> int -> unit
  val get_i16 : Arch.endian -> bytes -> int -> int
  val set_i16 : Arch.endian -> bytes -> int -> int -> unit
  val get_i32 : Arch.endian -> bytes -> int -> int32
  val set_i32 : Arch.endian -> bytes -> int -> int32 -> unit
  val get_i64 : Arch.endian -> bytes -> int -> int64
  val set_i64 : Arch.endian -> bytes -> int -> int64 -> unit
  val get_f64 : Arch.endian -> bytes -> int -> float
  val set_f64 : Arch.endian -> bytes -> int -> float -> unit
  val get_f32 : Arch.endian -> bytes -> int -> float
  val set_f32 : Arch.endian -> bytes -> int -> float -> unit

  (** [get_word arch b off] reads a pointer-sized unsigned value. *)
  val get_word : Arch.t -> bytes -> int -> int

  val set_word : Arch.t -> bytes -> int -> int -> unit
end

(** Program-path accesses (fault-serviced). *)

val load_i8 : Mmu.t -> addr:int -> int
val store_i8 : Mmu.t -> addr:int -> int -> unit
val load_i16 : Mmu.t -> addr:int -> int
val store_i16 : Mmu.t -> addr:int -> int -> unit
val load_i32 : Mmu.t -> addr:int -> int32
val store_i32 : Mmu.t -> addr:int -> int32 -> unit
val load_i64 : Mmu.t -> addr:int -> int64
val store_i64 : Mmu.t -> addr:int -> int64 -> unit
val load_f64 : Mmu.t -> addr:int -> float
val store_f64 : Mmu.t -> addr:int -> float -> unit
val load_f32 : Mmu.t -> addr:int -> float
val store_f32 : Mmu.t -> addr:int -> float -> unit

(** [load_word m ~addr] reads an ordinary pointer (address) of the
    space's word size. *)
val load_word : Mmu.t -> addr:int -> int

val store_word : Mmu.t -> addr:int -> int -> unit
val load_bytes : Mmu.t -> addr:int -> len:int -> bytes
val store_bytes : Mmu.t -> addr:int -> bytes -> unit

(** System-path accesses (protection ignored). *)

val raw_load_word : Address_space.t -> addr:int -> int
val raw_store_word : Address_space.t -> addr:int -> int -> unit
val raw_load_i64 : Address_space.t -> addr:int -> int64
val raw_store_i64 : Address_space.t -> addr:int -> int64 -> unit

type endian = Little | Big
type t = { name : string; word_size : int; endian : endian }

let ilp32_le = { name = "ilp32-le"; word_size = 4; endian = Little }
let sparc32 = { name = "sparc32"; word_size = 4; endian = Big }
let lp64_le = { name = "lp64-le"; word_size = 8; endian = Little }
let lp64_be = { name = "lp64-be"; word_size = 8; endian = Big }

let equal a b =
  a.name = b.name && a.word_size = b.word_size && a.endian = b.endian

let pp ppf a =
  let e = match a.endian with Little -> "le" | Big -> "be" in
  Format.fprintf ppf "%s(word=%d,%s)" a.name a.word_size e

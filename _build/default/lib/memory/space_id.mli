(** Address-space identifiers.

    The paper defines an address-space identifier as "typically a pair
    consisting of a site ID and a process ID in the site" (section 3.2);
    we use exactly that pair. *)

type t = { site : int; proc : int }

val make : site:int -> proc:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** [to_string id] renders as ["site.proc"]; [of_string] parses it back.
    Used as the transport endpoint name. *)
val to_string : t -> string

val of_string : string -> t

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t

type t = { site : int; proc : int }

let make ~site ~proc = { site; proc }
let compare a b =
  match Int.compare a.site b.site with
  | 0 -> Int.compare a.proc b.proc
  | c -> c

let equal a b = a.site = b.site && a.proc = b.proc
let hash a = (a.site * 65599) + a.proc
let pp ppf a = Format.fprintf ppf "%d.%d" a.site a.proc
let to_string a = Printf.sprintf "%d.%d" a.site a.proc

let of_string s =
  match String.index_opt s '.' with
  | None -> invalid_arg "Space_id.of_string: missing '.'"
  | Some i ->
    let site = int_of_string (String.sub s 0 i) in
    let proc = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    { site; proc }

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Table = Hashtbl.Make (Hashed)

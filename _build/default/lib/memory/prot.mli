(** Page protection, as set through the MMU.

    The paper uses three states: a freshly allocated cache page is fully
    protected ("protected page area", section 3.2); after the data
    transfer it becomes read-only so the first write can be detected for
    the coherency protocol (section 3.4); a dirty page is read-write. *)

type t = No_access | Read_only | Read_write

val allows_read : t -> bool
val allows_write : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

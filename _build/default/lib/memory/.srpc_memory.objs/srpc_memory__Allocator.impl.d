lib/memory/allocator.ml: Address_space Hashtbl List Printf Prot Result

lib/memory/arch.mli: Format

lib/memory/space_id.mli: Format Hashtbl Map Set

lib/memory/arch.ml: Format

lib/memory/address_space.mli: Arch Format Prot Space_id

lib/memory/mem.ml: Address_space Arch Bytes Char Int32 Int64 Mmu Printf

lib/memory/address_space.ml: Arch Bytes Format Hashtbl List Option Prot Space_id

lib/memory/mem.mli: Address_space Arch Mmu

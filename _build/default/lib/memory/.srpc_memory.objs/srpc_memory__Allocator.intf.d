lib/memory/allocator.mli: Address_space

lib/memory/prot.mli: Format

lib/memory/mmu.ml: Address_space Bytes

lib/memory/prot.ml: Format

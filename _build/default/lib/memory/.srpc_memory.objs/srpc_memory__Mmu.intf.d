lib/memory/mmu.mli: Address_space

lib/memory/space_id.ml: Format Hashtbl Int Map Printf Set String

(** MMU fault dispatch with instruction restart.

    Modern kernels "provide primitives for user-level program control of
    page access to virtual memory and page-fault handling" (paper,
    section 1); this module is that primitive set. A program access that
    trips page protection invokes the registered handler, then the access
    restarts — exactly the hardware trap / handler / retry cycle. The
    handler must resolve the fault (fetch data, change protection); if
    the same access keeps faulting the MMU declares a {!Fault_loop}
    rather than spinning. *)

type t

exception Fault_loop of Address_space.fault

(** Raised by program accesses when no handler is installed and a fault
    occurs (equivalent to an uncaught SIGSEGV). *)
exception Unhandled_fault of Address_space.fault

val create : Address_space.t -> t
val space : t -> Address_space.t

(** [set_handler t h] installs the fault handler. [h] runs with the fault
    description and must either resolve it or raise. *)
val set_handler : t -> (Address_space.fault -> unit) -> unit

val clear_handler : t -> unit

(** Program-path accesses with fault handling and restart. An access
    spanning [n] pages can legitimately fault up to [n] times; more than
    a small multiple of that raises {!Fault_loop}. *)

val read : t -> addr:int -> len:int -> bytes
val write : t -> addr:int -> bytes -> unit

type access = Read | Write

type fault = { space : Space_id.t; addr : int; page : int; access : access }

exception Page_fault of fault
exception Segv of { space : Space_id.t; addr : int; access : access }

type page = { data : Bytes.t; mutable prot : Prot.t }

type t = {
  id : Space_id.t;
  arch : Arch.t;
  page_size : int;
  page_shift : int;
  pages : (int, page) Hashtbl.t;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(page_size = 4096) ~id ~arch () =
  if not (is_power_of_two page_size) then
    invalid_arg "Address_space.create: page_size must be a power of two";
  { id; arch; page_size; page_shift = log2 page_size; pages = Hashtbl.create 64 }

let id t = t.id
let arch t = t.arch
let page_size t = t.page_size
let page_of_addr t addr = addr lsr t.page_shift
let page_base t page = page lsl t.page_shift

let map t ~page ~prot =
  match Hashtbl.find_opt t.pages page with
  | Some p -> p.prot <- prot
  | None -> Hashtbl.add t.pages page { data = Bytes.make t.page_size '\000'; prot }

let unmap t ~page = Hashtbl.remove t.pages page
let is_mapped t ~page = Hashtbl.mem t.pages page

let protection t ~page =
  Option.map (fun p -> p.prot) (Hashtbl.find_opt t.pages page)

let set_protection t ~page prot =
  match Hashtbl.find_opt t.pages page with
  | Some p -> p.prot <- prot
  | None -> invalid_arg "Address_space.set_protection: page not mapped"

let mapped_pages t =
  Hashtbl.fold (fun page _ acc -> page :: acc) t.pages [] |> List.sort compare

let ensure_mapped t ~addr ~len ~prot =
  if len > 0 then begin
    let first = page_of_addr t addr and last = page_of_addr t (addr + len - 1) in
    for page = first to last do
      if not (is_mapped t ~page) then map t ~page ~prot
    done
  end

(* Walk the pages of [addr, addr+len), calling [f page_record
   offset_in_page offset_in_range chunk_len] per intersected page.
   [check] validates protection before any byte is touched so a faulting
   access has no partial effect, like a hardware trap. *)
let iter_range t ~addr ~len ~access ~check f =
  if len < 0 then invalid_arg "Address_space: negative length";
  if addr < 0 then raise (Segv { space = t.id; addr; access });
  if len > 0 then begin
    let first = page_of_addr t addr and last = page_of_addr t (addr + len - 1) in
    (* Validation pass: find the first unmapped or protection-violating
       page before touching anything. *)
    for page = first to last do
      match Hashtbl.find_opt t.pages page with
      | None ->
        let fault_addr = max addr (page_base t page) in
        raise (Segv { space = t.id; addr = fault_addr; access })
      | Some p ->
        if check && not (match access with
                         | Read -> Prot.allows_read p.prot
                         | Write -> Prot.allows_write p.prot)
        then
          let fault_addr = max addr (page_base t page) in
          raise (Page_fault { space = t.id; addr = fault_addr; page; access })
    done;
    let pos = ref addr in
    let done_ = ref 0 in
    while !done_ < len do
      let page = page_of_addr t !pos in
      let p = Hashtbl.find t.pages page in
      let off = !pos - page_base t page in
      let chunk = min (t.page_size - off) (len - !done_) in
      f p off !done_ chunk;
      pos := !pos + chunk;
      done_ := !done_ + chunk
    done
  end

let read_gen t ~check ~addr ~len =
  let out = Bytes.create len in
  iter_range t ~addr ~len ~access:Read ~check (fun p off dst chunk ->
      Bytes.blit p.data off out dst chunk);
  out

let write_gen t ~check ~addr data =
  iter_range t ~addr ~len:(Bytes.length data) ~access:Write ~check
    (fun p off src chunk -> Bytes.blit data src p.data off chunk)

let read t ~addr ~len = read_gen t ~check:true ~addr ~len
let write t ~addr data = write_gen t ~check:true ~addr data
let read_unchecked t ~addr ~len = read_gen t ~check:false ~addr ~len
let write_unchecked t ~addr data = write_gen t ~check:false ~addr data

let fill_zero_unchecked t ~addr ~len =
  iter_range t ~addr ~len ~access:Write ~check:false (fun p off _ chunk ->
      Bytes.fill p.data off chunk '\000')

let pp_fault ppf f =
  Format.fprintf ppf "fault[%a] %s at 0x%x (page %d)" Space_id.pp f.space
    (match f.access with Read -> "read" | Write -> "write")
    f.addr f.page

module Codec = struct
  let get_i8 b off = Char.code (Bytes.get b off)
  let set_i8 b off v = Bytes.set b off (Char.chr (v land 0xff))

  let get_i16 endian b off =
    match (endian : Arch.endian) with
    | Little -> Bytes.get_uint16_le b off
    | Big -> Bytes.get_uint16_be b off

  let set_i16 endian b off v =
    match (endian : Arch.endian) with
    | Little -> Bytes.set_uint16_le b off (v land 0xffff)
    | Big -> Bytes.set_uint16_be b off (v land 0xffff)

  let get_i32 endian b off =
    match (endian : Arch.endian) with
    | Little -> Bytes.get_int32_le b off
    | Big -> Bytes.get_int32_be b off

  let set_i32 endian b off v =
    match (endian : Arch.endian) with
    | Little -> Bytes.set_int32_le b off v
    | Big -> Bytes.set_int32_be b off v

  let get_i64 endian b off =
    match (endian : Arch.endian) with
    | Little -> Bytes.get_int64_le b off
    | Big -> Bytes.get_int64_be b off

  let set_i64 endian b off v =
    match (endian : Arch.endian) with
    | Little -> Bytes.set_int64_le b off v
    | Big -> Bytes.set_int64_be b off v

  let get_f64 endian b off = Int64.float_of_bits (get_i64 endian b off)
  let set_f64 endian b off v = set_i64 endian b off (Int64.bits_of_float v)
  let get_f32 endian b off = Int32.float_of_bits (get_i32 endian b off)
  let set_f32 endian b off v = set_i32 endian b off (Int32.bits_of_float v)

  let get_word (arch : Arch.t) b off =
    match arch.word_size with
    | 4 -> Int32.to_int (get_i32 arch.endian b off) land 0xffffffff
    | 8 -> Int64.to_int (get_i64 arch.endian b off)
    | n -> invalid_arg (Printf.sprintf "Codec.get_word: word size %d" n)

  let set_word (arch : Arch.t) b off v =
    match arch.word_size with
    | 4 ->
      if v < 0 || v > 0xffffffff then
        invalid_arg (Printf.sprintf "Codec.set_word: 0x%x out of 32-bit range" v);
      set_i32 arch.endian b off (Int32.of_int v)
    | 8 -> set_i64 arch.endian b off (Int64.of_int v)
    | n -> invalid_arg (Printf.sprintf "Codec.set_word: word size %d" n)
end

let endian m = (Address_space.arch (Mmu.space m)).Arch.endian
let arch m = Address_space.arch (Mmu.space m)

let load_via m ~addr ~len get =
  let b = Mmu.read m ~addr ~len in
  get b 0

let store_via m ~addr ~len set v =
  let b = Bytes.create len in
  set b 0 v;
  Mmu.write m ~addr b

let load_i8 m ~addr = load_via m ~addr ~len:1 Codec.get_i8
let store_i8 m ~addr v = store_via m ~addr ~len:1 Codec.set_i8 v
let load_i16 m ~addr = load_via m ~addr ~len:2 (Codec.get_i16 (endian m))
let store_i16 m ~addr v = store_via m ~addr ~len:2 (Codec.set_i16 (endian m)) v
let load_i32 m ~addr = load_via m ~addr ~len:4 (Codec.get_i32 (endian m))
let store_i32 m ~addr v = store_via m ~addr ~len:4 (Codec.set_i32 (endian m)) v
let load_i64 m ~addr = load_via m ~addr ~len:8 (Codec.get_i64 (endian m))
let store_i64 m ~addr v = store_via m ~addr ~len:8 (Codec.set_i64 (endian m)) v
let load_f64 m ~addr = load_via m ~addr ~len:8 (Codec.get_f64 (endian m))
let store_f64 m ~addr v = store_via m ~addr ~len:8 (Codec.set_f64 (endian m)) v
let load_f32 m ~addr = load_via m ~addr ~len:4 (Codec.get_f32 (endian m))
let store_f32 m ~addr v = store_via m ~addr ~len:4 (Codec.set_f32 (endian m)) v

let load_word m ~addr =
  let a = arch m in
  load_via m ~addr ~len:a.Arch.word_size (Codec.get_word a)

let store_word m ~addr v =
  let a = arch m in
  store_via m ~addr ~len:a.Arch.word_size (Codec.set_word a) v

let load_bytes m ~addr ~len = Mmu.read m ~addr ~len
let store_bytes m ~addr b = Mmu.write m ~addr b

let raw_load_word space ~addr =
  let a = Address_space.arch space in
  let b = Address_space.read_unchecked space ~addr ~len:a.Arch.word_size in
  Codec.get_word a b 0

let raw_store_word space ~addr v =
  let a = Address_space.arch space in
  let b = Bytes.create a.Arch.word_size in
  Codec.set_word a b 0 v;
  Address_space.write_unchecked space ~addr b

let raw_load_i64 space ~addr =
  let a = Address_space.arch space in
  let b = Address_space.read_unchecked space ~addr ~len:8 in
  Codec.get_i64 a.Arch.endian b 0

let raw_store_i64 space ~addr v =
  let a = Address_space.arch space in
  let b = Bytes.create 8 in
  Codec.set_i64 a.Arch.endian b 0 v;
  Address_space.write_unchecked space ~addr b

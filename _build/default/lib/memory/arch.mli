(** Machine architecture descriptors.

    Heterogeneity in the paper means machines differ in word size,
    endianness and record layout; all transfers go through a canonical
    representation (XDR). An [Arch.t] captures what a simulated machine
    needs to know to lay out and access data in its own memory. *)

type endian = Little | Big

type t = {
  name : string;
  word_size : int;  (** pointer size in bytes: 4 or 8 *)
  endian : endian;
}

(** 32-bit little-endian (e.g. i386). *)
val ilp32_le : t

(** 32-bit big-endian (e.g. the paper's SPARC). *)
val sparc32 : t

(** 64-bit little-endian (e.g. x86-64). *)
val lp64_le : t

(** 64-bit big-endian (e.g. SPARC V9). *)
val lp64_be : t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

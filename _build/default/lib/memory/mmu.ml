type t = {
  space : Address_space.t;
  mutable handler : (Address_space.fault -> unit) option;
}

exception Fault_loop of Address_space.fault
exception Unhandled_fault of Address_space.fault

let create space = { space; handler = None }
let space t = t.space
let set_handler t h = t.handler <- Some h
let clear_handler t = t.handler <- None

(* A single access may touch several pages, and servicing one page can
   leave the next still protected, so allow one handler run per page plus
   slack before declaring a loop. *)
let max_retries t ~len =
  let pages = (len / Address_space.page_size t.space) + 2 in
  (2 * pages) + 4

let with_restart t ~len f =
  let budget = ref (max_retries t ~len) in
  let rec attempt () =
    match f () with
    | v -> v
    | exception Address_space.Page_fault fault ->
      (match t.handler with
      | None -> raise (Unhandled_fault fault)
      | Some handler ->
        if !budget <= 0 then raise (Fault_loop fault);
        decr budget;
        handler fault;
        attempt ())
  in
  attempt ()

let read t ~addr ~len =
  with_restart t ~len (fun () -> Address_space.read t.space ~addr ~len)

let write t ~addr data =
  with_restart t ~len:(Bytes.length data) (fun () ->
      Address_space.write t.space ~addr data)

(** A simulated virtual address space: demand-materialized pages of bytes
    with per-page protection.

    Two access paths exist, mirroring a real system:
    - the {e program} path ([read]/[write]) checks protection and raises
      {!Page_fault} exactly where hardware would trap;
    - the {e system} path ([read_unchecked]/[write_unchecked]) is the
      runtime/kernel copying data regardless of user-level protection
      (e.g. filling a protected cache page before unprotecting it).

    Accessing an unmapped page is a segmentation violation ({!Segv}) on
    either path: the runtime maps every legitimate page before use, so a
    [Segv] is always a bug in the client, never a recoverable event. *)

type access = Read | Write

type fault = {
  space : Space_id.t;
  addr : int;  (** faulting byte address *)
  page : int;  (** page number containing [addr] *)
  access : access;
}

exception Page_fault of fault
exception Segv of { space : Space_id.t; addr : int; access : access }

type t

(** [create ~id ~arch ()] makes an empty space. [page_size] must be a
    power of two (default 4096). *)
val create : ?page_size:int -> id:Space_id.t -> arch:Arch.t -> unit -> t

val id : t -> Space_id.t
val arch : t -> Arch.t
val page_size : t -> int

(** [page_of_addr t addr] is the page number containing [addr]. *)
val page_of_addr : t -> int -> int

(** [page_base t page] is the first byte address of [page]. *)
val page_base : t -> int -> int

(** [map t ~page ~prot] materializes [page] (zero-filled) with protection
    [prot]; remapping an existing page only changes its protection and
    keeps its contents. *)
val map : t -> page:int -> prot:Prot.t -> unit

(** [unmap t ~page] discards the page and its contents. Unmapping an
    unmapped page is a no-op. *)
val unmap : t -> page:int -> unit

val is_mapped : t -> page:int -> bool
val protection : t -> page:int -> Prot.t option
val set_protection : t -> page:int -> Prot.t -> unit
val mapped_pages : t -> int list

(** [ensure_mapped t ~addr ~len ~prot] maps every unmapped page
    intersecting [addr, addr+len) with [prot]; already-mapped pages are
    left untouched. *)
val ensure_mapped : t -> addr:int -> len:int -> prot:Prot.t -> unit

(** Program-path access: protection-checked, may raise {!Page_fault} (on
    the first offending page) or {!Segv}. Accesses may span pages. *)

val read : t -> addr:int -> len:int -> bytes
val write : t -> addr:int -> bytes -> unit

(** System-path access: ignores protection; raises {!Segv} on unmapped
    pages. *)

val read_unchecked : t -> addr:int -> len:int -> bytes
val write_unchecked : t -> addr:int -> bytes -> unit

(** [fill_zero_unchecked t ~addr ~len] zeroes a range on the system
    path. *)
val fill_zero_unchecked : t -> addr:int -> len:int -> unit

val pp_fault : Format.formatter -> fault -> unit

type series = { label : string; points : (float * float) list }

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let bounds series =
  let xs = List.concat_map (fun s -> List.map fst s.points) series in
  let ys = List.concat_map (fun s -> List.map snd s.points) series in
  match (xs, ys) with
  | [], _ | _, [] -> None
  | _ ->
    let min_l = List.fold_left min infinity and max_l = List.fold_left max neg_infinity in
    Some (min_l xs, max_l xs, min_l ys, max_l ys)

let render ?(width = 64) ?(height = 20) ?(x_label = "x") ?(y_label = "y") series =
  match bounds series with
  | None -> "(no data)\n"
  | Some (x0, x1, y0, y1) ->
    let x1 = if x1 = x0 then x0 +. 1.0 else x1 in
    let y1 = if y1 = y0 then y0 +. 1.0 else y1 in
    let grid = Array.make_matrix height width ' ' in
    let col x =
      let c = int_of_float (Float.round ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))) in
      max 0 (min (width - 1) c)
    in
    let row y =
      let r = int_of_float (Float.round ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))) in
      (height - 1) - max 0 (min (height - 1) r)
    in
    (* connect consecutive points of a series with linear interpolation
       so curves read as lines, then stamp the markers on top *)
    List.iteri
      (fun i s ->
        let m = markers.(i mod Array.length markers) in
        let dot = '.' in
        let rec segments = function
          | (xa, ya) :: ((xb, yb) :: _ as rest) ->
            let steps = max 1 (abs (col xb - col xa)) in
            for k = 0 to steps do
              let t = float_of_int k /. float_of_int steps in
              let x = xa +. (t *. (xb -. xa)) and y = ya +. (t *. (yb -. ya)) in
              let r = row y and c = col x in
              if grid.(r).(c) = ' ' then grid.(r).(c) <- dot
            done;
            segments rest
          | _ -> ()
        in
        segments s.points;
        List.iter (fun (x, y) -> grid.(row y).(col x) <- m) s.points)
      series;
    let buf = Buffer.create ((width + 12) * (height + 4)) in
    Buffer.add_string buf (Printf.sprintf "%s\n" y_label);
    Array.iteri
      (fun r line ->
        let tag =
          if r = 0 then Printf.sprintf "%10.3f " y1
          else if r = height - 1 then Printf.sprintf "%10.3f " y0
          else String.make 11 ' '
        in
        Buffer.add_string buf tag;
        Buffer.add_char buf '|';
        Array.iter (Buffer.add_char buf) line;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%11s%-8.3f%s%8.3f\n" "" x0
         (String.make (max 1 (width - 16)) ' ')
         x1);
    Buffer.add_string buf (Printf.sprintf "%11s%s\n" "" x_label);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "%11s%c = %s\n" "" markers.(i mod Array.length markers)
             s.label))
      series;
    Buffer.contents buf

lib/workloads/btree.mli: Access Cluster Node Srpc_core

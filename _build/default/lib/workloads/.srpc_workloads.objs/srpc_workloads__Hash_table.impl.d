lib/workloads/hash_table.ml: Access Cluster Layout Node Srpc_core Srpc_memory Srpc_types Type_desc

lib/workloads/graph.mli: Access Cluster Node Srpc_core

lib/workloads/experiments.mli: Arch Format Srpc_core Srpc_memory Srpc_simnet Strategy

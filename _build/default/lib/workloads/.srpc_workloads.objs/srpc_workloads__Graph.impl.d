lib/workloads/graph.ml: Access Array Cluster Hashtbl Int64 Layout Node Srpc_core Srpc_memory Srpc_types Type_desc

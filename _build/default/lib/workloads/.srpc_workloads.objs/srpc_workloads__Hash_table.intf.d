lib/workloads/hash_table.mli: Access Cluster Node Srpc_core

lib/workloads/tree.ml: Access Cluster Int64 Node Srpc_core Srpc_types Type_desc

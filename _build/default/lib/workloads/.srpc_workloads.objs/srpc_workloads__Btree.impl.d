lib/workloads/btree.ml: Access Address_space Arch Cluster Hashtbl Int64 Layout List Long_pointer Mem Node Option Printf Result Srpc_core Srpc_memory Srpc_types Type_desc

lib/workloads/ascii_plot.mli:

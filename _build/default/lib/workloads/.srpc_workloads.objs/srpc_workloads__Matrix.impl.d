lib/workloads/matrix.ml: Access Address_space Arch Cluster Layout Mem Node Printf Srpc_core Srpc_memory Srpc_types Type_desc

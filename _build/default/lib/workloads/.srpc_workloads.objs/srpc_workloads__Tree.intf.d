lib/workloads/tree.mli: Access Cluster Node Srpc_core

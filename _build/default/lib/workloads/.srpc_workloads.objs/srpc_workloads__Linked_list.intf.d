lib/workloads/linked_list.mli: Access Cluster Node Srpc_core Srpc_memory

lib/workloads/linked_list.ml: Access Cluster List Node Srpc_core Srpc_types Type_desc

lib/workloads/matrix.mli: Access Cluster Node Srpc_core

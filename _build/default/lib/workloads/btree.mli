(** An order-4 B-tree in the simulated heap — an application-scale
    pointer structure: remote point lookups touch a root-to-leaf path
    (lazy-friendly), range scans touch subtrees, and inserts performed
    by a remote worker exercise [extended_malloc] (new nodes homed at
    the tree's owner) plus the coherency protocol (splits rewrite parent
    nodes in place). *)

open Srpc_core

(** Maximum keys per node (3; order 4). *)
val max_keys : int

(** Registered node type name, ["bnode"]. *)
val type_name : string

val register_types : Cluster.t -> unit

(** [create node] allocates an empty tree and returns its handle (a
    one-cell root pointer holder, so splits can replace the root while
    callers keep a stable handle). The handle's type is ["broot"]. *)
val create : Node.t -> Access.ptr

(** [insert node tree ~key ~value] inserts or overwrites. New nodes are
    allocated with [extended_malloc] homed at the tree handle's origin
    space, so a remote worker grows the owner's tree. *)
val insert : Node.t -> Access.ptr -> key:int -> value:int -> unit

val search : Node.t -> Access.ptr -> key:int -> int option

(** [range_count node tree ~lo ~hi] counts keys in [lo, hi]
    (inclusive). *)
val range_count : Node.t -> Access.ptr -> lo:int -> hi:int -> int

(** [to_list node tree] is all (key, value) bindings in key order. *)
val to_list : Node.t -> Access.ptr -> (int * int) list

val cardinal : Node.t -> Access.ptr -> int

(** [check_invariants node tree] verifies key ordering, node occupancy
    and uniform leaf depth; [Error] describes the violation. *)
val check_invariants : Node.t -> Access.ptr -> (unit, string) result

open Srpc_core
open Srpc_types

let bucket_count = 64
let table_type = "htable"
let node_type = "hnode"

let register_types cluster =
  Cluster.register_type cluster node_type
    (Type_desc.Struct
       [
         ("next", Type_desc.ptr node_type);
         ("key", Type_desc.i64);
         ("value", Type_desc.i64);
       ]);
  Cluster.register_type cluster table_type
    (Type_desc.Struct
       [ ("buckets", Type_desc.Array (Type_desc.ptr node_type, bucket_count)) ])

let bucket_index key = ((key mod bucket_count) + bucket_count) mod bucket_count

(* The buckets field is an array of pointers; the access layer exposes
   struct fields, so compute element addresses with the word size. *)
let bucket_ptr node table key =
  let arch = Srpc_memory.Address_space.arch (Node.space node) in
  let reg = Node.registry node in
  let base =
    Layout.field_offset reg arch ~ty:(Type_desc.Named table_type) ~field:"buckets"
  in
  table.Access.addr + base + (bucket_index key * arch.Srpc_memory.Arch.word_size)

let load_bucket node table key =
  Node.charge_touch node;
  let w = Srpc_memory.Mem.load_word (Node.mmu node) ~addr:(bucket_ptr node table key) in
  Access.ptr ~ty:node_type w

let store_bucket node table key p =
  Node.charge_touch node;
  Srpc_memory.Mem.store_word (Node.mmu node) ~addr:(bucket_ptr node table key)
    p.Access.addr

let create node = Access.ptr ~ty:table_type (Node.malloc node ~ty:table_type)

let insert node table ~key ~value =
  let cell = Access.ptr ~ty:node_type (Node.malloc node ~ty:node_type) in
  Access.set_ptr node cell ~field:"next" (load_bucket node table key);
  Access.set_int node cell ~field:"key" key;
  Access.set_int node cell ~field:"value" value;
  store_bucket node table key cell

let lookup node table ~key =
  let rec go p =
    if Access.is_null p then None
    else if Access.get_int node p ~field:"key" = key then
      Some (Access.get_int node p ~field:"value")
    else go (Access.get_ptr node p ~field:"next")
  in
  go (load_bucket node table key)

let remove node table ~key =
  let rec go prev p =
    if Access.is_null p then false
    else if Access.get_int node p ~field:"key" = key then begin
      let next = Access.get_ptr node p ~field:"next" in
      (match prev with
      | None -> store_bucket node table key next
      | Some q -> Access.set_ptr node q ~field:"next" next);
      Node.extended_free node p.Access.addr;
      true
    end
    else go (Some p) (Access.get_ptr node p ~field:"next")
  in
  go None (load_bucket node table key)

let iter node table f =
  for b = 0 to bucket_count - 1 do
    let rec go p =
      if not (Access.is_null p) then begin
        f ~key:(Access.get_int node p ~field:"key")
          ~value:(Access.get_int node p ~field:"value");
        go (Access.get_ptr node p ~field:"next")
      end
    in
    go (load_bucket node table b)
  done

let population node table =
  let n = ref 0 in
  iter node table (fun ~key:_ ~value:_ -> incr n);
  !n

(** Chained hash table in the simulated heap.

    The paper singles this structure out: "the fully lazy method is
    expected to show good performance when a small portion of the large
    data is accessed (for example, retrieval of a hash table)" (section
    4.1). A remote lookup touches one bucket header and one short chain,
    so eager shipment of the whole table is waste. *)

open Srpc_core

(** Fixed bucket count (part of the registered table type). *)
val bucket_count : int

(** Registered names: ["htable"] (the bucket array) and ["hnode"]
    (chain cells [{ next; key; value }]). *)
val table_type : string

val node_type : string
val register_types : Cluster.t -> unit

(** [create node] allocates an empty table in [node]'s heap. *)
val create : Node.t -> Access.ptr

(** [insert node t ~key ~value] prepends to the key's chain (no
    duplicate check — newest binding wins on lookup). *)
val insert : Node.t -> Access.ptr -> key:int -> value:int -> unit

val lookup : Node.t -> Access.ptr -> key:int -> int option

(** [remove node t ~key] unlinks the newest binding and frees its cell;
    returns whether a binding existed. *)
val remove : Node.t -> Access.ptr -> key:int -> bool

val iter : Node.t -> Access.ptr -> (key:int -> value:int -> unit) -> unit
val population : Node.t -> Access.ptr -> int

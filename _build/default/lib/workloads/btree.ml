open Srpc_core
open Srpc_types
open Srpc_memory

let max_keys = 3 (* order 4: minimum degree t = 2 *)
let type_name = "bnode"
let root_type = "broot"

let register_types cluster =
  Cluster.register_type cluster type_name
    (Type_desc.Struct
       [
         ("nkeys", Type_desc.i64);
         ("is_leaf", Type_desc.i64);
         ("keys", Type_desc.Array (Type_desc.i64, max_keys));
         ("vals", Type_desc.Array (Type_desc.i64, max_keys));
         ("kids", Type_desc.Array (Type_desc.ptr type_name, max_keys + 1));
       ]);
  Cluster.register_type cluster root_type
    (Type_desc.Struct [ ("root", Type_desc.ptr type_name) ])

(* --- field plumbing (array elements need explicit offsets) --- *)

let arch node = Address_space.arch (Node.space node)

let field_base =
  (* (arch, field) -> offset; bnode only *)
  let memo : (string * string, int) Hashtbl.t = Hashtbl.create 8 in
  fun node field ->
    let a = arch node in
    match Hashtbl.find_opt memo (a.Arch.name, field) with
    | Some off -> off
    | None ->
      let off =
        Layout.field_offset (Node.registry node) a ~ty:(Type_desc.Named type_name)
          ~field
      in
      Hashtbl.add memo (a.Arch.name, field) off;
      off

let nkeys node p = Access.get_int node p ~field:"nkeys"
let set_nkeys node p n = Access.set_int node p ~field:"nkeys" n
let is_leaf node p = Access.get_int node p ~field:"is_leaf" = 1

let get_key node p i =
  Node.charge_touch node;
  Int64.to_int
    (Mem.load_i64 (Node.mmu node) ~addr:(p.Access.addr + field_base node "keys" + (8 * i)))

let set_key node p i v =
  Node.charge_touch node;
  Mem.store_i64 (Node.mmu node)
    ~addr:(p.Access.addr + field_base node "keys" + (8 * i))
    (Int64.of_int v)

let get_val node p i =
  Node.charge_touch node;
  Int64.to_int
    (Mem.load_i64 (Node.mmu node) ~addr:(p.Access.addr + field_base node "vals" + (8 * i)))

let set_val node p i v =
  Node.charge_touch node;
  Mem.store_i64 (Node.mmu node)
    ~addr:(p.Access.addr + field_base node "vals" + (8 * i))
    (Int64.of_int v)

let get_kid node p i =
  Node.charge_touch node;
  let w = (arch node).Arch.word_size in
  Access.ptr ~ty:type_name
    (Mem.load_word (Node.mmu node) ~addr:(p.Access.addr + field_base node "kids" + (w * i)))

let set_kid node p i (q : Access.ptr) =
  Node.charge_touch node;
  let w = (arch node).Arch.word_size in
  Mem.store_word (Node.mmu node)
    ~addr:(p.Access.addr + field_base node "kids" + (w * i))
    q.Access.addr

let get_root node handle = Access.get_ptr node handle ~field:"root"
let set_root node handle p = Access.set_ptr node handle ~field:"root" p

(* The space that owns the tree: new nodes are homed there even when the
   insert runs on a remote worker. *)
let home_of node handle =
  match Node.unswizzle node ~ty:root_type handle.Access.addr with
  | Some lp -> lp.Long_pointer.origin
  | None -> invalid_arg "Btree: null tree handle"

let alloc_node node ~home ~leaf =
  let p = Access.ptr ~ty:type_name (Node.extended_malloc node ~home ~ty:type_name) in
  Access.set_int node p ~field:"is_leaf" (if leaf then 1 else 0);
  p

(* --- construction --- *)

let create node =
  let handle = Access.ptr ~ty:root_type (Node.malloc node ~ty:root_type) in
  set_root node handle (Access.null ~ty:type_name);
  handle

(* --- search --- *)

let rec search_node node p ~key =
  if Access.is_null p then None
  else begin
    let n = nkeys node p in
    let rec scan i =
      if i >= n then
        if is_leaf node p then None else search_node node (get_kid node p i) ~key
      else
        let k = get_key node p i in
        if key = k then Some (get_val node p i)
        else if key < k then
          if is_leaf node p then None else search_node node (get_kid node p i) ~key
        else scan (i + 1)
    in
    scan 0
  end

let search node handle ~key = search_node node (get_root node handle) ~key

(* --- insert (CLRS-style preemptive splitting) --- *)

(* Split the full [i]-th child of non-full [p]; the median key moves up
   into [p]. *)
let split_child node ~home p i =
  let child = get_kid node p i in
  let leaf = is_leaf node child in
  let sibling = alloc_node node ~home ~leaf in
  (* right half (index 2) moves to the sibling *)
  set_key node sibling 0 (get_key node child 2);
  set_val node sibling 0 (get_val node child 2);
  if not leaf then begin
    set_kid node sibling 0 (get_kid node child 2);
    set_kid node sibling 1 (get_kid node child 3)
  end;
  set_nkeys node sibling 1;
  set_nkeys node child 1;
  (* shift p's keys/kids right of i and insert the median *)
  let n = nkeys node p in
  for j = n - 1 downto i do
    set_key node p (j + 1) (get_key node p j);
    set_val node p (j + 1) (get_val node p j)
  done;
  for j = n downto i + 1 do
    set_kid node p (j + 1) (get_kid node p j)
  done;
  set_key node p i (get_key node child 1);
  set_val node p i (get_val node child 1);
  set_kid node p (i + 1) sibling;
  set_nkeys node p (n + 1)

(* Overwrite [key] if it is present anywhere below [p]; returns whether
   it was. Separate from insertion so splits only happen for new keys. *)
let rec overwrite node p ~key ~value =
  if Access.is_null p then false
  else begin
    let n = nkeys node p in
    let rec scan i =
      if i >= n then
        (not (is_leaf node p)) && overwrite node (get_kid node p i) ~key ~value
      else
        let k = get_key node p i in
        if key = k then begin
          set_val node p i value;
          true
        end
        else if key < k then
          (not (is_leaf node p)) && overwrite node (get_kid node p i) ~key ~value
        else scan (i + 1)
    in
    scan 0
  end

let rec insert_nonfull node ~home p ~key ~value =
  let n = nkeys node p in
  if is_leaf node p then begin
    (* shift larger keys right and place *)
    let rec place j =
      if j >= 0 && get_key node p j > key then begin
        set_key node p (j + 1) (get_key node p j);
        set_val node p (j + 1) (get_val node p j);
        place (j - 1)
      end
      else j + 1
    in
    let pos = place (n - 1) in
    set_key node p pos key;
    set_val node p pos value;
    set_nkeys node p (n + 1)
  end
  else begin
    let rec child_index i =
      if i >= n then i else if key < get_key node p i then i else child_index (i + 1)
    in
    let i = child_index 0 in
    let i =
      if nkeys node (get_kid node p i) = max_keys then begin
        split_child node ~home p i;
        if key > get_key node p i then i + 1 else i
      end
      else i
    in
    insert_nonfull node ~home (get_kid node p i) ~key ~value
  end

let insert node handle ~key ~value =
  let home = home_of node handle in
  let root = get_root node handle in
  if Access.is_null root then begin
    let root = alloc_node node ~home ~leaf:true in
    set_key node root 0 key;
    set_val node root 0 value;
    set_nkeys node root 1;
    set_root node handle root
  end
  else if overwrite node root ~key ~value then ()
  else begin
    let root =
      if nkeys node root = max_keys then begin
        let new_root = alloc_node node ~home ~leaf:false in
        set_kid node new_root 0 root;
        set_root node handle new_root;
        split_child node ~home new_root 0;
        new_root
      end
      else root
    in
    insert_nonfull node ~home root ~key ~value
  end

(* --- traversal --- *)

let fold node handle ~init ~f =
  let rec go p acc =
    if Access.is_null p then acc
    else begin
      let n = nkeys node p in
      let leaf = is_leaf node p in
      let rec slots i acc =
        if i >= n then if leaf then acc else go (get_kid node p i) acc
        else
          let acc = if leaf then acc else go (get_kid node p i) acc in
          slots (i + 1) (f acc (get_key node p i) (get_val node p i))
      in
      slots 0 acc
    end
  in
  go (get_root node handle) init

let to_list node handle =
  List.rev (fold node handle ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let cardinal node handle = fold node handle ~init:0 ~f:(fun acc _ _ -> acc + 1)

let range_count node handle ~lo ~hi =
  (* prune subtrees outside [lo, hi] *)
  let rec go p acc =
    if Access.is_null p then acc
    else begin
      let n = nkeys node p in
      let leaf = is_leaf node p in
      let rec slots i acc =
        if i > n then acc
        else begin
          let acc =
            if leaf then acc
            else begin
              (* kid i holds keys in (key[i-1], key[i]) *)
              let lo_bound = if i = 0 then min_int else get_key node p (i - 1) in
              let hi_bound = if i = n then max_int else get_key node p i in
              if hi_bound < lo || lo_bound > hi then acc
              else go (get_kid node p i) acc
            end
          in
          let acc =
            if i < n then begin
              let k = get_key node p i in
              if lo <= k && k <= hi then acc + 1 else acc
            end
            else acc
          in
          slots (i + 1) acc
        end
      in
      slots 0 acc
    end
  in
  go (get_root node handle) 0

(* --- invariants --- *)

let check_invariants node handle =
  let ( let* ) r f = Result.bind r f in
  (* returns leaf depth *)
  let rec go p ~is_root ~lo ~hi =
    let n = nkeys node p in
    let* () =
      if n < 1 || n > max_keys then
        Error (Printf.sprintf "node 0x%x has %d keys" p.Access.addr n)
      else Ok ()
    in
    let* () =
      let rec sorted i =
        if i + 1 >= n then Ok ()
        else if get_key node p i >= get_key node p (i + 1) then
          Error (Printf.sprintf "unsorted keys in 0x%x" p.Access.addr)
        else sorted (i + 1)
      in
      sorted 0
    in
    let* () =
      if get_key node p 0 > lo && get_key node p (n - 1) < hi then Ok ()
      else Error (Printf.sprintf "key range violation in 0x%x" p.Access.addr)
    in
    ignore is_root;
    if is_leaf node p then Ok 1
    else
      let rec kids i depth =
        if i > n then Ok depth
        else begin
          let klo = if i = 0 then lo else get_key node p (i - 1) in
          let khi = if i = n then hi else get_key node p i in
          let kid = get_kid node p i in
          let* () =
            if Access.is_null kid then
              Error (Printf.sprintf "null kid %d in internal 0x%x" i p.Access.addr)
            else Ok ()
          in
          let* d = go kid ~is_root:false ~lo:klo ~hi:khi in
          match depth with
          | None -> kids (i + 1) (Some d)
          | Some d' when d = d' -> kids (i + 1) depth
          | Some d' ->
            Error (Printf.sprintf "uneven leaf depth (%d vs %d) under 0x%x" d d' p.Access.addr)
        end
      in
      let* depth = kids 0 None in
      Ok (1 + Option.value ~default:0 depth)
  in
  let root = get_root node handle in
  if Access.is_null root then Ok ()
  else Result.map (fun _ -> ()) (go root ~is_root:true ~lo:min_int ~hi:max_int)

(** Terminal line plots, so the bench harness can re-draw the paper's
    figures and not just print their tables. *)

type series = { label : string; points : (float * float) list }

(** [render series] draws all series on one pair of axes. Each series
    gets a distinct marker; colliding points show the later series'
    marker. Axes are linear, annotated with min/max, and sized
    [width]×[height] characters for the plot area (defaults 64×20). *)
val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string

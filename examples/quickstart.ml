(* Quickstart: pass a linked list BY POINTER to a remote procedure.

   A conventional RPC system would force you to marshal the whole list
   (eager) or hand-write callbacks (lazy). Here the callee just
   dereferences the pointer; the runtime swizzles it into a protected
   cache page and faults the data over on first touch.

   Run with:  dune exec examples/quickstart.exe *)

open Srpc_core
open Srpc_workloads

let () =
  (* A simulated distributed system with the paper's cost model. *)
  let cluster = Cluster.create () in
  let client = Cluster.add_node cluster ~site:1 () in
  let server = Cluster.add_node cluster ~site:2 () in

  (* Publish the list-cell type on the name server, and let the
     descriptor linter reject it if it is malformed. *)
  Linked_list.register_types cluster;
  Cluster.validate cluster;

  (* Build a list in the CLIENT's address space. *)
  let head = Linked_list.build client [ 3; 1; 4; 1; 5; 9; 2; 6 ] in

  (* A remote procedure on the server: sums a list it receives by
     pointer, as if the list were local. *)
  Node.register server "sum_list" (fun node args ->
      let head = Access.of_value (List.hd args) in
      [ Value.int (Linked_list.sum node head) ]);

  (* Every use of remote pointers happens inside an RPC session. *)
  Node.with_session client (fun () ->
      (match Node.call client ~dst:(Node.id server) "sum_list"
               [ Access.to_value head ]
       with
      | [ v ] -> Printf.printf "remote sum = %d (expected 31)\n" (Value.to_int v)
      | _ -> assert false);

      (* Peek behind the curtain: the server's data allocation table now
         maps protected-page slots to long pointers (paper, Table 1). *)
      Format.printf "server's data allocation table:@.%a@." Node.pp_alloc_table
        server);

  Format.printf "simulated time: %.6f s, stats: %a@." (Cluster.now cluster)
    Srpc_simnet.Stats.pp_snapshot (Cluster.snapshot cluster)

(* Fault injection end to end: a mid-session partition kills the
   session, the runtime aborts it atomically, and after the link heals
   the same work succeeds on the same (still usable) cluster.

   The scenario: the client caches and modifies a server-owned record,
   then the network to the server is cut. The retry envelope resends
   until its budget runs out, the ground thread runs the session abort —
   the dirty cached copy is discarded, never written back — and
   [Session_aborted] surfaces. The server's original value is intact.
   After [Fault_plan.heal] the rerun commits the update.

   Run with:  dune exec examples/chaos.exe *)

open Srpc_core
open Srpc_simnet

let cell_ty = "record"

let () =
  let cluster = Cluster.create () in
  let client = Cluster.add_node cluster ~site:1 () in
  let server = Cluster.add_node cluster ~site:2 () in
  Cluster.register_type cluster cell_ty
    (Srpc_types.Type_desc.Struct [ ("balance", Srpc_types.Type_desc.i64) ]);

  (* the server owns one record *)
  let record = Access.ptr ~ty:cell_ty (Node.malloc server ~ty:cell_ty) in
  Access.set_i64 server record ~field:"balance" 100L;
  Node.register server "get_record" (fun _ _ -> [ Access.to_value record ]);

  (* seeded fault injection; nothing fails until we say so *)
  let plan = Fault_plan.create ~seed:1 () in
  Cluster.install_faults cluster plan;

  let cut_link = ref false in
  let deposit amount =
    Node.with_session client (fun () ->
        match Node.call client ~dst:(Node.id server) "get_record" [] with
        | [ v ] ->
          let p = Access.of_value v in
          let balance = Access.get_i64 client p ~field:"balance" in
          Access.set_i64 client p ~field:"balance"
            (Int64.add balance amount);
          (* cut the client->server direction mid-session when armed:
             the write-back at close cannot reach the origin *)
          if !cut_link then begin
            cut_link := false;
            Fault_plan.partition plan ~src:"1.0" ~dst:"2.0"
          end
        | _ -> assert false)
  in

  (* first attempt: partitioned mid-session -> atomic abort *)
  cut_link := true;
  (match deposit 25L with
  | () -> assert false
  | exception Session.Session_aborted { session; reason } ->
    Printf.printf "session %d aborted: %s\n" session reason);
  assert (Access.get_i64 server record ~field:"balance" = 100L);
  Printf.printf "server balance after abort: %Ld (unchanged)\n"
    (Access.get_i64 server record ~field:"balance");

  (* heal the link; the same cluster runs the same work to completion *)
  Fault_plan.heal plan ~src:"1.0" ~dst:"2.0";
  deposit 25L;
  assert (Access.get_i64 server record ~field:"balance" = 125L);
  Printf.printf "server balance after healed rerun: %Ld\n"
    (Access.get_i64 server record ~field:"balance");

  (* a crashed-and-revived peer works too *)
  Transport.crash (Cluster.transport cluster) "2.0";
  (match deposit 10L with
  | () -> assert false
  | exception Session.Session_aborted _ ->
    print_endline "session aborted: server crashed");
  Transport.revive (Cluster.transport cluster) "2.0";
  deposit 10L;
  assert (Access.get_i64 server record ~field:"balance" = 135L);
  Printf.printf "server balance after revived rerun: %Ld\n"
    (Access.get_i64 server record ~field:"balance")

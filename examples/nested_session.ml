(* The paper's Fig. 1 execution model: a ground thread on site A opens a
   session, calls B; B calls C (nested RPC); C calls back into A. A
   datum of A's is modified at C; the modified data set travels with the
   thread of control, so everyone observes it, and the session end
   writes it back and invalidates all caches.

   Run with:  dune exec examples/nested_session.exe *)

open Srpc_core
open Srpc_types
open Srpc_workloads

let counter_ty = "counter"

let () =
  let cluster = Cluster.create () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let c = Cluster.add_node cluster ~site:3 () in
  Cluster.register_type cluster counter_ty
    (Type_desc.Struct [ ("value", Type_desc.i64) ]);
  Linked_list.register_types cluster;
  Cluster.validate cluster;

  (* A's datum, shared by pointer through the whole session. *)
  let counter = Access.ptr ~ty:counter_ty (Node.malloc a ~ty:counter_ty) in
  Access.set_int a counter ~field:"value" 100;

  (* C increments the counter and calls BACK to A for a bonus amount. *)
  Node.register a "bonus" (fun _ _ -> [ Value.int 7 ]);
  Node.register c "increment" (fun node args ->
      let p = Access.of_value (List.hd args) in
      let bonus =
        match Node.call node ~dst:(Node.id a) "bonus" [] with
        | [ v ] -> Value.to_int v
        | _ -> assert false
      in
      let v = Access.get_int node p ~field:"value" in
      Access.set_int node p ~field:"value" (v + 1 + bonus);
      Printf.printf "  [site 3] counter: %d -> %d (callback bonus %d)\n" v
        (v + 1 + bonus) bonus;
      []);

  (* B relays to C, then reads the counter itself: it must see C's
     update because the modified set traveled back with C's return. *)
  Node.register b "relay" (fun node args ->
      ignore (Node.call node ~dst:(Node.id c) "increment" args);
      let p = Access.of_value (List.hd args) in
      let seen = Access.get_int node p ~field:"value" in
      Printf.printf "  [site 2] observes counter = %d after nested call\n" seen;
      [ Value.int seen ]);

  Printf.printf "[site 1] ground thread begins the session\n";
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "relay" [ Access.to_value counter ] with
      | [ v ] -> Printf.printf "[site 1] B reported %d\n" (Value.to_int v)
      | _ -> assert false);
  Printf.printf "[site 1] session ended: write-back + invalidation multicast\n";
  Printf.printf "[site 1] counter at origin = %d (expected 108)\n"
    (Access.get_int a counter ~field:"value");
  Printf.printf "[site 1] caches everywhere: a=%d b=%d c=%d entries\n"
    (Node.cached_entries a) (Node.cached_entries b) (Node.cached_entries c)

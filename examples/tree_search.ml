(* The paper's headline experiment at example scale: a complete binary
   tree lives on the caller; the callee searches part of it remotely
   under the three transfer methods (fully eager / fully lazy /
   proposed), showing who wins at which access ratio.

   Run with:  dune exec examples/tree_search.exe *)

open Srpc_workloads

let () =
  let depth = 12 (* 4095 nodes of 16 bytes, as in the paper but smaller *) in
  let methods =
    [ Experiments.Fully_eager; Experiments.Fully_lazy; Experiments.Proposed 8192 ]
  in
  Printf.printf "tree: %d nodes; per-call simulated seconds\n"
    (Tree.nodes_of_depth depth);
  Printf.printf "%8s" "ratio";
  List.iter (fun m -> Printf.printf " %14s" (Experiments.method_name m)) methods;
  print_newline ();
  List.iter
    (fun ratio ->
      Printf.printf "%8.2f" ratio;
      List.iter
        (fun m ->
          let r =
            Experiments.run_tree_search
              ~strategy:(Experiments.strategy_of_method m)
              ~depth ~ratio ()
          in
          Printf.printf " %14.4f" r.Experiments.seconds)
        methods;
      print_newline ())
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  print_newline ();
  (* The adaptive policy (docs/ADAPTIVE.md): same search, but the cluster
     is created with ~policy, so the profiler watches every session and
     the controller re-tunes the closure budget in between instead of
     trusting the hand-picked 8192. *)
  let open Srpc_core in
  let policy = Srpc_policy.Engine.create () in
  let cluster = Cluster.create ~policy () in
  let strategy = Strategy.smart () in
  let caller = Cluster.add_node cluster ~site:1 ~strategy () in
  let callee = Cluster.add_node cluster ~site:2 ~strategy () in
  Tree.register_types cluster;
  let root = Tree.build caller ~depth in
  Node.register callee "search" (fun node args ->
      match args with
      | [ rootv; limitv ] ->
        let visited, _ =
          Tree.visit node (Access.of_value rootv) ~limit:(Value.to_int limitv)
        in
        [ Value.int visited ]
      | _ -> invalid_arg "search: expected (root, limit)");
  let limit = Tree.nodes_of_depth depth / 2 in
  Printf.printf "adaptive policy, ratio 0.50, per-session seconds:\n ";
  for _ = 1 to 8 do
    let clock = Srpc_simnet.Transport.clock (Node.transport caller) in
    let t0 = Srpc_simnet.Clock.now clock in
    Node.with_session caller (fun () ->
        ignore
          (Node.call caller ~dst:(Node.id callee) "search"
             [ Access.to_value root; Value.int limit ]));
    Printf.printf " %8.4f" (Srpc_simnet.Clock.now clock -. t0)
  done;
  print_newline ();
  List.iter
    (fun (ty, b) -> Printf.printf "  learned budget for %s: %d bytes\n" ty b)
    (Srpc_policy.Engine.budgets policy);
  print_newline ();
  Printf.printf "callbacks at full traversal:\n";
  List.iter
    (fun m ->
      let r =
        Experiments.run_tree_search
          ~strategy:(Experiments.strategy_of_method m)
          ~depth ~ratio:1.0 ()
      in
      Printf.printf "  %-16s %6d callbacks, %8d wire bytes\n"
        (Experiments.method_name m) r.Experiments.callbacks r.Experiments.bytes)
    methods

(* Heterogeneity: a 32-bit big-endian "SPARC" shares pointer-rich data
   with a 64-bit little-endian machine. The same record type has
   different sizes and layouts on the two machines (16 vs 24 bytes);
   every transfer is translated through XDR with pointers unswizzled to
   long pointers — the scenario heterogeneous DSM systems cannot handle
   (paper, section 5.2).

   Run with:  dune exec examples/heterogeneous.exe *)

open Srpc_memory
open Srpc_types
open Srpc_core
open Srpc_workloads

let () =
  let cluster = Cluster.create () in
  let sparc = Cluster.add_node cluster ~site:1 ~arch:Arch.sparc32 () in
  let alpha = Cluster.add_node cluster ~site:2 ~arch:Arch.lp64_le () in
  Tree.register_types cluster;
  (* tnode's layout diverges between the two machines — the linter
     reports that as a warning (the leaf-wise codec reconciles it), so
     validation still passes. *)
  Cluster.validate cluster;

  let reg = Cluster.registry cluster in
  Printf.printf "sizeof(tnode) on %-8s = %2d bytes\n" "sparc32"
    (Layout.sizeof_name reg Arch.sparc32 Tree.type_name);
  Printf.printf "sizeof(tnode) on %-8s = %2d bytes\n" "lp64-le"
    (Layout.sizeof_name reg Arch.lp64_le Tree.type_name);

  (* Build the tree on the big-endian 32-bit machine. *)
  let root = Tree.build sparc ~depth:8 in

  (* The 64-bit machine both READS and WRITES it through the cache. *)
  Node.register alpha "sum_and_negate" (fun node args ->
      let root = Access.of_value (List.hd args) in
      let sum = ref 0 in
      let rec go p =
        if not (Access.is_null p) then begin
          let d = Access.get_int node p ~field:"data" in
          sum := !sum + d;
          Access.set_int node p ~field:"data" (-d);
          go (Access.get_ptr node p ~field:"left");
          go (Access.get_ptr node p ~field:"right")
        end
      in
      go root;
      [ Value.int !sum ]);

  Node.begin_session sparc;
  (match Node.call sparc ~dst:(Node.id alpha) "sum_and_negate"
           [ Access.to_value root ]
   with
  | [ v ] -> Printf.printf "sum computed on the 64-bit machine: %d\n" (Value.to_int v)
  | _ -> assert false);
  Node.end_session sparc;

  (* The writes were translated back into 32-bit big-endian images. *)
  let _, sum_after = Tree.visit sparc root ~limit:max_int in
  Printf.printf "sum at origin after remote negation: %d\n" sum_after;
  Printf.printf "wire bytes (all canonical XDR): %d\n"
    (Cluster.snapshot cluster).Srpc_simnet.Stats.bytes

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 4) on the simulated cluster, runs the ablations
   from DESIGN.md, and finishes with Bechamel microbenchmarks — one
   Test.make per table/figure — measuring the real CPU cost of that
   experiment's hot path.

   Run with:  dune exec bench/main.exe
   Subsets:   dune exec bench/main.exe -- table1 fig4 fig6 fig7 ablations micro *)

open Srpc_core
open Srpc_workloads

let line () = print_endline (String.make 78 '-')

let section name f =
  line ();
  Printf.printf "%s\n%!" name;
  line ();
  f ();
  print_newline ()

(* --- paper reproduction --- *)

let run_table1 () =
  Experiments.table1 Format.std_formatter ();
  Format.print_newline ()

let run_fig45 () =
  let rows = Experiments.fig4 () in
  Format.printf "%a@." (fun ppf -> Experiments.pp_fig4 ppf) rows;
  print_newline ();
  let series sel label =
    { Ascii_plot.label; points = List.map (fun (r : Experiments.fig4_row) -> (r.Experiments.ratio, sel r)) rows }
  in
  print_string
    (Ascii_plot.render ~x_label:"access ratio" ~y_label:"processing time (s)"
       [
         series (fun r -> r.Experiments.eager.Experiments.seconds) "fully eager";
         series (fun r -> r.Experiments.lazy_.Experiments.seconds) "fully lazy";
         series (fun r -> r.Experiments.proposed.Experiments.seconds) "proposed";
       ]);
  print_newline ();
  Format.printf "%a@." (fun ppf -> Experiments.pp_fig5 ppf) rows;
  print_newline ();
  print_string
    (Ascii_plot.render ~x_label:"access ratio" ~y_label:"callbacks"
       [
         series (fun r -> float_of_int r.Experiments.lazy_.Experiments.callbacks) "fully lazy";
         series (fun r -> float_of_int r.Experiments.proposed.Experiments.callbacks) "proposed";
       ])

let run_fig6 () =
  let rows = Experiments.fig6 () in
  Format.printf "%a@." (fun ppf -> Experiments.pp_fig6 ppf) rows;
  print_newline ();
  let depths = match rows with [] -> [] | r :: _ -> List.map fst r.Experiments.by_depth in
  let series d =
    {
      Ascii_plot.label = Printf.sprintf "%d nodes" (Tree.nodes_of_depth d);
      points =
        List.map
          (fun (r : Experiments.fig6_row) ->
            ( float_of_int r.Experiments.closure_bytes /. 1024.0,
              (List.assoc d r.Experiments.by_depth).Experiments.seconds ))
          rows;
    }
  in
  print_string
    (Ascii_plot.render ~x_label:"closure size (KB)" ~y_label:"processing time (s)"
       (List.map series depths))

let run_fig6b () =
  Format.printf
    "Fig. 6 under the descent reading (10 root-to-leaf paths per call):@.";
  Format.printf "%a@." (fun ppf -> Experiments.pp_fig6 ppf)
    (Experiments.fig6_descents ())

let run_fig7 () =
  let rows = Experiments.fig7 () in
  Format.printf "%a@." (fun ppf -> Experiments.pp_fig7 ppf) rows;
  print_newline ();
  let series sel label =
    { Ascii_plot.label; points = List.map (fun (r : Experiments.fig7_row) -> (r.Experiments.ratio7, sel r)) rows }
  in
  print_string
    (Ascii_plot.render ~x_label:"update ratio" ~y_label:"processing time (s)"
       [
         series (fun r -> r.Experiments.updated.Experiments.seconds) "updated";
         series (fun r -> r.Experiments.not_updated.Experiments.seconds) "not updated";
       ])

let run_ablations () =
  let a1 = Experiments.ablation_alloc_strategy () in
  let a2 = Experiments.ablation_closure_shape () in
  let a3 = Experiments.ablation_alloc_batching () in
  let a4 = Experiments.ablation_writeback_grain () in
  Format.printf "%a@." (fun ppf -> Experiments.pp_ablations ppf) (a1, a2, a3, a4);
  Format.print_newline ();
  Format.printf "%a@." (fun ppf -> Experiments.pp_hint_rows ppf)
    (Experiments.ablation_closure_hints ());
  Format.print_newline ();
  Format.printf "%a@." (fun ppf -> Experiments.pp_page_rows ppf)
    (Experiments.ablation_page_size ())

let run_kv () =
  Format.printf "%a@." (fun ppf -> Experiments.pp_kv ppf) (Experiments.kv_store ())

let run_manual () =
  Format.printf "%a@." (fun ppf -> Experiments.pp_manual ppf)
    (Experiments.manual_comparison ())

let run_scale () =
  Format.printf "%a@." (fun ppf -> Experiments.pp_scaling ppf) (Experiments.scaling ())

let run_wan () =
  let rows = Experiments.fig4_wan ~ratios:[ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ] () in
  Format.printf
    "Fig. 4 with the caller-callee link behind a 50x-latency WAN:@.";
  Format.printf "%a@." (fun ppf -> Experiments.pp_fig4 ppf) rows

(* --- adaptive policy (srpc-adapt) --- *)

(* Final-session time, best static competitor, and the acceptance verdict
   (within 1.15x of the best of fully-eager / fully-lazy / smart-8192,
   the bar set for the adaptive controller). *)
let adaptive_acceptance (r : Experiments.adaptive_fig4_row) =
  let final =
    match List.rev r.Experiments.af_adaptive.Experiments.a_sessions with
    | last :: _ -> last.Experiments.seconds
    | [] -> infinity
  in
  let best =
    min r.Experiments.af_eager.Experiments.seconds
      (min r.Experiments.af_lazy.Experiments.seconds
         r.Experiments.af_smart.Experiments.seconds)
  in
  (final, best, final <= (1.15 *. best) +. 1e-9)

(* Hand-rolled JSON so the bench stays free of parser dependencies. *)
let adaptive_json ~depth ~sessions ~closure
    (rows : Experiments.adaptive_fig4_row list) =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n\
    \  \"experiment\": \"adaptive_fig4\",\n\
    \  \"depth\": %d,\n\
    \  \"sessions\": %d,\n\
    \  \"closure_bytes\": %d,\n\
    \  \"acceptance_factor\": 1.15,\n\
    \  \"rows\": [\n"
    depth sessions closure;
  let n = List.length rows in
  List.iteri
    (fun i (r : Experiments.adaptive_fig4_row) ->
      let final, best, pass = adaptive_acceptance r in
      let final_bytes =
        match List.rev r.Experiments.af_adaptive.Experiments.a_sessions with
        | last :: _ -> last.Experiments.bytes
        | [] -> 0
      in
      Printf.bprintf b
        "    {\"ratio\": %.2f, \"eager_s\": %.6f, \"lazy_s\": %.6f, \
         \"smart_s\": %.6f,\n\
        \     \"eager_bytes\": %d, \"lazy_bytes\": %d, \"smart_bytes\": %d, \
         \"adaptive_final_bytes\": %d,\n\
        \     \"adaptive_final_s\": %.6f, \"best_static_s\": %.6f, \
         \"adaptive_over_best\": %.4f, \"pass\": %b,\n"
        r.Experiments.af_ratio r.Experiments.af_eager.Experiments.seconds
        r.Experiments.af_lazy.Experiments.seconds
        r.Experiments.af_smart.Experiments.seconds
        r.Experiments.af_eager.Experiments.bytes
        r.Experiments.af_lazy.Experiments.bytes
        r.Experiments.af_smart.Experiments.bytes final_bytes final best
        (final /. best) pass;
      Printf.bprintf b "     \"adaptive_sessions_s\": [%s],\n"
        (String.concat ", "
           (List.map
              (fun (s : Experiments.run) ->
                Printf.sprintf "%.6f" s.Experiments.seconds)
              r.Experiments.af_adaptive.Experiments.a_sessions));
      Printf.bprintf b "     \"budgets\": {%s}}%s\n"
        (String.concat ", "
           (List.map
              (fun (ty, bu) -> Printf.sprintf "%S: %d" ty bu)
              r.Experiments.af_adaptive.Experiments.a_budgets))
        (if i = n - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let report_acceptance rows =
  let failures = ref 0 in
  List.iter
    (fun (r : Experiments.adaptive_fig4_row) ->
      let final, best, pass = adaptive_acceptance r in
      if not pass then incr failures;
      Printf.printf "ratio %.2f  adaptive %.6fs  best static %.6fs  x%.3f  %s\n"
        r.Experiments.af_ratio final best (final /. best)
        (if pass then "ok" else "FAIL"))
    rows;
  !failures

let run_adaptive () =
  let depth = 15 and sessions = 12 and closure = 8192 in
  let rows = Experiments.adaptive_fig4 ~depth ~sessions ~closure () in
  Format.printf "%a@." (fun ppf -> Experiments.pp_adaptive_fig4 ppf) rows;
  let json = adaptive_json ~depth ~sessions ~closure rows in
  let path = "BENCH_adaptive.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path;
  ignore (report_acceptance rows)

(* --- faults (srpc-faults) --- *)

let faults_json ~depth ~ratio ~sessions (ov : Experiments.faults_overhead)
    (rows : Experiments.faults_summary list) =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n\
    \  \"experiment\": \"faults\",\n\
    \  \"depth\": %d,\n\
    \  \"ratio\": %.2f,\n\
    \  \"sessions_per_cell\": %d,\n\
    \  \"overhead\": {\"plain_s\": %.6f, \"envelope_s\": %.6f, \
     \"ratio\": %.4f, \"bound\": 1.05},\n\
    \  \"cells\": [\n"
    depth ratio sessions ov.Experiments.fo_plain.Experiments.seconds
    ov.Experiments.fo_envelope.Experiments.seconds ov.Experiments.fo_ratio;
  let n = List.length rows in
  List.iteri
    (fun i (f : Experiments.faults_summary) ->
      Printf.bprintf b
        "    {\"drop\": %.2f, \"strategy\": %S, \"sessions\": %d, \
         \"completed\": %d, \"aborted\": %d, \"wrong\": %d,\n\
        \     \"retries\": %d, \"timeouts\": %d, \"duplicates\": %d, \
         \"mean_completed_s\": %.6f}%s\n"
        f.Experiments.f_drop f.Experiments.f_strategy f.Experiments.f_sessions
        f.Experiments.f_completed f.Experiments.f_aborted f.Experiments.f_wrong
        f.Experiments.f_retries f.Experiments.f_timeouts
        f.Experiments.f_duplicates f.Experiments.f_seconds
        (if i = n - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* The acceptance gate over a faults run: the retry envelope must cost at
   most 5% at zero fault rate, no completed session may return a wrong
   result, every session must be accounted for, and under a 1% drop rate
   most sessions still complete. *)
let faults_failures (ov : Experiments.faults_overhead)
    (rows : Experiments.faults_summary list) =
  let failures = ref 0 in
  let check cond msg =
    if not cond then begin
      incr failures;
      Printf.printf "faults: FAIL %s\n" msg
    end
  in
  check
    (ov.Experiments.fo_ratio <= 1.05 +. 1e-9)
    (Printf.sprintf "envelope overhead x%.4f exceeds 1.05"
       ov.Experiments.fo_ratio);
  List.iter
    (fun (f : Experiments.faults_summary) ->
      let cell = Printf.sprintf "drop %.2f %s" f.Experiments.f_drop f.Experiments.f_strategy in
      check (f.Experiments.f_wrong = 0)
        (Printf.sprintf "%s: %d wrong result(s)" cell f.Experiments.f_wrong);
      check
        (f.Experiments.f_completed + f.Experiments.f_aborted
        = f.Experiments.f_sessions)
        (Printf.sprintf "%s: %d session(s) unaccounted for" cell
           (f.Experiments.f_sessions - f.Experiments.f_completed
          - f.Experiments.f_aborted));
      if f.Experiments.f_drop <= 0.011 then
        check
          (f.Experiments.f_completed * 5 >= f.Experiments.f_sessions * 4)
          (Printf.sprintf "%s: only %d/%d sessions completed" cell
             f.Experiments.f_completed f.Experiments.f_sessions))
    rows;
  !failures

let run_faults () =
  let depth = 11 and ratio = 0.6 and sessions = 8 in
  let ov = Experiments.measure_faults_overhead ~depth ~ratio () in
  let rows = Experiments.faults_sweep ~depth:9 ~ratio ~sessions () in
  Format.printf "%a@." (fun ppf -> Experiments.pp_faults ppf) (ov, rows);
  let json = faults_json ~depth ~ratio ~sessions ov rows in
  let path = "BENCH_faults.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path;
  ignore (faults_failures ov rows)

(* --- delta coherency (srpc-delta) --- *)

let delta_json (field : Experiments.delta_run list)
    (rows : Experiments.delta_fig4_row list) =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "{\n\
    \  \"experiment\": \"delta_coherency\",\n\
    \  \"wb_bytes_bound\": 0.5,\n\
    \  \"field_update\": [\n";
  let n = List.length field in
  List.iteri
    (fun i (r : Experiments.delta_run) ->
      Printf.bprintf b
        "    {\"delta\": %b, \"wb_bytes\": %d, \"saved\": %d, \
         \"fallbacks\": %d, \"copies\": %d, \"cachers\": %d,\n\
        \     \"inval_sent\": %d, \"inval_skipped\": %d, \"messages\": %d, \
         \"bytes\": %d, \"check\": %b}%s\n"
        (i > 0) r.Experiments.dl_wb_bytes r.Experiments.dl_saved
        r.Experiments.dl_fallbacks r.Experiments.dl_copies
        r.Experiments.dl_cachers r.Experiments.dl_inval_sent
        r.Experiments.dl_inval_skipped r.Experiments.dl_run.Experiments.messages
        r.Experiments.dl_run.Experiments.bytes r.Experiments.dl_check
        (if i = n - 1 then "" else ","))
    field;
  Buffer.add_string b "  ],\n  \"fig4_update\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i (r : Experiments.delta_fig4_row) ->
      Printf.bprintf b
        "    {\"method\": %S, \"off_wb_bytes\": %d, \"on_wb_bytes\": %d, \
         \"saved\": %d, \"fallbacks\": %d}%s\n"
        (Experiments.method_name r.Experiments.dm_method)
        r.Experiments.dm_off.Experiments.dc_wb_bytes
        r.Experiments.dm_on.Experiments.dc_wb_bytes
        r.Experiments.dm_on.Experiments.dc_saved
        r.Experiments.dm_on.Experiments.dc_fallbacks
        (if i = n - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* The delta acceptance gates. On the single-field-update workload the
   delta run must ship at most half the write-back bytes (it ships about
   0.5%), invalidation must reach exactly the caching spaces, and with
   the flag off the wire must look exactly like the pre-delta protocol:
   no delta counters and the same traffic on every run. (Copy and
   Inval_sent provenance notes are zero-byte witnesses recorded in every
   mode for the offline linters, so they are not a fingerprint.) *)
let delta_failures (off : Experiments.delta_run)
    (off2 : Experiments.delta_run) (on : Experiments.delta_run)
    (rows : Experiments.delta_fig4_row list) =
  let failures = ref 0 in
  let check cond msg =
    if not cond then begin
      incr failures;
      Printf.printf "delta: FAIL %s\n" msg
    end
  in
  check off.Experiments.dl_check "flag-off home missed a poked value";
  check on.Experiments.dl_check "flag-on home missed a poked value";
  check
    (2 * on.Experiments.dl_wb_bytes <= off.Experiments.dl_wb_bytes)
    (Printf.sprintf "delta write-back bytes %d exceed half of full %d"
       on.Experiments.dl_wb_bytes off.Experiments.dl_wb_bytes);
  check
    (on.Experiments.dl_inval_sent = on.Experiments.dl_cachers)
    (Printf.sprintf "%d invalidation(s) for %d caching space(s)"
       on.Experiments.dl_inval_sent on.Experiments.dl_cachers);
  check
    (on.Experiments.dl_cachers = 1 && on.Experiments.dl_inval_skipped = 2)
    (Printf.sprintf "expected 1 casher and 2 spared idlers, got %d and %d"
       on.Experiments.dl_cachers on.Experiments.dl_inval_skipped);
  check
    (off.Experiments.dl_saved = 0
    && off.Experiments.dl_fallbacks = 0
    && off.Experiments.dl_inval_skipped = 0)
    "flag off left delta fingerprints (counters)";
  check
    (off.Experiments.dl_run.Experiments.messages
     = off2.Experiments.dl_run.Experiments.messages
    && off.Experiments.dl_run.Experiments.bytes
       = off2.Experiments.dl_run.Experiments.bytes
    && off.Experiments.dl_wb_bytes = off2.Experiments.dl_wb_bytes)
    "flag-off runs are not byte-identical";
  List.iter
    (fun (r : Experiments.delta_fig4_row) ->
      check
        (r.Experiments.dm_on.Experiments.dc_wb_bytes
        <= r.Experiments.dm_off.Experiments.dc_wb_bytes)
        (Printf.sprintf "%s: delta on ships more write-back bytes (%d > %d)"
           (Experiments.method_name r.Experiments.dm_method)
           r.Experiments.dm_on.Experiments.dc_wb_bytes
           r.Experiments.dm_off.Experiments.dc_wb_bytes))
    rows;
  !failures

let delta_measure ?(depth = 12) () =
  let off = Experiments.run_field_update ~delta:false () in
  let off2 = Experiments.run_field_update ~delta:false () in
  let on = Experiments.run_field_update ~delta:true () in
  let rows = Experiments.delta_fig4 ~depth () in
  (off, off2, on, rows)

let run_delta () =
  let off, off2, on, rows = delta_measure () in
  Format.printf "%a@." (fun ppf () -> Experiments.pp_delta ppf [ off; on ] rows) ();
  let json = delta_json [ off; on ] rows in
  let path = "BENCH_delta.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path;
  ignore (delta_failures off off2 on rows)

(* --- traffic (srpc-traffic: concurrent-session admission) --- *)

(* The speedup gate: >= 8 admission-disjoint clients must beat the
   serialized replay of the same session population by >= 2x on
   committed-session throughput, with zero Race_lint / Proto_lint
   errors over the full trace. Contended rows (queue and abort-retry)
   are reported for the record; they gate only on linter cleanliness
   and full commitment, not on speedup. *)
let traffic_speedup_gate = 2.0

let traffic_measure () =
  let module T = Srpc_traffic.Traffic in
  let disjoint seed = { T.default with T.seed } in
  let hot policy =
    { T.default with T.contention = T.Hot; policy; sessions_per_client = 3 }
  in
  List.map
    (fun cfg -> (cfg.T.seed, cfg, T.compare_runs cfg))
    [
      disjoint 0;
      disjoint 1;
      hot Srpc_core.Strategy.Queue_conflicts;
      hot Srpc_core.Strategy.Abort_retry;
    ]

let traffic_failures rows =
  let module T = Srpc_traffic.Traffic in
  let failures = ref 0 in
  List.iter
    (fun (seed, (cfg : T.config), (cmp : T.comparison)) ->
      let c = cmp.T.concurrent in
      let fail fmt =
        incr failures;
        Printf.printf fmt
      in
      let label =
        match cfg.T.contention with
        | T.Disjoint -> Printf.sprintf "disjoint seed %d" seed
        | T.Hot -> (
          match cfg.T.policy with
          | Srpc_core.Strategy.Queue_conflicts -> "hot/queue"
          | Srpc_core.Strategy.Abort_retry -> "hot/abort-retry")
      in
      Printf.printf
        "traffic %-16s %2d/%2d committed  x%.2f serialized  races %d  \
         proto %d\n"
        label c.T.r_committed c.T.r_sessions cmp.T.speedup c.T.r_race_errors
        c.T.r_proto_errors;
      if c.T.r_committed <> c.T.r_sessions then
        fail "traffic %s: %d/%d sessions committed\n" label c.T.r_committed
          c.T.r_sessions;
      if c.T.r_race_errors > 0 then
        fail "traffic %s: %d Race_lint error(s)\n" label c.T.r_race_errors;
      if c.T.r_proto_errors > 0 then
        fail "traffic %s: %d Proto_lint error(s)\n" label c.T.r_proto_errors;
      if cfg.T.contention = T.Disjoint && cmp.T.speedup < traffic_speedup_gate
      then
        fail "traffic %s: speedup x%.2f below the x%.1f gate\n" label
          cmp.T.speedup traffic_speedup_gate)
    rows;
  !failures

let traffic_json rows =
  let module T = Srpc_traffic.Traffic in
  Srpc_traffic.Traffic_json.report ~clients:T.default.T.clients
    ~servers:T.default.T.servers ~rate:T.default.T.rate
    ~sessions:T.default.T.sessions_per_client rows

let run_traffic () =
  let rows = traffic_measure () in
  let json = traffic_json rows in
  let path = "BENCH_traffic.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path;
  ignore (traffic_failures rows)

(* --- soak (srpc-recover: chaos traffic with recovery armed) --- *)

(* The robustness gate: over >= 300 virtual seconds at 1% drop with
   periodic crash/revive cycles, session completion must stay >= 99%,
   validation must detect zero lost updates, p99 latency must stay
   within 5x the fault-free baseline's p99, and the recovery machinery
   must demonstrably fire (crashes applied, heartbeats sent, at least
   one session recovered). The two deliberately overloaded hot rows
   (tiny queue cap and retry budget) gate only on typed shedding and
   zero lost updates — under overload the controller must shed, not
   corrupt. *)
let soak_completion_gate = 0.99
let soak_p99_ratio_gate = 5.0

let soak_seed () =
  match Sys.getenv_opt "SRPC_SEED" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> 0)
  | None -> 0

let soak_measure () =
  let module S = Srpc_traffic.Soak in
  let seed = soak_seed () in
  let gate = { S.default with S.seed } in
  let hot policy =
    {
      S.default with
      S.seed;
      policy;
      contention = Srpc_traffic.Traffic.Hot;
      horizon = 60.0;
      rate = 1.0;
      crash_period = 16.0;
      queue_cap = 2;
      retry_budget = 6;
    }
  in
  List.map
    (fun (label, cfg) -> (label, cfg, S.compare_runs cfg))
    [
      ("chaos-gate", gate);
      ("hot/queue", hot Srpc_core.Strategy.Queue_conflicts);
      ("hot/abort-retry", hot Srpc_core.Strategy.Abort_retry);
    ]

let soak_failures rows =
  let module S = Srpc_traffic.Soak in
  let failures = ref 0 in
  List.iter
    (fun (label, (cfg : S.config), (cmp : S.comparison)) ->
      let c = cmp.S.chaos in
      let fail fmt =
        incr failures;
        Printf.printf fmt
      in
      Printf.printf
        "soak %-16s %3d/%3d committed (%.1f%%)  p99 x%.2f  aborts %d \
         recovered %d sheds %d trips %d hb %d  races %d proto %d\n"
        label c.S.s_committed c.S.s_sessions (100.0 *. c.S.s_completion)
        cmp.S.p99_ratio c.S.s_aborts c.S.s_recovered c.S.s_sheds
        c.S.s_breaker_trips c.S.s_heartbeats c.S.s_race_errors
        c.S.s_proto_errors;
      if c.S.s_validation_failed > 0 then
        fail "soak %s: %d validation-detected lost update(s)\n" label
          c.S.s_validation_failed;
      if c.S.s_race_errors > 0 then
        fail "soak %s: %d Race_lint error(s)\n" label c.S.s_race_errors;
      if c.S.s_proto_errors > 0 then
        fail "soak %s: %d Proto_lint error(s)\n" label c.S.s_proto_errors;
      if c.S.s_committed + c.S.s_failed <> c.S.s_sessions then
        fail "soak %s: %d committed + %d failed != %d sessions\n" label
          c.S.s_committed c.S.s_failed c.S.s_sessions;
      if cfg.S.contention = Srpc_traffic.Traffic.Disjoint then begin
        if c.S.s_completion < soak_completion_gate then
          fail "soak %s: completion %.4f below the %.2f gate\n" label
            c.S.s_completion soak_completion_gate;
        if cmp.S.p99_ratio > soak_p99_ratio_gate then
          fail "soak %s: p99 x%.2f the fault-free baseline (gate x%.1f)\n"
            label cmp.S.p99_ratio soak_p99_ratio_gate;
        if c.S.s_crashes = 0 || c.S.s_revives <> c.S.s_crashes then
          fail "soak %s: crash/revive schedule did not run (%d/%d)\n" label
            c.S.s_crashes c.S.s_revives;
        if c.S.s_heartbeats = 0 then
          fail "soak %s: the failure detector never probed\n" label;
        if c.S.s_recovered = 0 then
          fail "soak %s: no session exercised crash recovery\n" label;
        if c.S.s_recoveries <> c.S.s_recovered then
          fail "soak %s: Stats.recoveries %d != recovered sessions %d\n"
            label c.S.s_recoveries c.S.s_recovered
      end
      else if c.S.s_sheds = 0 then
        fail "soak %s: overload never shed (queue_cap %d, budget %d)\n" label
          cfg.S.queue_cap cfg.S.retry_budget)
    rows;
  !failures

let run_soak () =
  let rows = soak_measure () in
  let json = Srpc_traffic.Soak_json.report rows in
  let path = "BENCH_soak.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path;
  ignore (soak_failures rows)

(* --- offload (srpc-offload: traversal plans shipped to the home) --- *)

(* The wire gate: at the lowest-locality point (K = 1) the offloaded
   traversal must move an order of magnitude fewer bytes than the eager
   closure, for the same answer. The adaptive gate: the per-type
   learner, fed only per-traversal seconds, must offload at the lowest
   repeat point and keep the walk local at the highest — no hints. *)
let offload_wire_gate = 10

let offload_measure ?(depth = 10)
    ?(repeat_points = Experiments.default_offload_repeats) ?(sessions = 24) ()
    =
  let rows = Experiments.offload_sweep ~depth ~repeat_points () in
  let points = Experiments.offload_adaptive_sweep ~depth ~sessions () in
  (rows, points)

let offload_failures (rows, points) =
  let failures = ref 0 in
  let fail fmt =
    incr failures;
    Printf.printf fmt
  in
  (match rows with
  | [] -> fail "offload: empty sweep\n"
  | (first : Experiments.offload_row) :: _ ->
    let e = first.Experiments.of_eager
    and o = first.Experiments.of_always in
    Printf.printf "offload K=%d  eager %d B  offloaded %d B  x%.1f\n"
      first.Experiments.of_repeats e.Experiments.of_bytes
      o.Experiments.of_bytes
      (float_of_int e.Experiments.of_bytes
      /. float_of_int (max 1 o.Experiments.of_bytes));
    if o.Experiments.of_bytes * offload_wire_gate > e.Experiments.of_bytes
    then
      fail "offload: K=%d moved %d B, above the eager/%d gate (%d B)\n"
        first.Experiments.of_repeats o.Experiments.of_bytes offload_wire_gate
        e.Experiments.of_bytes);
  List.iter
    (fun (r : Experiments.offload_row) ->
      let want = r.Experiments.of_eager.Experiments.of_result in
      if
        r.Experiments.of_lazy.Experiments.of_result <> want
        || r.Experiments.of_always.Experiments.of_result <> want
      then
        fail "offload: K=%d arms disagree on the traversal result\n"
          r.Experiments.of_repeats)
    rows;
  (match points with
  | [ lo; hi ] ->
    Printf.printf "offload adaptive  K=%d -> %s  K=%d -> %s\n"
      lo.Experiments.oa_repeats lo.Experiments.oa_choice
      hi.Experiments.oa_repeats hi.Experiments.oa_choice;
    if not (String.equal lo.Experiments.oa_choice "offload") then
      fail "offload: learner picked %S at K=%d, expected \"offload\"\n"
        lo.Experiments.oa_choice lo.Experiments.oa_repeats;
    if not (String.equal hi.Experiments.oa_choice "local") then
      fail "offload: learner picked %S at K=%d, expected \"local\"\n"
        hi.Experiments.oa_choice hi.Experiments.oa_repeats;
    if
      lo.Experiments.oa_run.Experiments.of_result
      <> hi.Experiments.oa_run.Experiments.of_result
    then fail "offload: adaptive endpoints disagree on the result\n"
  | points ->
    fail "offload: expected two adaptive points, got %d\n"
      (List.length points));
  !failures

let offload_json ~depth (rows, points) =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "{\n\
    \  \"experiment\": \"offload\",\n\
    \  \"depth\": %d,\n\
    \  \"wire_gate\": %d,\n\
    \  \"rows\": [\n"
    depth offload_wire_gate;
  let run (r : Experiments.offload_run) =
    Printf.sprintf
      "{\"seconds\": %.6f, \"messages\": %d, \"bytes\": %d, \
       \"offload_calls\": %d, \"result\": %d}"
      r.Experiments.of_seconds r.Experiments.of_messages
      r.Experiments.of_bytes r.Experiments.of_offload_calls
      r.Experiments.of_result
  in
  let n = List.length rows in
  List.iteri
    (fun i (r : Experiments.offload_row) ->
      Printf.bprintf b
        "    {\"repeats\": %d,\n\
        \     \"eager\": %s,\n\
        \     \"lazy\": %s,\n\
        \     \"offload\": %s}%s\n"
        r.Experiments.of_repeats
        (run r.Experiments.of_eager)
        (run r.Experiments.of_lazy)
        (run r.Experiments.of_always)
        (if i = n - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ],\n  \"adaptive\": [\n";
  let m = List.length points in
  List.iteri
    (fun i (p : Experiments.offload_adaptive_point) ->
      Printf.bprintf b "    {\"repeats\": %d, \"choice\": %S, \"run\": %s}%s\n"
        p.Experiments.oa_repeats p.Experiments.oa_choice
        (run p.Experiments.oa_run)
        (if i = m - 1 then "" else ","))
    points;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run_offload () =
  let depth = 10 in
  let rows, points = offload_measure ~depth () in
  Format.printf "%a@." Experiments.pp_offload (rows, points);
  let json = offload_json ~depth (rows, points) in
  let path = "BENCH_offload.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path;
  ignore (offload_failures (rows, points))

(* Scaled-down adaptive + faults acceptance gate, wired into `dune runtest`
   via the bench-smoke alias: fails the build if the controller stops
   converging or the fault machinery regresses. *)
let run_smoke () =
  let depth = 10
  and sessions = 12
  and closure = 8192
  and ratios = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let rows = Experiments.adaptive_fig4 ~depth ~ratios ~sessions ~closure () in
  print_string (adaptive_json ~depth ~sessions ~closure rows);
  let failures = report_acceptance rows in
  let ov = Experiments.measure_faults_overhead ~depth:10 () in
  let frows = Experiments.faults_sweep ~depth:7 ~sessions:4 () in
  print_string (faults_json ~depth:10 ~ratio:0.5 ~sessions:4 ov frows);
  let ffailures = faults_failures ov frows in
  let doff, doff2, don, drows = delta_measure ~depth:9 () in
  print_string (delta_json [ doff; don ] drows);
  let dfailures = delta_failures doff doff2 don drows in
  let trows = traffic_measure () in
  let json = traffic_json trows in
  print_string json;
  let oc = open_out "BENCH_traffic.json" in
  output_string oc json;
  close_out oc;
  let tfailures = traffic_failures trows in
  let srows = soak_measure () in
  let sjson = Srpc_traffic.Soak_json.report srows in
  print_string sjson;
  let oc = open_out "BENCH_soak.json" in
  output_string oc sjson;
  close_out oc;
  let sfailures = soak_failures srows in
  let odepth = 8 in
  let omeasure =
    offload_measure ~depth:odepth ~repeat_points:[ 1; 8; 32 ] ()
  in
  let ojson = offload_json ~depth:odepth omeasure in
  print_string ojson;
  let oc = open_out "BENCH_offload.json" in
  output_string oc ojson;
  close_out oc;
  let ofailures = offload_failures omeasure in
  if
    failures > 0 || ffailures > 0 || dfailures > 0 || tfailures > 0
    || sfailures > 0 || ofailures > 0
  then begin
    if failures > 0 then
      Printf.eprintf "bench-smoke: %d ratio(s) outside the 1.15x bound\n"
        failures;
    if ffailures > 0 then
      Printf.eprintf "bench-smoke: %d faults gate failure(s)\n" ffailures;
    if dfailures > 0 then
      Printf.eprintf "bench-smoke: %d delta gate failure(s)\n" dfailures;
    if tfailures > 0 then
      Printf.eprintf "bench-smoke: %d traffic gate failure(s)\n" tfailures;
    if sfailures > 0 then
      Printf.eprintf "bench-smoke: %d soak gate failure(s)\n" sfailures;
    if ofailures > 0 then
      Printf.eprintf "bench-smoke: %d offload gate failure(s)\n" ofailures;
    exit 1
  end

(* --- Bechamel microbenchmarks --- *)

let micro_tests () =
  let open Bechamel in
  (* Shared fixture: a two-site cluster with a small tree, session open,
     fully warmed cache at the callee. *)
  let cluster = Cluster.create ~cost:Srpc_simnet.Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  Tree.register_types cluster;
  let root = Tree.build a ~depth:8 in
  Node.register b "search" (fun node args ->
      match args with
      | [ rootv; limitv ] ->
        let visited, _ =
          Tree.visit node (Access.of_value rootv) ~limit:(Value.to_int limitv)
        in
        [ Value.int visited ]
      | _ -> assert false);
  Node.register b "noop" (fun _ _ -> []);
  Node.begin_session a;
  (* warm the callee's cache so per-iteration work is steady-state *)
  ignore
    (Node.call a ~dst:(Node.id b) "search"
       [ Access.to_value root; Value.int max_int ]);

  let reg = Cluster.registry cluster in
  let lp =
    Long_pointer.make ~origin:(Node.id a) ~addr:root.Access.addr ~ty:Tree.type_name
  in
  let fetch_frame =
    Wire.encode_request ~reg (Wire.Fetch { session = 1; wanted = [ lp ] })
  in

  [
    (* Table 1: the swizzling machinery itself — long-pointer to cache
       address translation on the hit path. *)
    Test.make ~name:"table1/swizzle-hit"
      (Staged.stage (fun () -> ignore (Node.swizzle b (Some lp))));
    Test.make ~name:"table1/unswizzle"
      (Staged.stage (fun () ->
           ignore (Node.unswizzle a ~ty:Tree.type_name root.Access.addr)));
    (* Fig 4: one complete smart RPC (call + return + coherency). *)
    Test.make ~name:"fig4/rpc-tree-search"
      (Staged.stage (fun () ->
           ignore
             (Node.call a ~dst:(Node.id b) "search"
                [ Access.to_value root; Value.int 64 ])));
    Test.make ~name:"fig4/rpc-noop"
      (Staged.stage (fun () -> ignore (Node.call a ~dst:(Node.id b) "noop" [])));
    (* Fig 5: the per-callback CPU cost — decoding one Fetch frame. *)
    Test.make ~name:"fig5/fetch-frame-decode"
      (Staged.stage (fun () -> ignore (Wire.decode_request ~reg fetch_frame)));
    (* Fig 6: the closure engine's unit of work — type-directed encode of
       one tree node (XDR + pointer unswizzling). *)
    Test.make ~name:"fig6/encode-tree-node"
      (Staged.stage
         (let ctx =
            {
              Object_codec.enc_reg = reg;
              enc_arch = Srpc_memory.Address_space.arch (Node.space a);
              unswizzle = (fun ~ty w -> Node.unswizzle a ~ty w);
            }
          in
          let raw =
            Srpc_memory.Address_space.read_unchecked (Node.space a)
              ~addr:root.Access.addr ~len:16
          in
          fun () -> ignore (Object_codec.encode ctx ~ty:Tree.type_name raw)));
    (* Fig 7: the update path's unit of work — a cached field write
       through the MMU (steady state: page already writable). *)
    Test.make ~name:"fig7/cached-field-write"
      (Staged.stage
         (let p = Access.ptr ~ty:Tree.type_name (Node.swizzle b (Some lp)) in
          fun () -> Access.set_int b p ~field:"data" 42));
  ]

let run_micro () =
  let open Bechamel in
  let tests = micro_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let grouped = Test.make_grouped ~name:"srpc" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  Printf.printf "%-36s %14s\n" "microbenchmark" "ns/run";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Printf.printf "%-36s %14.1f\n" name est
         | Some _ | None -> Printf.printf "%-36s %14s\n" name "n/a")

(* --- driver --- *)

let all_sections =
  [
    ("table1", ("Table 1 - data allocation table", run_table1));
    ("fig4", ("Fig. 4 / Fig. 5 - three methods vs access ratio", run_fig45));
    ("fig6", ("Fig. 6 - closure size sweep", run_fig6));
    ("fig6b", ("Fig. 6 - descent-workload reading", run_fig6b));
    ("fig7", ("Fig. 7 - update performance", run_fig7));
    ("ablations", ("Ablations A1-A6", run_ablations));
    ("adaptive", ("Adaptive policy vs Fig. 4 statics", run_adaptive));
    ("faults", ("Faults: retry envelope overhead + chaos sweep", run_faults));
    ("delta", ("Delta coherency: dirty ranges vs full write-backs", run_delta));
    ("traffic", ("Concurrent-session traffic vs serialized baseline", run_traffic));
    ("soak", ("Chaos soak: recovery + overload protection under faults", run_soak));
    ("offload", ("Offload: traversal plans vs closure transfer", run_offload));
    ("smoke", ("Adaptive + faults + delta acceptance smoke (scaled down)", run_smoke));
    ("wan", ("Derived: Fig. 4 over a WAN link", run_wan));
    ("kv", ("Derived: remote B-tree key-value store", run_kv));
    ("scale", ("Derived: session width scaling", run_scale));
    ("manual", ("Derived: hand-written protocols vs transparency", run_manual));
    ("micro", ("Bechamel microbenchmarks (real time)", run_micro));
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | [] | [ _ ] -> List.map fst all_sections
    | _ :: args -> args
  in
  List.iter
    (fun key ->
      match List.assoc_opt key all_sections with
      | Some (title, f) -> section title f
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n" key
          (String.concat ", " (List.map fst all_sections));
        exit 1)
    requested

(* srpc — command-line driver for the Smart-RPC reproduction.

   Subcommands mirror the paper's evaluation: `table1`, `fig4`, `fig6`,
   `fig7`, `ablations` regenerate the corresponding table/figure with
   configurable parameters; `run` executes a single tree-search
   experiment with every knob exposed. *)

open Cmdliner
open Srpc_workloads
open Srpc_memory

(* --verbose turns on the runtime's debug logging (swizzles, faults,
   fetches, frames) on stderr. *)
let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log runtime events.")

let ratios_conv =
  let parse s =
    try Ok (List.map float_of_string (String.split_on_char ',' s))
    with Failure _ -> Error (`Msg "expected comma-separated floats")
  in
  let print ppf rs =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_float rs))
  in
  Arg.conv (parse, print)

let ints_conv =
  let parse s =
    try Ok (List.map int_of_string (String.split_on_char ',' s))
    with Failure _ -> Error (`Msg "expected comma-separated ints")
  in
  let print ppf xs =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_int xs))
  in
  Arg.conv (parse, print)

let arch_conv =
  let parse = function
    | "sparc32" -> Ok Arch.sparc32
    | "ilp32-le" -> Ok Arch.ilp32_le
    | "lp64-le" -> Ok Arch.lp64_le
    | "lp64-be" -> Ok Arch.lp64_be
    | s -> Error (`Msg ("unknown arch " ^ s ^ " (sparc32|ilp32-le|lp64-le|lp64-be)"))
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf a.Arch.name)

let method_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "eager" ] -> Ok Experiments.Fully_eager
    | [ "lazy" ] -> Ok Experiments.Fully_lazy
    | [ "proposed" ] -> Ok (Experiments.Proposed 8192)
    | [ "proposed"; n ] -> (
      match int_of_string_opt n with
      | Some n -> Ok (Experiments.Proposed n)
      | None -> Error (`Msg "proposed:<bytes>"))
    | _ -> Error (`Msg "expected eager | lazy | proposed[:<closure bytes>]")
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Experiments.method_name m))

let depth_arg =
  Arg.(value & opt int 15 & info [ "depth" ] ~docv:"D" ~doc:"Tree depth (2^D-1 nodes).")

let closure_arg =
  Arg.(value & opt int 8192 & info [ "closure" ] ~docv:"BYTES" ~doc:"Closure size.")

let default_ratios = List.init 11 (fun i -> float_of_int i /. 10.0)

let ratios_arg =
  Arg.(
    value
    & opt ratios_conv default_ratios
    & info [ "ratios" ] ~docv:"R,R,..." ~doc:"Access ratios to sweep.")

let pp_run tag (r : Experiments.run) =
  Printf.printf
    "%-20s %10.4f s | visited %7d | callbacks %6d | msgs %6d | bytes %9d | \
     faults %6d | cache pages %5d\n"
    tag r.Experiments.seconds r.visited r.callbacks r.messages r.bytes r.faults
    r.cache_pages

let table1_cmd =
  let run verbose =
    setup_logs verbose;
    Experiments.table1 Format.std_formatter ();
    Format.print_newline ()
  in
  Cmd.v (Cmd.info "table1" ~doc:"Render the paper's Table 1 example.")
    Term.(const run $ verbose_arg)

let fig4_cmd =
  let run depth ratios closure =
    Experiments.pp_fig4 Format.std_formatter
      (Experiments.fig4 ~depth ~ratios ~closure ());
    Format.print_newline ();
    Experiments.pp_fig5 Format.std_formatter
      (Experiments.fig4 ~depth ~ratios ~closure ());
    Format.print_newline ()
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Fig. 4/5: three methods vs access ratio.")
    Term.(const run $ depth_arg $ ratios_arg $ closure_arg)

let fig6_cmd =
  let depths =
    Arg.(
      value
      & opt ints_conv [ 14; 15; 16 ]
      & info [ "depths" ] ~docv:"D,D,..." ~doc:"Tree depths.")
  in
  let closures =
    Arg.(
      value
      & opt ints_conv [ 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536 ]
      & info [ "closures" ] ~docv:"B,B,..." ~doc:"Closure sizes (bytes).")
  in
  let repeats =
    Arg.(value & opt int 10 & info [ "repeats" ] ~docv:"N" ~doc:"Searches per call.")
  in
  let descents =
    Arg.(value & flag & info [ "descents" ]
           ~doc:"Use the path-descent reading of the workload.")
  in
  let run depths closures repeats descents =
    let rows =
      if descents then Experiments.fig6_descents ~depths ~closures ~paths:repeats ()
      else Experiments.fig6 ~depths ~closures ~repeats ()
    in
    Experiments.pp_fig6 Format.std_formatter rows;
    Format.print_newline ()
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Fig. 6: closure-size sweep with repeated searches.")
    Term.(const run $ depths $ closures $ repeats $ descents)

let fig7_cmd =
  let run depth ratios closure =
    Experiments.pp_fig7 Format.std_formatter
      (Experiments.fig7 ~depth ~ratios ~closure ());
    Format.print_newline ()
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Fig. 7: update performance vs update ratio.")
    Term.(const run $ depth_arg $ ratios_arg $ closure_arg)

let kv_cmd =
  let keys = Arg.(value & opt int 4000 & info [ "keys" ] ~docv:"N") in
  let run keys =
    Experiments.pp_kv Format.std_formatter (Experiments.kv_store ~keys ());
    Format.print_newline ()
  in
  Cmd.v
    (Cmd.info "kv" ~doc:"Remote B-tree key-value store under the three methods.")
    Term.(const run $ keys)

let wan_cmd =
  let factor =
    Arg.(value & opt float 50.0 & info [ "latency-factor" ] ~docv:"F")
  in
  let run depth ratios closure factor =
    Experiments.pp_fig4 Format.std_formatter
      (Experiments.fig4_wan ~depth ~ratios ~closure ~latency_factor:factor ());
    Format.print_newline ()
  in
  Cmd.v
    (Cmd.info "wan" ~doc:"Fig. 4 with the caller-callee link behind a WAN.")
    Term.(const run $ depth_arg $ ratios_arg $ closure_arg $ factor)

let hints_cmd =
  let cells = Arg.(value & opt int 400 & info [ "cells" ] ~docv:"N") in
  let run cells closure =
    Experiments.pp_hint_rows Format.std_formatter
      (Experiments.ablation_closure_hints ~cells ~closure ());
    Format.print_newline ()
  in
  Cmd.v
    (Cmd.info "hints" ~doc:"Closure-hint ablation (paper section 6).")
    Term.(const run $ cells $ closure_arg)

let ablations_cmd =
  let run () =
    Experiments.pp_ablations Format.std_formatter
      ( Experiments.ablation_alloc_strategy (),
        Experiments.ablation_closure_shape (),
        Experiments.ablation_alloc_batching (),
        Experiments.ablation_writeback_grain () );
    Format.print_newline ()
  in
  Cmd.v (Cmd.info "ablations" ~doc:"Run the design-choice ablations A1-A4.")
    Term.(const run $ const ())

let run_cmd =
  let method_arg =
    Arg.(
      value
      & opt method_conv (Experiments.Proposed 8192)
      & info [ "method" ] ~docv:"M" ~doc:"eager | lazy | proposed[:bytes].")
  in
  let ratio_arg =
    Arg.(value & opt float 1.0 & info [ "ratio" ] ~docv:"R" ~doc:"Access ratio.")
  in
  let update_arg =
    Arg.(value & flag & info [ "update" ] ~doc:"Update every visited node.")
  in
  let repeats_arg =
    Arg.(value & opt int 1 & info [ "repeats" ] ~docv:"N" ~doc:"Calls per session.")
  in
  let caller_arch =
    Arg.(value & opt arch_conv Arch.sparc32 & info [ "caller-arch" ] ~docv:"A")
  in
  let callee_arch =
    Arg.(value & opt arch_conv Arch.sparc32 & info [ "callee-arch" ] ~docv:"A")
  in
  let run verbose m depth ratio update repeats caller callee =
    setup_logs verbose;
    let r =
      Experiments.run_tree_search ~update ~repeats ~arches:(caller, callee)
        ~strategy:(Experiments.strategy_of_method m) ~depth ~ratio ()
    in
    pp_run (Experiments.method_name m) r
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one tree-search experiment with explicit knobs.")
    Term.(
      const run $ verbose_arg $ method_arg $ depth_arg $ ratio_arg $ update_arg
      $ repeats_arg $ caller_arch $ callee_arch)

let inspect_cmd =
  (* run a small traced scenario and dump the runtime's internal state:
     wire trace, callee introspection (data allocation table), final
     statistics *)
  let run verbose depth =
    setup_logs verbose;
    let cluster = Experiments.strategy_of_method (Experiments.Proposed 1024) |> fun strategy ->
      let cluster = Srpc_core.Cluster.create () in
      let a = Srpc_core.Cluster.add_node cluster ~site:1 ~strategy () in
      let b = Srpc_core.Cluster.add_node cluster ~site:2 ~strategy () in
      Srpc_workloads.Tree.register_types cluster;
      let root = Srpc_workloads.Tree.build a ~depth in
      Srpc_core.Node.register b "visit" (fun node args ->
          let open Srpc_core in
          let visited, _ =
            Srpc_workloads.Tree.visit node (Access.of_value (List.hd args))
              ~limit:max_int
          in
          [ Value.int visited ]);
      let trace = Srpc_simnet.Trace.create () in
      Srpc_simnet.Transport.set_trace (Srpc_core.Cluster.transport cluster) (Some trace);
      Srpc_core.Node.begin_session a;
      ignore
        (Srpc_core.Node.call a ~dst:(Srpc_core.Node.id b) "visit"
           [ Srpc_core.Access.to_value root ]);
      Format.printf "wire trace:@.%a@.@." Srpc_simnet.Trace.pp trace;
      Format.printf "callee state before teardown:@.%a@." Srpc_core.Introspect.pp b;
      Srpc_core.Node.end_session a;
      cluster
    in
    Format.printf "@.final statistics: %a@.simulated time: %.6f s@."
      Srpc_simnet.Stats.pp_snapshot
      (Srpc_core.Cluster.snapshot cluster)
      (Srpc_core.Cluster.now cluster)
  in
  let depth = Arg.(value & opt int 5 & info [ "depth" ] ~docv:"D") in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Trace a small RPC and dump the runtime's state.")
    Term.(const run $ verbose_arg $ depth)

(* --- lint: static descriptor analysis + session-protocol verification --- *)

(* Every type the shipped examples and workloads register, combined in
   one registry: the linter's "shipped surface". Keep in sync with
   examples/ and lib/workloads (the example-local descriptors are
   repeated here verbatim). *)
let example_registry () =
  let module T = Srpc_types.Type_desc in
  let cluster = Srpc_core.Cluster.create () in
  Tree.register_types cluster;
  Linked_list.register_types cluster;
  Btree.register_types cluster;
  Graph.register_types cluster;
  Hash_table.register_types cluster;
  Matrix.register_types cluster;
  (* examples/nested_session.ml *)
  Srpc_core.Cluster.register_type cluster "counter"
    (T.Struct [ ("value", T.i64) ]);
  (* lib/workloads/experiments.ml, closure-hint ablation *)
  Srpc_core.Cluster.register_type cluster "blob"
    (T.Struct [ ("payload", T.Array (T.f64, 64)) ]);
  Srpc_core.Cluster.register_type cluster "rcell"
    (T.Struct
       [ ("next", T.ptr "rcell"); ("blob", T.ptr "blob"); ("tag", T.i64) ]);
  Srpc_core.Cluster.registry cluster

(* A scripted session that exercises the whole protocol — nested calls,
   a callback into the ground space, dirty data, the session-close
   write-back and invalidation — recorded as a trace for the verifier. *)
let traced_session () =
  let open Srpc_core in
  let cluster = Cluster.create () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let c = Cluster.add_node cluster ~site:3 () in
  Linked_list.register_types cluster;
  let trace = Srpc_simnet.Trace.create () in
  Srpc_simnet.Transport.set_trace (Cluster.transport cluster) (Some trace);
  Node.register a "bonus" (fun _ _ -> [ Value.int 1 ]);
  Node.register c "sum" (fun node args ->
      let p = Access.of_value (List.hd args) in
      let bonus =
        match Node.call node ~dst:(Node.id a) "bonus" [] with
        | [ v ] -> Value.to_int v
        | _ -> 0
      in
      (* dirty one cell so the session close has data to write back *)
      let v = Access.get_int node p ~field:"value" in
      Access.set_int node p ~field:"value" (v + bonus);
      [ Value.int (Linked_list.sum node p) ]);
  Node.register b "relay" (fun node args ->
      Node.call node ~dst:(Node.id c) "sum" args);
  let head = Linked_list.build a [ 1; 2; 3; 4 ] in
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "relay" [ Access.to_value head ]));
  trace

let report_diags header diags =
  let module D = Srpc_analysis.Diagnostic in
  if diags = [] then Format.printf "%s: ok, 0 findings@." header
  else
    Format.printf "%s: %d finding(s), %d error(s)@.%a@." header
      (List.length diags) (D.count_errors diags) D.pp_list diags;
  D.count_errors diags

let lint_cmd =
  let types_flag =
    Arg.(value & flag & info [ "types" ]
           ~doc:"Lint the type descriptors registered by the shipped \
                 examples and workloads.")
  in
  let trace_flag =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Record a representative session and verify the trace \
                 against the protocol invariants.")
  in
  let races_flag =
    Arg.(value & flag & info [ "races" ]
           ~doc:"Replay the representative session through the \
                 happens-before race checker.")
  in
  let footprints_flag =
    Arg.(value & flag & info [ "footprints" ]
           ~doc:"Compute per-session static footprints for a sample \
                 generated check script and report which session pairs \
                 could safely overlap.")
  in
  let all_flag = Arg.(value & flag & info [ "all" ] ~doc:"Run every engine.") in
  let rules_flag =
    Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule catalogue and exit.")
  in
  let markdown_flag =
    Arg.(value & flag & info [ "markdown" ]
           ~doc:"With --rules, render the catalogue as the markdown table \
                 embedded in docs/RULES.md.")
  in
  let arches_arg =
    Arg.(
      value
      & opt (list arch_conv) [ Arch.sparc32 ]
      & info [ "arch" ] ~docv:"A,A,..."
          ~doc:"Architectures the registry must agree on (the TD005 \
                divergence rule needs at least two).")
  in
  let run verbose types trace races footprints all rules markdown arches =
    setup_logs verbose;
    if rules then
      (if markdown then Srpc_analysis.Diagnostic.pp_rules_markdown
       else Srpc_analysis.Diagnostic.pp_rules)
        Format.std_formatter ()
    else begin
      let types = types || all in
      let trace = trace || all in
      let races = races || all in
      let footprints = footprints || all in
      if not (types || trace || races || footprints) then begin
        prerr_endline
          "lint: nothing to do (pass --types, --trace, --races, --footprints \
           or --all)";
        exit 2
      end;
      let errors = ref 0 in
      if types then
        errors :=
          !errors
          + report_diags "descriptor lint"
              (Srpc_analysis.Desc_lint.check ~arches (example_registry ()));
      if trace then
        errors :=
          !errors
          + report_diags "protocol trace"
              (Srpc_analysis.Proto_lint.check (traced_session ()));
      if races then
        errors :=
          !errors
          + report_diags "race check (representative session)"
              (Srpc_analysis.Race_lint.check (traced_session ()));
      if footprints then begin
        (* serial sessions of one script interfering is expected — the
           report says which pairs PR 7's admission could overlap, so
           it never contributes to the error exit *)
        let module C = Srpc_check in
        let module F = Srpc_analysis.Footprint in
        let plan = C.Script.resolve (C.Runner.script_for ~depth:12 ~faults:0.0 0) in
        let fps = C.Plan_footprint.sessions plan in
        Format.printf "session footprints (generated check script, seed 0):@.";
        List.iter (fun fp -> Format.printf "%a@." F.pp fp) fps;
        Format.printf "pairwise interference:@.";
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if j > i then
                  match F.interferes a b with
                  | [] ->
                      Format.printf "  %s x %s: disjoint — could overlap@."
                        a.F.label b.F.label
                  | ds ->
                      Format.printf "  %s x %s: must stay serial (%s)@."
                        a.F.label b.F.label
                        (String.concat ", "
                           (List.sort_uniq String.compare
                              (List.map
                                 (fun d ->
                                   d.Srpc_analysis.Diagnostic.rule_id)
                                 ds))))
              fps)
          fps
      end;
      if !errors > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis (type descriptors, session footprints) and \
             trace verification (protocol invariants, happens-before \
             races); non-zero exit on error findings.")
    Term.(
      const run $ verbose_arg $ types_flag $ trace_flag $ races_flag
      $ footprints_flag $ all_flag $ rules_flag $ markdown_flag $ arches_arg)

let check_cmd =
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N"
           ~doc:"Number of generation seeds to run (0 .. N-1).")
  in
  let depth_arg =
    Arg.(value & opt int 25 & info [ "depth" ] ~docv:"D"
           ~doc:"Operations per generated script.")
  in
  let faults_arg =
    Arg.(value & opt float 0.0 & info [ "faults" ] ~docv:"P"
           ~doc:"Frame-drop probability for the fault schedule; when \
                 positive, every odd seed runs with faults injected \
                 (drop P, duplicate P/2).")
  in
  let replay_arg =
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE"
           ~doc:"Rerun one committed repro file byte-for-byte instead of \
                 generating scripts.")
  in
  let out_arg =
    Arg.(value & opt string "srpc-check-repro.sexp"
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Where to write the shrunk reproducer on failure.")
  in
  let dump_arg =
    Arg.(value & opt (some int) None & info [ "dump" ] ~docv:"SEED"
           ~doc:"Write the script generated for $(docv) (honouring --depth \
                 and --faults) to --out and exit, without running it.")
  in
  let module C = Srpc_check in
  let show_script ppf s = C.Script.pp ppf s in
  let run verbose seeds depth faults replay dump out =
    setup_logs verbose;
    match (replay, dump) with
    | _, Some seed ->
      let script = C.Runner.script_for ~depth ~faults seed in
      let oc = open_out out in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc (C.Sexp.to_string (C.Script.to_sexp ~seed script));
          output_char oc '\n');
      Format.printf "check: script for seed %d written to %s@." seed out
    | Some file, None ->
      let contents =
        let ic = open_in_bin file in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
            really_input_string ic (in_channel_length ic))
      in
      let gen_seed, script =
        try C.Script.of_sexp (C.Sexp.of_string contents)
        with C.Sexp.Parse_error msg ->
          Format.eprintf "check: cannot parse %s: %s@." file msg;
          exit 2
      in
      (match C.Runner.replay script with
      | Ok () ->
        Format.printf "check: repro %s (seed %d) passes — all oracles agree@."
          file gen_seed
      | Error msg ->
        Format.printf "check: repro %s (seed %d) still fails:@,  %s@." file
          gen_seed msg;
        exit 1)
    | None, None -> (
      if seeds <= 0 then begin
        prerr_endline "check: --seeds must be positive";
        exit 2
      end;
      match C.Runner.check ~seeds ~depth ~faults () with
      | C.Runner.Ok stats ->
        Format.printf
          "check: %d runs ok (%d completed, %d clean aborts, %d with faults) — \
           zero oracle or protocol violations@."
          stats.C.Runner.runs stats.C.Runner.completed stats.C.Runner.aborted
          stats.C.Runner.fault_runs
      | C.Runner.Failed { seed; failure; shrunk; shrunk_failure; shrink_evals; _ }
        ->
        Format.printf "check: seed %d FAILED: %a@." seed C.Runner.pp_failure
          failure;
        Format.printf
          "check: shrunk to %d op(s) in %d evaluations, still failing: %a@."
          (List.length shrunk.C.Script.ops)
          shrink_evals C.Runner.pp_failure shrunk_failure;
        Format.printf "@[<v>%a@]@." show_script shrunk;
        let oc = open_out out in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
            output_string oc (C.Sexp.to_string (C.Script.to_sexp ~seed shrunk));
            output_char oc '\n');
        Format.printf "check: reproducer written to %s (rerun with `srpc \
                       check --replay %s`)@."
          out out;
        exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Deterministic model checking: run generated scripts against \
             the sequential oracle and the protocol verifier, shrinking \
             any failure to a minimal reproducer.")
    Term.(
      const run $ verbose_arg $ seeds_arg $ depth_arg $ faults_arg $ replay_arg
      $ dump_arg $ out_arg)

let traffic_cmd =
  let module T = Srpc_traffic.Traffic in
  let module C = Srpc_check in
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N"
           ~doc:"Concurrent client (session ground) nodes.")
  in
  let servers_arg =
    Arg.(value & opt int 4 & info [ "servers" ] ~docv:"N"
           ~doc:"Shared server nodes (2-8).")
  in
  let rate_arg =
    Arg.(value & opt float 400.0 & info [ "rate" ] ~docv:"R"
           ~doc:"Poisson session arrivals per virtual second, per client.")
  in
  let mix_conv =
    let kind_of_string = function
      | "list" -> Ok C.Script.KList
      | "tree" -> Ok C.Script.KTree
      | "graph" -> Ok C.Script.KGraph
      | "wide" -> Ok C.Script.KWide
      | k -> Error (`Msg (Printf.sprintf "unknown workload kind %S" k))
    in
    let parse s =
      List.fold_left
        (fun acc k ->
          Result.bind acc (fun ks ->
              Result.map (fun k -> k :: ks) (kind_of_string k)))
        (Ok [])
        (String.split_on_char ',' s)
      |> Result.map List.rev
    in
    let print ppf ks =
      Format.pp_print_string ppf
        (String.concat ","
           (List.map
              (function
                | C.Script.KList -> "list"
                | C.Script.KTree -> "tree"
                | C.Script.KGraph -> "graph"
                | C.Script.KWide -> "wide")
              ks))
    in
    Arg.conv (parse, print)
  in
  let mix_arg =
    Arg.(value & opt mix_conv [ C.Script.KList; C.Script.KTree ]
         & info [ "mix" ] ~docv:"KINDS"
             ~doc:"Comma-separated workload kinds cycled across sessions \
                   (list, tree, graph, wide).")
  in
  let sessions_arg =
    Arg.(value & opt int 4 & info [ "sessions" ] ~docv:"N"
           ~doc:"Sessions per client.")
  in
  let seeds_arg =
    Arg.(value & opt ints_conv [ 0 ] & info [ "seeds" ] ~docv:"S,S,..."
           ~doc:"Seeds to run; one result row per seed.")
  in
  let hot_arg =
    Arg.(value & flag & info [ "hot" ]
           ~doc:"Point every session at one shared datum root (full \
                 contention) instead of per-client disjoint roots.")
  in
  let abort_retry_arg =
    Arg.(value & flag & info [ "abort-retry" ]
           ~doc:"Resolve admission conflicts by abort + backoff retry \
                 instead of FIFO queueing.")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_traffic.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let run verbose clients servers rate mix sessions seeds hot abort_retry out =
    setup_logs verbose;
    let cfg seed =
      {
        T.default with
        T.clients;
        servers;
        rate;
        mix;
        sessions_per_client = sessions;
        seed;
        policy =
          (if abort_retry then Srpc_core.Strategy.Abort_retry
           else Srpc_core.Strategy.Queue_conflicts);
        contention = (if hot then T.Hot else T.Disjoint);
      }
    in
    let rows =
      List.map (fun seed -> (seed, cfg seed, T.compare_runs (cfg seed))) seeds
    in
    List.iter
      (fun (seed, _, (cmp : T.comparison)) ->
        let c = cmp.T.concurrent in
        Format.printf
          "seed %d: %d/%d committed  tput %.1f/s (serialized %.1f/s, \
           x%.2f)  p50 %.4fs p95 %.4fs p99 %.4fs@."
          seed c.T.r_committed c.T.r_sessions c.T.r_throughput
          cmp.T.serialized.T.r_throughput cmp.T.speedup c.T.r_p50 c.T.r_p95
          c.T.r_p99;
        Format.printf
          "        admitted %d queued %d denied %d retried %d \
           validation-failed %d races %d proto %d@."
          c.T.r_admitted c.T.r_queued c.T.r_denied c.T.r_retried
          c.T.r_validation_failed c.T.r_race_errors c.T.r_proto_errors)
      rows;
    let oc = open_out out in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc
          (Srpc_traffic.Traffic_json.report ~clients ~servers ~rate
             ~sessions rows));
    Format.printf "traffic: wrote %s@." out;
    if
      List.exists
        (fun (_, _, (cmp : T.comparison)) ->
          cmp.T.concurrent.T.r_race_errors > 0
          || cmp.T.concurrent.T.r_proto_errors > 0)
        rows
    then exit 1
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:"Open-loop concurrent-session traffic: Poisson arrivals over N \
             clients vs the serialized baseline, with admission counters \
             and latency percentiles written as JSON.")
    Term.(
      const run $ verbose_arg $ clients_arg $ servers_arg $ rate_arg $ mix_arg
      $ sessions_arg $ seeds_arg $ hot_arg $ abort_retry_arg $ out_arg)

let soak_cmd =
  let module S = Srpc_traffic.Soak in
  let module T = Srpc_traffic.Traffic in
  let clients_arg =
    Arg.(value & opt int S.default.S.clients
         & info [ "clients" ] ~docv:"N"
             ~doc:"Concurrent client (session ground) nodes.")
  in
  let servers_arg =
    Arg.(value & opt int S.default.S.servers
         & info [ "servers" ] ~docv:"N" ~doc:"Shared server nodes (2-8).")
  in
  let rate_arg =
    Arg.(value & opt float S.default.S.rate & info [ "rate" ] ~docv:"R"
           ~doc:"Poisson session arrivals per virtual second, per client.")
  in
  let horizon_arg =
    Arg.(value & opt float S.default.S.horizon & info [ "horizon" ] ~docv:"S"
           ~doc:"Virtual seconds of offered arrivals.")
  in
  let drop_arg =
    Arg.(value & opt float S.default.S.drop & info [ "drop" ] ~docv:"P"
           ~doc:"Per-frame drop probability.")
  in
  let crash_period_arg =
    Arg.(value & opt float S.default.S.crash_period
         & info [ "crash-period" ] ~docv:"S"
             ~doc:"Virtual seconds between planned server crashes (0 \
                   disables the crash schedule).")
  in
  let outage_arg =
    Arg.(value & opt float S.default.S.outage & info [ "outage" ] ~docv:"S"
           ~doc:"How long each crashed server stays down.")
  in
  let queue_cap_arg =
    Arg.(value & opt int S.default.S.queue_cap
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Admission conflict-queue bound.")
  in
  let retry_budget_arg =
    Arg.(value & opt int S.default.S.retry_budget
         & info [ "retry-budget" ] ~docv:"N"
             ~doc:"Admission deferral budget per session id.")
  in
  let seeds_arg =
    Arg.(value & opt ints_conv [ 0 ] & info [ "seeds" ] ~docv:"S,S,..."
           ~doc:"Seeds to run; one result row per seed (overridden by the \
                 SRPC_SEED environment variable).")
  in
  let hot_arg =
    Arg.(value & flag & info [ "hot" ]
           ~doc:"Point every session at one shared datum root (full \
                 contention) instead of per-client disjoint roots.")
  in
  let abort_retry_arg =
    Arg.(value & flag & info [ "abort-retry" ]
           ~doc:"Resolve admission conflicts by abort + backoff retry \
                 instead of FIFO queueing.")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_soak.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let run verbose clients servers rate horizon drop crash_period outage
      queue_cap retry_budget seeds hot abort_retry out =
    setup_logs verbose;
    let seeds =
      match Sys.getenv_opt "SRPC_SEED" with
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> [ n ]
        | None -> seeds)
      | None -> seeds
    in
    let cfg seed =
      {
        S.default with
        S.clients;
        servers;
        rate;
        horizon;
        drop;
        crash_period;
        outage;
        queue_cap;
        retry_budget;
        seed;
        policy =
          (if abort_retry then Srpc_core.Strategy.Abort_retry
           else Srpc_core.Strategy.Queue_conflicts);
        contention = (if hot then T.Hot else T.Disjoint);
      }
    in
    let rows =
      List.map
        (fun seed ->
          let c = cfg seed in
          (Printf.sprintf "seed%d" seed, c, S.compare_runs c))
        seeds
    in
    List.iter
      (fun (label, _, (cmp : S.comparison)) ->
        let c = cmp.S.chaos in
        Format.printf
          "%s: %d/%d committed (%.2f%%), %d failed, %d aborted, %d \
           recovered  p50 %.4fs p99 %.4fs (fault-free p99 %.4fs, x%.2f)@."
          label c.S.s_committed c.S.s_sessions (100.0 *. c.S.s_completion)
          c.S.s_failed c.S.s_aborts c.S.s_recovered c.S.s_p50 c.S.s_p99
          cmp.S.fault_free.S.s_p99 cmp.S.p99_ratio;
        Format.printf
          "        crashes %d revives %d heartbeats %d suspicions %d sheds \
           %d breaker-trips %d recoveries %d validation-failed %d races %d \
           proto %d@."
          c.S.s_crashes c.S.s_revives c.S.s_heartbeats c.S.s_suspicions
          c.S.s_sheds c.S.s_breaker_trips c.S.s_recoveries
          c.S.s_validation_failed c.S.s_race_errors c.S.s_proto_errors)
      rows;
    let oc = open_out out in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc (Srpc_traffic.Soak_json.report rows));
    Format.printf "soak: wrote %s@." out;
    if
      List.exists
        (fun (_, _, (cmp : S.comparison)) ->
          cmp.S.chaos.S.s_validation_failed > 0
          || cmp.S.chaos.S.s_race_errors > 0
          || cmp.S.chaos.S.s_proto_errors > 0)
        rows
    then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Chaos soak: open-loop traffic over a long virtual-time horizon \
             under frame drops and periodic server crash/revive cycles, \
             with liveness detection, session recovery and overload \
             protection armed; writes completion, latency and robustness \
             counters as JSON.")
    Term.(
      const run $ verbose_arg $ clients_arg $ servers_arg $ rate_arg
      $ horizon_arg $ drop_arg $ crash_period_arg $ outage_arg
      $ queue_cap_arg $ retry_budget_arg $ seeds_arg $ hot_arg
      $ abort_retry_arg $ out_arg)

let offload_cmd =
  let depth_arg =
    Arg.(value & opt int 10 & info [ "depth" ] ~docv:"D"
           ~doc:"Tree depth of the traversed structure.")
  in
  let repeats_arg =
    Arg.(value & opt ints_conv Experiments.default_offload_repeats
         & info [ "repeats" ] ~docv:"K,K,..."
             ~doc:"Reuse counts swept: traversals per session.")
  in
  let sessions_arg =
    Arg.(value & opt int 24 & info [ "sessions" ] ~docv:"N"
           ~doc:"Sessions the adaptive learner observes per repeat point.")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_offload.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let run verbose depth repeats sessions out =
    setup_logs verbose;
    let rows = Experiments.offload_sweep ~depth ~repeat_points:repeats () in
    let points = Experiments.offload_adaptive_sweep ~depth ~sessions () in
    Format.printf "%a@." Experiments.pp_offload (rows, points);
    let jrun (r : Experiments.offload_run) =
      Printf.sprintf
        "{\"seconds\": %.6f, \"messages\": %d, \"bytes\": %d, \
         \"offload_calls\": %d, \"result\": %d}"
        r.Experiments.of_seconds r.Experiments.of_messages
        r.Experiments.of_bytes r.Experiments.of_offload_calls
        r.Experiments.of_result
    in
    let b = Buffer.create 2048 in
    Printf.bprintf b
      "{\n  \"experiment\": \"offload\",\n  \"depth\": %d,\n  \"rows\": [\n"
      depth;
    let n = List.length rows in
    List.iteri
      (fun i (r : Experiments.offload_row) ->
        Printf.bprintf b
          "    {\"repeats\": %d, \"eager\": %s, \"lazy\": %s, \
           \"offload\": %s}%s\n"
          r.Experiments.of_repeats
          (jrun r.Experiments.of_eager)
          (jrun r.Experiments.of_lazy)
          (jrun r.Experiments.of_always)
          (if i = n - 1 then "" else ","))
      rows;
    Buffer.add_string b "  ],\n  \"adaptive\": [\n";
    let m = List.length points in
    List.iteri
      (fun i (p : Experiments.offload_adaptive_point) ->
        Printf.bprintf b
          "    {\"repeats\": %d, \"choice\": %S, \"run\": %s}%s\n"
          p.Experiments.oa_repeats p.Experiments.oa_choice
          (jrun p.Experiments.oa_run)
          (if i = m - 1 then "" else ","))
      points;
    Buffer.add_string b "  ]\n}\n";
    let oc = open_out out in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc (Buffer.contents b));
    Format.printf "offload: wrote %s@." out;
    (* transparency is non-negotiable: every arm must compute the same
       traversal result at every repeat point *)
    if
      List.exists
        (fun (r : Experiments.offload_row) ->
          let want = r.Experiments.of_eager.Experiments.of_result in
          r.Experiments.of_lazy.Experiments.of_result <> want
          || r.Experiments.of_always.Experiments.of_result <> want)
        rows
    then exit 1
  in
  Cmd.v
    (Cmd.info "offload"
       ~doc:"Traversal offloading: wire bytes per transfer mode and the \
             adaptive learner's choice as the reuse count K sweeps, written \
             as JSON.")
    Term.(
      const run $ verbose_arg $ depth_arg $ repeats_arg $ sessions_arg
      $ out_arg)

let () =
  let doc = "Smart Remote Procedure Calls (ICDCS 1994) reproduction driver" in
  let info = Cmd.info "srpc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd; fig4_cmd; fig6_cmd; fig7_cmd; ablations_cmd; kv_cmd;
            wan_cmd; hints_cmd; run_cmd; inspect_cmd; lint_cmd; check_cmd;
            traffic_cmd; soak_cmd; offload_cmd;
          ]))

(* Concurrent-session admission and the srpc-traffic generator.

   Four layers of evidence, from unit to end-to-end:
   - the Admission controller's decision table, FIFO no-barging drain,
     OCC validation and backoff arithmetic, in isolation;
   - the traffic generator itself: deterministic, disjoint clients
     overlap (>= 2x the serialized throughput at 8 clients), contended
     clients queue or abort-retry with live Stats counters;
   - the shared-counter workload: admission serializes conflicting
     bumps with no lost update, and with the conflict check chaosed off
     the close-time validation, Race_lint (CC101) and the protocol
     linter (SP008) all catch the overlap while the counter still ends
     exactly at the committed-bump count;
   - the pre-PR fingerprint: a single-session (legacy-mode) run's trace
     is byte-identical to the trace the tree produced before concurrent
     admission existed, pinned by digest. *)

open Srpc_core
open Srpc_simnet
open Srpc_analysis
open Srpc_check
open Srpc_traffic

(* {1 Admission unit tests} *)

let fp_of label regions =
  Footprint.session ~label
    (List.map
       (fun (root, mode) -> { Footprint.root; path = "*"; mode })
       regions)

let w root = (root, Footprint.Write)
let r root = (root, Footprint.Read)

let test_admission_disjoint () =
  let adm = Admission.create (Stats.create ()) in
  (match Admission.request adm ~session:1 (fp_of "a" [ w "x" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "first session not admitted");
  (match Admission.request adm ~session:2 (fp_of "b" [ w "y" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "disjoint session not admitted");
  (* two readers of the same (otherwise untouched) root do not conflict *)
  (match Admission.request adm ~session:3 (fp_of "c" [ r "z" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "first reader not admitted");
  (match Admission.request adm ~session:4 (fp_of "d" [ r "z" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "read-read treated as a conflict");
  (* a reader of a root an open session is writing does conflict *)
  (match Admission.request adm ~session:5 (fp_of "e" [ r "x" ]) with
  | Admission.Admitted -> Alcotest.fail "read admitted against an open writer"
  | _ -> ());
  Alcotest.(check int) "open" 4 (Admission.open_count adm)

let test_admission_queue_fifo () =
  let adm = Admission.create ~policy:Strategy.Queue_conflicts (Stats.create ()) in
  ignore (Admission.request adm ~session:1 (fp_of "a" [ w "x" ]));
  (match Admission.request adm ~session:2 (fp_of "b" [ w "x" ]) with
  | Admission.Queued -> ()
  | _ -> Alcotest.fail "conflicting session not queued");
  (* session 3 conflicts with QUEUED session 2 — it must not barge *)
  (match Admission.request adm ~session:3 (fp_of "c" [ w "x" ]) with
  | Admission.Queued -> ()
  | _ -> Alcotest.fail "younger conflicting session barged the queue");
  Alcotest.(check int) "queue" 2 (Admission.queue_length adm);
  let drained = Admission.close adm ~session:1 in
  (* FIFO: only session 2 comes out (3 conflicts with it) *)
  Alcotest.(check (list int)) "drain order" [ 2 ] (List.map fst drained);
  let drained = Admission.close adm ~session:2 in
  Alcotest.(check (list int)) "second drain" [ 3 ] (List.map fst drained)

let test_admission_abort_retry () =
  let stats = Stats.create () in
  let adm = Admission.create ~policy:Strategy.Abort_retry stats in
  ignore (Admission.request adm ~session:1 (fp_of "a" [ w "x" ]));
  (match Admission.request adm ~session:2 (fp_of "b" [ w "x" ]) with
  | Admission.Denied -> ()
  | _ -> Alcotest.fail "conflicting session not denied under abort-retry");
  ignore (Admission.close adm ~session:1);
  (match Admission.request adm ~session:2 (fp_of "b" [ w "x" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "retry after the holder left not admitted");
  let snap = Stats.snapshot stats in
  Alcotest.(check int) "denied counted" 1 snap.Stats.sessions_aborted;
  Alcotest.(check int) "retry counted" 1 snap.Stats.sessions_retried

let test_admission_validation () =
  let adm = Admission.create (Stats.create ()) in
  (* forced concurrent writers to the same root: the later closer must
     fail validation *)
  ignore (Admission.request ~force:true adm ~session:1 (fp_of "a" [ w "x" ]));
  ignore (Admission.request ~force:true adm ~session:2 (fp_of "b" [ w "x" ]));
  ignore (Admission.close adm ~session:1);
  Alcotest.(check bool) "loser fails validation" false
    (Admission.validate adm ~session:2);
  (* an uncontended root is unaffected *)
  ignore (Admission.request adm ~session:3 (fp_of "c" [ w "y" ]));
  Alcotest.(check bool) "disjoint session validates" true
    (Admission.validate adm ~session:3)

let test_backoff () =
  (* jittered capped exponential: delay = base * 2^min(attempt,6) * j
     with j drawn deterministically from (session, attempt) in
     [0.5, 1.5) *)
  let check_range name ~attempt ~expo =
    let d = Admission.backoff_delay ~session:7 ~attempt ~base:1e-3 in
    let lo = 0.5 *. expo *. 1e-3 and hi = 1.5 *. expo *. 1e-3 in
    if d < lo || d >= hi then
      Alcotest.failf "%s: %.6g outside jitter window [%.6g, %.6g)" name d lo hi
  in
  check_range "attempt 0" ~attempt:0 ~expo:1.0;
  check_range "attempt 3" ~attempt:3 ~expo:8.0;
  (* capped at 2^6 *)
  check_range "attempt 40" ~attempt:40 ~expo:64.0;
  (* deterministic: same (session, attempt) -> same delay *)
  Alcotest.(check (float 0.0)) "deterministic"
    (Admission.backoff_delay ~session:3 ~attempt:2 ~base:1e-3)
    (Admission.backoff_delay ~session:3 ~attempt:2 ~base:1e-3);
  (* the point of the jitter: distinct sessions denied at the same
     attempt spread out instead of re-colliding in lockstep *)
  let d1 = Admission.backoff_delay ~session:1 ~attempt:1 ~base:1e-3
  and d2 = Admission.backoff_delay ~session:2 ~attempt:1 ~base:1e-3 in
  if Float.abs (d1 -. d2) < 1e-6 then
    Alcotest.failf "sessions 1 and 2 got identical backoff %.6g" d1

(* {1 Overload protection: bounded queue, retry budget, breaker} *)

let test_admission_queue_cap () =
  let stats = Stats.create () in
  let adm =
    Admission.create ~policy:Strategy.Queue_conflicts ~queue_cap:1 stats
  in
  ignore (Admission.request adm ~session:1 (fp_of "a" [ w "x" ]));
  (match Admission.request adm ~session:2 (fp_of "b" [ w "x" ]) with
  | Admission.Queued -> ()
  | _ -> Alcotest.fail "first conflict not queued");
  (match Admission.request adm ~session:3 (fp_of "c" [ w "x" ]) with
  | Admission.Overloaded Admission.Queue_full -> ()
  | _ -> Alcotest.fail "full queue did not shed");
  Alcotest.(check int) "queue stayed bounded" 1 (Admission.queue_length adm);
  Alcotest.(check int) "shed counted" 1 (Stats.snapshot stats).Stats.sheds;
  (* the shed is terminal but not fatal: once the queue drains, the same
     reserved id is admitted by a fresh request *)
  ignore (Admission.close adm ~session:1);
  ignore (Admission.close adm ~session:2);
  match Admission.request adm ~session:3 (fp_of "c" [ w "x" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "shed session not admitted after the queue drained"

let test_admission_retry_budget () =
  let stats = Stats.create () in
  let adm =
    Admission.create ~policy:Strategy.Abort_retry ~retry_budget:2 stats
  in
  ignore (Admission.request adm ~session:1 (fp_of "a" [ w "x" ]));
  for _ = 1 to 2 do
    match Admission.request adm ~session:2 (fp_of "b" [ w "x" ]) with
    | Admission.Denied -> ()
    | _ -> Alcotest.fail "in-budget conflict not denied"
  done;
  (match Admission.request adm ~session:2 (fp_of "b" [ w "x" ]) with
  | Admission.Overloaded Admission.Retry_budget -> ()
  | _ -> Alcotest.fail "exhausted budget did not shed");
  Alcotest.(check int) "shed counted" 1 (Stats.snapshot stats).Stats.sheds

(* A two-node cluster the detector can actually probe: the node answers
   heartbeats from its transport dispatcher, and the fault plan lets the
   test crash and revive it. *)
let health_fixture () =
  let cluster = Cluster.create () in
  let node = Cluster.add_node cluster ~site:1 () in
  Cluster.install_faults cluster (Fault_plan.create ());
  let h =
    Health.create ~src:"monitor" ~registry:(Cluster.registry cluster)
      ~stats:(Cluster.stats cluster)
      (Cluster.transport cluster)
  in
  (cluster, h, Srpc_memory.Space_id.to_string (Node.id node))

let test_health_ladder () =
  let cluster, h, ep = health_fixture () in
  Health.watch h ep;
  Alcotest.(check bool) "initially available" true (Health.available h ep);
  (match Health.probe h ep with
  | Health.Alive -> ()
  | _ -> Alcotest.fail "answered probe left the peer un-alive");
  Transport.crash (Cluster.transport cluster) ep;
  (* suspect_after = 2 consecutive misses, confirm_after = 4 *)
  ignore (Health.probe h ep);
  (match Health.probe h ep with
  | Health.Suspected -> ()
  | _ -> Alcotest.fail "2 misses did not suspect");
  Alcotest.(check bool) "suspected peer unavailable" false
    (Health.available h ep);
  ignore (Health.probe h ep);
  (match Health.probe h ep with
  | Health.Dead -> ()
  | _ -> Alcotest.fail "4 misses did not confirm death");
  Transport.revive (Cluster.transport cluster) ep;
  (match Health.probe h ep with
  | Health.Alive -> ()
  | _ -> Alcotest.fail "answered probe did not revive the peer");
  Alcotest.(check int) "revival recorded" 1 (Health.revivals h ep);
  let snap = Cluster.snapshot cluster in
  Alcotest.(check int) "every probe counted" 6 snap.Stats.heartbeats_sent;
  Alcotest.(check int) "one suspicion counted" 1 snap.Stats.suspicions

let test_health_observe () =
  (* ground-truth crash/revive marks fold into the detector without
     waiting out a probe cycle *)
  let cluster, h, ep = health_fixture () in
  Health.watch h ep;
  let trace = Trace.create () in
  Transport.set_trace (Cluster.transport cluster) (Some trace);
  Transport.crash (Cluster.transport cluster) ep;
  let cursor = Health.observe h trace ~from:0 in
  (match Health.state h ep with
  | Health.Dead -> ()
  | _ -> Alcotest.fail "crash mark did not mark the peer dead");
  Transport.revive (Cluster.transport cluster) ep;
  ignore (Health.observe h trace ~from:cursor);
  (match Health.state h ep with
  | Health.Alive -> ()
  | _ -> Alcotest.fail "revive mark's confirming probe did not restore");
  Alcotest.(check int) "revival recorded" 1 (Health.revivals h ep)

let test_admission_breaker () =
  let cluster, h, ep = health_fixture () in
  Health.watch h ep;
  let stats = Cluster.stats cluster in
  let adm = Admission.create ~retry_budget:3 ~health:h stats in
  Transport.crash (Cluster.transport cluster) ep;
  ignore (Health.probe h ep);
  ignore (Health.probe h ep);
  (* suspected: the breaker must refuse sessions naming the peer... *)
  (match Admission.request adm ~peers:[ ep ] ~session:1 (fp_of "a" [ w "x" ]) with
  | Admission.Overloaded (Admission.Dead_peer e) ->
    Alcotest.(check string) "names the dead peer" ep e
  | _ -> Alcotest.fail "breaker did not trip on a suspected peer");
  (* ...without charging the session's retry budget *)
  (match Admission.request adm ~peers:[ ep ] ~session:1 (fp_of "a" [ w "x" ]) with
  | Admission.Overloaded (Admission.Dead_peer _) -> ()
  | _ -> Alcotest.fail "second breaker trip expected");
  let snap = Stats.snapshot stats in
  Alcotest.(check int) "trips counted" 2 snap.Stats.breaker_trips;
  Alcotest.(check int) "trips are not sheds" 0 snap.Stats.sheds;
  (* a session not touching the peer is unaffected *)
  (match Admission.request adm ~session:2 (fp_of "b" [ w "y" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "breaker blocked an unrelated session");
  Transport.revive (Cluster.transport cluster) ep;
  ignore (Health.probe h ep);
  match Admission.request adm ~peers:[ ep ] ~session:1 (fp_of "a" [ w "x" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "breaker still open after confirmed revival"

(* {1 Traffic} *)

let small = { Traffic.default with Traffic.sessions_per_client = 3 }

let test_traffic_deterministic () =
  let a = Traffic.run small and b = Traffic.run small in
  if a <> b then Alcotest.fail "same config+seed gave two different results"

let test_traffic_disjoint_speedup () =
  let cmp = Traffic.compare_runs Traffic.default in
  let c = cmp.Traffic.concurrent in
  Alcotest.(check int) "all sessions committed" c.Traffic.r_sessions
    c.Traffic.r_committed;
  Alcotest.(check int) "no races" 0 c.Traffic.r_race_errors;
  Alcotest.(check int) "no protocol violations" 0 c.Traffic.r_proto_errors;
  Alcotest.(check int) "no validation failures" 0
    c.Traffic.r_validation_failed;
  if cmp.Traffic.speedup < 2.0 then
    Alcotest.failf
      "8 disjoint clients only reached %.2fx the serialized throughput"
      cmp.Traffic.speedup

let test_traffic_contended_queue () =
  let cfg =
    { small with Traffic.contention = Traffic.Hot;
      policy = Strategy.Queue_conflicts }
  in
  let res = Traffic.run cfg in
  Alcotest.(check int) "all sessions committed" res.Traffic.r_sessions
    res.Traffic.r_committed;
  if res.Traffic.r_queued = 0 then
    Alcotest.fail "hot contention never queued a session";
  Alcotest.(check int) "no races" 0 res.Traffic.r_race_errors;
  Alcotest.(check int) "no protocol violations" 0 res.Traffic.r_proto_errors

let test_traffic_contended_abort_retry () =
  let cfg =
    { small with Traffic.contention = Traffic.Hot;
      policy = Strategy.Abort_retry }
  in
  let res = Traffic.run cfg in
  Alcotest.(check int) "all sessions committed" res.Traffic.r_sessions
    res.Traffic.r_committed;
  if res.Traffic.r_denied = 0 then
    Alcotest.fail "hot contention never denied a session";
  if res.Traffic.r_retried = 0 then
    Alcotest.fail "denied sessions were never credited as retried";
  Alcotest.(check int) "no races" 0 res.Traffic.r_race_errors;
  Alcotest.(check int) "no protocol violations" 0 res.Traffic.r_proto_errors

(* {1 The shared counter: no lost update} *)

let test_counter_serializes () =
  List.iter
    (fun policy ->
      let o = Traffic.run_counter ~clients:6 ~seed:0 ~policy () in
      Alcotest.(check int) "every client committed" 6 o.Traffic.k_committed;
      Alcotest.(check int) "final = committed bumps" o.Traffic.k_committed
        o.Traffic.k_final;
      Alcotest.(check int) "no validation failures" 0
        o.Traffic.k_validation_failures;
      Alcotest.(check int) "no races" 0 o.Traffic.k_race_errors;
      Alcotest.(check int) "no protocol violations" 0 o.Traffic.k_proto_errors)
    [ Strategy.Queue_conflicts; Strategy.Abort_retry ]

let test_counter_chaos_detected () =
  (* bypassing admission makes the bump sessions overlap: validation
     must abort every loser (no lost update — the counter still ends at
     the committed count) and both linters must flag the overlap *)
  let o =
    Traffic.run_counter ~chaos:true ~clients:6 ~seed:0
      ~policy:Strategy.Queue_conflicts ()
  in
  Alcotest.(check int) "every client eventually committed" 6
    o.Traffic.k_committed;
  Alcotest.(check int) "final = committed bumps (no lost update)"
    o.Traffic.k_committed o.Traffic.k_final;
  if o.Traffic.k_validation_failures = 0 then
    Alcotest.fail "overlapping bumps never failed validation";
  if o.Traffic.k_race_errors = 0 then
    Alcotest.fail "Race_lint missed the chaos-admitted overlap (CC101)";
  if o.Traffic.k_proto_errors = 0 then
    Alcotest.fail "the protocol linter missed the overlap (SP008)"

(* {1 The chaos soak: recovery and overload protection, end to end} *)

(* A scaled-down chaos config that still exercises the full recovery
   path: two crash/revive cycles inside the horizon, drops on, recovery
   demonstrably fired (pinned by seed 0's schedule). *)
let soak_chaos =
  { Soak.default with Soak.horizon = 80.0; crash_period = 20.0 }

let test_soak_deterministic () =
  let a = Soak.run soak_chaos and b = Soak.run soak_chaos in
  if a <> b then Alcotest.fail "same config gave two different soak results"

let test_soak_recovery () =
  let r = Soak.run soak_chaos in
  Alcotest.(check int) "every session committed" r.Soak.s_sessions
    r.Soak.s_committed;
  Alcotest.(check int) "no lost updates" 0 r.Soak.s_validation_failed;
  Alcotest.(check int) "no races" 0 r.Soak.s_race_errors;
  Alcotest.(check int) "no protocol violations" 0 r.Soak.s_proto_errors;
  if r.Soak.s_crashes = 0 then Alcotest.fail "chaos schedule never ran";
  Alcotest.(check int) "every crash revived" r.Soak.s_crashes
    r.Soak.s_revives;
  if r.Soak.s_heartbeats = 0 then
    Alcotest.fail "the failure detector never probed";
  if r.Soak.s_recovered = 0 then
    Alcotest.fail "no session aborted by a crash was replayed to commit";
  Alcotest.(check int) "Stats.recoveries agrees" r.Soak.s_recovered
    r.Soak.s_recoveries;
  if r.Soak.s_breaker_trips = 0 then
    Alcotest.fail "the circuit breaker never held a session back"

let test_soak_overload_sheds () =
  (* deliberately overloaded: hot contention against a tiny queue and
     budget. The controller must shed (typed, counted), never corrupt —
     and the accounting must close: every session either committed or
     was abandoned by its client. *)
  let cfg =
    {
      Soak.default with
      Soak.contention = Traffic.Hot;
      horizon = 60.0;
      rate = 1.0;
      crash_period = 16.0;
      queue_cap = 2;
      retry_budget = 6;
    }
  in
  List.iter
    (fun policy ->
      let r = Soak.run { cfg with Soak.policy } in
      if r.Soak.s_sheds = 0 then
        Alcotest.fail "overload never shed a session";
      Alcotest.(check int) "accounting closes" r.Soak.s_sessions
        (r.Soak.s_committed + r.Soak.s_failed);
      Alcotest.(check int) "no lost updates" 0 r.Soak.s_validation_failed;
      Alcotest.(check int) "no races" 0 r.Soak.s_race_errors;
      Alcotest.(check int) "no protocol violations" 0 r.Soak.s_proto_errors)
    [ Strategy.Queue_conflicts; Strategy.Abort_retry ]

let test_soak_baseline_fault_free () =
  (* the fault-free baseline installs no fault plan and no detector:
     zero heartbeats, zero suspicions, zero chaos *)
  let b = Soak.baseline soak_chaos in
  Alcotest.(check int) "no crashes" 0 b.Soak.s_crashes;
  Alcotest.(check int) "no heartbeats" 0 b.Soak.s_heartbeats;
  Alcotest.(check int) "no suspicions" 0 b.Soak.s_suspicions;
  Alcotest.(check int) "no aborts" 0 b.Soak.s_aborts;
  Alcotest.(check int) "every session committed" b.Soak.s_sessions
    b.Soak.s_committed

(* {1 Single-session byte identity} *)

(* Digest of the full pp'd traces of five unfaulted legacy-mode checker
   runs, computed on the tree immediately before concurrent admission
   was added. Sessions that never opt into [Session.set_concurrent]
   must keep producing these exact bytes. *)
let pre_pr_fingerprint = "26a0510b3f30e198c808bc999dc63a64"

let test_single_session_fingerprint () =
  let buf = Buffer.create 65536 in
  List.iter
    (fun seed ->
      let script = Gen.script ~seed ~depth:12 ~fault:None in
      let plan = Script.resolve script in
      let out = Interp.run plan in
      Buffer.add_string buf
        (Format.asprintf "%a" Trace.pp out.Interp.trace))
    [ 0; 2; 3; 4; 6 ];
  let got = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  Alcotest.(check string) "single-session traces byte-identical to pre-PR"
    pre_pr_fingerprint got

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "traffic"
    [
      ( "admission",
        [
          tc "disjoint footprints admit" `Quick test_admission_disjoint;
          tc "conflicts queue FIFO, no barging" `Quick
            test_admission_queue_fifo;
          tc "abort-retry denies then admits" `Quick
            test_admission_abort_retry;
          tc "optimistic validation" `Quick test_admission_validation;
          tc "capped exponential backoff" `Quick test_backoff;
        ] );
      ( "overload",
        [
          tc "bounded queue sheds" `Quick test_admission_queue_cap;
          tc "retry budget sheds" `Quick test_admission_retry_budget;
          tc "health probe ladder" `Quick test_health_ladder;
          tc "health folds trace marks" `Quick test_health_observe;
          tc "circuit breaker holds until revival" `Quick
            test_admission_breaker;
        ] );
      ( "traffic",
        [
          tc "runs are deterministic" `Quick test_traffic_deterministic;
          tc "8 disjoint clients >= 2x serialized" `Quick
            test_traffic_disjoint_speedup;
          tc "hot contention queues" `Quick test_traffic_contended_queue;
          tc "hot contention abort-retries" `Quick
            test_traffic_contended_abort_retry;
        ] );
      ( "counter",
        [
          tc "admission serializes the bumps" `Quick test_counter_serializes;
          tc "chaos overlap caught, no lost update" `Quick
            test_counter_chaos_detected;
        ] );
      ( "soak",
        [
          tc "runs are deterministic" `Quick test_soak_deterministic;
          tc "crash recovery replays to commit" `Quick test_soak_recovery;
          tc "overload sheds, never corrupts" `Quick
            test_soak_overload_sheds;
          tc "fault-free baseline is chaos-free" `Quick
            test_soak_baseline_fault_free;
        ] );
      ( "identity",
        [
          tc "single-session trace fingerprint" `Quick
            test_single_session_fingerprint;
        ] );
    ]

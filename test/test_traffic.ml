(* Concurrent-session admission and the srpc-traffic generator.

   Four layers of evidence, from unit to end-to-end:
   - the Admission controller's decision table, FIFO no-barging drain,
     OCC validation and backoff arithmetic, in isolation;
   - the traffic generator itself: deterministic, disjoint clients
     overlap (>= 2x the serialized throughput at 8 clients), contended
     clients queue or abort-retry with live Stats counters;
   - the shared-counter workload: admission serializes conflicting
     bumps with no lost update, and with the conflict check chaosed off
     the close-time validation, Race_lint (CC101) and the protocol
     linter (SP008) all catch the overlap while the counter still ends
     exactly at the committed-bump count;
   - the pre-PR fingerprint: a single-session (legacy-mode) run's trace
     is byte-identical to the trace the tree produced before concurrent
     admission existed, pinned by digest. *)

open Srpc_core
open Srpc_simnet
open Srpc_analysis
open Srpc_check
open Srpc_traffic

(* {1 Admission unit tests} *)

let fp_of label regions =
  Footprint.session ~label
    (List.map
       (fun (root, mode) -> { Footprint.root; path = "*"; mode })
       regions)

let w root = (root, Footprint.Write)
let r root = (root, Footprint.Read)

let test_admission_disjoint () =
  let adm = Admission.create (Stats.create ()) in
  (match Admission.request adm ~session:1 (fp_of "a" [ w "x" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "first session not admitted");
  (match Admission.request adm ~session:2 (fp_of "b" [ w "y" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "disjoint session not admitted");
  (* two readers of the same (otherwise untouched) root do not conflict *)
  (match Admission.request adm ~session:3 (fp_of "c" [ r "z" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "first reader not admitted");
  (match Admission.request adm ~session:4 (fp_of "d" [ r "z" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "read-read treated as a conflict");
  (* a reader of a root an open session is writing does conflict *)
  (match Admission.request adm ~session:5 (fp_of "e" [ r "x" ]) with
  | Admission.Admitted -> Alcotest.fail "read admitted against an open writer"
  | _ -> ());
  Alcotest.(check int) "open" 4 (Admission.open_count adm)

let test_admission_queue_fifo () =
  let adm = Admission.create ~policy:Strategy.Queue_conflicts (Stats.create ()) in
  ignore (Admission.request adm ~session:1 (fp_of "a" [ w "x" ]));
  (match Admission.request adm ~session:2 (fp_of "b" [ w "x" ]) with
  | Admission.Queued -> ()
  | _ -> Alcotest.fail "conflicting session not queued");
  (* session 3 conflicts with QUEUED session 2 — it must not barge *)
  (match Admission.request adm ~session:3 (fp_of "c" [ w "x" ]) with
  | Admission.Queued -> ()
  | _ -> Alcotest.fail "younger conflicting session barged the queue");
  Alcotest.(check int) "queue" 2 (Admission.queue_length adm);
  let drained = Admission.close adm ~session:1 in
  (* FIFO: only session 2 comes out (3 conflicts with it) *)
  Alcotest.(check (list int)) "drain order" [ 2 ] (List.map fst drained);
  let drained = Admission.close adm ~session:2 in
  Alcotest.(check (list int)) "second drain" [ 3 ] (List.map fst drained)

let test_admission_abort_retry () =
  let stats = Stats.create () in
  let adm = Admission.create ~policy:Strategy.Abort_retry stats in
  ignore (Admission.request adm ~session:1 (fp_of "a" [ w "x" ]));
  (match Admission.request adm ~session:2 (fp_of "b" [ w "x" ]) with
  | Admission.Denied -> ()
  | _ -> Alcotest.fail "conflicting session not denied under abort-retry");
  ignore (Admission.close adm ~session:1);
  (match Admission.request adm ~session:2 (fp_of "b" [ w "x" ]) with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "retry after the holder left not admitted");
  let snap = Stats.snapshot stats in
  Alcotest.(check int) "denied counted" 1 snap.Stats.sessions_aborted;
  Alcotest.(check int) "retry counted" 1 snap.Stats.sessions_retried

let test_admission_validation () =
  let adm = Admission.create (Stats.create ()) in
  (* forced concurrent writers to the same root: the later closer must
     fail validation *)
  ignore (Admission.request ~force:true adm ~session:1 (fp_of "a" [ w "x" ]));
  ignore (Admission.request ~force:true adm ~session:2 (fp_of "b" [ w "x" ]));
  ignore (Admission.close adm ~session:1);
  Alcotest.(check bool) "loser fails validation" false
    (Admission.validate adm ~session:2);
  (* an uncontended root is unaffected *)
  ignore (Admission.request adm ~session:3 (fp_of "c" [ w "y" ]));
  Alcotest.(check bool) "disjoint session validates" true
    (Admission.validate adm ~session:3)

let test_backoff () =
  Alcotest.(check (float 1e-9)) "attempt 0" 1e-3
    (Admission.backoff_delay ~attempt:0 ~base:1e-3);
  Alcotest.(check (float 1e-9)) "attempt 3" 8e-3
    (Admission.backoff_delay ~attempt:3 ~base:1e-3);
  (* capped at 2^6 *)
  Alcotest.(check (float 1e-9)) "attempt 40" 64e-3
    (Admission.backoff_delay ~attempt:40 ~base:1e-3)

(* {1 Traffic} *)

let small = { Traffic.default with Traffic.sessions_per_client = 3 }

let test_traffic_deterministic () =
  let a = Traffic.run small and b = Traffic.run small in
  if a <> b then Alcotest.fail "same config+seed gave two different results"

let test_traffic_disjoint_speedup () =
  let cmp = Traffic.compare_runs Traffic.default in
  let c = cmp.Traffic.concurrent in
  Alcotest.(check int) "all sessions committed" c.Traffic.r_sessions
    c.Traffic.r_committed;
  Alcotest.(check int) "no races" 0 c.Traffic.r_race_errors;
  Alcotest.(check int) "no protocol violations" 0 c.Traffic.r_proto_errors;
  Alcotest.(check int) "no validation failures" 0
    c.Traffic.r_validation_failed;
  if cmp.Traffic.speedup < 2.0 then
    Alcotest.failf
      "8 disjoint clients only reached %.2fx the serialized throughput"
      cmp.Traffic.speedup

let test_traffic_contended_queue () =
  let cfg =
    { small with Traffic.contention = Traffic.Hot;
      policy = Strategy.Queue_conflicts }
  in
  let res = Traffic.run cfg in
  Alcotest.(check int) "all sessions committed" res.Traffic.r_sessions
    res.Traffic.r_committed;
  if res.Traffic.r_queued = 0 then
    Alcotest.fail "hot contention never queued a session";
  Alcotest.(check int) "no races" 0 res.Traffic.r_race_errors;
  Alcotest.(check int) "no protocol violations" 0 res.Traffic.r_proto_errors

let test_traffic_contended_abort_retry () =
  let cfg =
    { small with Traffic.contention = Traffic.Hot;
      policy = Strategy.Abort_retry }
  in
  let res = Traffic.run cfg in
  Alcotest.(check int) "all sessions committed" res.Traffic.r_sessions
    res.Traffic.r_committed;
  if res.Traffic.r_denied = 0 then
    Alcotest.fail "hot contention never denied a session";
  if res.Traffic.r_retried = 0 then
    Alcotest.fail "denied sessions were never credited as retried";
  Alcotest.(check int) "no races" 0 res.Traffic.r_race_errors;
  Alcotest.(check int) "no protocol violations" 0 res.Traffic.r_proto_errors

(* {1 The shared counter: no lost update} *)

let test_counter_serializes () =
  List.iter
    (fun policy ->
      let o = Traffic.run_counter ~clients:6 ~seed:0 ~policy () in
      Alcotest.(check int) "every client committed" 6 o.Traffic.k_committed;
      Alcotest.(check int) "final = committed bumps" o.Traffic.k_committed
        o.Traffic.k_final;
      Alcotest.(check int) "no validation failures" 0
        o.Traffic.k_validation_failures;
      Alcotest.(check int) "no races" 0 o.Traffic.k_race_errors;
      Alcotest.(check int) "no protocol violations" 0 o.Traffic.k_proto_errors)
    [ Strategy.Queue_conflicts; Strategy.Abort_retry ]

let test_counter_chaos_detected () =
  (* bypassing admission makes the bump sessions overlap: validation
     must abort every loser (no lost update — the counter still ends at
     the committed count) and both linters must flag the overlap *)
  let o =
    Traffic.run_counter ~chaos:true ~clients:6 ~seed:0
      ~policy:Strategy.Queue_conflicts ()
  in
  Alcotest.(check int) "every client eventually committed" 6
    o.Traffic.k_committed;
  Alcotest.(check int) "final = committed bumps (no lost update)"
    o.Traffic.k_committed o.Traffic.k_final;
  if o.Traffic.k_validation_failures = 0 then
    Alcotest.fail "overlapping bumps never failed validation";
  if o.Traffic.k_race_errors = 0 then
    Alcotest.fail "Race_lint missed the chaos-admitted overlap (CC101)";
  if o.Traffic.k_proto_errors = 0 then
    Alcotest.fail "the protocol linter missed the overlap (SP008)"

(* {1 Single-session byte identity} *)

(* Digest of the full pp'd traces of five unfaulted legacy-mode checker
   runs, computed on the tree immediately before concurrent admission
   was added. Sessions that never opt into [Session.set_concurrent]
   must keep producing these exact bytes. *)
let pre_pr_fingerprint = "26a0510b3f30e198c808bc999dc63a64"

let test_single_session_fingerprint () =
  let buf = Buffer.create 65536 in
  List.iter
    (fun seed ->
      let script = Gen.script ~seed ~depth:12 ~fault:None in
      let plan = Script.resolve script in
      let out = Interp.run plan in
      Buffer.add_string buf
        (Format.asprintf "%a" Trace.pp out.Interp.trace))
    [ 0; 2; 3; 4; 6 ];
  let got = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  Alcotest.(check string) "single-session traces byte-identical to pre-PR"
    pre_pr_fingerprint got

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "traffic"
    [
      ( "admission",
        [
          tc "disjoint footprints admit" `Quick test_admission_disjoint;
          tc "conflicts queue FIFO, no barging" `Quick
            test_admission_queue_fifo;
          tc "abort-retry denies then admits" `Quick
            test_admission_abort_retry;
          tc "optimistic validation" `Quick test_admission_validation;
          tc "capped exponential backoff" `Quick test_backoff;
        ] );
      ( "traffic",
        [
          tc "runs are deterministic" `Quick test_traffic_deterministic;
          tc "8 disjoint clients >= 2x serialized" `Quick
            test_traffic_disjoint_speedup;
          tc "hot contention queues" `Quick test_traffic_contended_queue;
          tc "hot contention abort-retries" `Quick
            test_traffic_contended_abort_retry;
        ] );
      ( "counter",
        [
          tc "admission serializes the bumps" `Quick test_counter_serializes;
          tc "chaos overlap caught, no lost update" `Quick
            test_counter_chaos_detected;
        ] );
      ( "identity",
        [
          tc "single-session trace fingerprint" `Quick
            test_single_session_fingerprint;
        ] );
    ]

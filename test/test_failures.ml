(* Failure injection: the runtime's behaviour on the unhappy paths —
   resource exhaustion, dangling references, protocol misuse, and
   session discipline violations. Errors must surface as typed
   exceptions at the right place, never corrupt state, and leave the
   system usable. *)

open Srpc_memory
open Srpc_types
open Srpc_core
open Srpc_simnet
open Srpc_workloads

let node_ty = "fnode"

(* One pinned seed drives the whole chaos matrix so tier-1 is
   reproducible run-to-run; export SRPC_SEED=N to explore another
   schedule. The effective value is printed when any test fails. *)
let seed_base =
  match Sys.getenv_opt "SRPC_SEED" with
  | Some s -> int_of_string s
  | None -> 1

let mk2 ?(strategy = Strategy.smart ()) () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 ~strategy () in
  let b = Cluster.add_node cluster ~site:2 ~strategy () in
  Cluster.register_type cluster node_ty
    (Type_desc.Struct
       [ ("next", Type_desc.ptr node_ty); ("data", Type_desc.i64) ]);
  (cluster, a, b)

let mk_cell node data =
  let p = Access.ptr ~ty:node_ty (Node.malloc node ~ty:node_ty) in
  Access.set_i64 node p ~field:"data" (Int64.of_int data);
  p

(* --- resource exhaustion --- *)

let test_heap_exhaustion_recoverable () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  (* a tiny heap: 2 pages *)
  let a =
    Cluster.add_node cluster ~site:1 ~page_size:256 ()
  in
  ignore a;
  (* Node-level region limits are fixed; exhaust with many allocations
     instead on a tree that cannot fit the heap region is impractical —
     use the allocator directly through a small region. *)
  let space = Address_space.create ~page_size:256 ~id:(Space_id.make ~site:9 ~proc:0) ~arch:Arch.sparc32 () in
  let heap = Allocator.create ~space ~base:256 ~limit:1024 in
  let b1 = Allocator.alloc heap ~size:256 in
  let _b2 = Allocator.alloc heap ~size:256 in
  (match Allocator.alloc heap ~size:512 with
  | _ -> Alcotest.fail "expected exhaustion"
  | exception Allocator.Out_of_region _ -> ());
  Allocator.free heap b1;
  (* still usable after the failure *)
  let b3 = Allocator.alloc heap ~size:128 in
  Alcotest.(check bool) "recovered" true (Allocator.is_allocated heap b3)

let test_callee_heap_exhaustion_propagates () =
  let _, a, b = mk2 () in
  Node.register b "hog" (fun node _ ->
      (* allocate big arrays until the callee's heap region gives out *)
      let rec go () =
        ignore (Node.malloc_n node ~ty:node_ty 100_000);
        go ()
      in
      go ());
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "hog" [] with
      | _ -> Alcotest.fail "expected remote failure"
      | exception Node.Remote_error msg ->
        Alcotest.(check bool) "out of region surfaced" true
          (String.length msg > 0))

(* --- dangling and invalid references --- *)

let test_fetch_after_free_is_remote_error () =
  let _, a, b = mk2 () in
  let p = mk_cell a 1 in
  (* free the datum before the callee dereferences its pointer *)
  Node.register b "use_late" (fun node args ->
      let q = Access.of_value (List.hd args) in
      [ Value.int (Access.get_int node q ~field:"data") ]);
  Node.with_session a (fun () ->
      Node.extended_free a p.Access.addr;
      (* the callee's fault-time fetch hits a freed original; with no
         liveness check the bytes are stale-but-readable, so the call
         still completes — the important property is no crash and a
         well-formed result *)
      match Node.call a ~dst:(Node.id b) "use_late" [ Access.to_value p ] with
      | [ v ] -> ignore (Value.to_int v)
      | _ -> Alcotest.fail "bad arity"
      | exception Node.Remote_error _ -> ())

let test_unswizzle_garbage_address () =
  let _, a, _ = mk2 () in
  Alcotest.(check bool) "garbage rejected" true
    (match Node.unswizzle a ~ty:node_ty 0x123456789 with
    | _ -> false
    | exception Node.Invalid_pointer _ -> true)

let test_unswizzle_unknown_cache_addr () =
  let _, a, b = mk2 () in
  ignore b;
  (* an address inside the cache region but not a slot base *)
  let bogus = 0x4000008 in
  Alcotest.(check bool) "cache interior rejected" true
    (match Node.unswizzle a ~ty:node_ty bogus with
    | _ -> false
    | exception Node.Invalid_pointer _ -> true)

let test_remote_double_free_propagates () =
  let _, a, b = mk2 ~strategy:{ (Strategy.smart ()) with Strategy.batch_remote_ops = false } () in
  let p = mk_cell a 1 in
  Node.register b "free_remote" (fun node args ->
      Node.extended_free node (Value.to_addr (List.hd args));
      []);
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "free_remote" [ Access.to_value p ]);
      (* the second free at the origin must fail loudly *)
      Alcotest.(check bool) "double free rejected" true
        (match Node.extended_free a p.Access.addr with
        | () -> false
        | exception Allocator.Invalid_free _ -> true))

(* --- extended-memory edge cases --- *)

let contains_sub msg sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
  in
  go 0

let test_local_double_free () =
  let _, a, _ = mk2 () in
  let p = mk_cell a 5 in
  Node.with_session a (fun () ->
      Node.extended_free a p.Access.addr;
      Alcotest.(check bool) "second free rejected" true
        (match Node.extended_free a p.Access.addr with
        | () -> false
        | exception Allocator.Invalid_free _ -> true))

let test_free_while_cached_remotely () =
  let _, a, b = mk2 () in
  let p = mk_cell a 9 in
  Node.register b "read_cell" (fun node args ->
      let q = Access.of_value (List.hd args) in
      [ Value.int (Access.get_int node q ~field:"data") ]);
  Node.register b "ping" (fun _ _ -> [ Value.int 1 ]);
  Node.with_session a (fun () ->
      (match Node.call a ~dst:(Node.id b) "read_cell" [ Access.to_value p ] with
      | [ v ] -> Alcotest.(check int) "cached read" 9 (Value.to_int v)
      | _ -> Alcotest.fail "bad arity");
      (* b holds a cached copy now; freeing the original mid-session must
         not derail the close-time invalidate round *)
      Node.extended_free a p.Access.addr);
  (* both sides stay usable afterwards *)
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "ping" [] with
      | [ v ] -> Alcotest.(check int) "usable after free-while-cached" 1 (Value.to_int v)
      | _ -> Alcotest.fail "bad arity")

let test_free_then_deref_is_typed_error () =
  (* fully lazy shipping forces the callee to fault and fetch, so the
     dereference of a stale long pointer hits the server-side liveness
     check instead of reading stale-but-present bytes *)
  let _, a, b = mk2 ~strategy:Strategy.fully_lazy () in
  let p = mk_cell a 3 in
  Node.register b "deref_late" (fun node args ->
      let q = Access.of_value (List.hd args) in
      [ Value.int (Access.get_int node q ~field:"data") ]);
  Node.with_session a (fun () ->
      Node.extended_free a p.Access.addr;
      Alcotest.(check bool) "dangling fetch is a typed error" true
        (match Node.call a ~dst:(Node.id b) "deref_late" [ Access.to_value p ] with
        | _ -> false
        | exception Node.Remote_error msg -> contains_sub msg "dangling"))

let test_extended_malloc_hetero_arches () =
  (* word size and endianness differ across the pair in both directions;
     extended_malloc'd cells homed on the remote side must still encode,
     write back, and read back exactly *)
  List.iter
    (fun (ground_arch, worker_arch) ->
      let cluster = Cluster.create ~cost:Cost_model.zero () in
      let a = Cluster.add_node cluster ~site:1 ~arch:ground_arch () in
      let b = Cluster.add_node cluster ~site:2 ~arch:worker_arch () in
      Linked_list.register_types cluster;
      Node.register b "lsum" (fun node args ->
          [ Value.int (Linked_list.sum node (Access.of_value (List.hd args))) ]);
      Node.with_session a (fun () ->
          let h = Linked_list.build a [ 1; 2; 3 ] in
          let h = Linked_list.append a h ~home:(Node.id b) [ 4; 5 ] in
          Alcotest.(check int) "local sum over mixed homes" 15
            (Linked_list.sum a h);
          match Node.call a ~dst:(Node.id b) "lsum" [ Access.to_value h ] with
          | [ v ] -> Alcotest.(check int) "remote sum across arches" 15 (Value.to_int v)
          | _ -> Alcotest.fail "bad arity"))
    [ (Arch.sparc32, Arch.lp64_le); (Arch.lp64_be, Arch.sparc32) ]

(* --- protocol misuse --- *)

let test_unknown_peer_is_transport_error () =
  let _, a, _ = mk2 () in
  Node.with_session a (fun () ->
      Alcotest.check_raises "unknown endpoint"
        (Transport.Unknown_endpoint "7.0")
        (fun () ->
          ignore
            (Node.call a ~dst:(Space_id.make ~site:7 ~proc:0) "nope" [])))

let test_end_session_by_non_ground_rejected () =
  let _, a, b = mk2 () in
  Node.begin_session a;
  Alcotest.(check bool) "non-ground rejected" true
    (match Node.end_session b with
    | () -> false
    | exception Invalid_argument _ -> true);
  Node.end_session a

let test_nested_begin_session_rejected () =
  let _, a, b = mk2 () in
  Node.begin_session a;
  Alcotest.check_raises "double begin" Session.Session_already_active (fun () ->
      Node.begin_session b);
  Node.end_session a

let test_with_session_ends_on_exception () =
  let cluster, a, _ = mk2 () in
  (match Node.with_session a (fun () -> failwith "body blew up") with
  | _ -> Alcotest.fail "should raise"
  | exception Failure _ -> ());
  Alcotest.(check bool) "session closed" false
    (Session.is_active (Cluster.session cluster))

let test_bad_arity_surfaces_cleanly () =
  let _, a, b = mk2 () in
  Node.register b "strict" (fun _ args ->
      match args with
      | [ x ] -> [ x ]
      | _ -> invalid_arg "strict: want one argument");
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "strict" [] with
      | _ -> Alcotest.fail "expected error"
      | exception Node.Remote_error msg ->
        Alcotest.(check bool) "reason kept" true (String.length msg > 5))

let test_error_does_not_poison_next_call () =
  let _, a, b = mk2 () in
  Node.register b "flaky" (fun _ args ->
      if Value.to_bool (List.hd args) then failwith "boom" else [ Value.int 7 ]);
  Node.with_session a (fun () ->
      (match Node.call a ~dst:(Node.id b) "flaky" [ Value.bool true ] with
      | _ -> Alcotest.fail "expected error"
      | exception Node.Remote_error _ -> ());
      match Node.call a ~dst:(Node.id b) "flaky" [ Value.bool false ] with
      | [ v ] -> Alcotest.(check int) "recovered" 7 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_stale_session_frame_rejected () =
  let cluster, a, b = mk2 () in
  Node.register b "nop" (fun _ _ -> []);
  (* run and end a first session (id 1) *)
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "nop" []));
  (* open session 2, then inject a frame stamped with the dead session *)
  Node.begin_session a;
  let stale =
    Wire.encode_request ~reg:(Cluster.registry cluster)
      (Wire.Call { session = 1; proc = "nop"; args = []; writebacks = []; eager = [] })
  in
  let reply =
    Transport.rpc (Cluster.transport cluster) ~src:"1.0" ~dst:"2.0" stale
  in
  (match Wire.decode_response ~reg:(Cluster.registry cluster) reply with
  | Wire.Error msg ->
    Alcotest.(check bool) "names the mismatch" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "stale frame accepted");
  (* the live session still works *)
  (match Node.call a ~dst:(Node.id b) "nop" [] with
  | [] -> ()
  | _ -> Alcotest.fail "live call broken");
  Node.end_session a

(* --- multi-process sites --- *)

let test_two_processes_same_site () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let p0 = Cluster.add_node cluster ~site:1 ~proc:0 () in
  let p1 = Cluster.add_node cluster ~site:1 ~proc:1 () in
  Cluster.register_type cluster node_ty
    (Type_desc.Struct
       [ ("next", Type_desc.ptr node_ty); ("data", Type_desc.i64) ]);
  let cell = mk_cell p0 77 in
  Node.register p1 "read" (fun node args ->
      [ Value.int (Access.get_int node (Access.of_value (List.hd args)) ~field:"data") ]);
  Node.with_session p0 (fun () ->
      match Node.call p0 ~dst:(Node.id p1) "read" [ Access.to_value cell ] with
      | [ v ] -> Alcotest.(check int) "cross-process" 77 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

let test_duplicate_node_rejected () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  ignore (Cluster.add_node cluster ~site:1 ());
  Alcotest.(check bool) "duplicate id" true
    (match Cluster.add_node cluster ~site:1 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- introspection --- *)

let test_introspect_counts () =
  let _, a, b = mk2 () in
  let p = mk_cell a 5 in
  Node.register b "touch" (fun node args ->
      ignore (Access.get_int node (Access.of_value (List.hd args)) ~field:"data");
      []);
  Node.begin_session a;
  ignore (Node.call a ~dst:(Node.id b) "touch" [ Access.to_value p ]);
  let h = Introspect.heap_stats a in
  Alcotest.(check int) "one live block" 1 h.Introspect.live_blocks;
  let c = Introspect.cache_stats b in
  Alcotest.(check int) "one cached entry" 1 c.Introspect.entries;
  Alcotest.(check int) "present" 1 c.Introspect.present;
  Alcotest.(check (list (pair string int))) "by origin" [ ("1.0", 1) ]
    c.Introspect.by_origin;
  let rendered = Format.asprintf "%a" Introspect.pp b in
  Alcotest.(check bool) "renders" true (String.length rendered > 40);
  Node.end_session a;
  let c = Introspect.cache_stats b in
  Alcotest.(check int) "empty after invalidate" 0 c.Introspect.entries

let test_workload_after_failures () =
  (* after a burst of failures the cluster still runs a real workload *)
  let cluster, a, b = mk2 () in
  (try ignore (Node.call a ~dst:(Node.id b) "nope" []) with _ -> ());
  Tree.register_types cluster;
  let root = Tree.build a ~depth:6 in
  Node.register b "count" (fun node args ->
      [ Value.int (Tree.count node (Access.of_value (List.hd args))) ]);
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "count" [ Access.to_value root ] with
      | [ v ] -> Alcotest.(check int) "still works" 63 (Value.to_int v)
      | _ -> Alcotest.fail "arity")

(* --- injected faults: chaos, crash, abort (srpc-faults) --- *)

open Srpc_analysis

let search_proc = "chaos_search"

(* A two-site tree-search cluster with a trace attached, ready for fault
   injection. The caller (site 1, endpoint "1.0") owns the tree and is
   ground; the callee (site 2, endpoint "2.0") searches it. *)
let mk_chaos ?(strategy = Strategy.smart ()) ?(depth = 6) () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 ~strategy () in
  let b = Cluster.add_node cluster ~site:2 ~strategy () in
  Tree.register_types cluster;
  let root = Tree.build a ~depth in
  Node.register b search_proc (fun node args ->
      match args with
      | [ rootv; limitv ] ->
        let visited, _ =
          Tree.visit node (Access.of_value rootv) ~limit:(Value.to_int limitv)
        in
        [ Value.int visited ]
      | _ -> invalid_arg search_proc);
  let trace = Trace.create () in
  Transport.set_trace (Cluster.transport cluster) (Some trace);
  (cluster, a, b, root, trace)

let run_search a b root ~limit =
  Node.with_session a (fun () ->
      match
        Node.call a ~dst:(Node.id b) search_proc
          [ Access.to_value root; Value.int limit ]
      with
      | [ v ] -> Value.to_int v
      | _ -> Alcotest.fail "bad arity")

let check_lint_clean label trace =
  let ds = Proto_lint.check trace in
  if ds <> [] then
    Alcotest.failf "%s: protocol violations:@.%a" label Diagnostic.pp_list ds

(* The chaos matrix: drop rates x strategies x seeds. Every session must
   either complete with the fault-free result or abort cleanly; the
   whole trace must satisfy SP001-SP006; the cluster stays usable. *)
let test_chaos_matrix () =
  let drops = [ 0.0; 0.01; 0.1 ] in
  let strategies =
    [
      ("smart", Strategy.smart ());
      ("lazy", Strategy.fully_lazy);
      ("eager", Strategy.fully_eager);
    ]
  in
  List.iter
    (fun drop ->
      List.iter
        (fun (sname, strategy) ->
          List.iter
            (fun seed ->
              let label = Printf.sprintf "drop %.2f %s seed %d" drop sname seed in
              let cluster, a, b, root, trace = mk_chaos ~strategy () in
              let limit = 40 in
              let expected = run_search a b root ~limit in
              let plan = Fault_plan.create ~seed () in
              Fault_plan.set_global plan
                (Fault_plan.profile ~drop ~duplicate:(drop /. 2.0) ());
              Cluster.install_faults cluster plan;
              for _ = 1 to 3 do
                match run_search a b root ~limit with
                | r ->
                  if r <> expected then
                    Alcotest.failf "%s: wrong result %d (want %d)" label r
                      expected
                | exception Session.Session_aborted _ -> ()
              done;
              (* the cluster is still usable, faults on or off *)
              Cluster.clear_faults cluster;
              Alcotest.(check int)
                (label ^ ": usable after chaos")
                expected
                (run_search a b root ~limit);
              Alcotest.(check int)
                (label ^ ": callee cache empty after close")
                0
                (Introspect.cache_stats b).Introspect.entries;
              check_lint_clean label trace)
            [ seed_base; seed_base + 1 ])
        strategies)
    drops

(* Crash the callee mid-session: the ground must abort, nothing of the
   modified data set may reach the origin, and after revival the same
   work succeeds. *)
let test_crash_mid_session_aborts () =
  let cluster, a, b, _, trace = mk_chaos () in
  let plan = Fault_plan.create ~seed:3 () in
  Cluster.install_faults cluster plan;
  (* the callee owns a cell; the ground caches and modifies it *)
  Cluster.register_type cluster node_ty
    (Type_desc.Struct
       [ ("next", Type_desc.ptr node_ty); ("data", Type_desc.i64) ]);
  let cell = mk_cell b 42 in
  Node.register b "get_cell" (fun _ _ -> [ Access.to_value cell ]);
  (match
     Node.with_session a (fun () ->
         match Node.call a ~dst:(Node.id b) "get_cell" [] with
         | [ v ] ->
           let p = Access.of_value v in
           (* dirty the ground's cached copy, then lose the callee *)
           Access.set_i64 a p ~field:"data" 99L;
           Transport.crash (Cluster.transport cluster) "2.0"
         | _ -> Alcotest.fail "bad arity")
   with
  | () -> Alcotest.fail "expected Session_aborted"
  | exception Session.Session_aborted { reason; _ } ->
    Alcotest.(check bool) "reason names the peer" true
      (String.length reason > 0));
  (* both nodes reusable; the modified set was discarded at the origin *)
  Transport.revive (Cluster.transport cluster) "2.0";
  Alcotest.(check int) "abort discarded the write" 42
    (Int64.to_int (Access.get_i64 b cell ~field:"data"));
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "get_cell" [] with
      | [ v ] -> Access.set_i64 a (Access.of_value v) ~field:"data" 99L
      | _ -> Alcotest.fail "bad arity");
  Alcotest.(check int) "committed close applies the write" 99
    (Int64.to_int (Access.get_i64 b cell ~field:"data"));
  check_lint_clean "crash-abort" trace

(* All-or-nothing write-back over three nodes: if one origin is dead at
   close, no origin receives anything. *)
let test_writeback_all_or_nothing () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let g = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let c = Cluster.add_node cluster ~site:3 () in
  Cluster.register_type cluster node_ty
    (Type_desc.Struct
       [ ("next", Type_desc.ptr node_ty); ("data", Type_desc.i64) ]);
  let trace = Trace.create () in
  Transport.set_trace (Cluster.transport cluster) (Some trace);
  let plan = Fault_plan.create ~seed:5 () in
  Cluster.install_faults cluster plan;
  let cell_b = mk_cell b 10 and cell_c = mk_cell c 20 in
  Node.register b "cell_b" (fun _ _ -> [ Access.to_value cell_b ]);
  Node.register c "cell_c" (fun _ _ -> [ Access.to_value cell_c ]);
  let dirty_both ~crash_c =
    Node.with_session g (fun () ->
        let fetch node proc =
          match Node.call g ~dst:(Node.id node) proc [] with
          | [ v ] -> Access.of_value v
          | _ -> Alcotest.fail "bad arity"
        in
        let pb = fetch b "cell_b" and pc = fetch c "cell_c" in
        Access.set_i64 g pb ~field:"data" 11L;
        Access.set_i64 g pc ~field:"data" 21L;
        if crash_c then Transport.crash (Cluster.transport cluster) "3.0")
  in
  (match dirty_both ~crash_c:true with
  | () -> Alcotest.fail "expected Session_aborted"
  | exception Session.Session_aborted _ -> ());
  Alcotest.(check int) "b kept its value (atomic abort)" 10
    (Int64.to_int (Access.get_i64 b cell_b ~field:"data"));
  Alcotest.(check int) "c kept its value" 20
    (Int64.to_int (Access.get_i64 c cell_c ~field:"data"));
  Transport.revive (Cluster.transport cluster) "3.0";
  dirty_both ~crash_c:false;
  Alcotest.(check int) "b updated after clean close" 11
    (Int64.to_int (Access.get_i64 b cell_b ~field:"data"));
  Alcotest.(check int) "c updated after clean close" 21
    (Int64.to_int (Access.get_i64 c cell_c ~field:"data"));
  check_lint_clean "all-or-nothing" trace

(* Duplicate delivery of every frame: the reply cache must make the
   procedure run exactly once per logical call. *)
let test_duplicate_suppression () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let plan = Fault_plan.create ~seed:11 () in
  Fault_plan.set_global plan (Fault_plan.profile ~duplicate:1.0 ());
  Cluster.install_faults cluster plan;
  let hits = ref 0 in
  Node.register b "bump" (fun _ _ -> incr hits; [ Value.int !hits ]);
  let s0 = Cluster.snapshot cluster in
  Node.with_session a (fun () ->
      (match Node.call a ~dst:(Node.id b) "bump" [] with
      | [ v ] -> Alcotest.(check int) "first call" 1 (Value.to_int v)
      | _ -> Alcotest.fail "bad arity");
      match Node.call a ~dst:(Node.id b) "bump" [] with
      | [ v ] -> Alcotest.(check int) "second call" 2 (Value.to_int v)
      | _ -> Alcotest.fail "bad arity");
  Alcotest.(check int) "procedure ran once per call" 2 !hits;
  let d = Stats.diff (Cluster.snapshot cluster) s0 in
  Alcotest.(check bool) "duplicates absorbed" true (d.Stats.duplicates > 0)

(* The at-most-once reply cache is bounded per source: with more
   distinct callers than [reply_cache_cap], the least-recently-consulted
   source is evicted, and duplicate suppression still works for the
   sources the cache retains. *)
let test_reply_cache_bounded () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let victim = Cluster.add_node cluster ~site:1 ~reply_cache_cap:2 () in
  let callers =
    List.init 4 (fun i -> Cluster.add_node cluster ~site:(i + 2) ())
  in
  let plan = Fault_plan.create ~seed:23 () in
  Cluster.install_faults cluster plan;
  Node.register victim "ping" (fun _ _ -> [ Value.int 1 ]);
  List.iter
    (fun c ->
      Node.with_session c (fun () ->
          match Node.call c ~dst:(Node.id victim) "ping" [] with
          | [ v ] -> Alcotest.(check int) "ping" 1 (Value.to_int v)
          | _ -> Alcotest.fail "bad arity"))
    callers;
  Alcotest.(check int) "reply cache bounded at its cap" 2
    (Node.reply_cache_size victim);
  (* the most recently heard source must still be protected *)
  Fault_plan.set_global plan (Fault_plan.profile ~duplicate:1.0 ());
  let hits = ref 0 in
  Node.register victim "bump" (fun _ _ -> incr hits; [ Value.int !hits ]);
  let last = List.nth callers 3 in
  Node.with_session last (fun () ->
      ignore (Node.call last ~dst:(Node.id victim) "bump" []);
      ignore (Node.call last ~dst:(Node.id victim) "bump" []));
  Alcotest.(check int) "ran once per call under full duplication" 2 !hits;
  Alcotest.(check int) "cap still holds" 2 (Node.reply_cache_size victim)

(* A forced single drop: the retry envelope resends and the call still
   succeeds, with the retry counted. *)
let test_retry_recovers_forced_drop () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let plan = Fault_plan.create ~seed:13 () in
  Cluster.install_faults cluster plan;
  Node.register b "ping" (fun _ _ -> [ Value.int 1 ]);
  let s0 = Cluster.snapshot cluster in
  Node.with_session a (fun () ->
      Fault_plan.drop_next plan 1;
      match Node.call a ~dst:(Node.id b) "ping" [] with
      | [ v ] -> Alcotest.(check int) "succeeds after retry" 1 (Value.to_int v)
      | _ -> Alcotest.fail "bad arity");
  let d = Stats.diff (Cluster.snapshot cluster) s0 in
  Alcotest.(check int) "one retry" 1 d.Stats.retries;
  Alcotest.(check int) "one timeout" 1 d.Stats.timeouts

(* A peer that never comes back: the retry budget runs out and the
   ground aborts instead of hanging. *)
let test_retry_exhaustion_aborts () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let a = Cluster.add_node cluster ~site:1 ~retry:{ Node.default_retry with Node.max_attempts = 3 } () in
  let b = Cluster.add_node cluster ~site:2 () in
  let plan = Fault_plan.create ~seed:17 () in
  Cluster.install_faults cluster plan;
  Node.register b "ping" (fun _ _ -> [ Value.int 1 ]);
  Fault_plan.partition plan ~src:"1.0" ~dst:"2.0";
  (match
     Node.with_session a (fun () ->
         ignore (Node.call a ~dst:(Node.id b) "ping" []))
   with
  | () -> Alcotest.fail "expected Session_aborted"
  | exception Session.Session_aborted _ -> ());
  Fault_plan.heal plan ~src:"1.0" ~dst:"2.0";
  Node.with_session a (fun () ->
      match Node.call a ~dst:(Node.id b) "ping" [] with
      | [ v ] -> Alcotest.(check int) "healed and reusable" 1 (Value.to_int v)
      | _ -> Alcotest.fail "bad arity")

let () =
  let tc = Alcotest.test_case in
  try
    Alcotest.run ~and_exit:false "failures"
      [
      ( "exhaustion",
        [
          tc "heap exhaustion is recoverable" `Quick test_heap_exhaustion_recoverable;
          tc "callee heap exhaustion propagates" `Quick
            test_callee_heap_exhaustion_propagates;
        ] );
      ( "dangling",
        [
          tc "fetch after free" `Quick test_fetch_after_free_is_remote_error;
          tc "garbage address rejected" `Quick test_unswizzle_garbage_address;
          tc "cache interior rejected" `Quick test_unswizzle_unknown_cache_addr;
          tc "remote double free" `Quick test_remote_double_free_propagates;
        ] );
      ( "extended-memory",
        [
          tc "local double free rejected" `Quick test_local_double_free;
          tc "free while cached remotely" `Quick test_free_while_cached_remotely;
          tc "free then deref is typed error" `Quick
            test_free_then_deref_is_typed_error;
          tc "extended_malloc across arch pairs" `Quick
            test_extended_malloc_hetero_arches;
        ] );
      ( "protocol-misuse",
        [
          tc "unknown peer" `Quick test_unknown_peer_is_transport_error;
          tc "end by non-ground" `Quick test_end_session_by_non_ground_rejected;
          tc "nested begin" `Quick test_nested_begin_session_rejected;
          tc "with_session ends on exception" `Quick test_with_session_ends_on_exception;
          tc "bad arity surfaces" `Quick test_bad_arity_surfaces_cleanly;
          tc "error does not poison next call" `Quick test_error_does_not_poison_next_call;
          tc "stale session frame rejected" `Quick test_stale_session_frame_rejected;
        ] );
      ( "topology",
        [
          tc "two processes on one site" `Quick test_two_processes_same_site;
          tc "duplicate node rejected" `Quick test_duplicate_node_rejected;
        ] );
      ( "faults",
        [
          tc "chaos matrix stays correct and lint-clean" `Quick test_chaos_matrix;
          tc "crash mid-session aborts atomically" `Quick test_crash_mid_session_aborts;
          tc "write-back is all-or-nothing" `Quick test_writeback_all_or_nothing;
          tc "duplicate deliveries suppressed" `Quick test_duplicate_suppression;
          tc "reply cache is bounded (LRU)" `Quick test_reply_cache_bounded;
          tc "retry recovers a forced drop" `Quick test_retry_recovers_forced_drop;
          tc "retry exhaustion aborts cleanly" `Quick test_retry_exhaustion_aborts;
        ] );
      ( "introspection",
        [
          tc "stats and rendering" `Quick test_introspect_counts;
          tc "workload survives failures" `Quick test_workload_after_failures;
        ] );
      ]
  with Alcotest.Test_error ->
    Printf.eprintf "failures: chaos matrix seed base was SRPC_SEED=%d\n%!"
      seed_base;
    exit 1

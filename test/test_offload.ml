(* Traversal offloading (docs/OFFLOAD.md): property tests.

   The contract under test is transparency — where a plan runs (client
   walk over the cache, or the datum's home walking its own heap) must
   never change what it computes. Each test pits the offloaded arm
   against the client-side arm and a pure expectation, across every
   workload shape, every strategy-table entry, and a lossy link with
   the at-most-once retry envelope underneath. *)

open Srpc_core
open Srpc_simnet
open Srpc_workloads
module Offload = Srpc_core.Offload
module Check = Srpc_check

let give_root = "give_root"

(* A two-site cluster: the structure lives at [home] (site 2), the
   client walks or offloads from site 1. *)
let mk_cluster ?(strategy = Strategy.smart ()) ?fault () =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let client = Cluster.add_node cluster ~site:1 ~strategy () in
  let home = Cluster.add_node cluster ~site:2 ~strategy () in
  Linked_list.register_types cluster;
  Tree.register_types cluster;
  Graph.register_types cluster;
  Matrix.register_types cluster;
  (match fault with
  | None -> ()
  | Some (seed, drop, dup) ->
    let fp = Fault_plan.create ~seed () in
    Fault_plan.set_global fp (Fault_plan.profile ~drop ~duplicate:dup ());
    Cluster.install_faults cluster fp);
  (cluster, client, home)

let fetch_root client home =
  match Node.call client ~dst:(Node.id home) give_root [] with
  | [ v ] -> Access.of_value v
  | _ -> failwith (give_root ^ ": bad arity")

(* One offloaded run: build [kind] at home, run [plan] [calls] times
   from the client inside one session, return the last result. *)
let run_plan ~strategy ~build ~plan () =
  let _cluster, client, home = mk_cluster ~strategy () in
  let root = build home in
  Node.register home give_root (fun _ _ -> [ Access.to_value root ]);
  Node.with_session client (fun () ->
      let rootp = fetch_root client home in
      Node.offload client ~root:rootp.Access.addr plan)

(* Every workload shape, as (label, build, plan, pure expectation). *)
let shapes =
  let list_vals = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let tree_depth = 4 in
  let tn = Tree.nodes_of_depth tree_depth in
  let graph_nodes = 10 and graph_seed = 7 in
  let graph_expect =
    (* the walker's DFS (ascending out-slots, seen-set) reaches the same
       vertex set as [Graph.reachable_sum]; payloads are the vertex ids *)
    let adj = Graph.edges ~nodes:graph_nodes ~seed:graph_seed in
    let seen = Array.make graph_nodes false in
    let rec go i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter (fun (_, j) -> go j) adj.(i)
      end
    in
    go 0;
    let s = ref 0 in
    Array.iteri (fun i v -> if v then s := !s + i) seen;
    !s
  in
  [
    ( "list sum",
      (fun home -> Linked_list.build home list_vals),
      Linked_list.plan ~hop_bound:64 (),
      [ List.fold_left ( + ) 0 list_vals ] );
    ( "list visit prefix",
      (fun home -> Linked_list.build home list_vals),
      Linked_list.plan ~op:Offload.Op_visit ~hop_bound:3 (),
      [ 3; 3 + 1 + 4 ] );
    ( "tree visit",
      (fun home -> Tree.build home ~depth:tree_depth),
      Tree.plan ~hop_bound:tn (),
      [ tn; tn * (tn - 1) / 2 ] );
    ( "tree visit bounded",
      (fun home -> Tree.build home ~depth:tree_depth),
      Tree.plan ~hop_bound:6 (),
      [ 6; 15 ] );
    ( "tree find",
      (fun home -> Tree.build home ~depth:tree_depth),
      Tree.plan ~op:(Offload.Op_find 9) ~hop_bound:tn (),
      [ 9 ] );
    ( "graph sum",
      (fun home -> Graph.build home ~nodes:graph_nodes ~seed:graph_seed),
      Graph.plan ~hop_bound:64 (),
      [ graph_expect ] );
    ( "wide visit",
      (fun home ->
        let grid = Matrix.create home ~tile_rows:1 ~tile_cols:1 in
        Matrix.set home grid ~row:0 ~col:0 2.0;
        Matrix.set home grid ~row:3 ~col:5 40.0;
        grid),
      Matrix.plan ~hop_bound:8 (),
      [ 2; 42 ] );
  ]

(* The tentpole property: every workload x every strategy-table entry
   computes the same results, whether the strategy walks client-side
   ([Offload_never]), ships the plan home ([Offload_always]) or lets
   the per-type learner decide ([Offload_auto]). *)
let test_every_workload_every_strategy () =
  Array.iteri
    (fun si strategy ->
      List.iter
        (fun (label, build, plan, expected) ->
          let got = run_plan ~strategy ~build ~plan () in
          Alcotest.(check (list int))
            (Printf.sprintf "%s under strategy %d" label si)
            expected got)
        shapes)
    Check.Interp.strategy_table

(* Offloaded updates: effects land at the home and survive the close. *)
let test_update_lands_at_home () =
  let always =
    { Strategy.fully_lazy with Strategy.offload = Strategy.Offload_always }
  in
  List.iter
    (fun strategy ->
      let _cluster, client, home = mk_cluster ~strategy () in
      let root = Linked_list.build home [ 10; 20; 30 ] in
      Node.register home give_root (fun _ _ -> [ Access.to_value root ]);
      Node.with_session client (fun () ->
          let rootp = fetch_root client home in
          let upd idx delta =
            Linked_list.plan
              ~op:(Offload.Op_update { idx; delta })
              ~hop_bound:(idx + 1) ()
          in
          Alcotest.(check (list int))
            "update slot 1" [ 25 ]
            (Node.offload client ~root:rootp.Access.addr (upd 1 5));
          (* the refreshed copy is visible to an immediate client walk *)
          Alcotest.(check (list int))
            "client rereads the update" [ 10 + 25 + 30 ]
            (Node.offload client ~root:rootp.Access.addr
               (Linked_list.plan ~hop_bound:8 ())));
      (* after the close the home's heap is the only copy left *)
      Alcotest.(check (list int))
        "home state after close" [ 10; 25; 30 ]
        (Linked_list.to_list home root))
    [ Strategy.smart (); always ]

(* Exactly-once update effects under a lossy link: dropped frames are
   retried under the at-most-once envelope, duplicated frames replay the
   cached reply — so N offloaded increments must raise the value by
   exactly N, never more, never less. The returned values pin it: call
   i must observe exactly i increments. *)
let test_exactly_once_updates_under_drop () =
  let always =
    { Strategy.fully_lazy with Strategy.offload = Strategy.Offload_always }
  in
  let completed = ref 0 in
  for seed = 0 to 9 do
    let _cluster, client, home =
      mk_cluster ~strategy:always ~fault:(seed, 0.01, 0.005) ()
    in
    let root = Linked_list.build home [ 100 ] in
    Node.register home give_root (fun _ _ -> [ Access.to_value root ]);
    let plan =
      Linked_list.plan
        ~op:(Offload.Op_update { idx = 0; delta = 1 })
        ~hop_bound:1 ()
    in
    match
      Node.with_session client (fun () ->
          let rootp = fetch_root client home in
          for i = 1 to 40 do
            Alcotest.(check (list int))
              (Printf.sprintf "seed %d: increment %d applied once" seed i)
              [ 100 + i ]
              (Node.offload client ~root:rootp.Access.addr plan)
          done)
    with
    | () ->
      incr completed;
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: home value after close" seed)
        [ 140 ]
        (Linked_list.to_list home root)
    | exception Session.Session_aborted _ -> ()
  done;
  if !completed = 0 then
    Alcotest.fail "every seed aborted under a 1%% drop rate"

(* Client-side validation mirrors the decoder: a malformed plan is
   rejected with the same typed error before anything is touched. *)
let test_local_validation_parity () =
  let _cluster, client, home = mk_cluster () in
  let root = Linked_list.build home [ 1 ] in
  Node.register home give_root (fun _ _ -> [ Access.to_value root ]);
  Node.with_session client (fun () ->
      let rootp = fetch_root client home in
      List.iter
        (fun (label, plan) ->
          match Node.offload client ~root:rootp.Access.addr plan with
          | _ -> Alcotest.failf "%s: accepted" label
          | exception Srpc_xdr.Xdr.Decode_error _ -> ())
        [
          ("zero hop bound", Linked_list.plan ~hop_bound:0 ());
          ( "unknown value field",
            { (Linked_list.plan ~hop_bound:4 ()) with
              Offload.value_field = "nope" } );
          ( "cyclic hops",
            { (Linked_list.plan ~hop_bound:4 ()) with
              Offload.hops = [ "next"; "next" ] } );
        ])

(* The adaptive acceptance gate: on the long-haul link the learner must
   offload one-shot traversals and keep high-reuse sessions local, with
   identical results — no manual hints, just per-session feedback. *)
let test_adaptive_flip () =
  let lo = Experiments.offload_adaptive ~depth:8 ~sessions:24 ~repeats:1 () in
  let hi = Experiments.offload_adaptive ~depth:8 ~sessions:24 ~repeats:32 () in
  Alcotest.(check string)
    "low locality offloads" "offload" lo.Experiments.oa_choice;
  Alcotest.(check string) "high locality stays local" "local"
    hi.Experiments.oa_choice;
  Alcotest.(check int) "identical results"
    lo.Experiments.oa_run.Experiments.of_result
    hi.Experiments.oa_run.Experiments.of_result

(* The wire acceptance gate, at test scale: a one-shot offloaded
   traversal moves an order of magnitude fewer bytes than the eager
   closure, for the same answer. *)
let test_wire_reduction () =
  match Experiments.offload_sweep ~depth:8 ~repeat_points:[ 1 ] () with
  | [ row ] ->
    let e = row.Experiments.of_eager and o = row.Experiments.of_always in
    Alcotest.(check int) "same answer" e.Experiments.of_result
      o.Experiments.of_result;
    Alcotest.(check bool)
      (Printf.sprintf "10x fewer bytes (eager %d, offload %d)"
         e.Experiments.of_bytes o.Experiments.of_bytes)
      true
      (o.Experiments.of_bytes * 10 <= e.Experiments.of_bytes)
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

(* The check harness's offload mix at test scale: generated scripts
   over the full strategy table, judged by all three oracles. *)
let test_offload_check_loop () =
  List.iter
    (fun faults ->
      match Check.Runner.check ~offload:true ~seeds:60 ~depth:12 ~faults () with
      | Check.Runner.Ok st ->
        Alcotest.(check int) "all seeds ran" 60 st.Check.Runner.runs
      | Check.Runner.Failed { seed; failure; _ } ->
        Alcotest.failf "faults %.2f seed %d: %a" faults seed
          Check.Runner.pp_failure failure)
    [ 0.0; 0.02 ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "offload"
    [
      ( "transparency",
        [
          tc "every workload x every strategy" `Quick
            test_every_workload_every_strategy;
          tc "updates land at the home" `Quick test_update_lands_at_home;
          tc "exactly-once updates under drop" `Quick
            test_exactly_once_updates_under_drop;
          tc "local validation parity" `Quick test_local_validation_parity;
        ] );
      ( "adaptive",
        [
          tc "learner flips with the reuse count" `Quick test_adaptive_flip;
          tc "one-shot wire reduction" `Quick test_wire_reduction;
        ] );
      ( "harness", [ tc "offload check loop" `Quick test_offload_check_loop ] );
    ]

; srpc-check reproducer — rerun with: srpc check --replay test/repros/fault-session-001.sexp
; Seed 17, depth 20, fault schedule (drop 0.01, dup 0.005). The injected
; crash of a worker endpoint forces the clean-abort path: observations up
; to the abort match the oracle and both sides come back reusable.
; Committed as a regression pin for session abort under faults.
(srpc-check-repro
 (version 1)
 (seed 17)
 (workers 2)
 (arches (1 0))
 (strategy 3)
 (fault ((seed 17) (drop 0.01) (dup 0.0050000000000000001)))
 (ops
  ((build-graph 16 473)
   (callback 4 42)
   (visit 32 32 10)
   (callback 22 5)
   (append 50 3 (-85))
   (build-tree 2)
   (map 19 27 -1 9)
   (nested 57 40 1)
   (visit 56 35 33)
   (callback 31 40)
   (append 6 3 (17 -1 69 -68 71))
   (sum 11 55)
   (crash 5)
   (append 31 0 (-65 76 86 96 21 46))
   (visit 54 50 32)
   (build-graph 1 300)
   (nested 57 26 5)
   (update 29 15 31 -4)
   (build-graph 13 460)
   (local-update 51 41 0))))

; A worker participates in the session, crashes, is revived, and then
; services another mutating call before the session closes cleanly.
; Pins the crash/revive cycle semantics: the revived worker's cached
; state is still coherent, the close commits exactly once, and the
; sequential oracle agrees with every observation (no lost or doubled
; update across the outage).
(srpc-check-repro
 (version 1)
 (seed 5)
 (workers 2)
 (arches (0 1))
 (strategy 0)
 (fault ((seed 42) (drop 0.0) (dup 0.0)))
 (ops
  ((build-list (1 2 3 4))
   (sum 1 0)
   (crash 1)
   (revive 1)
   (update 1 0 2 5)
   new-session
   (local-update 0 1 -2)
   (sum 0 0))))

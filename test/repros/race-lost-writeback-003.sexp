; srpc-check reproducer — rerun with: srpc check --replay test/repros/race-lost-writeback-003.sexp
; Minimal lost-update scenario (shrunk from seed 0 under the seeded
; Node.chaos_lose_first_writeback defect, 2 ops): a worker updates a
; ground-homed tree node, and the update must travel home with the
; reply. With the defect planted the harness flags it as a CC102
; happens-before race ("write never reached its home"); committed
; clean, it pins that exact data path through all three oracles,
; Race_lint included.
(srpc-check-repro
 (version 1)
 (seed 0)
 (workers 1)
 (arches (0))
 (strategy 0)
 (fault none)
 (ops ((build-tree 1) (update 41 0 0 -1))))

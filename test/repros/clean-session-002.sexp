; srpc-check reproducer — rerun with: srpc check --replay test/repros/clean-session-002.sexp
; Seed 6, depth 12, no faults: single worker, Twin_diff write-back
; strategy. Pins the fault-free end-to-end path (build/visit/update/
; write-back) against both oracles.
(srpc-check-repro
 (version 1)
 (seed 6)
 (workers 1)
 (arches (1))
 (strategy 6)
 (fault none)
 (ops
  ((build-list (38 -38 13 -62 -51 80 -68 39 -10 -47))
   (build-tree 3)
   new-session
   (nested 33 62 27)
   (update 42 55 25 -4)
   (free 48)
   (nested 32 8 20)
   (local-update 63 37 7)
   new-session
   new-session
   (build-graph 1 824)
   (local-update 63 31 7))))

; srpc-check reproducer — rerun with: srpc check --replay test/repros/race-stale-invalidate-004.sexp
; Minimal stale-copy scenario (shrunk from seed 1 under the seeded
; Node.chaos_reorder_invalidate defect, 4 ops): a worker caches
; ground-homed list cells in one session, the session closes, and the
; next session touches the same data. With the defect planted the
; close-time invalidation is acknowledged but not applied, so the
; second session reads a stale copy — flagged as a CC102 race
; ("invalidation never reached this space"). Committed clean, it pins
; the invalidate-then-reuse path through all three oracles.
(srpc-check-repro
 (version 1)
 (seed 1)
 (workers 1)
 (arches (0))
 (strategy 0)
 (fault none)
 (ops ((build-list (21)) (map 53 37 0 0) new-session (update 45 0 0 0))))

; srpc-check reproducer — rerun with: srpc check --replay test/repros/offload-noop-update-006.sexp
; Minimal no-op offloaded update (shrunk from seed 35 of the first
; offload sweep, 2 ops): under the Twin_diff grain (strategy 6 has
; Offload_never, so the plan replays client-side), a store of the value
; already present produces no twin diff and never travels — so the
; walker must witness it as a read, exactly like the Access layer.
; The original walker claimed Acc_write unconditionally and Race_lint
; flagged a phantom CC102 ("write never reached its home"). Committed
; clean, this pins the unchanged-store convention on the walker's
; store path through all three oracles.
(srpc-check-repro
 (version 1)
 (seed 35)
 (workers 1)
 (arches (0))
 (strategy 6)
 (fault none)
 (ops ((build-list (89)) (offload-update 52 21 0 0))))

(* Tests for the adaptive policy subsystem (srpc-adapt): profile
   bookkeeping, controller decisions in isolation, and — the property
   the subsystem exists for — end-to-end convergence of the closed loop
   to within 10% of the best static configuration on the tree-search
   and hot/cold-chain workloads. *)

open Srpc_policy
open Srpc_simnet

(* --- profile --- *)

let test_profile_windows () =
  let p = Profile.create ~max_windows:2 () in
  Profile.prefetched p ~ty:"a" ~bytes:100;
  Profile.outcome p ~ty:"a" ~bytes:40 ~touched:false;
  Profile.end_window p;
  Alcotest.(check int) "one closed window" 1 (Profile.window_count p);
  let s = Profile.summary p ~windows:2 in
  (match List.assoc_opt "a" s.Profile.types with
  | None -> Alcotest.fail "type missing from summary"
  | Some ts ->
    Alcotest.(check int) "prefetched" 100 ts.Profile.ts_prefetched_bytes;
    Alcotest.(check int) "wasted" 40 ts.Profile.ts_wasted_bytes);
  (* history is bounded and old windows roll off the summary *)
  Profile.end_window p;
  Profile.end_window p;
  Profile.end_window p;
  Alcotest.(check int) "bounded history" 2 (Profile.window_count p);
  let s = Profile.summary p ~windows:2 in
  Alcotest.(check bool) "rolled off" true
    (List.assoc_opt "a" s.Profile.types = None)

(* --- controller --- *)

let cost = Cost_model.sparc_10mbps

(* Build decision inputs through the real event API. *)
let summary_of ~ty ?(prefetched = 0) ?(wasted = 0) ?(demand = 0)
    ?(stall = 0.0) () =
  let p = Profile.create () in
  if prefetched > 0 then Profile.prefetched p ~ty ~bytes:prefetched;
  if wasted > 0 then Profile.outcome p ~ty ~bytes:wasted ~touched:false;
  for _ = 1 to demand do
    Profile.demand_fetched p ~ty ~bytes:64
  done;
  if stall > 0.0 then Profile.stall p ~ty ~seconds:stall;
  Profile.end_window p;
  Profile.summary p ~windows:1

let budget_of (d : Controller.decision) ty =
  List.assoc_opt ty d.Controller.budgets

let test_controller_slow_start () =
  let c = Controller.create ~cost () in
  (* stalls, zero waste: the budget doubles *)
  let d =
    Controller.step c (summary_of ~ty:"t" ~prefetched:1000 ~demand:4 ~stall:0.01 ())
  in
  Alcotest.(check (option int)) "doubled" (Some 16384) (budget_of d "t");
  let d =
    Controller.step c (summary_of ~ty:"t" ~prefetched:1000 ~demand:4 ~stall:0.01 ())
  in
  Alcotest.(check (option int)) "doubled again" (Some 32768) (budget_of d "t")

let test_controller_decrease_and_floor () =
  let c = Controller.create ~cost () in
  let waste_heavy () =
    Controller.step c (summary_of ~ty:"t" ~prefetched:100_000 ~wasted:100_000 ())
  in
  Alcotest.(check (option int)) "halved" (Some 4096) (budget_of (waste_heavy ()) "t");
  for _ = 1 to 10 do
    ignore (waste_heavy ())
  done;
  Alcotest.(check (option int)) "clamped at the floor"
    (Some Controller.default_config.Controller.min_budget)
    (budget_of (waste_heavy ()) "t")

let test_controller_idle_holds () =
  let c = Controller.create ~cost () in
  Alcotest.(check int) "initial" 8192 (Controller.budget_for c ~ty:"t");
  let d = Controller.step c (summary_of ~ty:"t" ()) in
  Alcotest.(check (option int)) "held" (Some 8192) (budget_of d "t")

let edge_window c outcome =
  let p = Profile.create () in
  for _ = 1 to 20 do
    Profile.edge p ~ty:"cell" ~field:"next"
      ~outcome:Profile.Prefetched_touched ~bytes:16;
    Profile.edge p ~ty:"cell" ~field:"blob" ~outcome ~bytes:512
  done;
  Profile.end_window p;
  Controller.step c (Profile.summary p ~windows:1)

let test_controller_rules () =
  let c = Controller.create ~cost () in
  match (edge_window c Profile.Prefetched_wasted).Controller.rules with
  | [ r ] ->
    Alcotest.(check string) "type" "cell" r.Controller.rule_ty;
    Alcotest.(check (list string)) "follow the hot edge" [ "next" ]
      r.Controller.follow;
    Alcotest.(check bool) "prune the cold rest" true r.Controller.prune_others
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 rule, got %d" (List.length rs))

let test_controller_rule_heals () =
  let c = Controller.create ~cost () in
  ignore (edge_window c Profile.Prefetched_wasted);
  (* the pruned field is now demanded every time: the prune must lift *)
  match (edge_window c Profile.Demanded).Controller.rules with
  | [ r ] ->
    Alcotest.(check bool) "blob followed again" true
      (List.mem "blob" r.Controller.follow)
  | _ -> Alcotest.fail "expected a revised rule"

(* --- end-to-end convergence --- *)

open Srpc_core
open Srpc_workloads

let static_closures = [ 1024; 4096; 8192; 32768 ]

let best_static_tree ~depth ~ratio =
  let time s =
    (Experiments.run_tree_search ~strategy:s ~depth ~ratio ()).Experiments.seconds
  in
  List.fold_left
    (fun acc s -> min acc (time s))
    infinity
    (Strategy.fully_eager :: Strategy.fully_lazy
    :: List.map (fun c -> Strategy.smart ~closure_size:c ()) static_closures)

let check_tree_convergence ~depth ~sessions ratio =
  let curve = Experiments.run_adaptive_tree_search ~depth ~sessions ~ratio () in
  let final =
    (List.nth curve.Experiments.a_sessions (sessions - 1)).Experiments.seconds
  in
  let best = best_static_tree ~depth ~ratio in
  if not (final <= (1.10 *. best) +. 1e-9) then
    Alcotest.failf
      "ratio %.2f: adaptive final %.6fs not within 10%% of best static %.6fs"
      ratio final best;
  true

let test_tree_convergence_prop =
  QCheck.Test.make ~count:5 ~name:"adaptive within 10% of best static (tree)"
    (QCheck.make (QCheck.Gen.oneofl [ 0.0; 0.25; 0.5; 0.75; 1.0 ]))
    (fun ratio -> check_tree_convergence ~depth:10 ~sessions:12 ratio)

let test_chain_convergence () =
  let cells = 120 and sessions = 10 in
  let r = Experiments.run_adaptive_chain_walk ~cells ~sessions () in
  (* the controller must have learned the A5 hint by itself *)
  (match r.Experiments.ac_hint with
  | None -> Alcotest.fail "no closure-shape hint was derived"
  | Some rule ->
    Alcotest.(check (list string)) "follow next" [ "next" ] rule.Hints.follow;
    Alcotest.(check bool) "prune the blobs" true rule.Hints.prune_others);
  let best =
    List.fold_left
      (fun acc closure ->
        min acc
          (Experiments.run_chain_walk ~hinted:false ~cells ~closure)
            .Experiments.seconds)
      infinity static_closures
  in
  let final =
    (List.nth r.Experiments.ac_sessions (sessions - 1)).Experiments.seconds
  in
  if not (final <= (1.10 *. best) +. 1e-9) then
    Alcotest.failf "adaptive chain final %.6fs not within 10%% of best %.6fs"
      final best

let test_budgets_stay_bounded () =
  let cfg = Controller.default_config in
  let curve =
    Experiments.run_adaptive_tree_search ~depth:8 ~sessions:15 ~ratio:1.0 ()
  in
  List.iter
    (fun (_ty, b) ->
      Alcotest.(check bool) "within bounds" true
        (b >= cfg.Controller.min_budget && b <= cfg.Controller.max_budget))
    curve.Experiments.a_budgets

let tc = Alcotest.test_case

let () =
  Alcotest.run "policy"
    [
      ("profile", [ tc "windows" `Quick test_profile_windows ]);
      ( "controller",
        [
          tc "slow start" `Quick test_controller_slow_start;
          tc "decrease and floor" `Quick test_controller_decrease_and_floor;
          tc "idle holds" `Quick test_controller_idle_holds;
          tc "derives rules" `Quick test_controller_rules;
          tc "rules heal" `Quick test_controller_rule_heals;
        ] );
      ( "convergence",
        [
          QCheck_alcotest.to_alcotest test_tree_convergence_prop;
          tc "chain learns the hint" `Quick test_chain_convergence;
          tc "budgets stay bounded" `Quick test_budgets_stay_bounded;
        ] );
    ]

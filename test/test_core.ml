(* Unit tests for the core runtime's data structures: values, long
   pointers, strategies, the wire protocol, the cache / data allocation
   table, and the type-directed object codec. *)

open Srpc_memory
open Srpc_types
open Srpc_core

let sid1 = Space_id.make ~site:1 ~proc:0
let sid2 = Space_id.make ~site:2 ~proc:0

let mk_reg () =
  let reg = Registry.create () in
  Registry.register reg "node"
    (Type_desc.Struct
       [
         ("left", Type_desc.ptr "node");
         ("right", Type_desc.ptr "node");
         ("data", Type_desc.i64);
       ]);
  Registry.register reg "cell"
    (Type_desc.Struct [ ("next", Type_desc.ptr "cell"); ("v", Type_desc.i32) ]);
  reg

(* --- Value --- *)

let test_value_projections () =
  Alcotest.(check bool) "bool" true (Value.to_bool (Value.bool true));
  Alcotest.(check int) "int" 42 (Value.to_int (Value.int 42));
  Alcotest.(check int64) "int64" 7L (Value.to_int64 (Value.int64 7L));
  Alcotest.(check (float 0.0)) "float" 1.5 (Value.to_float (Value.float 1.5));
  Alcotest.(check string) "str" "s" (Value.to_str (Value.str "s"));
  Alcotest.(check int) "addr" 0x100 (Value.to_addr (Value.ptr ~ty:"node" 0x100));
  Alcotest.(check string) "ty" "node" (Value.ptr_ty (Value.ptr ~ty:"node" 0x100));
  Alcotest.(check int) "null" 0 (Value.to_addr (Value.null ~ty:"node"))

let test_value_type_errors () =
  Alcotest.(check bool) "int of str" true
    (match Value.to_int (Value.str "x") with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "addr of int" true
    (match Value.to_addr (Value.int 3) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_value_equal () =
  Alcotest.(check bool) "ptr eq" true
    (Value.equal (Value.ptr ~ty:"a" 1) (Value.ptr ~ty:"a" 1));
  Alcotest.(check bool) "ptr ty neq" false
    (Value.equal (Value.ptr ~ty:"a" 1) (Value.ptr ~ty:"b" 1));
  Alcotest.(check bool) "cross neq" false (Value.equal Value.unit (Value.int 0))

(* --- Long_pointer --- *)

let test_lp_equal_hash () =
  let a = Long_pointer.make ~origin:sid1 ~addr:0x10 ~ty:"node" in
  let b = Long_pointer.make ~origin:sid1 ~addr:0x10 ~ty:"node" in
  let c = Long_pointer.make ~origin:sid2 ~addr:0x10 ~ty:"node" in
  Alcotest.(check bool) "equal" true (Long_pointer.equal a b);
  Alcotest.(check bool) "origin matters" false (Long_pointer.equal a c);
  Alcotest.(check bool) "hash consistent" true
    (Long_pointer.hash a = Long_pointer.hash b)

let test_lp_provisional () =
  let p = Long_pointer.make ~origin:sid1 ~addr:(-3) ~ty:"node" in
  Alcotest.(check bool) "provisional" true (Long_pointer.is_provisional p);
  Alcotest.(check bool) "regular" false
    (Long_pointer.is_provisional (Long_pointer.make ~origin:sid1 ~addr:3 ~ty:"node"))

let test_lp_wire_roundtrip () =
  let reg = mk_reg () in
  let roundtrip lp =
    let e = Srpc_xdr.Xdr.Enc.create () in
    Long_pointer.encode ~reg e lp;
    let d = Srpc_xdr.Xdr.Dec.of_string (Srpc_xdr.Xdr.Enc.to_string e) in
    let lp' = Long_pointer.decode ~reg d in
    Srpc_xdr.Xdr.Dec.check_end d;
    lp'
  in
  let lp = Long_pointer.make ~origin:sid2 ~addr:0xbeef ~ty:"cell" in
  (match roundtrip (Some lp) with
  | Some lp' -> Alcotest.(check bool) "roundtrip" true (Long_pointer.equal lp lp')
  | None -> Alcotest.fail "lost pointer");
  Alcotest.(check bool) "null" true (roundtrip None = None)

let test_lp_wire_size () =
  let reg = mk_reg () in
  let e = Srpc_xdr.Xdr.Enc.create () in
  Long_pointer.encode ~reg e
    (Some (Long_pointer.make ~origin:sid1 ~addr:0x1000 ~ty:"node"));
  Alcotest.(check int) "20 bytes" 20 (Srpc_xdr.Xdr.Enc.length e);
  let e2 = Srpc_xdr.Xdr.Enc.create () in
  Long_pointer.encode ~reg e2 None;
  Alcotest.(check int) "null 4 bytes" 4 (Srpc_xdr.Xdr.Enc.length e2)

(* --- Strategy --- *)

let test_strategy_presets () =
  Alcotest.(check bool) "eager unbounded" true
    (Strategy.fully_eager.Strategy.budget = Strategy.Unbounded);
  Alcotest.(check bool) "lazy zero" true
    (Strategy.fully_lazy.Strategy.budget = Strategy.Bytes 0);
  Alcotest.(check bool) "lazy entry-per-page" true
    (Strategy.fully_lazy.Strategy.grouping = Strategy.Entry_per_page);
  Alcotest.(check bool) "smart default 8192" true
    ((Strategy.smart ()).Strategy.budget = Strategy.Bytes 8192)

let test_strategy_budget_allows () =
  let s = Strategy.smart ~closure_size:100 () in
  Alcotest.(check bool) "fits" true (Strategy.budget_allows s ~total:50 ~extra:50);
  Alcotest.(check bool) "overflows" false
    (Strategy.budget_allows s ~total:50 ~extra:51);
  Alcotest.(check bool) "unbounded" true
    (Strategy.budget_allows Strategy.fully_eager ~total:max_int ~extra:0)

(* --- Wire --- *)

let test_wire_request_roundtrips () =
  let reg = mk_reg () in
  let lp = Long_pointer.make ~origin:sid1 ~addr:0x40 ~ty:"node" in
  let item = { Wire.lp; data = "payload" } in
  let reqs =
    [
      Wire.Call
        {
          session = 3;
          proc = "search";
          args =
            [
              Wire.WUnit;
              Wire.WBool true;
              Wire.WInt 9L;
              Wire.WFloat 0.5;
              Wire.WStr "s";
              Wire.WPtr (Some lp);
              Wire.WPtr None;
            ];
          writebacks = [ item ];
          eager = [ item; item ];
        };
      Wire.Fetch { session = 1; wanted = [ lp ] };
      Wire.Write_back { session = 2; items = [ item ] };
      Wire.Alloc_batch { session = 4; reqs = [ (-1, "node"); (-2, "cell") ] };
      Wire.Free_batch { session = 5; lps = [ lp ] };
      Wire.Invalidate { session = 6 };
    ]
  in
  List.iter
    (fun req ->
      let req' = Wire.decode_request ~reg (Wire.encode_request ~reg req) in
      Alcotest.(check string)
        "request roundtrip"
        (Format.asprintf "%a" Wire.pp_request req)
        (Format.asprintf "%a" Wire.pp_request req');
      (* structural check for the Call payload *)
      match (req, req') with
      | Wire.Call a, Wire.Call b ->
        Alcotest.(check bool) "args equal" true (a.args = b.args);
        Alcotest.(check int) "wb" 1 (List.length b.writebacks)
      | _ -> ())
    reqs

let test_wire_response_roundtrips () =
  let reg = mk_reg () in
  let lp = Long_pointer.make ~origin:sid2 ~addr:0x99 ~ty:"cell" in
  let item = { Wire.lp; data = String.make 9 'z' } in
  let resps =
    [
      Wire.Return
        { results = [ Wire.WInt 1L ]; writebacks = [ item ]; eager = [] };
      Wire.Fetched { items = [ item; item ] };
      Wire.Allocated { addrs = [ (-1, 0x2000); (-2, 0x3000) ] };
      Wire.Ack;
      Wire.Error "boom";
    ]
  in
  List.iter
    (fun resp ->
      let resp' = Wire.decode_response ~reg (Wire.encode_response ~reg resp) in
      Alcotest.(check string)
        "response roundtrip"
        (Format.asprintf "%a" Wire.pp_response resp)
        (Format.asprintf "%a" Wire.pp_response resp'))
    resps

let test_wire_garbage_rejected () =
  let reg = mk_reg () in
  Alcotest.(check bool) "bad tag" true
    (match Wire.decode_request ~reg "\xff\xff\xff\xff" with
    | _ -> false
    | exception Srpc_xdr.Xdr.Decode_error _ -> true)

(* --- Cache / data allocation table --- *)

let mk_cache ?(grouping = Strategy.By_origin) ?(grain = Strategy.Page_grain) () =
  let space = Address_space.create ~page_size:256 ~id:sid2 ~arch:Arch.sparc32 () in
  (space, Cache.create ~space ~base:4096 ~limit:65536 ~grouping ~grain)

let lp_at ?(origin = sid1) ?(ty = "node") addr = Long_pointer.make ~origin ~addr ~ty

let test_cache_allocate_maps_protected () =
  let space, cache = mk_cache () in
  let e = Cache.allocate cache (lp_at 0x100) ~size:16 in
  Alcotest.(check bool) "in region" true (Cache.in_region cache e.Cache.local_addr);
  Alcotest.(check bool) "absent" false e.Cache.present;
  List.iter
    (fun page ->
      Alcotest.(check (option bool))
        "no access" (Some false)
        (Option.map Prot.allows_read (Address_space.protection space ~page)))
    e.Cache.pages

let test_cache_same_origin_shares_page () =
  let _, cache = mk_cache () in
  let a = Cache.allocate cache (lp_at 0x100) ~size:16 in
  let b = Cache.allocate cache (lp_at 0x200) ~size:16 in
  Alcotest.(check (list int)) "same page" a.Cache.pages b.Cache.pages;
  Alcotest.(check int) "packed" 16 (b.Cache.local_addr - a.Cache.local_addr)

let test_cache_by_origin_separates_origins () =
  let _, cache = mk_cache () in
  let a = Cache.allocate cache (lp_at ~origin:sid1 0x100) ~size:16 in
  let b =
    Cache.allocate cache (lp_at ~origin:(Space_id.make ~site:9 ~proc:0) 0x100)
      ~size:16
  in
  Alcotest.(check bool) "different pages" true (a.Cache.pages <> b.Cache.pages)

let test_cache_sequential_mixes_origins () =
  let _, cache = mk_cache ~grouping:Strategy.Sequential () in
  let a = Cache.allocate cache (lp_at ~origin:sid1 0x100) ~size:16 in
  let b =
    Cache.allocate cache (lp_at ~origin:(Space_id.make ~site:9 ~proc:0) 0x100)
      ~size:16
  in
  Alcotest.(check (list int)) "same page" a.Cache.pages b.Cache.pages

let test_cache_entry_per_page () =
  let _, cache = mk_cache ~grouping:Strategy.Entry_per_page () in
  let a = Cache.allocate cache (lp_at 0x100) ~size:16 in
  let b = Cache.allocate cache (lp_at 0x200) ~size:16 in
  Alcotest.(check bool) "separate pages" true (a.Cache.pages <> b.Cache.pages)

let test_cache_large_entry_spans_pages () =
  let _, cache = mk_cache () in
  let e = Cache.allocate cache (lp_at 0x100 ~ty:"big") ~size:600 in
  Alcotest.(check int) "three 256-byte pages" 3 (List.length e.Cache.pages)

let test_cache_duplicate_lp_rejected () =
  let _, cache = mk_cache () in
  ignore (Cache.allocate cache (lp_at 0x100) ~size:16);
  Alcotest.(check bool) "dup" true
    (match Cache.allocate cache (lp_at 0x100) ~size:16 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_cache_lookups () =
  let _, cache = mk_cache () in
  let e = Cache.allocate cache (lp_at 0x100) ~size:16 in
  Alcotest.(check bool) "by lp" true
    (match Cache.find_by_lp cache (lp_at 0x100) with
    | Some e' -> e'.Cache.local_addr = e.Cache.local_addr
    | None -> false);
  Alcotest.(check bool) "by addr" true
    (Cache.find_by_addr cache e.Cache.local_addr <> None);
  Alcotest.(check bool) "interior addr misses" true
    (Cache.find_by_addr cache (e.Cache.local_addr + 4) = None);
  Alcotest.(check int) "count" 1 (Cache.entry_count cache)

let test_cache_mark_present_unprotects () =
  let space, cache = mk_cache () in
  let e = Cache.allocate cache (lp_at 0x100) ~size:16 in
  Cache.mark_present cache e;
  List.iter
    (fun page ->
      Alcotest.(check (option string))
        "read-only" (Some "r--")
        (Option.map Prot.to_string (Address_space.protection space ~page)))
    e.Cache.pages

let test_cache_partial_presence_stays_protected () =
  let space, cache = mk_cache () in
  let a = Cache.allocate cache (lp_at 0x100) ~size:16 in
  let _b = Cache.allocate cache (lp_at 0x200) ~size:16 in
  Cache.mark_present cache a;
  (* page shared with absent b: must stay inaccessible *)
  List.iter
    (fun page ->
      Alcotest.(check (option string))
        "no access" (Some "---")
        (Option.map Prot.to_string (Address_space.protection space ~page)))
    a.Cache.pages

let test_cache_dirty_cycle () =
  let space, cache = mk_cache () in
  let e = Cache.allocate cache (lp_at 0x100) ~size:16 in
  Cache.mark_present cache e;
  let page = List.hd e.Cache.pages in
  Cache.mark_page_dirty cache ~page;
  Alcotest.(check (option string))
    "read-write" (Some "rw-")
    (Option.map Prot.to_string (Address_space.protection space ~page));
  let dirty = Cache.dirty_entries cache in
  Alcotest.(check int) "one dirty" 1 (List.length dirty);
  Cache.clean_after_flush cache;
  Alcotest.(check (list int)) "no dirty pages" [] (Cache.dirty_pages cache);
  Alcotest.(check int) "clean" 0 (List.length (Cache.dirty_entries cache));
  Alcotest.(check (option string))
    "read-only again" (Some "r--")
    (Option.map Prot.to_string (Address_space.protection space ~page))

let test_cache_page_grain_ships_neighbours () =
  let _, cache = mk_cache () in
  let a = Cache.allocate cache (lp_at 0x100) ~size:16 in
  let b = Cache.allocate cache (lp_at 0x200) ~size:16 in
  Cache.mark_present cache a;
  Cache.mark_present cache b;
  Cache.mark_page_dirty cache ~page:(List.hd a.Cache.pages);
  (* page-grain: both entries of the dirty page ship *)
  Alcotest.(check int) "both ship" 2 (List.length (Cache.dirty_entries cache))

let test_cache_twin_diff_ships_changed_only () =
  let space, cache = mk_cache ~grain:Strategy.Twin_diff () in
  let a = Cache.allocate cache (lp_at 0x100) ~size:16 in
  let b = Cache.allocate cache (lp_at 0x200) ~size:16 in
  Cache.mark_present cache a;
  Cache.mark_present cache b;
  Cache.mark_page_dirty cache ~page:(List.hd a.Cache.pages);
  (* modify only b *)
  Address_space.write_unchecked space ~addr:b.Cache.local_addr
    (Bytes.of_string "modified");
  let dirty = Cache.dirty_entries cache in
  Alcotest.(check int) "only b" 1 (List.length dirty);
  Alcotest.(check int) "it is b" b.Cache.local_addr
    (List.hd dirty).Cache.local_addr

let test_cache_explicit_dirty_flag_ships () =
  let _, cache = mk_cache () in
  let e = Cache.allocate cache (lp_at 0x100) ~size:16 in
  Cache.mark_present cache e;
  (* dirtied without a page fault (e.g. installed writeback) *)
  e.Cache.dirty <- true;
  Alcotest.(check int) "ships" 1 (List.length (Cache.dirty_entries cache))

let test_cache_rebind () =
  let _, cache = mk_cache () in
  let prov = lp_at (-1) in
  let e = Cache.allocate cache prov ~size:16 in
  let real = lp_at 0x2000 in
  Cache.rebind cache e real;
  Alcotest.(check bool) "old gone" true (Cache.find_by_lp cache prov = None);
  Alcotest.(check bool) "new found" true (Cache.find_by_lp cache real <> None);
  Alcotest.(check bool) "lp updated" true (Long_pointer.equal e.Cache.lp real)

let test_cache_remove () =
  let _, cache = mk_cache () in
  let e = Cache.allocate cache (lp_at 0x100) ~size:16 in
  Cache.remove cache e;
  Alcotest.(check bool) "by lp gone" true (Cache.find_by_lp cache (lp_at 0x100) = None);
  Alcotest.(check bool) "by addr gone" true
    (Cache.find_by_addr cache e.Cache.local_addr = None);
  Alcotest.(check int) "no entries" 0 (Cache.entry_count cache)

let test_cache_slot_reuse () =
  let _, cache = mk_cache () in
  let e = Cache.allocate cache (lp_at 0x100) ~size:16 in
  let addr = e.Cache.local_addr in
  Cache.remove cache e;
  let e2 = Cache.allocate cache (lp_at 0x200) ~size:16 in
  Alcotest.(check int) "slot reused" addr e2.Cache.local_addr;
  (* a different size class does not reuse it *)
  Cache.remove cache e2;
  let e3 = Cache.allocate cache (lp_at 0x300) ~size:48 in
  Alcotest.(check bool) "size class respected" true (e3.Cache.local_addr <> addr)

let test_cache_invalidate () =
  let space, cache = mk_cache () in
  let e = Cache.allocate cache (lp_at 0x100) ~size:16 in
  Cache.mark_present cache e;
  Cache.invalidate cache;
  Alcotest.(check int) "empty" 0 (Cache.entry_count cache);
  Alcotest.(check int) "bytes" 0 (Cache.allocated_bytes cache);
  List.iter
    (fun page ->
      Alcotest.(check bool) "unmapped" false (Address_space.is_mapped space ~page))
    e.Cache.pages;
  (* region is reusable afterwards *)
  ignore (Cache.allocate cache (lp_at 0x100) ~size:16)

let test_cache_accounting () =
  let _, cache = mk_cache () in
  ignore (Cache.allocate cache (lp_at 0x100) ~size:10);
  ignore (Cache.allocate cache (lp_at 0x200) ~size:16);
  Alcotest.(check int) "rounded sum" 32 (Cache.allocated_bytes cache);
  Alcotest.(check int) "one page" 1 (Cache.used_pages cache)

let test_cache_table_rendering () =
  let _, cache = mk_cache () in
  ignore (Cache.allocate cache (lp_at 0x100) ~size:16);
  ignore (Cache.allocate cache (lp_at 0x200) ~size:16);
  let s = Format.asprintf "%a" Cache.pp_table cache in
  Alcotest.(check bool) "header" true
    (String.length s > 0
    && String.sub s 0 6 = "page #");
  (* two entry rows after the header *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "rows" true (List.length lines >= 3)

(* --- Object codec --- *)

let codec_ctxs reg ~enc_arch ~dec_arch ~unswizzle ~swizzle =
  ( { Object_codec.enc_reg = reg; enc_arch; unswizzle },
    { Object_codec.dec_reg = reg; dec_arch; swizzle } )

let test_codec_scalar_roundtrip_same_arch () =
  let reg = mk_reg () in
  let enc_ctx, dec_ctx =
    codec_ctxs reg ~enc_arch:Arch.sparc32 ~dec_arch:Arch.sparc32
      ~unswizzle:(fun ~ty:_ _ -> None)
      ~swizzle:(fun _ -> 0)
  in
  let raw = Bytes.make 16 '\000' in
  Mem.Codec.set_i64 Arch.Big raw 8 0x0123456789abcdefL;
  let decoded = Object_codec.decode dec_ctx ~ty:"node"
      (Object_codec.encode enc_ctx ~ty:"node" raw) in
  Alcotest.(check bytes) "identical" raw decoded

let test_codec_cross_arch_translation () =
  (* 16-byte big-endian 32-bit image -> 24-byte little-endian 64-bit image *)
  let reg = mk_reg () in
  let enc_ctx, dec_ctx =
    codec_ctxs reg ~enc_arch:Arch.sparc32 ~dec_arch:Arch.lp64_le
      ~unswizzle:(fun ~ty:_ w ->
        Some (Long_pointer.make ~origin:sid1 ~addr:w ~ty:"node"))
      ~swizzle:(function Some lp -> lp.Long_pointer.addr * 2 | None -> 0)
  in
  let raw = Bytes.make 16 '\000' in
  Mem.Codec.set_word Arch.sparc32 raw 0 0x111;
  (* left *)
  Mem.Codec.set_word Arch.sparc32 raw 4 0;
  (* right = null *)
  Mem.Codec.set_i64 Arch.Big raw 8 77L;
  let out = Object_codec.decode dec_ctx ~ty:"node"
      (Object_codec.encode enc_ctx ~ty:"node" raw) in
  Alcotest.(check int) "64-bit image" 24 (Bytes.length out);
  Alcotest.(check int) "left swizzled" 0x222 (Mem.Codec.get_word Arch.lp64_le out 0);
  Alcotest.(check int) "null stays null" 0 (Mem.Codec.get_word Arch.lp64_le out 8);
  Alcotest.(check int64) "data" 77L (Mem.Codec.get_i64 Arch.Little out 16)

let test_codec_wrong_size_rejected () =
  let reg = mk_reg () in
  let enc_ctx, _ =
    codec_ctxs reg ~enc_arch:Arch.sparc32 ~dec_arch:Arch.sparc32
      ~unswizzle:(fun ~ty:_ _ -> None)
      ~swizzle:(fun _ -> 0)
  in
  Alcotest.(check bool) "size check" true
    (match Object_codec.encode enc_ctx ~ty:"node" (Bytes.make 5 ' ') with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_codec_scalar_leaf_count () =
  let reg = mk_reg () in
  Alcotest.(check int) "node" 1 (Object_codec.scalar_leaf_count reg ~ty:"node");
  Alcotest.(check int) "cell" 1 (Object_codec.scalar_leaf_count reg ~ty:"cell")

(* --- Hints --- *)

let hints_reg () =
  let reg = mk_reg () in
  Registry.register reg "rich"
    (Type_desc.Struct
       [
         ("a", Type_desc.ptr "node");
         ("b", Type_desc.ptr "cell");
         ("x", Type_desc.i64);
         ("c", Type_desc.ptr "node");
       ]);
  reg

let test_hints_default_is_all_pointers () =
  let reg = hints_reg () in
  let h = Hints.create () in
  Alcotest.(check int) "three pointer leaves" 3
    (List.length (Hints.pointer_fields h reg Arch.sparc32 ~ty:"rich"))

let test_hints_follow_order () =
  let reg = hints_reg () in
  let h = Hints.create () in
  Hints.set h ~ty:"rich" { Hints.follow = [ "c"; "a" ]; prune_others = false };
  let fields = Hints.pointer_fields h reg Arch.sparc32 ~ty:"rich" in
  (* c (offset 16), a (offset 0), then the unlisted b (offset 4) *)
  Alcotest.(check (list (pair int string)))
    "priority order"
    [ (16, "node"); (0, "node"); (4, "cell") ]
    fields

let test_hints_prune_others () =
  let reg = hints_reg () in
  let h = Hints.create () in
  Hints.set h ~ty:"rich" { Hints.follow = [ "a" ]; prune_others = true };
  Alcotest.(check (list (pair int string)))
    "only a" [ (0, "node") ]
    (Hints.pointer_fields h reg Arch.sparc32 ~ty:"rich")

let test_hints_clear () =
  let reg = hints_reg () in
  let h = Hints.create () in
  Hints.set h ~ty:"rich" { Hints.follow = []; prune_others = true };
  Alcotest.(check int) "pruned all" 0
    (List.length (Hints.pointer_fields h reg Arch.sparc32 ~ty:"rich"));
  Hints.clear h ~ty:"rich";
  Alcotest.(check int) "restored" 3
    (List.length (Hints.pointer_fields h reg Arch.sparc32 ~ty:"rich"))

let test_hints_unknown_field () =
  let reg = hints_reg () in
  let h = Hints.create () in
  Hints.set h ~ty:"rich" { Hints.follow = [ "nope" ]; prune_others = true };
  Alcotest.check_raises "unknown field"
    (Hints.Unknown_field { ty = "rich"; field = "nope" })
    (fun () -> ignore (Hints.pointer_fields h reg Arch.sparc32 ~ty:"rich"))

(* --- funref values --- *)

let test_value_funref () =
  let f = Value.fn ~home:sid1 ~name:"proc" in
  Alcotest.(check string) "name" "proc" (Value.to_funref f).Value.name;
  Alcotest.(check bool) "equal" true (Value.equal f (Value.fn ~home:sid1 ~name:"proc"));
  Alcotest.(check bool) "home differs" false
    (Value.equal f (Value.fn ~home:sid2 ~name:"proc"));
  Alcotest.(check bool) "not a funref" true
    (match Value.to_funref (Value.int 1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_wire_funref_roundtrip () =
  let reg = mk_reg () in
  let req =
    Wire.Call
      {
        session = 1;
        proc = "apply";
        args = [ Wire.WFun { Value.home = sid2; name = "callback_42" } ];
        writebacks = [];
        eager = [];
      }
  in
  match Wire.decode_request ~reg (Wire.encode_request ~reg req) with
  | Wire.Call { args = [ Wire.WFun f ]; _ } ->
    Alcotest.(check bool) "home" true (Space_id.equal f.Value.home sid2);
    Alcotest.(check string) "name" "callback_42" f.Value.name
  | _ -> Alcotest.fail "lost funref"

(* --- Session --- *)

let test_session_lifecycle () =
  let s = Session.create () in
  Alcotest.(check bool) "inactive" false (Session.is_active s);
  let info = Session.begin_session s ~ground:sid1 in
  Alcotest.(check int) "first id" 1 info.Session.id;
  Alcotest.check_raises "double begin" Session.Session_already_active (fun () ->
      ignore (Session.begin_session s ~ground:sid1));
  Session.join s sid2;
  Alcotest.(check int) "participants" 2
    (Space_id.Set.cardinal (Session.current_exn s).Session.participants);
  Session.close s;
  Alcotest.(check bool) "closed" false (Session.is_active s);
  Alcotest.check_raises "no session" Session.No_active_session (fun () ->
      ignore (Session.current_exn s));
  let info2 = Session.begin_session s ~ground:sid2 in
  Alcotest.(check int) "ids increase" 2 info2.Session.id

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "core"
    [
      ( "value",
        [
          tc "projections" `Quick test_value_projections;
          tc "type errors" `Quick test_value_type_errors;
          tc "equality" `Quick test_value_equal;
        ] );
      ( "long-pointer",
        [
          tc "equal/hash" `Quick test_lp_equal_hash;
          tc "provisional" `Quick test_lp_provisional;
          tc "wire roundtrip" `Quick test_lp_wire_roundtrip;
          tc "wire size" `Quick test_lp_wire_size;
        ] );
      ( "strategy",
        [
          tc "presets" `Quick test_strategy_presets;
          tc "budget" `Quick test_strategy_budget_allows;
        ] );
      ( "wire",
        [
          tc "request roundtrips" `Quick test_wire_request_roundtrips;
          tc "response roundtrips" `Quick test_wire_response_roundtrips;
          tc "garbage rejected" `Quick test_wire_garbage_rejected;
        ] );
      ( "cache",
        [
          tc "allocate maps protected pages" `Quick test_cache_allocate_maps_protected;
          tc "same origin shares page" `Quick test_cache_same_origin_shares_page;
          tc "by-origin separates origins" `Quick test_cache_by_origin_separates_origins;
          tc "sequential mixes origins" `Quick test_cache_sequential_mixes_origins;
          tc "entry per page" `Quick test_cache_entry_per_page;
          tc "large entry spans pages" `Quick test_cache_large_entry_spans_pages;
          tc "duplicate lp rejected" `Quick test_cache_duplicate_lp_rejected;
          tc "lookups" `Quick test_cache_lookups;
          tc "mark present unprotects" `Quick test_cache_mark_present_unprotects;
          tc "partial presence stays protected" `Quick
            test_cache_partial_presence_stays_protected;
          tc "dirty cycle" `Quick test_cache_dirty_cycle;
          tc "page grain ships neighbours" `Quick test_cache_page_grain_ships_neighbours;
          tc "twin diff ships changed only" `Quick test_cache_twin_diff_ships_changed_only;
          tc "explicit dirty flag ships" `Quick test_cache_explicit_dirty_flag_ships;
          tc "rebind" `Quick test_cache_rebind;
          tc "remove" `Quick test_cache_remove;
          tc "slot reuse after remove" `Quick test_cache_slot_reuse;
          tc "invalidate" `Quick test_cache_invalidate;
          tc "accounting" `Quick test_cache_accounting;
          tc "table rendering (Table 1)" `Quick test_cache_table_rendering;
        ] );
      ( "object-codec",
        [
          tc "scalar roundtrip same arch" `Quick test_codec_scalar_roundtrip_same_arch;
          tc "cross-arch translation" `Quick test_codec_cross_arch_translation;
          tc "wrong size rejected" `Quick test_codec_wrong_size_rejected;
          tc "scalar leaf count" `Quick test_codec_scalar_leaf_count;
        ] );
      ( "hints",
        [
          tc "default follows all pointers" `Quick test_hints_default_is_all_pointers;
          tc "follow order" `Quick test_hints_follow_order;
          tc "prune others" `Quick test_hints_prune_others;
          tc "clear restores default" `Quick test_hints_clear;
          tc "unknown field rejected" `Quick test_hints_unknown_field;
        ] );
      ( "funref",
        [
          tc "value projections" `Quick test_value_funref;
          tc "wire roundtrip" `Quick test_wire_funref_roundtrip;
        ] );
      ("session", [ tc "lifecycle" `Quick test_session_lifecycle ]);
    ]

(* Property-based tests (QCheck, registered as alcotest cases).

   Invariants covered:
   - XDR: every scalar and composite roundtrips; frame length is always
     4-byte aligned.
   - Allocator: any alloc/free trace preserves the free-list invariants,
     accounting, and block disjointness.
   - Layout: sizes are positive multiples of alignment; leaf offsets fit
     inside the type on every architecture.
   - Object codec: encode/decode across random architecture pairs is
     lossless on scalar leaves and maps pointers through
     unswizzle/swizzle.
   - End to end: remote list/tree traversal equals local reference
     computation for every method; remote in-place update equals the
     local reference after write-back. *)

open Srpc_memory
open Srpc_types
open Srpc_core
open Srpc_simnet
open Srpc_workloads
module Q = QCheck

(* Pinned PRNG so tier-1 is reproducible run-to-run; export SRPC_SEED=N
   to explore another schedule. The effective value is printed when a
   property fails. *)
let seed =
  match Sys.getenv_opt "SRPC_SEED" with
  | Some s -> int_of_string s
  | None -> 0xC0FFEE

let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t

(* --- XDR --- *)

let xdr_int_roundtrip =
  Q.Test.make ~name:"xdr int32 roundtrip" ~count:500
    (Q.int_range (-0x40000000) 0x3fffffff) (fun v ->
      Srpc_xdr.Xdr.(roundturn Enc.int Dec.int v) = v)

let xdr_hyper_roundtrip =
  Q.Test.make ~name:"xdr hyper roundtrip" ~count:500 Q.int (fun v ->
      Srpc_xdr.Xdr.(roundturn Enc.hyper Dec.hyper v) = v)

let xdr_float_roundtrip =
  Q.Test.make ~name:"xdr float64 roundtrip" ~count:500 Q.float (fun v ->
      let v' = Srpc_xdr.Xdr.(roundturn Enc.float64 Dec.float64 v) in
      (Float.is_nan v && Float.is_nan v') || v = v')

let xdr_string_roundtrip =
  Q.Test.make ~name:"xdr string roundtrip" ~count:500 Q.string (fun s ->
      Srpc_xdr.Xdr.(roundturn Enc.string Dec.string s) = s)

let xdr_string_alignment =
  Q.Test.make ~name:"xdr frames are 4-aligned" ~count:500 Q.string (fun s ->
      let e = Srpc_xdr.Xdr.Enc.create () in
      Srpc_xdr.Xdr.Enc.string e s;
      Srpc_xdr.Xdr.Enc.length e mod 4 = 0)

let xdr_int_list_roundtrip =
  Q.Test.make ~name:"xdr list roundtrip" ~count:200 Q.(list int) (fun xs ->
      Srpc_xdr.Xdr.(
        roundturn (fun e -> Enc.list e Enc.hyper) (fun d -> Dec.list d Dec.hyper) xs)
      = xs)

(* --- Allocator --- *)

type heap_op = Alloc of int | Free of int

let heap_op_gen =
  Q.Gen.(
    frequency
      [ (3, map (fun n -> Alloc (n mod 200)) nat); (2, map (fun i -> Free i) nat) ])

let heap_ops_arb =
  Q.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function Alloc n -> Printf.sprintf "A%d" n | Free i -> Printf.sprintf "F%d" i)
           ops))
    Q.Gen.(list_size (int_range 1 120) heap_op_gen)

let allocator_invariants =
  Q.Test.make ~name:"allocator invariants under random traces" ~count:200
    heap_ops_arb (fun ops ->
      let space =
        Address_space.create ~page_size:256
          ~id:(Space_id.make ~site:1 ~proc:0)
          ~arch:Arch.sparc32 ()
      in
      let heap = Allocator.create ~space ~base:1024 ~limit:32768 in
      let live = ref [] in
      List.iter
        (fun op ->
          match op with
          | Alloc n -> (
            match Allocator.alloc heap ~size:n with
            | addr -> live := addr :: !live
            | exception Allocator.Out_of_region _ -> ())
          | Free i ->
            if !live <> [] then begin
              let k = i mod List.length !live in
              let addr = List.nth !live k in
              Allocator.free heap addr;
              live := List.filteri (fun j _ -> j <> k) !live
            end)
        ops;
      (match Allocator.check_invariants heap with
      | Ok () -> true
      | Error msg -> Q.Test.fail_report msg)
      && List.length !live = Allocator.live_blocks heap)

let allocator_blocks_disjoint =
  Q.Test.make ~name:"live blocks are pairwise disjoint" ~count:100 heap_ops_arb
    (fun ops ->
      let space =
        Address_space.create ~page_size:256
          ~id:(Space_id.make ~site:1 ~proc:0)
          ~arch:Arch.sparc32 ()
      in
      let heap = Allocator.create ~space ~base:1024 ~limit:32768 in
      List.iter
        (function
          | Alloc n -> (
            try ignore (Allocator.alloc heap ~size:n)
            with Allocator.Out_of_region _ -> ())
          | Free _ -> ())
        ops;
      let blocks = ref [] in
      Allocator.iter_live heap (fun addr size -> blocks := (addr, size) :: !blocks);
      let sorted = List.sort compare !blocks in
      let rec disjoint = function
        | (a, s) :: ((a', _) :: _ as rest) -> a + s <= a' && disjoint rest
        | _ -> true
      in
      disjoint sorted)

(* --- Layout --- *)

let arch_gen = Q.Gen.oneofl [ Arch.sparc32; Arch.ilp32_le; Arch.lp64_le; Arch.lp64_be ]

let prim_gen =
  Q.Gen.oneofl
    [ Type_desc.I8; Type_desc.I16; Type_desc.I32; Type_desc.I64; Type_desc.F32;
      Type_desc.F64 ]

(* random struct of scalars and (possibly null-typed) pointers *)
let struct_gen =
  Q.Gen.(
    let field i =
      map
        (fun k ->
          ( Printf.sprintf "f%d" i,
            match k with
            | `P -> Type_desc.ptr "tnode"
            | `S p -> Type_desc.Prim p ))
        (oneof [ return `P; map (fun p -> `S p) prim_gen ])
    in
    int_range 1 8 >>= fun n ->
    flatten_l (List.init n field) >|= fun fs -> Type_desc.Struct fs)

let layout_arb =
  Q.make
    ~print:(fun (arch, d) -> Format.asprintf "%s / %a" arch.Arch.name Type_desc.pp d)
    Q.Gen.(pair arch_gen struct_gen)

let mk_reg_with ty =
  let reg = Registry.create () in
  Registry.register reg "tnode"
    (Type_desc.Struct [ ("next", Type_desc.ptr "tnode"); ("v", Type_desc.i64) ]);
  Registry.register reg "t" ty;
  reg

let layout_size_positive_aligned =
  Q.Test.make ~name:"layout size positive and aligned" ~count:300 layout_arb
    (fun (arch, ty) ->
      let reg = mk_reg_with ty in
      let l = Layout.of_type reg arch (Type_desc.Named "t") in
      l.Layout.size > 0 && l.Layout.align > 0 && l.Layout.size mod l.Layout.align = 0)

let layout_leaves_in_bounds =
  Q.Test.make ~name:"leaf offsets fit inside the type" ~count:300 layout_arb
    (fun (arch, ty) ->
      let reg = mk_reg_with ty in
      let size = Layout.sizeof reg arch (Type_desc.Named "t") in
      List.for_all
        (fun { Layout.leaf_offset = off; kind } ->
          let leaf_size =
            match kind with
            | Layout.Scalar p -> Type_desc.prim_size p
            | Layout.Ptr _ -> arch.Arch.word_size
          in
          off >= 0 && off + leaf_size <= size)
        (Layout.leaves reg arch (Type_desc.Named "t")))

let layout_leaves_no_overlap =
  Q.Test.make ~name:"leaves do not overlap" ~count:300 layout_arb (fun (arch, ty) ->
      let reg = mk_reg_with ty in
      let spans =
        List.map
          (fun { Layout.leaf_offset = off; kind } ->
            let n =
              match kind with
              | Layout.Scalar p -> Type_desc.prim_size p
              | Layout.Ptr _ -> arch.Arch.word_size
            in
            (off, off + n))
          (Layout.leaves reg arch (Type_desc.Named "t"))
      in
      let sorted = List.sort compare spans in
      let rec ok = function
        | (_, e) :: ((s, _) :: _ as rest) -> e <= s && ok rest
        | _ -> true
      in
      ok sorted)

(* --- Object codec across random architecture pairs --- *)

let codec_roundtrip_cross_arch =
  Q.Test.make ~name:"object codec scalars survive arch translation" ~count:200
    (Q.make
       Q.Gen.(
         triple arch_gen arch_gen (pair struct_gen (list_size (int_range 0 12) int))))
    (fun (arch_a, arch_b, (ty, ints)) ->
      let reg = mk_reg_with ty in
      let size_a = Layout.sizeof reg arch_a (Type_desc.Named "t") in
      let raw = Bytes.make size_a '\000' in
      (* fill scalar leaves with deterministic data derived from ints *)
      let pool = Array.of_list (0x11 :: List.map abs ints) in
      let pick i = pool.(i mod Array.length pool) in
      List.iteri
        (fun i { Layout.leaf_offset = off; kind } ->
          match kind with
          | Layout.Scalar p -> (
            let v = pick i in
            match p with
            | Type_desc.I8 -> Mem.Codec.set_i8 raw off (v land 0xff)
            | I16 -> Mem.Codec.set_i16 arch_a.Arch.endian raw off (v land 0xffff)
            | I32 -> Mem.Codec.set_i32 arch_a.Arch.endian raw off (Int32.of_int v)
            | I64 -> Mem.Codec.set_i64 arch_a.Arch.endian raw off (Int64.of_int v)
            | F32 ->
              Mem.Codec.set_f32 arch_a.Arch.endian raw off (float_of_int (v land 0xffff))
            | F64 -> Mem.Codec.set_f64 arch_a.Arch.endian raw off (float_of_int v))
          | Layout.Ptr _ ->
            (* pointer value = leaf index + 1, unswizzled below *)
            Mem.Codec.set_word arch_a raw off (i + 1))
        (Layout.leaves reg arch_a (Type_desc.Named "t"));
      let origin = Space_id.make ~site:1 ~proc:0 in
      let enc_ctx =
        {
          Object_codec.enc_reg = reg;
          enc_arch = arch_a;
          unswizzle =
            (fun ~ty w -> Some (Long_pointer.make ~origin ~addr:(w * 100) ~ty));
        }
      in
      let dec_ctx =
        {
          Object_codec.dec_reg = reg;
          dec_arch = arch_b;
          swizzle =
            (function Some lp -> lp.Long_pointer.addr / 100 | None -> 0);
        }
      in
      let out =
        Object_codec.decode dec_ctx ~ty:"t" (Object_codec.encode enc_ctx ~ty:"t" raw)
      in
      (* compare leaf by leaf *)
      List.for_all2
        (fun la lb ->
          match (la.Layout.kind, lb.Layout.kind) with
          | Layout.Scalar pa, Layout.Scalar _ -> (
            let oa = la.Layout.leaf_offset and ob = lb.Layout.leaf_offset in
            match pa with
            | Type_desc.I8 -> Mem.Codec.get_i8 raw oa = Mem.Codec.get_i8 out ob
            | I16 ->
              Mem.Codec.get_i16 arch_a.Arch.endian raw oa
              = Mem.Codec.get_i16 arch_b.Arch.endian out ob
            | I32 ->
              Mem.Codec.get_i32 arch_a.Arch.endian raw oa
              = Mem.Codec.get_i32 arch_b.Arch.endian out ob
            | I64 ->
              Mem.Codec.get_i64 arch_a.Arch.endian raw oa
              = Mem.Codec.get_i64 arch_b.Arch.endian out ob
            | F32 ->
              Mem.Codec.get_f32 arch_a.Arch.endian raw oa
              = Mem.Codec.get_f32 arch_b.Arch.endian out ob
            | F64 ->
              Mem.Codec.get_f64 arch_a.Arch.endian raw oa
              = Mem.Codec.get_f64 arch_b.Arch.endian out ob)
          | Layout.Ptr _, Layout.Ptr _ ->
            Mem.Codec.get_word arch_a raw la.Layout.leaf_offset
            = Mem.Codec.get_word arch_b out lb.Layout.leaf_offset
          | _ -> false)
        (Layout.leaves reg arch_a (Type_desc.Named "t"))
        (Layout.leaves reg arch_b (Type_desc.Named "t")))

(* --- end-to-end equivalences --- *)

let strategy_gen =
  Q.Gen.oneofl
    [
      Strategy.fully_eager;
      Strategy.fully_lazy;
      Strategy.smart ~closure_size:64 ();
      Strategy.smart ~closure_size:1024 ();
      { (Strategy.smart ()) with Strategy.order = Strategy.Depth_first };
      { (Strategy.smart ()) with Strategy.grain = Strategy.Twin_diff };
      { (Strategy.smart ()) with Strategy.grouping = Strategy.By_type };
    ]

let strategy_arb =
  Q.make ~print:(Format.asprintf "%a" Strategy.pp) strategy_gen

let remote_list_sum_equals_local =
  Q.Test.make ~name:"remote list sum = local sum (all strategies)" ~count:60
    Q.(pair strategy_arb (list_of_size Q.Gen.(int_range 0 40) (int_range (-1000) 1000)))
    (fun (strategy, xs) ->
      let cluster = Cluster.create ~cost:Cost_model.zero () in
      let a = Cluster.add_node cluster ~site:1 ~strategy () in
      let b = Cluster.add_node cluster ~site:2 ~strategy () in
      Linked_list.register_types cluster;
      let head = Linked_list.build a xs in
      Node.register b "sum" (fun node args ->
          [ Value.int (Linked_list.sum node (Access.of_value (List.hd args))) ]);
      Node.with_session a (fun () ->
          match Node.call a ~dst:(Node.id b) "sum" [ Access.to_value head ] with
          | [ v ] -> Value.to_int v = List.fold_left ( + ) 0 xs
          | _ -> false))

let remote_update_equals_local =
  Q.Test.make ~name:"remote in-place map = local map after write-back" ~count:60
    Q.(pair strategy_arb (list_of_size Q.Gen.(int_range 1 30) (int_range (-500) 500)))
    (fun (strategy, xs) ->
      let cluster = Cluster.create ~cost:Cost_model.zero () in
      let a = Cluster.add_node cluster ~site:1 ~strategy () in
      let b = Cluster.add_node cluster ~site:2 ~strategy () in
      Linked_list.register_types cluster;
      let head = Linked_list.build a xs in
      Node.register b "triple" (fun node args ->
          Linked_list.map_in_place node (Access.of_value (List.hd args))
            (fun x -> (3 * x) + 1);
          []);
      Node.with_session a (fun () ->
          ignore (Node.call a ~dst:(Node.id b) "triple" [ Access.to_value head ]));
      Linked_list.to_list a head = List.map (fun x -> (3 * x) + 1) xs)

let remote_graph_walk_equals_local =
  Q.Test.make ~name:"remote cyclic graph walk = local walk" ~count:30
    Q.(pair strategy_arb (pair (Q.int_range 1 60) (Q.int_range 0 1000)))
    (fun (strategy, (nodes, seed)) ->
      let cluster = Cluster.create ~cost:Cost_model.zero () in
      let a = Cluster.add_node cluster ~site:1 ~strategy () in
      let b = Cluster.add_node cluster ~site:2 ~strategy () in
      Graph.register_types cluster;
      let root = Graph.build a ~nodes ~seed in
      let expect = Graph.reachable_sum a root in
      Node.register b "walk" (fun node args ->
          let n, s = Graph.reachable_sum node (Access.of_value (List.hd args)) in
          [ Value.int n; Value.int s ]);
      Node.with_session a (fun () ->
          match Node.call a ~dst:(Node.id b) "walk" [ Access.to_value root ] with
          | [ n; s ] -> (Value.to_int n, Value.to_int s) = expect
          | _ -> false))

let tree_search_all_strategies_agree =
  Q.Test.make ~name:"tree search result is strategy-independent" ~count:25
    Q.(pair (Q.int_range 1 8) (Q.int_range 0 100))
    (fun (depth, pct) ->
      let ratio = float_of_int pct /. 100.0 in
      let run strategy =
        let r = Experiments.run_tree_search ~strategy ~depth ~ratio () in
        r.Experiments.visited
      in
      let a = run Strategy.fully_eager in
      let b = run Strategy.fully_lazy in
      let c = run (Strategy.smart ~closure_size:256 ()) in
      a = b && b = c)

let hash_table_model_check =
  (* random insert/remove trace checked against a Hashtbl model *)
  Q.Test.make ~name:"hash table matches model" ~count:60
    Q.(list_of_size Q.Gen.(int_range 1 80) (pair (Q.int_range (-20) 20) Q.bool))
    (fun ops ->
      let cluster = Cluster.create ~cost:Cost_model.zero () in
      let a = Cluster.add_node cluster ~site:1 () in
      Hash_table.register_types cluster;
      let t = Hash_table.create a in
      let model : (int, int list) Hashtbl.t = Hashtbl.create 16 in
      let model_find k = match Hashtbl.find_opt model k with Some (v :: _) -> Some v | _ -> None in
      List.iteri
        (fun i (k, insert) ->
          if insert then begin
            Hash_table.insert a t ~key:k ~value:i;
            Hashtbl.replace model k (i :: Option.value ~default:[] (Hashtbl.find_opt model k))
          end
          else begin
            let removed = Hash_table.remove a t ~key:k in
            let model_removed =
              match Hashtbl.find_opt model k with
              | Some (_ :: rest) ->
                Hashtbl.replace model k rest;
                true
              | _ -> false
            in
            if removed <> model_removed then raise Exit
          end)
        ops;
      Hashtbl.fold (fun k _ acc -> acc && model_find k = Hash_table.lookup a t ~key:k)
        model true)

(* --- random multi-site mutation scripts vs a pure model --- *)

(* A shared array of counters lives on site 1 as a complete tree; a
   random script of (executor, index, delta) operations runs over RPC
   from sites 2 and 3 (nested through each other at random); the final
   tree at the origin must equal a pure-OCaml model. This exercises the
   coherency protocol (travel of the modified set, write-back,
   invalidation) under arbitrary interleavings. *)
let coherency_random_ops =
  let op_gen =
    Q.Gen.(triple (int_range 0 1) (int_range 0 30) (int_range (-9) 9))
  in
  Q.Test.make ~name:"random mutation scripts match a pure model" ~count:40
    Q.(
      pair strategy_arb
        (make
           ~print:(fun ops ->
             String.concat ";"
               (List.map
                  (fun (w, i, d) -> Printf.sprintf "%d:%d%+d" w i d)
                  ops))
           Q.Gen.(list_size (int_range 1 25) op_gen)))
    (fun (strategy, ops) ->
      let depth = 5 in
      let n = Tree.nodes_of_depth depth in
      let cluster = Cluster.create ~cost:Cost_model.zero () in
      let origin = Cluster.add_node cluster ~site:1 ~strategy () in
      let w1 = Cluster.add_node cluster ~site:2 ~strategy () in
      let w2 = Cluster.add_node cluster ~site:3 ~strategy () in
      Tree.register_types cluster;
      let root = Tree.build origin ~depth in
      (* preorder index -> pointer, resolved on whatever node executes *)
      let nth_preorder node root k =
        let count = ref (-1) in
        let found = ref None in
        let rec go p =
          if (not (Access.is_null p)) && !found = None then begin
            incr count;
            if !count = k then found := Some p
            else begin
              go (Access.get_ptr node p ~field:"left");
              go (Access.get_ptr node p ~field:"right")
            end
          end
        in
        go root;
        Option.get !found
      in
      let add_proc node args =
        match args with
        | [ rootv; iv; dv ] ->
          let p = nth_preorder node (Access.of_value rootv) (Value.to_int iv) in
          Access.set_int node p ~field:"data"
            (Access.get_int node p ~field:"data" + Value.to_int dv);
          []
        | _ -> assert false
      in
      Node.register w1 "add" add_proc;
      Node.register w2 "add" add_proc;
      (* relay: w1 forwards to w2 (nested RPC path) *)
      Node.register w1 "relay_add" (fun node args ->
          Node.call node ~dst:(Node.id w2) "add" args);
      (* pure model: preorder index = data value ordering from Tree.build *)
      let model = Array.init n (fun i -> i) in
      Node.with_session origin (fun () ->
          List.iter
            (fun (which, idx, delta) ->
              let idx = idx mod n in
              model.(idx) <- model.(idx) + delta;
              let args =
                [ Access.to_value root; Value.int idx; Value.int delta ]
              in
              match which with
              | 0 -> ignore (Node.call origin ~dst:(Node.id w1) "add" args)
              | _ -> ignore (Node.call origin ~dst:(Node.id w1) "relay_add" args))
            ops);
      (* after the session everything is written back to the origin *)
      let vals = ref [] in
      let rec collect p =
        if not (Access.is_null p) then begin
          vals := Access.get_int origin p ~field:"data" :: !vals;
          collect (Access.get_ptr origin p ~field:"left");
          collect (Access.get_ptr origin p ~field:"right")
        end
      in
      collect root;
      List.rev !vals = Array.to_list model)

(* --- B-tree vs Map model --- *)

let btree_model_check =
  Q.Test.make ~name:"b-tree matches a Map model (with invariants)" ~count:60
    Q.(list_of_size Q.Gen.(int_range 0 120) (pair (Q.int_range (-50) 50) Q.small_nat))
    (fun ops ->
      let cluster = Cluster.create ~cost:Cost_model.zero () in
      let a = Cluster.add_node cluster ~site:1 () in
      Btree.register_types cluster;
      let t = Btree.create a in
      let model = Hashtbl.create 32 in
      List.iter
        (fun (k, v) ->
          Btree.insert a t ~key:k ~value:v;
          Hashtbl.replace model k v)
        ops;
      (match Btree.check_invariants a t with
      | Ok () -> ()
      | Error msg -> Q.Test.fail_report msg);
      Hashtbl.fold
        (fun k v acc -> acc && Btree.search a t ~key:k = Some v)
        model true
      && Btree.cardinal a t = Hashtbl.length model
      && List.map fst (Btree.to_list a t)
         = List.sort compare
             (Hashtbl.fold (fun k _ acc -> k :: acc) model []))

let btree_remote_equals_local =
  Q.Test.make ~name:"remote b-tree growth = local growth" ~count:25
    Q.(
      pair strategy_arb
        (list_of_size Q.Gen.(int_range 1 60) (pair (Q.int_range 0 99) Q.small_nat)))
    (fun (strategy, ops) ->
      let cluster = Cluster.create ~cost:Cost_model.zero () in
      let a = Cluster.add_node cluster ~site:1 ~strategy () in
      let b = Cluster.add_node cluster ~site:2 ~strategy () in
      Btree.register_types cluster;
      let t = Btree.create a in
      Node.register b "ins" (fun node args ->
          match args with
          | [ tv; kv; vv ] ->
            Btree.insert node (Access.of_value tv) ~key:(Value.to_int kv)
              ~value:(Value.to_int vv);
            []
          | _ -> assert false);
      Node.with_session a (fun () ->
          List.iter
            (fun (k, v) ->
              ignore
                (Node.call a ~dst:(Node.id b) "ins"
                   [ Access.to_value t; Value.int k; Value.int v ]))
            ops);
      let model = Hashtbl.create 16 in
      List.iter (fun (k, v) -> Hashtbl.replace model k v) ops;
      Btree.check_invariants a t = Ok ()
      && Hashtbl.fold (fun k v acc -> acc && Btree.search a t ~key:k = Some v) model true)

(* --- wire fuzzing: random bytes must fail cleanly --- *)

let wire_fuzz_decode_request =
  Q.Test.make ~name:"random bytes never crash the request decoder" ~count:300
    Q.string (fun s ->
      let reg = mk_reg_with (Type_desc.Struct [ ("x", Type_desc.i64) ]) in
      match Srpc_core.Wire.decode_request ~reg s with
      | _ -> true (* an accidental parse is fine *)
      | exception Srpc_xdr.Xdr.Decode_error _ -> true
      | exception Registry.Unknown_type _ -> true
      | exception _ -> false)

let wire_fuzz_decode_response =
  Q.Test.make ~name:"random bytes never crash the response decoder" ~count:300
    Q.string (fun s ->
      let reg = mk_reg_with (Type_desc.Struct [ ("x", Type_desc.i64) ]) in
      match Srpc_core.Wire.decode_response ~reg s with
      | _ -> true
      | exception Srpc_xdr.Xdr.Decode_error _ -> true
      | exception Registry.Unknown_type _ -> true
      | exception _ -> false)

(* --- cache invariants under random operation traces --- *)

type cache_op = CAlloc of int | CPresent of int | CDirty of int | CRemove of int

let cache_ops_arb =
  let gen =
    Q.Gen.(
      frequency
        [
          (4, map (fun n -> CAlloc ((n mod 120) + 1)) nat);
          (3, map (fun i -> CPresent i) nat);
          (2, map (fun i -> CDirty i) nat);
          (2, map (fun i -> CRemove i) nat);
        ])
  in
  Q.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | CAlloc n -> Printf.sprintf "A%d" n
             | CPresent i -> Printf.sprintf "P%d" i
             | CDirty i -> Printf.sprintf "D%d" i
             | CRemove i -> Printf.sprintf "R%d" i)
           ops))
    Q.Gen.(list_size (int_range 1 80) gen)

let cache_invariants_random =
  Q.Test.make ~name:"cache invariants under random traces" ~count:150
    Q.(pair (oneofl [ Srpc_core.Strategy.By_origin; Srpc_core.Strategy.Sequential;
                      Srpc_core.Strategy.By_type; Srpc_core.Strategy.Entry_per_page ])
         cache_ops_arb)
    (fun (grouping, ops) ->
      let open Srpc_core in
      let space =
        Address_space.create ~page_size:256
          ~id:(Space_id.make ~site:2 ~proc:0)
          ~arch:Arch.sparc32 ()
      in
      let cache =
        Cache.create ~space ~base:4096 ~limit:(4096 * 64) ~grouping
          ~grain:Strategy.Page_grain
      in
      let live = ref [] in
      let counter = ref 0 in
      List.iter
        (fun op ->
          match op with
          | CAlloc size ->
            incr counter;
            let lp =
              Long_pointer.make
                ~origin:(Space_id.make ~site:1 ~proc:0)
                ~addr:(!counter * 0x100) ~ty:"t"
            in
            (match Cache.allocate cache lp ~size with
            | e -> live := e :: !live
            | exception Cache.Region_full -> ())
          | CPresent i ->
            if !live <> [] then
              Cache.mark_present cache (List.nth !live (i mod List.length !live))
          | CDirty i ->
            if !live <> [] then begin
              let e = List.nth !live (i mod List.length !live) in
              (* dirtying requires presence, like a real write fault *)
              if e.Cache.present then
                Cache.mark_page_dirty cache ~page:(List.hd e.Cache.pages)
            end
          | CRemove i ->
            if !live <> [] then begin
              let k = i mod List.length !live in
              Cache.remove cache (List.nth !live k);
              live := List.filteri (fun j _ -> j <> k) !live
            end)
        ops;
      match Cache.check_invariants cache with
      | Ok () -> true
      | Error msg -> Q.Test.fail_report msg)

(* --- IDL server skeletons never crash on malformed argument lists --- *)

let idl_server_fuzz =
  let value_gen =
    Q.Gen.(
      oneof
        [
          return Srpc_core.Value.Unit;
          map Srpc_core.Value.bool bool;
          map Srpc_core.Value.int small_int;
          map Srpc_core.Value.float float;
          map Srpc_core.Value.str string;
          map (fun a -> Srpc_core.Value.ptr ~ty:"t" (abs a)) small_int;
        ])
  in
  Q.Test.make ~name:"idl skeleton: apply cleanly or Signature_error" ~count:300
    (Q.make Q.Gen.(list_size (int_range 0 6) value_gen))
    (fun args ->
      let open Srpc_core in
      let sg = Idl.(int @-> string @-> returning2 int bool) in
      let t = Idl.declare "p" sg in
      (* reach the server path through a local node *)
      let cluster = Cluster.create ~cost:Cost_model.zero () in
      let n = Cluster.add_node cluster ~site:1 () in
      Idl.export n t (fun _ x s -> (x + String.length s, x > 0));
      match Node.run_local n "p" args with
      | results -> List.length results = 2
      | exception Idl.Signature_error _ -> true
      | exception _ -> false)

(* --- hints change traffic, never results --- *)

let hints_preserve_semantics =
  let rule_gen =
    Q.Gen.(
      map2
        (fun follow_left prune ->
          {
            Srpc_core.Hints.follow = (if follow_left then [ "left" ] else [ "right" ]);
            prune_others = prune;
          })
        bool bool)
  in
  Q.Test.make ~name:"closure hints never change results" ~count:40
    (Q.make Q.Gen.(pair rule_gen (int_range 3 8)))
    (fun (rule, depth) ->
      let cluster = Cluster.create ~cost:Cost_model.zero () in
      let a = Cluster.add_node cluster ~site:1 () in
      let b = Cluster.add_node cluster ~site:2 () in
      Tree.register_types cluster;
      Cluster.set_closure_hint cluster ~ty:Tree.type_name rule;
      let root = Tree.build a ~depth in
      let expect = Tree.nodes_of_depth depth * (Tree.nodes_of_depth depth - 1) / 2 in
      Node.register b "sum" (fun node args ->
          let _, s = Tree.visit node (Access.of_value (List.hd args)) ~limit:max_int in
          [ Value.int s ]);
      Node.with_session a (fun () ->
          match Node.call a ~dst:(Node.id b) "sum" [ Access.to_value root ] with
          | [ v ] -> Value.to_int v = expect
          | _ -> false))

let () =
  try
    Alcotest.run ~and_exit:false "properties"
      [
      ( "xdr",
        List.map to_alcotest
          [
            xdr_int_roundtrip;
            xdr_hyper_roundtrip;
            xdr_float_roundtrip;
            xdr_string_roundtrip;
            xdr_string_alignment;
            xdr_int_list_roundtrip;
          ] );
      ( "allocator",
        List.map to_alcotest [ allocator_invariants; allocator_blocks_disjoint ] );
      ("cache", List.map to_alcotest [ cache_invariants_random ]);
      ( "layout",
        List.map to_alcotest
          [
            layout_size_positive_aligned;
            layout_leaves_in_bounds;
            layout_leaves_no_overlap;
          ] );
      ("codec", List.map to_alcotest [ codec_roundtrip_cross_arch ]);
      ( "end-to-end",
        List.map to_alcotest
          [
            remote_list_sum_equals_local;
            remote_update_equals_local;
            remote_graph_walk_equals_local;
            tree_search_all_strategies_agree;
            hash_table_model_check;
            coherency_random_ops;
            btree_model_check;
            btree_remote_equals_local;
          ] );
      ( "fuzz",
        List.map to_alcotest
          [ wire_fuzz_decode_request; wire_fuzz_decode_response; idl_server_fuzz ] );
      ("hints", List.map to_alcotest [ hints_preserve_semantics ]);
      ]
  with Alcotest.Test_error ->
    Printf.eprintf "properties: effective QCheck seed was SRPC_SEED=%d\n%!" seed;
    exit 1

(* The model-checking harness, checked.

   srpc-check is itself trusted infrastructure: a non-deterministic
   generator or a flaky runner would turn every red run into an
   argument. These tests pin the properties the harness's conclusions
   rest on — generation and execution are deterministic, repro files
   roundtrip, a bounded run over the real runtime is clean — and then
   plant a real coherency defect behind [Node.chaos_lose_first_writeback]
   to prove the harness detects it and shrinks it to a small script. *)

open Srpc_core
open Srpc_check

let fault_for seed =
  if seed mod 2 = 1 then
    Some { Script.fseed = seed; drop = 0.01; dup = 0.005 }
  else None

let gen_for seed =
  Gen.script ~seed ~depth:12 ~fault:(fault_for seed)

let test_generator_deterministic () =
  for seed = 0 to 19 do
    let a = gen_for seed and b = gen_for seed in
    if a <> b then
      Alcotest.failf "seed %d generated two different scripts" seed
  done

let test_sexp_roundtrip () =
  for seed = 0 to 19 do
    let s = gen_for seed in
    let text = Sexp.to_string (Script.to_sexp ~seed s) in
    let seed', s' = Script.of_sexp (Sexp.of_string text) in
    if seed' <> seed || s <> s' then
      Alcotest.failf "seed %d did not roundtrip through the repro format:@.%s"
        seed text
  done

let test_sexp_comments_and_errors () =
  (* the replay parser accepts commented files and rejects garbage with
     a typed error, not an exception from the depths *)
  let t = Sexp.of_string "; a comment\n(a (b 1) ; mid\n c)" in
  Alcotest.(check string) "comments stripped" "(a (b 1) c)" (Sexp.to_string t);
  List.iter
    (fun bad ->
      match Sexp.of_string bad with
      | _ -> Alcotest.failf "parsed garbage: %S" bad
      | exception Sexp.Parse_error _ -> ())
    [ ""; "("; ")"; "(a"; "(a))"; "a b" ]

let test_run_deterministic () =
  (* the same script, run twice against a fresh cluster each time, gives
     the same verdict — the bedrock of replayable repros *)
  List.iter
    (fun seed ->
      let s = gen_for seed in
      let a = Runner.run_script s and b = Runner.run_script s in
      if a <> b then Alcotest.failf "seed %d: two runs disagreed" seed)
    [ 0; 1; 2; 3; 4; 5 ]

let test_bounded_check_clean () =
  match Runner.check ~seeds:12 ~depth:10 ~faults:0.02 () with
  | Runner.Ok stats ->
      Alcotest.(check int) "all seeds ran" 12 stats.Runner.runs
  | Runner.Failed { seed; failure; _ } ->
      Alcotest.failf "seed %d: %a" seed Runner.pp_failure failure

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Plant a coherency defect behind [flag], prove the harness detects it,
   that the race oracle (not just a divergent observation) names it as a
   CC102 coherency race, and that it shrinks to a small script which
   passes again once the defect is disabled. *)
let run_mutation ~name flag =
  let report =
    Fun.protect
      ~finally:(fun () -> flag := false)
      (fun () ->
        flag := true;
        Runner.check ~seeds:60 ~depth:12 ~faults:0.0 ())
  in
  match report with
  | Runner.Ok _ -> Alcotest.failf "seeded %s defect went undetected" name
  | Runner.Failed { shrunk; shrunk_failure; _ } ->
      Alcotest.(check bool)
        (Format.asprintf "shrunk repro has %d ops (<= 10)"
           (List.length shrunk.Script.ops))
        true
        (List.length shrunk.Script.ops <= 10);
      (match shrunk_failure with
      | Runner.Race msg when contains msg "CC102" -> ()
      | f ->
          Alcotest.failf "%s: expected a CC102 race verdict, got: %a" name
            Runner.pp_failure f);
      (* with the defect disabled the minimized script passes again,
         pinning the failure on the mutation rather than the harness *)
      (match Runner.run_script shrunk with
      | None -> ()
      | Some f ->
          Alcotest.failf "shrunk script still fails without the defect: %a"
            Runner.pp_failure f)

(* --- static footprints of script plans --- *)

let test_plan_footprints () =
  let open Srpc_analysis in
  let script =
    {
      Script.workers = 1;
      arches = [ 0 ];
      strategy = 0;
      fault = None;
      ops =
        [
          Script.Build_list [ 1; 2; 3 ];
          Script.Update { worker = 0; obj = 0; idx = 0; delta = 1 };
          Script.New_session;
          Script.Sum { worker = 0; obj = 0 };
          Script.Callback { worker = 0; obj = 0 };
        ];
    }
  in
  let fps = Plan_footprint.sessions (Script.resolve script) in
  Alcotest.(check int) "two sessions" 2 (List.length fps);
  let s0 = List.nth fps 0 and s1 = List.nth fps 1 in
  let has_mode fp m =
    List.exists (fun r -> r.Footprint.mode = m) fp.Footprint.regions
  in
  Alcotest.(check bool) "session 0 may write" true
    (has_mode s0 Footprint.Write);
  Alcotest.(check bool) "session 1 is read-only" false
    (has_mode s1 Footprint.Write);
  Alcotest.(check bool) "callback marks the escape" true
    s1.Footprint.escapes;
  let ids =
    List.map (fun d -> d.Diagnostic.rule_id) (Footprint.interferes s0 s1)
  in
  Alcotest.(check bool) "writer x reader: CC002" true (List.mem "CC002" ids);
  Alcotest.(check bool) "escape: CC004" true (List.mem "CC004" ids);
  Alcotest.(check bool) "no write-write conflict" false (List.mem "CC001" ids)

let test_plan_footprint_homes () =
  let script =
    {
      Script.workers = 2;
      arches = [ 0; 1 ];
      strategy = 0;
      fault = None;
      ops =
        [
          Script.Build_list [ 1; 2 ];
          Script.Append { obj = 0; home = 2; values = [ 5 ] };
        ];
    }
  in
  match Plan_footprint.sessions (Script.resolve script) with
  | [ fp ] ->
      Alcotest.(check (list string))
        "ground plus the appending worker's home" [ "1.0"; "3.0" ]
        fp.Srpc_analysis.Footprint.homes
  | fps -> Alcotest.failf "expected one session, got %d" (List.length fps)

(* The subset property tying the static engine to the dynamic one: on
   every seed, each session's *dynamic* behavior must stay inside its
   *static* may-footprint — a session the analysis calls read-only
   never writes, one without frees never frees, and every datum it
   touches lives at a home the analysis predicted. Sessions whose
   footprint escapes through a callback are exempt (that is what CC004
   means), as is the trailing recovery session (it touches no data). *)
let test_footprint_subset_property () =
  let open Srpc_analysis in
  let datum_home d =
    match String.index_opt d '/' with
    | Some i -> String.sub d 0 i
    | None -> d
  in
  for seed = 0 to 199 do
    let plan = Script.resolve (gen_for seed) in
    let fps = Array.of_list (Plan_footprint.sessions plan) in
    let out = Interp.run plan in
    let events = Srpc_simnet.Trace.events out.Interp.trace in
    let order = Hashtbl.create 8 in
    List.iter
      (fun e ->
        match e.Srpc_simnet.Trace.kind with
        | Srpc_simnet.Trace.Session_begin id ->
            if not (Hashtbl.mem order id) then
              Hashtbl.add order id (Hashtbl.length order)
        | _ -> ())
      events;
    let may k m =
      List.exists (fun r -> r.Footprint.mode = m) fps.(k).Footprint.regions
    in
    List.iteri
      (fun idx e ->
        match e.Srpc_simnet.Trace.kind with
        | Srpc_simnet.Trace.Access { session; datum; akind }
          when datum <> "*" -> (
            match Hashtbl.find_opt order session with
            | Some k when k < Array.length fps && not fps.(k).Footprint.escapes
              ->
                (match akind with
                | Srpc_simnet.Trace.Acc_write | Srpc_simnet.Trace.Acc_apply ->
                    if not (may k Footprint.Write) then
                      Alcotest.failf
                        "seed %d event[%d]: %s writes %s in session %d, \
                         which the static footprint calls read-only"
                        seed idx e.Srpc_simnet.Trace.src datum k
                | Srpc_simnet.Trace.Acc_free ->
                    if not (may k Footprint.Free) then
                      Alcotest.failf
                        "seed %d event[%d]: free of %s in session %d \
                         absent from the static footprint"
                        seed idx datum k
                | _ -> ());
                let homes = fps.(k).Footprint.homes in
                if homes <> [] && not (List.mem (datum_home datum) homes)
                then
                  Alcotest.failf
                    "seed %d event[%d]: datum %s homed outside the static \
                     prediction %s of session %d"
                    seed idx datum (String.concat "," homes) k
            | _ -> ())
        | _ -> ())
      events
  done

let test_mutation_detected_and_shrunk () =
  (* the first write-back item of every collection is silently dropped —
     a classic lost-update coherency bug, caught as CC102(b) *)
  run_mutation ~name:"write-back" Node.chaos_lose_first_writeback

let test_reorder_mutation_detected () =
  (* invalidations are acknowledged without purging, and the session
     bookkeeping advances so the self-healing purge is disarmed — stale
     copies survive into the next session, caught as CC102(a) *)
  run_mutation ~name:"invalidate-reorder" Node.chaos_reorder_invalidate

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "check"
    [
      ( "harness",
        [
          tc "generator is deterministic" `Quick test_generator_deterministic;
          tc "repro files roundtrip" `Quick test_sexp_roundtrip;
          tc "repro parser: comments and errors" `Quick
            test_sexp_comments_and_errors;
          tc "runs are deterministic" `Quick test_run_deterministic;
          tc "bounded check run is clean" `Quick test_bounded_check_clean;
        ] );
      ( "footprint",
        [
          tc "plan sessions and interference" `Quick test_plan_footprints;
          tc "append tracks worker homes" `Quick test_plan_footprint_homes;
          tc "dynamic behavior stays inside the static footprint" `Quick
            test_footprint_subset_property;
        ] );
      ( "mutation",
        [
          tc "write-back defect detected and shrunk" `Quick
            test_mutation_detected_and_shrunk;
          tc "invalidate-reorder defect detected and shrunk" `Quick
            test_reorder_mutation_detected;
        ] );
    ]

(* The model-checking harness, checked.

   srpc-check is itself trusted infrastructure: a non-deterministic
   generator or a flaky runner would turn every red run into an
   argument. These tests pin the properties the harness's conclusions
   rest on — generation and execution are deterministic, repro files
   roundtrip, a bounded run over the real runtime is clean — and then
   plant a real coherency defect behind [Node.chaos_lose_first_writeback]
   to prove the harness detects it and shrinks it to a small script. *)

open Srpc_core
open Srpc_check

let fault_for seed =
  if seed mod 2 = 1 then
    Some { Script.fseed = seed; drop = 0.01; dup = 0.005 }
  else None

let gen_for seed =
  Gen.script ~seed ~depth:12 ~fault:(fault_for seed)

let test_generator_deterministic () =
  for seed = 0 to 19 do
    let a = gen_for seed and b = gen_for seed in
    if a <> b then
      Alcotest.failf "seed %d generated two different scripts" seed
  done

let test_sexp_roundtrip () =
  for seed = 0 to 19 do
    let s = gen_for seed in
    let text = Sexp.to_string (Script.to_sexp ~seed s) in
    let seed', s' = Script.of_sexp (Sexp.of_string text) in
    if seed' <> seed || s <> s' then
      Alcotest.failf "seed %d did not roundtrip through the repro format:@.%s"
        seed text
  done

let test_sexp_comments_and_errors () =
  (* the replay parser accepts commented files and rejects garbage with
     a typed error, not an exception from the depths *)
  let t = Sexp.of_string "; a comment\n(a (b 1) ; mid\n c)" in
  Alcotest.(check string) "comments stripped" "(a (b 1) c)" (Sexp.to_string t);
  List.iter
    (fun bad ->
      match Sexp.of_string bad with
      | _ -> Alcotest.failf "parsed garbage: %S" bad
      | exception Sexp.Parse_error _ -> ())
    [ ""; "("; ")"; "(a"; "(a))"; "a b" ]

let test_run_deterministic () =
  (* the same script, run twice against a fresh cluster each time, gives
     the same verdict — the bedrock of replayable repros *)
  List.iter
    (fun seed ->
      let s = gen_for seed in
      let a = Runner.run_script s and b = Runner.run_script s in
      if a <> b then Alcotest.failf "seed %d: two runs disagreed" seed)
    [ 0; 1; 2; 3; 4; 5 ]

let test_bounded_check_clean () =
  match Runner.check ~seeds:12 ~depth:10 ~faults:0.02 () with
  | Runner.Ok stats ->
      Alcotest.(check int) "all seeds ran" 12 stats.Runner.runs
  | Runner.Failed { seed; failure; _ } ->
      Alcotest.failf "seed %d: %a" seed Runner.pp_failure failure

let test_mutation_detected_and_shrunk () =
  (* plant the defect: the first write-back item of every collection is
     silently dropped — a classic lost-update coherency bug *)
  let report =
    Fun.protect
      ~finally:(fun () -> Node.chaos_lose_first_writeback := false)
      (fun () ->
        Node.chaos_lose_first_writeback := true;
        Runner.check ~seeds:60 ~depth:12 ~faults:0.0 ())
  in
  match report with
  | Runner.Ok _ -> Alcotest.fail "seeded write-back defect went undetected"
  | Runner.Failed { shrunk; _ } ->
      Alcotest.(check bool)
        (Format.asprintf "shrunk repro has %d ops (<= 10)"
           (List.length shrunk.Script.ops))
        true
        (List.length shrunk.Script.ops <= 10);
      (* with the defect disabled the minimized script passes again,
         pinning the failure on the mutation rather than the harness *)
      (match Runner.run_script shrunk with
      | None -> ()
      | Some f ->
          Alcotest.failf "shrunk script still fails without the defect: %a"
            Runner.pp_failure f)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "check"
    [
      ( "harness",
        [
          tc "generator is deterministic" `Quick test_generator_deterministic;
          tc "repro files roundtrip" `Quick test_sexp_roundtrip;
          tc "repro parser: comments and errors" `Quick
            test_sexp_comments_and_errors;
          tc "runs are deterministic" `Quick test_run_deterministic;
          tc "bounded check run is clean" `Quick test_bounded_check_clean;
        ] );
      ( "mutation",
        [
          tc "write-back defect detected and shrunk" `Quick
            test_mutation_detected_and_shrunk;
        ] );
    ]

(* Unit tests for the simulated-network substrate: clock, statistics,
   cost model and synchronous transport. *)

open Srpc_simnet

let feq = Alcotest.float 1e-9

(* --- Clock --- *)

let test_clock_starts_at_zero () =
  Alcotest.check feq "zero" 0.0 (Clock.now (Clock.create ()))

let test_clock_advance () =
  let c = Clock.create () in
  Clock.advance c 1.5;
  Clock.advance c 0.25;
  Alcotest.check feq "sum" 1.75 (Clock.now c)

let test_clock_reset () =
  let c = Clock.create () in
  Clock.advance c 3.0;
  Clock.reset c;
  Alcotest.check feq "reset" 0.0 (Clock.now c)

let test_clock_measure () =
  let c = Clock.create () in
  Clock.advance c 1.0;
  let v, dt =
    Clock.measure c (fun () ->
        Clock.advance c 2.5;
        42)
  in
  Alcotest.(check int) "result" 42 v;
  Alcotest.check feq "elapsed" 2.5 dt;
  Alcotest.check feq "absolute" 3.5 (Clock.now c)

(* --- Stats --- *)

let test_stats_counts () =
  let s = Stats.create () in
  Stats.incr_messages s;
  Stats.incr_messages s;
  Stats.add_bytes s 100;
  Stats.incr_faults s;
  Stats.incr_callbacks s;
  Stats.add_writebacks s 3;
  Stats.add_remote_allocs s 2;
  Stats.add_remote_frees s 1;
  let snap = Stats.snapshot s in
  Alcotest.(check int) "messages" 2 snap.Stats.messages;
  Alcotest.(check int) "bytes" 100 snap.Stats.bytes;
  Alcotest.(check int) "faults" 1 snap.Stats.faults;
  Alcotest.(check int) "callbacks" 1 snap.Stats.callbacks;
  Alcotest.(check int) "writebacks" 3 snap.Stats.writebacks;
  Alcotest.(check int) "allocs" 2 snap.Stats.remote_allocs;
  Alcotest.(check int) "frees" 1 snap.Stats.remote_frees

let test_stats_diff () =
  let s = Stats.create () in
  Stats.incr_messages s;
  let a = Stats.snapshot s in
  Stats.incr_messages s;
  Stats.add_bytes s 10;
  let b = Stats.snapshot s in
  let d = Stats.diff b a in
  Alcotest.(check int) "messages" 1 d.Stats.messages;
  Alcotest.(check int) "bytes" 10 d.Stats.bytes

let test_stats_prefetch_counters () =
  let s = Stats.create () in
  Stats.add_prefetched_bytes s 4096;
  Stats.add_wasted_prefetch_bytes s 1024;
  Stats.add_stall_ns s 500;
  Stats.add_stall_ns s 250;
  let a = Stats.snapshot s in
  Alcotest.(check int) "prefetched" 4096 a.Stats.prefetched_bytes;
  Alcotest.(check int) "wasted" 1024 a.Stats.wasted_prefetch_bytes;
  Alcotest.(check int) "stall" 750 a.Stats.stall_ns;
  Stats.add_wasted_prefetch_bytes s 512;
  let d = Stats.diff (Stats.snapshot s) a in
  Alcotest.(check int) "diffed wasted" 512 d.Stats.wasted_prefetch_bytes;
  Alcotest.(check int) "diffed stall" 0 d.Stats.stall_ns;
  (* the new counters render in the snapshot printer *)
  let rendered = Format.asprintf "%a" Stats.pp_snapshot a in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pp mentions waste" true (contains rendered "wasted")

let test_stats_reset () =
  let s = Stats.create () in
  Stats.incr_messages s;
  Stats.reset s;
  Alcotest.(check int) "messages" 0 (Stats.snapshot s).Stats.messages

let test_stats_zero () =
  Alcotest.(check int) "zero" 0 Stats.zero.Stats.messages

(* --- Cost model --- *)

let test_frame_cost_zero_model () =
  Alcotest.check feq "free" 0.0 (Cost_model.frame_cost Cost_model.zero ~bytes:1000)

let test_frame_cost_components () =
  let m =
    {
      Cost_model.message_latency = 0.5;
      bandwidth = 100.0;
      per_byte_cpu = 0.01;
      fault_overhead = 0.0;
      local_touch = 0.0;
    }
  in
  (* 0.5 latency + 200/100 wire + 200*0.01 cpu *)
  Alcotest.check feq "cost" 4.5 (Cost_model.frame_cost m ~bytes:200)

let test_frame_cost_monotone_in_bytes () =
  let m = Cost_model.sparc_10mbps in
  let c1 = Cost_model.frame_cost m ~bytes:10 in
  let c2 = Cost_model.frame_cost m ~bytes:10000 in
  Alcotest.(check bool) "monotone" true (c2 > c1)

(* --- Transport --- *)

let mk_transport ?(cost = Cost_model.zero) () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  (Transport.create ~clock ~stats ~cost, clock, stats)

let test_transport_echo () =
  let t, _, _ = mk_transport () in
  Transport.register t "b" (fun src req -> src ^ ":" ^ req);
  let reply = Transport.rpc t ~src:"a" ~dst:"b" "hello" in
  Alcotest.(check string) "echo" "a:hello" reply

let test_transport_unknown_endpoint () =
  let t, _, _ = mk_transport () in
  Alcotest.check_raises "unknown" (Transport.Unknown_endpoint "nope") (fun () ->
      ignore (Transport.rpc t ~src:"a" ~dst:"nope" "x"))

let test_transport_counts_messages_and_bytes () =
  let t, _, stats = mk_transport () in
  Transport.register t "b" (fun _ _ -> "pong!");
  ignore (Transport.rpc t ~src:"a" ~dst:"b" "ping");
  let s = Stats.snapshot stats in
  Alcotest.(check int) "two frames" 2 s.Stats.messages;
  Alcotest.(check int) "bytes both ways" 9 s.Stats.bytes

let test_transport_advances_clock () =
  let cost =
    {
      Cost_model.message_latency = 1.0;
      bandwidth = infinity;
      per_byte_cpu = 0.0;
      fault_overhead = 0.0;
      local_touch = 0.0;
    }
  in
  let t, clock, _ = mk_transport ~cost () in
  Transport.register t "b" (fun _ _ -> "");
  ignore (Transport.rpc t ~src:"a" ~dst:"b" "x");
  Alcotest.check feq "two latencies" 2.0 (Clock.now clock)

let test_transport_nested_dispatch () =
  (* b's handler calls back into a: the synchronous single-thread model *)
  let t, _, stats = mk_transport () in
  Transport.register t "a" (fun _ req -> "a-saw-" ^ req);
  Transport.register t "b" (fun src req ->
      let nested = Transport.rpc t ~src:"b" ~dst:src req in
      "b:" ^ nested);
  let reply = Transport.rpc t ~src:"a" ~dst:"b" "cb" in
  Alcotest.(check string) "callback" "b:a-saw-cb" reply;
  Alcotest.(check int) "four frames" 4 (Stats.snapshot stats).Stats.messages

let test_transport_reregister_replaces () =
  let t, _, _ = mk_transport () in
  Transport.register t "b" (fun _ _ -> "old");
  Transport.register t "b" (fun _ _ -> "new");
  Alcotest.(check string) "replaced" "new" (Transport.rpc t ~src:"a" ~dst:"b" "")

let test_transport_unregister () =
  let t, _, _ = mk_transport () in
  Transport.register t "b" (fun _ _ -> "x");
  Alcotest.(check bool) "registered" true (Transport.is_registered t "b");
  Transport.unregister t "b";
  Alcotest.(check bool) "gone" false (Transport.is_registered t "b")

let test_transport_multicast_skips_src () =
  let t, _, _ = mk_transport () in
  let hits = ref [] in
  let handler name _ req =
    hits := name :: !hits;
    req
  in
  Transport.register t "a" (handler "a");
  Transport.register t "b" (handler "b");
  Transport.register t "c" (handler "c");
  let failed = Transport.multicast t ~src:"a" ~dsts:[ "a"; "b"; "c" ] "inv" in
  Alcotest.(check int) "no failures" 0 (List.length failed);
  Alcotest.(check (list string)) "b and c only" [ "b"; "c" ] (List.sort compare !hits)

let test_transport_charge_fault () =
  let cost = { Cost_model.zero with Cost_model.fault_overhead = 0.125 } in
  let t, clock, stats = mk_transport ~cost () in
  Transport.charge_fault t;
  Transport.charge_fault t;
  Alcotest.check feq "time" 0.25 (Clock.now clock);
  Alcotest.(check int) "count" 2 (Stats.snapshot stats).Stats.faults

let test_transport_charge_touches () =
  let cost = { Cost_model.zero with Cost_model.local_touch = 0.5 } in
  let t, clock, _ = mk_transport ~cost () in
  Transport.charge_local_touches t 4;
  Alcotest.check feq "time" 2.0 (Clock.now clock)

let test_transport_charge_cpu_bytes () =
  let cost = { Cost_model.zero with Cost_model.per_byte_cpu = 0.001 } in
  let t, clock, _ = mk_transport ~cost () in
  Transport.charge_cpu_bytes t 500;
  Alcotest.check feq "time" 0.5 (Clock.now clock)

let test_link_cost_override () =
  let cost =
    {
      Cost_model.message_latency = 1.0;
      bandwidth = infinity;
      per_byte_cpu = 0.0;
      fault_overhead = 0.0;
      local_touch = 0.0;
    }
  in
  let t, clock, _ = mk_transport ~cost () in
  Transport.register t "b" (fun _ _ -> "");
  (* make only the a->b direction 10x slower *)
  Transport.set_link_cost t ~src:"a" ~dst:"b"
    { cost with Cost_model.message_latency = 10.0 };
  ignore (Transport.rpc t ~src:"a" ~dst:"b" "x");
  (* request 10.0 + reply 1.0 *)
  Alcotest.check feq "asymmetric" 11.0 (Clock.now clock);
  Transport.clear_link_cost t ~src:"a" ~dst:"b";
  Clock.reset clock;
  ignore (Transport.rpc t ~src:"a" ~dst:"b" "x");
  Alcotest.check feq "cleared" 2.0 (Clock.now clock)

let test_trace_records_frames () =
  let t, _, _ = mk_transport () in
  let trace = Trace.create () in
  Transport.set_trace t (Some trace);
  Transport.register t "b" (fun _ _ -> "reply!");
  Transport.register t "c" (fun _ _ -> "");
  ignore (Transport.rpc t ~src:"a" ~dst:"b" "req");
  ignore (Transport.rpc t ~src:"a" ~dst:"c" "req2");
  Alcotest.(check int) "four frames" 4 (Trace.length trace);
  Alcotest.(check int) "a->b requests" 1 (Trace.between trace ~src:"a" ~dst:"b");
  Alcotest.(check int) "b->a replies are not requests" 0
    (Trace.between trace ~src:"b" ~dst:"a");
  (match Trace.events trace with
  | { Trace.src = "a"; dst = "b"; kind = Trace.Message Trace.Request; bytes = 3; _ }
    :: { Trace.src = "b"; dst = "a"; kind = Trace.Message Trace.Reply; bytes = 6; _ }
    :: _ ->
    ()
  | _ -> Alcotest.fail "unexpected event sequence");
  Transport.set_trace t None;
  ignore (Transport.rpc t ~src:"a" ~dst:"b" "req");
  Alcotest.(check int) "detached" 4 (Trace.length trace);
  Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (Trace.length trace)

let test_trace_pp () =
  let trace = Trace.create () in
  Trace.record trace ~at:0.5 ~src:"a" ~dst:"b" ~dir:Trace.Request ~bytes:10;
  let s = Format.asprintf "%a" Trace.pp trace in
  Alcotest.(check bool) "rendered" true (String.length s > 10)

let test_transport_endpoints_list () =
  let t, _, _ = mk_transport () in
  Transport.register t "x" (fun _ r -> r);
  Transport.register t "y" (fun _ r -> r);
  Alcotest.(check (list string))
    "endpoints" [ "x"; "y" ]
    (List.sort compare (Transport.endpoints t))

(* --- Fault plan + faulty transport --- *)

let mk_faulty ?seed ?timeout () =
  let t, clock, stats = mk_transport () in
  let plan = Fault_plan.create ?seed ?timeout () in
  Transport.set_fault_plan t (Some plan);
  (t, plan, clock, stats)

let test_fault_plan_deterministic () =
  let fates plan =
    List.init 64 (fun _ -> Fault_plan.frame_fate plan ~src:"a" ~dst:"b")
  in
  let mk () =
    let p = Fault_plan.create ~seed:7 () in
    Fault_plan.set_global p (Fault_plan.profile ~drop:0.3 ~duplicate:0.3 ());
    p
  in
  Alcotest.(check bool) "same seed, same schedule" true (fates (mk ()) = fates (mk ()));
  let other = Fault_plan.create ~seed:8 () in
  Fault_plan.set_global other (Fault_plan.profile ~drop:0.3 ~duplicate:0.3 ());
  Alcotest.(check bool) "different seed, different schedule" false
    (fates (mk ()) = fates other)

let test_fault_plan_validates () =
  Alcotest.check_raises "drop > 1" (Invalid_argument "Fault_plan.profile: probabilities must be in [0, 1]")
    (fun () -> ignore (Fault_plan.profile ~drop:1.5 ()))

let test_fault_drop_raises_timeout () =
  let t, plan, clock, stats = mk_faulty ~timeout:0.5 () in
  let trace = Trace.create () in
  Transport.set_trace t (Some trace);
  Transport.register t "b" (fun _ _ -> "ok");
  Fault_plan.drop_next plan 1;
  (match Transport.rpc t ~src:"a" ~dst:"b" "req" with
  | _ -> Alcotest.fail "expected Timeout"
  | exception Transport.Timeout ep ->
    Alcotest.(check string) "timed-out peer" "b" ep);
  Alcotest.(check int) "timeouts counted" 1 (Stats.snapshot stats).Stats.timeouts;
  Alcotest.check feq "sender waited out the timeout" 0.5 (Clock.now clock);
  (match Trace.events trace with
  | [ { Trace.kind = Trace.Dropped Trace.Request; src = "a"; dst = "b"; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single dropped-request event");
  (* the next frame is delivered: the forced drop was consumed *)
  Alcotest.(check string) "recovers" "ok" (Transport.rpc t ~src:"a" ~dst:"b" "req")

let test_fault_duplicate_dispatches_twice () =
  let t, plan, _, stats = mk_faulty () in
  let trace = Trace.create () in
  Transport.set_trace t (Some trace);
  Fault_plan.set_global plan (Fault_plan.profile ~duplicate:1.0 ());
  let hits = ref 0 in
  Transport.register t "b" (fun _ _ -> incr hits; "ok");
  Alcotest.(check string) "first copy's reply wins" "ok"
    (Transport.rpc t ~src:"a" ~dst:"b" "req");
  Alcotest.(check int) "handler ran twice" 2 !hits;
  let dups =
    List.length
      (List.filter
         (fun e -> match e.Trace.kind with Trace.Dup _ -> true | _ -> false)
         (Trace.events trace))
  in
  Alcotest.(check bool) "duplicate frames traced" true (dups >= 1);
  ignore stats

let test_fault_partition_is_directional () =
  let t, plan, _, _ = mk_faulty ~timeout:0.1 () in
  let a_hits = ref 0 in
  Transport.register t "a" (fun _ _ -> incr a_hits; "from-a");
  Transport.register t "b" (fun _ _ -> "from-b");
  Fault_plan.partition plan ~src:"a" ~dst:"b";
  Alcotest.(check bool) "partitioned" true
    (Fault_plan.is_partitioned plan ~src:"a" ~dst:"b");
  Alcotest.(check bool) "reverse direction open" false
    (Fault_plan.is_partitioned plan ~src:"b" ~dst:"a");
  (match Transport.rpc t ~src:"a" ~dst:"b" "x" with
  | _ -> Alcotest.fail "expected Timeout through the partition"
  | exception Transport.Timeout _ -> ());
  (* the reverse RPC delivers its request (b->a is open) but loses the
     reply frame, which must cross the partitioned a->b direction *)
  (match Transport.rpc t ~src:"b" ~dst:"a" "x" with
  | _ -> Alcotest.fail "expected the reply to be lost"
  | exception Transport.Timeout _ -> ());
  Alcotest.(check int) "request got through one-way" 1 !a_hits;
  Fault_plan.heal plan ~src:"a" ~dst:"b";
  Alcotest.(check string) "healed" "from-b" (Transport.rpc t ~src:"a" ~dst:"b" "x")

let test_fault_crash_and_revive () =
  let t, _, _, _ = mk_faulty () in
  let trace = Trace.create () in
  Transport.set_trace t (Some trace);
  let hits = ref 0 in
  Transport.register t "b" (fun _ _ -> incr hits; "ok");
  Transport.crash t "b";
  (match Transport.rpc t ~src:"a" ~dst:"b" "req" with
  | _ -> Alcotest.fail "expected Peer_crashed"
  | exception Transport.Peer_crashed ep ->
    Alcotest.(check string) "crashed peer" "b" ep);
  Alcotest.(check int) "handler never ran" 0 !hits;
  (* no frame may be recorded to a crashed endpoint (SP006) *)
  let frames =
    List.filter
      (fun e ->
        match e.Trace.kind with
        | Trace.Message _ | Trace.Dropped _ | Trace.Dup _ -> true
        | _ -> false)
      (Trace.events trace)
  in
  Alcotest.(check int) "no frames while crashed" 0 (List.length frames);
  (match Trace.events trace with
  | { Trace.kind = Trace.Crash "b"; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected a crash mark first");
  Transport.revive t "b";
  Alcotest.(check string) "revived" "ok" (Transport.rpc t ~src:"a" ~dst:"b" "req");
  let has_revive =
    List.exists
      (fun e -> e.Trace.kind = Trace.Revive "b")
      (Trace.events trace)
  in
  Alcotest.(check bool) "revive mark traced" true has_revive

let test_fault_latency_adds_up () =
  let t, plan, clock, _ = mk_faulty () in
  Transport.register t "b" (fun _ _ -> "ok");
  Fault_plan.set_link plan ~src:"a" ~dst:"b" (Fault_plan.profile ~latency:2.0 ());
  ignore (Transport.rpc t ~src:"a" ~dst:"b" "req");
  (* only the request direction carries the extra latency *)
  Alcotest.check feq "added latency" 2.0 (Clock.now clock)

let test_fault_multicast_reports_failures () =
  let t, _, _, _ = mk_faulty () in
  Transport.register t "b" (fun _ _ -> "ok");
  Transport.register t "c" (fun _ _ -> "ok");
  Transport.crash t "c";
  let failed = Transport.multicast t ~src:"a" ~dsts:[ "b"; "c"; "nowhere" ] "inv" in
  let eps = List.map fst failed in
  Alcotest.(check (list string)) "dead and unknown reported" [ "c"; "nowhere" ]
    (List.sort compare eps);
  Alcotest.(check bool) "live peer not reported" true
    (not (List.mem "b" eps))

let test_fault_no_plan_is_invalid_crash () =
  let t, _, _ = mk_transport () in
  Transport.register t "b" (fun _ _ -> "ok");
  (match Transport.crash t "b" with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "simnet"
    [
      ( "clock",
        [
          tc "starts at zero" `Quick test_clock_starts_at_zero;
          tc "advance accumulates" `Quick test_clock_advance;
          tc "reset" `Quick test_clock_reset;
          tc "measure" `Quick test_clock_measure;
        ] );
      ( "stats",
        [
          tc "counters" `Quick test_stats_counts;
          tc "diff" `Quick test_stats_diff;
          tc "prefetch counters" `Quick test_stats_prefetch_counters;
          tc "reset" `Quick test_stats_reset;
          tc "zero" `Quick test_stats_zero;
        ] );
      ( "cost-model",
        [
          tc "zero model is free" `Quick test_frame_cost_zero_model;
          tc "components add up" `Quick test_frame_cost_components;
          tc "monotone in bytes" `Quick test_frame_cost_monotone_in_bytes;
        ] );
      ( "transport",
        [
          tc "echo" `Quick test_transport_echo;
          tc "unknown endpoint" `Quick test_transport_unknown_endpoint;
          tc "counts messages and bytes" `Quick test_transport_counts_messages_and_bytes;
          tc "advances clock" `Quick test_transport_advances_clock;
          tc "nested dispatch (callback)" `Quick test_transport_nested_dispatch;
          tc "re-register replaces" `Quick test_transport_reregister_replaces;
          tc "unregister" `Quick test_transport_unregister;
          tc "multicast skips source" `Quick test_transport_multicast_skips_src;
          tc "fault plan: deterministic" `Quick test_fault_plan_deterministic;
          tc "fault plan: validates probabilities" `Quick test_fault_plan_validates;
          tc "fault: drop raises Timeout" `Quick test_fault_drop_raises_timeout;
          tc "fault: duplicate dispatches twice" `Quick test_fault_duplicate_dispatches_twice;
          tc "fault: partition is directional" `Quick test_fault_partition_is_directional;
          tc "fault: crash and revive" `Quick test_fault_crash_and_revive;
          tc "fault: added latency" `Quick test_fault_latency_adds_up;
          tc "fault: multicast reports failures" `Quick test_fault_multicast_reports_failures;
          tc "fault: crash without plan rejected" `Quick test_fault_no_plan_is_invalid_crash;
          tc "charge fault" `Quick test_transport_charge_fault;
          tc "charge touches" `Quick test_transport_charge_touches;
          tc "charge cpu bytes" `Quick test_transport_charge_cpu_bytes;
          tc "endpoints" `Quick test_transport_endpoints_list;
          tc "per-link cost override" `Quick test_link_cost_override;
        ] );
      ( "trace",
        [
          tc "records frames" `Quick test_trace_records_frames;
          tc "pretty printing" `Quick test_trace_pp;
        ] );
    ]

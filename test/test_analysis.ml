(* Unit tests for the offline analysis layer: one seeded-defect fixture
   per descriptor-lint rule, one per protocol invariant, plus clean
   negative cases for both engines and the startup-validation hook. *)

open Srpc_memory
open Srpc_types
open Srpc_analysis
open Type_desc

let rule_ids diags = List.map (fun d -> d.Diagnostic.rule_id) diags
let errors_of diags = List.filter Diagnostic.is_error diags

let has_rule id diags = List.mem id (rule_ids diags)

let check_has ?arches reg id =
  Alcotest.(check bool)
    (id ^ " reported") true
    (has_rule id (Desc_lint.check ?arches reg))

(* --- descriptor linter: seeded defects --- *)

let test_dangling_named () =
  let reg = Registry.create () in
  Registry.register reg "a" (Struct [ ("x", Named "missing") ]);
  check_has reg "TD001";
  Alcotest.(check int) "one error" 1
    (Diagnostic.count_errors (Desc_lint.check reg))

let test_by_value_cycle () =
  let reg = Registry.create () in
  Registry.register reg "c1" (Struct [ ("next", Named "c2") ]);
  Registry.register reg "c2" (Struct [ ("prev", Named "c1") ]);
  check_has reg "TD002";
  (* the cycle is one defect, reported once, not once per member *)
  Alcotest.(check int) "cycle reported once" 1
    (List.length
       (List.filter (fun d -> d.Diagnostic.rule_id = "TD002") (Desc_lint.check reg)))

let test_self_cycle () =
  let reg = Registry.create () in
  Registry.register reg "selfish" (Struct [ ("me", Named "selfish") ]);
  check_has reg "TD002"

let test_array_lengths () =
  let reg = Registry.create () in
  Registry.register reg "neg" (Struct [ ("xs", Array (i64, -1)) ]);
  Registry.register reg "zero" (Struct [ ("xs", Array (i64, 0)) ]);
  let diags = Desc_lint.check reg in
  let td3 = List.filter (fun d -> d.Diagnostic.rule_id = "TD003") diags in
  Alcotest.(check int) "both lengths flagged" 2 (List.length td3);
  Alcotest.(check int) "negative is the only error" 1
    (List.length (errors_of td3));
  let err = List.hd (errors_of td3) in
  Alcotest.(check string) "error path" "neg.xs" err.Diagnostic.path

let test_duplicate_fields () =
  let reg = Registry.create () in
  Registry.register reg "dup" (Struct [ ("x", i64); ("x", f64) ]);
  check_has reg "TD004"

let test_layout_divergence () =
  let reg = Registry.create () in
  Registry.register reg "cell"
    (Struct [ ("next", ptr "cell"); ("prev", ptr "cell"); ("v", i64) ]);
  (* pointer width differs between the 32- and 64-bit architectures *)
  check_has ~arches:[ Arch.sparc32; Arch.lp64_le ] reg "TD005";
  let diags = Desc_lint.check ~arches:[ Arch.sparc32; Arch.lp64_le ] reg in
  Alcotest.(check bool) "divergence is a warning, not an error" true
    (errors_of diags = []);
  (* under a single architecture there is nothing to disagree with *)
  Alcotest.(check bool) "single arch clean" false
    (has_rule "TD005" (Desc_lint.check ~arches:[ Arch.sparc32 ] reg));
  (* same word size everywhere: no divergence either *)
  Alcotest.(check bool) "same word size clean" false
    (has_rule "TD005" (Desc_lint.check ~arches:[ Arch.lp64_le; Arch.lp64_be ] reg))

let test_unregistered_pointee () =
  let reg = Registry.create () in
  Registry.register reg "holder" (Struct [ ("p", ptr "ghost") ]);
  check_has reg "TD006"

let test_hint_lint () =
  let reg = Registry.create () in
  Registry.register reg "cell" (Struct [ ("next", ptr "cell"); ("v", i64) ]);
  (* a hint naming an absent field would raise mid-session: error *)
  let diags = Desc_lint.check ~hints:[ ("cell", [ "nxet" ]) ] reg in
  Alcotest.(check bool) "TD007 reported" true (has_rule "TD007" diags);
  Alcotest.(check int) "absent field is an error" 1 (Diagnostic.count_errors diags);
  (* following a pointer-free field prefetches nothing: warning only *)
  let diags = Desc_lint.check ~hints:[ ("cell", [ "v" ]) ] reg in
  Alcotest.(check bool) "TD007 warns" true (has_rule "TD007" diags);
  Alcotest.(check int) "pointer-free field is not an error" 0
    (Diagnostic.count_errors diags);
  (* hint for a type the registry has never seen: error *)
  let diags = Desc_lint.check ~hints:[ ("ghost", [ "next" ]) ] reg in
  Alcotest.(check int) "unknown hinted type is an error" 1
    (Diagnostic.count_errors diags);
  (* a correct hint is clean *)
  Alcotest.(check (list string)) "clean hint" []
    (rule_ids (Desc_lint.check ~hints:[ ("cell", [ "next" ]) ] reg))

let test_cluster_hint_validation () =
  let open Srpc_core in
  let cluster = Cluster.create () in
  Cluster.register_type cluster "cell" (Struct [ ("next", ptr "cell"); ("v", i64) ]);
  Cluster.set_closure_hint cluster ~ty:"cell"
    { Hints.follow = [ "nxet" ]; prune_others = false };
  (match Cluster.validate cluster with
  | () -> Alcotest.fail "misspelled hint field not caught"
  | exception Desc_lint.Invalid_registry ds ->
    Alcotest.(check bool) "TD007 in findings" true (has_rule "TD007" ds));
  (* the runtime raises descriptively too, instead of a bare Not_found *)
  let node = Cluster.add_node cluster ~site:1 () in
  match
    Hints.pointer_fields (Cluster.hints cluster) (Cluster.registry cluster)
      (Node.arch node) ~ty:"cell"
  with
  | _ -> Alcotest.fail "expected Unknown_field"
  | exception Hints.Unknown_field { ty; field } ->
    Alcotest.(check string) "offending type" "cell" ty;
    Alcotest.(check string) "offending field" "nxet" field

let test_clean_registry () =
  let reg = Registry.create () in
  Registry.register reg "tnode"
    (Struct [ ("left", ptr "tnode"); ("right", ptr "tnode"); ("data", i64) ]);
  Registry.register reg "flat"
    (Struct [ ("tag", i8); ("xs", Array (f64, 16)) ]);
  Alcotest.(check (list string)) "no findings" [] (rule_ids (Desc_lint.check reg));
  (* a pointer-free type agrees even across every architecture *)
  let reg2 = Registry.create () in
  Registry.register reg2 "flat"
    (Struct [ ("tag", i8); ("xs", Array (f64, 16)) ]);
  Alcotest.(check (list string)) "arch-stable" []
    (rule_ids (Desc_lint.check ~arches:Desc_lint.all_arches reg2))

let test_validate_raises () =
  let reg = Registry.create () in
  Registry.register reg "bad" (Struct [ ("p", ptr "ghost") ]);
  Alcotest.check_raises "validate raises"
    (Desc_lint.Invalid_registry
       [
         Diagnostic.make ~severity:Error ~rule_id:"TD006" ~path:"bad.p"
           "pointee type \"ghost\" is never registered";
       ])
    (fun () -> Desc_lint.validate reg)

let test_node_startup_validation () =
  let open Srpc_core in
  let cluster = Cluster.create () in
  Cluster.register_type cluster "bad" (Struct [ ("p", ptr "ghost") ]);
  (match Cluster.add_node cluster ~site:1 ~validate:true () with
  | _ -> Alcotest.fail "bad registry accepted at startup"
  | exception Desc_lint.Invalid_registry _ -> ());
  (* the same cluster comes up fine once the pointee exists *)
  Cluster.register_type cluster "ghost" (Struct [ ("v", i64) ]);
  ignore (Cluster.add_node cluster ~site:2 ~validate:true ())

(* --- protocol verifier: synthetic traces --- *)

open Srpc_simnet

let ev ?(at = 0.0) ?(bytes = 0) ?(label = "") src dst kind =
  { Trace.at; src; dst; kind; bytes; label }
let req src dst = ev ~bytes:4 src dst (Trace.Message Trace.Request)
let rep src dst = ev ~bytes:4 src dst (Trace.Message Trace.Reply)
let mark src kind = ev src src kind

let proto_ids events = rule_ids (Proto_lint.check_events events)

let close_phase ground peer id =
  (* a well-formed session close: write-back, then invalidation *)
  [
    mark ground (Trace.Write_back id);
    req ground peer; rep peer ground;
    mark ground (Trace.Invalidate id);
    req ground peer; rep peer ground;
    mark ground (Trace.Session_end id);
  ]

let test_clean_trace () =
  let events =
    [ mark "a" (Trace.Session_begin 1); req "a" "b"; rep "b" "a" ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check (list string)) "no findings" [] (proto_ids events)

let test_nested_calls_ok () =
  (* a -> b -> c -> a (callback), replies unwinding in LIFO order *)
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; req "b" "c"; req "c" "a";
      rep "a" "c"; rep "c" "b"; rep "b" "a";
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check (list string)) "nesting is legal" [] (proto_ids events)

let test_overlapping_requests () =
  (* a issues a second request while its first is outstanding: two
     active threads in one session *)
  let events =
    [ mark "a" (Trace.Session_begin 1); req "a" "b"; req "a" "c" ]
  in
  Alcotest.(check bool) "SP001" true (List.mem "SP001" (proto_ids events))

let test_mismatched_reply () =
  let events =
    [ mark "a" (Trace.Session_begin 1); req "a" "b"; rep "c" "a" ]
  in
  Alcotest.(check bool) "SP001" true (List.mem "SP001" (proto_ids events))

let test_unreplied_request () =
  let at_end = [ mark "a" (Trace.Session_begin 1); req "a" "b" ] in
  Alcotest.(check bool) "SP002 at end of trace" true
    (List.mem "SP002" (proto_ids at_end));
  let at_close =
    [
      mark "a" (Trace.Session_begin 1); req "a" "b";
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check bool) "SP002 at session end" true
    (List.mem "SP002" (proto_ids at_close))

let test_traffic_outside_session () =
  Alcotest.(check bool) "SP003 before any session" true
    (List.mem "SP003" (proto_ids [ req "a" "b"; rep "b" "a" ]));
  let after_close =
    [ mark "a" (Trace.Session_begin 1) ]
    @ close_phase "a" "b" 1
    @ [ req "a" "b" ]
  in
  Alcotest.(check bool) "SP003 after close" true
    (List.mem "SP003" (proto_ids after_close))

let test_invalidate_before_writeback () =
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; rep "b" "a";
      mark "a" (Trace.Invalidate 1);
      req "a" "b"; rep "b" "a";
      mark "a" (Trace.Write_back 1);
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check bool) "SP004" true (List.mem "SP004" (proto_ids events))

let abort_phase ground peer id =
  (* a well-formed session abort: invalidation, no write-back *)
  [
    mark ground (Trace.Session_abort id);
    mark ground (Trace.Invalidate id);
    req ground peer; rep peer ground;
    mark ground (Trace.Session_end id);
  ]

let test_clean_abort_trace () =
  let events =
    [ mark "a" (Trace.Session_begin 1); req "a" "b"; rep "b" "a" ]
    @ abort_phase "a" "b" 1
  in
  Alcotest.(check (list string)) "abort verifies" [] (proto_ids events)

let test_abort_with_writeback () =
  (* a write-back before the abort mark: the modified set escaped *)
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; rep "b" "a";
      mark "a" (Trace.Write_back 1);
    ]
    @ abort_phase "a" "b" 1
  in
  Alcotest.(check bool) "SP005" true (List.mem "SP005" (proto_ids events))

let test_abort_without_invalidation () =
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; rep "b" "a";
      mark "a" (Trace.Session_abort 1);
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check bool) "SP005" true (List.mem "SP005" (proto_ids events))

let test_frame_after_crash () =
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      mark "b" (Trace.Crash "b");
      req "a" "b"; rep "b" "a";
    ]
    @ close_phase "a" "c" 1
  in
  Alcotest.(check bool) "SP006" true (List.mem "SP006" (proto_ids events))

let test_crash_revive_clean () =
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      mark "b" (Trace.Crash "b");
      req "a" "c"; rep "c" "a";
      mark "b" (Trace.Revive "b");
      req "a" "b"; rep "b" "a";
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check (list string)) "revived traffic legal" [] (proto_ids events)

(* --- SP009: typed shedding and the circuit breaker --- *)

let test_shed_while_open () =
  (* the controller refused a session it had already admitted *)
  let events =
    [
      mark "a" (Trace.Session_admit 1);
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; rep "b" "a";
      mark "a" (Trace.Session_shed 1);
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check bool) "SP009" true (List.mem "SP009" (proto_ids events))

let test_begin_after_shed () =
  (* a typed shed is terminal for the attempt: beginning anyway without
     a fresh admission is a violation... *)
  let shed_then_begin =
    [
      mark "a" (Trace.Session_shed 1);
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; rep "b" "a";
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check bool) "SP009" true
    (List.mem "SP009" (proto_ids shed_then_begin));
  (* ...but a fresh Session_admit clears the shed for the same id *)
  let readmitted =
    [
      mark "a" (Trace.Session_shed 1);
      mark "a" (Trace.Session_admit 1);
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; rep "b" "a";
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check (list string)) "fresh admission clears the shed" []
    (proto_ids readmitted)

let test_breaker_bypassed () =
  (* the session begins while b is crashed and then sends it a frame:
     the circuit breaker should have held the session until revival *)
  let events =
    [
      mark "b" (Trace.Crash "b");
      mark "a" (Trace.Session_admit 1);
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; rep "b" "a";
    ]
    @ close_phase "a" "c" 1
  in
  Alcotest.(check bool) "SP009" true (List.mem "SP009" (proto_ids events));
  (* revived before the frame: no breaker violation (and a crash that
     happens mid-session is SP006's territory, not SP009's) *)
  let revived =
    [
      mark "b" (Trace.Crash "b");
      mark "a" (Trace.Session_admit 1);
      mark "a" (Trace.Session_begin 1);
      mark "b" (Trace.Revive "b");
      req "a" "b"; rep "b" "a";
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check bool) "no SP009 after revival" false
    (List.mem "SP009" (proto_ids revived))

let test_dropped_and_dup_frames_tolerated () =
  (* a dropped request is thread-neutral; a dropped reply hands the
     thread back to the requester, who retries; duplicates are noise *)
  let dropped_req = ev ~bytes:4 "a" "b" (Trace.Dropped Trace.Request) in
  let dropped_rep = ev ~bytes:4 "b" "a" (Trace.Dropped Trace.Reply) in
  let dup_req = ev ~bytes:4 "a" "b" (Trace.Dup Trace.Request) in
  let dup_rep = ev ~bytes:4 "b" "a" (Trace.Dup Trace.Reply) in
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      dropped_req;                          (* lost: retried below *)
      req "a" "b"; dup_req; dup_rep; rep "b" "a";
      req "a" "b"; dropped_rep;             (* reply lost: retried *)
      req "a" "b"; rep "b" "a";
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check (list string)) "faulty trace verifies" [] (proto_ids events)

(* --- SP010: offload-calls stay inside the session footprint --- *)

let off_req src dst =
  ev ~bytes:4 ~label:"offload-call" src dst (Trace.Message Trace.Request)

let off_rep src dst =
  ev ~bytes:4 ~label:"offload-return" src dst (Trace.Message Trace.Reply)

let touch ?(session = 1) ground datum =
  ev ground ground (Trace.Access { session; datum; akind = Trace.Acc_read })

let test_offload_without_footprint () =
  (* a plan ships to b before the session touched any datum of b: the
     client is required to mark the root datum before framing the call *)
  let events =
    [ mark "a" (Trace.Session_begin 1); off_req "a" "b"; off_rep "b" "a" ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check bool) "SP010" true (List.mem "SP010" (proto_ids events));
  (* the same call with the root datum marked first is clean *)
  let marked =
    [
      mark "a" (Trace.Session_begin 1);
      touch "a" "b/4096";
      off_req "a" "b"; off_rep "b" "a";
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check (list string)) "footprint legitimises the call" []
    (proto_ids marked)

let test_offload_into_ground () =
  (* the ground's own heap is always in the footprint: a callee may
     ship a plan back to the ground without any Access mark *)
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      req "a" "b";
      off_req "b" "a"; off_rep "a" "b";
      rep "b" "a";
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check (list string)) "ground is always reachable" []
    (proto_ids events)

let test_offload_to_dead_peer () =
  (* b was crashed before the session began and never revived: even a
     marked footprint cannot legitimise shipping a plan there *)
  let events =
    [
      mark "b" (Trace.Crash "b");
      mark "a" (Trace.Session_begin 1);
      touch "a" "b/4096";
      off_req "a" "b"; off_rep "b" "a";
    ]
    @ close_phase "a" "c" 1
  in
  Alcotest.(check bool) "SP010" true (List.mem "SP010" (proto_ids events));
  (* revived before the call: liveness is restored, the footprint rules *)
  let revived =
    [
      mark "b" (Trace.Crash "b");
      mark "a" (Trace.Session_begin 1);
      mark "b" (Trace.Revive "b");
      touch "a" "b/4096";
      off_req "a" "b"; off_rep "b" "a";
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check bool) "no SP010 after revival" false
    (List.mem "SP010" (proto_ids revived))

let test_offload_footprint_multi () =
  (* the multiplexed machine tracks a footprint per session: another
     session's Access marks do not legitimise this one's offload-call *)
  let mclose ground id =
    [ mark ground (Trace.Write_back id); mark ground (Trace.Invalidate id);
      mark ground (Trace.Session_end id) ]
  in
  let events footprint =
    [
      mark "a" (Trace.Session_admit 1);
      mark "a" (Trace.Session_begin 1);
      mark "c" (Trace.Session_admit 2);
      mark "c" (Trace.Session_begin 2);
      (* session 2 (grounded at c) touches b; session 1 does not *)
      touch ~session:2 "c" "b/64";
    ]
    @ (if footprint then [ touch ~session:1 "a" "b/4096" ] else [])
    @ [ off_req "a" "b"; off_rep "b" "a" ]
    @ mclose "a" 1 @ mclose "c" 2
  in
  Alcotest.(check bool) "SP010 against session 1's footprint" true
    (List.mem "SP010" (proto_ids (events false)));
  Alcotest.(check bool) "session 1's own mark clears it" false
    (List.mem "SP010" (proto_ids (events true)))

let test_runtime_trace_verifies () =
  let open Srpc_core in
  let cluster = Cluster.create () in
  let a = Cluster.add_node cluster ~site:1 () in
  let b = Cluster.add_node cluster ~site:2 () in
  let c = Cluster.add_node cluster ~site:3 () in
  Srpc_workloads.Linked_list.register_types cluster;
  let trace = Trace.create () in
  Transport.set_trace (Cluster.transport cluster) (Some trace);
  Node.register a "bonus" (fun _ _ -> [ Value.int 5 ]);
  Node.register c "bump" (fun node args ->
      let p = Access.of_value (List.hd args) in
      let bonus =
        match Node.call node ~dst:(Node.id a) "bonus" [] with
        | [ v ] -> Value.to_int v
        | _ -> 0
      in
      let v = Access.get_int node p ~field:"value" in
      Access.set_int node p ~field:"value" (v + bonus);
      [ Value.unit ]);
  Node.register b "relay" (fun node args ->
      Node.call node ~dst:(Node.id c) "bump" args);
  let head = Srpc_workloads.Linked_list.build a [ 1; 2; 3 ] in
  Node.with_session a (fun () ->
      ignore (Node.call a ~dst:(Node.id b) "relay" [ Access.to_value head ]));
  (* the runtime recorded all four mark kinds... *)
  let kinds = List.map (fun e -> e.Trace.kind) (Trace.events trace) in
  let has p = List.exists p kinds in
  Alcotest.(check bool) "session begin mark" true
    (has (function Trace.Session_begin _ -> true | _ -> false));
  Alcotest.(check bool) "write-back mark" true
    (has (function Trace.Write_back _ -> true | _ -> false));
  Alcotest.(check bool) "invalidate mark" true
    (has (function Trace.Invalidate _ -> true | _ -> false));
  Alcotest.(check bool) "session end mark" true
    (has (function Trace.Session_end _ -> true | _ -> false));
  (* ...and the whole trace satisfies every invariant, including the
     happens-before race rules *)
  Alcotest.(check (list string)) "runtime trace clean" []
    (rule_ids (Proto_lint.check trace));
  Alcotest.(check (list string)) "runtime trace race-free" []
    (rule_ids (Race_lint.check trace));
  (* the callback value really arrived (the scenario is not vacuous) *)
  Alcotest.(check int) "callback applied" 6
    (Access.get_int a head ~field:"value")

(* SP007: every space that received a data copy (Copy note) must be
   named by an invalidation (Inval_sent note) before the session ends. *)
let note src dst kind = ev src dst kind

let test_targeted_invalidation_misses_casher () =
  (* b and c both cached data; only b is invalidated — the seeded defect *)
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; note "a" "b" (Trace.Copy 1); rep "b" "a";
      req "a" "c"; note "a" "c" (Trace.Copy 1); rep "c" "a";
      mark "a" (Trace.Write_back 1);
      mark "a" (Trace.Invalidate 1);
      note "a" "b" (Trace.Inval_sent 1);
      req "a" "b"; rep "b" "a";
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check bool) "SP007" true (List.mem "SP007" (proto_ids events))

let test_targeted_invalidation_clean () =
  (* every casher invalidated: clean; the ground itself never needs a
     message; and a session with no Copy notes is exempt entirely *)
  let covered =
    [
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; note "a" "b" (Trace.Copy 1); rep "b" "a";
      note "b" "a" (Trace.Copy 1);  (* a copy landing at ground: exempt *)
      mark "a" (Trace.Write_back 1);
      mark "a" (Trace.Invalidate 1);
      note "a" "b" (Trace.Inval_sent 1);
      req "a" "b"; rep "b" "a";
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check (list string)) "covered set is clean" []
    (proto_ids covered);
  let no_copies =
    [ mark "a" (Trace.Session_begin 1); req "a" "b"; rep "b" "a" ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check (list string)) "no Copy notes: rule does not apply" []
    (proto_ids no_copies)

let test_targeted_invalidation_abort_exempt () =
  (* an aborted session invalidates through the Abort frame; missing
     Inval_sent notes must not produce SP007 on top of the abort *)
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      req "a" "b"; note "a" "b" (Trace.Copy 1); rep "b" "a";
      mark "a" (Trace.Session_abort 1);
      mark "a" (Trace.Invalidate 1);
      req "a" "b"; rep "b" "a";
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check bool) "no SP007 on abort" false
    (List.mem "SP007" (proto_ids events))

let test_copy_state_resets_between_sessions () =
  (* a casher from session 1 (fully invalidated) owes nothing in
     session 2 *)
  let events =
    [ mark "a" (Trace.Session_begin 1);
      req "a" "b"; note "a" "b" (Trace.Copy 1); rep "b" "a" ]
    @ [
        mark "a" (Trace.Write_back 1);
        mark "a" (Trace.Invalidate 1);
        note "a" "b" (Trace.Inval_sent 1);
        req "a" "b"; rep "b" "a";
        mark "a" (Trace.Session_end 1);
      ]
    @ [ mark "a" (Trace.Session_begin 2); req "a" "c";
        note "a" "c" (Trace.Copy 2); rep "c" "a" ]
    @ [
        mark "a" (Trace.Write_back 2);
        mark "a" (Trace.Invalidate 2);
        note "a" "c" (Trace.Inval_sent 2);
        req "a" "c"; rep "c" "a";
        mark "a" (Trace.Session_end 2);
      ]
  in
  Alcotest.(check (list string)) "per-session state resets" []
    (proto_ids events)

(* --- protocol verifier: delta-era labeled frames --- *)

let lreq label src dst = ev ~bytes:4 ~label src dst (Trace.Message Trace.Request)
let lrep label src dst = ev ~bytes:4 ~label src dst (Trace.Message Trace.Reply)

let test_delta_call_mispaired () =
  (* a delta-carrying call answered by a plain return: the piggybacked
     refresh never arrived — the seeded SP002 pairing defect *)
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      lreq "call-d" "a" "b";
      lrep "return" "b" "a";
    ]
  in
  Alcotest.(check bool) "SP002" true (List.mem "SP002" (proto_ids events));
  let clean =
    [
      mark "a" (Trace.Session_begin 1);
      lreq "call-d" "a" "b";
      lrep "return-d" "b" "a";
    ]
    @ close_phase "a" "b" 1
  in
  Alcotest.(check (list string)) "call-d/return-d pairs" []
    (proto_ids clean)

let test_delta_inv_frame_before_writeback () =
  (* an invalidate-carrying delta frame belongs to the invalidation
     phase; sending one before the write-back mark breaks close
     ordering *)
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      lreq "wb-delta+inv" "a" "b";
      lrep "ack" "b" "a";
    ]
  in
  Alcotest.(check bool) "SP004" true (List.mem "SP004" (proto_ids events))

let test_staged_delta_after_commit () =
  (* staged frames must precede the commit point; one after it can no
     longer be made atomic *)
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      mark "a" (Trace.Write_back 1);
      lreq "wb-stage-delta" "a" "b";
      lrep "ack" "b" "a";
    ]
  in
  Alcotest.(check bool) "SP004" true (List.mem "SP004" (proto_ids events));
  (* the well-ordered staged close is clean *)
  let clean =
    [
      mark "a" (Trace.Session_begin 1);
      lreq "wb-stage" "a" "b";
      lrep "ack" "b" "a";
      lreq "wb-stage-delta" "a" "b";
      lrep "ack" "b" "a";
      mark "a" (Trace.Write_back 1);
      lreq "wb-commit" "a" "b";
      lrep "ack" "b" "a";
      mark "a" (Trace.Invalidate 1);
      lreq "invalidate" "a" "b";
      lrep "ack" "b" "a";
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check (list string)) "staged close verifies" [] (proto_ids clean)

(* --- happens-before race checker: synthetic traces --- *)

let acc ?(session = 1) src datum akind =
  mark src (Trace.Access { session; datum; akind })

let race_ids events = rule_ids (Race_lint.check_events events)

let test_cc101_unordered_writes () =
  (* two spaces write the same datum with no frame between them *)
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      acc "b" "a/64" Trace.Acc_write;
      acc "c" "a/64" Trace.Acc_write;
    ]
  in
  Alcotest.(check bool) "CC101" true (List.mem "CC101" (race_ids events));
  (* the same two writes ordered by delivered frames, write-back
     travelling home before the apply: clean *)
  let ordered =
    [
      mark "a" (Trace.Session_begin 1);
      acc "b" "a/64" Trace.Acc_write;
      req "b" "c";
      acc "c" "a/64" Trace.Acc_write;
      req "c" "a";
      acc "a" "a/64" Trace.Acc_apply;
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check (list string)) "frame-ordered writes clean" []
    (race_ids ordered);
  (* a dropped frame creates no order: the race is back *)
  let dropped =
    [
      mark "a" (Trace.Session_begin 1);
      acc "b" "a/64" Trace.Acc_write;
      ev ~bytes:4 "b" "c" (Trace.Dropped Trace.Request);
      acc "c" "a/64" Trace.Acc_write;
    ]
  in
  Alcotest.(check bool) "CC101 through a dropped frame" true
    (List.mem "CC101" (race_ids dropped))

let test_cc102_stale_copy () =
  (* a copy installed in session 1 survives the close (its invalidation
     never landed) and is read again in session 2 *)
  let stale =
    [
      mark "a" (Trace.Session_begin 1);
      acc "b" "a/64" Trace.Acc_install;
      acc "b" "a/64" Trace.Acc_read;
      mark "a" (Trace.Session_end 1);
      mark "a" (Trace.Session_begin 2);
      acc ~session:2 "b" "a/64" Trace.Acc_read;
      acc ~session:2 "b" "a/64" Trace.Acc_read;
    ]
  in
  let cc102 = List.filter (String.equal "CC102") (race_ids stale) in
  Alcotest.(check int) "one CC102 (deduplicated per datum)" 1
    (List.length cc102);
  (* the purge mark at close clears the copy: clean *)
  let purged =
    [
      mark "a" (Trace.Session_begin 1);
      acc "b" "a/64" Trace.Acc_install;
      acc "b" "a/64" Trace.Acc_read;
      acc "b" "*" Trace.Acc_drop;
      mark "a" (Trace.Session_end 1);
      mark "a" (Trace.Session_begin 2);
      acc ~session:2 "b" "a/64" Trace.Acc_install;
      acc ~session:2 "b" "a/64" Trace.Acc_read;
    ]
  in
  Alcotest.(check (list string)) "purged copy clean" [] (race_ids purged)

let test_cc102_lost_writeback () =
  (* a foreign write never applied at its home before the committed
     close: the update was silently lost *)
  let lost =
    [
      mark "a" (Trace.Session_begin 1);
      acc "b" "a/64" Trace.Acc_write;
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check bool) "CC102" true (List.mem "CC102" (race_ids lost));
  (* an aborted session discards modified data by design *)
  let aborted =
    [
      mark "a" (Trace.Session_begin 1);
      acc "b" "a/64" Trace.Acc_write;
      mark "a" (Trace.Session_abort 1);
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check (list string)) "aborted session exempt" []
    (race_ids aborted);
  (* the home crashing mid-session is abort semantics, not a race *)
  let crashed =
    [
      mark "a" (Trace.Session_begin 1);
      acc "b" "a/64" Trace.Acc_write;
      mark "a" (Trace.Crash "a");
      mark "a" (Trace.Session_end 1);
    ]
  in
  Alcotest.(check (list string)) "crashed home exempt" []
    (race_ids crashed)

let test_cc103_use_after_free () =
  let events =
    [
      mark "a" (Trace.Session_begin 1);
      acc "a" "a/64" Trace.Acc_free;
      acc "b" "a/64" Trace.Acc_read;
    ]
  in
  Alcotest.(check bool) "CC103" true (List.mem "CC103" (race_ids events));
  (* reallocation recycles the region legitimately *)
  let recycled =
    [
      mark "a" (Trace.Session_begin 1);
      acc "a" "a/64" Trace.Acc_free;
      acc "a" "a/64" Trace.Acc_alloc;
      acc "b" "a/64" Trace.Acc_read;
    ]
  in
  Alcotest.(check (list string)) "realloc clean" [] (race_ids recycled)

(* --- static footprints --- *)

let fp_paths fp =
  List.map (fun r -> r.Footprint.path) fp.Footprint.regions

let test_footprint_recursive_widens () =
  let reg = Registry.create () in
  Registry.register reg "cell" (Struct [ ("next", ptr "cell"); ("v", i64) ]);
  let fp = Footprint.of_type reg ~ty:"cell" ~mode:Footprint.Read () in
  Alcotest.(check (list string)) "root + widened tail" [ ""; "next.*" ]
    (fp_paths fp);
  Alcotest.(check bool) "CC003 recorded" true
    (has_rule "CC003" fp.Footprint.diags);
  Alcotest.(check int) "widening is a warning, not an error" 0
    (Diagnostic.count_errors fp.Footprint.diags)

let test_footprint_finite_graph () =
  let reg = Registry.create () in
  Registry.register reg "leaf" (Struct [ ("v", i64) ]);
  Registry.register reg "pair"
    (Struct [ ("a", ptr "leaf"); ("b", ptr "leaf") ]);
  let fp = Footprint.of_type reg ~ty:"pair" ~mode:Footprint.Write () in
  Alcotest.(check (list string)) "finite regions, no widening"
    [ ""; "a"; "b" ] (fp_paths fp);
  Alcotest.(check (list string)) "no diagnostics" []
    (rule_ids fp.Footprint.diags)

let test_footprint_hint_bounds () =
  let reg = Registry.create () in
  Registry.register reg "blob" (Struct [ ("payload", Array (f64, 8)) ]);
  Registry.register reg "rcell"
    (Struct
       [ ("next", ptr "rcell"); ("blob", ptr "blob"); ("tag", i64) ]);
  let unhinted = Footprint.of_type reg ~ty:"rcell" ~mode:Footprint.Read () in
  Alcotest.(check (list string)) "unhinted follows every pointer"
    [ ""; "blob"; "next.*" ] (fp_paths unhinted);
  let hinted =
    Footprint.of_type reg
      ~hints:[ ("rcell", [ "next" ]) ]
      ~ty:"rcell" ~mode:Footprint.Read ()
  in
  Alcotest.(check (list string)) "hint prunes the blob edge"
    [ ""; "next.*" ] (fp_paths hinted)

let test_regions_overlap () =
  let r ?(root = "obj#0") ?(mode = Footprint.Read) path =
    { Footprint.root; path; mode }
  in
  let check_o name expect a b =
    Alcotest.(check bool) name expect (Footprint.regions_overlap a b);
    Alcotest.(check bool) (name ^ " (sym)") expect
      (Footprint.regions_overlap b a)
  in
  check_o "wildcard covers a field" true (r "*") (r "next");
  check_o "different roots never overlap" false (r "*")
    (r ~root:"obj#1" "*");
  check_o "subtree covers descendants" true (r "a.*") (r "a.b");
  check_o "subtree vs sibling prefix" false (r "a.*") (r "ab");
  check_o "distinct fields are disjoint" false (r "a") (r "b");
  check_o "equal paths overlap" true (r "a.b") (r "a.b")

let test_footprint_interference () =
  let open Footprint in
  let s ?escapes label regions = session ~label ?escapes regions in
  let region root path mode = { root; path; mode } in
  let w1 = s "w1" [ region "obj#0" "*" Write ] in
  let w2 = s "w2" [ region "obj#0" "next" Write ] in
  let rd = s "rd" [ region "obj#0" "next" Read ] in
  let other = s "other" [ region "obj#1" "*" Write ] in
  let fr = s "fr" [ region "obj#0" "*" Free ] in
  let esc = s ~escapes:true "esc" [] in
  Alcotest.(check bool) "CC001 write-write" true
    (has_rule "CC001" (interferes w1 w2));
  Alcotest.(check bool) "CC002 write-read" true
    (has_rule "CC002" (interferes w1 rd));
  Alcotest.(check (list string)) "disjoint roots are clean" []
    (rule_ids (interferes w1 other));
  Alcotest.(check bool) "CC005 free inside a footprint" true
    (has_rule "CC005" (interferes fr rd));
  let cc4 = interferes esc other in
  Alcotest.(check bool) "CC004 escape" true (has_rule "CC004" cc4);
  Alcotest.(check int) "escape is a warning, not an error" 0
    (Diagnostic.count_errors cc4);
  (* reads never conflict with reads *)
  Alcotest.(check (list string)) "read-read clean" []
    (rule_ids (interferes rd rd))

(* --- catalogue hygiene --- *)

let test_catalogue_covers_emitted_rules () =
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " in catalogue") true
        (Diagnostic.find_rule id <> None))
    [ "TD001"; "TD002"; "TD003"; "TD004"; "TD005"; "TD006"; "TD007";
      "SP001"; "SP002"; "SP003"; "SP004"; "SP005"; "SP006"; "SP007"; "SP010";
      "CC001"; "CC002"; "CC003"; "CC004"; "CC005";
      "CC101"; "CC102"; "CC103" ]

let tc = Alcotest.test_case

let () =
  Alcotest.run "analysis"
    [
      ( "desc-lint",
        [
          tc "dangling named target" `Quick test_dangling_named;
          tc "by-value cycle" `Quick test_by_value_cycle;
          tc "self cycle" `Quick test_self_cycle;
          tc "array lengths" `Quick test_array_lengths;
          tc "duplicate fields" `Quick test_duplicate_fields;
          tc "layout divergence" `Quick test_layout_divergence;
          tc "unregistered pointee" `Quick test_unregistered_pointee;
          tc "hint lint" `Quick test_hint_lint;
          tc "cluster hint validation" `Quick test_cluster_hint_validation;
          tc "clean registry" `Quick test_clean_registry;
          tc "validate raises" `Quick test_validate_raises;
          tc "node startup validation" `Quick test_node_startup_validation;
        ] );
      ( "proto-lint",
        [
          tc "clean trace" `Quick test_clean_trace;
          tc "nested calls ok" `Quick test_nested_calls_ok;
          tc "overlapping requests" `Quick test_overlapping_requests;
          tc "mismatched reply" `Quick test_mismatched_reply;
          tc "unreplied request" `Quick test_unreplied_request;
          tc "traffic outside session" `Quick test_traffic_outside_session;
          tc "invalidate before write-back" `Quick test_invalidate_before_writeback;
          tc "clean abort trace" `Quick test_clean_abort_trace;
          tc "abort with write-back" `Quick test_abort_with_writeback;
          tc "abort without invalidation" `Quick test_abort_without_invalidation;
          tc "frame after crash" `Quick test_frame_after_crash;
          tc "crash and revive clean" `Quick test_crash_revive_clean;
          tc "SP009 shed while open" `Quick test_shed_while_open;
          tc "SP009 begin after shed" `Quick test_begin_after_shed;
          tc "SP009 breaker bypassed" `Quick test_breaker_bypassed;
          tc "dropped and dup frames tolerated" `Quick test_dropped_and_dup_frames_tolerated;
          tc "runtime trace verifies" `Quick test_runtime_trace_verifies;
          tc "targeted invalidation misses a casher" `Quick
            test_targeted_invalidation_misses_casher;
          tc "targeted invalidation clean" `Quick
            test_targeted_invalidation_clean;
          tc "abort exempts SP007" `Quick
            test_targeted_invalidation_abort_exempt;
          tc "copy state resets between sessions" `Quick
            test_copy_state_resets_between_sessions;
          tc "delta call mispaired" `Quick test_delta_call_mispaired;
          tc "delta invalidation frame before write-back" `Quick
            test_delta_inv_frame_before_writeback;
          tc "staged delta after commit point" `Quick
            test_staged_delta_after_commit;
          tc "SP010 offload without footprint" `Quick
            test_offload_without_footprint;
          tc "SP010 offload into ground" `Quick test_offload_into_ground;
          tc "SP010 offload to dead peer" `Quick test_offload_to_dead_peer;
          tc "SP010 per-session footprint" `Quick
            test_offload_footprint_multi;
        ] );
      ( "race-lint",
        [
          tc "CC101 unordered writes" `Quick test_cc101_unordered_writes;
          tc "CC102 stale copy" `Quick test_cc102_stale_copy;
          tc "CC102 lost write-back" `Quick test_cc102_lost_writeback;
          tc "CC103 use after free" `Quick test_cc103_use_after_free;
        ] );
      ( "footprint",
        [
          tc "recursive type widens" `Quick test_footprint_recursive_widens;
          tc "finite graph stays finite" `Quick test_footprint_finite_graph;
          tc "hints bound the walk" `Quick test_footprint_hint_bounds;
          tc "region overlap" `Quick test_regions_overlap;
          tc "interference rules" `Quick test_footprint_interference;
        ] );
      ( "catalogue",
        [ tc "ids are stable" `Quick test_catalogue_covers_emitted_rules ] );
    ]

(* The two-session weave checker, exercised for real.

   The acceptance bar for concurrent admission: 500 seeded two-session
   weaves — half disjoint (genuinely interleaved), half conflicting
   (admission must serialize), sweeping both admission policies, with
   message faults on the odd seeds — and every run must satisfy the
   per-side sequential oracle, Race_lint, the multiplexed protocol
   linter, and commit with no lost update. The deterministic-generation
   and mutation tests pin the harness itself. *)

open Srpc_core
open Srpc_check

let test_pair_deterministic () =
  for seed = 0 to 19 do
    let a = Gen.pair ~seed ~depth:8 ~fault:None in
    let b = Gen.pair ~seed ~depth:8 ~fault:None in
    if a <> b then Alcotest.failf "seed %d: pair generation not deterministic" seed
  done

let test_pair_shares_shape () =
  for seed = 0 to 49 do
    let sa, sb = Gen.pair ~seed ~depth:8 ~fault:None in
    if
      sa.Script.workers <> sb.Script.workers
      || sa.Script.arches <> sb.Script.arches
      || sa.Script.strategy <> sb.Script.strategy
    then Alcotest.failf "seed %d: pair does not share its cluster shape" seed;
    if not (Array.mem sa.Script.strategy Gen.concurrent_strategies) then
      Alcotest.failf "seed %d: strategy %d illegal in concurrent mode" seed
        sa.Script.strategy
  done

let test_restricted_ops () =
  (* the concurrent-mode mix must never emit session, crash or callback
     ops — the harness owns session boundaries *)
  for seed = 0 to 49 do
    let sa, sb = Gen.pair ~seed ~depth:12 ~fault:None in
    List.iter
      (fun (op : Script.op) ->
        match op with
        | Script.New_session | Script.Crash _ | Script.Callback _ ->
          Alcotest.failf "seed %d: restricted mix emitted %a" seed Script.pp_op
            op
        | _ -> ())
      (sa.Script.ops @ sb.Script.ops)
  done

let test_weave_sweep () =
  (* the 500-seed acceptance sweep: faults on odd seeds, disjoint and
     conflicting variants, both policies *)
  let report = Weave.check ~seeds:500 ~depth:8 ~faults:0.02 () in
  if report.Weave.failures <> [] then
    Alcotest.failf "weave sweep failed:@.%a"
      (Format.pp_print_list Weave.pp_failure)
      report.Weave.failures;
  if report.Weave.fault_runs = 0 then
    Alcotest.fail "sweep never installed a fault plan";
  if report.Weave.serialized_runs = 0 then
    Alcotest.fail "sweep never exercised a conflicting pair"

let test_conflicting_serializes () =
  (* a conflicting pair under the queue policy really goes through the
     queue: the stats counters prove a session waited *)
  let sa, sb = Gen.pair ~seed:7 ~depth:6 ~fault:None in
  (match Weave.run_pair ~policy:Strategy.Queue_conflicts ~variant:Weave.Conflicting sa sb with
  | Some d -> Alcotest.failf "conflicting queue weave failed: %s" d
  | None -> ());
  match
    Weave.run_pair ~policy:Strategy.Abort_retry ~variant:Weave.Conflicting sa sb
  with
  | Some d -> Alcotest.failf "conflicting abort-retry weave failed: %s" d
  | None -> ()

let test_crash_mid_weave () =
  (* the shared worker crashes in the middle of side B's session and is
     revived before B's next call to it. B must ride out the outage and
     commit (not merely abort acceptably); A stays ground-local and
     commits untouched; the combined trace still passes both linters
     with no lost update. The contrast run drops the revive: B's next
     call then hits the dead worker and B aborts — but A still commits
     and the abort is clean. *)
  let fault = Some { Script.fseed = 11; drop = 0.0; dup = 0.0 } in
  let mk ops =
    { Script.workers = 1; arches = [ 0 ]; strategy = 0; fault; ops }
  in
  let sa =
    mk
      [
        Script.Build_list [ 10; 20; 30 ];
        Script.Local_update { obj = 0; idx = 0; delta = 1 };
        Script.Local_update { obj = 0; idx = 2; delta = -4 };
      ]
  in
  let sb_ops ~revived =
    [
      Script.Build_list [ 1; 2; 3 ];
      Script.Sum { worker = 0; obj = 0 };
      Script.Crash { worker = 0 };
    ]
    @ (if revived then [ Script.Revive { worker = 0 } ] else [])
    @ [
        Script.Update { worker = 0; obj = 0; idx = 1; delta = 7 };
        Script.Sum { worker = 0; obj = 0 };
      ]
  in
  let run sb =
    Weave.run_pair_full ~policy:Strategy.Queue_conflicts
      ~variant:Weave.Disjoint sa sb
  in
  let o = run (mk (sb_ops ~revived:true)) in
  (match o.Weave.o_failure with
  | Some d -> Alcotest.failf "crash/revive weave failed: %s" d
  | None -> ());
  Alcotest.(check bool) "revived side committed" true o.Weave.o_committed_b;
  Alcotest.(check bool) "local side committed" true o.Weave.o_committed_a;
  let o = run (mk (sb_ops ~revived:false)) in
  (match o.Weave.o_failure with
  | Some d -> Alcotest.failf "crash-without-revive weave failed: %s" d
  | None -> ());
  Alcotest.(check bool) "unrevived side aborted" true
    (o.Weave.o_aborted_b <> None);
  Alcotest.(check bool) "local side still committed" true o.Weave.o_committed_a

let test_mutation_chaos_admission () =
  (* bypassing admission on a conflicting pair must be caught: the runs
     are physically disjoint, so the oracle stays quiet — but the
     side-prefix-free footprints collide, and with [chaos_admit_conflicting]
     both sessions open at once. Admission validation at close must then
     fail the loser (the footprints declare writes to the same roots). *)
  let found = ref false in
  Node.chaos_admit_conflicting := true;
  Fun.protect
    ~finally:(fun () -> Node.chaos_admit_conflicting := false)
    (fun () ->
      for seed = 0 to 19 do
        let sa, sb = Gen.pair ~seed ~depth:6 ~fault:None in
        match
          Weave.run_pair ~policy:Strategy.Queue_conflicts
            ~variant:Weave.Conflicting sa sb
        with
        | Some _ -> found := true
        | None -> ()
      done);
  if not !found then
    Alcotest.fail
      "chaos-admitted conflicting weaves were never caught by validation"

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "weave"
    [
      ( "generator",
        [
          tc "pair generation is deterministic" `Quick test_pair_deterministic;
          tc "pair shares cluster shape" `Quick test_pair_shares_shape;
          tc "restricted op mix" `Quick test_restricted_ops;
        ] );
      ( "weave",
        [
          tc "500-seed sweep is clean" `Slow test_weave_sweep;
          tc "conflicting pairs serialize" `Quick test_conflicting_serializes;
          tc "crash/revive mid-weave" `Quick test_crash_mid_weave;
        ] );
      ( "mutation",
        [
          tc "bypassed admission is caught" `Quick test_mutation_chaos_admission;
        ] );
    ]

(* Deterministic wire-decode fuzzing.

   The decoders sit on the trust boundary: every byte that crosses the
   simulated network goes through them, and a fault plan can hand them
   truncated or corrupted frames. Whatever arrives, they must either
   return a value or raise one of the protocol's typed decode errors —
   [Srpc_xdr.Xdr.Decode_error] or [Srpc_types.Registry.Unknown_type] —
   never an assert failure, an [Invalid_argument] from a blind
   [String.sub], or a loop.

   The corpus covers every request and response variant, both bare and
   retry-enveloped, then attacks each encoding three ways: truncation at
   every prefix length, a single bit flip at every position, and seeded
   multi-byte corruption (Srpc_check.Rng, so the byte stream is identical
   on every compiler). *)

open Srpc_types
open Srpc_core
module Rng = Srpc_check.Rng

let reg = Registry.create ()

let () =
  Registry.register reg "fznode"
    (Type_desc.Struct
       [ ("next", Type_desc.ptr "fznode"); ("data", Type_desc.i64) ])

let sid site = Srpc_memory.Space_id.make ~site ~proc:0
let lp addr = Long_pointer.make ~origin:(sid 1) ~addr ~ty:"fznode"
let item addr data = { Wire.lp = lp addr; data }

(* A valid traversal plan over the fuzz registry's one type. *)
let fzplan =
  {
    Offload.root_ty = "fznode";
    hops = [ "next" ];
    value_field = "data";
    op = Offload.Op_update { idx = 3; delta = -2 };
    hop_bound = 64;
  }

let wvals : Wire.wvalue list =
  [
    Wire.WUnit;
    Wire.WBool true;
    Wire.WInt 0x1122334455667788L;
    Wire.WFloat 3.25;
    Wire.WStr "hello";
    Wire.WPtr None;
    Wire.WPtr (Some (lp 4096));
    Wire.WFun { Value.home = sid 2; name = "visit" };
  ]

let requests : Wire.request list =
  [
    Wire.Call
      {
        session = 7;
        proc = "walk";
        args = wvals;
        writebacks = [ item 4096 "\x00\x01\x02\x03\x04\x05\x06\x07" ];
        eager = [ item 8192 "\xff\xfe\xfd\xfc" ];
      };
    Wire.Fetch { session = 7; wanted = [ lp 4096; lp 8192 ] };
    Wire.Write_back { session = 7; items = [ item 4096 "payload" ] };
    Wire.Alloc_batch { session = 7; reqs = [ (1, "fznode"); (2, "fznode") ] };
    Wire.Free_batch { session = 7; lps = [ lp 4096 ] };
    Wire.Invalidate { session = 7 };
    Wire.Abort { session = 7 };
    Wire.Wb_stage { session = 7; items = [ item 4096 "staged" ] };
    Wire.Wb_commit { session = 7 };
    Wire.Wb_delta
      {
        session = 7;
        full = [ item 4096 "whole payload" ];
        deltas =
          [
            {
              Wire.dlp = lp 8192;
              base_len = 32;
              ranges =
                [
                  { Wire.off = 0; bytes = "\x01\x02" };
                  { Wire.off = 8; bytes = "\x03\x04\x05" };
                  { Wire.off = 24; bytes = "\xff" };
                ];
            };
          ];
        frees = [ lp 12288 ];
        invalidate = true;
      };
    Wire.Wb_stage_delta
      {
        session = 7;
        deltas =
          [ { Wire.dlp = lp 4096; base_len = 16;
              ranges = [ { Wire.off = 4; bytes = "abcd" } ] } ];
      };
    Wire.Call_d
      {
        session = 7;
        proc = "walk";
        args = wvals;
        writebacks = [ item 4096 "\x00\x01\x02\x03\x04\x05\x06\x07" ];
        wb_deltas =
          [ { Wire.dlp = lp 8192; base_len = 8;
              ranges = [ { Wire.off = 0; bytes = "\x2a" } ] } ];
        eager = [ item 8192 "\xff\xfe\xfd\xfc" ];
        frees = [ lp 12288 ];
      };
    Wire.Offload_call
      {
        session = 7;
        root = lp 4096;
        plan = fzplan;
        writebacks = [ item 8192 "stale" ];
      };
  ]

let responses : Wire.response list =
  [
    Wire.Return
      {
        results = wvals;
        writebacks = [ item 4096 "back" ];
        eager = [ item 8192 "more" ];
      };
    Wire.Fetched { items = [ item 4096 "\x00\x00\x00\x2a" ] };
    Wire.Allocated { addrs = [ (1, 4096); (2, 8192) ] };
    Wire.Ack;
    Wire.Error "remote exception text";
    Wire.Return_d
      {
        results = wvals;
        writebacks = [ item 4096 "back" ];
        wb_deltas =
          [ { Wire.dlp = lp 8192; base_len = 24;
              ranges =
                [ { Wire.off = 0; bytes = "xy" };
                  { Wire.off = 16; bytes = "zw" } ] } ];
        eager = [ item 8192 "more" ];
        frees = [ lp 12288 ];
      };
    Wire.Offload_return
      {
        results = [ 123; -4; 0 ];
        writebacks = [ item 4096 "refreshed" ];
        wset = [ lp 4096; lp 8192 ];
      };
  ]

(* (label, encoded frame, decoder) — decoders are closed over [reg] and
   thunked so every attack below treats them uniformly. *)
let corpus : (string * string * (string -> unit)) list =
  let dec_req s = ignore (Wire.decode_request ~reg s) in
  let dec_framed s = ignore (Wire.decode_framed ~reg s) in
  let dec_resp s = ignore (Wire.decode_response ~reg s) in
  List.concat_map
    (fun r ->
      [
        ("request", Wire.encode_request ~reg r, dec_req);
        ("framed", Wire.encode_framed ~reg ~seq:42 r, dec_framed);
      ])
    requests
  @ List.map (fun r -> ("response", Wire.encode_response ~reg r, dec_resp)) responses

let survives decode s =
  match decode s with
  | () -> true
  | exception Srpc_xdr.Xdr.Decode_error _ -> true
  | exception Registry.Unknown_type _ -> true
  | exception e ->
      Printf.eprintf "untyped escape: %s\n%!" (Printexc.to_string e);
      false

let flip_bit s pos =
  let b = Bytes.of_string s in
  Bytes.set b (pos / 8)
    (Char.chr (Char.code (Bytes.get b (pos / 8)) lxor (1 lsl (pos mod 8))));
  Bytes.to_string b

let test_truncations () =
  List.iter
    (fun (label, s, decode) ->
      for len = 0 to String.length s - 1 do
        if not (survives decode (String.sub s 0 len)) then
          Alcotest.failf "%s: truncation to %d bytes escaped the typed errors"
            label len
      done)
    corpus

let test_bit_flips () =
  List.iter
    (fun (label, s, decode) ->
      for pos = 0 to (8 * String.length s) - 1 do
        if not (survives decode (flip_bit s pos)) then
          Alcotest.failf "%s: bit flip at %d escaped the typed errors" label pos
      done)
    corpus

let test_random_corruption () =
  let rng = Rng.create 0xF00D in
  List.iter
    (fun (label, s, decode) ->
      for round = 1 to 200 do
        let b = Bytes.of_string s in
        let hits = Rng.range rng 1 8 in
        for _ = 1 to hits do
          Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (Rng.int rng 256))
        done;
        (* sometimes also chop the tail, compounding the corruption *)
        let s' =
          let s' = Bytes.to_string b in
          if Rng.bool rng then String.sub s' 0 (Rng.int rng (String.length s'))
          else s'
        in
        if not (survives decode s') then
          Alcotest.failf "%s: random corruption (round %d) escaped the typed errors"
            label round
      done)
    corpus

let test_garbage_frames () =
  let rng = Rng.create 0xBEEF in
  for _ = 1 to 500 do
    let len = Rng.int rng 64 in
    let b = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    let s = Bytes.to_string b in
    List.iter
      (fun (label, _, decode) ->
        if not (survives decode s) then
          Alcotest.failf "%s: garbage frame escaped the typed errors" label)
      corpus
  done

(* Delta frames carry byte ranges the receiver patches straight into a
   base image, so the decoder must reject any geometry that a blit
   would run off with — before a single byte is applied. The encoder is
   deliberately blind (it writes whatever the caller built), which lets
   these tests ship each malformed geometry through a real encode. *)
let test_malformed_delta_ranges () =
  let delta ~base_len ranges =
    { Wire.dlp = lp 8192; base_len;
      ranges = List.map (fun (off, bytes) -> { Wire.off; bytes }) ranges }
  in
  let cases =
    [
      ("out of bounds", delta ~base_len:8 [ (4, "abcdef") ]);
      ("range past the end", delta ~base_len:8 [ (9, "a") ]);
      ("overlapping", delta ~base_len:16 [ (0, "abcd"); (2, "ef") ]);
      ("unordered", delta ~base_len:16 [ (8, "ab"); (0, "cd") ]);
      ("empty range", delta ~base_len:16 [ (4, "") ]);
      ("negative offset", delta ~base_len:16 [ (-1, "ab") ]);
      ("negative base_len", delta ~base_len:(-4) []);
    ]
  in
  List.iter
    (fun (label, d) ->
      let reqs =
        [
          Wire.Wb_delta
            { session = 1; full = []; deltas = [ d ]; frees = [];
              invalidate = false };
          Wire.Wb_stage_delta { session = 1; deltas = [ d ] };
          Wire.Call_d
            { session = 1; proc = "p"; args = []; writebacks = [];
              wb_deltas = [ d ]; eager = []; frees = [] };
        ]
      in
      List.iter
        (fun r ->
          match Wire.decode_request ~reg (Wire.encode_request ~reg r) with
          | _ -> Alcotest.failf "%s: malformed delta range decoded" label
          | exception Srpc_xdr.Xdr.Decode_error _ -> ())
        reqs;
      let resp =
        Wire.Return_d
          { results = []; writebacks = []; wb_deltas = [ d ]; eager = [];
            frees = [] }
      in
      match Wire.decode_response ~reg (Wire.encode_response ~reg resp) with
      | _ -> Alcotest.failf "%s: malformed delta range decoded (response)" label
      | exception Srpc_xdr.Xdr.Decode_error _ -> ())
    cases

(* Offload plans drive an automatic walk of the home's heap, so the
   decoder validates the plan's whole shape before the handler sees it:
   a hop bound that is not a positive sane budget, a hop listed twice
   (a cyclic declared chain), or any field name that does not exist on
   a struct reachable from the root type must raise a typed decode
   error — never reach the walker. The blind encoder ships each
   malformed plan through a real encode. *)
let test_malformed_plans () =
  let cases =
    [
      ("negative hop bound", { fzplan with Offload.hop_bound = -3 });
      ("zero hop bound", { fzplan with Offload.hop_bound = 0 });
      ("oversized hop bound", { fzplan with Offload.hop_bound = (1 lsl 20) + 1 });
      ("unknown root type", { fzplan with Offload.root_ty = "phantom" });
      ("unknown hop field", { fzplan with Offload.hops = [ "prev" ] });
      ("unknown value field", { fzplan with Offload.value_field = "weight" });
      (* [data] exists but is not a pointer field, so it cannot hop *)
      ("value field as hop", { fzplan with Offload.hops = [ "data" ] });
      (* [next] exists but is not a primitive field, so it cannot be read *)
      ("hop field as value", { fzplan with Offload.value_field = "next" });
      ("cyclic plan", { fzplan with Offload.hops = [ "next"; "next" ] });
    ]
  in
  List.iter
    (fun (label, plan) ->
      let r =
        Wire.Offload_call { session = 1; root = lp 4096; plan; writebacks = [] }
      in
      (match Wire.decode_request ~reg (Wire.encode_request ~reg r) with
      | _ -> Alcotest.failf "%s: malformed plan decoded" label
      | exception Srpc_xdr.Xdr.Decode_error _ -> ());
      (* the retry envelope goes through the same validation *)
      match Wire.decode_framed ~reg (Wire.encode_framed ~reg ~seq:9 r) with
      | _ -> Alcotest.failf "%s: malformed plan decoded (framed)" label
      | exception Srpc_xdr.Xdr.Decode_error _ -> ())
    cases

let test_roundtrip_sanity () =
  (* the corpus itself must decode: a fuzzer over frames that were never
     valid proves nothing *)
  List.iter
    (fun r ->
      let r' = Wire.decode_request ~reg (Wire.encode_request ~reg r) in
      Alcotest.(check bool) "request roundtrip" true (r = r');
      let seq, r'' = Wire.decode_framed ~reg (Wire.encode_framed ~reg ~seq:42 r) in
      Alcotest.(check bool) "framed roundtrip" true (seq = Some 42 && r = r''))
    requests;
  List.iter
    (fun r ->
      let r' = Wire.decode_response ~reg (Wire.encode_response ~reg r) in
      Alcotest.(check bool) "response roundtrip" true (r = r'))
    responses

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "wire-fuzz"
    [
      ( "decode",
        [
          tc "corpus roundtrips" `Quick test_roundtrip_sanity;
          tc "malformed delta ranges are rejected" `Quick
            test_malformed_delta_ranges;
          tc "malformed offload plans are rejected" `Quick
            test_malformed_plans;
          tc "every truncation is typed" `Quick test_truncations;
          tc "every bit flip is typed" `Quick test_bit_flips;
          tc "seeded corruption is typed" `Quick test_random_corruption;
          tc "pure garbage is typed" `Quick test_garbage_frames;
        ] );
    ]

(** Check scripts: the programs srpc-check generates, runs and shrinks.

    A script is a *surface* program: any combination of constructors is
    a valid script because every reference in it is resolved modulo the
    live state (worker indices modulo the worker count, object indices
    modulo the live-object count, sizes clamped). That makes shrinking
    trivial — dropping any subsequence of ops still yields a runnable
    script.

    {!resolve} lowers a script to a {!plan} of resolved ops — the single
    program text both the pure reference model ({!Model}) and the real
    cluster interpreter ({!Interp}) execute, so the two can never
    diverge on *what* the script means, only on what the runtime
    computes.

    Resolution also enforces the oracle-soundness rules of the paper's
    coherency protocol, so every generated behavior is one the protocol
    actually defines:

    - A ground-space write to its own heap is invisible to workers that
      cached the datum earlier in the session (present clean cache
      entries are authoritative; nothing re-ships them), so local
      mutations ([Local_update], [Append]) resolve to skips when the
      object was already shipped remotely this session.
    - [extended_free] followed by reallocation inside one session would
      let a recycled address alias a stale cache entry, so frees are
      deferred to the next session boundary (the op drops the object
      from the live set immediately; the release runs just before the
      close).
    - A structure extended with worker-homed cells holds swizzled
      cache-slot addresses in ground originals; those slots die with the
      session's invalidation multicast, so "mixed" objects are verified
      inside their final session and dropped at every boundary.
    - [Crash] and [Revive] resolve to skips unless a fault schedule is
      present (the transport refuses {!Srpc_simnet.Transport.crash} and
      [revive] without a plan). *)

(** An optional fault schedule layered on {!Srpc_simnet.Fault_plan}. *)
type fault = { fseed : int; drop : float; dup : float }

type op =
  | Build_list of int list  (** build a list at ground with these values *)
  | Build_tree of int  (** complete tree of this depth (clamped 1–6) *)
  | Build_graph of { nodes : int; gseed : int }
  | Sum of { worker : int; obj : int }  (** remote traversal, read-only *)
  | Visit of { worker : int; obj : int; limit : int }
      (** bounded preorder visit (trees; others fall back to [Sum]) *)
  | Update of { worker : int; obj : int; idx : int; delta : int }
      (** remote in-place point mutation *)
  | Map of { worker : int; obj : int; mul : int; add : int }
      (** remote in-place rewrite of every value *)
  | Nested of { w1 : int; w2 : int; obj : int }
      (** ground calls [w1], which relays the traversal to [w2] *)
  | Callback of { worker : int; obj : int }
      (** worker traverses, then calls back into ground mid-procedure *)
  | Local_update of { obj : int; idx : int; delta : int }
      (** ground mutates its own original directly *)
  | Append of { obj : int; home : int; values : int list }
      (** extend a list via [extended_malloc]; [home] 0 is ground,
          [k > 0] is worker [k-1] (remote-homed cells) *)
  | Free of { obj : int }  (** release via [extended_free] (deferred) *)
  | New_session  (** close the current session and open the next *)
  | Crash of { worker : int }  (** kill a worker endpoint (fault runs) *)
  | Revive of { worker : int }
      (** bring a crashed worker endpoint back (fault runs); a no-op
          when the worker is alive *)
  | Build_wide
      (** build one tile-backed wide struct ([wide_edge]² elements, one
          datum larger than a page) at ground *)
  | Poke of { worker : int; obj : int; idx : int; delta : int }
      (** write one small field of a large struct: targets the most
          recently built wide object (falls back to [Update] semantics
          on [obj] when none is live) — the delta write-back probe *)
  | Offload of { worker : int; obj : int; limit : int }
      (** worker submits a traversal plan to the object's home instead
          of walking the structure through its cache: sum for
          lists/graphs, bounded visit for trees/wide structs *)
  | Offload_update of { worker : int; obj : int; idx : int; delta : int }
      (** offloaded point mutation ([Op_update] on the k-th value slot);
          graphs fall back to an offloaded sum, wide structs to an
          offloaded visit *)

type t = {
  workers : int;  (** clamped to 1–3 *)
  arches : int list;  (** per-worker architecture index (mod 4) *)
  strategy : int;  (** transfer-strategy index (mod 13) *)
  fault : fault option;
  ops : op list;
}

(** Elements per wide-struct edge (32 — a 32×32 grid of 8-byte
    elements, an 8 KiB datum). *)
val wide_edge : int

(** {1 Resolved plans} *)

type shape =
  | SList of int list
  | STree of int  (** depth *)
  | SGraph of { nodes : int; gseed : int }
  | SWide  (** one [wide_edge]×[wide_edge] tile-backed matrix *)

type rop =
  | RBuild of { id : int; shape : shape }
  | RSum of { worker : int; id : int }
  | RVisit of { worker : int; id : int; limit : int }
  | RUpdate of { worker : int; id : int; idx : int; delta : int }
  | RMapList of { worker : int; id : int; mul : int; add : int }
  | RMapTree of { worker : int; id : int; limit : int }
  | RNested of { w1 : int; w2 : int; id : int }
  | RCallback of { worker : int; id : int }
  | RLocalUpdate of { id : int; idx : int; delta : int }
  | RAppend of { id : int; home : int; values : int list }
  | RFree of { id : int }
  | RSession
  | RCrash of { worker : int }
  | RRevive of { worker : int }
  | RPoke of { worker : int; id : int; idx : int; delta : int }
      (** remote write of element [idx] of a wide struct *)
  | RWideRow of { worker : int; id : int; row : int }
      (** remote sum of one element row of a wide struct *)
  | ROffSum of { worker : int; id : int; limit : int }
      (** worker offloads an [Op_sum] traversal plan (hop bound [limit])
          to the object's home *)
  | ROffVisit of { worker : int; id : int; limit : int }
      (** worker offloads an [Op_visit] plan (hop bound [limit]) *)
  | ROffUpdate of { worker : int; id : int; idx : int; delta : int }
      (** worker offloads an [Op_update] plan hitting value slot [idx] *)

type kind = KList | KTree | KGraph | KWide

type plan = {
  p_workers : int;
  p_arches : int list;  (** length [p_workers], each in 0–3 *)
  p_strategy : int;  (** in 0–12 *)
  p_fault : fault option;
  p_rops : rop list;
  p_kinds : (int * kind) list;  (** object id -> kind, build order *)
  p_verify_all : int list;
      (** objects live at the end — read at ground inside the final
          session (phase A) *)
  p_verify_local : int list;
      (** the non-mixed subset — read again after the final close
          (phase B), when cache slots are gone *)
}

val resolve : t -> plan

(** {1 Codec} *)

(** Replay files are s-expressions: [(srpc-check-repro (version 1)
    (seed N) (workers W) (arches (..)) (strategy S) (fault none |
    ((seed N) (drop F) (dup F))) (ops (..)))]. [seed] records the
    generator seed the script came from (informational). *)

val to_sexp : seed:int -> t -> Sexp.t

(** @raise Sexp.Parse_error on a malformed or wrong-version file.
    Returns the recorded generator seed and the script. *)
val of_sexp : Sexp.t -> int * t

val pp : Format.formatter -> t -> unit
val pp_op : Format.formatter -> op -> unit

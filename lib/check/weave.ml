(* The two-session weave checker: two independently generated session
   scripts run concurrently on ONE cluster — two ground nodes (sites 1
   and 2) sharing the workers (sites 3..) — interleaved one resolved op
   at a time through the admission controller. Each side must still
   satisfy the single-session sequential oracle (Model.run): admission
   only ever admits disjoint footprints, so weaving cannot change what
   either session observes. The combined trace additionally passes
   Race_lint and the multiplexed protocol linter.

   Two footprint variants are swept. [Disjoint] gives each side
   synthetic side-prefixed datum roots, so both sessions are admitted
   immediately and genuinely interleave. [Conflicting] gives both sides
   the same unprefixed roots: admission must serialize them (FIFO queue
   or abort-retry backoff, per policy) even though the sessions are
   physically disjoint — exercising the queue/drain/backoff machinery
   while the oracle stays valid. *)

open Srpc_core
open Srpc_simnet
open Srpc_analysis

type variant = Disjoint | Conflicting

let pp_variant ppf = function
  | Disjoint -> Format.pp_print_string ppf "disjoint"
  | Conflicting -> Format.pp_print_string ppf "conflicting"

type failure = {
  fseed : int;
  fvariant : variant;
  fpolicy : Strategy.admission_policy;
  fdesc : string;
  fscripts : Script.t * Script.t;  (** shrunk repro pair *)
}

type report = {
  runs : int;
  fault_runs : int;
  serialized_runs : int;  (** conflicting-variant runs (admission serialized) *)
  failures : failure list;
}

(* Static footprint of one side: every object the plan ever builds,
   conservatively mode-Write over the whole subgraph. Object ids are
   per-plan (both sides number from 0), so unprefixed roots collide
   between the sides — exactly what the conflicting variant wants —
   while the side prefix makes them provably disjoint. *)
let side_footprint ~variant ~side (plan : Script.plan) =
  let prefix =
    match (variant, side) with
    | Conflicting, _ -> ""
    | Disjoint, `A -> "a:"
    | Disjoint, `B -> "b:"
  in
  let ids =
    List.sort_uniq compare (List.map fst plan.Script.p_kinds)
  in
  let regions =
    List.map
      (fun id ->
        {
          Footprint.root = Printf.sprintf "%sobj#%d" prefix id;
          path = "*";
          mode = Footprint.Write;
        })
      ids
  in
  let tag = match side with `A -> "a" | `B -> "b" in
  Footprint.session ~label:(Printf.sprintf "weave[%s]" tag) regions

type state = Running | Parked | Backoff | Finished

type side = {
  s_tag : [ `A | `B ];
  s_ground : Node.t;
  s_env : Interp.env;
  s_plan : Script.plan;
  s_model : Model.result;
  s_fp : Footprint.t;
  s_id : int;
  mutable s_state : state;
  mutable s_obs : int list list;  (* reversed *)
  mutable s_remaining : Script.rop list;
  mutable s_aborted : string option;
  mutable s_committed : bool;
  mutable s_attempt : int;
}

type outcome = {
  o_failure : string option;
  o_committed_a : bool;
  o_committed_b : bool;
  o_aborted_a : string option;
  o_aborted_b : string option;
}

(* One weave execution. Returns the failure description, if any, plus
   each side's fate (the crash/revive tests need to tell "rode out the
   outage and committed" apart from "aborted acceptably"). *)
let run_pair_full ?(policy = Strategy.Queue_conflicts) ?(variant = Disjoint)
    (sa : Script.t) (sb : Script.t) =
  let pa = Script.resolve sa and pb = Script.resolve sb in
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  Session.set_concurrent (Cluster.session cluster) true;
  let strategy = Interp.strategy_table.(pa.Script.p_strategy) in
  let ga = Cluster.add_node cluster ~site:1 ~strategy () in
  let gb = Cluster.add_node cluster ~site:2 ~strategy () in
  let workers =
    List.mapi
      (fun i a ->
        Cluster.add_node cluster ~site:(i + 3)
          ~arch:Interp.arch_table.(a) ~strategy ())
      pa.Script.p_arches
  in
  Srpc_workloads.Linked_list.register_types cluster;
  Srpc_workloads.Tree.register_types cluster;
  Srpc_workloads.Graph.register_types cluster;
  Srpc_workloads.Matrix.register_types cluster;
  (* Both grounds need the worker procs; the callback bonus procs the
     second call re-captures are unreachable here (restricted op mix). *)
  Interp.register_procs ~ground:ga workers;
  Interp.register_procs ~ground:gb workers;
  let trace = Trace.create () in
  Transport.set_trace (Cluster.transport cluster) (Some trace);
  (match sa.Script.fault with
  | None -> ()
  | Some f ->
    let fp = Fault_plan.create ~seed:f.Script.fseed () in
    Fault_plan.set_global fp
      (Fault_plan.profile ~drop:f.Script.drop ~duplicate:f.Script.dup ());
    Cluster.install_faults cluster fp);
  let adm = Admission.create ~policy (Cluster.stats cluster) in
  let mk_side tag ground plan =
    {
      s_tag = tag;
      s_ground = ground;
      s_env = Interp.make_env ~cluster ~ground ~workers;
      s_plan = plan;
      s_model = Model.run plan;
      s_fp = side_footprint ~variant ~side:tag plan;
      s_id = Node.reserve_session ground;
      s_state = Parked;
      s_obs = [];
      s_remaining = plan.Script.p_rops;
      s_aborted = None;
      s_committed = false;
      s_attempt = 0;
    }
  in
  let side_a = mk_side `A ga pa in
  let side_b = mk_side `B gb pb in
  let by_id sid =
    if side_a.s_id = sid then side_a
    else if side_b.s_id = sid then side_b
    else invalid_arg "Weave: drain admitted an unknown session"
  in
  let start_waiters waiters =
    List.iter
      (fun (sid, _fp) ->
        let s = by_id sid in
        Node.start_admitted s.s_ground ~id:sid;
        s.s_state <- Running)
      waiters
  in
  let request s =
    match
      Node.request_admission s.s_ground adm ~id:s.s_id ~footprint:s.s_fp
    with
    | Admission.Admitted -> s.s_state <- Running
    | Admission.Queued -> s.s_state <- Parked
    | Admission.Denied ->
      s.s_attempt <- s.s_attempt + 1;
      s.s_state <- Backoff
    | Admission.Overloaded _ ->
      (* unreachable here: the weave controller has no queue cap, retry
         budget or health detector installed *)
      invalid_arg "Weave: unexpected admission shed"
  in
  let abort_side s reason =
    s.s_aborted <- Some reason;
    s.s_state <- Finished;
    start_waiters (Admission.close ~committed:false adm ~session:s.s_id)
  in
  let close_side s =
    match Node.end_session_validated s.s_ground adm with
    | `Committed, waiters ->
      s.s_committed <- true;
      s.s_state <- Finished;
      start_waiters waiters
    | `Validation_failed, waiters ->
      s.s_aborted <- Some "admission validation failed";
      s.s_state <- Finished;
      start_waiters waiters
  in
  let step s =
    match s.s_state with
    | Finished | Parked -> ()
    | Backoff ->
      Clock.advance (Cluster.clock cluster)
        (Admission.backoff_delay ~session:s.s_id ~attempt:s.s_attempt
           ~base:1e-3);
      request s
    | Running -> (
      match s.s_remaining with
      | [] -> (
        try close_side s
        with Session.Session_aborted { reason; _ } -> abort_side s reason)
      | rop :: rest -> (
        s.s_remaining <- rest;
        try s.s_obs <- Interp.exec_rop s.s_env rop :: s.s_obs
        with Session.Session_aborted { reason; _ } -> abort_side s reason))
  in
  request side_a;
  request side_b;
  let fuel =
    ref
      (4 * (List.length pa.Script.p_rops + List.length pb.Script.p_rops + 32))
  in
  let stuck = ref false in
  while
    (side_a.s_state <> Finished || side_b.s_state <> Finished)
    && not !stuck
  do
    decr fuel;
    if !fuel < 0 then stuck := true
    else begin
      step side_a;
      step side_b
    end
  done;
  if Cluster.fault_plan cluster <> None then Cluster.clear_faults cluster;
  (* Phase B: after a side committed, its ground-pure objects must read
     back exactly the model's final state. *)
  let final_b s =
    if not s.s_committed then []
    else
      List.map
        (fun id ->
          let kind, p = Hashtbl.find s.s_env.Interp.e_objs id in
          (id, Interp.final_read s.s_ground kind !p))
        s.s_plan.Script.p_verify_local
  in
  let fb_a = final_b side_a and fb_b = final_b side_b in
  let faulted = sa.Script.fault <> None in
  let errors ds = List.filter Diagnostic.is_error ds in
  let pp_diags ds =
    String.concat "; "
      (List.map (fun d -> Format.asprintf "%a" Diagnostic.pp d) ds)
  in
  let judge_side s fb =
    let tag = match s.s_tag with `A -> "A" | `B -> "B" in
    let obs = List.rev s.s_obs in
    let rec prefix i = function
      | [], _ -> None
      | got :: _, [] ->
        Some
          (Printf.sprintf "side %s: op %d observed %s beyond the model" tag i
             (String.concat "," (List.map string_of_int got)))
      | got :: gr, want :: wr ->
        if got <> want then
          Some
            (Printf.sprintf "side %s: op %d observed [%s], model says [%s]"
               tag i
               (String.concat "," (List.map string_of_int got))
               (String.concat "," (List.map string_of_int want)))
        else prefix (i + 1) (gr, wr)
    in
    match prefix 0 (obs, s.s_model.Model.m_obs) with
    | Some e -> Some e
    | None ->
      (* Unexpected aborts are failures; under [chaos_admit_conflicting]
         the "admission validation failed" abort IS the detection the
         mutation test is looking for, so it is reported the same way. *)
      if s.s_aborted <> None && not faulted then
        Some
          (Printf.sprintf "side %s: unexpected abort (%s) with no faults" tag
             (Option.value s.s_aborted ~default:"?"))
      else if s.s_committed then
        if List.length obs <> List.length s.s_model.Model.m_obs then
          Some
            (Printf.sprintf "side %s: committed after %d of %d ops" tag
               (List.length obs)
               (List.length s.s_model.Model.m_obs))
        else
          List.fold_left
            (fun acc (id, got) ->
              match acc with
              | Some _ -> acc
              | None -> (
                match List.assoc_opt id s.s_model.Model.m_final with
                | Some want when want <> got ->
                  Some
                    (Printf.sprintf
                       "side %s: obj %d final [%s], model says [%s] (lost \
                        update)"
                       tag id
                       (String.concat "," (List.map string_of_int got))
                       (String.concat "," (List.map string_of_int want)))
                | _ -> None))
            None fb
      else None
  in
  let failure =
    if !stuck then Some "interleave driver stuck (admission never converged)"
    else
      match errors (Race_lint.check trace) with
      | _ :: _ as ds -> Some ("race: " ^ pp_diags ds)
      | [] -> (
        match judge_side side_a fb_a with
        | Some e -> Some e
        | None -> (
          match judge_side side_b fb_b with
          | Some e -> Some e
          | None -> (
            match errors (Proto_lint.check trace) with
            | _ :: _ as ds -> Some ("protocol: " ^ pp_diags ds)
            | [] -> None)))
  in
  {
    o_failure = failure;
    o_committed_a = side_a.s_committed;
    o_committed_b = side_b.s_committed;
    o_aborted_a = side_a.s_aborted;
    o_aborted_b = side_b.s_aborted;
  }

let run_pair ?policy ?variant sa sb =
  (run_pair_full ?policy ?variant sa sb).o_failure

let variant_for seed = if seed mod 2 = 0 then Disjoint else Conflicting

let policy_for seed =
  if seed / 2 mod 2 = 0 then Strategy.Queue_conflicts else Strategy.Abort_retry

(* Greedy pair shrinker: repeatedly drop single ops (never the leading
   build) from either side while the failure persists. *)
let shrink ~fails (sa, sb) =
  let drop_at ops i = List.filteri (fun j _ -> j <> i) ops in
  let rec pass (sa, sb) =
    let try_side which (sa, sb) =
      let s = match which with `A -> sa | `B -> sb in
      let n = List.length s.Script.ops in
      let rec go i acc =
        if i >= List.length (match which with `A -> fst acc | `B -> snd acc).Script.ops
        then (acc, i > n)  (* n changed along the way; flag any progress *)
        else
          let sa', sb' = acc in
          let s' = match which with `A -> sa' | `B -> sb' in
          if i = 0 then go 1 acc  (* keep the leading build *)
          else
            let cand = { s' with Script.ops = drop_at s'.Script.ops i } in
            let pair' =
              match which with `A -> (cand, sb') | `B -> (sa', cand)
            in
            if fails pair' then go i pair' else go (i + 1) acc
      in
      fst (go 0 (sa, sb))
    in
    let next = try_side `B (try_side `A (sa, sb)) in
    if
      List.length (fst next).Script.ops < List.length sa.Script.ops
      || List.length (snd next).Script.ops < List.length sb.Script.ops
    then pass next
    else next
  in
  pass (sa, sb)

let check ?(progress = fun _ -> ()) ~seeds ~depth ~faults () =
  let failures = ref [] in
  let fault_runs = ref 0 in
  let serialized = ref 0 in
  for seed = 0 to seeds - 1 do
    progress seed;
    let fault = Runner.fault_for ~faults ~seed in
    let variant = variant_for seed in
    let policy = policy_for seed in
    if fault <> None then incr fault_runs;
    if variant = Conflicting then incr serialized;
    let sa, sb = Gen.pair ~seed ~depth ~fault in
    match run_pair ~policy ~variant sa sb with
    | None -> ()
    | Some desc ->
      let fails (sa, sb) = run_pair ~policy ~variant sa sb <> None in
      let sa', sb' = shrink ~fails (sa, sb) in
      let fdesc =
        Option.value (run_pair ~policy ~variant sa' sb') ~default:desc
      in
      failures :=
        { fseed = seed; fvariant = variant; fpolicy = policy; fdesc;
          fscripts = (sa', sb') }
        :: !failures
  done;
  {
    runs = seeds;
    fault_runs = !fault_runs;
    serialized_runs = !serialized;
    failures = List.rev !failures;
  }

let pp_policy ppf = function
  | Strategy.Queue_conflicts -> Format.pp_print_string ppf "queue"
  | Strategy.Abort_retry -> Format.pp_print_string ppf "abort-retry"

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>seed %d (%a, %a): %s@,--- side A ---@,%a@,--- side B ---@,%a@]"
    f.fseed pp_variant f.fvariant pp_policy f.fpolicy f.fdesc Script.pp
    (fst f.fscripts) Script.pp (snd f.fscripts)

type fault = { fseed : int; drop : float; dup : float }

type op =
  | Build_list of int list
  | Build_tree of int
  | Build_graph of { nodes : int; gseed : int }
  | Sum of { worker : int; obj : int }
  | Visit of { worker : int; obj : int; limit : int }
  | Update of { worker : int; obj : int; idx : int; delta : int }
  | Map of { worker : int; obj : int; mul : int; add : int }
  | Nested of { w1 : int; w2 : int; obj : int }
  | Callback of { worker : int; obj : int }
  | Local_update of { obj : int; idx : int; delta : int }
  | Append of { obj : int; home : int; values : int list }
  | Free of { obj : int }
  | New_session
  | Crash of { worker : int }
  | Revive of { worker : int }
  | Build_wide
  | Poke of { worker : int; obj : int; idx : int; delta : int }
  | Offload of { worker : int; obj : int; limit : int }
  | Offload_update of { worker : int; obj : int; idx : int; delta : int }

type t = {
  workers : int;
  arches : int list;
  strategy : int;
  fault : fault option;
  ops : op list;
}

type shape =
  | SList of int list
  | STree of int
  | SGraph of { nodes : int; gseed : int }
  | SWide

type rop =
  | RBuild of { id : int; shape : shape }
  | RSum of { worker : int; id : int }
  | RVisit of { worker : int; id : int; limit : int }
  | RUpdate of { worker : int; id : int; idx : int; delta : int }
  | RMapList of { worker : int; id : int; mul : int; add : int }
  | RMapTree of { worker : int; id : int; limit : int }
  | RNested of { w1 : int; w2 : int; id : int }
  | RCallback of { worker : int; id : int }
  | RLocalUpdate of { id : int; idx : int; delta : int }
  | RAppend of { id : int; home : int; values : int list }
  | RFree of { id : int }
  | RSession
  | RCrash of { worker : int }
  | RRevive of { worker : int }
  | RPoke of { worker : int; id : int; idx : int; delta : int }
  | RWideRow of { worker : int; id : int; row : int }
  | ROffSum of { worker : int; id : int; limit : int }
  | ROffVisit of { worker : int; id : int; limit : int }
  | ROffUpdate of { worker : int; id : int; idx : int; delta : int }

type kind = KList | KTree | KGraph | KWide

(* One wide object is a single tile-backed matrix: wide_edge² 8-byte
   elements — one datum far larger than a page, the delta-coherency
   worst case for full write-backs. *)
let wide_edge = 32

type plan = {
  p_workers : int;
  p_arches : int list;
  p_strategy : int;
  p_fault : fault option;
  p_rops : rop list;
  p_kinds : (int * kind) list;
  p_verify_all : int list;
  p_verify_local : int list;
}

(* --- resolution --- *)

let clamp lo hi v = max lo (min hi v)
let max_list_len = 16
let max_append_len = 8
let max_tree_depth = 6
let max_graph_nodes = 20
let take n xs = List.filteri (fun i _ -> i < n) xs

(* Live-object bookkeeping during resolution. [mixed]: contains
   worker-homed cells, so its ground originals hold cache-slot addresses
   that die at the session close. [touched]: shipped to some worker this
   session, so workers may hold authoritative clean copies that a
   ground-local write would silently diverge from. *)
type ostate = {
  id : int;
  kind : kind;
  mutable len : int;
  mutable mixed : bool;
  mutable touched : bool;
}

let resolve t =
  let workers = clamp 1 3 t.workers in
  let arches =
    let given = List.map (fun a -> abs a mod 4) t.arches in
    take workers (given @ [ 0; 0; 0 ])
  in
  let strategy = abs t.strategy mod 13 in
  let fault =
    Option.map
      (fun f ->
        { f with drop = clamp 0.0 0.05 f.drop; dup = clamp 0.0 0.05 f.dup })
      t.fault
  in
  let live = ref [] (* reverse build order *) in
  let kinds = ref [] in
  let next_id = ref 0 in
  let rops = ref [] in
  let pending_frees = ref [] in
  let emit r = rops := r :: !rops in
  let wrk w = abs w mod workers in
  let pick obj =
    match !live with
    | [] -> None
    | xs ->
      let xs = List.rev xs in
      Some (List.nth xs (abs obj mod List.length xs))
  in
  let add kind len shape =
    let id = !next_id in
    incr next_id;
    live := { id; kind; len; mixed = false; touched = false } :: !live;
    kinds := (id, kind) :: !kinds;
    emit (RBuild { id; shape })
  in
  let drop_obj o = live := List.filter (fun x -> x.id <> o.id) !live in
  (* Session boundary: run the deferred frees, drop mixed objects (their
     cache slots die with the invalidation multicast), forget per-session
     ship state. *)
  let boundary ~final =
    List.iter (fun id -> emit (RFree { id })) (List.rev !pending_frees);
    pending_frees := [];
    if not final then begin
      live := List.filter (fun o -> not o.mixed) !live;
      List.iter (fun o -> o.touched <- false) !live;
      emit RSession
    end
  in
  let apply op =
    match op with
    | Build_list vs -> add KList (List.length (take max_list_len vs)) (SList (take max_list_len vs))
    | Build_tree d ->
      let d = clamp 1 max_tree_depth (abs d) in
      let d = if d = 0 then 1 else d in
      add KTree ((1 lsl d) - 1) (STree d)
    | Build_graph { nodes; gseed } ->
      let nodes = clamp 1 max_graph_nodes (abs nodes) in
      add KGraph nodes (SGraph { nodes; gseed = abs gseed })
    | Sum { worker; obj } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        o.touched <- true;
        emit (RSum { worker = wrk worker; id = o.id }))
    | Visit { worker; obj; limit } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        o.touched <- true;
        let worker = wrk worker in
        (match o.kind with
        | KTree ->
          emit (RVisit { worker; id = o.id; limit = clamp 0 64 (abs limit) })
        | KWide ->
          emit (RWideRow { worker; id = o.id; row = abs limit mod wide_edge })
        | KList | KGraph -> emit (RSum { worker; id = o.id })))
    | Update { worker; obj; idx; delta } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        o.touched <- true;
        let worker = wrk worker in
        if o.kind = KGraph || o.len = 0 then emit (RSum { worker; id = o.id })
        else if o.kind = KWide then
          emit (RPoke { worker; id = o.id; idx = abs idx mod o.len; delta })
        else emit (RUpdate { worker; id = o.id; idx = abs idx mod o.len; delta }))
    | Map { worker; obj; mul; add } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        o.touched <- true;
        let worker = wrk worker in
        match o.kind with
        | KList -> emit (RMapList { worker; id = o.id; mul; add })
        | KTree -> emit (RMapTree { worker; id = o.id; limit = o.len })
        | KGraph | KWide -> emit (RSum { worker; id = o.id }))
    | Nested { w1; w2; obj } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        o.touched <- true;
        let w1 = wrk w1 and w2 = wrk w2 in
        if w1 = w2 then emit (RSum { worker = w1; id = o.id })
        else emit (RNested { w1; w2; id = o.id }))
    | Callback { worker; obj } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        o.touched <- true;
        if o.kind = KWide then emit (RSum { worker = wrk worker; id = o.id })
        else emit (RCallback { worker = wrk worker; id = o.id }))
    | Local_update { obj; idx; delta } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        if (not o.touched) && o.kind <> KGraph && o.len > 0 then
          emit (RLocalUpdate { id = o.id; idx = abs idx mod o.len; delta }))
    | Build_wide -> add KWide (wide_edge * wide_edge) SWide
    | Poke { worker; obj; idx; delta } -> (
      (* the delta-coherency probe: write one small field of the most
         recently built wide struct (falling back to whatever [obj]
         picks when none is live) *)
      let target =
        match List.filter (fun o -> o.kind = KWide) !live with
        | [] -> pick obj
        | w :: _ -> Some w
      in
      match target with
      | None -> ()
      | Some o ->
        o.touched <- true;
        let worker = wrk worker in
        if o.kind = KGraph || o.len = 0 then emit (RSum { worker; id = o.id })
        else if o.kind = KWide then
          emit (RPoke { worker; id = o.id; idx = abs idx mod o.len; delta })
        else emit (RUpdate { worker; id = o.id; idx = abs idx mod o.len; delta }))
    | Append { obj; home; values } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        if (not o.touched) && o.kind = KList then begin
          let values = take max_append_len values in
          let home = abs home mod (workers + 1) in
          if home > 0 then o.mixed <- true;
          o.len <- o.len + List.length values;
          emit (RAppend { id = o.id; home; values })
        end)
    | Free { obj } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        drop_obj o;
        (* Mixed objects cannot be walked after their session (their
           cells live in cache slots); dropping them from the live set is
           the whole release. Ground-pure objects free for real at the
           boundary. *)
        if (not o.mixed) && o.kind <> KGraph && o.kind <> KWide then
          pending_frees := o.id :: !pending_frees)
    | Offload { worker; obj; limit } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        o.touched <- true;
        let worker = wrk worker in
        let limit = clamp 1 64 (abs limit) in
        (match o.kind with
        | KList | KGraph -> emit (ROffSum { worker; id = o.id; limit })
        | KTree | KWide -> emit (ROffVisit { worker; id = o.id; limit })))
    | Offload_update { worker; obj; idx; delta } -> (
      match pick obj with
      | None -> ()
      | Some o ->
        o.touched <- true;
        let worker = wrk worker in
        match o.kind with
        | (KList | KTree) when o.len > 0 ->
          emit (ROffUpdate { worker; id = o.id; idx = abs idx mod o.len; delta })
        | KList | KTree | KGraph ->
          emit (ROffSum { worker; id = o.id; limit = max 1 o.len })
        | KWide -> emit (ROffVisit { worker; id = o.id; limit = 4 }))
    | New_session -> boundary ~final:false
    | Crash { worker } ->
      if fault <> None then emit (RCrash { worker = wrk worker })
    | Revive { worker } ->
      if fault <> None then emit (RRevive { worker = wrk worker })
  in
  List.iter apply t.ops;
  boundary ~final:true;
  let final_live = List.rev !live in
  {
    p_workers = workers;
    p_arches = arches;
    p_strategy = strategy;
    p_fault = fault;
    p_rops = List.rev !rops;
    p_kinds = List.rev !kinds;
    p_verify_all = List.map (fun o -> o.id) final_live;
    p_verify_local =
      List.filter_map (fun o -> if o.mixed then None else Some o.id) final_live;
  }

(* --- codec --- *)

let ints_to_sexp vs = Sexp.List (List.map Sexp.int vs)
let ints_of_sexp = function
  | Sexp.List items -> List.map Sexp.to_int items
  | Sexp.Atom _ -> raise (Sexp.Parse_error "expected a list of integers")

let op_to_sexp op =
  let open Sexp in
  let l name args = List (Atom name :: args) in
  match op with
  | Build_list vs -> l "build-list" [ ints_to_sexp vs ]
  | Build_tree d -> l "build-tree" [ int d ]
  | Build_graph { nodes; gseed } -> l "build-graph" [ int nodes; int gseed ]
  | Sum { worker; obj } -> l "sum" [ int worker; int obj ]
  | Visit { worker; obj; limit } -> l "visit" [ int worker; int obj; int limit ]
  | Update { worker; obj; idx; delta } ->
    l "update" [ int worker; int obj; int idx; int delta ]
  | Map { worker; obj; mul; add } -> l "map" [ int worker; int obj; int mul; int add ]
  | Nested { w1; w2; obj } -> l "nested" [ int w1; int w2; int obj ]
  | Callback { worker; obj } -> l "callback" [ int worker; int obj ]
  | Local_update { obj; idx; delta } -> l "local-update" [ int obj; int idx; int delta ]
  | Append { obj; home; values } -> l "append" [ int obj; int home; ints_to_sexp values ]
  | Free { obj } -> l "free" [ int obj ]
  | New_session -> Atom "new-session"
  | Crash { worker } -> l "crash" [ int worker ]
  | Revive { worker } -> l "revive" [ int worker ]
  | Build_wide -> Atom "build-wide"
  | Poke { worker; obj; idx; delta } ->
    l "poke" [ int worker; int obj; int idx; int delta ]
  | Offload { worker; obj; limit } -> l "offload" [ int worker; int obj; int limit ]
  | Offload_update { worker; obj; idx; delta } ->
    l "offload-update" [ int worker; int obj; int idx; int delta ]

let op_of_sexp s =
  let open Sexp in
  let bad () = raise (Parse_error ("unrecognized op: " ^ Sexp.to_string s)) in
  match s with
  | Atom "new-session" -> New_session
  | Atom "build-wide" -> Build_wide
  | List (Atom name :: args) -> (
    match (name, args) with
    | "build-list", [ vs ] -> Build_list (ints_of_sexp vs)
    | "build-tree", [ d ] -> Build_tree (to_int d)
    | "build-graph", [ n; g ] -> Build_graph { nodes = to_int n; gseed = to_int g }
    | "sum", [ w; o ] -> Sum { worker = to_int w; obj = to_int o }
    | "visit", [ w; o; lim ] ->
      Visit { worker = to_int w; obj = to_int o; limit = to_int lim }
    | "update", [ w; o; i; d ] ->
      Update { worker = to_int w; obj = to_int o; idx = to_int i; delta = to_int d }
    | "map", [ w; o; m; a ] ->
      Map { worker = to_int w; obj = to_int o; mul = to_int m; add = to_int a }
    | "nested", [ w1; w2; o ] ->
      Nested { w1 = to_int w1; w2 = to_int w2; obj = to_int o }
    | "callback", [ w; o ] -> Callback { worker = to_int w; obj = to_int o }
    | "local-update", [ o; i; d ] ->
      Local_update { obj = to_int o; idx = to_int i; delta = to_int d }
    | "append", [ o; h; vs ] ->
      Append { obj = to_int o; home = to_int h; values = ints_of_sexp vs }
    | "free", [ o ] -> Free { obj = to_int o }
    | "crash", [ w ] -> Crash { worker = to_int w }
    | "revive", [ w ] -> Revive { worker = to_int w }
    | "poke", [ w; o; i; d ] ->
      Poke { worker = to_int w; obj = to_int o; idx = to_int i; delta = to_int d }
    | "offload", [ w; o; lim ] ->
      Offload { worker = to_int w; obj = to_int o; limit = to_int lim }
    | "offload-update", [ w; o; i; d ] ->
      Offload_update
        { worker = to_int w; obj = to_int o; idx = to_int i; delta = to_int d }
    | _ -> bad ())
  | _ -> bad ()

let to_sexp ~seed t =
  let open Sexp in
  let field name v = List [ Atom name; v ] in
  let fault =
    match t.fault with
    | None -> Atom "none"
    | Some f ->
      List
        [
          field "seed" (int f.fseed); field "drop" (float f.drop);
          field "dup" (float f.dup);
        ]
  in
  List
    [
      Atom "srpc-check-repro";
      field "version" (int 1);
      field "seed" (int seed);
      field "workers" (int t.workers);
      field "arches" (ints_to_sexp t.arches);
      field "strategy" (int t.strategy);
      field "fault" fault;
      field "ops" (List (List.map op_to_sexp t.ops));
    ]

let of_sexp s =
  let open Sexp in
  let fail m = raise (Parse_error m) in
  match s with
  | List (Atom "srpc-check-repro" :: fields) ->
    let find name =
      let rec go = function
        | List [ Atom n; v ] :: _ when n = name -> v
        | _ :: rest -> go rest
        | [] -> fail ("missing field " ^ name)
      in
      go fields
    in
    (match to_int (find "version") with
    | 1 -> ()
    | v -> fail (Printf.sprintf "unsupported repro version %d" v));
    let fault =
      match find "fault" with
      | Atom "none" -> None
      | List fs ->
        let ffind name =
          let rec go = function
            | List [ Atom n; v ] :: _ when n = name -> v
            | _ :: rest -> go rest
            | [] -> fail ("missing fault field " ^ name)
          in
          go fs
        in
        Some
          {
            fseed = to_int (ffind "seed");
            drop = to_float (ffind "drop");
            dup = to_float (ffind "dup");
          }
      | _ -> fail "malformed fault field"
    in
    let ops =
      match find "ops" with
      | List items -> List.map op_of_sexp items
      | Atom _ -> fail "malformed ops field"
    in
    ( to_int (find "seed"),
      {
        workers = to_int (find "workers");
        arches = ints_of_sexp (find "arches");
        strategy = to_int (find "strategy");
        fault;
        ops;
      } )
  | _ -> fail "not an srpc-check-repro s-expression"

let pp_op ppf op = Sexp.pp ppf (op_to_sexp op)

let pp ppf t =
  Format.fprintf ppf "@[<v>workers=%d arches=%a strategy=%d%s@,%a@]" t.workers
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    t.arches t.strategy
    (match t.fault with
    | None -> ""
    | Some f -> Format.asprintf " fault(seed=%d drop=%g dup=%g)" f.fseed f.drop f.dup)
    (Format.pp_print_list pp_op) t.ops

(* Runs a resolved plan on a real simulated cluster: ground node at site
   1, workers at sites 2.., heterogeneous architectures, a transfer
   strategy drawn from the same table the property tests sweep, and an
   optional fault plan. Every remote procedure returns the observation
   vector the model computes for the same resolved op. *)

open Srpc_core
open Srpc_memory
open Srpc_simnet
open Srpc_workloads
open Script

let arch_table = [| Arch.sparc32; Arch.ilp32_le; Arch.lp64_le; Arch.lp64_be |]

let strategy_table =
  [|
    Strategy.smart ();
    Strategy.fully_eager;
    Strategy.fully_lazy;
    Strategy.smart ~closure_size:64 ();
    Strategy.smart ~closure_size:1024 ();
    { (Strategy.smart ()) with Strategy.order = Strategy.Depth_first };
    { (Strategy.smart ()) with Strategy.grain = Strategy.Twin_diff };
    { (Strategy.smart ()) with Strategy.grouping = Strategy.By_type };
    Strategy.smart ~delta:true ();
    { (Strategy.smart ~delta:true ()) with Strategy.grain = Strategy.Twin_diff };
    (* 10-12: traversal offloading — plans run at the datum's home *)
    { (Strategy.smart ()) with Strategy.offload = Strategy.Offload_always };
    { Strategy.fully_lazy with Strategy.offload = Strategy.Offload_always };
    { (Strategy.smart ()) with Strategy.offload = Strategy.Offload_auto };
  |]

type outcome = {
  obs : int list list;  (* one vector per completed resolved op *)
  final_a : (int * int list) list;  (* ground reads inside final session *)
  phase_a_done : bool;
  final_b : (int * int list) list;  (* ground reads after the close *)
  aborted : string option;
  reusable : bool;
  trace : Trace.t;
}

let ints vs = List.map Value.int vs
let outs vs = List.map Value.to_int vs

let register_procs ~ground workers =
  let ground_id = Node.id ground in
  let on_worker name body = List.iter (fun w -> Node.register w name body) workers in
  on_worker "ck_list_sum" (fun node args ->
      [ Value.int (Linked_list.sum node (Access.of_value (List.hd args))) ]);
  on_worker "ck_tree_visit" (fun node args ->
      match args with
      | [ p; lim ] ->
        let v, s =
          Tree.visit node (Access.of_value p) ~limit:(Value.to_int lim)
        in
        ints [ v; s ]
      | _ -> assert false);
  on_worker "ck_graph_sum" (fun node args ->
      let n, s = Graph.reachable_sum node (Access.of_value (List.hd args)) in
      ints [ n; s ]);
  on_worker "ck_list_update" (fun node args ->
      match args with
      | [ p; i; d ] ->
        let cell = Linked_list.nth node (Access.of_value p) (Value.to_int i) in
        let v = Access.get_int node cell ~field:"value" + Value.to_int d in
        Access.set_int node cell ~field:"value" v;
        [ Value.int v ]
      | _ -> assert false);
  on_worker "ck_tree_update" (fun node args ->
      match args with
      | [ p; i; d ] ->
        let cell = Tree.nth_preorder node (Access.of_value p) (Value.to_int i) in
        let v = Access.get_int node cell ~field:"data" + Value.to_int d in
        Access.set_int node cell ~field:"data" v;
        [ Value.int v ]
      | _ -> assert false);
  on_worker "ck_list_map" (fun node args ->
      match args with
      | [ p; m; a ] ->
        let mul = Value.to_int m and add = Value.to_int a in
        let head = Access.of_value p in
        Linked_list.map_in_place node head (fun x -> (mul * x) + add);
        [ Value.int (Linked_list.sum node head) ]
      | _ -> assert false);
  on_worker "ck_tree_mapu" (fun node args ->
      match args with
      | [ p; lim ] ->
        let v, s =
          Tree.visit_update node (Access.of_value p) ~limit:(Value.to_int lim)
        in
        ints [ v; s ]
      | _ -> assert false);
  (* the callback family: traverse, then call back into the ground space
     mid-procedure — the paper's nested-call shape in reverse *)
  on_worker "ck_list_bonus" (fun node args ->
      let s = Linked_list.sum node (Access.of_value (List.hd args)) in
      let bonus =
        match Node.call node ~dst:ground_id "ck_bonus" [] with
        | [ v ] -> Value.to_int v
        | _ -> assert false
      in
      [ Value.int (s + bonus) ]);
  on_worker "ck_tree_bonus" (fun node args ->
      let _, s = Tree.visit node (Access.of_value (List.hd args)) ~limit:max_int in
      let bonus =
        match Node.call node ~dst:ground_id "ck_bonus" [] with
        | [ v ] -> Value.to_int v
        | _ -> assert false
      in
      [ Value.int (s + bonus) ]);
  on_worker "ck_graph_bonus" (fun node args ->
      let _, s = Graph.reachable_sum node (Access.of_value (List.hd args)) in
      let bonus =
        match Node.call node ~dst:ground_id "ck_bonus" [] with
        | [ v ] -> Value.to_int v
        | _ -> assert false
      in
      [ Value.int (s + bonus) ]);
  (* relay: re-issue the named traversal against another worker *)
  on_worker "ck_relay" (fun node args ->
      match args with
      | Value.Str proc :: site :: rest ->
        Node.call node
          ~dst:(Space_id.make ~site:(Value.to_int site) ~proc:0)
          proc rest
      | _ -> assert false);
  Node.register ground "ck_bonus" (fun _ _ -> [ Value.int 7 ]);
  on_worker "ck_ping" (fun _ _ -> [ Value.int 1 ]);
  (* the wide-struct family: elements are integers stored in doubles, so
     every observation converts back exactly *)
  on_worker "ck_mat_poke" (fun node args ->
      match args with
      | [ p; r; c; d ] ->
        let ptr = Access.of_value p in
        let row = Value.to_int r and col = Value.to_int c in
        let v =
          int_of_float (Matrix.get node ptr ~row ~col) + Value.to_int d
        in
        Matrix.set node ptr ~row ~col (float_of_int v);
        [ Value.int v ]
      | _ -> assert false);
  on_worker "ck_mat_frob" (fun node args ->
      [ Value.int (int_of_float (Matrix.frobenius node (Access.of_value (List.hd args)))) ]);
  on_worker "ck_mat_row" (fun node args ->
      match args with
      | [ p; r ] ->
        let row = Value.to_int r in
        [ Value.int (int_of_float (Matrix.row_sum node (Access.of_value p) ~row)) ]
      | _ -> assert false);
  (* the offload family: the worker submits a traversal plan instead of
     walking the structure through its cache; under [Offload_never] the
     very same plan replays client-side, so both paths hit one oracle *)
  let offload node pv plan =
    ints (Node.offload node ~root:(Access.of_value pv).Access.addr plan)
  in
  on_worker "ck_off_list" (fun node args ->
      match args with
      | [ p; lim ] ->
        offload node p
          (Linked_list.plan ~op:Srpc_core.Offload.Op_sum
             ~hop_bound:(Value.to_int lim) ())
      | _ -> assert false);
  on_worker "ck_off_tree" (fun node args ->
      match args with
      | [ p; lim ] -> offload node p (Tree.plan ~hop_bound:(Value.to_int lim) ())
      | _ -> assert false);
  on_worker "ck_off_graph" (fun node args ->
      match args with
      | [ p; lim ] -> offload node p (Graph.plan ~hop_bound:(Value.to_int lim) ())
      | _ -> assert false);
  on_worker "ck_off_wide" (fun node args ->
      match args with
      | [ p; lim ] ->
        offload node p (Matrix.plan ~hop_bound:(Value.to_int lim) ())
      | _ -> assert false);
  on_worker "ck_off_list_update" (fun node args ->
      match args with
      | [ p; i; d ] ->
        let idx = Value.to_int i in
        offload node p
          (Linked_list.plan
             ~op:(Srpc_core.Offload.Op_update { idx; delta = Value.to_int d })
             ~hop_bound:(idx + 1) ())
      | _ -> assert false);
  on_worker "ck_off_tree_update" (fun node args ->
      match args with
      | [ p; i; d ] ->
        let idx = Value.to_int i in
        offload node p
          (Tree.plan
             ~op:(Srpc_core.Offload.Op_update { idx; delta = Value.to_int d })
             ~hop_bound:(idx + 1) ())
      | _ -> assert false)

let final_read ground kind ptr =
  match kind with
  | KList -> Linked_list.to_list ground ptr
  | KTree -> Tree.data_list ground ptr
  | KGraph ->
    let n, s = Graph.reachable_sum ground ptr in
    [ n; s ]
  | KWide ->
    let e = Script.wide_edge in
    List.init (e * e) (fun i ->
        int_of_float (Matrix.get ground ptr ~row:(i / e) ~col:(i mod e)))

(* The per-op execution environment: the weave and traffic harnesses
   build their own clusters (several grounds, shared workers) and run
   resolved ops through the very same code path as the single-session
   checker, so the two can never diverge on op semantics. *)
type env = {
  e_cluster : Cluster.t;
  e_ground : Node.t;
  e_workers : Node.t list;
  e_objs : (int, kind * Access.ptr ref) Hashtbl.t;
  e_crashed : int list ref;
}

let make_env ~cluster ~ground ~workers =
  {
    e_cluster = cluster;
    e_ground = ground;
    e_workers = workers;
    e_objs = Hashtbl.create 16;
    e_crashed = ref [];
  }

let exec_rop env rop =
  let cluster = env.e_cluster in
  let ground = env.e_ground in
  let workers = env.e_workers in
  let objs = env.e_objs in
  let crashed = env.e_crashed in
  let worker_at i = List.nth workers i in
  let wid i = Node.id (worker_at i) in
  let wsite i = (wid i).Space_id.site in
  let get id = Hashtbl.find objs id in
  let call w proc args = outs (Node.call ground ~dst:(wid w) proc args) in
  match rop with
  | RBuild { id; shape } -> (
    match shape with
    | SList vs ->
      let h = Linked_list.build ground vs in
      Hashtbl.replace objs id (KList, ref h);
      [ Linked_list.length ground h ]
    | STree d ->
      let r = Tree.build ground ~depth:d in
      Hashtbl.replace objs id (KTree, ref r);
      [ Tree.count ground r ]
    | SGraph { nodes; gseed } ->
      let r = Graph.build ground ~nodes ~seed:gseed in
      Hashtbl.replace objs id (KGraph, ref r);
      let n, s = Graph.reachable_sum ground r in
      [ n; s ]
    | SWide ->
      let r = Matrix.create ground ~tile_rows:1 ~tile_cols:1 in
      Hashtbl.replace objs id (KWide, ref r);
      let rows, cols = Matrix.dims ground r in
      [ rows; cols ])
  | RSum { worker; id } -> (
    let kind, p = get id in
    let pv = Access.to_value !p in
    match kind with
    | KList -> call worker "ck_list_sum" [ pv ]
    | KTree -> call worker "ck_tree_visit" [ pv; Value.int max_int ]
    | KGraph -> call worker "ck_graph_sum" [ pv ]
    | KWide -> call worker "ck_mat_frob" [ pv ])
  | RVisit { worker; id; limit } ->
    let _, p = get id in
    call worker "ck_tree_visit" [ Access.to_value !p; Value.int limit ]
  | RUpdate { worker; id; idx; delta } -> (
    let kind, p = get id in
    let args = [ Access.to_value !p; Value.int idx; Value.int delta ] in
    match kind with
    | KList -> call worker "ck_list_update" args
    | KTree -> call worker "ck_tree_update" args
    | KGraph | KWide -> assert false)
  | RPoke { worker; id; idx; delta } ->
    let _, p = get id in
    let e = Script.wide_edge in
    call worker "ck_mat_poke"
      [
        Access.to_value !p; Value.int (idx / e); Value.int (idx mod e);
        Value.int delta;
      ]
  | RWideRow { worker; id; row } ->
    let _, p = get id in
    call worker "ck_mat_row" [ Access.to_value !p; Value.int row ]
  | RMapList { worker; id; mul; add } ->
    let _, p = get id in
    call worker "ck_list_map"
      [ Access.to_value !p; Value.int mul; Value.int add ]
  | RMapTree { worker; id; limit } ->
    let _, p = get id in
    call worker "ck_tree_mapu" [ Access.to_value !p; Value.int limit ]
  | RNested { w1; w2; id } -> (
    let kind, p = get id in
    let pv = Access.to_value !p in
    let relay proc args =
      call w1 "ck_relay" (Value.str proc :: Value.int (wsite w2) :: args)
    in
    match kind with
    | KList -> relay "ck_list_sum" [ pv ]
    | KTree -> relay "ck_tree_visit" [ pv; Value.int max_int ]
    | KGraph -> relay "ck_graph_sum" [ pv ]
    | KWide -> relay "ck_mat_frob" [ pv ])
  | RCallback { worker; id } -> (
    let kind, p = get id in
    let pv = Access.to_value !p in
    match kind with
    | KList -> call worker "ck_list_bonus" [ pv ]
    | KTree -> call worker "ck_tree_bonus" [ pv ]
    | KGraph -> call worker "ck_graph_bonus" [ pv ]
    | KWide -> assert false)
  | ROffSum { worker; id; limit } -> (
    let kind, p = get id in
    let args = [ Access.to_value !p; Value.int limit ] in
    match kind with
    | KList -> call worker "ck_off_list" args
    | KGraph -> call worker "ck_off_graph" args
    | KTree | KWide -> assert false)
  | ROffVisit { worker; id; limit } -> (
    let kind, p = get id in
    let args = [ Access.to_value !p; Value.int limit ] in
    match kind with
    | KTree -> call worker "ck_off_tree" args
    | KWide -> call worker "ck_off_wide" args
    | KList | KGraph -> assert false)
  | ROffUpdate { worker; id; idx; delta } -> (
    let kind, p = get id in
    let args = [ Access.to_value !p; Value.int idx; Value.int delta ] in
    match kind with
    | KList -> call worker "ck_off_list_update" args
    | KTree -> call worker "ck_off_tree_update" args
    | KGraph | KWide -> assert false)
  | RLocalUpdate { id; idx; delta } -> (
    let kind, p = get id in
    match kind with
    | KList ->
      let cell = Linked_list.nth ground !p idx in
      let v = Access.get_int ground cell ~field:"value" + delta in
      Access.set_int ground cell ~field:"value" v;
      [ v ]
    | KTree ->
      let cell = Tree.nth_preorder ground !p idx in
      let v = Access.get_int ground cell ~field:"data" + delta in
      Access.set_int ground cell ~field:"data" v;
      [ v ]
    | KWide ->
      let e = Script.wide_edge in
      let row = idx / e and col = idx mod e in
      let v = int_of_float (Matrix.get ground !p ~row ~col) + delta in
      Matrix.set ground !p ~row ~col (float_of_int v);
      [ v ]
    | KGraph -> assert false)
  | RAppend { id; home; values } ->
    let _, p = get id in
    let home_id = if home = 0 then Node.id ground else wid (home - 1) in
    p := Linked_list.append ground !p ~home:home_id values;
    [ Linked_list.length ground !p ]
  | RFree { id } -> (
    let kind, p = get id in
    Hashtbl.remove objs id;
    match kind with
    | KList ->
      Linked_list.free ground !p;
      []
    | KTree ->
      Tree.free ground !p;
      []
    | KGraph | KWide -> assert false)
  | RSession ->
    Node.end_session ground;
    Node.begin_session ground;
    []
  | RCrash { worker } ->
    if not (List.mem worker !crashed) then begin
      Transport.crash (Cluster.transport cluster)
        (Space_id.to_string (wid worker));
      crashed := worker :: !crashed
    end;
    []
  | RRevive { worker } ->
    if List.mem worker !crashed then begin
      Transport.revive (Cluster.transport cluster)
        (Space_id.to_string (wid worker));
      crashed := List.filter (fun w -> w <> worker) !crashed
    end;
    []

let run plan =
  let cluster = Cluster.create ~cost:Cost_model.zero () in
  let strategy = strategy_table.(plan.p_strategy) in
  let ground = Cluster.add_node cluster ~site:1 ~strategy () in
  let workers =
    List.mapi
      (fun i a ->
        Cluster.add_node cluster ~site:(i + 2) ~arch:arch_table.(a) ~strategy ())
      plan.p_arches
  in
  Linked_list.register_types cluster;
  Tree.register_types cluster;
  Graph.register_types cluster;
  Matrix.register_types cluster;
  register_procs ~ground workers;
  let trace = Trace.create () in
  Transport.set_trace (Cluster.transport cluster) (Some trace);
  (match plan.p_fault with
  | None -> ()
  | Some f ->
    let fp = Fault_plan.create ~seed:f.fseed () in
    Fault_plan.set_global fp
      (Fault_plan.profile ~drop:f.drop ~duplicate:f.dup ());
    Cluster.install_faults cluster fp);
  let env = make_env ~cluster ~ground ~workers in
  let wid i = Node.id (List.nth workers i) in
  let get id = Hashtbl.find env.e_objs id in
  let obs_acc = ref [] in
  let kind_of id = List.assoc id plan.p_kinds in
  let step rop = obs_acc := exec_rop env rop :: !obs_acc in
  (* Recovery shared by the completion and abort paths: bring crashed
     endpoints back while the plan is still installed, then restore the
     reliable transport and probe that both sides answer a fresh
     session — the "both nodes reusable" acceptance check. *)
  let recover_and_probe () =
    List.iter
      (fun w ->
        Transport.revive (Cluster.transport cluster) (Space_id.to_string (wid w)))
      !(env.e_crashed);
    if plan.p_fault <> None then Cluster.clear_faults cluster;
    match
      Node.with_session ground (fun () ->
          List.iter
            (fun w -> ignore (Node.call ground ~dst:(Node.id w) "ck_ping" []))
            workers)
    with
    | () -> true
    | exception _ -> false
  in
  let finish ~final_a ~phase_a_done ~final_b ~aborted ~reusable =
    {
      obs = List.rev !obs_acc;
      final_a;
      phase_a_done;
      final_b;
      aborted;
      reusable;
      trace;
    }
  in
  Node.begin_session ground;
  match
    List.iter step plan.p_rops;
    (* phase A: all-local ground reads inside the final session — mixed
       objects are still readable here, their cache slots are live *)
    List.map
      (fun id ->
        let _, p = get id in
        (id, final_read ground (kind_of id) !p))
      plan.p_verify_all
  with
  | exception Session.Session_aborted { reason; _ } ->
    let reusable = recover_and_probe () in
    finish ~final_a:[] ~phase_a_done:false ~final_b:[] ~aborted:(Some reason)
      ~reusable
  | final_a -> (
    match Node.end_session ground with
    | exception Session.Session_aborted { reason; _ } ->
      let reusable = recover_and_probe () in
      finish ~final_a ~phase_a_done:true ~final_b:[] ~aborted:(Some reason)
        ~reusable
    | () ->
      let reusable = recover_and_probe () in
      (* phase B: after the close the caches are invalidated; every
         ground-pure object must still read back the committed state *)
      let final_b =
        List.map
          (fun id ->
            let _, p = get id in
            (id, final_read ground (kind_of id) !p))
          plan.p_verify_local
      in
      finish ~final_a ~phase_a_done:true ~final_b ~aborted:None ~reusable)

(** The real-cluster interpreter: runs a resolved plan on a simulated
    {!Srpc_core.Cluster} — ground at site 1, one to three workers at
    sites 2.. with their scripted architectures and transfer strategy —
    recording every observation vector, the final observable state, and
    the full wire/protocol trace. *)

open Srpc_simnet

type outcome = {
  obs : int list list;
      (** one vector per *completed* resolved op, in program order; a
          strict prefix of the plan when the session aborted mid-run *)
  final_a : (int * int list) list;
      (** phase A: ground-local reads of every [p_verify_all] object
          inside the final session (empty when the run aborted before
          reaching it) *)
  phase_a_done : bool;
  final_b : (int * int list) list;
      (** phase B: reads of the [p_verify_local] objects after the final
          close committed (empty on abort) *)
  aborted : string option;  (** [Session_aborted] reason, if any *)
  reusable : bool;
      (** after recovery (revive + clear faults), a fresh session could
          ping every worker *)
  trace : Trace.t;  (** feed to {!Srpc_analysis.Proto_lint.check} *)
}

(** [run plan] executes the plan. Aborts are absorbed into the outcome;
    any other exception escapes (and is a harness finding). *)
val run : Script.plan -> outcome

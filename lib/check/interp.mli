(** The real-cluster interpreter: runs a resolved plan on a simulated
    {!Srpc_core.Cluster} — ground at site 1, one to three workers at
    sites 2.. with their scripted architectures and transfer strategy —
    recording every observation vector, the final observable state, and
    the full wire/protocol trace. *)

open Srpc_core
open Srpc_simnet

(** The architecture pool plans index into ([Script.t.arches]). *)
val arch_table : Srpc_memory.Arch.t array

(** The strategy pool plans index into ([Script.t.strategy] mod its
    length). Indices 6 and 9 use [Twin_diff] grain; 8 and 9 enable
    delta coherency — both excluded by the concurrent-mode harnesses
    (see [Node.require_concurrent]'s contract in docs/TRAFFIC.md). *)
val strategy_table : Strategy.t array

(** [register_procs ~ground workers] installs the checker's remote
    procedures on [ground] and every worker. The weave and traffic
    harnesses call it once per ground node. *)
val register_procs : ground:Node.t -> Node.t list -> unit

(** [final_read ground kind ptr] reads an object's observable state
    through the access layer (used for phase A/B verification). *)
val final_read : Node.t -> Script.kind -> Access.ptr -> int list

(** The per-op execution environment. The weave and traffic harnesses
    build their own clusters (several grounds, shared workers) and run
    resolved ops through {!exec_rop} — the very same code path as the
    single-session checker — so the harnesses can never diverge from
    the checker on op semantics. *)
type env = {
  e_cluster : Cluster.t;
  e_ground : Node.t;
  e_workers : Node.t list;
  e_objs : (int, Script.kind * Access.ptr ref) Hashtbl.t;
      (** object id -> (kind, live root pointer) *)
  e_crashed : int list ref;  (** worker indices crashed so far *)
}

val make_env : cluster:Cluster.t -> ground:Node.t -> workers:Node.t list -> env

(** [exec_rop env rop] executes one resolved op on [env]'s cluster from
    [env]'s ground and returns its observation vector. Must run inside
    a session on the ground node (except [RSession]/[RCrash], which
    manage sessions themselves). *)
val exec_rop : env -> Script.rop -> int list

type outcome = {
  obs : int list list;
      (** one vector per *completed* resolved op, in program order; a
          strict prefix of the plan when the session aborted mid-run *)
  final_a : (int * int list) list;
      (** phase A: ground-local reads of every [p_verify_all] object
          inside the final session (empty when the run aborted before
          reaching it) *)
  phase_a_done : bool;
  final_b : (int * int list) list;
      (** phase B: reads of the [p_verify_local] objects after the final
          close committed (empty on abort) *)
  aborted : string option;  (** [Session_aborted] reason, if any *)
  reusable : bool;
      (** after recovery (revive + clear faults), a fresh session could
          ping every worker *)
  trace : Trace.t;  (** feed to {!Srpc_analysis.Proto_lint.check} *)
}

(** [run plan] executes the plan. Aborts are absorbed into the outcome;
    any other exception escapes (and is a harness finding). *)
val run : Script.plan -> outcome

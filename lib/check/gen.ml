(* Seeded script generation. All randomness flows through the
   version-stable splitmix64 in Rng, so one seed means one script on
   every OCaml release the CI matrix builds. *)

let gen_values rng ~max_len =
  List.init (Rng.int rng (max_len + 1)) (fun _ -> Rng.range rng (-100) 100)

let gen_op rng ~fault =
  let open Script in
  let weighted =
    [
      (2, `Build); (3, `Sum); (2, `Visit); (3, `Update); (2, `Map); (2, `Nested);
      (1, `Callback); (2, `Local_update); (2, `Append); (1, `Free);
      (2, `New_session); (2, `Poke);
    ]
    @ (if fault then [ (1, `Crash); (1, `Revive) ] else [])
  in
  let total = List.fold_left (fun a (w, _) -> a + w) 0 weighted in
  let roll = Rng.int rng total in
  let rec choose acc = function
    | (w, tag) :: rest -> if roll < acc + w then tag else choose (acc + w) rest
    | [] -> assert false
  in
  let idx () = Rng.int rng 64 in
  match choose 0 weighted with
  | `Build -> (
    match Rng.int rng 4 with
    | 0 -> Build_list (gen_values rng ~max_len:12)
    | 1 -> Build_tree (Rng.range rng 1 5)
    | 2 -> Build_graph { nodes = Rng.range rng 1 16; gseed = Rng.int rng 1000 }
    | _ -> Build_wide)
  | `Sum -> Sum { worker = idx (); obj = idx () }
  | `Visit -> Visit { worker = idx (); obj = idx (); limit = Rng.int rng 40 }
  | `Update ->
    Update
      { worker = idx (); obj = idx (); idx = idx (); delta = Rng.range rng (-9) 9 }
  | `Map ->
    Map
      {
        worker = idx ();
        obj = idx ();
        mul = Rng.range rng (-3) 3;
        add = Rng.range rng (-9) 9;
      }
  | `Nested -> Nested { w1 = idx (); w2 = idx (); obj = idx () }
  | `Callback -> Callback { worker = idx (); obj = idx () }
  | `Local_update ->
    Local_update { obj = idx (); idx = idx (); delta = Rng.range rng (-9) 9 }
  | `Append ->
    Append { obj = idx (); home = Rng.int rng 4; values = gen_values rng ~max_len:6 }
  | `Free -> Free { obj = idx () }
  | `New_session -> New_session
  | `Poke ->
    (* the delta write-back probe: one small field of a large struct *)
    Poke
      { worker = idx (); obj = idx (); idx = Rng.int rng 1024;
        delta = Rng.range rng (-9) 9 }
  | `Crash -> Crash { worker = idx () }
  | `Revive -> Revive { worker = idx () }

let gen_build rng =
  let open Script in
  match Rng.int rng 4 with
  | 0 -> Build_list (gen_values rng ~max_len:12)
  | 1 -> Build_tree (Rng.range rng 1 5)
  | 2 -> Build_graph { nodes = Rng.range rng 1 16; gseed = Rng.int rng 1000 }
  | _ -> Build_wide

(* Op mix for the concurrent-mode harnesses (weave, traffic). Excludes
   [New_session] (the harness owns session boundaries), [Crash] (the
   concurrent harnesses run without crash plans — message drop/dup
   faults only) and [Callback] (ck_bonus is registered on the checker's
   hardcoded ground; the harnesses run several grounds). *)
let gen_op_restricted rng =
  let open Script in
  let weighted =
    [
      (2, `Build); (3, `Sum); (2, `Visit); (3, `Update); (2, `Map); (2, `Nested);
      (2, `Local_update); (2, `Append); (1, `Free); (2, `Poke);
    ]
  in
  let total = List.fold_left (fun a (w, _) -> a + w) 0 weighted in
  let roll = Rng.int rng total in
  let rec choose acc = function
    | (w, tag) :: rest -> if roll < acc + w then tag else choose (acc + w) rest
    | [] -> assert false
  in
  let idx () = Rng.int rng 64 in
  match choose 0 weighted with
  | `Build -> (
    match Rng.int rng 4 with
    | 0 -> Build_list (gen_values rng ~max_len:12)
    | 1 -> Build_tree (Rng.range rng 1 5)
    | 2 -> Build_graph { nodes = Rng.range rng 1 16; gseed = Rng.int rng 1000 }
    | _ -> Build_wide)
  | `Sum -> Sum { worker = idx (); obj = idx () }
  | `Visit -> Visit { worker = idx (); obj = idx (); limit = Rng.int rng 40 }
  | `Update ->
    Update
      { worker = idx (); obj = idx (); idx = idx (); delta = Rng.range rng (-9) 9 }
  | `Map ->
    Map
      {
        worker = idx ();
        obj = idx ();
        mul = Rng.range rng (-3) 3;
        add = Rng.range rng (-9) 9;
      }
  | `Nested -> Nested { w1 = idx (); w2 = idx (); obj = idx () }
  | `Local_update ->
    Local_update { obj = idx (); idx = idx (); delta = Rng.range rng (-9) 9 }
  | `Append ->
    Append { obj = idx (); home = Rng.int rng 4; values = gen_values rng ~max_len:6 }
  | `Free -> Free { obj = idx () }
  | `Poke ->
    Poke
      { worker = idx (); obj = idx (); idx = Rng.int rng 1024;
        delta = Rng.range rng (-9) 9 }

(* Strategies legal in concurrent mode: no Twin_diff grain (indices 6
   and 9 of [Interp.strategy_table]), no delta coherency (8 and 9). *)
let concurrent_strategies = [| 0; 1; 2; 3; 4; 5; 7 |]

let pair ~seed ~depth ~fault =
  let rng = Rng.create seed in
  let workers = Rng.range rng 1 3 in
  let arches = List.init workers (fun _ -> Rng.int rng 4) in
  let strategy =
    concurrent_strategies.(Rng.int rng (Array.length concurrent_strategies))
  in
  let n = max 1 depth in
  let side () =
    gen_build rng :: List.init (n - 1) (fun _ -> gen_op_restricted rng)
  in
  let ops_a = side () in
  let ops_b = side () in
  ( { Script.workers; arches; strategy; fault; ops = ops_a },
    { Script.workers; arches; strategy; fault; ops = ops_b } )

let forced_build rng (kind : Script.kind) =
  let open Script in
  match kind with
  | KList -> Build_list (gen_values rng ~max_len:12)
  | KTree -> Build_tree (Rng.range rng 1 5)
  | KGraph -> Build_graph { nodes = Rng.range rng 1 16; gseed = Rng.int rng 1000 }
  | KWide -> Build_wide

let session_script ~seed ~depth ~workers ~kind ~fault =
  let rng = Rng.create seed in
  let workers = max 1 (min 3 workers) in
  let arches = List.init workers (fun _ -> Rng.int rng 4) in
  let strategy =
    concurrent_strategies.(Rng.int rng (Array.length concurrent_strategies))
  in
  let n = max 1 depth in
  let ops =
    forced_build rng kind
    :: List.init (n - 1) (fun _ -> gen_op_restricted rng)
  in
  { Script.workers; arches; strategy; fault; ops }

let script ~seed ~depth ~fault =
  let rng = Rng.create seed in
  let workers = Rng.range rng 1 3 in
  let arches = List.init workers (fun _ -> Rng.int rng 4) in
  let strategy = Rng.int rng 10 in
  let has_fault = fault <> None in
  let n = max 1 depth in
  let ops =
    gen_build rng
    :: List.init (n - 1) (fun _ -> gen_op rng ~fault:has_fault)
  in
  { Script.workers; arches; strategy; fault; ops }

(* Offload-heavy mix: roughly a third of the ops submit traversal plans
   to the object's home, the rest come from the ordinary mix. A separate
   entry point (own RNG stream) so [script]'s seeds stay stable. *)
let gen_op_offload rng ~fault =
  let open Script in
  let idx () = Rng.int rng 64 in
  match Rng.int rng 10 with
  | 0 | 1 | 2 ->
    Offload { worker = idx (); obj = idx (); limit = Rng.range rng 1 64 }
  | 3 | 4 ->
    Offload_update
      { worker = idx (); obj = idx (); idx = idx (); delta = Rng.range rng (-9) 9 }
  | _ -> gen_op rng ~fault

let script_offload ~seed ~depth ~fault =
  let rng = Rng.create seed in
  let workers = Rng.range rng 1 3 in
  let arches = List.init workers (fun _ -> Rng.int rng 4) in
  (* full table, including the offload strategies 10-12: scripts under
     Offload_never walk client-side, so one sweep checks offloaded and
     cached traversals against the same model *)
  let strategy = Rng.int rng 13 in
  let has_fault = fault <> None in
  let n = max 1 depth in
  let ops =
    gen_build rng
    :: List.init (n - 1) (fun _ -> gen_op_offload rng ~fault:has_fault)
  in
  { Script.workers; arches; strategy; fault; ops }

(* Greedy ddmin-style shrinking: a candidate replaces the current script
   whenever it still fails the predicate. Three passes iterated to a
   fixpoint under an evaluation budget:
   1. drop contiguous chunks of ops (halving chunk sizes down to 1);
   2. simplify the surviving ops in place (shorter lists, smaller
      structures, zeroed parameters);
   3. simplify the scaffolding (drop the fault schedule, fewer workers,
      the default strategy, uniform architectures). *)

open Script

let simpler_int v = if v = 0 then [] else [ 0; v / 2 ]

let simpler_list vs =
  match vs with
  | [] -> []
  | _ ->
    let n = List.length vs in
    [ []; List.filteri (fun i _ -> i < n / 2) vs ]

let simpler_op op =
  match op with
  | Build_list vs -> List.map (fun vs -> Build_list vs) (simpler_list vs)
  | Build_tree d -> List.filter_map (fun d -> if d >= 1 then Some (Build_tree d) else None) (simpler_int d)
  | Build_graph { nodes; gseed } ->
    List.filter_map
      (fun n -> if n >= 1 then Some (Build_graph { nodes = n; gseed }) else None)
      (simpler_int nodes)
    @ List.map (fun g -> Build_graph { nodes; gseed = g }) (simpler_int gseed)
  | Sum { worker; obj } ->
    List.map (fun worker -> Sum { worker; obj }) (simpler_int worker)
    @ List.map (fun obj -> Sum { worker; obj }) (simpler_int obj)
  | Visit { worker; obj; limit } ->
    List.map (fun limit -> Visit { worker; obj; limit }) (simpler_int limit)
    @ List.map (fun obj -> Visit { worker; obj; limit }) (simpler_int obj)
  | Update { worker; obj; idx; delta } ->
    List.map (fun idx -> Update { worker; obj; idx; delta }) (simpler_int idx)
    @ List.map (fun delta -> Update { worker; obj; idx; delta }) (simpler_int delta)
    @ List.map (fun obj -> Update { worker; obj; idx; delta }) (simpler_int obj)
  | Map { worker; obj; mul; add } ->
    List.map (fun mul -> Map { worker; obj; mul; add }) (simpler_int mul)
    @ List.map (fun add -> Map { worker; obj; mul; add }) (simpler_int add)
  | Nested { w1; w2; obj } ->
    [ Sum { worker = w1; obj }; Sum { worker = w2; obj } ]
  | Callback { worker; obj } -> [ Sum { worker; obj } ]
  | Local_update { obj; idx; delta } ->
    List.map (fun idx -> Local_update { obj; idx; delta }) (simpler_int idx)
    @ List.map (fun delta -> Local_update { obj; idx; delta }) (simpler_int delta)
  | Append { obj; home; values } ->
    List.map (fun values -> Append { obj; home; values }) (simpler_list values)
    @ List.map (fun home -> Append { obj; home; values }) (simpler_int home)
  | Poke { worker; obj; idx; delta } ->
    List.map (fun idx -> Poke { worker; obj; idx; delta }) (simpler_int idx)
    @ List.map (fun delta -> Poke { worker; obj; idx; delta }) (simpler_int delta)
    @ List.map (fun obj -> Poke { worker; obj; idx; delta }) (simpler_int obj)
  | Offload { worker; obj; limit } ->
    (* a client-side walk over the same prefix is the simpler variant *)
    [ Sum { worker; obj } ]
    @ List.filter_map
        (fun limit ->
          if limit >= 1 then Some (Offload { worker; obj; limit }) else None)
        (simpler_int limit)
    @ List.map (fun obj -> Offload { worker; obj; limit }) (simpler_int obj)
  | Offload_update { worker; obj; idx; delta } ->
    [ Update { worker; obj; idx; delta } ]
    @ List.map (fun idx -> Offload_update { worker; obj; idx; delta }) (simpler_int idx)
    @ List.map
        (fun delta -> Offload_update { worker; obj; idx; delta })
        (simpler_int delta)
  | Free _ | New_session | Crash _ | Revive _ | Build_wide -> []

let structural t =
  List.concat
    [
      (match t.fault with Some _ -> [ { t with fault = None } ] | None -> []);
      (if t.workers > 1 then [ { t with workers = 1; arches = [ 0 ] } ] else []);
      (if t.strategy <> 0 then [ { t with strategy = 0 } ] else []);
      (if List.exists (fun a -> a <> 0) t.arches then
         [ { t with arches = List.map (fun _ -> 0) t.arches } ]
       else []);
    ]

let minimize ?(max_evals = 500) ~still_fails script =
  let evals = ref 0 in
  let try_candidate current cand =
    if !evals >= max_evals then None
    else begin
      incr evals;
      if cand <> current && still_fails cand then Some cand else None
    end
  in
  let rec drop_chunks t =
    let ops = Array.of_list t.ops in
    let n = Array.length ops in
    let rec at_size size t =
      if size < 1 then t
      else begin
        let ops = Array.of_list t.ops in
        let n = Array.length ops in
        let rec at_offset start t =
          if start >= n then t
          else
            let cand_ops =
              Array.to_list ops
              |> List.filteri (fun i _ -> i < start || i >= start + size)
            in
            match try_candidate t { t with ops = cand_ops } with
            | Some t' -> drop_chunks t'
            | None -> at_offset (start + size) t
        in
        let t' = at_offset 0 t in
        if t' == t then at_size (size / 2) t else t'
      end
    in
    if n = 0 then t else at_size (n / 2) t
  in
  let simplify_ops t =
    let rec per_index i t =
      if i >= List.length t.ops then t
      else begin
        let op = List.nth t.ops i in
        let rec try_alts = function
          | [] -> per_index (i + 1) t
          | alt :: rest -> (
            let cand_ops = List.mapi (fun j o -> if j = i then alt else o) t.ops in
            match try_candidate t { t with ops = cand_ops } with
            | Some t' -> per_index i t'
            | None -> try_alts rest)
        in
        try_alts (simpler_op op)
      end
    in
    per_index 0 t
  in
  let simplify_structure t =
    let rec go t = function
      | [] -> t
      | cand :: rest -> (
        match try_candidate t cand with
        | Some t' -> go t' (structural t')
        | None -> go t rest)
    in
    go t (structural t)
  in
  let rec fixpoint t =
    let t' = simplify_structure (simplify_ops (drop_chunks t)) in
    if t' = t || !evals >= max_evals then t else fixpoint t'
  in
  let out = fixpoint script in
  (out, !evals)

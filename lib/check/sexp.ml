type t = Atom of string | List of t list

exception Parse_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let rec skip_blank () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_blank ()
      | ';' ->
        while !pos < n && s.[!pos] <> '\n' do
          incr pos
        done;
        skip_blank ()
      | _ -> ()
  in
  let is_atom_char c =
    match c with ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> false | _ -> true
  in
  let rec parse () =
    skip_blank ();
    if !pos >= n then fail "unexpected end of input"
    else if s.[!pos] = '(' then begin
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_blank ();
        if !pos >= n then fail "unclosed parenthesis"
        else if s.[!pos] = ')' then incr pos
        else begin
          items := parse () :: !items;
          loop ()
        end
      in
      loop ();
      List (List.rev !items)
    end
    else if s.[!pos] = ')' then fail "unexpected ')' at offset %d" !pos
    else begin
      let start = !pos in
      while !pos < n && is_atom_char s.[!pos] do
        incr pos
      done;
      Atom (String.sub s start (!pos - start))
    end
  in
  let v = parse () in
  skip_blank ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let rec pp ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | List items ->
    Format.fprintf ppf "@[<hv 1>(%a)@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
      items

let to_string t = Format.asprintf "%a" pp t

let atom = function
  | Atom a -> a
  | List _ -> fail "expected an atom, found a list"

let to_int t =
  let a = atom t in
  match int_of_string_opt a with
  | Some v -> v
  | None -> fail "expected an integer, found %S" a

let to_float t =
  let a = atom t in
  match float_of_string_opt a with
  | Some v -> v
  | None -> fail "expected a float, found %S" a

let int v = Atom (string_of_int v)
let float v = Atom (Format.asprintf "%.17g" v)

open Srpc_analysis

type failure =
  | Obs_mismatch of { step : int; expected : int list; got : int list }
  | Obs_missing of { expected : int; got : int }
  | Final_mismatch of {
      phase : string;
      id : int;
      expected : int list;
      got : int list;
    }
  | Unexpected_abort of string
  | Uncaught of string
  | Protocol of string
  | Race of string
  | Not_reusable

let pp_ints ppf vs =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    vs

let pp_failure ppf = function
  | Obs_mismatch { step; expected; got } ->
    Format.fprintf ppf "op %d observed %a, model says %a" step pp_ints got
      pp_ints expected
  | Obs_missing { expected; got } ->
    Format.fprintf ppf
      "run completed but executed %d of %d resolved ops" got expected
  | Final_mismatch { phase; id; expected; got } ->
    Format.fprintf ppf "final state (phase %s) of object %d is %a, model says %a"
      phase id pp_ints got pp_ints expected
  | Unexpected_abort reason ->
    Format.fprintf ppf "session aborted on a fault-free run: %s" reason
  | Uncaught msg -> Format.fprintf ppf "uncaught exception: %s" msg
  | Protocol msg -> Format.fprintf ppf "protocol trace violation:@,%s" msg
  | Race msg -> Format.fprintf ppf "happens-before race:@,%s" msg
  | Not_reusable ->
    Format.fprintf ppf "nodes were not reusable after the run"

(* Compare one interpreter outcome against the oracle. Completion must
   match the model everywhere; an abort is acceptable only under a fault
   schedule, and then every observation made before the abort must still
   match (a wrong answer is never excused by a later abort). *)
let judge plan (model : Model.result) (out : Interp.outcome) =
  let rec obs_prefix i expected got =
    match (expected, got) with
    | _, [] -> None
    | e :: es, g :: gs ->
      if e <> g then Some (Obs_mismatch { step = i; expected = e; got = g })
      else obs_prefix (i + 1) es gs
    | [], _ :: _ ->
      Some
        (Obs_missing
           { expected = List.length model.m_obs; got = List.length out.obs })
  in
  let compare_final phase expected got =
    List.fold_left
      (fun acc (id, got_vs) ->
        match acc with
        | Some _ -> acc
        | None -> (
          match List.assoc_opt id expected with
          | Some exp_vs when exp_vs <> got_vs ->
            Some
              (Final_mismatch { phase; id; expected = exp_vs; got = got_vs })
          | _ -> None))
      None got
  in
  let checks =
    [
      (* the race checker judges first: a coherency defect usually also
         desynchronizes the model, and "stale read" names the disease
         where "observed 3, model says 4" only names a symptom *)
      (fun () ->
        match Race_lint.check out.trace with
        | [] -> None
        | ds -> Some (Race (Format.asprintf "%a" Diagnostic.pp_list ds)));
      (fun () -> obs_prefix 0 model.m_obs out.obs);
      (fun () ->
        if out.phase_a_done then compare_final "A" model.m_final out.final_a
        else None);
      (fun () ->
        match out.aborted with
        | Some reason when plan.Script.p_fault = None ->
          Some (Unexpected_abort reason)
        | _ -> None);
      (fun () ->
        if out.aborted = None && List.length out.obs <> List.length model.m_obs
        then
          Some
            (Obs_missing
               { expected = List.length model.m_obs; got = List.length out.obs })
        else None);
      (fun () ->
        if out.aborted = None then compare_final "B" model.m_final out.final_b
        else None);
      (fun () -> if out.reusable then None else Some Not_reusable);
      (fun () ->
        match Proto_lint.check out.trace with
        | [] -> None
        | ds ->
          Some (Protocol (Format.asprintf "%a" Diagnostic.pp_list ds)));
    ]
  in
  List.fold_left
    (fun acc check -> match acc with Some _ -> acc | None -> check ())
    None checks

let run_script script =
  let plan = Script.resolve script in
  let model = Model.run plan in
  match Interp.run plan with
  | out -> judge plan model out
  | exception e -> Some (Uncaught (Printexc.to_string e))

let fails script = run_script script <> None

type stats = {
  runs : int;
  completed : int;
  aborted : int;
  fault_runs : int;
}

type report =
  | Ok of stats
  | Failed of {
      seed : int;
      script : Script.t;
      failure : failure;
      shrunk : Script.t;
      shrunk_failure : failure;
      shrink_evals : int;
    }

(* Outcome bookkeeping without re-judging: rerun the interp only for
   counting is wasteful, so run_one returns both. *)
let run_one script =
  let plan = Script.resolve script in
  let model = Model.run plan in
  match Interp.run plan with
  | out -> (judge plan model out, out.Interp.aborted <> None)
  | exception e -> (Some (Uncaught (Printexc.to_string e)), false)

let fault_for ~faults ~seed =
  if faults > 0.0 && seed mod 2 = 1 then
    Some { Script.fseed = seed; drop = faults; dup = faults /. 2.0 }
  else None

let script_for ?(offload = false) ~depth ~faults seed =
  let gen = if offload then Gen.script_offload else Gen.script in
  gen ~seed ~depth ~fault:(fault_for ~faults ~seed)

let check ?(progress = fun _ -> ()) ?(offload = false) ~seeds ~depth ~faults () =
  let stats = ref { runs = 0; completed = 0; aborted = 0; fault_runs = 0 } in
  let rec loop seed =
    if seed >= seeds then Ok !stats
    else begin
      let script = script_for ~offload ~depth ~faults seed in
      let failure, was_aborted = run_one script in
      stats :=
        {
          runs = !stats.runs + 1;
          completed = (!stats.completed + if was_aborted then 0 else 1);
          aborted = (!stats.aborted + if was_aborted then 1 else 0);
          fault_runs =
            (!stats.fault_runs + if script.Script.fault <> None then 1 else 0);
        };
      progress seed;
      match failure with
      | None -> loop (seed + 1)
      | Some failure ->
        let shrunk, shrink_evals = Shrink.minimize ~still_fails:fails script in
        let shrunk_failure =
          match run_script shrunk with Some f -> f | None -> failure
        in
        Failed { seed; script; failure; shrunk; shrunk_failure; shrink_evals }
    end
  in
  loop 0

let replay script =
  match run_script script with
  | None -> Stdlib.Ok ()
  | Some f -> Stdlib.Error (Format.asprintf "%a" pp_failure f)

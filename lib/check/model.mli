(** The sequential oracle: executes a resolved plan with plain
    in-memory semantics — no cluster, no wire, faults elided — and
    records exactly the observations the real interpreter must
    reproduce. *)

type result = {
  m_obs : int list list;
      (** one observation vector per resolved op, in program order *)
  m_final : (int * int list) list;
      (** final observable state of every object in
          [plan.p_verify_all], in that order *)
}

val run : Script.plan -> result

(* The sequential oracle: plain in-memory semantics of a resolved plan,
   no cluster, no faults. Observations and final states computed here
   must equal what the real runtime computes, bit for bit. *)

open Script

type mobj =
  | ML of int list ref
  | MT of int array  (* preorder data values *)
  | MG of { nodes : int; gseed : int }
  | MW of int array  (* wide-struct elements, row-major *)

type result = {
  m_obs : int list list;  (* one entry per resolved op *)
  m_final : (int * int list) list;  (* p_verify_all order *)
}

let list_sum = List.fold_left ( + ) 0

(* Graph payloads are read-only in resolved plans, so the observable is
   fully determined by the pure edge relation. *)
let graph_obs nodes gseed =
  let adj = Srpc_workloads.Graph.edges ~nodes ~seed:gseed in
  let seen = Array.make nodes false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter (fun (_, j) -> go j) adj.(i)
    end
  in
  go 0;
  let count = ref 0 and sum = ref 0 in
  Array.iteri (fun i s -> if s then begin incr count; sum := !sum + i end) seen;
  [ !count; !sum ]

(* The wide struct's whole-object read is the Frobenius-style sum of
   squares (exact: elements are small integers stored in doubles). *)
let wide_frob a = Array.fold_left (fun acc x -> acc + (x * x)) 0 a

let obj_sum = function
  | ML l -> list_sum !l
  | MT a -> Array.fold_left ( + ) 0 a
  | MG { nodes; gseed } -> List.nth (graph_obs nodes gseed) 1
  | MW a -> wide_frob a

(* Traversal-style observation: what one remote "sum" call returns. *)
let obj_obs = function
  | ML l -> [ list_sum !l ]
  | MT a -> [ Array.length a; Array.fold_left ( + ) 0 a ]
  | MG { nodes; gseed } -> graph_obs nodes gseed
  | MW a -> [ wide_frob a ]

let final_obs = function
  | ML l -> !l
  | MT a -> Array.to_list a
  | MG { nodes; gseed } -> graph_obs nodes gseed
  | MW a -> Array.to_list a

let run plan =
  let objs : (int, mobj) Hashtbl.t = Hashtbl.create 16 in
  let get id = Hashtbl.find objs id in
  let step rop =
    match rop with
    | RBuild { id; shape } -> (
      match shape with
      | SList vs ->
        Hashtbl.replace objs id (ML (ref vs));
        [ List.length vs ]
      | STree d ->
        let n = (1 lsl d) - 1 in
        Hashtbl.replace objs id (MT (Array.init n (fun i -> i)));
        [ n ]
      | SGraph { nodes; gseed } ->
        Hashtbl.replace objs id (MG { nodes; gseed });
        graph_obs nodes gseed
      | SWide ->
        Hashtbl.replace objs id (MW (Array.make (wide_edge * wide_edge) 0));
        [ wide_edge; wide_edge ])
    | RSum { id; _ } | RNested { id; _ } -> obj_obs (get id)
    | RVisit { id; limit; _ } -> (
      match get id with
      | MT a ->
        let v = min limit (Array.length a) in
        let sum = ref 0 in
        for i = 0 to v - 1 do
          sum := !sum + a.(i)
        done;
        [ v; !sum ]
      | _ -> assert false)
    | RUpdate { id; idx; delta; _ }
    | RLocalUpdate { id; idx; delta }
    | RPoke { id; idx; delta; _ }
    | ROffUpdate { id; idx; delta; _ } -> (
      match get id with
      | ML l ->
        l := List.mapi (fun i x -> if i = idx then x + delta else x) !l;
        [ List.nth !l idx ]
      | MT a | MW a ->
        a.(idx) <- a.(idx) + delta;
        [ a.(idx) ]
      | MG _ -> assert false)
    | ROffSum { id; limit; _ } -> (
      (* the home walker's preorder with a hop bound: first [limit]
         nodes in walk order contribute their value slots *)
      match get id with
      | ML l -> [ list_sum (List.filteri (fun i _ -> i < limit) !l) ]
      | MT a ->
        let v = min limit (Array.length a) in
        let sum = ref 0 in
        for i = 0 to v - 1 do
          sum := !sum + a.(i)
        done;
        [ !sum ]
      | MG { nodes; gseed } ->
        (* DFS from vertex 0 following out-slots in ascending order,
           seen-set plus bound — the walker's exact order *)
        let adj = Srpc_workloads.Graph.edges ~nodes ~seed:gseed in
        let seen = Array.make nodes false in
        let visited = ref 0 in
        let sum = ref 0 in
        let rec go i =
          if (not seen.(i)) && !visited < limit then begin
            seen.(i) <- true;
            incr visited;
            sum := !sum + i;
            List.iter (fun (_, j) -> go j) adj.(i)
          end
        in
        go 0;
        [ !sum ]
      | MW _ -> assert false)
    | ROffVisit { id; limit; _ } -> (
      match get id with
      | MT a ->
        let v = min limit (Array.length a) in
        let sum = ref 0 in
        for i = 0 to v - 1 do
          sum := !sum + a.(i)
        done;
        [ v; !sum ]
      | MW a ->
        (* 1×1 tile grid: the grid header (no value slots) plus one
           tile holding every element *)
        if limit <= 1 then [ 1; 0 ]
        else [ 2; Array.fold_left ( + ) 0 a ]
      | _ -> assert false)
    | RWideRow { id; row; _ } -> (
      match get id with
      | MW a ->
        let sum = ref 0 in
        for c = 0 to wide_edge - 1 do
          sum := !sum + a.((row * wide_edge) + c)
        done;
        [ !sum ]
      | _ -> assert false)
    | RMapList { id; mul; add; _ } -> (
      match get id with
      | ML l ->
        l := List.map (fun x -> (mul * x) + add) !l;
        [ list_sum !l ]
      | _ -> assert false)
    | RMapTree { id; limit; _ } -> (
      match get id with
      | MT a ->
        let v = min limit (Array.length a) in
        let sum = ref 0 in
        for i = 0 to v - 1 do
          sum := !sum + a.(i);
          a.(i) <- a.(i) + 1
        done;
        [ v; !sum ]
      | _ -> assert false)
    | RCallback { id; _ } -> [ obj_sum (get id) + 7 ]
    | RAppend { id; values; _ } -> (
      match get id with
      | ML l ->
        l := !l @ values;
        [ List.length !l ]
      | _ -> assert false)
    | RFree { id } ->
      Hashtbl.remove objs id;
      []
    | RSession | RCrash _ | RRevive _ -> []
  in
  let m_obs = List.map step plan.p_rops in
  let m_final = List.map (fun id -> (id, final_obs (get id))) plan.p_verify_all in
  { m_obs; m_final }

(** Greedy shrinking of failing scripts to a minimal reproducer.

    Because {!Script.resolve} makes every op sequence valid (references
    resolve modulo the live state), any subsequence of a failing script
    is still runnable — shrinking never has to repair references. *)

(** [minimize ~still_fails script] returns a script that still satisfies
    [still_fails] together with the number of predicate evaluations
    spent. [still_fails script] must be [true] on entry. [max_evals]
    (default 500) bounds the search. *)
val minimize :
  ?max_evals:int -> still_fails:(Script.t -> bool) -> Script.t -> Script.t * int

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64 (Steele/Lea/Flood): tiny, full-period, and identical on
   every OCaml version and word size. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next64 t) Int64.max_int) (Int64.of_int bound))

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  Int64.to_float (Int64.shift_right_logical (next64 t) 11) /. 9007199254740992.0

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

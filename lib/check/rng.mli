(** Hand-rolled splitmix64 PRNG for the script generator.

    [Random.State] changed its algorithm between OCaml 4 and 5; a check
    seed must generate the identical script on every compiler the CI
    matrix runs, so the harness carries its own generator. *)

type t

val create : int -> t

(** [int t bound] is uniform-ish in [\[0, bound)]. [bound] must be
    positive. *)
val int : t -> int -> int

(** [range t lo hi] is inclusive on both ends. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** [float t] is in [\[0, 1)]. *)
val float : t -> float

(** [pick t xs] chooses one element of the non-empty list [xs]. *)
val pick : t -> 'a list -> 'a

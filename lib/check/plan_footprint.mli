(** Per-session static footprints of a resolved check-script plan.

    [sessions plan] returns one {!Srpc_analysis.Footprint.t} per
    session the plan opens, in order. Regions are object-granular
    (root ["obj#N"], path ["*"]): plan resolution clamps every index
    modulo live state, so any element of an object may be the one
    addressed. [homes] lists the spaces owning the session's data —
    ground plus any worker homes added by remote-homed appends so far.
    Callback ops mark the session's footprint as escaping (→ CC004
    under {!Srpc_analysis.Footprint.interferes}).

    Phase-A verification reads are charged to the final session (the
    interpreter performs them before the last close); the trailing
    recover-and-probe session touches no data and is omitted. *)

val sessions : Script.plan -> Srpc_analysis.Footprint.t list

(** Seeded script generator. Deterministic: the same [seed], [depth] and
    [fault] spec always produce the identical script, on every OCaml
    version (see {!Rng}). *)

(** [script ~seed ~depth ~fault] draws a script of [depth] ops (the
    first is always a build so most runs do real work). When [fault] is
    [Some _] the op mix also includes worker crashes. *)
val script : seed:int -> depth:int -> fault:Script.fault option -> Script.t

(** [script_offload ~seed ~depth ~fault] is {!script} with an
    offload-heavy op mix (about a third of the ops are [Offload] /
    [Offload_update]) and the strategy drawn from the full table
    including the offload modes (indices 10–12). A separate entry point
    with its own RNG stream, so {!script}'s seed → script mapping is
    untouched. *)
val script_offload :
  seed:int -> depth:int -> fault:Script.fault option -> Script.t

(** Strategy-table indices legal in concurrent-session mode: no
    [Twin_diff] grain, no delta coherency (see
    [Node.request_admission]'s mode requirements). *)
val concurrent_strategies : int array

(** [pair ~seed ~depth ~fault] draws two session scripts that share one
    cluster shape — same worker count, architectures and (restricted)
    strategy — for the two-session weave harness. The op mix excludes
    [New_session], [Crash] and [Callback]: the harness owns session
    boundaries, concurrent mode runs without crash plans, and the
    callback bonus proc is tied to the single-session checker's
    ground. *)
val pair :
  seed:int -> depth:int -> fault:Script.fault option -> Script.t * Script.t

(** [session_script ~seed ~depth ~workers ~kind ~fault] draws one
    session script for the traffic generator: the leading build op is
    forced to [kind] (so the workload mix is controllable), the op mix
    is restricted as in {!pair}, and the worker count is clamped to
    [1..3] as usual. *)
val session_script :
  seed:int ->
  depth:int ->
  workers:int ->
  kind:Script.kind ->
  fault:Script.fault option ->
  Script.t

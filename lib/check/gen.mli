(** Seeded script generator. Deterministic: the same [seed], [depth] and
    [fault] spec always produce the identical script, on every OCaml
    version (see {!Rng}). *)

(** [script ~seed ~depth ~fault] draws a script of [depth] ops (the
    first is always a build so most runs do real work). When [fault] is
    [Some _] the op mix also includes worker crashes. *)
val script : seed:int -> depth:int -> fault:Script.fault option -> Script.t

(** Minimal s-expression reader/printer for replay files.

    The toolchain has no sexp library baked in, so the harness carries
    its own ~80-line codec: atoms are runs of non-whitespace,
    non-parenthesis characters (enough for identifiers and numbers;
    [;] starts a comment through end of line). *)

type t = Atom of string | List of t list

exception Parse_error of string

(** [of_string s] parses exactly one s-expression (surrounding
    whitespace and comments allowed).
    @raise Parse_error on malformed input. *)
val of_string : string -> t

(** [to_string t] renders with line breaks and indentation. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Helpers used by the script codec. *)

val atom : t -> string
(** @raise Parse_error when the node is a list. *)

val to_int : t -> int
val to_float : t -> float
val int : int -> t
val float : float -> t

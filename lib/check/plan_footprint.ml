(* Lowering a resolved check-script plan to per-session footprints.

   This lives here rather than in [Srpc_analysis] because the dependency
   arrow points the other way: the analysis library knows nothing about
   scripts (or the core runtime), it only consumes plain regions. The
   lowering is object-granular — a script op touches "obj#N" as a whole
   ("*" path), because plan resolution clamps indices modulo live state
   and any element of the object may be the one addressed. *)

open Srpc_analysis

(* Space naming matches the check cluster's layout: ground is site 1,
   workers are sites 2..; every endpoint is proc 0 of its site. *)
let ground_space = "1.0"
let worker_space w = Printf.sprintf "%d.0" (w + 2)
let obj_root id = Printf.sprintf "obj#%d" id

let sessions (p : Script.plan) =
  let obj_homes : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let homes_of id =
    Option.value (Hashtbl.find_opt obj_homes id) ~default:[ ground_space ]
  in
  let out = ref [] in
  let idx = ref 0 in
  let regions = ref [] and escapes = ref false and homes = ref [] in
  let touch id mode =
    regions := { Footprint.root = obj_root id; path = "*"; mode } :: !regions;
    homes := homes_of id @ !homes
  in
  let close () =
    out :=
      Footprint.session
        ~label:(Printf.sprintf "session[%d]" !idx)
        ~escapes:!escapes ~homes:!homes (List.rev !regions)
      :: !out;
    incr idx;
    regions := [];
    escapes := false;
    homes := []
  in
  let step (rop : Script.rop) =
    match rop with
    | RBuild { id; _ } ->
        Hashtbl.replace obj_homes id [ ground_space ];
        touch id Footprint.Write
    | RSum { id; _ } | RVisit { id; _ } | RWideRow { id; _ } | RNested { id; _ }
    | ROffSum { id; _ } | ROffVisit { id; _ } ->
        touch id Footprint.Read
    | RUpdate { id; _ } | RMapList { id; _ } | RMapTree { id; _ }
    | RPoke { id; _ } | ROffUpdate { id; _ } ->
        touch id Footprint.Read;
        touch id Footprint.Write
    | RLocalUpdate { id; _ } -> touch id Footprint.Write
    | RAppend { id; home; _ } ->
        if home > 0 then
          Hashtbl.replace obj_homes id
            (List.sort_uniq String.compare
               (worker_space (home - 1) :: homes_of id));
        touch id Footprint.Write
    | RFree { id } -> touch id Footprint.Free
    | RCallback { id; _ } ->
        touch id Footprint.Read;
        escapes := true
    | RSession -> close ()
    | RCrash _ | RRevive _ -> ()
  in
  List.iter step p.Script.p_rops;
  (* phase A: the interpreter re-reads every live object at ground
     inside the final session before closing it *)
  List.iter (fun id -> touch id Footprint.Read) p.Script.p_verify_all;
  close ();
  (* the interpreter's trailing recover-and-probe session only pings —
     an empty footprint, so it is not reported here *)
  List.rev !out

(** The two-session weave checker: two generated session scripts run
    concurrently on one cluster — two ground nodes sharing the workers —
    interleaved one resolved op at a time through the
    {!Srpc_core.Admission} controller. Each side must still satisfy the
    single-session sequential oracle, the combined trace must pass
    {!Srpc_analysis.Race_lint} and the multiplexed protocol linter, and
    conflicting footprints must serialize (queue or abort-retry) with
    no lost update. See docs/TRAFFIC.md. *)

open Srpc_core

(** [Disjoint]: side-prefixed synthetic footprints, both sessions
    admitted immediately and genuinely interleaved. [Conflicting]:
    identical unprefixed roots, so admission must serialize the
    (physically disjoint) sessions — exercising queue/drain/backoff. *)
type variant = Disjoint | Conflicting

val pp_variant : Format.formatter -> variant -> unit

type failure = {
  fseed : int;
  fvariant : variant;
  fpolicy : Strategy.admission_policy;
  fdesc : string;
  fscripts : Script.t * Script.t;  (** shrunk repro pair *)
}

type report = {
  runs : int;
  fault_runs : int;
  serialized_runs : int;
      (** conflicting-variant runs, where admission had to serialize *)
  failures : failure list;
}

(** [run_pair sa sb] weaves the two scripts (which should share their
    cluster shape — use {!Gen.pair}) and returns a failure description,
    or [None] if the run satisfied every oracle. *)
val run_pair :
  ?policy:Strategy.admission_policy ->
  ?variant:variant ->
  Script.t ->
  Script.t ->
  string option

(** The full fate of one weave: the oracle verdict plus each side's
    outcome — under a fault schedule an abort is acceptable, so tests
    that must prove a side *survived* (e.g. a crash/revive cycle
    mid-weave) check [o_committed_*] rather than just [o_failure]. *)
type outcome = {
  o_failure : string option;
  o_committed_a : bool;
  o_committed_b : bool;
  o_aborted_a : string option;
  o_aborted_b : string option;
}

val run_pair_full :
  ?policy:Strategy.admission_policy ->
  ?variant:variant ->
  Script.t ->
  Script.t ->
  outcome

(** Deterministic sweeps: even seeds are disjoint, odd conflicting;
    seeds alternate queue / abort-retry policy in blocks of two. *)
val variant_for : int -> variant

val policy_for : int -> Strategy.admission_policy

(** [check ~seeds ~depth ~faults ()] sweeps seeds 0..[seeds]-1 (odd
    seeds faulted when [faults > 0], as in {!Runner}); failures are
    shrunk by greedy per-side op dropping before being reported. *)
val check :
  ?progress:(int -> unit) ->
  seeds:int ->
  depth:int ->
  faults:float ->
  unit ->
  report

val pp_failure : Format.formatter -> failure -> unit

(** The check loop: generate → run against both oracles → shrink on
    failure.

    Three oracles judge every run: the happens-before race checker
    ({!Srpc_analysis.Race_lint}) on the recorded trace, the sequential
    model ({!Model}) on observations and final state, and the protocol
    verifier ({!Srpc_analysis.Proto_lint}) on the trace. A fault run may
    also end in a clean [Session_aborted] — but the observations made
    before the abort must still match the model, and both sides must be
    reusable afterwards. *)

type failure =
  | Obs_mismatch of { step : int; expected : int list; got : int list }
  | Obs_missing of { expected : int; got : int }
  | Final_mismatch of {
      phase : string;
      id : int;
      expected : int list;
      got : int list;
    }
  | Unexpected_abort of string
  | Uncaught of string
  | Protocol of string
  | Race of string  (** {!Srpc_analysis.Race_lint} flagged the trace *)
  | Not_reusable

val pp_failure : Format.formatter -> failure -> unit

(** [run_script s] resolves, models and interprets [s]; [None] means the
    run satisfied every oracle. *)
val run_script : Script.t -> failure option

(** [fails s] is the shrinking predicate: does [s] violate any oracle? *)
val fails : Script.t -> bool

type stats = {
  runs : int;
  completed : int;
  aborted : int;  (** clean aborts on fault runs (not failures) *)
  fault_runs : int;  (** runs carrying a fault schedule *)
}

type report =
  | Ok of stats
  | Failed of {
      seed : int;
      script : Script.t;
      failure : failure;
      shrunk : Script.t;  (** minimized reproducer *)
      shrunk_failure : failure;
      shrink_evals : int;
    }

(** [check ~seeds ~depth ~faults ()] runs seeds [0 .. seeds-1]; odd
    seeds carry a fault schedule with drop probability [faults] (and
    half that duplication) when [faults > 0]. Stops at the first
    failing seed and shrinks it. [progress] is called after each run
    with the seed just finished. [offload] draws scripts from
    {!Gen.script_offload} instead — the offload-heavy mix over the
    full strategy table. *)
val check :
  ?progress:(int -> unit) ->
  ?offload:bool ->
  seeds:int ->
  depth:int ->
  faults:float ->
  unit ->
  report

(** The script seed [check] would run for this [seed]. *)
val script_for : ?offload:bool -> depth:int -> faults:float -> int -> Script.t

(** The fault spec [check] (and the weave/traffic sweeps) install for
    this [seed]: odd seeds are faulted when [faults > 0]. *)
val fault_for : faults:float -> seed:int -> Script.fault option

(** [replay script] reruns one script and reports the failure, if any. *)
val replay : Script.t -> (unit, string) Stdlib.result

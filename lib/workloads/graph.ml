open Srpc_core
open Srpc_types

let type_name = "gnode"
let out_degree = 4

let register_types cluster =
  Cluster.register_type cluster type_name
    (Type_desc.Struct
       [
         ("out", Type_desc.Array (Type_desc.ptr type_name, out_degree));
         ("payload", Type_desc.i64);
       ])

(* xorshift64* — deterministic across runs, no wall-clock seeds. *)
let prng seed =
  let state = ref (Int64.of_int (if seed = 0 then 0x9E3779B9 else seed)) in
  fun bound ->
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_int (Int64.rem (Int64.logand x Int64.max_int) (Int64.of_int bound))

let out_slot_addr node p i =
  let arch = Srpc_memory.Address_space.arch (Node.space node) in
  let reg = Node.registry node in
  let base =
    Layout.field_offset reg arch ~ty:(Type_desc.Named type_name) ~field:"out"
  in
  p.Access.addr + base + (i * arch.Srpc_memory.Arch.word_size)

let set_edge node p i q =
  Node.charge_touch node;
  Srpc_memory.Mem.store_word (Node.mmu node) ~addr:(out_slot_addr node p i)
    q.Access.addr

let get_edge node p i =
  Node.charge_touch node;
  Access.ptr ~ty:type_name
    (Srpc_memory.Mem.load_word (Node.mmu node) ~addr:(out_slot_addr node p i))

let edges ~nodes ~seed =
  if nodes <= 0 then invalid_arg "Graph.edges: need at least one vertex";
  let rand = prng seed in
  Array.init nodes (fun _ -> [])
  |> fun adj ->
  for i = 0 to nodes - 1 do
    (* edge 0 keeps the graph connected as a chain; the rest are random
       (possibly cyclic, possibly null) *)
    let slots = ref [] in
    if i + 1 < nodes then slots := [ (0, i + 1) ];
    for slot = 1 to out_degree - 1 do
      let roll = rand (nodes + 1) in
      if roll < nodes then slots := (slot, roll) :: !slots
    done;
    adj.(i) <- List.rev !slots
  done;
  adj

let build node ~nodes ~seed =
  if nodes <= 0 then invalid_arg "Graph.build: need at least one vertex";
  let adj = edges ~nodes ~seed in
  let vertices =
    Array.init nodes (fun i ->
        let p = Access.ptr ~ty:type_name (Node.malloc node ~ty:type_name) in
        Access.set_i64 node p ~field:"payload" (Int64.of_int i);
        p)
  in
  Array.iteri
    (fun i p ->
      List.iter (fun (slot, dst) -> set_edge node p slot vertices.(dst)) adj.(i))
    vertices;
  vertices.(0)

(* The graph shape as a traversal plan: element-wise over the [out]
   pointer array, reading [payload]; the walker's seen-set makes cycles
   safe, matching [reachable_sum]'s DFS order. *)
let plan ?(op = Offload.Op_sum) ~hop_bound () =
  {
    Offload.root_ty = type_name;
    hops = [ "out" ];
    value_field = "payload";
    op;
    hop_bound;
  }

let reachable_sum node root =
  let seen = Hashtbl.create 64 in
  let sum = ref 0 in
  let rec go p =
    if (not (Access.is_null p)) && not (Hashtbl.mem seen p.Access.addr) then begin
      Hashtbl.add seen p.Access.addr ();
      sum := !sum + Access.get_int node p ~field:"payload";
      for i = 0 to out_degree - 1 do
        go (get_edge node p i)
      done
    end
  in
  go root;
  (Hashtbl.length seen, !sum)

(** Random directed graphs with cycles — stress for the closure engine
    (visited sets, shared substructure) beyond the paper's tree
    subject. *)

open Srpc_core

(** Registered name, ["gnode"]: 4 out-edges plus a 64-bit payload. *)
val type_name : string

val out_degree : int
val register_types : Cluster.t -> unit

(** [edges ~nodes ~seed] is the pure edge relation [build] materializes:
    [edges.(i)] lists the [(out_slot, target_vertex)] pairs of vertex
    [i], in slot order, drawn from the same PRNG stream as [build] —
    the reference model the srpc-check oracle walks without touching a
    node. *)
val edges : nodes:int -> seed:int -> (int * int) list array

(** [build node ~nodes ~seed] creates [nodes] vertices whose edges are
    chosen by a deterministic PRNG seeded with [seed] (self-loops and
    shared targets allowed); returns vertex 0. Every vertex is reachable
    from the root (vertex [i] always has an edge to vertex [i+1] while
    one exists). *)
val build : Node.t -> nodes:int -> seed:int -> Access.ptr

(** [reachable_sum node root] walks the graph from [root] (cycle-safe)
    and returns (vertices seen, payload sum). *)
val reachable_sum : Node.t -> Access.ptr -> int * int

(** [plan ?op ~hop_bound ()] is the graph shape as an offloadable
    traversal plan (element-wise over the [out] array, reading
    [payload]; the walker's seen-set makes cycles safe); [op] defaults
    to {!Offload.Op_sum}. *)
val plan : ?op:Offload.op -> hop_bound:int -> unit -> Offload.plan

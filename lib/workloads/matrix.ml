open Srpc_core
open Srpc_types
open Srpc_memory

let tile_edge = 32
let tile_elems = tile_edge * tile_edge
let max_tiles = 64
let tile_type = "mtile"
let grid_type = "mgrid"

let register_types cluster =
  Cluster.register_type cluster tile_type
    (Type_desc.Struct [ ("elems", Type_desc.Array (Type_desc.f64, tile_elems)) ]);
  Cluster.register_type cluster grid_type
    (Type_desc.Struct
       [
         ("tile_rows", Type_desc.i64);
         ("tile_cols", Type_desc.i64);
         ("tiles", Type_desc.Array (Type_desc.ptr tile_type, max_tiles));
       ])

let word_size node = (Address_space.arch (Node.space node)).Arch.word_size

let tiles_base node grid =
  grid.Access.addr
  + Layout.field_offset (Node.registry node)
      (Address_space.arch (Node.space node))
      ~ty:(Type_desc.Named grid_type) ~field:"tiles"

let tile_ptr node grid index =
  Node.charge_touch node;
  let addr = tiles_base node grid + (index * word_size node) in
  Access.ptr ~ty:tile_type (Mem.load_word (Node.mmu node) ~addr)

let set_tile_ptr node grid index p =
  Node.charge_touch node;
  let addr = tiles_base node grid + (index * word_size node) in
  Mem.store_word (Node.mmu node) ~addr p.Access.addr

let tile_shape node grid =
  ( Access.get_int node grid ~field:"tile_rows",
    Access.get_int node grid ~field:"tile_cols" )

let create node ~tile_rows ~tile_cols =
  if tile_rows <= 0 || tile_cols <= 0 || tile_rows * tile_cols > max_tiles then
    invalid_arg "Matrix.create: bad tile grid shape";
  let grid = Access.ptr ~ty:grid_type (Node.malloc node ~ty:grid_type) in
  Access.set_int node grid ~field:"tile_rows" tile_rows;
  Access.set_int node grid ~field:"tile_cols" tile_cols;
  for i = 0 to (tile_rows * tile_cols) - 1 do
    set_tile_ptr node grid i (Access.ptr ~ty:tile_type (Node.malloc node ~ty:tile_type))
  done;
  grid

let dims node grid =
  let tr, tc = tile_shape node grid in
  (tr * tile_edge, tc * tile_edge)

let locate node grid ~row ~col =
  let tr, tc = tile_shape node grid in
  if row < 0 || col < 0 || row >= tr * tile_edge || col >= tc * tile_edge then
    invalid_arg (Printf.sprintf "Matrix: (%d,%d) out of bounds" row col);
  let tile = ((row / tile_edge) * tc) + (col / tile_edge) in
  let off = ((row mod tile_edge) * tile_edge) + (col mod tile_edge) in
  let p = tile_ptr node grid tile in
  p.Access.addr + (off * 8)

let get node grid ~row ~col =
  let addr = locate node grid ~row ~col in
  Node.charge_touch node;
  Mem.load_f64 (Node.mmu node) ~addr

let set node grid ~row ~col v =
  let addr = locate node grid ~row ~col in
  Node.charge_touch node;
  Mem.store_f64 (Node.mmu node) ~addr v

let row_sum node grid ~row =
  let _, cols = dims node grid in
  let total = ref 0.0 in
  for col = 0 to cols - 1 do
    total := !total +. get node grid ~row ~col
  done;
  !total

let iter_tiles node grid f =
  let tr, tc = tile_shape node grid in
  for i = 0 to (tr * tc) - 1 do
    f (tile_ptr node grid i)
  done

let scale node grid k =
  iter_tiles node grid (fun tile ->
      for e = 0 to tile_elems - 1 do
        let addr = tile.Access.addr + (e * 8) in
        Node.charge_touch node;
        let v = Mem.load_f64 (Node.mmu node) ~addr in
        Node.charge_touch node;
        Mem.store_f64 (Node.mmu node) ~addr (v *. k)
      done)

let frobenius node grid =
  let total = ref 0.0 in
  iter_tiles node grid (fun tile ->
      for e = 0 to tile_elems - 1 do
        let addr = tile.Access.addr + (e * 8) in
        Node.charge_touch node;
        let v = Mem.load_f64 (Node.mmu node) ~addr in
        total := !total +. (v *. v)
      done);
  !total

(* The tiled-matrix shape as a traversal plan: the grid hops to every
   tile through the [tiles] pointer array; each tile contributes its
   whole [elems] block as value slots (the grid header itself carries
   no [elems] field, so it contributes none). *)
let plan ?(op = Offload.Op_visit) ~hop_bound () =
  {
    Offload.root_ty = grid_type;
    hops = [ "tiles" ];
    value_field = "elems";
    op;
    hop_bound;
  }

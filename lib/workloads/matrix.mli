(** Block-partitioned matrix: a grid of pointers to large tiles.

    Tiles are 32×32 doubles (8 KiB) — individual data larger than a
    page, so their cache slots span multiple protected pages; the grid
    header is a small array of tile pointers. Remote access patterns
    (one row of tiles vs the whole matrix) exercise partial transfer of
    large objects the way the tree exercises many small ones. *)

open Srpc_core

(** Elements per tile edge (32) and maximum tiles per grid (64, i.e. up
    to 8×8 tiles = 256×256 elements). *)
val tile_edge : int

val max_tiles : int

(** Registered names: ["mtile"], ["mgrid"]. *)
val tile_type : string

val grid_type : string
val register_types : Cluster.t -> unit

(** [create node ~tile_rows ~tile_cols] allocates a zeroed grid of
    [tile_rows × tile_cols] tiles.
    @raise Invalid_argument beyond [max_tiles]. *)
val create : Node.t -> tile_rows:int -> tile_cols:int -> Access.ptr

(** Element dimensions (rows, cols). *)
val dims : Node.t -> Access.ptr -> int * int

(** [get]/[set] address elements in row-major element coordinates.
    @raise Invalid_argument out of bounds. *)
val get : Node.t -> Access.ptr -> row:int -> col:int -> float

val set : Node.t -> Access.ptr -> row:int -> col:int -> float -> unit

(** [row_sum node grid ~row] sums one element row (touches one tile
    row). *)
val row_sum : Node.t -> Access.ptr -> row:int -> float

(** [scale node grid k] multiplies every element in place. *)
val scale : Node.t -> Access.ptr -> float -> unit

(** [frobenius node grid] is the sum of squares of all elements. *)
val frobenius : Node.t -> Access.ptr -> float

(** [plan ?op ~hop_bound ()] is the tiled-matrix shape as an offloadable
    traversal plan (grid → every tile via the [tiles] pointer array,
    reading each tile's [elems] block); [op] defaults to
    {!Offload.Op_visit}. *)
val plan : ?op:Offload.op -> hop_bound:int -> unit -> Offload.plan

open Srpc_core
open Srpc_types

let type_name = "lnode"

let register_types cluster =
  Cluster.register_type cluster type_name
    (Type_desc.Struct
       [ ("next", Type_desc.ptr type_name); ("value", Type_desc.i64) ])

let set_cell node p ~next ~value =
  Access.set_ptr node p ~field:"next" next;
  Access.set_int node p ~field:"value" value

let build node values =
  List.fold_right
    (fun value next ->
      let p = Access.ptr ~ty:type_name (Node.malloc node ~ty:type_name) in
      set_cell node p ~next ~value;
      p)
    values
    (Access.null ~ty:type_name)

let fold node head ~init ~f =
  let rec go acc p =
    if Access.is_null p then acc
    else
      go (f acc p (Access.get_int node p ~field:"value"))
        (Access.get_ptr node p ~field:"next")
  in
  go init head

let to_list node head =
  List.rev (fold node head ~init:[] ~f:(fun acc _ v -> v :: acc))

let sum node head = fold node head ~init:0 ~f:(fun acc _ v -> acc + v)
let length node head = fold node head ~init:0 ~f:(fun acc _ _ -> acc + 1)

let nth node head i =
  let rec go p k =
    if Access.is_null p then raise Not_found
    else if k = 0 then p
    else go (Access.get_ptr node p ~field:"next") (k - 1)
  in
  go head i

let map_in_place node head f =
  let rec go p =
    if not (Access.is_null p) then begin
      Access.set_int node p ~field:"value" (f (Access.get_int node p ~field:"value"));
      go (Access.get_ptr node p ~field:"next")
    end
  in
  go head

let free node head =
  let rec go p =
    if not (Access.is_null p) then begin
      let next = Access.get_ptr node p ~field:"next" in
      Node.extended_free node p.Access.addr;
      go next
    end
  in
  go head

(* The list shape as a traversal plan: follow [next], read [value].
   Equivalent to [sum]/[nth]-style walks but executable at the home. *)
let plan ?(op = Offload.Op_sum) ~hop_bound () =
  {
    Offload.root_ty = type_name;
    hops = [ "next" ];
    value_field = "value";
    op;
    hop_bound;
  }

let append node head ~home values =
  let tail =
    List.fold_right
      (fun value next ->
        let p =
          Access.ptr ~ty:type_name (Node.extended_malloc node ~home ~ty:type_name)
        in
        set_cell node p ~next ~value;
        p)
      values
      (Access.null ~ty:type_name)
  in
  if Access.is_null head then tail
  else begin
    let rec last p =
      let next = Access.get_ptr node p ~field:"next" in
      if Access.is_null next then p else last next
    in
    Access.set_ptr node (last head) ~field:"next" tail;
    head
  end

open Srpc_core
open Srpc_memory
open Srpc_simnet

type run = {
  seconds : float;
  callbacks : int;
  messages : int;
  bytes : int;
  faults : int;
  visited : int;
  cache_pages : int;
}

type method_kind = Fully_eager | Fully_lazy | Proposed of int

let method_name = function
  | Fully_eager -> "fully-eager"
  | Fully_lazy -> "fully-lazy"
  | Proposed c -> Printf.sprintf "proposed(%dB)" c

let strategy_of_method = function
  | Fully_eager -> Strategy.fully_eager
  | Fully_lazy -> Strategy.fully_lazy
  | Proposed closure_size -> Strategy.smart ~closure_size ()

let search_proc = "search_tree"

(* Build the paper's two-site setup and run [calls] RPC invocations of a
   tree search inside one session, measuring the calls only. *)
let run_tree_search ?(update = false) ?(repeats = 1)
    ?(arches = (Arch.sparc32, Arch.sparc32)) ?link_cost ?page_size ?fault_plan
    ~strategy ~depth ~ratio () =
  let cluster = Cluster.create () in
  (match fault_plan with
  | None -> ()
  | Some plan -> Cluster.install_faults cluster plan);
  let caller_arch, callee_arch = arches in
  let caller =
    Cluster.add_node cluster ~site:1 ~arch:caller_arch ~strategy ?page_size ()
  in
  let callee =
    Cluster.add_node cluster ~site:2 ~arch:callee_arch ~strategy ?page_size ()
  in
  (match link_cost with
  | None -> ()
  | Some cost ->
    let tr = Cluster.transport cluster in
    let a = Space_id.to_string (Node.id caller) in
    let b = Space_id.to_string (Node.id callee) in
    Transport.set_link_cost tr ~src:a ~dst:b cost;
    Transport.set_link_cost tr ~src:b ~dst:a cost);
  Tree.register_types cluster;
  let root = Tree.build caller ~depth in
  Node.register callee search_proc (fun node args ->
      match args with
      | [ rootv; limitv; updatev ] ->
        let root = Access.of_value rootv in
        let limit = Value.to_int limitv in
        let upd = Value.to_bool updatev in
        let visit = if upd then Tree.visit_update else Tree.visit in
        let visited, _sum = visit node root ~limit in
        [ Value.int visited ]
      | _ -> invalid_arg (search_proc ^ ": expected (root, limit, update)"));
  let total = Tree.nodes_of_depth depth in
  let limit = int_of_float (Float.round (ratio *. float_of_int total)) in
  let visited = ref 0 in
  Node.begin_session caller;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  for _ = 1 to repeats do
    match
      Node.call caller ~dst:(Node.id callee) search_proc
        [ Access.to_value root; Value.int limit; Value.bool update ]
    with
    | [ v ] -> visited := Value.to_int v
    | _ -> failwith (search_proc ^ ": bad result arity")
  done;
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let cache_pages = Cache.used_pages (Node.cache callee) in
  Node.end_session caller;
  let d = Stats.diff s1 s0 in
  {
    seconds = (t1 -. t0) /. float_of_int repeats;
    callbacks = d.Stats.callbacks;
    messages = d.Stats.messages;
    bytes = d.Stats.bytes;
    faults = d.Stats.faults;
    visited = !visited;
    cache_pages;
  }

(* --- Fig. 4 / Fig. 5 --- *)

type fig4_row = { ratio : float; eager : run; lazy_ : run; proposed : run }

let default_ratios = List.init 11 (fun i -> float_of_int i /. 10.0)

let fig4 ?(depth = 15) ?(ratios = default_ratios) ?(closure = 8192) () =
  let point ratio =
    let go m = run_tree_search ~strategy:(strategy_of_method m) ~depth ~ratio () in
    {
      ratio;
      eager = go Fully_eager;
      lazy_ = go Fully_lazy;
      proposed = go (Proposed closure);
    }
  in
  List.map point ratios

(* --- Fig. 6 --- *)

type fig6_row = { closure_bytes : int; by_depth : (int * run) list }

let default_closures = [ 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536 ]

let fig6 ?(depths = [ 14; 15; 16 ]) ?(closures = default_closures)
    ?(repeats = 10) () =
  let row closure_bytes =
    let per_depth depth =
      ( depth,
        run_tree_search
          ~strategy:(strategy_of_method (Proposed closure_bytes))
          ~repeats ~depth ~ratio:1.0 () )
    in
    { closure_bytes; by_depth = List.map per_depth depths }
  in
  List.map row closures

(* Fig. 6, descent reading: 10 pseudo-random root-to-leaf paths per
   call. *)
let descend_proc = "descend_paths"

let run_tree_descents ~strategy ~depth ~paths =
  let cluster = Cluster.create () in
  let caller = Cluster.add_node cluster ~site:1 ~strategy () in
  let callee = Cluster.add_node cluster ~site:2 ~strategy () in
  Tree.register_types cluster;
  let root = Tree.build caller ~depth in
  Node.register callee descend_proc (fun node args ->
      match args with
      | [ rootv; nv ] ->
        let root = Access.of_value rootv in
        let n = Value.to_int nv in
        let seen = ref 0 in
        for k = 1 to n do
          (* deterministic scrambled paths *)
          let path = k * 2654435761 in
          let count, _ = Tree.descend node root ~path in
          seen := !seen + count
        done;
        [ Value.int !seen ]
      | _ -> invalid_arg (descend_proc ^ ": expected (root, paths)"));
  Node.begin_session caller;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let visited =
    match
      Node.call caller ~dst:(Node.id callee) descend_proc
        [ Access.to_value root; Value.int paths ]
    with
    | [ v ] -> Value.to_int v
    | _ -> failwith (descend_proc ^ ": bad arity")
  in
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let cache_pages = Cache.used_pages (Node.cache callee) in
  Node.end_session caller;
  let d = Stats.diff s1 s0 in
  {
    seconds = t1 -. t0;
    callbacks = d.Stats.callbacks;
    messages = d.Stats.messages;
    bytes = d.Stats.bytes;
    faults = d.Stats.faults;
    visited;
    cache_pages;
  }

let fig6_descents ?(depths = [ 14; 15; 16 ]) ?(closures = default_closures)
    ?(paths = 10) () =
  let row closure_bytes =
    let per_depth depth =
      ( depth,
        run_tree_descents
          ~strategy:(strategy_of_method (Proposed closure_bytes))
          ~depth ~paths )
    in
    { closure_bytes; by_depth = List.map per_depth depths }
  in
  List.map row closures

(* --- Fig. 7 --- *)

type fig7_row = { ratio7 : float; updated : run; not_updated : run }

let fig7 ?(depth = 15) ?(ratios = default_ratios) ?(closure = 8192) () =
  let strategy = strategy_of_method (Proposed closure) in
  let point ratio7 =
    {
      ratio7;
      updated = run_tree_search ~update:true ~strategy ~depth ~ratio:ratio7 ();
      not_updated = run_tree_search ~update:false ~strategy ~depth ~ratio:ratio7 ();
    }
  in
  List.map point ratios

(* --- A1: allocation strategy under a two-origin interleaved walk --- *)

type alloc_row = { grouping : Strategy.alloc_grouping; merge : run }

let merge_proc = "merge_walk"

(* Partial lockstep walk over two trees owned by different spaces, with a
   small closure: placement policy then decides whether a faulting page
   holds one origin's data (one fetch) or a mixture (a fetch per origin),
   and how many pages the working set occupies. *)
let run_merge_walk ~grouping ~depth =
  let strategy =
    { (Strategy.smart ~closure_size:1024 ()) with Strategy.grouping }
  in
  let cluster = Cluster.create () in
  let owner_a = Cluster.add_node cluster ~site:1 ~strategy () in
  let owner_b = Cluster.add_node cluster ~site:2 ~strategy () in
  let walker = Cluster.add_node cluster ~site:3 ~strategy () in
  Tree.register_types cluster;
  let root_a = Tree.build owner_a ~depth in
  let root_b = Tree.build owner_b ~depth in
  Node.register walker merge_proc (fun node args ->
      match args with
      | [ a; b; limitv ] ->
        (* Lockstep DFS over both trees: the access stream interleaves
           the two origins, which is what distinguishes the placement
           heuristics. The limit keeps the access partial so placement
           waste is visible. *)
        let pa = Access.of_value a and pb = Access.of_value b in
        let limit = Value.to_int limitv in
        let sum = ref 0 in
        let steps = ref 0 in
        let rec go p q =
          let live r = not (Access.is_null r) in
          if !steps < limit && (live p || live q) then begin
            incr steps;
            if live p then sum := !sum + Access.get_int node p ~field:"data";
            if live q then sum := !sum + Access.get_int node q ~field:"data";
            let child r f =
              if live r then Access.get_ptr node r ~field:f
              else Access.null ~ty:Tree.type_name
            in
            go (child p "left") (child q "left");
            go (child p "right") (child q "right")
          end
        in
        go pa pb;
        [ Value.int !sum ]
      | _ -> invalid_arg (merge_proc ^ ": expected two roots"));
  (* Ground thread is owner A (it also owns data), calling the walker. *)
  Node.begin_session owner_a;
  (* Hand B's root to A first so it can pass both pointers on. *)
  Node.register owner_b "give_root" (fun _node _args -> [ Access.to_value root_b ]);
  let root_b_at_a =
    match Node.call owner_a ~dst:(Node.id owner_b) "give_root" [] with
    | [ v ] -> v
    | _ -> failwith "give_root: bad arity"
  in
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let visited =
    match
      Node.call owner_a ~dst:(Node.id walker) merge_proc
        [
          Access.to_value root_a;
          root_b_at_a;
          Value.int (Tree.nodes_of_depth depth * 2 / 5);
        ]
    with
    | [ v ] -> Value.to_int v
    | _ -> failwith (merge_proc ^ ": bad arity")
  in
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let cache_pages = Cache.used_pages (Node.cache walker) in
  Node.end_session owner_a;
  let d = Stats.diff s1 s0 in
  {
    seconds = t1 -. t0;
    callbacks = d.Stats.callbacks;
    messages = d.Stats.messages;
    bytes = d.Stats.bytes;
    faults = d.Stats.faults;
    visited;
    cache_pages;
  }

let ablation_alloc_strategy ?(depth = 11) () =
  List.map
    (fun grouping -> { grouping; merge = run_merge_walk ~grouping ~depth })
    [ Strategy.By_origin; Strategy.Sequential; Strategy.By_type ]

(* --- A2: closure traversal order under a partial DFS consumer --- *)

type shape_row = { order : Strategy.closure_order; partial : run }

let ablation_closure_shape ?(depth = 13) ?(ratio = 0.3) ?(closure = 2048) () =
  (* Entry-per-page placement isolates the closure traversal order from
     page-grain fetch amplification: each fault requests exactly one
     datum plus a closure in the configured order, so a depth-first
     closure tracks the depth-first consumer and a breadth-first one
     wastes breadth on unvisited subtrees. *)
  let go order =
    let strategy =
      {
        (Strategy.smart ~closure_size:closure ()) with
        Strategy.order;
        grouping = Strategy.Entry_per_page;
      }
    in
    { order; partial = run_tree_search ~strategy ~depth ~ratio () }
  in
  [ go Strategy.Breadth_first; go Strategy.Depth_first ]

(* --- A3: remote allocation batching --- *)

type batching_row = { batched : bool; alloc_run : run }

let grow_proc = "grow_list"

let run_remote_growth ~batched ~cells =
  let strategy = { (Strategy.smart ()) with Strategy.batch_remote_ops = batched } in
  let cluster = Cluster.create () in
  let owner = Cluster.add_node cluster ~site:1 ~strategy () in
  let worker = Cluster.add_node cluster ~site:2 ~strategy () in
  Linked_list.register_types cluster;
  Node.register worker grow_proc (fun node args ->
      match args with
      | [ n ] ->
        (* Allocate a list whose home is the caller's space, then release
           every other cell: exercises both batched primitives. *)
        let n = Value.to_int n in
        let home = Space_id.make ~site:1 ~proc:0 in
        let head =
          Linked_list.append node (Access.null ~ty:Linked_list.type_name) ~home
            (List.init n (fun i -> i))
        in
        let rec thin i p =
          if not (Access.is_null p) then begin
            let next = Access.get_ptr node p ~field:"next" in
            if i mod 2 = 1 then begin
              let after =
                if Access.is_null next then next
                else Access.get_ptr node next ~field:"next"
              in
              Access.set_ptr node p ~field:"next" after;
              if not (Access.is_null next) then
                Node.extended_free node next.Access.addr;
              thin (i + 2) after
            end
            else thin (i + 1) next
          end
        in
        thin 1 head;
        [ Access.to_value head ]
      | _ -> invalid_arg (grow_proc ^ ": expected cell count"));
  Node.begin_session owner;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let head =
    match Node.call owner ~dst:(Node.id worker) grow_proc [ Value.int cells ] with
    | [ v ] -> v
    | _ -> failwith (grow_proc ^ ": bad arity")
  in
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let surviving = Linked_list.length owner (Access.of_value head) in
  let cache_pages = Cache.used_pages (Node.cache worker) in
  Node.end_session owner;
  let d = Stats.diff s1 s0 in
  {
    seconds = t1 -. t0;
    callbacks = d.Stats.callbacks;
    messages = d.Stats.messages;
    bytes = d.Stats.bytes;
    faults = d.Stats.faults;
    visited = surviving;
    cache_pages;
  }

let ablation_alloc_batching ?(cells = 400) () =
  List.map
    (fun batched -> { batched; alloc_run = run_remote_growth ~batched ~cells })
    [ true; false ]

(* --- A4: write-back granularity under sparse updates --- *)

type grain_row = { grain : Strategy.writeback_grain; sparse_update : run }

let sparse_proc = "sparse_update"

let run_sparse_update ~grain ~depth ~stride =
  let strategy = { (Strategy.smart ()) with Strategy.grain } in
  let cluster = Cluster.create () in
  let owner = Cluster.add_node cluster ~site:1 ~strategy () in
  let worker = Cluster.add_node cluster ~site:2 ~strategy () in
  Tree.register_types cluster;
  let root = Tree.build owner ~depth in
  Node.register worker sparse_proc (fun node args ->
      match args with
      | [ rootv; stridev ] ->
        let stride = Value.to_int stridev in
        let count = ref 0 in
        let touched = ref 0 in
        let rec go p =
          if not (Access.is_null p) then begin
            let d = Access.get_int node p ~field:"data" in
            if !count mod stride = 0 then begin
              Access.set_int node p ~field:"data" (d + 1000);
              incr touched
            end;
            incr count;
            go (Access.get_ptr node p ~field:"left");
            go (Access.get_ptr node p ~field:"right")
          end
        in
        go (Access.of_value rootv);
        [ Value.int !touched ]
      | _ -> invalid_arg (sparse_proc ^ ": expected (root, stride)"));
  Node.begin_session owner;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let touched =
    match
      Node.call owner ~dst:(Node.id worker) sparse_proc
        [ Access.to_value root; Value.int stride ]
    with
    | [ v ] -> Value.to_int v
    | _ -> failwith (sparse_proc ^ ": bad arity")
  in
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let cache_pages = Cache.used_pages (Node.cache worker) in
  Node.end_session owner;
  let d = Stats.diff s1 s0 in
  {
    seconds = t1 -. t0;
    callbacks = d.Stats.callbacks;
    messages = d.Stats.messages;
    bytes = d.Stats.bytes;
    faults = d.Stats.faults;
    visited = touched;
    cache_pages;
  }

let ablation_writeback_grain ?(depth = 12) ?(stride = 16) () =
  List.map
    (fun grain -> { grain; sparse_update = run_sparse_update ~grain ~depth ~stride })
    [ Strategy.Page_grain; Strategy.Twin_diff ]

(* --- A5: programmer closure hints (paper section 6) --- *)

type hint_row = { hinted : bool; chain_walk : run }

let rcell_ty = "rcell"
let blob_ty = "blob"
let chain_proc = "walk_chain"

let run_chain_walk ~hinted ~cells ~closure =
  (* By-type placement keeps payload blobs on their own cache pages;
     otherwise page-grain fetching would drag them over regardless of
     what the closure engine skips. *)
  let strategy =
    { (Strategy.smart ~closure_size:closure ()) with Strategy.grouping = Strategy.By_type }
  in
  let cluster = Cluster.create () in
  let owner = Cluster.add_node cluster ~site:1 ~strategy () in
  let walker = Cluster.add_node cluster ~site:2 ~strategy () in
  Cluster.register_type cluster blob_ty
    (Srpc_types.Type_desc.Struct
       [ ("payload", Srpc_types.Type_desc.Array (Srpc_types.Type_desc.f64, 64)) ]);
  Cluster.register_type cluster rcell_ty
    (Srpc_types.Type_desc.Struct
       [
         ("next", Srpc_types.Type_desc.ptr rcell_ty);
         ("blob", Srpc_types.Type_desc.ptr blob_ty);
         ("tag", Srpc_types.Type_desc.i64);
       ]);
  if hinted then
    Cluster.set_closure_hint cluster ~ty:rcell_ty
      { Hints.follow = [ "next" ]; prune_others = true };
  (* build the chain, each cell pointing at a 512-byte blob *)
  let head = ref (Access.null ~ty:rcell_ty) in
  for i = cells - 1 downto 0 do
    let cell = Access.ptr ~ty:rcell_ty (Node.malloc owner ~ty:rcell_ty) in
    let blob = Access.ptr ~ty:blob_ty (Node.malloc owner ~ty:blob_ty) in
    Access.set_ptr owner cell ~field:"next" !head;
    Access.set_ptr owner cell ~field:"blob" blob;
    Access.set_int owner cell ~field:"tag" i;
    head := cell
  done;
  Node.register walker chain_proc (fun node args ->
      let rec go p acc =
        if Access.is_null p then acc
        else
          go (Access.get_ptr node p ~field:"next")
            (acc + Access.get_int node p ~field:"tag")
      in
      [ Value.int (go (Access.of_value (List.hd args)) 0) ]);
  Node.begin_session owner;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let sum =
    match Node.call owner ~dst:(Node.id walker) chain_proc [ Access.to_value !head ]
    with
    | [ v ] -> Value.to_int v
    | _ -> failwith (chain_proc ^ ": bad arity")
  in
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let cache_pages = Cache.used_pages (Node.cache walker) in
  Node.end_session owner;
  assert (sum = cells * (cells - 1) / 2);
  let d = Stats.diff s1 s0 in
  {
    seconds = t1 -. t0;
    callbacks = d.Stats.callbacks;
    messages = d.Stats.messages;
    bytes = d.Stats.bytes;
    faults = d.Stats.faults;
    visited = cells;
    cache_pages;
  }

let ablation_closure_hints ?(cells = 400) ?(closure = 4096) () =
  List.map
    (fun hinted -> { hinted; chain_walk = run_chain_walk ~hinted ~cells ~closure })
    [ false; true ]

(* --- derived: Fig. 4 behind a WAN link --- *)

let fig4_wan ?(depth = 15) ?(ratios = default_ratios) ?(closure = 8192)
    ?(latency_factor = 50.0) () =
  let lan = Cost_model.sparc_10mbps in
  let wan =
    { lan with Cost_model.message_latency = lan.Cost_model.message_latency *. latency_factor }
  in
  let point ratio =
    let go m =
      run_tree_search ~link_cost:wan
        ~strategy:(strategy_of_method m)
        ~depth ~ratio ()
    in
    {
      ratio;
      eager = go Fully_eager;
      lazy_ = go Fully_lazy;
      proposed = go (Proposed closure);
    }
  in
  List.map point ratios

(* --- rendering --- *)

let pp_fig4 ppf rows =
  Format.fprintf ppf "@[<v>Fig. 4 — processing time (s) vs access ratio@,";
  Format.fprintf ppf "%8s %12s %12s %12s@," "ratio" "fully-eager" "fully-lazy"
    "proposed";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8.2f %12.3f %12.3f %12.3f@," r.ratio r.eager.seconds
        r.lazy_.seconds r.proposed.seconds)
    rows;
  Format.fprintf ppf "@]"

let pp_fig5 ppf rows =
  Format.fprintf ppf "@[<v>Fig. 5 — callbacks vs access ratio@,";
  Format.fprintf ppf "%8s %12s %12s@," "ratio" "fully-lazy" "proposed";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8.2f %12d %12d@," r.ratio r.lazy_.callbacks
        r.proposed.callbacks)
    rows;
  Format.fprintf ppf "@]"

let pp_fig6 ppf rows =
  Format.fprintf ppf
    "@[<v>Fig. 6 — processing time (s) vs closure size (10 repeated searches)@,";
  let header () =
    match rows with
    | [] -> ()
    | r :: _ ->
      Format.fprintf ppf "%12s" "closure";
      List.iter
        (fun (d, _) -> Format.fprintf ppf " %11d" (Tree.nodes_of_depth d))
        r.by_depth;
      Format.fprintf ppf "@,"
  in
  header ();
  List.iter
    (fun r ->
      Format.fprintf ppf "%11dB" r.closure_bytes;
      List.iter (fun (_, run) -> Format.fprintf ppf " %11.3f" run.seconds) r.by_depth;
      Format.fprintf ppf "@,")
    rows;
  (* the working-set side of the same sweep (paper section 6 discusses
     the allocation/working-set trade-off) *)
  Format.fprintf ppf "@,callee cache working set (pages):@,";
  header ();
  List.iter
    (fun r ->
      Format.fprintf ppf "%11dB" r.closure_bytes;
      List.iter
        (fun (_, run) -> Format.fprintf ppf " %11d" run.cache_pages)
        r.by_depth;
      Format.fprintf ppf "@,")
    rows;
  Format.fprintf ppf "@]"

let pp_fig7 ppf rows =
  Format.fprintf ppf "@[<v>Fig. 7 — update performance (s) vs update ratio@,";
  Format.fprintf ppf "%8s %12s %12s@," "ratio" "updated" "not-updated";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8.2f %12.3f %12.3f@," r.ratio7 r.updated.seconds
        r.not_updated.seconds)
    rows;
  Format.fprintf ppf "@]"

let grouping_name = function
  | Strategy.By_origin -> "by-origin"
  | Strategy.Sequential -> "sequential"
  | Strategy.By_type -> "by-type"
  | Strategy.Entry_per_page -> "entry-per-page"

let pp_ablations ppf (a1, a2, a3, a4) =
  Format.fprintf ppf "@[<v>A1 — cache allocation strategy (two-origin walk)@,";
  Format.fprintf ppf "%16s %10s %10s %10s %12s@," "grouping" "time(s)" "msgs"
    "callbacks" "cache-pages";
  List.iter
    (fun { grouping; merge = r } ->
      Format.fprintf ppf "%16s %10.3f %10d %10d %12d@," (grouping_name grouping)
        r.seconds r.messages r.callbacks r.cache_pages)
    a1;
  Format.fprintf ppf "@,A2 — closure shape (DFS consumer, 30%% of the tree)@,";
  Format.fprintf ppf "%16s %10s %12s %10s@," "order" "time(s)" "bytes" "callbacks";
  List.iter
    (fun { order; partial = r } ->
      let name =
        match order with
        | Strategy.Breadth_first -> "breadth-first"
        | Strategy.Depth_first -> "depth-first"
      in
      Format.fprintf ppf "%16s %10.3f %12d %10d@," name r.seconds r.bytes
        r.callbacks)
    a2;
  Format.fprintf ppf "@,A3 — remote allocation batching (section 3.5)@,";
  Format.fprintf ppf "%16s %10s %10s %12s@," "mode" "time(s)" "msgs" "bytes";
  List.iter
    (fun { batched; alloc_run = r } ->
      Format.fprintf ppf "%16s %10.3f %10d %12d@,"
        (if batched then "batched" else "immediate")
        r.seconds r.messages r.bytes)
    a3;
  Format.fprintf ppf "@,A4 — write-back granularity (sparse updates)@,";
  Format.fprintf ppf "%16s %10s %12s %12s@," "grain" "time(s)" "bytes" "writebacks";
  List.iter
    (fun { grain; sparse_update = r } ->
      let name =
        match grain with
        | Strategy.Page_grain -> "page-grain"
        | Strategy.Twin_diff -> "twin-diff"
      in
      Format.fprintf ppf "%16s %10.3f %12d %12d@," name r.seconds r.bytes
        r.messages)
    a4;
  Format.fprintf ppf "@]"

(* --- derived: B-tree key-value store --- *)

type kv_row = { kv_method : method_kind; point : run; range : run; scan : run }

let kv_run ~strategy ~keys ~points ~phase =
  let cluster = Cluster.create () in
  let owner = Cluster.add_node cluster ~site:1 ~strategy () in
  let client = Cluster.add_node cluster ~site:2 ~strategy () in
  Btree.register_types cluster;
  let t = Btree.create owner in
  for k = 0 to keys - 1 do
    Btree.insert owner t ~key:k ~value:(k * 3)
  done;
  Node.register client "points" (fun node args ->
      match args with
      | [ tv; nv ] ->
        let t = Access.of_value tv in
        let n = Value.to_int nv in
        let hits = ref 0 in
        for i = 1 to n do
          (* spread deterministic probes across the key space *)
          let k = i * 7919 mod keys in
          if Btree.search node t ~key:k = Some (k * 3) then incr hits
        done;
        [ Value.int !hits ]
      | _ -> assert false);
  Node.register client "range" (fun node args ->
      match args with
      | [ tv; lov; hiv ] ->
        [
          Value.int
            (Btree.range_count node (Access.of_value tv) ~lo:(Value.to_int lov)
               ~hi:(Value.to_int hiv));
        ]
      | _ -> assert false);
  Node.register client "scan" (fun node args ->
      [ Value.int (Btree.cardinal node (Access.of_value (List.hd args))) ]);
  Node.begin_session owner;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let visited =
    match phase with
    | `Point -> (
      match
        Node.call owner ~dst:(Node.id client) "points"
          [ Access.to_value t; Value.int points ]
      with
      | [ v ] ->
        let hits = Value.to_int v in
        assert (hits = points);
        hits
      | _ -> failwith "points: bad arity")
    | `Range -> (
      let lo = keys / 4 and hi = keys / 2 in
      match
        Node.call owner ~dst:(Node.id client) "range"
          [ Access.to_value t; Value.int lo; Value.int hi ]
      with
      | [ v ] -> Value.to_int v
      | _ -> failwith "range: bad arity")
    | `Scan -> (
      match Node.call owner ~dst:(Node.id client) "scan" [ Access.to_value t ] with
      | [ v ] -> Value.to_int v
      | _ -> failwith "scan: bad arity")
  in
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let cache_pages = Cache.used_pages (Node.cache client) in
  Node.end_session owner;
  let d = Stats.diff s1 s0 in
  {
    seconds = t1 -. t0;
    callbacks = d.Stats.callbacks;
    messages = d.Stats.messages;
    bytes = d.Stats.bytes;
    faults = d.Stats.faults;
    visited;
    cache_pages;
  }

let kv_store ?(keys = 4000) ?(points = 20) ?(closure = 1024) () =
  let row m =
    let strategy = strategy_of_method m in
    {
      kv_method = m;
      point = kv_run ~strategy ~keys ~points ~phase:`Point;
      range = kv_run ~strategy ~keys ~points ~phase:`Range;
      scan = kv_run ~strategy ~keys ~points ~phase:`Scan;
    }
  in
  List.map row [ Fully_eager; Fully_lazy; Proposed closure ]

let pp_kv ppf rows =
  Format.fprintf ppf
    "@[<v>KV — remote B-tree store: 20 point lookups / range count / full scan@,";
  Format.fprintf ppf "%16s %12s %12s %12s@," "method" "points(s)" "range(s)"
    "scan(s)";
  List.iter
    (fun { kv_method; point; range; scan } ->
      Format.fprintf ppf "%16s %12.4f %12.4f %12.4f@," (method_name kv_method)
        point.seconds range.seconds scan.seconds)
    rows;
  Format.fprintf ppf "@]"

(* --- derived: session width scaling --- *)

type scale_row = { sites : int; relay : run }

let scaling_run ~depth ~sites =
  let strategy = Strategy.smart () in
  let cluster = Cluster.create () in
  let nodes =
    List.init sites (fun i -> Cluster.add_node cluster ~site:(i + 1) ~strategy ())
  in
  Tree.register_types cluster;
  let ground = List.hd nodes in
  let root = Tree.build ground ~depth in
  let total = Tree.nodes_of_depth depth in
  (* every intermediate site relays to the next; the last site does the
     work: visit 30%, update the first 10% *)
  let rec wire = function
    | [] | [ _ ] -> ()
    | this :: (next :: _ as rest) ->
      Node.register this "relay" (fun node args ->
          Node.call node ~dst:(Node.id next) "relay" args);
      wire rest
  in
  wire (List.tl nodes @ [ List.hd (List.rev nodes) ]);
  let last = List.hd (List.rev nodes) in
  Node.register last "relay" (fun node args ->
      let root = Access.of_value (List.hd args) in
      let _, _ = Tree.visit_update node root ~limit:(total / 10) in
      let visited, _ = Tree.visit node root ~limit:(3 * total / 10) in
      [ Value.int visited ]);
  Node.begin_session ground;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let visited =
    if sites = 1 then 0
    else
      match
        Node.call ground ~dst:(Node.id (List.nth nodes 1)) "relay"
          [ Access.to_value root ]
      with
      | [ v ] -> Value.to_int v
      | _ -> failwith "relay: bad arity"
  in
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let cache_pages = Cache.used_pages (Node.cache last) in
  Node.end_session ground;
  let d = Stats.diff s1 s0 in
  {
    seconds = t1 -. t0;
    callbacks = d.Stats.callbacks;
    messages = d.Stats.messages;
    bytes = d.Stats.bytes;
    faults = d.Stats.faults;
    visited;
    cache_pages;
  }

let scaling ?(depth = 12) ?(max_sites = 8) () =
  List.init (max_sites - 1) (fun i ->
      let sites = i + 2 in
      { sites; relay = scaling_run ~depth ~sites })

let pp_scaling ppf rows =
  Format.fprintf ppf
    "@[<v>SCALE — nested relay chain, work at the far end (30%% read, 10%%      update)@,";
  Format.fprintf ppf "%8s %10s %10s %12s %10s@," "sites" "time(s)" "msgs" "bytes"
    "callbacks";
  List.iter
    (fun { sites; relay = r } ->
      Format.fprintf ppf "%8d %10.3f %10d %12d %10d@," sites r.seconds r.messages
        r.bytes r.callbacks)
    rows;
  Format.fprintf ppf "@]"

(* --- A6: page size = transfer granularity --- *)

type page_row = { page_bytes : int; partial_search : run }

let ablation_page_size ?(depth = 14) ?(ratio = 0.3) ?(closure = 2048)
    ?(page_sizes = [ 512; 1024; 2048; 4096; 8192; 16384 ]) () =
  List.map
    (fun page_bytes ->
      {
        page_bytes;
        partial_search =
          run_tree_search ~page_size:page_bytes
            ~strategy:(strategy_of_method (Proposed closure))
            ~depth ~ratio ();
      })
    page_sizes

let pp_page_rows ppf rows =
  Format.fprintf ppf
    "@[<v>A6 — page size as transfer granularity (30%% DFS, closure 2 KB)@,";
  Format.fprintf ppf "%10s %10s %12s %10s %12s@," "page" "time(s)" "bytes"
    "callbacks" "cache-pages";
  List.iter
    (fun { page_bytes; partial_search = r } ->
      Format.fprintf ppf "%9dB %10.3f %12d %10d %12d@," page_bytes r.seconds
        r.bytes r.callbacks r.cache_pages)
    rows;
  Format.fprintf ppf "@]"

(* --- derived: hand-written protocols vs transparent pointers --- *)

type manual_row = {
  m_ratio : float;
  smart_rpc : run;
  manual_naive : run;
  manual_subtree : run;
}

(* The manual protocols pass raw addresses as plain integers and encode
   node contents as scalar results — no pointer machinery at all, which
   is exactly what a conventional RPC system forces on the programmer. *)
let run_manual ~variant ~depth ~ratio ~batch =
  let strategy = Strategy.smart () (* irrelevant: no pointers cross *) in
  let cluster = Cluster.create () in
  let caller = Cluster.add_node cluster ~site:1 ~strategy () in
  let callee = Cluster.add_node cluster ~site:2 ~strategy () in
  Tree.register_types cluster;
  let root = Tree.build caller ~depth in
  let total = Tree.nodes_of_depth depth in
  let limit = int_of_float (Float.round (ratio *. float_of_int total)) in
  (* caller-side accessors working on its own raw memory *)
  let read_node node addr =
    let p = Access.ptr ~ty:Tree.type_name addr in
    ( Access.get_int node p ~field:"data",
      (Access.get_ptr node p ~field:"left").Access.addr,
      (Access.get_ptr node p ~field:"right").Access.addr )
  in
  Node.register caller "get_node" (fun node args ->
      let d, l, r = read_node node (Value.to_int (List.hd args)) in
      [ Value.int d; Value.int l; Value.int r ]);
  Node.register caller "get_subtree" (fun node args ->
      match args with
      | [ addrv; maxv ] ->
        (* preorder batch of up to max nodes: 4 ints per node *)
        let out = ref [] in
        let count = ref 0 in
        let max_nodes = Value.to_int maxv in
        let rec go addr =
          if addr <> 0 && !count < max_nodes then begin
            incr count;
            let d, l, r = read_node node addr in
            out := Value.int r :: Value.int l :: Value.int d :: Value.int addr :: !out;
            go l;
            go r
          end
        in
        go (Value.to_int addrv);
        List.rev !out
      | _ -> assert false);
  (* callee-side searches *)
  Node.register callee "search_naive" (fun node args ->
      match args with
      | [ rootv; limitv ] ->
        let limit = Value.to_int limitv in
        let visited = ref 0 in
        let rec go addr =
          if addr <> 0 && !visited < limit then begin
            incr visited;
            match Node.call node ~dst:(Node.id caller) "get_node" [ Value.int addr ]
            with
            | [ _d; l; r ] ->
              go (Value.to_int l);
              go (Value.to_int r)
            | _ -> assert false
          end
        in
        go (Value.to_int rootv);
        [ Value.int !visited ]
      | _ -> assert false);
  Node.register callee "search_subtree" (fun node args ->
      match args with
      | [ rootv; limitv; batchv ] ->
        let limit = Value.to_int limitv in
        let batch = Value.to_int batchv in
        (* local cache of fetched nodes, hand-rolled *)
        let known : (int, int * int * int) Hashtbl.t = Hashtbl.create 256 in
        let fetch addr =
          match
            Node.call node ~dst:(Node.id caller) "get_subtree"
              [ Value.int addr; Value.int batch ]
          with
          | vs ->
            let rec install = function
              | a :: d :: l :: r :: rest ->
                Hashtbl.replace known (Value.to_int a)
                  (Value.to_int d, Value.to_int l, Value.to_int r);
                install rest
              | [] -> ()
              | _ -> assert false
            in
            install vs
        in
        let visited = ref 0 in
        let rec go addr =
          if addr <> 0 && !visited < limit then begin
            if not (Hashtbl.mem known addr) then fetch addr;
            incr visited;
            Node.charge_touch node;
            let _, l, r = Hashtbl.find known addr in
            go l;
            go r
          end
        in
        go (Value.to_int rootv);
        [ Value.int !visited ]
      | _ -> assert false);
  Node.begin_session caller;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let visited =
    let proc, args =
      match variant with
      | `Naive -> ("search_naive", [ Value.int root.Access.addr; Value.int limit ])
      | `Subtree ->
        ( "search_subtree",
          [ Value.int root.Access.addr; Value.int limit; Value.int batch ] )
    in
    match Node.call caller ~dst:(Node.id callee) proc args with
    | [ v ] -> Value.to_int v
    | _ -> failwith "manual search: bad arity"
  in
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  Node.end_session caller;
  let d = Stats.diff s1 s0 in
  {
    seconds = t1 -. t0;
    callbacks = d.Stats.callbacks;
    messages = d.Stats.messages;
    bytes = d.Stats.bytes;
    faults = d.Stats.faults;
    visited;
    cache_pages = 0;
  }

let manual_comparison ?(depth = 15) ?(ratios = [ 0.1; 0.3; 0.6; 1.0 ])
    ?(closure = 8192) () =
  let batch = closure / 16 (* same data budget per round trip *) in
  List.map
    (fun m_ratio ->
      {
        m_ratio;
        smart_rpc =
          run_tree_search
            ~strategy:(strategy_of_method (Proposed closure))
            ~depth ~ratio:m_ratio ();
        manual_naive = run_manual ~variant:`Naive ~depth ~ratio:m_ratio ~batch;
        manual_subtree = run_manual ~variant:`Subtree ~depth ~ratio:m_ratio ~batch;
      })
    ratios

let pp_manual ppf rows =
  Format.fprintf ppf
    "@[<v>MANUAL — transparent pointers vs hand-written protocols (section 2)@,";
  Format.fprintf ppf "%8s %14s %14s %16s@," "ratio" "smart RPC" "manual-naive"
    "manual-subtree";
  List.iter
    (fun { m_ratio; smart_rpc; manual_naive; manual_subtree } ->
      Format.fprintf ppf "%8.2f %13.3fs %13.3fs %15.3fs@," m_ratio
        smart_rpc.seconds manual_naive.seconds manual_subtree.seconds)
    rows;
  Format.fprintf ppf "@]"

let pp_hint_rows ppf rows =
  Format.fprintf ppf
    "@[<v>A5 — closure hints (chain walk past bulky payloads, section 6)@,";
  Format.fprintf ppf "%16s %10s %12s %10s %12s@," "hints" "time(s)" "bytes"
    "callbacks" "cache-pages";
  List.iter
    (fun { hinted; chain_walk = r } ->
      Format.fprintf ppf "%16s %10.3f %12d %10d %12d@,"
        (if hinted then "follow-next" else "none")
        r.seconds r.bytes r.callbacks r.cache_pages)
    rows;
  Format.fprintf ppf "@]"

(* --- Table 1 --- *)

let table1 ppf () =
  let cluster = Cluster.create () in
  let caller = Cluster.add_node cluster ~site:1 () in
  let callee = Cluster.add_node cluster ~site:2 () in
  Linked_list.register_types cluster;
  let a = Linked_list.build caller [ 1; 2; 3 ] in
  let b = Linked_list.build caller [ 10; 20 ] in
  Node.register callee "take_two" (fun _node args ->
      match args with
      | [ _; _ ] -> [ Value.unit ]
      | _ -> invalid_arg "take_two");
  Node.with_session caller (fun () ->
      ignore
        (Node.call caller ~dst:(Node.id callee) "take_two"
           [ Access.to_value a; Access.to_value b ]);
      Format.fprintf ppf
        "@[<v>Table 1 — callee data allocation table after swizzling two \
         pointers A and B@,%a@]"
        Node.pp_alloc_table callee)

(* --- srpc-faults: the protocol under injected faults --- *)

type faults_overhead = {
  fo_plain : run;  (** no fault plan: today's exact wire behavior *)
  fo_envelope : run;  (** zero-fault plan: retry envelope active, no faults *)
  fo_ratio : float;  (** envelope seconds / plain seconds *)
}

(* Retry-envelope overhead at zero fault rate: the same Fig. 4 point with
   and without a (fault-free) plan installed. The only difference is the
   sequence-number framing and the staged close, so the ratio is the
   price of crash safety on the fault-free path. *)
let measure_faults_overhead ?(depth = 13) ?(ratio = 0.5) ?(closure = 8192) () =
  let strategy = strategy_of_method (Proposed closure) in
  let fo_plain = run_tree_search ~strategy ~depth ~ratio () in
  let plan = Fault_plan.create ~seed:1 () in
  let fo_envelope = run_tree_search ~fault_plan:plan ~strategy ~depth ~ratio () in
  {
    fo_plain;
    fo_envelope;
    fo_ratio =
      (if fo_plain.seconds > 0.0 then fo_envelope.seconds /. fo_plain.seconds
       else 1.0);
  }

type faults_summary = {
  f_drop : float;
  f_strategy : string;
  f_sessions : int;
  f_completed : int;
  f_aborted : int;
  f_wrong : int;  (** completed sessions whose result differed *)
  f_retries : int;
  f_timeouts : int;
  f_duplicates : int;
  f_seconds : float;  (** mean simulated seconds per completed session *)
}

(* Seeded chaos sweep: one cluster per (drop, strategy) cell, [sessions]
   tree searches under the injected drop rate. Every session must either
   complete with the fault-free result or abort cleanly with the nodes
   still usable — a wrong result or a stuck cluster is the bug this
   harness exists to catch. *)
let faults_cell ?(depth = 9) ?(ratio = 0.6) ?(sessions = 6) ~seed ~drop
    ~strategy ~strategy_name () =
  let cluster = Cluster.create () in
  let caller = Cluster.add_node cluster ~site:1 ~strategy () in
  let callee = Cluster.add_node cluster ~site:2 ~strategy () in
  Tree.register_types cluster;
  let root = Tree.build caller ~depth in
  Node.register callee search_proc (fun node args ->
      match args with
      | [ rootv; limitv; updatev ] ->
        let root = Access.of_value rootv in
        let limit = Value.to_int limitv in
        let upd = Value.to_bool updatev in
        let visit = if upd then Tree.visit_update else Tree.visit in
        let visited, _sum = visit node root ~limit in
        [ Value.int visited ]
      | _ -> invalid_arg (search_proc ^ ": expected (root, limit, update)"));
  let total = Tree.nodes_of_depth depth in
  let limit = int_of_float (Float.round (ratio *. float_of_int total)) in
  let run_one () =
    let t0 = Cluster.now cluster in
    match
      Node.with_session caller (fun () ->
          match
            Node.call caller ~dst:(Node.id callee) search_proc
              [ Access.to_value root; Value.int limit; Value.bool false ]
          with
          | [ v ] -> Value.to_int v
          | _ -> failwith (search_proc ^ ": bad result arity"))
    with
    | r -> `Done (r, Cluster.now cluster -. t0)
    | exception Session.Session_aborted _ -> `Aborted
  in
  (* the fault-free reference result, before any plan is installed *)
  let expected =
    match run_one () with
    | `Done (r, _) -> r
    | `Aborted -> assert false
  in
  let plan = Fault_plan.create ~seed () in
  Fault_plan.set_global plan (Fault_plan.profile ~drop ~duplicate:(drop /. 2.0) ());
  Cluster.install_faults cluster plan;
  let completed = ref 0 and aborted = ref 0 and wrong = ref 0 in
  let secs = ref 0.0 in
  let s0 = Cluster.snapshot cluster in
  for _ = 1 to sessions do
    match run_one () with
    | `Done (r, dt) ->
      incr completed;
      secs := !secs +. dt;
      if r <> expected then incr wrong
    | `Aborted -> incr aborted
  done;
  let d = Stats.diff (Cluster.snapshot cluster) s0 in
  {
    f_drop = drop;
    f_strategy = strategy_name;
    f_sessions = sessions;
    f_completed = !completed;
    f_aborted = !aborted;
    f_wrong = !wrong;
    f_retries = d.Stats.retries;
    f_timeouts = d.Stats.timeouts;
    f_duplicates = d.Stats.duplicates;
    f_seconds =
      (if !completed > 0 then !secs /. float_of_int !completed else 0.0);
  }

let default_fault_drops = [ 0.0; 0.01; 0.1 ]

let faults_sweep ?depth ?ratio ?sessions ?(seed = 42)
    ?(drops = default_fault_drops) () =
  let strategies =
    [
      ("smart", strategy_of_method (Proposed 8192));
      ("lazy", strategy_of_method Fully_lazy);
      ("eager", strategy_of_method Fully_eager);
    ]
  in
  List.concat_map
    (fun drop ->
      List.map
        (fun (strategy_name, strategy) ->
          faults_cell ?depth ?ratio ?sessions ~seed ~drop ~strategy
            ~strategy_name ())
        strategies)
    drops

let pp_faults ppf (overhead, rows) =
  Format.fprintf ppf
    "@[<v>FAULTS — retry envelope and chaos sweep (tree workload)@,";
  Format.fprintf ppf
    "envelope overhead at zero faults: plain %.4fs, enveloped %.4fs (x%.3f)@,@,"
    overhead.fo_plain.seconds overhead.fo_envelope.seconds overhead.fo_ratio;
  Format.fprintf ppf "%8s %8s %10s %8s %8s %8s %8s %8s@," "drop" "strategy"
    "sessions" "done" "aborted" "wrong" "retries" "dups";
  List.iter
    (fun f ->
      Format.fprintf ppf "%8.2f %8s %10d %8d %8d %8d %8d %8d@," f.f_drop
        f.f_strategy f.f_sessions f.f_completed f.f_aborted f.f_wrong
        f.f_retries f.f_duplicates)
    rows;
  Format.fprintf ppf "@]"

(* --- srpc-adapt: the adaptive policy, run session after session ---

   Same two-site setups as Fig. 4 and ablation A5, but the cluster keeps
   one {!Srpc_policy.Engine} across repeated sessions: each session the
   receiver's access pattern is profiled, and between sessions the
   controller revises the per-type closure budgets and machine-derived
   hints. The per-session run list is the convergence curve. *)

type adaptive_curve = {
  a_ratio : float;
  a_sessions : run list;  (** one entry per session, in order *)
  a_budgets : (string * int) list;  (** per-type budgets after the last session *)
}

let measure_session cluster ~ground ~callee f =
  Node.begin_session ground;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let visited = f () in
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let cache_pages = Cache.used_pages (Node.cache callee) in
  Node.end_session ground;
  let d = Stats.diff s1 s0 in
  {
    seconds = t1 -. t0;
    callbacks = d.Stats.callbacks;
    messages = d.Stats.messages;
    bytes = d.Stats.bytes;
    faults = d.Stats.faults;
    visited;
    cache_pages;
  }

let run_adaptive_tree_search ?(depth = 15) ?(sessions = 12) ?config ~ratio () =
  let policy = Srpc_policy.Engine.create ?config () in
  let cluster = Cluster.create ~policy () in
  let strategy = Strategy.smart () in
  let caller = Cluster.add_node cluster ~site:1 ~strategy () in
  let callee = Cluster.add_node cluster ~site:2 ~strategy () in
  Tree.register_types cluster;
  let root = Tree.build caller ~depth in
  Node.register callee search_proc (fun node args ->
      match args with
      | [ rootv; limitv; updatev ] ->
        let root = Access.of_value rootv in
        let limit = Value.to_int limitv in
        let upd = Value.to_bool updatev in
        let visit = if upd then Tree.visit_update else Tree.visit in
        let visited, _sum = visit node root ~limit in
        [ Value.int visited ]
      | _ -> invalid_arg (search_proc ^ ": expected (root, limit, update)"));
  let total = Tree.nodes_of_depth depth in
  let limit = int_of_float (Float.round (ratio *. float_of_int total)) in
  let one () =
    measure_session cluster ~ground:caller ~callee (fun () ->
        match
          Node.call caller ~dst:(Node.id callee) search_proc
            [ Access.to_value root; Value.int limit; Value.bool false ]
        with
        | [ v ] -> Value.to_int v
        | _ -> failwith (search_proc ^ ": bad result arity"))
  in
  let runs = List.init sessions (fun _ -> one ()) in
  { a_ratio = ratio; a_sessions = runs; a_budgets = Srpc_policy.Engine.budgets policy }

type adaptive_fig4_row = {
  af_ratio : float;
  af_eager : run;
  af_lazy : run;
  af_smart : run;
  af_adaptive : adaptive_curve;
}

let adaptive_fig4 ?(depth = 15) ?(ratios = default_ratios) ?(closure = 8192)
    ?(sessions = 12) () =
  let point ratio =
    let go m = run_tree_search ~strategy:(strategy_of_method m) ~depth ~ratio () in
    {
      af_ratio = ratio;
      af_eager = go Fully_eager;
      af_lazy = go Fully_lazy;
      af_smart = go (Proposed closure);
      af_adaptive = run_adaptive_tree_search ~depth ~sessions ~ratio ();
    }
  in
  List.map point ratios

type adaptive_chain = {
  ac_sessions : run list;
  ac_hint : Hints.rule option;
  ac_budgets : (string * int) list;
}

let run_adaptive_chain_walk ?(cells = 400) ?(sessions = 10) ?config () =
  let policy = Srpc_policy.Engine.create ?config () in
  let strategy =
    { (Strategy.smart ()) with Strategy.grouping = Strategy.By_type }
  in
  let cluster = Cluster.create ~policy () in
  let owner = Cluster.add_node cluster ~site:1 ~strategy () in
  let walker = Cluster.add_node cluster ~site:2 ~strategy () in
  Cluster.register_type cluster blob_ty
    (Srpc_types.Type_desc.Struct
       [ ("payload", Srpc_types.Type_desc.Array (Srpc_types.Type_desc.f64, 64)) ]);
  Cluster.register_type cluster rcell_ty
    (Srpc_types.Type_desc.Struct
       [
         ("next", Srpc_types.Type_desc.ptr rcell_ty);
         ("blob", Srpc_types.Type_desc.ptr blob_ty);
         ("tag", Srpc_types.Type_desc.i64);
       ]);
  let head = ref (Access.null ~ty:rcell_ty) in
  for i = cells - 1 downto 0 do
    let cell = Access.ptr ~ty:rcell_ty (Node.malloc owner ~ty:rcell_ty) in
    let blob = Access.ptr ~ty:blob_ty (Node.malloc owner ~ty:blob_ty) in
    Access.set_ptr owner cell ~field:"next" !head;
    Access.set_ptr owner cell ~field:"blob" blob;
    Access.set_int owner cell ~field:"tag" i;
    head := cell
  done;
  Node.register walker chain_proc (fun node args ->
      let rec go p acc =
        if Access.is_null p then acc
        else
          go (Access.get_ptr node p ~field:"next")
            (acc + Access.get_int node p ~field:"tag")
      in
      [ Value.int (go (Access.of_value (List.hd args)) 0) ]);
  let one () =
    measure_session cluster ~ground:owner ~callee:walker (fun () ->
        match
          Node.call owner ~dst:(Node.id walker) chain_proc
            [ Access.to_value !head ]
        with
        | [ v ] ->
          let sum = Value.to_int v in
          assert (sum = cells * (cells - 1) / 2);
          cells
        | _ -> failwith (chain_proc ^ ": bad arity"))
  in
  let runs = List.init sessions (fun _ -> one ()) in
  {
    ac_sessions = runs;
    ac_hint = Hints.find (Cluster.hints cluster) ~ty:rcell_ty;
    ac_budgets = Srpc_policy.Engine.budgets policy;
  }

let pp_adaptive_fig4 ppf rows =
  Format.fprintf ppf
    "@[<v>Adaptive vs Fig. 4 statics (final session; simulated seconds)@,\
     %6s %12s %12s %12s %12s %10s@," "ratio" "eager" "lazy" "smart" "adaptive"
    "ad/best";
  List.iter
    (fun { af_ratio; af_eager; af_lazy; af_smart; af_adaptive } ->
      let final = List.nth af_adaptive.a_sessions
          (List.length af_adaptive.a_sessions - 1) in
      let best =
        List.fold_left min af_eager.seconds [ af_lazy.seconds; af_smart.seconds ]
      in
      Format.fprintf ppf "%6.2f %12.4f %12.4f %12.4f %12.4f %10.3f@," af_ratio
        af_eager.seconds af_lazy.seconds af_smart.seconds final.seconds
        (final.seconds /. best))
    rows;
  Format.fprintf ppf "@]"

(* --- delta coherency: dirty-range write-backs vs full items --- *)

type delta_run = {
  dl_run : run;
  dl_wb_bytes : int;
  dl_saved : int;
  dl_fallbacks : int;
  dl_copies : int;
  dl_cachers : int;
  dl_inval_sent : int;
  dl_inval_skipped : int;
  dl_check : bool;
}

let poke_proc = "poke_field"

(* Update-heavy single-field workload: the ground owns one large flat
   struct (a 32x32 matrix tile, 8 KiB); a worker overwrites one element
   per call, so each reply's modified data set is the whole tile when
   shipped full versus a few dozen bytes as a dirty-range delta. Two
   further spaces join the session without ever caching ground data,
   separating the close's invalidation multicast (every participant)
   from the targeted unicast (the one caching space). *)
let run_field_update ?(delta = false) ?(pokes = 24) ?(idle_peers = 2) () =
  let strategy = Strategy.smart ~closure_size:16384 ~delta () in
  let cluster = Cluster.create () in
  let trace = Trace.create () in
  Transport.set_trace (Cluster.transport cluster) (Some trace);
  let ground = Cluster.add_node cluster ~site:1 ~strategy () in
  let worker = Cluster.add_node cluster ~site:2 ~strategy () in
  let idlers =
    List.init idle_peers (fun i ->
        Cluster.add_node cluster ~site:(3 + i) ~strategy ())
  in
  Matrix.register_types cluster;
  Node.register worker poke_proc (fun node args ->
      match args with
      | [ gridv; rowv; colv; v ] ->
        Matrix.set node (Access.of_value gridv) ~row:(Value.to_int rowv)
          ~col:(Value.to_int colv) (Value.to_float v);
        []
      | _ -> invalid_arg (poke_proc ^ ": expected (grid, row, col, v)"));
  List.iter (fun n -> Node.register n "ping" (fun _ _ -> [])) idlers;
  let grid = Matrix.create ground ~tile_rows:1 ~tile_cols:1 in
  let edge = Matrix.tile_edge in
  let cell i = (i mod edge, i * 7 mod edge) in
  Node.begin_session ground;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  List.iter
    (fun n -> ignore (Node.call ground ~dst:(Node.id n) "ping" []))
    idlers;
  for i = 1 to pokes do
    let row, col = cell i in
    ignore
      (Node.call ground ~dst:(Node.id worker) poke_proc
         [
           Access.to_value grid; Value.int row; Value.int col;
           Value.float (float_of_int i);
         ])
  done;
  let cache_pages = Cache.used_pages (Node.cache worker) in
  Node.end_session ground;
  (* snapshot after the close so the write-back and invalidation phase
     is attributed to the run *)
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let d = Stats.diff s1 s0 in
  (* the home must observe exactly the last poke landing on each cell *)
  let expected = Hashtbl.create 64 in
  for i = 1 to pokes do
    Hashtbl.replace expected (cell i) (float_of_int i)
  done;
  let check =
    Hashtbl.fold
      (fun (row, col) v ok -> ok && Matrix.get ground grid ~row ~col = v)
      expected true
  in
  let home = Space_id.to_string (Node.id ground) in
  let copy_dsts = Hashtbl.create 4 in
  let copies = ref 0 and inval_sent = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Copy _ ->
        incr copies;
        if e.Trace.dst <> home then Hashtbl.replace copy_dsts e.Trace.dst ()
      | Trace.Inval_sent _ -> incr inval_sent
      | _ -> ())
    (Trace.events trace);
  {
    dl_run =
      {
        seconds = t1 -. t0;
        callbacks = d.Stats.callbacks;
        messages = d.Stats.messages;
        bytes = d.Stats.bytes;
        faults = d.Stats.faults;
        visited = pokes;
        cache_pages;
      };
    dl_wb_bytes = d.Stats.writeback_bytes;
    dl_saved = d.Stats.delta_bytes_saved;
    dl_fallbacks = d.Stats.full_fallbacks;
    dl_copies = !copies;
    dl_cachers = Hashtbl.length copy_dsts;
    dl_inval_sent = !inval_sent;
    dl_inval_skipped = d.Stats.invalidations_skipped;
    dl_check = check;
  }

(* --- delta on/off across the Fig. 4 strategies --- *)

type delta_cell = {
  dc_run : run;
  dc_wb_bytes : int;
  dc_saved : int;
  dc_fallbacks : int;
}

type delta_fig4_row = {
  dm_method : method_kind;
  dm_off : delta_cell;
  dm_on : delta_cell;
}

(* The Fig. 4 tree search in its updating variant (every visited node's
   data field is overwritten), measured through the session close so the
   coherency traffic counts. Tree nodes are small, so this bounds the
   delta win from below; [run_field_update] bounds it from above. *)
let run_update_search ~strategy ~depth ~ratio =
  let cluster = Cluster.create () in
  let caller = Cluster.add_node cluster ~site:1 ~strategy () in
  let callee = Cluster.add_node cluster ~site:2 ~strategy () in
  Tree.register_types cluster;
  let root = Tree.build caller ~depth in
  Node.register callee search_proc (fun node args ->
      match args with
      | [ rootv; limitv ] ->
        let visited, _ =
          Tree.visit_update node (Access.of_value rootv)
            ~limit:(Value.to_int limitv)
        in
        [ Value.int visited ]
      | _ -> invalid_arg (search_proc ^ ": expected (root, limit)"));
  let total = Tree.nodes_of_depth depth in
  let limit = int_of_float (Float.round (ratio *. float_of_int total)) in
  Node.begin_session caller;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let visited =
    match
      Node.call caller ~dst:(Node.id callee) search_proc
        [ Access.to_value root; Value.int limit ]
    with
    | [ v ] -> Value.to_int v
    | _ -> failwith (search_proc ^ ": bad arity")
  in
  let cache_pages = Cache.used_pages (Node.cache callee) in
  Node.end_session caller;
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  let d = Stats.diff s1 s0 in
  {
    dc_run =
      {
        seconds = t1 -. t0;
        callbacks = d.Stats.callbacks;
        messages = d.Stats.messages;
        bytes = d.Stats.bytes;
        faults = d.Stats.faults;
        visited;
        cache_pages;
      };
    dc_wb_bytes = d.Stats.writeback_bytes;
    dc_saved = d.Stats.delta_bytes_saved;
    dc_fallbacks = d.Stats.full_fallbacks;
  }

let delta_fig4 ?(depth = 12) ?(ratio = 0.5) ?(closure = 8192) () =
  List.map
    (fun m ->
      let base = strategy_of_method m in
      {
        dm_method = m;
        dm_off = run_update_search ~strategy:base ~depth ~ratio;
        dm_on =
          run_update_search
            ~strategy:{ base with Strategy.delta_coherency = true }
            ~depth ~ratio;
      })
    [ Fully_eager; Fully_lazy; Proposed closure ]

let pp_delta ppf (field : delta_run list) (rows : delta_fig4_row list) =
  Format.fprintf ppf
    "@[<v>DELTA — single-field updates on an 8 KiB struct (24 pokes)@,";
  Format.fprintf ppf "%8s %12s %10s %10s %8s %8s %8s %8s@," "mode" "wb-bytes"
    "saved" "fallback" "copies" "inval" "spared" "check";
  List.iteri
    (fun i r ->
      Format.fprintf ppf "%8s %12d %10d %10d %8d %8d %8d %8s@,"
        (if i = 0 then "off" else "on")
        r.dl_wb_bytes r.dl_saved r.dl_fallbacks r.dl_copies r.dl_inval_sent
        r.dl_inval_skipped
        (if r.dl_check then "ok" else "FAIL"))
    field;
  Format.fprintf ppf
    "@,Fig. 4 strategies, updating search, delta off/on (write-back wire \
     bytes)@,";
  Format.fprintf ppf "%16s %12s %12s %10s %10s@," "method" "off-bytes"
    "on-bytes" "saved" "fallback";
  List.iter
    (fun { dm_method; dm_off; dm_on } ->
      Format.fprintf ppf "%16s %12d %12d %10d %10d@," (method_name dm_method)
        dm_off.dc_wb_bytes dm_on.dc_wb_bytes dm_on.dc_saved dm_on.dc_fallbacks)
    rows;
  Format.fprintf ppf "@]"

(* --- traversal offloading (srpc-offload, docs/OFFLOAD.md) ---

   The dual of closure shipping: instead of moving the tree to the
   computation, ship the traversal plan to the tree's home. The reuse
   count is the axis that separates the transfer modes — a one-shot
   traversal pays a whole closure (or a fault storm) for data it reads
   once, while a session that walks the same structure K times amortizes
   the one-time fetch and should keep the data local. *)

type offload_run = {
  of_seconds : float;
  of_messages : int;
  of_bytes : int;
  of_offload_calls : int;
  of_result : int;  (** the traversal's sum — must agree across modes *)
}

type offload_row = {
  of_repeats : int;
  of_eager : offload_run;  (** eager closure ships the tree, walks local *)
  of_lazy : offload_run;  (** lazy faulting, walks local *)
  of_always : offload_run;  (** every traversal shipped to the home *)
}

let give_root_proc = "give_root"

let run_offload_point ~strategy ~depth ~repeats () =
  let cluster = Cluster.create () in
  let client = Cluster.add_node cluster ~site:1 ~strategy () in
  let home = Cluster.add_node cluster ~site:2 ~strategy () in
  Tree.register_types cluster;
  let root = Tree.build home ~depth in
  Node.register home give_root_proc (fun _node _args -> [ Access.to_value root ]);
  let plan =
    Tree.plan ~op:Srpc_core.Offload.Op_sum
      ~hop_bound:(Tree.nodes_of_depth depth) ()
  in
  Node.begin_session client;
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  let rootp =
    match Node.call client ~dst:(Node.id home) give_root_proc [] with
    | [ v ] -> Access.of_value v
    | _ -> failwith (give_root_proc ^ ": bad arity")
  in
  let result = ref 0 in
  for _ = 1 to repeats do
    match Node.offload client ~root:rootp.Access.addr plan with
    | [ s ] -> result := s
    | _ -> failwith "offload point: bad result arity"
  done;
  let t1 = Cluster.now cluster in
  let s1 = Cluster.snapshot cluster in
  Node.end_session client;
  let d = Stats.diff s1 s0 in
  {
    of_seconds = t1 -. t0;
    of_messages = d.Stats.messages;
    of_bytes = d.Stats.bytes;
    of_offload_calls = d.Stats.offload_calls;
    of_result = !result;
  }

let default_offload_repeats = [ 1; 2; 4; 8; 16; 32 ]

let offload_sweep ?(depth = 10) ?(repeat_points = default_offload_repeats) () =
  let always =
    { Strategy.fully_lazy with Strategy.offload = Strategy.Offload_always }
  in
  List.map
    (fun repeats ->
      {
        of_repeats = repeats;
        of_eager =
          run_offload_point ~strategy:Strategy.fully_eager ~depth ~repeats ();
        of_lazy =
          run_offload_point ~strategy:Strategy.fully_lazy ~depth ~repeats ();
        of_always = run_offload_point ~strategy:always ~depth ~repeats ();
      })
    repeat_points

type offload_adaptive_point = {
  oa_repeats : int;
  oa_run : offload_run;  (** whole sweep: all sessions, learner in charge *)
  oa_choice : string;  (** {!Srpc_policy.Engine.offload_choice} at the end *)
}

(* Long-haul link for the adaptive sweep: real per-frame latency, and a
   pipe where shipping the whole closure costs a handful of round trips.
   On the paper's thin 10 Mbps LAN the per-byte cost dominates so
   completely that offloading wins at every reuse count; on this link
   the reuse count K genuinely decides — a one-shot traversal should
   offload (one round trip beats shipping the tree), while a session
   that walks the same tree many times amortizes the one-time closure
   and should keep the walk local. *)
let offload_link =
  {
    Cost_model.message_latency = 1.0e-3;
    bandwidth = 6.0e6;
    per_byte_cpu = 1.0e-8;
    fault_overhead = 3.0e-5;
    local_touch = 1.0e-6;
  }

(* Session-granular learning: the two-arm learner picks the transfer
   mode for each session up front (the session is the natural decision
   grain — a local fetch only amortizes across the traversals of the
   session that paid for it, because the close's invalidation empties
   the client's cache). Per-traversal seconds feed the chosen arm. *)
let offload_adaptive ?(depth = 10) ?(sessions = 24) ?(link_cost = offload_link)
    ~repeats () =
  let policy = Srpc_policy.Engine.create () in
  let local = Strategy.fully_eager in
  let remote =
    { Strategy.fully_lazy with Strategy.offload = Strategy.Offload_always }
  in
  let cluster = Cluster.create () in
  let walker_local = Cluster.add_node cluster ~site:1 ~strategy:local () in
  let home = Cluster.add_node cluster ~site:2 () in
  let walker_remote = Cluster.add_node cluster ~site:3 ~strategy:remote () in
  let tr = Cluster.transport cluster in
  let h = Space_id.to_string (Node.id home) in
  List.iter
    (fun w ->
      let w = Space_id.to_string (Node.id w) in
      Transport.set_link_cost tr ~src:w ~dst:h link_cost;
      Transport.set_link_cost tr ~src:h ~dst:w link_cost)
    [ walker_local; walker_remote ];
  Tree.register_types cluster;
  let root = Tree.build home ~depth in
  Node.register home give_root_proc (fun _node _args -> [ Access.to_value root ]);
  let plan =
    Tree.plan ~op:Srpc_core.Offload.Op_sum
      ~hop_bound:(Tree.nodes_of_depth depth) ()
  in
  let result = ref 0 in
  let s0 = Cluster.snapshot cluster in
  let t0 = Cluster.now cluster in
  for _ = 1 to sessions do
    let offloaded =
      Srpc_policy.Engine.choose_offload policy ~ty:Tree.type_name
    in
    let client = if offloaded then walker_remote else walker_local in
    let st0 = Cluster.now cluster in
    Node.begin_session client;
    let rootp =
      match Node.call client ~dst:(Node.id home) give_root_proc [] with
      | [ v ] -> Access.of_value v
      | _ -> failwith (give_root_proc ^ ": bad arity")
    in
    for _ = 1 to repeats do
      match Node.offload client ~root:rootp.Access.addr plan with
      | [ s ] -> result := s
      | _ -> failwith "offload adaptive: bad result arity"
    done;
    Node.end_session client;
    Srpc_policy.Engine.offload_feedback policy ~ty:Tree.type_name ~offloaded
      ~seconds:((Cluster.now cluster -. st0) /. float_of_int repeats)
  done;
  let t1 = Cluster.now cluster in
  let d = Stats.diff (Cluster.snapshot cluster) s0 in
  {
    oa_repeats = repeats;
    oa_run =
      {
        of_seconds = t1 -. t0;
        of_messages = d.Stats.messages;
        of_bytes = d.Stats.bytes;
        of_offload_calls = d.Stats.offload_calls;
        of_result = !result;
      };
    oa_choice = Srpc_policy.Engine.offload_choice policy ~ty:Tree.type_name;
  }

let offload_adaptive_sweep ?(depth = 10) ?(sessions = 24)
    ?(repeat_points = [ 1; 32 ]) () =
  List.map
    (fun repeats -> offload_adaptive ~depth ~sessions ~repeats ())
    repeat_points

let pp_offload ppf (rows, adaptive) =
  Format.fprintf ppf
    "@[<v>OFFLOAD — traversal plans shipped to the data's home (tree sum, \
     one session, K repeats)@,";
  Format.fprintf ppf "%8s %12s %12s %12s %10s %10s@," "repeats" "eager-bytes"
    "lazy-bytes" "off-bytes" "off-calls" "off-time";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8d %12d %12d %12d %10d %9.4fs@," r.of_repeats
        r.of_eager.of_bytes r.of_lazy.of_bytes r.of_always.of_bytes
        r.of_always.of_offload_calls r.of_always.of_seconds)
    rows;
  Format.fprintf ppf
    "@,adaptive (session-granular two-arm learner, %d sessions each):@,"
    (match adaptive with [] -> 0 | _ -> List.length adaptive);
  Format.fprintf ppf "%8s %12s %10s %12s@," "repeats" "bytes" "off-calls"
    "choice";
  List.iter
    (fun p ->
      Format.fprintf ppf "%8d %12d %10d %12s@," p.oa_repeats p.oa_run.of_bytes
        p.oa_run.of_offload_calls p.oa_choice)
    adaptive;
  Format.fprintf ppf "@]"

open Srpc_core
open Srpc_types

let type_name = "tnode"

let register_types cluster =
  Cluster.register_type cluster type_name
    (Type_desc.Struct
       [
         ("left", Type_desc.ptr type_name);
         ("right", Type_desc.ptr type_name);
         ("data", Type_desc.i64);
       ])

let nodes_of_depth d = (1 lsl d) - 1

let build node ~depth =
  if depth <= 0 then Access.null ~ty:type_name
  else begin
    let counter = ref 0 in
    (* Build iteratively on an explicit work list: at depth 16+ an OCaml
       recursion would be fine, but allocation order should be preorder
       so that data fields match preorder numbering. *)
    let rec grow level =
      let p = Access.ptr ~ty:type_name (Node.malloc node ~ty:type_name) in
      Access.set_i64 node p ~field:"data" (Int64.of_int !counter);
      incr counter;
      if level > 1 then begin
        Access.set_ptr node p ~field:"left" (grow (level - 1));
        Access.set_ptr node p ~field:"right" (grow (level - 1))
      end;
      p
    in
    grow depth
  end

let visit_gen ~update node root ~limit =
  let visited = ref 0 in
  let sum = ref 0 in
  let rec go p =
    if (not (Access.is_null p)) && !visited < limit then begin
      incr visited;
      let d = Access.get_int node p ~field:"data" in
      sum := !sum + d;
      if update then Access.set_int node p ~field:"data" (d + 1);
      go (Access.get_ptr node p ~field:"left");
      go (Access.get_ptr node p ~field:"right")
    end
  in
  go root;
  (!visited, !sum)

let visit = visit_gen ~update:false
let visit_update = visit_gen ~update:true

let data_list node root =
  let vals = ref [] in
  let rec go p =
    if not (Access.is_null p) then begin
      vals := Access.get_int node p ~field:"data" :: !vals;
      go (Access.get_ptr node p ~field:"left");
      go (Access.get_ptr node p ~field:"right")
    end
  in
  go root;
  List.rev !vals

let nth_preorder node root k =
  let count = ref (-1) in
  let found = ref None in
  let rec go p =
    if (not (Access.is_null p)) && !found = None then begin
      incr count;
      if !count = k then found := Some p
      else begin
        go (Access.get_ptr node p ~field:"left");
        go (Access.get_ptr node p ~field:"right")
      end
    end
  in
  go root;
  match !found with Some p -> p | None -> raise Not_found

let descend node root ~path =
  let rec go p level count sum =
    if Access.is_null p then (count, sum)
    else
      let d = Access.get_int node p ~field:"data" in
      let branch = if (path lsr level) land 1 = 0 then "left" else "right" in
      go (Access.get_ptr node p ~field:branch) (level + 1) (count + 1) (sum + d)
  in
  go root 0 0 0

let depth_of node root =
  let rec go p acc =
    if Access.is_null p then acc
    else go (Access.get_ptr node p ~field:"left") (acc + 1)
  in
  go root 0

let count node root =
  let rec go p acc =
    if Access.is_null p then acc
    else
      let acc = go (Access.get_ptr node p ~field:"left") (acc + 1) in
      go (Access.get_ptr node p ~field:"right") acc
  in
  go root 0

let free node root =
  let rec go p =
    if not (Access.is_null p) then begin
      go (Access.get_ptr node p ~field:"left");
      go (Access.get_ptr node p ~field:"right");
      Node.extended_free node p.Access.addr
    end
  in
  go root

(* The tree shape as a traversal plan: preorder over [left] then
   [right], reading [data] — the same walk order as [visit]. *)
let plan ?(op = Offload.Op_visit) ~hop_bound () =
  {
    Offload.root_ty = type_name;
    hops = [ "left"; "right" ];
    value_field = "data";
    op;
    hop_bound;
  }

(** Singly linked list workload — the recursive structure Sun's rpcgen
    passes eagerly (paper, section 2.1); here it exercises pointer
    chains whose closure is purely sequential. *)

open Srpc_core

(** Registered type name, ["lnode"]: [{ next : lnode*; value : i64 }]. *)
val type_name : string

val register_types : Cluster.t -> unit

(** [build node values] creates a list holding [values] in order and
    returns its head (null for the empty list). *)
val build : Node.t -> int list -> Access.ptr

(** [to_list node head] reads the list back. *)
val to_list : Node.t -> Access.ptr -> int list

(** [sum node head] is the sum of the values. *)
val sum : Node.t -> Access.ptr -> int

(** [nth node head i] is a pointer to the [i]-th cell.
    @raise Not_found when the list is shorter. *)
val nth : Node.t -> Access.ptr -> int -> Access.ptr

(** [map_in_place node head f] rewrites every value through [f]. *)
val map_in_place : Node.t -> Access.ptr -> (int -> int) -> unit

(** [append node head ~home values] extends the list in place with cells
    allocated in address space [home] via [extended_malloc]; returns the
    (possibly new) head. *)
val append : Node.t -> Access.ptr -> home:Srpc_memory.Space_id.t -> int list -> Access.ptr

(** [length node head] is the number of cells. *)
val length : Node.t -> Access.ptr -> int

(** [plan ?op ~hop_bound ()] is the list shape as an offloadable
    traversal plan (follow [next], read [value]); [op] defaults to
    {!Offload.Op_sum}. See docs/OFFLOAD.md. *)
val plan : ?op:Offload.op -> hop_bound:int -> unit -> Offload.plan

(** [free node head] releases every cell with [extended_free] (reading
    each [next] field before its cell is released). *)
val free : Node.t -> Access.ptr -> unit

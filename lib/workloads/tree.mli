(** The paper's experimental subject: a complete binary tree whose nodes
    hold "two 4-byte pointers and 8-byte data" (section 4.1) — 16 bytes
    per node on the 32-bit SPARC; the same declared type is 24 bytes on
    a 64-bit machine, which is exactly the heterogeneity the system
    handles. *)

open Srpc_core

(** Registered type name, ["tnode"]:
    [{ left : tnode*; right : tnode*; data : i64 }]. *)
val type_name : string

(** [register_types cluster] publishes the node type on the name
    server. Idempotent. *)
val register_types : Cluster.t -> unit

(** [nodes_of_depth d] is [2^d - 1], the size of a complete tree of
    depth [d] (the paper's 32 767 nodes is depth 15). *)
val nodes_of_depth : int -> int

(** [build node ~depth] creates a complete binary tree in [node]'s own
    heap, numbering data fields in depth-first preorder, and returns the
    root. *)
val build : Node.t -> depth:int -> Access.ptr

(** [visit node root ~limit] walks the tree depth-first (preorder)
    through the access layer, reading each visited node's data field,
    stopping after [limit] nodes. Returns (visited count, sum of data
    fields). *)
val visit : Node.t -> Access.ptr -> limit:int -> int * int

(** [visit_update node root ~limit] is [visit] but also increments each
    visited node's data field — the paper's Fig. 7 updated case, with
    the same access pattern as the not-updated case. *)
val visit_update : Node.t -> Access.ptr -> limit:int -> int * int

(** [data_list node root] reads every data field in depth-first preorder
    — the observable final state the srpc-check oracle compares. *)
val data_list : Node.t -> Access.ptr -> int list

(** [nth_preorder node root k] is a pointer to the [k]-th node in
    preorder. @raise Not_found when the tree is smaller. *)
val nth_preorder : Node.t -> Access.ptr -> int -> Access.ptr

(** [descend node root ~path] walks one root-to-leaf path, choosing left
    or right at level [l] by bit [l] of [path]; returns the number of
    nodes on the path and the sum of their data fields. *)
val descend : Node.t -> Access.ptr -> path:int -> int * int

(** [depth_of node root] measures the depth by following left
    children. *)
val depth_of : Node.t -> Access.ptr -> int

(** [count node root] walks the whole tree and counts nodes. *)
val count : Node.t -> Access.ptr -> int

(** [free node root] releases every node with [extended_free]. *)
val free : Node.t -> Access.ptr -> unit

(** [plan ?op ~hop_bound ()] is the tree shape as an offloadable
    traversal plan (preorder over [left]/[right], reading [data] — the
    walk order of {!visit}); [op] defaults to {!Offload.Op_visit}. *)
val plan : ?op:Offload.op -> hop_bound:int -> unit -> Offload.plan

(** Harnesses regenerating the paper's evaluation (section 4), one entry
    per table/figure, plus the ablations of DESIGN.md.

    Every run builds a fresh two-site cluster (caller site 1 owns the
    data and is the ground thread; callee site 2 runs the remote
    procedure), exactly the paper's setup. Times are simulated seconds
    under {!Srpc_simnet.Cost_model.sparc_10mbps}; counts are measured
    from the real protocol frames. *)

open Srpc_core
open Srpc_memory

(** Aggregate measurements of one experimental run. *)
type run = {
  seconds : float;  (** simulated time per RPC (averaged over repeats) *)
  callbacks : int;  (** fetch round-trips *)
  messages : int;
  bytes : int;  (** wire payload bytes *)
  faults : int;
  visited : int;  (** nodes the callee actually visited *)
  cache_pages : int;  (** callee cache working set, pages *)
}

(** The three compared methods of section 4.1. *)
type method_kind = Fully_eager | Fully_lazy | Proposed of int

val method_name : method_kind -> string
val strategy_of_method : method_kind -> Strategy.t

(** [run_tree_search ~strategy ~depth ~ratio ()] is one point of the
    Fig. 4 experiment: a [2^depth - 1]-node tree on the caller, one RPC
    visiting [ratio] of the nodes depth-first on the callee.
    [update] makes the callee increment each visited node (Fig. 7);
    [repeats] issues that many identical calls inside one session
    (Fig. 6); [arches] selects caller/callee architectures;
    [link_cost] replaces the default cost model on the caller-callee
    link (both directions) — e.g. a WAN; [fault_plan] installs a
    {!Srpc_simnet.Fault_plan} on the cluster's transport before the
    session (the retry envelope is then active, and the session may
    raise {!Srpc_core.Session.Session_aborted}). *)
val run_tree_search :
  ?update:bool ->
  ?repeats:int ->
  ?arches:Arch.t * Arch.t ->
  ?link_cost:Srpc_simnet.Cost_model.t ->
  ?page_size:int ->
  ?fault_plan:Srpc_simnet.Fault_plan.t ->
  strategy:Strategy.t ->
  depth:int ->
  ratio:float ->
  unit ->
  run

(** {1 Figures} *)

type fig4_row = {
  ratio : float;
  eager : run;
  lazy_ : run;
  proposed : run;
}

(** Fig. 4 (times) and Fig. 5 (callback counts) come from the same
    sweep. Defaults: depth 15 (32 767 nodes), ratios 0.0, 0.1, …, 1.0,
    closure 8 192 B. *)
val fig4 : ?depth:int -> ?ratios:float list -> ?closure:int -> unit -> fig4_row list

type fig6_row = { closure_bytes : int; by_depth : (int * run) list }

(** Fig. 6: closure-size sweep with 10 repeated searches, for trees of
    the given depths (paper: 16 383 / 32 767 / 65 535 nodes = depths
    14/15/16). *)
val fig6 :
  ?depths:int list -> ?closures:int list -> ?repeats:int -> unit -> fig6_row list

(** Fig. 6 under the descent reading: each search is one pseudo-random
    root-to-leaf path, 10 per call. Sparse consumption makes {e large}
    closures pay for unused breadth — the other side of the paper's
    dip (small closures lose under the full-traversal reading above). *)
val fig6_descents :
  ?depths:int list -> ?closures:int list -> ?paths:int -> unit -> fig6_row list

type fig7_row = { ratio7 : float; updated : run; not_updated : run }

(** Fig. 7: update-ratio sweep at closure 8 192 B. *)
val fig7 : ?depth:int -> ?ratios:float list -> ?closure:int -> unit -> fig7_row list

(** {1 Ablations} *)

type alloc_row = { grouping : Strategy.alloc_grouping; merge : run }

(** A1: cache-allocation strategy under a two-origin interleaved walk
    (section 6's open problem). *)
val ablation_alloc_strategy : ?depth:int -> unit -> alloc_row list

type shape_row = { order : Strategy.closure_order; partial : run }

(** A2: closure traversal order under a partial depth-first consumer. *)
val ablation_closure_shape :
  ?depth:int -> ?ratio:float -> ?closure:int -> unit -> shape_row list

type batching_row = { batched : bool; alloc_run : run }

(** A3: batched vs immediate remote allocation/release (section 3.5). *)
val ablation_alloc_batching : ?cells:int -> unit -> batching_row list

type grain_row = { grain : Strategy.writeback_grain; sparse_update : run }

(** A4: write-back granularity under sparse updates (1 node in
    [stride]). *)
val ablation_writeback_grain :
  ?depth:int -> ?stride:int -> unit -> grain_row list

type page_row = { page_bytes : int; partial_search : run }

(** A6: the page is the system's transfer granularity (a fault moves
    every datum allocated to the faulting page), so the simulated page
    size is itself a design knob: small pages approach per-datum
    laziness, large pages approach bulk transfer. *)
val ablation_page_size :
  ?depth:int -> ?ratio:float -> ?closure:int -> ?page_sizes:int list -> unit ->
  page_row list

val pp_page_rows : Format.formatter -> page_row list -> unit

type hint_row = { hinted : bool; chain_walk : run }

(** A5: programmer closure hints (paper, section 6). A chain of cells
    each carrying a pointer to a bulky payload; the consumer walks the
    chain without touching payloads. The hint prunes payload pointers
    from the prefetch closure. *)
val ablation_closure_hints : ?cells:int -> ?closure:int -> unit -> hint_row list

(** One A5 chain walk on its own (the building block of
    {!ablation_closure_hints}), for head-to-head comparisons. *)
val run_chain_walk : hinted:bool -> cells:int -> closure:int -> run

(** {1 Derived experiments} *)

(** [fig4_wan ()] re-runs the Fig. 4 sweep with the caller-callee link
    behind a WAN ([latency_factor] × the LAN latency, default 50): shows
    how the method ranking shifts when round-trips dominate. *)
val fig4_wan :
  ?depth:int -> ?ratios:float list -> ?closure:int -> ?latency_factor:float ->
  unit -> fig4_row list

type kv_row = { kv_method : method_kind; point : run; range : run; scan : run }

(** [kv_store ()] — an application-scale derived experiment: a B-tree
    key-value store owned by one site, queried remotely under the three
    methods with point lookups, a range count, and a full scan; shows
    which method suits which query shape. *)
val kv_store :
  ?keys:int -> ?points:int -> ?closure:int -> unit -> kv_row list

val pp_kv : Format.formatter -> kv_row list -> unit

type scale_row = { sites : int; relay : run }

(** [scaling ()] — sessions spanning 2..[max_sites] address spaces: the
    ground site's tree is passed down a chain of nested RPCs; the last
    site visits 30% and updates 10% of it, so the modified data set
    travels back through every frame. Shows how per-hop coherency
    traffic scales with session width. *)
val scaling : ?depth:int -> ?max_sites:int -> unit -> scale_row list

val pp_scaling : Format.formatter -> scale_row list -> unit

type manual_row = {
  m_ratio : float;
  smart_rpc : run;  (** the proposed method, transparent pointers *)
  manual_naive : run;
      (** hand-written caller-callee protocol, one callback per node
          (paper section 2: the lazy programming style) *)
  manual_subtree : run;
      (** hand-written protocol shipping subtree batches (section 2: "an
          experienced programmer might ... develop a caller-callee
          protocol to pass only the required portion of the tree") *)
}

(** [manual_comparison ()] pits the transparent system against the two
    hand-written protocols the paper's section 2 describes. Shows the
    transparency is (nearly) free. *)
val manual_comparison :
  ?depth:int -> ?ratios:float list -> ?closure:int -> unit -> manual_row list

val pp_manual : Format.formatter -> manual_row list -> unit

(** {1 Faults (srpc-faults)} *)

(** The price of the retry envelope when nothing ever fails: the same
    Fig. 4 point with no fault plan and with an all-zero plan installed
    (sequence-number framing, duplicate-reply cache, staged all-or-
    nothing close — but not a single injected fault). *)
type faults_overhead = {
  fo_plain : run;  (** no fault plan: today's exact wire behavior *)
  fo_envelope : run;  (** zero-fault plan: retry envelope active, no faults *)
  fo_ratio : float;  (** envelope seconds / plain seconds *)
}

val measure_faults_overhead :
  ?depth:int -> ?ratio:float -> ?closure:int -> unit -> faults_overhead

(** One (drop rate, strategy) cell of the chaos sweep. *)
type faults_summary = {
  f_drop : float;
  f_strategy : string;
  f_sessions : int;
  f_completed : int;
  f_aborted : int;
  f_wrong : int;  (** completed sessions whose result differed *)
  f_retries : int;
  f_timeouts : int;
  f_duplicates : int;
  f_seconds : float;  (** mean simulated seconds per completed session *)
}

val default_fault_drops : float list

(** [faults_sweep ()] runs the seeded chaos matrix: for every drop rate
    (default 0, 1%, 10%) and every strategy (smart, lazy, eager) one
    cluster runs [sessions] tree searches under injected frame drops and
    duplicates. Every session must either complete with the fault-free
    reference result or raise [Session_aborted] with the cluster still
    usable — [f_wrong] counts the sessions that did neither and must be
    zero. *)
val faults_sweep :
  ?depth:int ->
  ?ratio:float ->
  ?sessions:int ->
  ?seed:int ->
  ?drops:float list ->
  unit ->
  faults_summary list

val pp_faults :
  Format.formatter -> faults_overhead * faults_summary list -> unit

(** {1 Adaptive policy (srpc-adapt)} *)

type adaptive_curve = {
  a_ratio : float;
  a_sessions : run list;  (** one entry per session, in order *)
  a_budgets : (string * int) list;
      (** per-type budgets after the last session *)
}

(** [run_adaptive_tree_search ~ratio ()] is the Fig. 4 tree search run
    [sessions] times over one cluster that shares a fresh
    {!Srpc_policy.Engine}: every session is profiled and the controller
    revises the per-type closure budgets in between, starting from the
    default 8 192 B with no tuning. The per-session runs are the
    convergence curve. *)
val run_adaptive_tree_search :
  ?depth:int ->
  ?sessions:int ->
  ?config:Srpc_policy.Controller.config ->
  ratio:float ->
  unit ->
  adaptive_curve

type adaptive_fig4_row = {
  af_ratio : float;
  af_eager : run;
  af_lazy : run;
  af_smart : run;
  af_adaptive : adaptive_curve;
}

(** The Fig. 4 sweep with a fourth, adaptive competitor: at each ratio
    the three statics run once and the adaptive policy runs [sessions]
    sessions from cold. *)
val adaptive_fig4 :
  ?depth:int ->
  ?ratios:float list ->
  ?closure:int ->
  ?sessions:int ->
  unit ->
  adaptive_fig4_row list

type adaptive_chain = {
  ac_sessions : run list;
  ac_hint : Hints.rule option;
      (** the machine-derived closure-shape hint for the cell type after
          the last session (the A5 hint, learned instead of written) *)
  ac_budgets : (string * int) list;
}

(** The A5 hot/cold chain walk (cells hot, payload blobs cold) under the
    adaptive policy: the controller must learn to follow [next] and
    prune [blob] from edge touch rates alone. *)
val run_adaptive_chain_walk :
  ?cells:int ->
  ?sessions:int ->
  ?config:Srpc_policy.Controller.config ->
  unit ->
  adaptive_chain

val pp_adaptive_fig4 : Format.formatter -> adaptive_fig4_row list -> unit

(** {1 Rendering} *)

val pp_fig4 : Format.formatter -> fig4_row list -> unit
val pp_fig5 : Format.formatter -> fig4_row list -> unit
val pp_fig6 : Format.formatter -> fig6_row list -> unit
val pp_fig7 : Format.formatter -> fig7_row list -> unit
val pp_ablations : Format.formatter ->
  alloc_row list * shape_row list * batching_row list * grain_row list -> unit

val pp_hint_rows : Format.formatter -> hint_row list -> unit

(** Table 1: run the paper's two-pointer example and render the callee's
    data allocation table. *)
val table1 : Format.formatter -> unit -> unit

(** {1 Delta coherency (srpc-delta)} *)

type delta_run = {
  dl_run : run;
  dl_wb_bytes : int;
      (** wire bytes of modified-data-set payload, full items and deltas *)
  dl_saved : int;  (** bytes the delta encoding avoided *)
  dl_fallbacks : int;  (** delta-eligible entries shipped full anyway *)
  dl_copies : int;  (** [Trace.Copy] provenance notes recorded *)
  dl_cachers : int;
      (** distinct non-home spaces that received data copies — the
          targeted invalidation's expected fan-out *)
  dl_inval_sent : int;  (** [Trace.Inval_sent] notes at the close *)
  dl_inval_skipped : int;
      (** participants spared an invalidation by the copy directory *)
  dl_check : bool;
      (** the home observed every poked value after the close *)
}

(** [run_field_update ()] is the update-heavy workload the delta layer
    exists for: a worker overwrites one 8-byte field of the ground's
    8 KiB flat struct per call, [pokes] times, with [idle_peers] extra
    spaces joining the session but caching nothing. With [delta] off
    every reply ships the whole struct; with it on, a dirty-range
    delta. Measured through the session close. *)
val run_field_update :
  ?delta:bool -> ?pokes:int -> ?idle_peers:int -> unit -> delta_run

type delta_cell = {
  dc_run : run;
  dc_wb_bytes : int;
  dc_saved : int;
  dc_fallbacks : int;
}

type delta_fig4_row = {
  dm_method : method_kind;
  dm_off : delta_cell;
  dm_on : delta_cell;
}

(** The Fig. 4 strategies (fully eager, fully lazy, proposed) on the
    updating tree search, each with delta coherency off and on. Tree
    nodes are small, so this is the delta win's lower bound — the
    interesting number is that "on" never ships {e more} write-back
    bytes than "off". *)
val delta_fig4 :
  ?depth:int -> ?ratio:float -> ?closure:int -> unit -> delta_fig4_row list

val pp_delta : Format.formatter -> delta_run list -> delta_fig4_row list -> unit

(** {1 Offload (srpc-offload)}

    Traversal plans shipped to the data's home (docs/OFFLOAD.md). The
    sweep axis is the reuse count K: a session that walks a remote tree
    once should offload (an order of magnitude fewer wire bytes than an
    eager closure); a session that walks it K times amortizes the
    one-time fetch and should keep the walk local. *)

type offload_run = {
  of_seconds : float;
  of_messages : int;
  of_bytes : int;
  of_offload_calls : int;
  of_result : int;  (** the traversal's sum — must agree across modes *)
}

type offload_row = {
  of_repeats : int;
  of_eager : offload_run;  (** eager closure ships the tree, walks local *)
  of_lazy : offload_run;  (** lazy faulting, walks local *)
  of_always : offload_run;  (** every traversal shipped to the home *)
}

val default_offload_repeats : int list

(** [offload_sweep ()] measures one session of K tree-sum traversals
    per transfer mode at each repeat point. *)
val offload_sweep :
  ?depth:int -> ?repeat_points:int list -> unit -> offload_row list

type offload_adaptive_point = {
  oa_repeats : int;
  oa_run : offload_run;  (** whole sweep: all sessions, learner in charge *)
  oa_choice : string;  (** {!Srpc_policy.Engine.offload_choice} at the end *)
}

(** The long-haul link the adaptive sweep runs over: real per-frame
    latency, and a pipe where shipping the whole closure costs a
    handful of round trips — the regime where the reuse count genuinely
    decides between offloading and fetching. *)
val offload_link : Srpc_simnet.Cost_model.t

(** [offload_adaptive ~repeats ()] runs [sessions] sessions of
    [repeats] traversals each, letting the per-type two-arm learner
    pick each session's transfer mode and feeding back per-traversal
    seconds; reports the learner's converged verdict. *)
val offload_adaptive :
  ?depth:int ->
  ?sessions:int ->
  ?link_cost:Srpc_simnet.Cost_model.t ->
  repeats:int ->
  unit ->
  offload_adaptive_point

val offload_adaptive_sweep :
  ?depth:int ->
  ?sessions:int ->
  ?repeat_points:int list ->
  unit ->
  offload_adaptive_point list

val pp_offload :
  Format.formatter -> offload_row list * offload_adaptive_point list -> unit

exception Out_of_region of { requested : int; free : int }
exception Invalid_free of int

type t = {
  space : Address_space.t;
  base : int;
  limit : int;
  mutable free_list : (int * int) list;  (* (addr, size), sorted by addr *)
  live : (int, int) Hashtbl.t;  (* addr -> size *)
  mutable allocated_bytes : int;
}

let align = 8
let round_up n = (n + align - 1) land lnot (align - 1)

let create ~space ~base ~limit =
  if base <= 0 then invalid_arg "Allocator.create: base must be positive";
  if base mod align <> 0 then invalid_arg "Allocator.create: base misaligned";
  if limit <= base then invalid_arg "Allocator.create: empty region";
  {
    space;
    base;
    limit;
    free_list = [ (base, limit - base) ];
    live = Hashtbl.create 64;
    allocated_bytes = 0;
  }

let base t = t.base
let limit t = t.limit

let alloc t ~size =
  if size < 0 then invalid_arg "Allocator.alloc: negative size";
  let size = max align (round_up size) in
  let rec take = function
    | [] ->
      let free = List.fold_left (fun acc (_, s) -> acc + s) 0 t.free_list in
      raise (Out_of_region { requested = size; free })
    | (addr, bsize) :: rest when bsize >= size ->
      let remainder =
        if bsize > size then [ (addr + size, bsize - size) ] else []
      in
      (addr, remainder @ rest)
    | block :: rest ->
      let addr, rest' = take rest in
      (addr, block :: rest')
  in
  let addr, free_list = take t.free_list in
  t.free_list <- free_list;
  Hashtbl.replace t.live addr size;
  t.allocated_bytes <- t.allocated_bytes + size;
  Address_space.ensure_mapped t.space ~addr ~len:size ~prot:Prot.Read_write;
  Address_space.fill_zero_unchecked t.space ~addr ~len:size;
  addr

(* Insert a block into the sorted free list, coalescing with neighbours. *)
let rec insert addr size = function
  | [] -> [ (addr, size) ]
  | (a, s) :: rest when addr + size = a -> (addr, size + s) :: rest
  | (a, s) :: rest when a + s = addr -> insert a (s + size) rest
  | (a, s) :: rest when addr < a -> (addr, size) :: (a, s) :: rest
  | block :: rest -> block :: insert addr size rest

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> raise (Invalid_free addr)
  | Some size ->
    Hashtbl.remove t.live addr;
    t.allocated_bytes <- t.allocated_bytes - size;
    t.free_list <- insert addr size t.free_list

let block_size t addr = Hashtbl.find_opt t.live addr
let is_allocated t addr = Hashtbl.mem t.live addr

let find_containing t addr =
  match Hashtbl.find_opt t.live addr with
  | Some size -> Some (addr, size)
  | None ->
    Hashtbl.fold
      (fun base size acc ->
        match acc with
        | Some _ -> acc
        | None -> if addr >= base && addr < base + size then Some (base, size)
                  else None)
      t.live None
let allocated_bytes t = t.allocated_bytes
let free_bytes t = List.fold_left (fun acc (_, s) -> acc + s) 0 t.free_list
let live_blocks t = Hashtbl.length t.live
let iter_live t f = Hashtbl.iter f t.live

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let rec sorted_disjoint = function
    | [] | [ _ ] -> Ok ()
    | (a, s) :: ((a', _) :: _ as rest) ->
      if a + s > a' then Error (Printf.sprintf "overlap at 0x%x" a)
      else if a + s = a' then Error (Printf.sprintf "uncoalesced at 0x%x" a)
      else sorted_disjoint rest
  in
  let* () = sorted_disjoint t.free_list in
  let* () =
    if List.for_all (fun (a, s) -> a >= t.base && a + s <= t.limit) t.free_list
    then Ok ()
    else Error "free block outside region"
  in
  let overlap_live =
    Hashtbl.fold
      (fun addr size acc ->
        acc
        || List.exists
             (fun (a, s) -> addr < a + s && a < addr + size)
             t.free_list)
      t.live false
  in
  let* () = if overlap_live then Error "live block overlaps free list" else Ok () in
  let total = free_bytes t + t.allocated_bytes in
  if total = t.limit - t.base then Ok ()
  else Error (Printf.sprintf "accounting: %d <> %d" total (t.limit - t.base))

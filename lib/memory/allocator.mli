(** First-fit heap allocator over a region of a simulated address space.

    The paper assumes "all data referenced by long pointers are located in
    the heap area under the system control" (section 3.2); this is that
    heap. Block bookkeeping lives beside the space (as an allocator in a
    kernel-managed region would), so blocks have no in-memory headers and
    the data layout matches the declared type layout exactly. *)

type t

exception Out_of_region of { requested : int; free : int }
exception Invalid_free of int

(** [create ~space ~base ~limit] manages [base, limit) of [space]. Pages
    backing allocations are mapped [Read_write] on demand. [base] must be
    positive (address 0 is the null pointer) and 8-byte aligned. *)
val create : space:Address_space.t -> base:int -> limit:int -> t

val base : t -> int
val limit : t -> int

(** [alloc t ~size] returns the address of a fresh 8-byte-aligned block of
    at least [size] bytes, zero-filled.
    @raise Out_of_region when no free block fits. *)
val alloc : t -> size:int -> int

(** [free t addr] releases the block previously returned by [alloc].
    Adjacent free blocks are coalesced.
    @raise Invalid_free if [addr] is not a live allocation. *)
val free : t -> int -> unit

(** [block_size t addr] is the (rounded) size of the live block at [addr],
    if any. *)
val block_size : t -> int -> int option

val is_allocated : t -> int -> bool

(** [find_containing t addr] is the [(base, size)] of the live block
    whose region contains [addr] — exact-base lookups are O(1), interior
    addresses fall back to a scan of the live table. *)
val find_containing : t -> int -> (int * int) option

val allocated_bytes : t -> int
val free_bytes : t -> int
val live_blocks : t -> int

(** [iter_live t f] calls [f addr size] on every live block, in
    unspecified order. *)
val iter_live : t -> (int -> int -> unit) -> unit

(** Internal invariant check for tests: free list sorted, non-overlapping,
    coalesced, disjoint from live blocks, and sizes add up to the
    region. *)
val check_invariants : t -> (unit, string) result

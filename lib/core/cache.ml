open Srpc_memory

type entry = {
  mutable lp : Long_pointer.t;
  local_addr : int;
  size : int;
  pages : int list;
  mutable present : bool;
  mutable dirty : bool;
  mutable prefetched : bool;
  mutable touched : bool;
  mutable version : int;
  mutable shadow : string option;
  mutable shadow_version : int;
  mutable pins : int list;
      (* sessions that touched this entry (concurrent admission only;
         [] in single-session runs) *)
}

type cursor = { mutable page : int; mutable off : int }

type t = {
  space : Address_space.t;
  base : int;
  limit : int;
  mutable grouping : Strategy.alloc_grouping;
  mutable grain : Strategy.writeback_grain;
  by_lp : entry Long_pointer.Table.t;
  by_addr : (int, entry) Hashtbl.t;
  by_page : (int, entry list ref) Hashtbl.t;
  dirty_pages : (int, unit) Hashtbl.t;
  twins : (int, bytes) Hashtbl.t;
  cursors : (string, cursor) Hashtbl.t;
  free_slots : (string, (int * int list) list ref) Hashtbl.t;
      (** rounded size (+ scope) -> freed (addr, pages) slots available
          for reuse *)
  mutable next_page : int;
  mutable allocated_bytes : int;
  mutable scope : int option;
      (** concurrent admission: the session new entries are placed for.
          Fault handling is page-grained, so two sessions' entries must
          never share a page — the scope partitions the fill cursors and
          the free-slot pools. [None] (single-session mode) keeps the
          legacy placement byte-for-byte. *)
}

exception Region_full

let align = 8
let round_up n = (n + align - 1) land lnot (align - 1)

let create ~space ~base ~limit ~grouping ~grain =
  let psz = Address_space.page_size space in
  if base mod psz <> 0 || limit mod psz <> 0 then
    invalid_arg "Cache.create: region must be page-aligned";
  {
    space;
    base;
    limit;
    grouping;
    grain;
    by_lp = Long_pointer.Table.create 256;
    by_addr = Hashtbl.create 256;
    by_page = Hashtbl.create 64;
    dirty_pages = Hashtbl.create 16;
    twins = Hashtbl.create 16;
    cursors = Hashtbl.create 8;
    free_slots = Hashtbl.create 8;
    next_page = base / psz;
    allocated_bytes = 0;
    scope = None;
  }

let set_scope t scope = t.scope <- scope

let in_region t addr = addr >= t.base && addr < t.limit

let set_policy t ~grouping ~grain =
  if Hashtbl.length t.by_addr <> 0 then
    invalid_arg "Cache.set_policy: cache is not empty";
  t.grouping <- grouping;
  t.grain <- grain
let psz t = Address_space.page_size t.space

let fresh_pages t n =
  let first = t.next_page in
  if (first + n) * psz t > t.limit then raise Region_full;
  t.next_page <- first + n;
  first

let scoped t key =
  match t.scope with
  | None -> key
  | Some sid -> Printf.sprintf "%s/#%d" key sid

let grouping_key t (lp : Long_pointer.t) =
  scoped t
    (match t.grouping with
    | Strategy.By_origin -> Space_id.to_string lp.origin
    | Strategy.Sequential -> "*"
    | Strategy.By_type -> lp.ty
    | Strategy.Entry_per_page -> assert false (* handled separately *))

let take_free_slot t ~size =
  match Hashtbl.find_opt t.free_slots (scoped t (string_of_int (round_up size)))
  with
  | Some ({ contents = slot :: rest } as r) ->
    r := rest;
    Some slot
  | Some { contents = [] } | None -> None

let release_slot t ~addr ~size ~pages =
  let key = scoped t (string_of_int (round_up size)) in
  match Hashtbl.find_opt t.free_slots key with
  | Some r -> r := (addr, pages) :: !r
  | None -> Hashtbl.add t.free_slots key (ref [ (addr, pages) ])

(* Pick the slot address for a new entry and return (addr, pages). *)
let place t lp ~size =
  let psz = psz t in
  let pages_for first n = List.init n (fun i -> first + i) in
  match t.grouping with
  | Strategy.Entry_per_page ->
    let n = (size + psz - 1) / psz in
    let first = fresh_pages t (max n 1) in
    (first * psz, pages_for first (max n 1))
  | Strategy.By_origin | Strategy.Sequential | Strategy.By_type ->
    let key = grouping_key t lp in
    let cursor =
      match Hashtbl.find_opt t.cursors key with
      | Some c -> c
      | None ->
        let c = { page = -1; off = 0 } in
        Hashtbl.add t.cursors key c;
        c
    in
    if size > psz then begin
      (* Large object: spans fresh whole pages; the tail of the last page
         keeps filling for this key. *)
      let n = (size + psz - 1) / psz in
      let first = fresh_pages t n in
      cursor.page <- first + n - 1;
      cursor.off <- round_up (size - ((n - 1) * psz));
      if cursor.off >= psz then begin
        cursor.page <- -1;
        cursor.off <- 0
      end;
      (first * psz, pages_for first n)
    end
    else begin
      if cursor.page < 0 || psz - cursor.off < size then begin
        cursor.page <- fresh_pages t 1;
        cursor.off <- 0
      end;
      let addr = (cursor.page * psz) + cursor.off in
      cursor.off <- cursor.off + round_up size;
      if cursor.off >= psz then begin
        cursor.page <- -1;
        cursor.off <- 0
      end;
      (addr, [ addr / psz; (addr + size - 1) / psz ] |> List.sort_uniq compare)
    end

let entries_on_page t page =
  match Hashtbl.find_opt t.by_page page with Some r -> !r | None -> []

let is_page_dirty t ~page = Hashtbl.mem t.dirty_pages page

let refresh_protection t ~page =
  if Address_space.is_mapped t.space ~page then begin
    let entries = entries_on_page t page in
    let prot =
      if List.exists (fun e -> not e.present) entries then Prot.No_access
      else if is_page_dirty t ~page then Prot.Read_write
      else Prot.Read_only
    in
    Address_space.set_protection t.space ~page prot
  end

let allocate t lp ~size =
  if size <= 0 then invalid_arg "Cache.allocate: non-positive size";
  if Long_pointer.Table.mem t.by_lp lp then
    invalid_arg
      (Format.asprintf "Cache.allocate: %a already allocated" Long_pointer.pp lp);
  let local_addr, pages =
    match take_free_slot t ~size with Some slot -> slot | None -> place t lp ~size
  in
  let entry =
    {
      lp;
      local_addr;
      size;
      pages;
      present = false;
      dirty = false;
      prefetched = false;
      touched = false;
      version = 0;
      shadow = None;
      shadow_version = -1;
      pins = [];
    }
  in
  Long_pointer.Table.add t.by_lp lp entry;
  Hashtbl.replace t.by_addr local_addr entry;
  List.iter
    (fun page ->
      (match Hashtbl.find_opt t.by_page page with
      | Some r -> r := entry :: !r
      | None -> Hashtbl.add t.by_page page (ref [ entry ]));
      if not (Address_space.is_mapped t.space ~page) then
        Address_space.map t.space ~page ~prot:Prot.No_access;
      refresh_protection t ~page)
    pages;
  t.allocated_bytes <- t.allocated_bytes + round_up size;
  entry

let find_by_lp t lp = Long_pointer.Table.find_opt t.by_lp lp
let find_by_addr t addr = Hashtbl.find_opt t.by_addr addr

let find_containing t addr =
  match Hashtbl.find_opt t.by_addr addr with
  | Some _ as hit -> hit
  | None ->
    entries_on_page t (addr / psz t)
    |> List.find_opt (fun e ->
           addr >= e.local_addr && addr < e.local_addr + e.size)

let iter_entries t f =
  (* by_addr has exactly one binding per live entry *)
  Hashtbl.iter (fun _ e -> f e) t.by_addr

let entry_count t = Hashtbl.length t.by_addr

let mark_present t e =
  e.present <- true;
  List.iter (fun page -> refresh_protection t ~page) e.pages

let mark_page_dirty t ~page =
  if not (is_page_dirty t ~page) then begin
    if t.grain = Strategy.Twin_diff && not (Hashtbl.mem t.twins page) then begin
      let data =
        Address_space.read_unchecked t.space
          ~addr:(Address_space.page_base t.space page)
          ~len:(psz t)
      in
      Hashtbl.add t.twins page data
    end;
    Hashtbl.replace t.dirty_pages page ();
    refresh_protection t ~page
  end

let dirty_pages t =
  Hashtbl.fold (fun p () acc -> p :: acc) t.dirty_pages [] |> List.sort compare

(* Byte range of [e] that lies on [page], as (addr, len). *)
let entry_range_on_page t e page =
  let pb = Address_space.page_base t.space page in
  let start = max e.local_addr pb in
  let stop = min (e.local_addr + e.size) (pb + psz t) in
  (start, stop - start)

let entry_changed_vs_twin t e =
  List.exists
    (fun page ->
      match Hashtbl.find_opt t.twins page with
      | None -> false
      | Some twin ->
        let addr, len = entry_range_on_page t e page in
        if len <= 0 then false
        else
          let current = Address_space.read_unchecked t.space ~addr ~len in
          let off = addr - Address_space.page_base t.space page in
          not (Bytes.equal current (Bytes.sub twin off len)))
    e.pages

let pin e ~session =
  if not (List.mem session e.pins) then e.pins <- session :: e.pins

let pinned_by e ~session = List.mem session e.pins

let dirty_entries ?pinned_by:filter t =
  let keep e =
    match filter with None -> true | Some s -> List.mem s e.pins
  in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun page ->
      List.iter
        (fun e ->
          if e.present && keep e && not (Hashtbl.mem seen e.local_addr) then begin
            Hashtbl.add seen e.local_addr ();
            let ship =
              match t.grain with
              | Strategy.Page_grain -> true
              | Strategy.Twin_diff -> e.dirty || entry_changed_vs_twin t e
            in
            if ship then begin
              e.dirty <- true;
              out := e :: !out
            end
          end)
        (entries_on_page t page))
    (dirty_pages t);
  (* Entries dirtied without a page fault (installed writebacks, fresh
     remote allocations) may sit on pages never marked dirty. *)
  iter_entries t (fun e ->
      if e.dirty && e.present && keep e && not (Hashtbl.mem seen e.local_addr)
      then begin
        Hashtbl.add seen e.local_addr ();
        out := e :: !out
      end);
  !out

let clean_after_flush ?pinned_by:filter t =
  match filter with
  | None ->
    iter_entries t (fun e -> e.dirty <- false);
    Hashtbl.reset t.twins;
    let pages = dirty_pages t in
    Hashtbl.reset t.dirty_pages;
    List.iter (fun page -> refresh_protection t ~page) pages
  | Some s ->
    (* Session-scoped flush: only the session's entries are marked
       clean. Page dirty bits are left alone — a page may also carry
       another open session's page-grain dirtiness, which the entry
       flags cannot witness. The cost is conservative: the session's
       clean entries on a still-dirty page are re-shipped unchanged at
       its close (idempotent at the home, since footprints are
       disjoint). *)
    iter_entries t (fun e -> if List.mem s e.pins then e.dirty <- false)

let bump_version e = e.version <- e.version + 1

let sync_shadow e image =
  e.shadow <- Some image;
  e.shadow_version <- e.version

let shadow_base e =
  if e.shadow_version = e.version then e.shadow else None

let shadow_image e = e.shadow

(* Merge changed bytes closer than this into one range: each range costs
   8 bytes of framing plus padding, so tiny gaps are cheaper shipped. *)
let diff_gap = 8

let diff_ranges ~base ~now =
  let n = String.length base in
  if String.length now <> n then
    invalid_arg "Cache.diff_ranges: length mismatch";
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if base.[!i] <> now.[!i] then begin
      let start = !i in
      let stop = ref (!i + 1) in
      let last_diff = ref !i in
      let j = ref (!i + 1) in
      while !j < n && !j - !last_diff <= diff_gap do
        if base.[!j] <> now.[!j] then begin
          last_diff := !j;
          stop := !j + 1
        end;
        incr j
      done;
      out := (start, !stop) :: !out;
      i := !stop
    end
    else incr i
  done;
  List.rev_map
    (fun (start, stop) -> (start, String.sub now start (stop - start)))
    !out

let rebind t e lp =
  Long_pointer.Table.remove t.by_lp e.lp;
  e.lp <- lp;
  Long_pointer.Table.replace t.by_lp lp e

let remove t e =
  Long_pointer.Table.remove t.by_lp e.lp;
  Hashtbl.remove t.by_addr e.local_addr;
  List.iter
    (fun page ->
      match Hashtbl.find_opt t.by_page page with
      | None -> ()
      | Some r ->
        r := List.filter (fun e' -> e'.local_addr <> e.local_addr) !r;
        refresh_protection t ~page)
    e.pages;
  release_slot t ~addr:e.local_addr ~size:e.size ~pages:e.pages;
  t.allocated_bytes <- t.allocated_bytes - round_up e.size

let invalidate_session t ~session =
  (* Drop the closing session's cached copies without disturbing other
     open sessions' entries. Entries the session shares with nobody are
     removed (their slots recycle); shared pins are just released. *)
  let victims = ref [] in
  iter_entries t (fun e ->
      if List.mem session e.pins then begin
        e.pins <- List.filter (fun s -> s <> session) e.pins;
        if e.pins = [] then victims := e :: !victims
      end);
  List.iter (fun e -> remove t e) !victims;
  (* The session's fill cursors and recycled slots die with it: its
     pages must not be refilled by a later session (page-grain fault
     handling would sweep across the sessions sharing the page). *)
  let suffix = Printf.sprintf "/#%d" session in
  let ends_with s key =
    let n = String.length s and k = String.length key in
    k >= n && String.sub key (k - n) n = s
  in
  let doomed tbl =
    Hashtbl.fold (fun k _ acc -> if ends_with suffix k then k :: acc else acc)
      tbl []
  in
  List.iter (Hashtbl.remove t.cursors) (doomed t.cursors);
  List.iter (Hashtbl.remove t.free_slots) (doomed t.free_slots)

let invalidate t =
  Hashtbl.iter (fun page _ -> Address_space.unmap t.space ~page) t.by_page;
  Long_pointer.Table.reset t.by_lp;
  Hashtbl.reset t.by_addr;
  Hashtbl.reset t.by_page;
  Hashtbl.reset t.dirty_pages;
  Hashtbl.reset t.twins;
  Hashtbl.reset t.cursors;
  Hashtbl.reset t.free_slots;
  t.next_page <- t.base / psz t;
  t.allocated_bytes <- 0

let allocated_bytes t = t.allocated_bytes
let used_pages t = t.next_page - (t.base / psz t)

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.by_addr [] in
  (* by_lp <-> by_addr bijection *)
  let* () =
    if Long_pointer.Table.length t.by_lp <> List.length entries then
      err "by_lp has %d entries, by_addr %d"
        (Long_pointer.Table.length t.by_lp)
        (List.length entries)
    else Ok ()
  in
  let rec each = function
    | [] -> Ok ()
    | e :: rest ->
      let* () =
        match Long_pointer.Table.find_opt t.by_lp e.lp with
        | Some e' when e' == e -> Ok ()
        | _ -> err "entry 0x%x not reachable through its lp" e.local_addr
      in
      let* () =
        if in_region t e.local_addr && in_region t (e.local_addr + e.size - 1)
        then Ok ()
        else err "entry 0x%x outside region" e.local_addr
      in
      let first = e.local_addr / psz t and last = (e.local_addr + e.size - 1) / psz t in
      let* () =
        if e.pages = List.init (last - first + 1) (fun i -> first + i) then Ok ()
        else err "entry 0x%x has wrong page list" e.local_addr
      in
      let* () =
        if
          List.for_all
            (fun page ->
              List.exists (fun e' -> e' == e) (entries_on_page t page)
              && Address_space.is_mapped t.space ~page)
            e.pages
        then Ok ()
        else err "entry 0x%x missing from a page index" e.local_addr
      in
      each rest
  in
  let* () = each entries in
  (* no overlaps *)
  let sorted =
    List.sort (fun a b -> compare a.local_addr b.local_addr) entries
  in
  let rec disjoint = function
    | a :: (b :: _ as rest) ->
      if a.local_addr + round_up a.size > b.local_addr then
        err "entries 0x%x and 0x%x overlap" a.local_addr b.local_addr
      else disjoint rest
    | _ -> Ok ()
  in
  let* () = disjoint sorted in
  (* protection consistent with state *)
  let pages = Hashtbl.fold (fun p _ acc -> p :: acc) t.by_page [] in
  let rec prot_ok = function
    | [] -> Ok ()
    | page :: rest -> (
      match Address_space.protection t.space ~page with
      | None -> err "page %d in table but unmapped" page
      | Some prot ->
        let es = entries_on_page t page in
        let expect =
          if List.exists (fun e -> not e.present) es then Prot.No_access
          else if is_page_dirty t ~page then Prot.Read_write
          else Prot.Read_only
        in
        if es = [] || Prot.equal prot expect then prot_ok rest
        else
          err "page %d protection %s, expected %s" page (Prot.to_string prot)
            (Prot.to_string expect))
  in
  let* () = prot_ok pages in
  let total = List.fold_left (fun acc e -> acc + round_up e.size) 0 entries in
  if total = t.allocated_bytes then Ok ()
  else err "accounting: %d <> %d" total t.allocated_bytes

let pp_table ppf t =
  let pages =
    Hashtbl.fold (fun p _ acc -> p :: acc) t.by_page [] |> List.sort compare
  in
  Format.fprintf ppf "@[<v>page # | offset | long pointer@,";
  List.iter
    (fun page ->
      let entries =
        entries_on_page t page
        |> List.sort (fun a b -> compare a.local_addr b.local_addr)
      in
      List.iter
        (fun e ->
          let off = max 0 (e.local_addr - Address_space.page_base t.space page) in
          Format.fprintf ppf "%6d | %6d | %a@," page off Long_pointer.pp e.lp)
        entries)
    pages;
  Format.fprintf ppf "@]"

open Srpc_memory

type info = {
  id : int;
  ground : Space_id.t;
  mutable participants : Space_id.Set.t;
  mutable cachers : Space_id.Set.t;
}

type t = {
  mutable counter : int;
  mutable current : info option;
  opened : (int, info) Hashtbl.t;
  mutable concurrent : bool;
}

exception No_active_session
exception Session_already_active
exception Session_aborted of { session : int; reason : string }

let create () =
  { counter = 0; current = None; opened = Hashtbl.create 8; concurrent = false }

let set_concurrent t flag = t.concurrent <- flag
let concurrent_enabled t = t.concurrent
let reserve t =
  t.counter <- t.counter + 1;
  t.counter

let make_info ~id ~ground =
  {
    id;
    ground;
    participants = Space_id.Set.singleton ground;
    cachers = Space_id.Set.empty;
  }

let begin_reserved t ~id ~ground =
  if not t.concurrent then raise Session_already_active;
  if Hashtbl.mem t.opened id then raise Session_already_active;
  let info = make_info ~id ~ground in
  Hashtbl.replace t.opened id info;
  t.current <- Some info;
  info

let begin_session t ~ground =
  if t.concurrent then begin_reserved t ~id:(reserve t) ~ground
  else
    match t.current with
    | Some _ -> raise Session_already_active
    | None ->
      t.counter <- t.counter + 1;
      let info = make_info ~id:t.counter ~ground in
      t.current <- Some info;
      info

let close t =
  match t.current with
  | None -> raise No_active_session
  | Some info ->
    if t.concurrent then Hashtbl.remove t.opened info.id;
    t.current <- None

let current t = t.current

let current_exn t =
  match t.current with None -> raise No_active_session | Some info -> info

let is_active t =
  Option.is_some t.current || (t.concurrent && Hashtbl.length t.opened > 0)

let find t id = Hashtbl.find_opt t.opened id

let focus t id =
  if not t.concurrent then (
    match t.current with
    | Some info when info.id = id -> ()
    | _ -> raise No_active_session)
  else
    match Hashtbl.find_opt t.opened id with
    | Some info -> t.current <- Some info
    | None -> raise No_active_session

let open_count t =
  if t.concurrent then Hashtbl.length t.opened
  else if Option.is_some t.current then 1
  else 0

let open_ids t =
  if t.concurrent then
    Hashtbl.fold (fun id _ acc -> id :: acc) t.opened [] |> List.sort compare
  else match t.current with Some info -> [ info.id ] | None -> []

let join t id =
  let info = current_exn t in
  info.participants <- Space_id.Set.add id info.participants

let record_casher t id =
  let info = current_exn t in
  info.cachers <- Space_id.Set.add id info.cachers

open Srpc_memory

type info = {
  id : int;
  ground : Space_id.t;
  mutable participants : Space_id.Set.t;
  mutable cachers : Space_id.Set.t;
}

type t = { mutable counter : int; mutable current : info option }

exception No_active_session
exception Session_already_active
exception Session_aborted of { session : int; reason : string }

let create () = { counter = 0; current = None }

let begin_session t ~ground =
  match t.current with
  | Some _ -> raise Session_already_active
  | None ->
    t.counter <- t.counter + 1;
    let info =
      {
        id = t.counter;
        ground;
        participants = Space_id.Set.singleton ground;
        cachers = Space_id.Set.empty;
      }
    in
    t.current <- Some info;
    info

let close t =
  match t.current with
  | None -> raise No_active_session
  | Some _ -> t.current <- None

let current t = t.current

let current_exn t =
  match t.current with None -> raise No_active_session | Some info -> info

let is_active t = Option.is_some t.current

let join t id =
  let info = current_exn t in
  info.participants <- Space_id.Set.add id info.participants

let record_casher t id =
  let info = current_exn t in
  info.cachers <- Space_id.Set.add id info.cachers

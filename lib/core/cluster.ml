open Srpc_memory
open Srpc_simnet

type t = {
  clock : Clock.t;
  stats : Stats.t;
  transport : Transport.t;
  registry : Srpc_types.Registry.t;
  session : Session.t;
  hints : Hints.t;
  policy : Srpc_policy.Engine.t option;
  mutable nodes : Node.t list;
}

let create ?(cost = Cost_model.sparc_10mbps) ?policy () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  {
    clock;
    stats;
    transport = Transport.create ~clock ~stats ~cost;
    registry = Srpc_types.Registry.create ();
    session = Session.create ();
    hints = Hints.create ();
    policy;
    nodes = [];
  }

let clock t = t.clock
let stats t = t.stats
let transport t = t.transport
let registry t = t.registry
let session t = t.session

let add_node ?(proc = 0) ?(arch = Arch.sparc32) ?(strategy = Strategy.smart ())
    ?page_size ?validate ?retry ?reply_cache_cap t ~site () =
  let id = Space_id.make ~site ~proc in
  if List.exists (fun n -> Space_id.equal (Node.id n) id) t.nodes then
    invalid_arg (Printf.sprintf "Cluster.add_node: %s exists" (Space_id.to_string id));
  let node =
    Node.create ?page_size ?validate ?retry ?reply_cache_cap ?policy:t.policy
      ~hints:t.hints ~id ~arch ~registry:t.registry ~transport:t.transport
      ~session:t.session ~strategy ()
  in
  t.nodes <- node :: t.nodes;
  node

let validate t =
  let arches =
    match List.sort_uniq compare (List.map Node.arch t.nodes) with
    | [] -> [ Arch.sparc32 ]
    | arches -> arches
  in
  let hints =
    Hints.to_list t.hints
    |> List.map (fun (ty, (r : Hints.rule)) -> (ty, r.Hints.follow))
  in
  Srpc_analysis.Desc_lint.validate ~arches ~hints t.registry

let node t id = List.find_opt (fun n -> Space_id.equal (Node.id n) id) t.nodes
let nodes t = List.rev t.nodes
let register_type t name desc = Srpc_types.Registry.register t.registry name desc
let hints t = t.hints
let policy t = t.policy
let set_closure_hint t ~ty rule = Hints.set t.hints ~ty rule
let now t = Clock.now t.clock
let snapshot t = Stats.snapshot t.stats
let install_faults t plan = Transport.set_fault_plan t.transport (Some plan)
let clear_faults t = Transport.set_fault_plan t.transport None
let fault_plan t = Transport.fault_plan t.transport

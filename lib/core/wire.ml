module Xdr = Srpc_xdr.Xdr
open Xdr

type wvalue =
  | WUnit
  | WBool of bool
  | WInt of int64
  | WFloat of float
  | WStr of string
  | WPtr of Long_pointer.t option
  | WFun of Value.funref

type item = { lp : Long_pointer.t; data : string }

type range = { off : int; bytes : string }

type delta = { dlp : Long_pointer.t; base_len : int; ranges : range list }

type request =
  | Call of {
      session : int;
      proc : string;
      args : wvalue list;
      writebacks : item list;
      eager : item list;
    }
  | Fetch of { session : int; wanted : Long_pointer.t list }
  | Write_back of { session : int; items : item list }
  | Alloc_batch of { session : int; reqs : (int * string) list }
  | Free_batch of { session : int; lps : Long_pointer.t list }
  | Invalidate of { session : int }
  | Abort of { session : int }
  | Wb_stage of { session : int; items : item list }
  | Wb_commit of { session : int }
  | Wb_delta of {
      session : int;
      full : item list;
      deltas : delta list;
      frees : Long_pointer.t list;
      invalidate : bool;
    }
  | Wb_stage_delta of { session : int; deltas : delta list }
  | Call_d of {
      session : int;
      proc : string;
      args : wvalue list;
      writebacks : item list;
      wb_deltas : delta list;
      eager : item list;
      frees : Long_pointer.t list;
    }
  | Hb
  | Offload_call of {
      session : int;
      root : Long_pointer.t;
      plan : Offload.plan;
      writebacks : item list;
    }

type response =
  | Return of { results : wvalue list; writebacks : item list; eager : item list }
  | Fetched of { items : item list }
  | Allocated of { addrs : (int * int) list }
  | Ack
  | Error of string
  | Return_d of {
      results : wvalue list;
      writebacks : item list;
      wb_deltas : delta list;
      eager : item list;
      frees : Long_pointer.t list;
    }
  | Hb_ack
  | Offload_return of {
      results : int list;
      writebacks : item list;
      wset : Long_pointer.t list;
    }

let encode_wvalue ~reg enc = function
  | WUnit -> Enc.int enc 0
  | WBool b ->
    Enc.int enc 1;
    Enc.bool enc b
  | WInt n ->
    Enc.int enc 2;
    Enc.int64 enc n
  | WFloat f ->
    Enc.int enc 3;
    Enc.float64 enc f
  | WStr s ->
    Enc.int enc 4;
    Enc.string enc s
  | WPtr lp ->
    Enc.int enc 5;
    Long_pointer.encode ~reg enc lp
  | WFun { Value.home; name } ->
    Enc.int enc 6;
    Enc.uint32 enc
      ((home.Srpc_memory.Space_id.site lsl 16) lor home.Srpc_memory.Space_id.proc);
    Enc.string enc name

let decode_wvalue ~reg dec =
  match Dec.int dec with
  | 0 -> WUnit
  | 1 -> WBool (Dec.bool dec)
  | 2 -> WInt (Dec.int64 dec)
  | 3 -> WFloat (Dec.float64 dec)
  | 4 -> WStr (Dec.string dec)
  | 5 -> WPtr (Long_pointer.decode ~reg dec)
  | 6 ->
    let packed = Dec.uint32 dec in
    let name = Dec.string dec in
    WFun
      {
        Value.home =
          Srpc_memory.Space_id.make ~site:(packed lsr 16) ~proc:(packed land 0xffff);
        name;
      }
  | n -> raise (Decode_error (Printf.sprintf "bad wvalue tag %d" n))

let encode_item ~reg enc { lp; data } =
  Long_pointer.encode ~reg enc (Some lp);
  Enc.opaque enc data

let decode_item ~reg dec =
  match Long_pointer.decode ~reg dec with
  | None -> raise (Decode_error "null item pointer")
  | Some lp ->
    let data = Dec.opaque dec in
    { lp; data }

let encode_lp ~reg enc lp = Long_pointer.encode ~reg enc (Some lp)

let decode_lp ~reg dec =
  match Long_pointer.decode ~reg dec with
  | None -> raise (Decode_error "unexpected null long pointer")
  | Some lp -> lp

let encode_range enc { off; bytes } =
  Enc.int enc off;
  Enc.opaque enc bytes

let encode_delta ~reg enc { dlp; base_len; ranges } =
  Long_pointer.encode ~reg enc (Some dlp);
  Enc.int enc base_len;
  Enc.list enc encode_range ranges

(* A delta patches the receiver's copy in place, so its ranges are
   validated here at the trust boundary: ascending, non-empty,
   non-overlapping and inside the base image. Anything else must be a
   typed decode error, never an out-of-bounds blit. *)
let decode_delta ~reg dec =
  let dlp = decode_lp ~reg dec in
  let base_len = Dec.int dec in
  if base_len < 0 then raise (Decode_error "negative delta base length");
  let ranges =
    Dec.list dec (fun dec ->
        let off = Dec.int dec in
        let bytes = Dec.opaque dec in
        { off; bytes })
  in
  let rec validate cursor = function
    | [] -> ()
    | { off; bytes } :: rest ->
      let len = String.length bytes in
      if len = 0 then raise (Decode_error "empty delta range");
      if off < cursor then
        raise (Decode_error "unordered or overlapping delta ranges");
      if off + len > base_len then
        raise (Decode_error "delta range out of bounds");
      validate (off + len) rest
  in
  validate 0 ranges;
  { dlp; base_len; ranges }

let encode_request_body ~reg enc r =
  match r with
  | Call { session; proc; args; writebacks; eager } ->
    Enc.int enc 0;
    Enc.int enc session;
    Enc.string enc proc;
    Enc.list enc (encode_wvalue ~reg) args;
    Enc.list enc (encode_item ~reg) writebacks;
    Enc.list enc (encode_item ~reg) eager
  | Fetch { session; wanted } ->
    Enc.int enc 1;
    Enc.int enc session;
    Enc.list enc (encode_lp ~reg) wanted
  | Write_back { session; items } ->
    Enc.int enc 2;
    Enc.int enc session;
    Enc.list enc (encode_item ~reg) items
  | Alloc_batch { session; reqs } ->
    Enc.int enc 3;
    Enc.int enc session;
    Enc.list enc
      (fun enc (id, ty) ->
        Enc.int enc id;
        Enc.string enc ty)
      reqs
  | Free_batch { session; lps } ->
    Enc.int enc 4;
    Enc.int enc session;
    Enc.list enc (encode_lp ~reg) lps
  | Invalidate { session } ->
    Enc.int enc 5;
    Enc.int enc session
  | Abort { session } ->
    Enc.int enc 6;
    Enc.int enc session
  | Wb_stage { session; items } ->
    Enc.int enc 7;
    Enc.int enc session;
    Enc.list enc (encode_item ~reg) items
  | Wb_commit { session } ->
    Enc.int enc 8;
    Enc.int enc session
  | Wb_delta { session; full; deltas; frees; invalidate } ->
    Enc.int enc 9;
    Enc.int enc session;
    Enc.list enc (encode_item ~reg) full;
    Enc.list enc (encode_delta ~reg) deltas;
    Enc.list enc (encode_lp ~reg) frees;
    Enc.bool enc invalidate
  | Wb_stage_delta { session; deltas } ->
    Enc.int enc 10;
    Enc.int enc session;
    Enc.list enc (encode_delta ~reg) deltas
  | Call_d { session; proc; args; writebacks; wb_deltas; eager; frees } ->
    Enc.int enc 11;
    Enc.int enc session;
    Enc.string enc proc;
    Enc.list enc (encode_wvalue ~reg) args;
    Enc.list enc (encode_item ~reg) writebacks;
    Enc.list enc (encode_delta ~reg) wb_deltas;
    Enc.list enc (encode_item ~reg) eager;
    Enc.list enc (encode_lp ~reg) frees
  | Hb -> Enc.int enc 12
  | Offload_call { session; root; plan; writebacks } ->
    Enc.int enc 13;
    Enc.int enc session;
    encode_lp ~reg enc root;
    Offload.encode_plan enc plan;
    Enc.list enc (encode_item ~reg) writebacks

let encode_request ~reg r =
  let enc = Enc.create () in
  encode_request_body ~reg enc r;
  Enc.to_string enc

(* Retry-envelope framing: tag 15 prefixes a sequence number before the
   ordinary request body. Tag 15 is far from the live request tags so an
   un-enveloped decoder fails loudly rather than misparsing. *)
let framed_tag = 15

let encode_framed ~reg ~seq r =
  let enc = Enc.create () in
  Enc.int enc framed_tag;
  Enc.int enc seq;
  encode_request_body ~reg enc r;
  Enc.to_string enc

let decode_request_tagged ~reg dec tag =
  match tag with
  | 0 ->
    let session = Dec.int dec in
    let proc = Dec.string dec in
    let args = Dec.list dec (decode_wvalue ~reg) in
    let writebacks = Dec.list dec (decode_item ~reg) in
    let eager = Dec.list dec (decode_item ~reg) in
    Call { session; proc; args; writebacks; eager }
  | 1 ->
    let session = Dec.int dec in
    let wanted = Dec.list dec (decode_lp ~reg) in
    Fetch { session; wanted }
  | 2 ->
    let session = Dec.int dec in
    let items = Dec.list dec (decode_item ~reg) in
    Write_back { session; items }
  | 3 ->
    let session = Dec.int dec in
    let reqs =
      Dec.list dec (fun dec ->
          let id = Dec.int dec in
          let ty = Dec.string dec in
          (id, ty))
    in
    Alloc_batch { session; reqs }
  | 4 ->
    let session = Dec.int dec in
    let lps = Dec.list dec (decode_lp ~reg) in
    Free_batch { session; lps }
  | 5 ->
    let session = Dec.int dec in
    Invalidate { session }
  | 6 ->
    let session = Dec.int dec in
    Abort { session }
  | 7 ->
    let session = Dec.int dec in
    let items = Dec.list dec (decode_item ~reg) in
    Wb_stage { session; items }
  | 8 ->
    let session = Dec.int dec in
    Wb_commit { session }
  | 9 ->
    let session = Dec.int dec in
    let full = Dec.list dec (decode_item ~reg) in
    let deltas = Dec.list dec (decode_delta ~reg) in
    let frees = Dec.list dec (decode_lp ~reg) in
    let invalidate = Dec.bool dec in
    Wb_delta { session; full; deltas; frees; invalidate }
  | 10 ->
    let session = Dec.int dec in
    let deltas = Dec.list dec (decode_delta ~reg) in
    Wb_stage_delta { session; deltas }
  | 11 ->
    let session = Dec.int dec in
    let proc = Dec.string dec in
    let args = Dec.list dec (decode_wvalue ~reg) in
    let writebacks = Dec.list dec (decode_item ~reg) in
    let wb_deltas = Dec.list dec (decode_delta ~reg) in
    let eager = Dec.list dec (decode_item ~reg) in
    let frees = Dec.list dec (decode_lp ~reg) in
    Call_d { session; proc; args; writebacks; wb_deltas; eager; frees }
  | 12 -> Hb
  | 13 ->
    let session = Dec.int dec in
    let root = decode_lp ~reg dec in
    let plan = Offload.decode_plan ~reg dec in
    let writebacks = Dec.list dec (decode_item ~reg) in
    Offload_call { session; root; plan; writebacks }
  | n -> raise (Decode_error (Printf.sprintf "bad request tag %d" n))

let decode_request ~reg s =
  let dec = Dec.of_string s in
  let r = decode_request_tagged ~reg dec (Dec.int dec) in
  Dec.check_end dec;
  r

let decode_framed ~reg s =
  let dec = Dec.of_string s in
  let tag = Dec.int dec in
  let seq, r =
    if tag = framed_tag then
      let seq = Dec.int dec in
      (Some seq, decode_request_tagged ~reg dec (Dec.int dec))
    else (None, decode_request_tagged ~reg dec tag)
  in
  Dec.check_end dec;
  (seq, r)

let request_session = function
  | Call { session; _ }
  | Fetch { session; _ }
  | Write_back { session; _ }
  | Alloc_batch { session; _ }
  | Free_batch { session; _ }
  | Invalidate { session }
  | Abort { session }
  | Wb_stage { session; _ }
  | Wb_commit { session }
  | Wb_delta { session; _ }
  | Wb_stage_delta { session; _ }
  | Call_d { session; _ }
  | Offload_call { session; _ } -> session
  (* heartbeats live outside any session; the protocol linter exempts
     them from session attribution by label *)
  | Hb -> -1

let request_label = function
  | Call _ -> "call"
  | Fetch _ -> "fetch"
  | Write_back _ -> "write-back"
  | Alloc_batch _ -> "alloc-batch"
  | Free_batch _ -> "free-batch"
  | Invalidate _ -> "invalidate"
  | Abort _ -> "abort"
  | Wb_stage _ -> "wb-stage"
  | Wb_commit _ -> "wb-commit"
  | Wb_delta { invalidate; _ } -> if invalidate then "wb-delta+inv" else "wb-delta"
  | Wb_stage_delta _ -> "wb-stage-delta"
  | Call_d _ -> "call-d"
  | Hb -> "hb"
  | Offload_call _ -> "offload-call"

let response_label = function
  | Return _ -> "return"
  | Fetched _ -> "fetched"
  | Allocated _ -> "allocated"
  | Ack -> "ack"
  | Error _ -> "error"
  | Return_d _ -> "return-d"
  | Hb_ack -> "hb-ack"
  | Offload_return _ -> "offload-return"

let encode_response ~reg r =
  let enc = Enc.create () in
  (match r with
  | Return { results; writebacks; eager } ->
    Enc.int enc 0;
    Enc.list enc (encode_wvalue ~reg) results;
    Enc.list enc (encode_item ~reg) writebacks;
    Enc.list enc (encode_item ~reg) eager
  | Fetched { items } ->
    Enc.int enc 1;
    Enc.list enc (encode_item ~reg) items
  | Allocated { addrs } ->
    Enc.int enc 2;
    Enc.list enc
      (fun enc (id, addr) ->
        Enc.int enc id;
        Enc.hyper enc addr)
      addrs
  | Ack -> Enc.int enc 3
  | Error msg ->
    Enc.int enc 4;
    Enc.string enc msg
  | Return_d { results; writebacks; wb_deltas; eager; frees } ->
    Enc.int enc 5;
    Enc.list enc (encode_wvalue ~reg) results;
    Enc.list enc (encode_item ~reg) writebacks;
    Enc.list enc (encode_delta ~reg) wb_deltas;
    Enc.list enc (encode_item ~reg) eager;
    Enc.list enc (encode_lp ~reg) frees
  | Hb_ack -> Enc.int enc 6
  | Offload_return { results; writebacks; wset } ->
    Enc.int enc 7;
    Enc.list enc Enc.hyper results;
    Enc.list enc (encode_item ~reg) writebacks;
    Enc.list enc (encode_lp ~reg) wset);
  Enc.to_string enc

let decode_response ~reg s =
  let dec = Dec.of_string s in
  let r =
    match Dec.int dec with
    | 0 ->
      let results = Dec.list dec (decode_wvalue ~reg) in
      let writebacks = Dec.list dec (decode_item ~reg) in
      let eager = Dec.list dec (decode_item ~reg) in
      Return { results; writebacks; eager }
    | 1 -> Fetched { items = Dec.list dec (decode_item ~reg) }
    | 2 ->
      let addrs =
        Dec.list dec (fun dec ->
            let id = Dec.int dec in
            let addr = Dec.hyper dec in
            (id, addr))
      in
      Allocated { addrs }
    | 3 -> Ack
    | 4 -> Error (Dec.string dec)
    | 5 ->
      let results = Dec.list dec (decode_wvalue ~reg) in
      let writebacks = Dec.list dec (decode_item ~reg) in
      let wb_deltas = Dec.list dec (decode_delta ~reg) in
      let eager = Dec.list dec (decode_item ~reg) in
      let frees = Dec.list dec (decode_lp ~reg) in
      Return_d { results; writebacks; wb_deltas; eager; frees }
    | 6 -> Hb_ack
    | 7 ->
      let results = Dec.list dec Dec.hyper in
      let writebacks = Dec.list dec (decode_item ~reg) in
      let wset = Dec.list dec (decode_lp ~reg) in
      Offload_return { results; writebacks; wset }
    | n -> raise (Decode_error (Printf.sprintf "bad response tag %d" n))
  in
  Dec.check_end dec;
  r

let pp_items ppf items = Format.fprintf ppf "%d items" (List.length items)

let pp_request ppf = function
  | Call { proc; args; writebacks; eager; session } ->
    Format.fprintf ppf "Call[%d] %s/%d (wb %a, eager %a)" session proc
      (List.length args) pp_items writebacks pp_items eager
  | Fetch { wanted; session } ->
    Format.fprintf ppf "Fetch[%d] %d lps" session (List.length wanted)
  | Write_back { items; session } ->
    Format.fprintf ppf "WriteBack[%d] %a" session pp_items items
  | Alloc_batch { reqs; session } ->
    Format.fprintf ppf "AllocBatch[%d] %d reqs" session (List.length reqs)
  | Free_batch { lps; session } ->
    Format.fprintf ppf "FreeBatch[%d] %d lps" session (List.length lps)
  | Invalidate { session } -> Format.fprintf ppf "Invalidate[%d]" session
  | Abort { session } -> Format.fprintf ppf "Abort[%d]" session
  | Wb_stage { items; session } ->
    Format.fprintf ppf "WbStage[%d] %a" session pp_items items
  | Wb_commit { session } -> Format.fprintf ppf "WbCommit[%d]" session
  | Wb_delta { full; deltas; frees; invalidate; session } ->
    Format.fprintf ppf "WbDelta[%d] (%a, %d deltas, %d frees, inval %b)"
      session pp_items full (List.length deltas) (List.length frees)
      invalidate
  | Wb_stage_delta { deltas; session } ->
    Format.fprintf ppf "WbStageDelta[%d] %d deltas" session
      (List.length deltas)
  | Call_d { proc; args; writebacks; wb_deltas; eager; frees; session } ->
    Format.fprintf ppf "CallD[%d] %s/%d (wb %a, %d deltas, eager %a, %d frees)"
      session proc (List.length args) pp_items writebacks
      (List.length wb_deltas) pp_items eager (List.length frees)
  | Hb -> Format.pp_print_string ppf "Hb"
  | Offload_call { session; root = _; plan; writebacks } ->
    Format.fprintf ppf "OffloadCall[%d] %a (wb %a)" session Offload.pp_plan
      plan pp_items writebacks

let pp_response ppf = function
  | Return { results; writebacks; eager } ->
    Format.fprintf ppf "Return/%d (wb %a, eager %a)" (List.length results)
      pp_items writebacks pp_items eager
  | Fetched { items } -> Format.fprintf ppf "Fetched %a" pp_items items
  | Allocated { addrs } -> Format.fprintf ppf "Allocated %d" (List.length addrs)
  | Ack -> Format.pp_print_string ppf "Ack"
  | Error msg -> Format.fprintf ppf "Error %S" msg
  | Return_d { results; writebacks; wb_deltas; eager; frees } ->
    Format.fprintf ppf "ReturnD/%d (wb %a, %d deltas, eager %a, %d frees)"
      (List.length results) pp_items writebacks (List.length wb_deltas)
      pp_items eager (List.length frees)
  | Hb_ack -> Format.pp_print_string ppf "HbAck"
  | Offload_return { results; writebacks; wset } ->
    Format.fprintf ppf "OffloadReturn/%d (wb %a, %d wset)"
      (List.length results) pp_items writebacks (List.length wset)

(** A node: one address space plus its smart-RPC runtime.

    The runtime implements the paper's method end to end:
    - stubs that unswizzle pointer arguments to long pointers and
      swizzle them back into protected cache slots (section 3.2);
    - the MMU fault handler that services the first touch of remote data
      by fetching everything allocated to the faulting page, together
      with a bounded breadth-first closure (sections 3.2–3.3);
    - the coherency protocol that ships the modified data set on every
      control transfer and performs the end-of-session write-back and
      invalidation multicast (section 3.4);
    - transparent remote memory allocation and release with batching
      (section 3.5). *)

open Srpc_memory
open Srpc_types
open Srpc_simnet

type t

(** A remote procedure body. It runs on the callee node with swizzled
    arguments; pointer arguments can be dereferenced through {!Access}
    (or raw loads via [mmu]) exactly like local data. *)
type proc = t -> Value.t list -> Value.t list

exception Remote_error of string
exception Unknown_procedure of string

(** Raised (on non-ground nodes) when a peer stayed unreachable through
    the whole retry envelope or is crashed in the fault plan. On the
    ground thread the runtime instead aborts the session and raises
    {!Session.Session_aborted}. *)
exception Peer_unreachable of string

(** Raised when an address that is neither null, a live heap block base,
    nor a cache slot base is unswizzled or freed. *)
exception Invalid_pointer of int

(** {1 Construction} *)

(** Retry/timeout/backoff envelope for the RPC path, active only while a
    {!Srpc_simnet.Fault_plan} is installed on the transport. A request
    is re-sent up to [max_attempts] total tries; between tries the
    sender backs off exponentially from [base_backoff] (simulated
    seconds), doubling up to [max_backoff]. *)
type retry = { max_attempts : int; base_backoff : float; max_backoff : float }

val default_retry : retry

(** [create ~id ~arch ~registry ~transport ~session ~strategy ()] builds
    a node and registers its dispatcher with the transport. Region sizes
    are configurable for tests ([page_size] must be a power of two).
    With [~validate:true] the registry is first checked by the
    descriptor linter against this node's architecture. Passing
    [?policy] opts the node into adaptive transfer: the engine's
    per-type budgets replace the strategy's static closure budget, the
    runtime feeds it access-pattern observations, and at session end it
    installs machine-derived closure-shape hints into [hints] (share
    one engine and one hint table across the cluster's nodes).
    [?retry] tunes the fault-layer retry envelope (used only when a
    fault plan is installed on the transport). [?reply_cache_cap]
    bounds the per-source at-most-once reply cache (default 64
    sources); the least-recently-consulted source is evicted when the
    bound is exceeded.
    @raise Srpc_analysis.Desc_lint.Invalid_registry if validation finds
    error-severity defects.
    @raise Invalid_argument if [reply_cache_cap < 1]. *)
val create :
  ?page_size:int ->
  ?heap_base:int ->
  ?heap_limit:int ->
  ?cache_limit:int ->
  ?hints:Hints.t ->
  ?policy:Srpc_policy.Engine.t ->
  ?validate:bool ->
  ?retry:retry ->
  ?reply_cache_cap:int ->
  id:Space_id.t ->
  arch:Arch.t ->
  registry:Registry.t ->
  transport:Transport.t ->
  session:Session.t ->
  strategy:Strategy.t ->
  unit ->
  t

val id : t -> Space_id.t
val arch : t -> Arch.t
val space : t -> Address_space.t
val mmu : t -> Mmu.t
val registry : t -> Registry.t
val transport : t -> Transport.t
val strategy : t -> Strategy.t

(** The closure-shape hint table this node consults when computing
    transitive closures (shared cluster-wide when built through
    {!Cluster}). *)
val hints : t -> Hints.t

(** The adaptive policy engine, when the node was created with one. *)
val policy : t -> Srpc_policy.Engine.t option

(** [set_strategy t s] reconfigures the transfer strategy (between
    sessions; changing it mid-session is undefined). *)
val set_strategy : t -> Strategy.t -> unit

val cache : t -> Cache.t
val heap : t -> Allocator.t

(** {1 Procedures and sessions} *)

(** [register t name body] installs a remote procedure. *)
val register : t -> string -> proc -> unit

(** [run_local t name args] invokes a locally registered procedure
    directly, without an RPC.
    @raise Unknown_procedure if it is not registered. *)
val run_local : t -> string -> Value.t list -> Value.t list

(** [begin_session t] declares this node's thread the ground thread of a
    new RPC session. *)
val begin_session : t -> unit

(** [end_session t] writes the modified data set back to the origin
    spaces and multicasts the invalidation; every participant drops its
    cached data (paper, section 3.4). Must be called by the ground
    node. With a fault plan installed the write-back is all-or-nothing:
    items are staged at every origin and applied only once the full set
    is delivered; a participant dying before that commit point aborts
    the session instead ({!Session.Session_aborted}), leaving every
    original untouched. *)
val end_session : t -> unit

(** [with_session t f] brackets [f] with [begin_session]/[end_session].
    The session is also ended if [f] raises. *)
val with_session : t -> (unit -> 'a) -> 'a

(** {1 Concurrent-session admission}

    With the shared session registry in multi-open mode
    ({!Session.set_concurrent}) a cluster runs many sessions at once;
    an {!Admission} controller decides which may be open concurrently
    (disjoint static footprints) and the wire-level session id on every
    frame demultiplexes each node's per-session runtime state. Sessions
    interleave at operation granularity — the simulated cluster is
    single-threaded. Concurrent mode requires [Page_grain] write-back
    and no delta coherency; see docs/TRAFFIC.md. *)

(** [reserve_session t] draws a session id without opening it (the
    admission controller names queued sessions before they begin).
    @raise Invalid_argument outside concurrent mode. *)
val reserve_session : t -> int

(** [request_admission t adm ~id ~footprint] asks [adm] whether the
    reserved session may open now. [Admitted]: the session has begun
    (admit and begin marks recorded) and this node is its ground.
    [Queued]: parked; a later close's drain admits it and the caller
    then runs {!start_admitted}. [Denied] (abort-retry policy): back
    off by {!Admission.backoff_delay} and ask again with the same id.
    [Overloaded]: the typed shed (queue full, retry budget exhausted,
    or circuit breaker holding for a dead peer) — a [Session_shed]
    trace mark witnesses the rejection (rule SP009) and the attempt is
    terminal. [?peers] names the endpoints the session will talk to,
    for the controller's circuit breaker. While
    {!chaos_admit_conflicting} is set the conflict check is bypassed
    and every request is admitted. *)
val request_admission :
  ?peers:string list ->
  t ->
  Admission.t ->
  id:int ->
  footprint:Srpc_analysis.Footprint.t ->
  Admission.decision

(** [start_admitted t ~id] begins a session the controller has already
    admitted (from {!Admission.close}'s drain). *)
val start_admitted : t -> id:int -> unit

(** [focus_session t ~id] re-points this node at open session [id] —
    the harness resuming a parked logical thread. Frames refocus
    automatically; ground-side operations refocus to this node's own
    open session. *)
val focus_session : t -> id:int -> unit

(** [end_session_validated t adm] closes the focused session with
    optimistic validation: if some datum root it touched was committed
    by another session since admission (possible only when admission
    was bypassed), the close turns into an abort — nothing is committed
    over the foreign write — and [`Validation_failed] is returned; the
    caller retries the session. Either way the controller retires the
    session and the FIFO waiters admitted by its departure are
    returned, to be started with {!start_admitted}. *)
val end_session_validated :
  t ->
  Admission.t ->
  [ `Committed | `Validation_failed ]
  * (int * Srpc_analysis.Footprint.t) list

(** [call t ~dst proc args] performs a smart RPC: flushes batched remote
    allocations, ships the modified data set and (for an unbounded
    closure budget) the eager closure of pointer arguments, then blocks
    until the results return. Nested calls and callbacks are calls
    issued from inside a procedure body.
    @raise Session.No_active_session outside a session
    @raise Remote_error if the callee raised
    @raise Session.Session_aborted (ground thread, fault plan installed)
    if a participant became unreachable and the session was aborted *)
val call : t -> dst:Space_id.t -> string -> Value.t list -> Value.t list

(** [offload t ~root plan] runs a declarative traversal {!Offload.plan}
    rooted at the ordinary (possibly swizzled) address [root] and
    returns its result vector. Where it runs is the strategy's third
    per-call-site mode ({!Strategy.offload_mode}): with
    [Offload_never] — or whenever the root is homed here — the plan is
    interpreted client-side over the cache, faulting data in exactly as
    a hand-written traversal would (wire behavior identical to not
    having the feature); with [Offload_always] a foreign-rooted plan is
    shipped to the root's home in one [Offload_call], the home walks its
    own heap, and only the result vector (plus the coherency refresh for
    data an update plan mutated) comes back; with [Offload_auto] the
    adaptive policy engine's per-root-type learner picks the cheaper arm
    from measured durations ({!Srpc_policy.Engine.choose_offload}; no
    engine installed: foreign roots offload). The caller's modified data
    set ships with the frame, so the walk sees the session's latest
    writes; under a fault plan the retry envelope and the home's reply
    cache make update plans exactly-once.
    @raise Session.No_active_session outside a session
    @raise Srpc_xdr.Xdr.Decode_error if the plan is malformed
    @raise Remote_error if the home rejected the root (foreign, freed) *)
val offload : t -> root:int -> Offload.plan -> int list

(** {1 Memory management} *)

(** [malloc t ~ty] allocates one object of registered type [ty] in this
    node's own heap and returns its address. *)
val malloc : t -> ty:string -> int

(** [malloc_n t ~ty n] allocates an array of [n] contiguous objects and
    returns the base address. *)
val malloc_n : t -> ty:string -> int -> int

(** [extended_malloc t ~home ~ty] allocates an object whose original
    location is address space [home] and returns a swizzled pointer
    valid here (paper, section 3.5). The home-space allocation is
    batched until the next control transfer when the strategy says so. *)
val extended_malloc : t -> home:Space_id.t -> ty:string -> int

(** [extended_free t addr] releases the object referenced by [addr];
    [addr] "may reference data whose original location is not in the
    address space in which it is issued" (paper, section 3.5). *)
val extended_free : t -> int -> unit

(** {1 Pointer plumbing (exposed for the access layer and tests)} *)

val swizzle : t -> Long_pointer.t option -> int
val unswizzle : t -> ty:string -> int -> Long_pointer.t option

(** [charge_touch t] accounts one application-level data access in the
    cost model. When [addr] names the accessed datum, its cache entry
    (if any) is also marked touched, feeding the access-pattern
    profile; with a trace attached the touch is also recorded as a
    datum-granular [Trace.Access] witness — a read by default, a write
    when [~write:true]. *)
val charge_touch : ?addr:int -> ?write:bool -> t -> unit

(** Whether the node's transport currently has a trace attached. The
    access layer uses this to decide when witness bookkeeping (like the
    store-comparison that demotes no-op writes to reads) is worth
    paying for. *)
val traced : t -> bool

(** Number of live entries in the data allocation table. *)
val cached_entries : t -> int

(** Number of sources currently held by the at-most-once reply cache
    (bounded by [reply_cache_cap]; exposed for the eviction tests). *)
val reply_cache_size : t -> int

(** The copy directory: for each datum homed here that was shipped out
    and not yet written back or invalidated, the spaces holding a copy.
    Entries are [(home address, caching spaces)]; both lists are in
    unspecified order. Maintained regardless of
    {!Strategy.t.delta_coherency} (senders need base images even when
    only the peer runs delta write-backs); cleared by session close,
    invalidation and the session-abort reset. *)
val copy_directory : t -> (int * Space_id.t list) list

(** Test-only defect switch used by the srpc-check mutation test: while
    set, every write-back flush silently drops its first dirty cache
    entry (the page is still cleaned, so the lost update is
    unrecoverable). Leave it [false] outside tests. *)
val chaos_lose_first_writeback : bool ref

(** Test-only defect switch used by the srpc-check mutation test: while
    set, an incoming [Invalidate] is acknowledged and the session
    bookkeeping advances, but no cached state is dropped — stale copies
    survive into the next session exactly as if the invalidation had
    been reordered past the accesses it was meant to fence. Leave it
    [false] outside tests. *)
val chaos_reorder_invalidate : bool ref

(** Test-only defect switch used by the traffic mutation tests: while
    set, {!request_admission} bypasses the footprint conflict check and
    admits everything — conflicting sessions run concurrently, which
    Race_lint (CC101), the protocol linter (SP008) and the close-time
    optimistic validation must each catch. Leave it [false] outside
    tests. *)
val chaos_admit_conflicting : bool ref

(** Render this node's data allocation table (paper, Table 1). *)
val pp_alloc_table : Format.formatter -> t -> unit

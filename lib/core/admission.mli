(** Concurrent-session admission controller.

    Generalizes the paper's one-session-at-a-time safety argument: two
    sessions may be open simultaneously iff their static footprints
    ({!Srpc_analysis.Footprint}) raise no CC-series error under
    [interferes] — then no datum root is written by one while the other
    reads or writes it, so every per-session coherency step (write-back,
    invalidation) stays correct verbatim. One controller instance guards
    a cluster; the ground harness asks it via [Node.request_admission]
    before each session starts.

    Conflicting candidates follow the {!Strategy.admission_policy}:
    FIFO-queued on the contended datum roots (admitted by {!close}'s
    drain once the holders leave, never barging past an older waiter),
    or denied outright for capped-exponential backoff-retry in virtual
    time.

    {b Optimistic validation at close.} Every committed session bumps a
    per-root version counter for the roots it wrote; every admitted
    session snapshots the counters of all roots it touches. {!validate}
    at close detects a conflicting foreign commit (possible only when
    admission was bypassed, e.g. [Node.chaos_admit_conflicting]): the
    loser must abort and retry instead of committing a lost update.

    {b Overload protection.} The conflict queue is bounded
    ([queue_cap]) and each reserved id gets a deferral budget
    ([retry_budget]); exceeding either sheds the request with a typed
    {!decision.Overloaded} instead of queueing unbounded work. When a
    {!Health} detector is supplied, a per-peer circuit breaker refuses
    sessions whose footprint peers are suspected or confirmed dead
    until health observes revival. See docs/ROBUSTNESS.md.

    All outcomes feed the [Stats] admission counters
    ([sessions_admitted], [sessions_queued], [sessions_aborted],
    [sessions_retried], [validations_failed], [sheds],
    [breaker_trips]). See docs/TRAFFIC.md. *)

open Srpc_analysis

type shed =
  | Queue_full  (** the bounded conflict queue is at capacity *)
  | Retry_budget  (** the session's deferral budget is exhausted *)
  | Dead_peer of string
      (** the circuit breaker holds: this footprint peer is suspected
          or confirmed dead *)

type decision =
  | Admitted  (** footprint disjoint from every open session: go *)
  | Queued  (** FIFO-queued; {!close}'s drain will admit it later *)
  | Denied  (** abort-retry policy: back off and re-request *)
  | Overloaded of shed
      (** typed rejection: shed now, terminal for this attempt (a later
          retry needs a fresh request; rule SP009 checks sheds are never
          silently followed by a session begin) *)

type t

(** [queue_cap] bounds the conflict FIFO (default unbounded);
    [retry_budget] bounds deferrals per reserved session id (default
    unbounded); [health] arms the circuit breaker. *)
val create :
  ?policy:Strategy.admission_policy ->
  ?queue_cap:int ->
  ?retry_budget:int ->
  ?health:Health.t ->
  Srpc_simnet.Stats.t ->
  t

val policy : t -> Strategy.admission_policy

(** [request t ~session fp] decides admission for [session] with
    footprint [fp]. [?force] bypasses the conflict check (the
    [chaos_admit_conflicting] mutation hook) — the session is recorded
    as open so close-time validation still runs. [?peers] names the
    endpoints the session will exchange frames with; with a [health]
    detector installed, any suspected- or confirmed-dead peer trips the
    breaker ([Overloaded (Dead_peer ep)]). *)
val request :
  ?force:bool -> ?peers:string list -> t -> session:int -> Footprint.t ->
  decision

(** [close t ~session] retires an open session — [~committed:false] for
    aborts (its writes bump no root versions) — and drains the FIFO:
    returns the waiters admitted now, in queue order, already recorded
    as open. The caller begins them (emitting their admit marks). *)
val close : ?committed:bool -> t -> session:int -> (int * Footprint.t) list

(** [validate t ~session] is false iff some datum root in the session's
    admission-time snapshot was committed by another session since. *)
val validate : t -> session:int -> bool

(** Record a validation failure in [Stats] (the caller then aborts the
    session and re-requests admission). *)
val fail_validation : t -> session:int -> unit

(** Datum roots the candidate would contend with the open sessions. *)
val contended_roots : t -> Footprint.t -> string list

val open_count : t -> int
val queue_length : t -> int

(** [backoff_delay ~session ~attempt ~base] is the capped exponential
    retry delay (virtual seconds) with deterministic seeded jitter:
    [base * 2^min(attempt, 6) * j] where [j] is in [\[0.5, 1.5)],
    drawn by splitmix64 from [(session, attempt)] — sessions denied at
    the same instant spread out instead of re-colliding in lockstep,
    and every delay is exactly reproducible. *)
val backoff_delay : session:int -> attempt:int -> base:float -> float

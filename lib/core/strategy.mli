(** Transfer-strategy configuration.

    The paper's three compared methods are configurations of one
    mechanism (sections 2, 3.3 and 4.2): the closure-size parameter set
    to zero behaves like the fully lazy method, set to infinity like the
    fully eager method. The remaining knobs are the design alternatives
    the paper discusses: cache-area allocation grouping (section 6),
    closure traversal order (section 3.3), write-back granularity
    (section 3.4) and remote alloc/release batching (section 3.5). *)

type closure_budget =
  | Unbounded  (** ship the whole transitive closure: fully eager *)
  | Bytes of int
      (** maximum bytes of traversed data per transfer; [Bytes 0] is the
          fully lazy method *)

type alloc_grouping =
  | By_origin
      (** paper heuristic: all data in a cache page comes from a single
          address space *)
  | Sequential  (** naive: one fill cursor for everything *)
  | By_type  (** group cache pages by data type *)
  | Entry_per_page
      (** one datum per page: makes each first touch exactly one
          callback (used to realize the fully lazy baseline) *)

type closure_order = Breadth_first | Depth_first

(** What the admission controller does with a session whose static
    footprint conflicts with a session already open (only consulted when
    concurrent admission is enabled, see [Srpc_core.Admission]). *)
type admission_policy =
  | Queue_conflicts
      (** FIFO-queue the session on the contended datum roots; it is
          admitted when the conflicting holders close *)
  | Abort_retry
      (** deny admission outright; the caller backs off (capped
          exponential, virtual time) and retries *)

(** The third per-call-site transfer mode (beside eager closure and lazy
    faulting): ship the traversal to the data instead of the data to the
    traversal (see docs/OFFLOAD.md). Consulted by [Node.offload]. *)
type offload_mode =
  | Offload_never
      (** run traversal plans client-side over the cache; wire behavior
          is byte-identical to the pre-offload runtime *)
  | Offload_auto
      (** let the adaptive policy engine pick offload vs local per root
          type from measured outcomes (no engine: offload when the root
          is foreign) *)
  | Offload_always  (** always offload plans whose root is foreign *)

type writeback_grain =
  | Page_grain
      (** ship every datum on a dirty page (paper: "dirtiness can be
          detected by page-grain") *)
  | Twin_diff
      (** keep a pristine twin of a page at first write and ship only
          data that actually changed, at extra CPU cost *)

type t = {
  budget : closure_budget;
  grouping : alloc_grouping;
  order : closure_order;
  grain : writeback_grain;
  batch_remote_ops : bool;
      (** batch [extended_malloc]/[extended_free] requests until the next
          control transfer (paper section 3.5); [false] issues one
          message per primitive *)
  delta_coherency : bool;
      (** ship only changed byte ranges of a modified datum back to its
          home ([Wb_delta]), maintain a per-home copy directory and send
          session-end invalidation only to spaces that actually cached
          data (see docs/DELTA.md); [false] reproduces the paper's
          full-item write-back + cluster-wide invalidation multicast,
          byte-identical on the wire to the pre-delta runtime *)
  admission : admission_policy;
      (** conflict policy when concurrent admission is enabled; inert
          (and defaulted to [Queue_conflicts]) otherwise *)
  offload : offload_mode;
      (** traversal-offloading mode (default [Offload_never], which
          leaves the wire byte-identical to the pre-offload runtime) *)
}

(** The proposed method; [closure_size] in bytes defaults to the paper's
    8192. [delta] turns on delta coherency (default off); [admission]
    picks the concurrent-admission conflict policy (default
    [Queue_conflicts]); [offload] picks the traversal-offloading mode
    (default [Offload_never]). *)
val smart :
  ?closure_size:int ->
  ?delta:bool ->
  ?admission:admission_policy ->
  ?offload:offload_mode ->
  unit ->
  t

(** Whole closure shipped with the pointer; no faults afterwards. *)
val fully_eager : t

(** One callback per first dereference. *)
val fully_lazy : t

val pp : Format.formatter -> t -> unit

(** [budget_allows t ~total ~extra] decides whether shipping [extra] more
    bytes on top of [total] stays within the closure budget. *)
val budget_allows : t -> total:int -> extra:int -> bool

(** Programmer-supplied closure-shape hints.

    The paper leaves open how to optimize "the shape of the subset of the
    transitive closure of a pointer" and suggests that "one promising
    solution is to use suggestions provided by the programmer" (section
    6). A hint tells the closure engine which pointer fields of a type to
    traverse, in what order of priority, and whether to prune the rest —
    e.g. follow a list's [next] chain but never drag its bulky [blob]
    payloads along. Hints affect only prefetching: pruned data is still
    fetched on demand when the program actually touches it. *)

open Srpc_memory
open Srpc_types

type t

(** A hint for one registered struct type. *)
type rule = {
  follow : string list;
      (** direct field names to traverse, highest priority first *)
  prune_others : bool;
      (** when true, pointer fields not listed are not traversed (their
          data stays lazy); when false they are traversed after the
          listed ones *)
}

(** Raised by {!pointer_fields} when a hint's [follow] list names a
    field the hinted type does not declare. *)
exception Unknown_field of { ty : string; field : string }

val create : unit -> t

(** [set t ~ty rule] installs (or replaces) the hint for [ty]. *)
val set : t -> ty:string -> rule -> unit

val clear : t -> ty:string -> unit
val find : t -> ty:string -> rule option

(** All installed hints, unordered — the linter's view of the table. *)
val to_list : t -> (string * rule) list

(** [pointer_fields t reg arch ~ty] is the pointer-leaf list of [ty] —
    [(offset, pointee type)] — in traversal order after applying the
    hint; without a hint it equals {!Layout.pointer_leaves}.
    @raise Unknown_field if a hinted field does not exist on [ty]. *)
val pointer_fields : t -> Registry.t -> Arch.t -> ty:string -> (int * string) list

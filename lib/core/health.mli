(** Deterministic virtual-time failure detector.

    Watched peers are probed with {!Wire.request.Hb} liveness frames
    over the ordinary {!Srpc_simnet.Transport}; consecutive missed
    probes (timeouts or crashed-peer errors) escalate a peer from
    [Alive] to [Suspected] (after [suspect_after] misses) to [Dead]
    (after [confirm_after]), and the first answered probe drops it back
    to [Alive], recording a revival. The admission controller's circuit
    breaker consults {!available} to refuse sessions that would touch a
    suspected- or confirmed-dead peer (see docs/ROBUSTNESS.md).

    All probing runs on the simulated clock against the seeded fault
    plan, so detection is exactly reproducible; with no detector
    constructed, no heartbeat frames exist and wire behavior is
    byte-identical to a health-free cluster. *)

type state = Alive | Suspected | Dead

type t

(** [create ~src ~registry ~stats transport] builds a detector probing
    from endpoint [src]. [suspect_after] (default 2) and
    [confirm_after] (default 4) are the consecutive-miss thresholds for
    suspicion and confirmed death.
    @raise Invalid_argument
      unless [1 <= suspect_after <= confirm_after]. *)
val create :
  ?suspect_after:int ->
  ?confirm_after:int ->
  src:string ->
  registry:Srpc_types.Registry.t ->
  stats:Srpc_simnet.Stats.t ->
  Srpc_simnet.Transport.t ->
  t

(** Add [ep] to the watched set (idempotent; peers are also watched
    implicitly by the first query or probe naming them). *)
val watch : t -> string -> unit

val state : t -> string -> state

(** Times the peer came back from [Suspected]/[Dead] to [Alive]. *)
val revivals : t -> string -> int

(** The circuit-breaker predicate: true iff the peer is [Alive]. *)
val available : t -> string -> bool

(** [probe t ep] sends one heartbeat and returns the peer's new state.
    Counts into [Stats.heartbeats_sent]; a first suspicion counts into
    [Stats.suspicions]. *)
val probe : t -> string -> state

(** Probe every watched peer once, in endpoint order. *)
val probe_all : t -> unit

(** [observe t trace ~from] folds the ground-truth
    {!Srpc_simnet.Trace.kind.Crash}/[Revive] marks recorded since event
    index [from] into the detector — planned chaos is reflected without
    waiting out a probe cycle (a revive mark triggers a confirming
    probe). Returns the new cursor. *)
val observe : t -> Srpc_simnet.Trace.t -> from:int -> int

(** RPC session state, shared by every node of a cluster.

    "A ground thread must declare the beginning and the end of an RPC
    session. The concept of an RPC session is needed to determine the
    period for which the runtime system guarantees to respond to remote
    data references and to maintain the coherency of the cached data"
    (paper, section 3.1). One session is active at a time — the paper's
    single-active-thread model.

    {b Concurrent admission.} When [set_concurrent] turns the registry
    into multi-open mode, several sessions may be open simultaneously
    (the admission controller guarantees their footprints do not
    conflict). [current] then designates the {e focused} session — the
    one the node runtimes charge work to. The focus is switched with
    {!focus} by the ground harness before each session step and by every
    node's dispatcher on each incoming frame (requests carry their
    session id on the wire). In the default single-open mode nothing
    about the historical behavior changes. *)

open Srpc_memory

type info = {
  id : int;
  ground : Space_id.t;
  mutable participants : Space_id.Set.t;
  mutable cachers : Space_id.Set.t;
      (** spaces that received a data copy (item or delta-patched) this
          session — the union of every sender's shipping provenance,
          standing in for metadata piggybacked on data transfers. The
          ground's targeted session-end invalidation (delta coherency)
          goes to exactly this set; spaces that cached nothing are
          skipped. *)
}

type t

exception No_active_session
exception Session_already_active

(** Raised at the ground thread when a participant became unreachable
    mid-session and the runtime ran the session abort: the modified data
    set was discarded (never written back), every participant's cache was
    invalidated, and the session is closed. Both nodes remain usable —
    the next session on the same cluster works. *)
exception Session_aborted of { session : int; reason : string }

val create : unit -> t

(** [begin_session t ~ground] opens a session rooted at [ground].
    @raise Session_already_active if one is open (single-open mode). *)
val begin_session : t -> ground:Space_id.t -> info

(** [close t] marks the focused session ended (the ground node's runtime
    calls this after write-back and invalidation). *)
val close : t -> unit

val current : t -> info option

(** [set_concurrent t flag] switches the registry between the historical
    single-open mode ([false], the default) and multi-open mode. *)
val set_concurrent : t -> bool -> unit

val concurrent_enabled : t -> bool

(** [reserve t] draws the next session id without opening it — the
    admission controller names queued sessions before they begin. *)
val reserve : t -> int

(** [begin_reserved t ~id ~ground] opens a previously {!reserve}d
    session (multi-open mode only) and focuses it.
    @raise Session_already_active outside multi-open mode, or if [id] is
    already open. *)
val begin_reserved : t -> id:int -> ground:Space_id.t -> info

(** [focus t id] makes the open session [id] the current one.
    @raise No_active_session if [id] is not open. *)
val focus : t -> int -> unit

(** [find t id] is the open session [id], multi-open mode only. *)
val find : t -> int -> info option

val open_count : t -> int

(** Open session ids, ascending. *)
val open_ids : t -> int list

(** @raise No_active_session when none is open. *)
val current_exn : t -> info

val is_active : t -> bool

(** [join t id] records [id] as a participant of the active session. *)
val join : t -> Space_id.t -> unit

(** [record_casher t id] records that [id] received a copy of some datum
    in the active session (see {!info.cachers}). *)
val record_casher : t -> Space_id.t -> unit

(* Concurrent-session admission (paper section 3.1, lifted to many
   sessions).

   The paper's coherency protocol is safe because one thread of control
   is active inside a session; the admission controller generalizes the
   guarantee to the cluster: sessions whose static footprints are
   disjoint (no CC-series error under [Footprint.interferes]) may be
   open simultaneously, because no datum root can be written by one
   while another reads or writes it. Conflicting candidates are either
   FIFO-queued on the contended roots or denied for backoff-retry,
   per [Strategy.admission_policy].

   Optimistic validation at close piggybacks on the same idea as the
   delta layer's shadow versions: every committed session bumps a
   per-root version counter for the roots it wrote, and every admitted
   session snapshots the counters of all roots it will touch. A
   mismatch at close means a conflicting foreign write slipped past
   admission (only possible when the conflict check was bypassed, e.g.
   [Node.chaos_admit_conflicting]); the session must abort and retry
   rather than commit a lost update. *)

open Srpc_analysis

type shed = Queue_full | Retry_budget | Dead_peer of string

type decision = Admitted | Queued | Denied | Overloaded of shed

type waiting = { w_session : int; w_fp : Footprint.t }

type t = {
  policy : Strategy.admission_policy;
  stats : Srpc_simnet.Stats.t;
  queue_cap : int;
  retry_budget : int;
  health : Health.t option;
  open_tbl : (int, Footprint.t) Hashtbl.t;
  mutable queue : waiting list;  (* FIFO; head is the oldest waiter *)
  versions : (string, int) Hashtbl.t;  (* datum root -> committed writes *)
  snaps : (int, (string * int) list) Hashtbl.t;
      (* session -> root versions observed at admission *)
  deferred : (int, unit) Hashtbl.t;
      (* sessions that were queued or denied at least once *)
  attempts : (int, int) Hashtbl.t;
      (* session -> deferrals so far, charged against [retry_budget] *)
}

let create ?(policy = Strategy.Queue_conflicts) ?(queue_cap = max_int)
    ?(retry_budget = max_int) ?health stats =
  if queue_cap < 0 then invalid_arg "Admission.create: negative queue_cap";
  if retry_budget < 1 then invalid_arg "Admission.create: retry_budget < 1";
  {
    policy;
    stats;
    queue_cap;
    retry_budget;
    health;
    open_tbl = Hashtbl.create 16;
    queue = [];
    versions = Hashtbl.create 64;
    snaps = Hashtbl.create 16;
    deferred = Hashtbl.create 16;
    attempts = Hashtbl.create 16;
  }

let policy t = t.policy
let open_count t = Hashtbl.length t.open_tbl
let queue_length t = List.length t.queue

let root_version t root =
  Option.value (Hashtbl.find_opt t.versions root) ~default:0

let fp_roots (fp : Footprint.t) =
  List.map (fun (r : Footprint.region) -> r.Footprint.root) fp.Footprint.regions
  |> List.sort_uniq String.compare

let fp_write_roots (fp : Footprint.t) =
  List.filter_map
    (fun (r : Footprint.region) ->
      match r.Footprint.mode with
      | Footprint.Write | Footprint.Free -> Some r.Footprint.root
      | Footprint.Read -> None)
    fp.Footprint.regions
  |> List.sort_uniq String.compare

let pair_conflicts fp fp' =
  List.exists Diagnostic.is_error (Footprint.interferes fp fp')

(* Roots contended between [fp] and the sessions currently open (the
   queue is not consulted: this reports who we would wait on). *)
let contended_roots t fp =
  Hashtbl.fold
    (fun _ fp' acc ->
      if pair_conflicts fp fp' then
        List.filter (fun root -> List.mem root (fp_roots fp')) (fp_roots fp)
        @ acc
      else acc)
    t.open_tbl []
  |> List.sort_uniq String.compare

let conflicts_with_open t fp =
  Hashtbl.fold (fun _ fp' hit -> hit || pair_conflicts fp fp') t.open_tbl false

let conflicts_with_queue t fp =
  List.exists (fun w -> pair_conflicts fp w.w_fp) t.queue

let snapshot t ~session fp =
  Hashtbl.replace t.snaps session
    (List.map (fun root -> (root, root_version t root)) (fp_roots fp))

let admit t ~session fp =
  Hashtbl.replace t.open_tbl session fp;
  snapshot t ~session fp;
  Srpc_simnet.Stats.incr_sessions_admitted t.stats;
  Hashtbl.remove t.attempts session;
  if Hashtbl.mem t.deferred session then begin
    Srpc_simnet.Stats.incr_sessions_retried t.stats;
    Hashtbl.remove t.deferred session
  end

(* A deferral charged against the session's retry budget; the budget
   counts deferrals of the same reserved id, so a session that keeps
   colliding is eventually shed instead of retrying forever. *)
let charge_attempt t ~session =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.attempts session) in
  Hashtbl.replace t.attempts session n;
  n

let breaker_open t peers =
  match t.health with
  | None -> None
  | Some health ->
    List.find_opt (fun ep -> not (Health.available health ep)) peers

let request ?(force = false) ?(peers = []) t ~session fp =
  if force then begin
    admit t ~session fp;
    Admitted
  end
  else
    match breaker_open t peers with
    | Some ep ->
      (* the session would touch a suspected- or confirmed-dead peer:
         refuse it until health confirms revival. Not charged against
         the retry budget — the session did nothing wrong. *)
      Srpc_simnet.Stats.incr_breaker_trips t.stats;
      Overloaded (Dead_peer ep)
    | None ->
      if
        conflicts_with_open t fp
        || (t.policy = Strategy.Queue_conflicts && conflicts_with_queue t fp)
      then
        if charge_attempt t ~session > t.retry_budget then begin
          (* budget exhausted: typed shed, terminal for this attempt *)
          Hashtbl.remove t.attempts session;
          Hashtbl.remove t.deferred session;
          Srpc_simnet.Stats.incr_sheds t.stats;
          Overloaded Retry_budget
        end
        else begin
          match t.policy with
          | Strategy.Queue_conflicts ->
            if List.length t.queue >= t.queue_cap then begin
              (* bounded queue: shed rather than grow without limit *)
              Hashtbl.remove t.attempts session;
              Hashtbl.remove t.deferred session;
              Srpc_simnet.Stats.incr_sheds t.stats;
              Overloaded Queue_full
            end
            else begin
              Hashtbl.replace t.deferred session ();
              t.queue <- t.queue @ [ { w_session = session; w_fp = fp } ];
              Srpc_simnet.Stats.incr_sessions_queued t.stats;
              Queued
            end
          | Strategy.Abort_retry ->
            Hashtbl.replace t.deferred session ();
            Srpc_simnet.Stats.incr_sessions_aborted t.stats;
            Denied
        end
      else begin
        admit t ~session fp;
        Admitted
      end

let validate t ~session =
  match Hashtbl.find_opt t.snaps session with
  | None -> true
  | Some snap ->
    List.for_all (fun (root, v) -> root_version t root = v) snap

let fail_validation t ~session =
  Srpc_simnet.Stats.incr_validations_failed t.stats;
  Hashtbl.replace t.deferred session ()

(* Drain the FIFO after [close]: a waiter is admitted when it conflicts
   with neither the (updated) open set nor any waiter still ahead of it
   — no barging past an older waiter contending the same roots. *)
let drain t =
  let admitted = ref [] in
  let still = ref [] in
  List.iter
    (fun w ->
      if
        conflicts_with_open t w.w_fp
        || List.exists (fun w' -> pair_conflicts w.w_fp w'.w_fp) !still
      then still := w :: !still
      else begin
        admit t ~session:w.w_session w.w_fp;
        admitted := (w.w_session, w.w_fp) :: !admitted
      end)
    t.queue;
  t.queue <- List.rev !still;
  List.rev !admitted

let close ?(committed = true) t ~session =
  (match (committed, Hashtbl.find_opt t.open_tbl session) with
  | true, Some fp ->
    List.iter
      (fun root -> Hashtbl.replace t.versions root (root_version t root + 1))
      (fp_write_roots fp)
  | _ -> ());
  Hashtbl.remove t.open_tbl session;
  Hashtbl.remove t.snaps session;
  drain t

(* Deterministic jitter: splitmix64 over (session, attempt), mapped to a
   multiplier in [0.5, 1.5). Without it, sessions denied at the same
   instant share the same capped-exponential delay and re-collide
   forever — the retry storm the seeded spread breaks up while staying
   exactly reproducible. *)
let splitmix64 seed =
  let open Int64 in
  let z = add seed 0x9e3779b97f4a7c15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let jitter_factor ~session ~attempt =
  let h =
    splitmix64
      (Int64.logxor
         (Int64.mul (Int64.of_int session) 0x2545f4914f6cdd1dL)
         (Int64.of_int attempt))
  in
  (* top 53 bits -> uniform [0, 1) *)
  let u =
    Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
  in
  0.5 +. u

(* A denied session retries under capped exponential backoff with
   deterministic seeded jitter; the delay is virtual time, scheduled by
   the caller's event loop. *)
let backoff_delay ~session ~attempt ~base =
  let capped = min attempt 6 in
  base *. float_of_int (1 lsl capped) *. jitter_factor ~session ~attempt

(* Concurrent-session admission (paper section 3.1, lifted to many
   sessions).

   The paper's coherency protocol is safe because one thread of control
   is active inside a session; the admission controller generalizes the
   guarantee to the cluster: sessions whose static footprints are
   disjoint (no CC-series error under [Footprint.interferes]) may be
   open simultaneously, because no datum root can be written by one
   while another reads or writes it. Conflicting candidates are either
   FIFO-queued on the contended roots or denied for backoff-retry,
   per [Strategy.admission_policy].

   Optimistic validation at close piggybacks on the same idea as the
   delta layer's shadow versions: every committed session bumps a
   per-root version counter for the roots it wrote, and every admitted
   session snapshots the counters of all roots it will touch. A
   mismatch at close means a conflicting foreign write slipped past
   admission (only possible when the conflict check was bypassed, e.g.
   [Node.chaos_admit_conflicting]); the session must abort and retry
   rather than commit a lost update. *)

open Srpc_analysis

type decision = Admitted | Queued | Denied

type waiting = { w_session : int; w_fp : Footprint.t }

type t = {
  policy : Strategy.admission_policy;
  stats : Srpc_simnet.Stats.t;
  open_tbl : (int, Footprint.t) Hashtbl.t;
  mutable queue : waiting list;  (* FIFO; head is the oldest waiter *)
  versions : (string, int) Hashtbl.t;  (* datum root -> committed writes *)
  snaps : (int, (string * int) list) Hashtbl.t;
      (* session -> root versions observed at admission *)
  deferred : (int, unit) Hashtbl.t;
      (* sessions that were queued or denied at least once *)
}

let create ?(policy = Strategy.Queue_conflicts) stats =
  {
    policy;
    stats;
    open_tbl = Hashtbl.create 16;
    queue = [];
    versions = Hashtbl.create 64;
    snaps = Hashtbl.create 16;
    deferred = Hashtbl.create 16;
  }

let policy t = t.policy
let open_count t = Hashtbl.length t.open_tbl
let queue_length t = List.length t.queue

let root_version t root =
  Option.value (Hashtbl.find_opt t.versions root) ~default:0

let fp_roots (fp : Footprint.t) =
  List.map (fun (r : Footprint.region) -> r.Footprint.root) fp.Footprint.regions
  |> List.sort_uniq String.compare

let fp_write_roots (fp : Footprint.t) =
  List.filter_map
    (fun (r : Footprint.region) ->
      match r.Footprint.mode with
      | Footprint.Write | Footprint.Free -> Some r.Footprint.root
      | Footprint.Read -> None)
    fp.Footprint.regions
  |> List.sort_uniq String.compare

let pair_conflicts fp fp' =
  List.exists Diagnostic.is_error (Footprint.interferes fp fp')

(* Roots contended between [fp] and the sessions currently open (the
   queue is not consulted: this reports who we would wait on). *)
let contended_roots t fp =
  Hashtbl.fold
    (fun _ fp' acc ->
      if pair_conflicts fp fp' then
        List.filter (fun root -> List.mem root (fp_roots fp')) (fp_roots fp)
        @ acc
      else acc)
    t.open_tbl []
  |> List.sort_uniq String.compare

let conflicts_with_open t fp =
  Hashtbl.fold (fun _ fp' hit -> hit || pair_conflicts fp fp') t.open_tbl false

let conflicts_with_queue t fp =
  List.exists (fun w -> pair_conflicts fp w.w_fp) t.queue

let snapshot t ~session fp =
  Hashtbl.replace t.snaps session
    (List.map (fun root -> (root, root_version t root)) (fp_roots fp))

let admit t ~session fp =
  Hashtbl.replace t.open_tbl session fp;
  snapshot t ~session fp;
  Srpc_simnet.Stats.incr_sessions_admitted t.stats;
  if Hashtbl.mem t.deferred session then begin
    Srpc_simnet.Stats.incr_sessions_retried t.stats;
    Hashtbl.remove t.deferred session
  end

let request ?(force = false) t ~session fp =
  if force then begin
    admit t ~session fp;
    Admitted
  end
  else if
    conflicts_with_open t fp
    || (t.policy = Strategy.Queue_conflicts && conflicts_with_queue t fp)
  then (
    Hashtbl.replace t.deferred session ();
    match t.policy with
    | Strategy.Queue_conflicts ->
      t.queue <- t.queue @ [ { w_session = session; w_fp = fp } ];
      Srpc_simnet.Stats.incr_sessions_queued t.stats;
      Queued
    | Strategy.Abort_retry ->
      Srpc_simnet.Stats.incr_sessions_aborted t.stats;
      Denied)
  else begin
    admit t ~session fp;
    Admitted
  end

let validate t ~session =
  match Hashtbl.find_opt t.snaps session with
  | None -> true
  | Some snap ->
    List.for_all (fun (root, v) -> root_version t root = v) snap

let fail_validation t ~session =
  Srpc_simnet.Stats.incr_validations_failed t.stats;
  Hashtbl.replace t.deferred session ()

(* Drain the FIFO after [close]: a waiter is admitted when it conflicts
   with neither the (updated) open set nor any waiter still ahead of it
   — no barging past an older waiter contending the same roots. *)
let drain t =
  let admitted = ref [] in
  let still = ref [] in
  List.iter
    (fun w ->
      if
        conflicts_with_open t w.w_fp
        || List.exists (fun w' -> pair_conflicts w.w_fp w'.w_fp) !still
      then still := w :: !still
      else begin
        admit t ~session:w.w_session w.w_fp;
        admitted := (w.w_session, w.w_fp) :: !admitted
      end)
    t.queue;
  t.queue <- List.rev !still;
  List.rev !admitted

let close ?(committed = true) t ~session =
  (match (committed, Hashtbl.find_opt t.open_tbl session) with
  | true, Some fp ->
    List.iter
      (fun root -> Hashtbl.replace t.versions root (root_version t root + 1))
      (fp_write_roots fp)
  | _ -> ());
  Hashtbl.remove t.open_tbl session;
  Hashtbl.remove t.snaps session;
  drain t

(* A denied session retries under capped exponential backoff; the delay
   is virtual time, scheduled by the caller's event loop. *)
let backoff_delay ~attempt ~base =
  let capped = min attempt 6 in
  base *. float_of_int (1 lsl capped)

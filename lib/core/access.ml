open Srpc_memory
open Srpc_types

type ptr = { addr : int; ty : string }

let ptr ~ty addr = { addr; ty }
let null ~ty = { addr = 0; ty }
let is_null p = p.addr = 0

let of_value = function
  | Value.Ptr { addr; ty } -> { addr; ty }
  | v -> invalid_arg (Format.asprintf "Access.of_value: %a is not a pointer" Value.pp v)

let to_value p = Value.Ptr { addr = p.addr; ty = p.ty }

(* Field resolution is on every data access of every workload; memoize it
   per (architecture, type, field). *)
type field_info = { offset : int; fty : Type_desc.t }

let field_memo : (string * string * string, field_info) Hashtbl.t = Hashtbl.create 256

let field_info node p ~field =
  let arch = Address_space.arch (Node.space node) in
  let key = (arch.Arch.name, p.ty, field) in
  match Hashtbl.find_opt field_memo key with
  | Some info -> info
  | None ->
    let reg = Node.registry node in
    let ty = Type_desc.Named p.ty in
    let offset = Layout.field_offset reg arch ~ty ~field in
    let fty = Layout.field_type reg ~ty ~field in
    let info = { offset; fty } in
    Hashtbl.add field_memo key info;
    info

let resolve_prim node fty =
  match Registry.resolve (Node.registry node) fty with
  | Type_desc.Prim p -> p
  | Type_desc.Pointer _ | Array _ | Struct _ ->
    invalid_arg "Access: field is not a primitive"
  | Type_desc.Named _ -> assert false

let check_not_null p =
  if is_null p then invalid_arg ("Access: null " ^ p.ty ^ " pointer dereference")

let get_int node p ~field =
  check_not_null p;
  Node.charge_touch ~addr:p.addr node;
  let { offset; fty } = field_info node p ~field in
  let addr = p.addr + offset in
  let m = Node.mmu node in
  match resolve_prim node fty with
  | Type_desc.I8 -> Mem.load_i8 m ~addr
  | I16 -> Mem.load_i16 m ~addr
  | I32 -> Int32.to_int (Mem.load_i32 m ~addr)
  | I64 -> Int64.to_int (Mem.load_i64 m ~addr)
  | F32 | F64 -> invalid_arg "Access.get_int: float field"

(* A store that leaves the bytes as they were is invisible to the
   coherency layer — the twin/shadow diffs find no dirty range and the
   write-back is elided — so the race checker must not be told a write
   happened either. The comparison load is only paid while a trace is
   collecting witnesses. *)
let set_int node p ~field v =
  check_not_null p;
  let { offset; fty } = field_info node p ~field in
  let addr = p.addr + offset in
  let m = Node.mmu node in
  let prim = resolve_prim node fty in
  let unchanged =
    Node.traced node
    &&
    match prim with
    | Type_desc.I8 -> Mem.load_i8 m ~addr = v
    | I16 -> Mem.load_i16 m ~addr = v
    | I32 -> Int32.equal (Mem.load_i32 m ~addr) (Int32.of_int v)
    | I64 -> Int64.equal (Mem.load_i64 m ~addr) (Int64.of_int v)
    | F32 | F64 -> false
  in
  Node.charge_touch ~addr:p.addr ~write:(not unchanged) node;
  match prim with
  | Type_desc.I8 -> Mem.store_i8 m ~addr v
  | I16 -> Mem.store_i16 m ~addr v
  | I32 -> Mem.store_i32 m ~addr (Int32.of_int v)
  | I64 -> Mem.store_i64 m ~addr (Int64.of_int v)
  | F32 | F64 -> invalid_arg "Access.set_int: float field"

let get_i64 node p ~field =
  check_not_null p;
  Node.charge_touch ~addr:p.addr node;
  let { offset; _ } = field_info node p ~field in
  Mem.load_i64 (Node.mmu node) ~addr:(p.addr + offset)

let set_i64 node p ~field v =
  check_not_null p;
  let { offset; _ } = field_info node p ~field in
  let addr = p.addr + offset in
  let m = Node.mmu node in
  let unchanged = Node.traced node && Int64.equal (Mem.load_i64 m ~addr) v in
  Node.charge_touch ~addr:p.addr ~write:(not unchanged) node;
  Mem.store_i64 m ~addr v

let get_f64 node p ~field =
  check_not_null p;
  Node.charge_touch ~addr:p.addr node;
  let { offset; fty } = field_info node p ~field in
  let addr = p.addr + offset in
  let m = Node.mmu node in
  match resolve_prim node fty with
  | Type_desc.F32 -> Mem.load_f32 m ~addr
  | F64 -> Mem.load_f64 m ~addr
  | I8 | I16 | I32 | I64 -> invalid_arg "Access.get_f64: integer field"

let set_f64 node p ~field v =
  check_not_null p;
  let { offset; fty } = field_info node p ~field in
  let addr = p.addr + offset in
  let m = Node.mmu node in
  let prim = resolve_prim node fty in
  let unchanged =
    (* bit-compare: the diff layer works on stored bytes, and NaNs must
       compare by representation, not IEEE equality *)
    Node.traced node
    &&
    match prim with
    | Type_desc.F32 ->
      Int32.equal
        (Int32.bits_of_float (Mem.load_f32 m ~addr))
        (Int32.bits_of_float v)
    | F64 ->
      Int64.equal (Int64.bits_of_float (Mem.load_f64 m ~addr))
        (Int64.bits_of_float v)
    | I8 | I16 | I32 | I64 -> false
  in
  Node.charge_touch ~addr:p.addr ~write:(not unchanged) node;
  match prim with
  | Type_desc.F32 -> Mem.store_f32 m ~addr v
  | F64 -> Mem.store_f64 m ~addr v
  | I8 | I16 | I32 | I64 -> invalid_arg "Access.set_f64: integer field"

let pointee node fty =
  match Registry.resolve (Node.registry node) fty with
  | Type_desc.Pointer target -> target
  | Type_desc.Prim _ | Array _ | Struct _ ->
    invalid_arg "Access: field is not a pointer"
  | Type_desc.Named _ -> assert false

let get_ptr node p ~field =
  check_not_null p;
  Node.charge_touch ~addr:p.addr node;
  let { offset; fty } = field_info node p ~field in
  let target = pointee node fty in
  let word = Mem.load_word (Node.mmu node) ~addr:(p.addr + offset) in
  { addr = word; ty = target }

let set_ptr node p ~field q =
  check_not_null p;
  let { offset; fty } = field_info node p ~field in
  let target = pointee node fty in
  if (not (is_null q)) && not (String.equal q.ty target) then
    invalid_arg
      (Printf.sprintf "Access.set_ptr: storing %s* into %s* field" q.ty target);
  let addr = p.addr + offset in
  let m = Node.mmu node in
  let unchanged = Node.traced node && Mem.load_word m ~addr = q.addr in
  Node.charge_touch ~addr:p.addr ~write:(not unchanged) node;
  Mem.store_word m ~addr q.addr

let stride node ty =
  let arch = Address_space.arch (Node.space node) in
  let l = Layout.of_type (Node.registry node) arch (Type_desc.Named ty) in
  (l.Layout.size + l.Layout.align - 1) / l.Layout.align * l.Layout.align

let elem node p i =
  check_not_null p;
  { p with addr = p.addr + (i * stride node p.ty) }

let load_int node p =
  check_not_null p;
  Node.charge_touch ~addr:p.addr node;
  let m = Node.mmu node in
  match Registry.resolve (Node.registry node) (Type_desc.Named p.ty) with
  | Type_desc.Prim I8 -> Mem.load_i8 m ~addr:p.addr
  | Type_desc.Prim I16 -> Mem.load_i16 m ~addr:p.addr
  | Type_desc.Prim I32 -> Int32.to_int (Mem.load_i32 m ~addr:p.addr)
  | Type_desc.Prim I64 -> Int64.to_int (Mem.load_i64 m ~addr:p.addr)
  | Type_desc.Prim (F32 | F64) | Pointer _ | Array _ | Struct _ ->
    invalid_arg "Access.load_int: not an integer pointee"
  | Type_desc.Named _ -> assert false

let store_int node p v =
  check_not_null p;
  let m = Node.mmu node in
  let prim = Registry.resolve (Node.registry node) (Type_desc.Named p.ty) in
  let unchanged =
    Node.traced node
    &&
    match prim with
    | Type_desc.Prim I8 -> Mem.load_i8 m ~addr:p.addr = v
    | Type_desc.Prim I16 -> Mem.load_i16 m ~addr:p.addr = v
    | Type_desc.Prim I32 ->
      Int32.equal (Mem.load_i32 m ~addr:p.addr) (Int32.of_int v)
    | Type_desc.Prim I64 ->
      Int64.equal (Mem.load_i64 m ~addr:p.addr) (Int64.of_int v)
    | _ -> false
  in
  Node.charge_touch ~addr:p.addr ~write:(not unchanged) node;
  match prim with
  | Type_desc.Prim I8 -> Mem.store_i8 m ~addr:p.addr v
  | Type_desc.Prim I16 -> Mem.store_i16 m ~addr:p.addr v
  | Type_desc.Prim I32 -> Mem.store_i32 m ~addr:p.addr (Int32.of_int v)
  | Type_desc.Prim I64 -> Mem.store_i64 m ~addr:p.addr (Int64.of_int v)
  | Type_desc.Prim (F32 | F64) | Pointer _ | Array _ | Struct _ ->
    invalid_arg "Access.store_int: not an integer pointee"
  | Type_desc.Named _ -> assert false

(* Deterministic virtual-time failure detector.

   Each watched peer is probed with a [Wire.Hb] liveness frame over the
   ordinary transport; the probe either returns (the peer answered an
   [Hb_ack]) or misses ([Transport.Timeout] when the fault plan ate a
   frame, [Transport.Peer_crashed] when the peer is down). Consecutive
   misses escalate the peer through the classic detector ladder:
   [Alive] -> [Suspected] (after [suspect_after] misses) -> [Dead]
   (after [confirm_after]); the first successful probe resets it to
   [Alive] and records the revival. Everything runs on the simulated
   clock and the seeded fault plan, so detection times are exactly
   reproducible.

   The existing [Trace.Crash]/[Trace.Revive] marks are ground truth the
   simulator already records; [observe] folds them in so planned chaos
   (e.g. a soak harness's crash scheduler) is reflected immediately
   without waiting out a probe cycle — a real deployment would get the
   same signal from its orchestrator. Probe-based suspicion remains the
   only path that costs wire traffic, so with no detector constructed
   the cluster's frames are byte-identical. *)

type state = Alive | Suspected | Dead

type peer = {
  mutable p_state : state;
  mutable p_misses : int;  (* consecutive missed probes *)
  mutable p_revivals : int;
}

type t = {
  transport : Srpc_simnet.Transport.t;
  stats : Srpc_simnet.Stats.t;
  registry : Srpc_types.Registry.t;
  src : string;  (* endpoint the probes originate from *)
  suspect_after : int;
  confirm_after : int;
  peers : (string, peer) Hashtbl.t;
}

let create ?(suspect_after = 2) ?(confirm_after = 4) ~src ~registry ~stats
    transport =
  if suspect_after < 1 || confirm_after < suspect_after then
    invalid_arg "Health.create: need 1 <= suspect_after <= confirm_after";
  {
    transport;
    stats;
    registry;
    src;
    suspect_after;
    confirm_after;
    peers = Hashtbl.create 8;
  }

let watched t ep =
  match Hashtbl.find_opt t.peers ep with
  | Some p -> p
  | None ->
    let p = { p_state = Alive; p_misses = 0; p_revivals = 0 } in
    Hashtbl.replace t.peers ep p;
    p

let watch t ep = ignore (watched t ep)
let state t ep = (watched t ep).p_state
let revivals t ep = (watched t ep).p_revivals

(* The circuit breaker's predicate: don't open sessions against this
   peer until health confirms it answers probes again. *)
let available t ep = (watched t ep).p_state = Alive

let mark_dead t p =
  if p.p_state <> Dead then begin
    if p.p_state = Alive then
      (* jumped straight past suspicion (planned crash observed) *)
      Srpc_simnet.Stats.incr_suspicions t.stats;
    p.p_state <- Dead
  end;
  p.p_misses <- max p.p_misses t.confirm_after

let mark_alive p =
  if p.p_state <> Alive then begin
    p.p_state <- Alive;
    p.p_revivals <- p.p_revivals + 1
  end;
  p.p_misses <- 0

let miss t p =
  p.p_misses <- p.p_misses + 1;
  if p.p_misses = t.suspect_after && p.p_state = Alive then begin
    p.p_state <- Suspected;
    Srpc_simnet.Stats.incr_suspicions t.stats
  end;
  if p.p_misses >= t.confirm_after then p.p_state <- Dead

let probe t ep =
  let p = watched t ep in
  Srpc_simnet.Stats.incr_heartbeats_sent t.stats;
  let frame = Wire.encode_request ~reg:t.registry Wire.Hb in
  (match Srpc_simnet.Transport.rpc t.transport ~src:t.src ~dst:ep frame with
  | reply -> (
    match Wire.decode_response ~reg:t.registry reply with
    | Wire.Hb_ack -> mark_alive p
    | _ -> miss t p
    | exception _ -> miss t p)
  | exception
      ( Srpc_simnet.Transport.Timeout _
      | Srpc_simnet.Transport.Peer_crashed _
      | Srpc_simnet.Transport.Unknown_endpoint _ ) ->
    miss t p);
  p.p_state

let probe_all t =
  Hashtbl.fold (fun ep _ acc -> ep :: acc) t.peers []
  |> List.sort String.compare
  |> List.iter (fun ep -> ignore (probe t ep))

(* Fold the simulator's ground-truth crash/revive marks recorded since
   [from] (an event index; returns the new cursor). *)
let observe t trace ~from =
  let events = Srpc_simnet.Trace.events trace in
  let n = List.length events in
  List.iteri
    (fun i (e : Srpc_simnet.Trace.event) ->
      if i >= from then
        match e.Srpc_simnet.Trace.kind with
        | Srpc_simnet.Trace.Crash ep ->
          if Hashtbl.mem t.peers ep then mark_dead t (watched t ep)
        | Srpc_simnet.Trace.Revive ep ->
          (* the orchestrator restarted it; let a probe confirm before
             sessions flow again *)
          if Hashtbl.mem t.peers ep then ignore (probe t ep)
        | _ -> ())
    events;
  n

open Srpc_memory
open Srpc_types
open Srpc_simnet

let src_log = Logs.Src.create "srpc.node" ~doc:"smart-RPC runtime"

module Log = (val Logs.src_log src_log : Logs.LOG)

(* Retry envelope parameters. Attempts are total tries (first send
   included); backoff doubles per retry up to the cap, charged to the
   simulated clock. *)
type retry = { max_attempts : int; base_backoff : float; max_backoff : float }

let default_retry =
  { max_attempts = 8; base_backoff = 2.5e-4; max_backoff = 8.0e-3 }

type t = {
  id : Space_id.t;
  space : Address_space.t;
  mmu : Mmu.t;
  heap : Allocator.t;
  cache : Cache.t;
  registry : Registry.t;
  transport : Transport.t;
  session : Session.t;
  hints : Hints.t;
  policy : Srpc_policy.Engine.t option;
  mutable strategy : Strategy.t;
  procs : (string, proc) Hashtbl.t;
  shipped : (int, unit) Hashtbl.t Space_id.Table.t;
      (** per peer, addresses of own data already sent in this session *)
  traveling : unit Long_pointer.Table.t;
      (** own data modified elsewhere this session: the paper's modified
          data set keeps traveling with the thread of control even after
          reaching home, so stale caches at other participants are
          refreshed (section 3.4) *)
  mutable pending_allocs : pending_alloc list;
  mutable pending_frees : Long_pointer.t list;
  mutable prov_counter : int;
  mutable session_t0 : float;
      (** simulated clock at [begin_session], for the policy's measured
          session duration *)
  retry : retry;
  mutable seq : int;  (** outgoing retry-envelope sequence counter *)
  replies : (string, int * string) Hashtbl.t;
      (** per source endpoint, the last (seq, encoded reply) served — the
          at-most-once cache that suppresses duplicate deliveries *)
  staged : (int, Wire.item list) Hashtbl.t;
      (** per session, write-back items delivered by [Wb_stage] and not
          yet applied; [Wb_commit] applies and drops them *)
  mutable state_session : int option;
      (** the session whose cached state this node currently holds; a
          frame from a newer session purges leftovers from one whose
          invalidation or abort never reached us (crashed at the time) *)
}

and proc = t -> Value.t list -> Value.t list
and pending_alloc = { prov : Long_pointer.t; pa_entry : Cache.entry }

exception Remote_error of string
exception Unknown_procedure of string
exception Invalid_pointer of int
exception Peer_unreachable of string

let id t = t.id
let arch t = Address_space.arch t.space
let space t = t.space
let mmu t = t.mmu
let registry t = t.registry
let transport t = t.transport
let strategy t = t.strategy
let hints t = t.hints
let policy t = t.policy
let set_strategy t s =
  t.strategy <- s;
  Cache.set_policy t.cache ~grouping:s.Strategy.grouping ~grain:s.Strategy.grain
let cache t = t.cache
let heap t = t.heap
let endpoint t = Space_id.to_string t.id
let sizeof t ty = Layout.sizeof_name t.registry (arch t) ty

let in_heap t addr = addr >= Allocator.base t.heap && addr < Allocator.limit t.heap

(* --- pointer swizzling (paper, section 3.2) --- *)

let swizzle t = function
  | None -> 0
  | Some (lp : Long_pointer.t) ->
    if Space_id.equal lp.origin t.id then lp.addr
    else (
      match Cache.find_by_lp t.cache lp with
      | Some e -> e.Cache.local_addr
      | None ->
        let e = Cache.allocate t.cache lp ~size:(sizeof t lp.ty) in
        Log.debug (fun m ->
            m "%a: swizzled %a -> 0x%x" Space_id.pp t.id Long_pointer.pp lp
              e.Cache.local_addr);
        e.Cache.local_addr)

let unswizzle t ~ty addr =
  if addr = 0 then None
  else if Cache.in_region t.cache addr then (
    match Cache.find_by_addr t.cache addr with
    | Some e -> Some e.Cache.lp
    | None -> raise (Invalid_pointer addr))
  else if in_heap t addr then Some (Long_pointer.make ~origin:t.id ~addr ~ty)
  else raise (Invalid_pointer addr)

let encode_ctx t =
  {
    Object_codec.enc_reg = t.registry;
    enc_arch = arch t;
    unswizzle = (fun ~ty w -> unswizzle t ~ty w);
  }

let decode_ctx t =
  {
    Object_codec.dec_reg = t.registry;
    dec_arch = arch t;
    swizzle = (fun lp -> swizzle t lp);
  }

(* --- data transfer (paper, sections 3.2-3.4) --- *)

let encode_item t ~(lp : Long_pointer.t) ~addr : Wire.item =
  let raw = Address_space.read_unchecked t.space ~addr ~len:(sizeof t lp.ty) in
  { lp; data = Object_codec.encode (encode_ctx t) ~ty:lp.ty raw }

(* Install a transferred datum. [kind] is its provenance: [`Writeback]
   items overwrite our copy and keep traveling with the thread of
   control; [`Eager] items are speculative closure extras; [`Demand]
   items answer an explicit fetch from this node. Provenance is what the
   access-pattern profile keys its outcome accounting on. *)
let install_item t ~kind (item : Wire.item) =
  let lp = item.Wire.lp in
  let dirty = kind = `Writeback in
  if Space_id.equal lp.origin t.id then begin
    (* The datum came home: apply it to the original location. When it
       arrived dirty mid-session it stays in the traveling modified set
       so later control transfers refresh other participants' caches. *)
    let raw = Object_codec.decode (decode_ctx t) ~ty:lp.ty item.Wire.data in
    Address_space.write_unchecked t.space ~addr:lp.addr raw;
    if dirty then Long_pointer.Table.replace t.traveling lp ()
  end
  else begin
    let e =
      match Cache.find_by_lp t.cache lp with
      | Some e -> e
      | None -> Cache.allocate t.cache lp ~size:(sizeof t lp.ty)
    in
    let fresh = not e.Cache.present in
    if dirty || fresh then begin
      let raw = Object_codec.decode (decode_ctx t) ~ty:lp.ty item.Wire.data in
      Address_space.write_unchecked t.space ~addr:e.Cache.local_addr raw;
      if dirty then e.Cache.dirty <- true;
      Cache.mark_present t.cache e
    end;
    (* else: a clean copy we already hold; ours is authoritative *)
    if fresh then begin
      (match kind with
      | `Eager ->
        e.Cache.prefetched <- true;
        Stats.add_prefetched_bytes (Transport.stats t.transport) e.Cache.size
      | `Writeback | `Demand -> ());
      match t.policy with
      | None -> ()
      | Some pol -> (
        let profile = Srpc_policy.Engine.profile pol in
        match kind with
        | `Eager ->
          Srpc_policy.Profile.prefetched profile ~ty:lp.Long_pointer.ty
            ~bytes:e.Cache.size
        | `Demand ->
          Srpc_policy.Profile.demand_fetched profile ~ty:lp.Long_pointer.ty
            ~bytes:e.Cache.size
        | `Writeback -> ())
    end
  end

let shipped_set t peer =
  match Space_id.Table.find_opt t.shipped peer with
  | Some s -> s
  | None ->
    let s = Hashtbl.create 64 in
    Space_id.Table.add t.shipped peer s;
    s

(* Bounded transitive closure from [seeds], in the configured traversal
   order (paper, section 3.3). Seeds are shipped unconditionally when
   [forced_seeds]; extras stop at the closure budget. Data already
   shipped to [peer] in this session is traversed but not re-sent.

   With an adaptive policy installed the static byte budget is replaced
   by the controller's per-type budgets: each candidate datum is charged
   against the budget of its own type, an exhausted type is skipped
   (left for the lazy path) without stopping traversal of the others,
   and its children are not explored. An [Unbounded] strategy stays
   unbounded — the policy only retunes bounded shipping. *)
let ship_closure t ~peer ~forced_seeds ~seeds =
  let strategy = t.strategy in
  let shipped = shipped_set t peer in
  let visited : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  let total = ref 0 in
  let budget_exceeded = ref false in
  let per_type_budget =
    match t.policy with
    | Some pol when strategy.Strategy.budget <> Strategy.Unbounded ->
      Some (fun ty -> Srpc_policy.Engine.budget_for pol ~ty)
    | Some _ | None -> None
  in
  let total_by_ty : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let used_by_ty ty =
    Option.value ~default:0 (Hashtbl.find_opt total_by_ty ty)
  in
  let budget_allows ~ty ~extra =
    match per_type_budget with
    | None -> Strategy.budget_allows strategy ~total:!total ~extra
    | Some budget -> used_by_ty ty + extra <= budget ty
  in
  let queue = Queue.create () in
  let stack = ref [] in
  let push lp =
    match strategy.Strategy.order with
    | Strategy.Breadth_first -> Queue.add lp queue
    | Strategy.Depth_first -> stack := lp :: !stack
  in
  let pop () =
    match strategy.Strategy.order with
    | Strategy.Breadth_first -> Queue.take_opt queue
    | Strategy.Depth_first -> (
      match !stack with
      | [] -> None
      | lp :: rest ->
        stack := rest;
        Some lp)
  in
  let children raw ty =
    Hints.pointer_fields t.hints t.registry (arch t) ~ty
    |> List.filter_map (fun (off, target) ->
           let w = Mem.Codec.get_word (arch t) raw off in
           if w = 0 then None else unswizzle t ~ty:target w)
  in
  let visit ~forced (lp : Long_pointer.t) =
    if Space_id.equal lp.origin t.id && not (Hashtbl.mem visited lp.addr) then begin
      Hashtbl.add visited lp.addr ();
      let size = sizeof t lp.ty in
      let raw () = Address_space.read_unchecked t.space ~addr:lp.addr ~len:size in
      if Hashtbl.mem shipped lp.addr && not forced then
        (* peer caches it already; traverse through without re-sending *)
        List.iter push (children (raw ()) lp.ty)
      else if forced || budget_allows ~ty:lp.ty ~extra:size then begin
        total := !total + size;
        Hashtbl.replace total_by_ty lp.ty (used_by_ty lp.ty + size);
        let raw = raw () in
        out := { Wire.lp; data = Object_codec.encode (encode_ctx t) ~ty:lp.ty raw } :: !out;
        Hashtbl.replace shipped lp.addr ();
        List.iter push (children raw lp.ty)
      end
      else if Option.is_none per_type_budget then budget_exceeded := true
      (* per-type budgets: this datum stays lazy, other types continue *)
    end
  in
  List.iter (visit ~forced:forced_seeds) seeds;
  let rec drain () =
    if not !budget_exceeded then
      match pop () with
      | None -> ()
      | Some lp ->
        visit ~forced:false lp;
        drain ()
  in
  drain ();
  List.rev !out

let serve_fetch t ~peer wanted =
  List.iter
    (fun (lp : Long_pointer.t) ->
      if not (Space_id.equal lp.origin t.id) then
        invalid_arg
          (Format.asprintf "Fetch for foreign datum %a" Long_pointer.pp lp);
      (* a long pointer into our heap whose block has been released is a
         stale reference: answer with a typed error instead of shipping
         whatever bytes the allocator left behind *)
      if in_heap t lp.Long_pointer.addr
         && not (Allocator.is_allocated t.heap lp.Long_pointer.addr)
      then
        raise
          (Remote_error
             (Format.asprintf "dangling fetch: %a was freed" Long_pointer.pp lp)))
    wanted;
  ship_closure t ~peer ~forced_seeds:true ~seeds:wanted

(* --- remote allocation batching (paper, section 3.5) --- *)

let group_by_space key xs =
  let tbl = Space_id.Table.create 4 in
  List.iter
    (fun x ->
      let k = key x in
      match Space_id.Table.find_opt tbl k with
      | Some r -> r := x :: !r
      | None -> Space_id.Table.add tbl k (ref [ x ]))
    xs;
  Space_id.Table.fold (fun k r acc -> (k, List.rev !r) :: acc) tbl []

let session_id t = (Session.current_exn t.session).Session.id
let faulty t = Option.is_some (Transport.fault_plan t.transport)

(* Marker prefix preserved across nesting levels so the ground thread can
   tell a dead participant apart from an ordinary remote exception. *)
let unreachable_prefix = "peer-unreachable: "

let is_unreachable_msg msg =
  String.length msg >= String.length unreachable_prefix
  && String.equal (String.sub msg 0 (String.length unreachable_prefix))
       unreachable_prefix

(* Forget everything tied to the current (or a stale) session: cached
   foreign data, shipped/traveling bookkeeping, staged write-backs and
   unflushed batched operations. Used by session abort and by the lazy
   cleanup when a node that missed an invalidation is contacted again. *)
let hard_reset t =
  Cache.invalidate t.cache;
  Space_id.Table.reset t.shipped;
  Long_pointer.Table.reset t.traveling;
  Hashtbl.reset t.staged;
  t.pending_allocs <- [];
  t.pending_frees <- [];
  t.state_session <- None

let request t ~dst req =
  let dst_ep = Space_id.to_string dst in
  match Transport.fault_plan t.transport with
  | None ->
    let reply =
      Transport.rpc t.transport ~src:(endpoint t) ~dst:dst_ep
        (Wire.encode_request ~reg:t.registry req)
    in
    Wire.decode_response ~reg:t.registry reply
  | Some _ ->
    t.seq <- t.seq + 1;
    let frame = Wire.encode_framed ~reg:t.registry ~seq:t.seq req in
    let stats = Transport.stats t.transport in
    let clock = Transport.clock t.transport in
    let rec attempt n backoff =
      match Transport.rpc t.transport ~src:(endpoint t) ~dst:dst_ep frame with
      | reply -> Wire.decode_response ~reg:t.registry reply
      | exception Transport.Peer_crashed ep -> raise (Peer_unreachable ep)
      | exception Transport.Timeout _ ->
        if n >= t.retry.max_attempts then raise (Peer_unreachable dst_ep)
        else begin
          Stats.incr_retries stats;
          Clock.advance clock backoff;
          attempt (n + 1) (Float.min (backoff *. 2.0) t.retry.max_backoff)
        end
    in
    attempt 1 t.retry.base_backoff

let expect_ack = function
  | Wire.Ack -> ()
  | Wire.Error msg -> raise (Remote_error msg)
  | Wire.Return _ | Wire.Fetched _ | Wire.Allocated _ ->
    failwith "protocol error: expected Ack"

(* Crash-safe session abort (ground only): discard the modified data set
   instead of writing it back, tell every reachable participant to drop
   session state, close the session, and surface [Session_aborted]. The
   trace carries the abort mark and the invalidation mark but no
   write-back mark — the SP005 witness that nothing was committed. *)
let abort_session t ~reason : 'a =
  let info = Session.current_exn t.session in
  let sid = info.Session.id in
  Log.warn (fun m ->
      m "%a: aborting session #%d (%s)" Space_id.pp t.id sid reason);
  Transport.mark t.transport ~src:(endpoint t) (Trace.Session_abort sid);
  Transport.mark t.transport ~src:(endpoint t) (Trace.Invalidate sid);
  let others = Space_id.Set.remove t.id info.Session.participants in
  Space_id.Set.iter
    (fun peer ->
      try expect_ack (request t ~dst:peer (Wire.Abort { session = sid }))
      with Peer_unreachable _ ->
        (* the dead peer purges its own leftovers on next contact *)
        ())
    others;
  hard_reset t;
  Session.close t.session;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Session_end sid);
  raise (Session.Session_aborted { session = sid; reason })

let peer_failure t exn : 'a =
  match Session.current t.session with
  | Some info when Space_id.equal info.Session.ground t.id ->
    let reason =
      match exn with
      | Peer_unreachable ep -> unreachable_prefix ^ ep
      | Remote_error msg -> msg
      | e -> Printexc.to_string e
    in
    abort_session t ~reason
  | Some _ | None -> raise exn

(* Wrap a protocol step that may discover a dead participant. On the
   ground thread that is a session abort; elsewhere the failure
   propagates (and travels back to the ground as a marked remote
   error). No-op without a fault plan. *)
let ground_guard t f =
  if not (faulty t) then f ()
  else
    try f () with
    | Peer_unreachable _ as e -> peer_failure t e
    | Remote_error msg as e when is_unreachable_msg msg -> peer_failure t e

let flush_remote_ops t =
  if t.pending_allocs <> [] then begin
    let batches =
      group_by_space (fun pa -> pa.prov.Long_pointer.origin) t.pending_allocs
    in
    t.pending_allocs <- [];
    List.iter
      (fun (home, pas) ->
        let reqs =
          List.map
            (fun pa -> (pa.prov.Long_pointer.addr, pa.prov.Long_pointer.ty))
            pas
        in
        match request t ~dst:home (Wire.Alloc_batch { session = session_id t; reqs })
        with
        | Wire.Allocated { addrs } ->
          List.iter
            (fun pa ->
              match List.assoc_opt pa.prov.Long_pointer.addr addrs with
              | Some real ->
                let lp =
                  Long_pointer.make ~origin:home ~addr:real
                    ~ty:pa.prov.Long_pointer.ty
                in
                Cache.rebind t.cache pa.pa_entry lp
              | None -> failwith "protocol error: allocation not answered")
            pas
        | Wire.Error msg -> raise (Remote_error msg)
        | Wire.Return _ | Wire.Fetched _ | Wire.Ack ->
          failwith "protocol error: expected Allocated")
      batches
  end;
  if t.pending_frees <> [] then begin
    let batches = group_by_space (fun lp -> lp.Long_pointer.origin) t.pending_frees in
    t.pending_frees <- [];
    List.iter
      (fun (home, lps) ->
        expect_ack
          (request t ~dst:home (Wire.Free_batch { session = session_id t; lps })))
      batches
  end

(* --- coherency protocol (paper, section 3.4) --- *)

(* Test-only defect switch: when set, the first dirty cache entry of the
   next flush is silently not written back (its page is still cleaned,
   so the update is lost for good). Exists so srpc-check can prove it
   detects and shrinks real coherency bugs; never set it in production
   code. *)
let chaos_lose_first_writeback = ref false

let collect_writebacks t =
  let entries = Cache.dirty_entries t.cache in
  if t.strategy.Strategy.grain = Strategy.Twin_diff then begin
    let psz = Address_space.page_size t.space in
    Transport.charge_cpu_bytes t.transport
      (List.length (Cache.dirty_pages t.cache) * psz)
  end;
  let cached_items =
    List.map
      (fun (e : Cache.entry) -> encode_item t ~lp:e.lp ~addr:e.local_addr)
      entries
  in
  let cached_items =
    match cached_items with
    | _ :: rest when !chaos_lose_first_writeback -> rest
    | items -> items
  in
  (* Own data modified elsewhere this session keeps traveling,
     re-encoded from the (authoritative) original. *)
  let traveling_items =
    Long_pointer.Table.fold
      (fun lp () acc -> encode_item t ~lp ~addr:lp.Long_pointer.addr :: acc)
      t.traveling []
  in
  let items = cached_items @ traveling_items in
  Stats.add_writebacks (Transport.stats t.transport) (List.length items);
  Cache.clean_after_flush t.cache;
  items

(* --- marshaling of argument values --- *)

let wire_of_value t = function
  | Value.Unit -> Wire.WUnit
  | Value.Bool b -> Wire.WBool b
  | Value.Int n -> Wire.WInt n
  | Value.Float f -> Wire.WFloat f
  | Value.Str s -> Wire.WStr s
  | Value.Ptr { addr; ty } -> Wire.WPtr (unswizzle t ~ty addr)
  | Value.Fun f -> Wire.WFun f

let value_of_wire t = function
  | Wire.WUnit -> Value.Unit
  | Wire.WBool b -> Value.Bool b
  | Wire.WInt n -> Value.Int n
  | Wire.WFloat f -> Value.Float f
  | Wire.WStr s -> Value.Str s
  | Wire.WPtr None -> Value.Ptr { addr = 0; ty = "" }
  | Wire.WPtr (Some lp) ->
    Value.Ptr { addr = swizzle t (Some lp); ty = lp.Long_pointer.ty }
  | Wire.WFun f -> Value.Fun f

(* With an unbounded budget the whole closure travels with the pointer —
   the fully eager method. Bounded budgets ship at fault time instead,
   as in the paper's experiments (section 4.1). *)
let eager_for t ~peer wvalues =
  match t.strategy.Strategy.budget with
  | Strategy.Bytes _ -> []
  | Strategy.Unbounded ->
    let seeds =
      List.filter_map
        (function
          | Wire.WPtr (Some lp) when Space_id.equal lp.Long_pointer.origin t.id ->
            Some lp
          | Wire.WPtr _ | Wire.WUnit | Wire.WBool _ | Wire.WInt _ | Wire.WFloat _
          | Wire.WStr _ | Wire.WFun _ ->
            None)
        wvalues
    in
    ship_closure t ~peer ~forced_seeds:false ~seeds

(* --- the RPC itself --- *)

let call t ~dst proc args =
  let info = Session.current_exn t.session in
  if Space_id.equal dst t.id then invalid_arg "Node.call: dst is self";
  ground_guard t @@ fun () ->
  flush_remote_ops t;
  let writebacks = collect_writebacks t in
  let wargs = List.map (wire_of_value t) args in
  let eager = eager_for t ~peer:dst wargs in
  Log.debug (fun m ->
      m "%a -> %a: call %s (%d wb, %d eager)" Space_id.pp t.id Space_id.pp dst
        proc (List.length writebacks) (List.length eager));
  match
    request t ~dst
      (Wire.Call { session = info.Session.id; proc; args = wargs; writebacks; eager })
  with
  | Wire.Return { results; writebacks; eager } ->
    List.iter (install_item t ~kind:`Writeback) writebacks;
    List.iter (install_item t ~kind:`Eager) eager;
    List.map (value_of_wire t) results
  | Wire.Error msg -> raise (Remote_error msg)
  | Wire.Fetched _ | Wire.Allocated _ | Wire.Ack ->
    failwith "protocol error: bad reply to Call"

(* --- fault handling: the lazy path (paper, section 3.2) --- *)

let fetch_missing t missing =
  let batches =
    group_by_space (fun (e : Cache.entry) -> e.lp.Long_pointer.origin) missing
  in
  let clock = Transport.clock t.transport in
  List.iter
    (fun (origin, entries) ->
      Stats.incr_callbacks (Transport.stats t.transport);
      let wanted = List.map (fun (e : Cache.entry) -> e.Cache.lp) entries in
      let t0 = Clock.now clock in
      match request t ~dst:origin (Wire.Fetch { session = session_id t; wanted })
      with
      | Wire.Fetched { items } ->
        (* Items we asked for are demand fetches; anything extra in the
           same reply is the server's speculative closure around them. *)
        List.iter
          (fun (item : Wire.item) ->
            let kind =
              if List.exists (Long_pointer.equal item.Wire.lp) wanted then `Demand
              else `Eager
            in
            install_item t ~kind item)
          items;
        (* The clock advance across this synchronous round trip is
           exactly how long the faulting thread was stopped. *)
        let stall = Clock.now clock -. t0 in
        Stats.add_stall_ns (Transport.stats t.transport)
          (int_of_float (stall *. 1e9));
        (match t.policy with
        | None -> ()
        | Some pol ->
          (* The profile gets only the avoidable part of the stall: the
             fixed round-trip and fault overheads. The demanded bytes
             cost the same wire and conversion time whether they ship
             eagerly or lazily, so pricing them as stall would push the
             controller toward eager-sized budgets whose waste it can
             never recoup. *)
          let c =
            Transport.link_cost t.transport ~src:(endpoint t)
              ~dst:(Space_id.to_string origin)
          in
          let overhead =
            (2.0 *. c.Cost_model.message_latency) +. c.Cost_model.fault_overhead
          in
          let profile = Srpc_policy.Engine.profile pol in
          let share = overhead /. float_of_int (List.length entries) in
          List.iter
            (fun (e : Cache.entry) ->
              Srpc_policy.Profile.stall profile ~ty:e.Cache.lp.Long_pointer.ty
                ~seconds:share)
            entries)
      | Wire.Error msg -> raise (Remote_error msg)
      | Wire.Return _ | Wire.Allocated _ | Wire.Ack ->
        failwith "protocol error: bad reply to Fetch")
    batches

let handle_fault t (fault : Address_space.fault) =
  ground_guard t @@ fun () ->
  Transport.charge_fault t.transport;
  let page = fault.page in
  if not (Cache.in_region t.cache (Address_space.page_base t.space page)) then
    failwith (Format.asprintf "unserviceable %a" Address_space.pp_fault fault);
  let entries = Cache.entries_on_page t.cache page in
  if entries = [] then
    failwith (Format.asprintf "%a on empty cache page" Address_space.pp_fault fault);
  (* Decoding fetched data swizzles its pointers, which can allocate
     fresh (absent) slots on this very page; the access protection can
     only be released once no datum on the page is missing (paper,
     section 3.2), so iterate until the page is fully present. *)
  let rec resolve_missing () =
    let missing =
      List.filter
        (fun (e : Cache.entry) -> not e.Cache.present)
        (Cache.entries_on_page t.cache page)
    in
    if missing <> [] then begin
      Log.debug (fun m ->
          m "%a: fault page %d, fetching %d data" Space_id.pp t.id page
            (List.length missing));
      fetch_missing t missing;
      resolve_missing ()
    end
  in
  let had_missing = List.exists (fun e -> not e.Cache.present) entries in
  resolve_missing ();
  if had_missing then Cache.refresh_protection t.cache ~page
  else
    match fault.access with
    | Address_space.Write ->
      if t.strategy.Strategy.grain = Strategy.Twin_diff then
        Transport.charge_cpu_bytes t.transport (Address_space.page_size t.space);
      Cache.mark_page_dirty t.cache ~page
    | Address_space.Read -> Cache.refresh_protection t.cache ~page

(* --- outcome accounting for the adaptive policy --- *)

(* Close the session's book on the cache, just before invalidation:
   every prefetched datum either paid off (it was touched) or was pure
   waste, and each pointer field of a touched datum yields one edge
   observation — child still absent: a healthy skip; child prefetched:
   touched or wasted; child present otherwise: the program had to
   demand it. The controller turns these into budgets and hints. *)
let record_outcomes t =
  let stats = Transport.stats t.transport in
  Cache.iter_entries t.cache (fun e ->
      if e.Cache.present && e.Cache.prefetched && not e.Cache.touched then
        Stats.add_wasted_prefetch_bytes stats e.Cache.size);
  match t.policy with
  | None -> ()
  | Some pol ->
    let profile = Srpc_policy.Engine.profile pol in
    let arch = arch t in
    Cache.iter_entries t.cache (fun (e : Cache.entry) ->
        if e.Cache.present then begin
          let ty = e.Cache.lp.Long_pointer.ty in
          if e.Cache.prefetched then
            Srpc_policy.Profile.outcome profile ~ty ~bytes:e.Cache.size
              ~touched:e.Cache.touched;
          if e.Cache.touched then
            let fields =
              (Layout.of_type t.registry arch (Type_desc.Named ty)).Layout.fields
            in
            let raw =
              lazy
                (Address_space.read_unchecked t.space ~addr:e.Cache.local_addr
                   ~len:e.Cache.size)
            in
            List.iter
              (fun (f : Layout.field) ->
                List.iter
                  (fun (off, _target) ->
                    let w =
                      Mem.Codec.get_word arch (Lazy.force raw)
                        (f.Layout.offset + off)
                    in
                    if w <> 0 && Cache.in_region t.cache w then
                      match Cache.find_by_addr t.cache w with
                      | None -> ()
                      | Some child ->
                        let outcome : Srpc_policy.Profile.edge_outcome =
                          if not child.Cache.present then Avoided
                          else if child.Cache.prefetched then
                            if child.Cache.touched then Prefetched_touched
                            else Prefetched_wasted
                          else Demanded
                        in
                        Srpc_policy.Profile.edge profile ~ty
                          ~field:f.Layout.name ~outcome ~bytes:child.Cache.size)
                  (Layout.pointer_leaves t.registry arch f.Layout.ty))
              fields
        end)

(* --- dispatch of incoming frames --- *)

(* Every frame names its session; a frame from a session other than the
   active one is a protocol violation (e.g. a stale remote pointer used
   after its session ended) and must fail loudly. *)
let check_session t session =
  let info = Session.current_exn t.session in
  if session <> info.Session.id then
    failwith
      (Printf.sprintf "session mismatch: frame for #%d, active #%d" session
         info.Session.id)

(* A node that was unreachable when its session's invalidation or abort
   went out still holds that session's cached state. The first frame of
   a newer session purges it before any processing — the lazy half of
   crash-safe reusability. *)
let ensure_fresh t session =
  (match t.state_session with
  | Some s when s <> session -> hard_reset t
  | Some _ | None -> ());
  t.state_session <- Some session

let handle t src req =
  check_session t (Wire.request_session req);
  ensure_fresh t (Wire.request_session req);
  match (req : Wire.request) with
  | Wire.Call { proc; args; writebacks; eager; session = _ } ->
    Session.join t.session t.id;
    List.iter (install_item t ~kind:`Writeback) writebacks;
    List.iter (install_item t ~kind:`Eager) eager;
    let body =
      match Hashtbl.find_opt t.procs proc with
      | Some f -> f
      | None -> raise (Unknown_procedure proc)
    in
    let vargs = List.map (value_of_wire t) args in
    let results = body t vargs in
    flush_remote_ops t;
    let wb = collect_writebacks t in
    let wres = List.map (wire_of_value t) results in
    let eager = eager_for t ~peer:(Space_id.of_string src) wres in
    Wire.Return { results = wres; writebacks = wb; eager }
  | Wire.Fetch { wanted; session = _ } ->
    Session.join t.session t.id;
    Wire.Fetched { items = serve_fetch t ~peer:(Space_id.of_string src) wanted }
  | Wire.Write_back { items; session = _ } ->
    (* installing write-backs can swizzle foreign pointers into fresh
       cache slots here, so this space must be invalidated too *)
    Session.join t.session t.id;
    List.iter (install_item t ~kind:`Writeback) items;
    Wire.Ack
  | Wire.Wb_stage { items; session } ->
    (* all-or-nothing close, phase one: hold the items without applying;
       a crash before commit leaves the originals untouched *)
    Session.join t.session t.id;
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.staged session) in
    Hashtbl.replace t.staged session (prev @ items);
    Wire.Ack
  | Wire.Wb_commit { session } ->
    Session.join t.session t.id;
    (match Hashtbl.find_opt t.staged session with
    | Some items ->
      Hashtbl.remove t.staged session;
      List.iter (install_item t ~kind:`Writeback) items
    | None -> ());
    Wire.Ack
  | Wire.Abort { session = _ } ->
    (* discard everything the session put here; nothing is applied *)
    hard_reset t;
    Wire.Ack
  | Wire.Alloc_batch { reqs; session = _ } ->
    Session.join t.session t.id;
    let addrs =
      List.map (fun (prov, ty) -> (prov, Allocator.alloc t.heap ~size:(sizeof t ty))) reqs
    in
    Wire.Allocated { addrs }
  | Wire.Free_batch { lps; session = _ } ->
    List.iter
      (fun (lp : Long_pointer.t) ->
        if not (Space_id.equal lp.origin t.id) then
          invalid_arg "Free_batch: foreign datum";
        Allocator.free t.heap lp.addr)
      lps;
    Wire.Ack
  | Wire.Invalidate { session = _ } ->
    record_outcomes t;
    Cache.invalidate t.cache;
    Space_id.Table.reset t.shipped;
    Long_pointer.Table.reset t.traveling;
    Hashtbl.reset t.staged;
    t.state_session <- None;
    Wire.Ack

let handle_encoded t src req =
  match handle t src req with
  | resp -> Wire.encode_response ~reg:t.registry resp
  | exception Peer_unreachable ep ->
    Wire.encode_response ~reg:t.registry (Wire.Error (unreachable_prefix ^ ep))
  | exception Remote_error msg when is_unreachable_msg msg ->
    Wire.encode_response ~reg:t.registry (Wire.Error msg)
  | exception exn ->
    Wire.encode_response ~reg:t.registry (Wire.Error (Printexc.to_string exn))

let dispatch t src req_str =
  match Wire.decode_framed ~reg:t.registry req_str with
  | exception exn ->
    Wire.encode_response ~reg:t.registry (Wire.Error (Printexc.to_string exn))
  | None, req -> handle_encoded t src req
  | Some seq, req -> (
    (* at-most-once: a re-sent or duplicated frame replays the cached
       reply instead of executing again *)
    match Hashtbl.find_opt t.replies src with
    | Some (last, cached) when last = seq ->
      Stats.incr_duplicates (Transport.stats t.transport);
      cached
    | Some _ | None ->
      let encoded = handle_encoded t src req in
      Hashtbl.replace t.replies src (seq, encoded);
      encoded)

(* --- sessions --- *)

let begin_session t =
  let info = Session.begin_session t.session ~ground:t.id in
  t.session_t0 <- Clock.now (Transport.clock t.transport);
  t.state_session <- Some info.Session.id;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Session_begin info.Session.id)

(* Common close-out once the coherency traffic is done: invalidate the
   ground's own cache, run the policy's control decision, close the
   session and record the end mark. *)
let close_tail t (info : Session.info) =
  record_outcomes t;
  Cache.invalidate t.cache;
  Space_id.Table.reset t.shipped;
  Long_pointer.Table.reset t.traveling;
  t.state_session <- None;
  (* Every participant has now recorded its outcomes into the shared
     profile; run one control decision and install the derived hints so
     the next session ships under the revised policy. *)
  (match t.policy with
  | None -> ()
  | Some pol ->
    let seconds = Clock.now (Transport.clock t.transport) -. t.session_t0 in
    let d = Srpc_policy.Engine.session_end ~seconds pol in
    List.iter
      (fun (r : Srpc_policy.Controller.rule) ->
        Hints.set t.hints ~ty:r.Srpc_policy.Controller.rule_ty
          {
            Hints.follow = r.Srpc_policy.Controller.follow;
            prune_others = r.Srpc_policy.Controller.prune_others;
          })
      d.Srpc_policy.Controller.rules;
    List.iter
      (fun ty -> Hints.clear t.hints ~ty)
      d.Srpc_policy.Controller.cleared);
  Session.close t.session;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Session_end info.Session.id)

let writeback_batches t =
  let items = collect_writebacks t in
  (* Own traveling items are already applied to our originals. *)
  let foreign =
    List.filter
      (fun (i : Wire.item) -> not (Space_id.equal i.lp.Long_pointer.origin t.id))
      items
  in
  group_by_space (fun (i : Wire.item) -> i.lp.Long_pointer.origin) foreign

(* The original reliable-transport close: write-backs applied on
   delivery. Kept verbatim so runs without a fault plan stay
   byte-identical. *)
let end_session_plain t (info : Session.info) =
  flush_remote_ops t;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Write_back info.Session.id);
  let batches = writeback_batches t in
  List.iter
    (fun (origin, items) ->
      expect_ack
        (request t ~dst:origin (Wire.Write_back { session = info.Session.id; items })))
    batches;
  (* snapshot participants only now: installing write-backs may have
     enrolled origin spaces that must also drop fresh cache entries *)
  Transport.mark t.transport ~src:(endpoint t) (Trace.Invalidate info.Session.id);
  let others = Space_id.Set.remove t.id info.Session.participants in
  Space_id.Set.iter
    (fun peer ->
      expect_ack (request t ~dst:peer (Wire.Invalidate { session = info.Session.id })))
    others;
  close_tail t info

(* The crash-safe close: the modified data set is first staged at every
   origin, and applied only once the full set is delivered. A
   participant dying before the commit point aborts the session with the
   originals untouched everywhere; after the commit point each origin
   applies its complete per-origin set or (if it died) none of it. *)
let end_session_faulty t (info : Session.info) =
  let sid = info.Session.id in
  let batches =
    ground_guard t @@ fun () ->
    flush_remote_ops t;
    let batches = writeback_batches t in
    List.iter
      (fun (origin, items) ->
        expect_ack (request t ~dst:origin (Wire.Wb_stage { session = sid; items })))
      batches;
    batches
  in
  (* commit point: the complete modified data set is staged everywhere *)
  Transport.mark t.transport ~src:(endpoint t) (Trace.Write_back sid);
  List.iter
    (fun (origin, _) ->
      try expect_ack (request t ~dst:origin (Wire.Wb_commit { session = sid }))
      with Peer_unreachable _ ->
        (* the dead origin's staged set dies with it and is purged on
           next contact; it never applies a partial set *)
        ())
    batches;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Invalidate sid);
  let others = Space_id.Set.remove t.id info.Session.participants in
  Space_id.Set.iter
    (fun peer ->
      try expect_ack (request t ~dst:peer (Wire.Invalidate { session = sid }))
      with Peer_unreachable _ -> ())
    others;
  close_tail t info

let end_session t =
  let info = Session.current_exn t.session in
  if not (Space_id.equal info.Session.ground t.id) then
    invalid_arg "Node.end_session: only the ground thread may end the session";
  if faulty t then end_session_faulty t info else end_session_plain t info

let with_session t f =
  begin_session t;
  match f () with
  | v ->
    end_session t;
    v
  | exception (Session.Session_aborted _ as exn) ->
    (* the abort already closed the session and reset the nodes *)
    raise exn
  | exception exn ->
    (try end_session t with _ -> ());
    raise exn

(* --- memory management --- *)

let malloc t ~ty = Allocator.alloc t.heap ~size:(sizeof t ty)

let malloc_n t ~ty n =
  let size =
    Layout.sizeof t.registry (arch t) (Type_desc.Array (Type_desc.Named ty, n))
  in
  Allocator.alloc t.heap ~size

let extended_malloc t ~home ~ty =
  if Space_id.equal home t.id then malloc t ~ty
  else begin
    ignore (Session.current_exn t.session);
    t.prov_counter <- t.prov_counter + 1;
    let prov = Long_pointer.make ~origin:home ~addr:(-t.prov_counter) ~ty in
    let e = Cache.allocate t.cache prov ~size:(sizeof t ty) in
    e.Cache.dirty <- true;
    Cache.mark_present t.cache e;
    Stats.add_remote_allocs (Transport.stats t.transport) 1;
    t.pending_allocs <- { prov; pa_entry = e } :: t.pending_allocs;
    if not t.strategy.Strategy.batch_remote_ops then flush_remote_ops t;
    e.Cache.local_addr
  end

let extended_free t addr =
  if addr = 0 then ()
  else if Cache.in_region t.cache addr then (
    match Cache.find_by_addr t.cache addr with
    | None -> raise (Invalid_pointer addr)
    | Some e ->
      Cache.remove t.cache e;
      if Long_pointer.is_provisional e.Cache.lp then
        (* never reached its home space: cancel the batched allocation *)
        t.pending_allocs <-
          List.filter
            (fun pa -> not (Long_pointer.equal pa.prov e.Cache.lp))
            t.pending_allocs
      else begin
        Stats.add_remote_frees (Transport.stats t.transport) 1;
        t.pending_frees <- e.Cache.lp :: t.pending_frees;
        if not t.strategy.Strategy.batch_remote_ops then flush_remote_ops t
      end)
  else if in_heap t addr then Allocator.free t.heap addr
  else raise (Invalid_pointer addr)

(* --- construction --- *)

let create ?(page_size = 4096) ?(heap_base = 0x10000) ?(heap_limit = 0x4000000)
    ?(cache_limit = 0x24000000) ?hints ?policy ?(validate = false)
    ?(retry = default_retry) ~id ~arch ~registry ~transport ~session ~strategy
    () =
  if retry.max_attempts < 1 then
    invalid_arg "Node.create: retry.max_attempts must be at least 1";
  if heap_limit mod page_size <> 0 then
    invalid_arg "Node.create: heap_limit must be page-aligned";
  (* Reject a malformed registry before any datum is laid out against
     it: a defective descriptor corrupts silently at run time.
     @raise Srpc_analysis.Desc_lint.Invalid_registry on error findings. *)
  if validate then Srpc_analysis.Desc_lint.validate ~arches:[ arch ] registry;
  let space = Address_space.create ~page_size ~id ~arch () in
  let mmu = Mmu.create space in
  let heap = Allocator.create ~space ~base:heap_base ~limit:heap_limit in
  let cache =
    Cache.create ~space ~base:heap_limit ~limit:cache_limit
      ~grouping:strategy.Strategy.grouping ~grain:strategy.Strategy.grain
  in
  let hints = match hints with Some h -> h | None -> Hints.create () in
  let t =
    {
      id;
      space;
      mmu;
      heap;
      cache;
      registry;
      transport;
      session;
      hints;
      policy;
      strategy;
      procs = Hashtbl.create 16;
      shipped = Space_id.Table.create 4;
      traveling = Long_pointer.Table.create 16;
      pending_allocs = [];
      pending_frees = [];
      prov_counter = 0;
      session_t0 = 0.0;
      retry;
      seq = 0;
      replies = Hashtbl.create 8;
      staged = Hashtbl.create 4;
      state_session = None;
    }
  in
  Mmu.set_handler mmu (handle_fault t);
  Transport.register transport (endpoint t) (dispatch t);
  t

let register t name body = Hashtbl.replace t.procs name body

let run_local t name args =
  match Hashtbl.find_opt t.procs name with
  | Some f -> f t args
  | None -> raise (Unknown_procedure name)
let charge_touch ?addr t =
  Transport.charge_local_touches t.transport 1;
  match addr with
  | None -> ()
  | Some a ->
    if Cache.in_region t.cache a then (
      match Cache.find_containing t.cache a with
      | Some e -> e.Cache.touched <- true
      | None -> ())
let cached_entries t = Cache.entry_count t.cache
let pp_alloc_table ppf t = Cache.pp_table ppf t.cache
